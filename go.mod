module distperm

go 1.24
