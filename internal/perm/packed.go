package perm

import (
	"fmt"
	"math/big"
	"math/bits"
)

// PackedArray stores a sequence of permutations of fixed length k in
// ⌈lg k!⌉ bits each, by packing the Lehmer-code rank of every permutation
// into a contiguous bit vector. This realises, in running code, the storage
// accounting the paper's analysis performs on paper: an unrestricted
// permutation index costs exactly n·⌈lg k!⌉ bits (and, when the set of
// realisable permutations is smaller, the table encoding in
// sisap.PermIndex.TableIndexBits beats it by Corollary 8's margin).
//
// k is limited to 20 so ranks fit a uint64.
type PackedArray struct {
	k        int
	bitWidth uint
	n        int
	words    []uint64
}

// NewPackedArray returns an empty packed array for permutations of length
// k, 1 ≤ k ≤ 20.
func NewPackedArray(k int) *PackedArray {
	if k < 1 || k > 20 {
		panic(fmt.Sprintf("perm: PackedArray supports 1 <= k <= 20, got %d", k))
	}
	// ⌈lg k!⌉ bits per element (0 bits when k = 1: rank is always 0).
	f := Factorial(k)
	width := uint(new(big.Int).Sub(f, big.NewInt(1)).BitLen())
	return &PackedArray{k: k, bitWidth: width}
}

// K returns the permutation length.
func (a *PackedArray) K() int { return a.k }

// Len returns the number of stored permutations.
func (a *PackedArray) Len() int { return a.n }

// BitsPerElement returns ⌈lg k!⌉.
func (a *PackedArray) BitsPerElement() int { return int(a.bitWidth) }

// SizeBits returns the total storage consumed by the payload bit vector.
func (a *PackedArray) SizeBits() int64 { return int64(len(a.words)) * 64 }

// Append stores p at the end of the array.
func (a *PackedArray) Append(p Permutation) {
	if len(p) != a.k {
		panic(fmt.Sprintf("perm: appending length-%d permutation to k=%d array", len(p), a.k))
	}
	a.setRank(a.n, p.Rank64())
	a.n++
}

// At returns the i-th stored permutation, decoded.
func (a *PackedArray) At(i int) Permutation {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("perm: index %d out of range [0,%d)", i, a.n))
	}
	return Unrank64(a.k, a.rank(i))
}

// Rank64At returns the stored rank without decoding, for comparisons and
// hashing.
func (a *PackedArray) Rank64At(i int) uint64 {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("perm: index %d out of range [0,%d)", i, a.n))
	}
	return a.rank(i)
}

func (a *PackedArray) setRank(i int, r uint64) {
	w := a.bitWidth
	if w == 0 {
		return // k = 1: nothing to store
	}
	bitPos := uint64(i) * uint64(w)
	word := bitPos / 64
	off := bitPos % 64
	need := int(word) + 1
	if off+uint64(w) > 64 {
		need++
	}
	for len(a.words) < need {
		a.words = append(a.words, 0)
	}
	a.words[word] |= r << off
	if off+uint64(w) > 64 {
		a.words[word+1] |= r >> (64 - off)
	}
}

func (a *PackedArray) rank(i int) uint64 {
	w := a.bitWidth
	if w == 0 {
		return 0
	}
	bitPos := uint64(i) * uint64(w)
	word := bitPos / 64
	off := bitPos % 64
	mask := uint64(1)<<w - 1
	r := a.words[word] >> off
	if off+uint64(w) > 64 {
		r |= a.words[word+1] << (64 - off)
	}
	return r & mask
}

// TableArray stores permutations via the paper's shared-table encoding:
// each distinct permutation is kept once, and every element stores only a
// table index of ⌈lg(table size)⌉ bits. It is the encoding the paper's §4
// recommends when the database is large relative to the number of
// realisable permutations; SizeBits shows the crossover directly.
type TableArray struct {
	k       int
	table   []uint64       // distinct ranks in first-seen order
	indexOf map[uint64]int // rank -> table position
	ids     []int          // per-element table positions
}

// NewTableArray returns an empty table-encoded array for permutations of
// length k ≤ 20.
func NewTableArray(k int) *TableArray {
	if k < 1 || k > 20 {
		panic(fmt.Sprintf("perm: TableArray supports 1 <= k <= 20, got %d", k))
	}
	return &TableArray{k: k, indexOf: make(map[uint64]int)}
}

// Append stores p.
func (t *TableArray) Append(p Permutation) {
	if len(p) != t.k {
		panic(fmt.Sprintf("perm: appending length-%d permutation to k=%d array", len(p), t.k))
	}
	r := p.Rank64()
	id, ok := t.indexOf[r]
	if !ok {
		id = len(t.table)
		t.indexOf[r] = id
		t.table = append(t.table, r)
	}
	t.ids = append(t.ids, id)
}

// At returns the i-th stored permutation.
func (t *TableArray) At(i int) Permutation {
	return Unrank64(t.k, t.table[t.ids[i]])
}

// Len returns the number of stored permutations.
func (t *TableArray) Len() int { return len(t.ids) }

// Distinct returns the table size — the number of distinct permutations.
func (t *TableArray) Distinct() int { return len(t.table) }

// SizeBits returns the information-theoretic storage: one ⌈lg(distinct)⌉
// index per element plus ⌈lg k!⌉ per table entry.
func (t *TableArray) SizeBits() int64 {
	if len(t.table) == 0 {
		return 0
	}
	idxBits := bits.Len(uint(len(t.table) - 1))
	permBits := NewPackedArray(t.k).BitsPerElement()
	return int64(len(t.ids))*int64(idxBits) + int64(len(t.table))*int64(permBits)
}
