package perm

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPerm(rng *rand.Rand, k int) Permutation {
	return Permutation(rng.Perm(k))
}

func TestIdentity(t *testing.T) {
	p := Identity(5)
	want := Permutation{0, 1, 2, 3, 4}
	if !p.Equal(want) {
		t.Errorf("Identity(5) = %v", p)
	}
	if !p.Valid() {
		t.Error("identity should be valid")
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		p    Permutation
		want bool
	}{
		{Permutation{}, true},
		{Permutation{0}, true},
		{Permutation{1, 0, 2}, true},
		{Permutation{0, 0}, false},
		{Permutation{0, 2}, false},
		{Permutation{-1, 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestInverse(t *testing.T) {
	p := Permutation{2, 0, 1}
	inv := p.Inverse()
	if !inv.Equal(Permutation{1, 2, 0}) {
		t.Errorf("Inverse = %v", inv)
	}
	// p ∘ p⁻¹ = id
	if !p.Compose(inv).Equal(Identity(3)) {
		t.Error("p∘p⁻¹ should be identity")
	}
	if !inv.Compose(p).Equal(Identity(3)) {
		t.Error("p⁻¹∘p should be identity")
	}
}

func TestInverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		p := randomPerm(rng, 1+rng.Intn(12))
		return p.Inverse().Inverse().Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestComposeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		k := 1 + rng.Intn(8)
		p, q, r := randomPerm(rng, k), randomPerm(rng, k), randomPerm(rng, k)
		return p.Compose(q).Compose(r).Equal(p.Compose(q.Compose(r)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestComposePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("compose length mismatch should panic")
		}
	}()
	Identity(2).Compose(Identity(3))
}

func TestString(t *testing.T) {
	if got := (Permutation{0, 1, 4, 3, 2}).String(); got != "12543" {
		t.Errorf("String = %q, want 12543", got)
	}
	long := Identity(11)
	if got := long.String(); got != "1,2,3,4,5,6,7,8,9,10,11" {
		t.Errorf("long String = %q", got)
	}
}

func TestClone(t *testing.T) {
	p := Permutation{1, 0}
	q := p.Clone()
	q[0] = 0
	if p[0] != 1 {
		t.Error("Clone must be independent")
	}
}

func TestRank64KnownValues(t *testing.T) {
	cases := []struct {
		p    Permutation
		want uint64
	}{
		{Permutation{0, 1, 2}, 0},
		{Permutation{0, 2, 1}, 1},
		{Permutation{1, 0, 2}, 2},
		{Permutation{1, 2, 0}, 3},
		{Permutation{2, 0, 1}, 4},
		{Permutation{2, 1, 0}, 5},
	}
	for _, c := range cases {
		if got := c.p.Rank64(); got != c.want {
			t.Errorf("Rank64(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		k := 1 + rng.Intn(12)
		p := randomPerm(rng, k)
		return Unrank64(k, p.Rank64()).Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnrankRankRoundTrip(t *testing.T) {
	const k = 6
	for r := uint64(0); r < 720; r++ {
		p := Unrank64(k, r)
		if !p.Valid() {
			t.Fatalf("Unrank64(%d,%d) invalid: %v", k, r, p)
		}
		if got := p.Rank64(); got != r {
			t.Fatalf("Rank(Unrank(%d)) = %d", r, got)
		}
	}
}

func TestRankLexicographicOrder(t *testing.T) {
	// Ranks must increase with lexicographic order of permutations.
	prev := uint64(0)
	first := true
	All(5, func(p Permutation) bool {
		r := p.Rank64()
		if !first && r != prev+1 {
			t.Fatalf("rank %d follows %d for %v", r, prev, p)
		}
		prev, first = r, false
		return true
	})
	if prev != 119 {
		t.Errorf("last rank = %d, want 119", prev)
	}
}

func TestBigRankMatchesRank64(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		p := randomPerm(rng, 1+rng.Intn(15))
		if p.Rank().Cmp(new(big.Int).SetUint64(p.Rank64())) != 0 {
			t.Fatalf("big Rank != Rank64 for %v", p)
		}
	}
}

func TestRank64PanicsBeyond20(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Rank64 for k=21 should panic")
		}
	}()
	Identity(21).Rank64()
}

func TestKeyDistinctness(t *testing.T) {
	seen := map[string]bool{}
	All(6, func(p Permutation) bool {
		k := p.Key()
		if seen[k] {
			t.Fatalf("duplicate key for %v", p)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 720 {
		t.Errorf("got %d keys, want 720", len(seen))
	}
}

func TestKeyLargeK(t *testing.T) {
	p := Identity(25) // beyond the packed-rank range
	q := Identity(25)
	q[0], q[1] = q[1], q[0]
	if p.Key() == q.Key() {
		t.Error("distinct permutations share a key at k=25")
	}
}

func TestFactorial(t *testing.T) {
	cases := map[int]int64{0: 1, 1: 1, 5: 120, 10: 3628800}
	for n, want := range cases {
		if got := Factorial(n); got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("Factorial(%d) = %v, want %d", n, got, want)
		}
	}
}

func TestNextLexEnumeratesAll(t *testing.T) {
	for k := 1; k <= 7; k++ {
		count := 0
		seen := map[string]bool{}
		p := Identity(k)
		for ok := true; ok; ok = p.NextLex() {
			count++
			seen[p.Key()] = true
		}
		want := 1
		for i := 2; i <= k; i++ {
			want *= i
		}
		if count != want || len(seen) != want {
			t.Errorf("k=%d: enumerated %d (%d unique), want %d", k, count, len(seen), want)
		}
		if !p.Equal(Identity(k)) {
			t.Errorf("k=%d: NextLex should restore identity after wrap, got %v", k, p)
		}
	}
}

func TestAllEarlyStop(t *testing.T) {
	calls := 0
	All(5, func(p Permutation) bool {
		calls++
		return calls < 10
	})
	if calls != 10 {
		t.Errorf("All stopped after %d calls, want 10", calls)
	}
}
