// Package perm implements permutation algebra for distance permutations:
// construction, validation, inversion, composition, factorial-number-system
// ranking (Lehmer codes), compact binary encoding, and the permutation
// distances (Kendall tau, Spearman footrule, Spearman rho) used by
// permutation-based similarity indexes such as iAESA.
//
// A Permutation p of length k is a slice of the integers 0..k−1 in some
// order; p[i] is the element in position i. In distance-permutation terms,
// p[i] is the index of the (i+1)-th closest site. The paper indexes sites
// from 1; this package uses 0-based indices throughout and converts only at
// display boundaries.
package perm

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"
)

// Permutation is a sequence containing each of 0..len−1 exactly once.
type Permutation []int

// Identity returns the identity permutation of length k.
func Identity(k int) Permutation {
	p := make(Permutation, k)
	for i := range p {
		p[i] = i
	}
	return p
}

// Clone returns an independent copy of p.
func (p Permutation) Clone() Permutation {
	q := make(Permutation, len(p))
	copy(q, p)
	return q
}

// Valid reports whether p contains each of 0..len(p)−1 exactly once.
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns q with q[p[i]] = i. For a distance permutation, the
// inverse maps a site index to its rank (position in the closeness order),
// which is the representation the permutation distances operate on.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// Compose returns the permutation r with r[i] = p[q[i]].
func (p Permutation) Compose(q Permutation) Permutation {
	if len(p) != len(q) {
		panic(fmt.Sprintf("perm: compose length mismatch %d vs %d", len(p), len(q)))
	}
	r := make(Permutation, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// Equal reports whether p and q are identical.
func (p Permutation) Equal(q Permutation) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders p in the paper's compact 1-based form, e.g. "12543" for
// k ≤ 9, and comma-separated 1-based form for larger k.
func (p Permutation) String() string {
	var sb strings.Builder
	if len(p) <= 9 {
		for _, v := range p {
			sb.WriteByte(byte('1' + v))
		}
		return sb.String()
	}
	for i, v := range p {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(v + 1))
	}
	return sb.String()
}

// Key returns a compact representation of p usable as a map key when
// counting distinct permutations. For k ≤ 20 it is the Lehmer rank packed
// into a uint64 rendered as 8 bytes; beyond that it falls back to one byte
// per element (k ≤ 255), then two little-endian bytes per element
// (k ≤ 65535). Keys are only comparable between permutations of equal
// length.
func (p Permutation) Key() string {
	if len(p) <= 20 {
		r := p.Rank64()
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(r >> (8 * i))
		}
		return string(b[:])
	}
	if len(p) <= 255 {
		b := make([]byte, len(p))
		for i, v := range p {
			b[i] = byte(v)
		}
		return string(b)
	}
	if len(p) > 65535 {
		panic("perm: Key supports k <= 65535")
	}
	b := make([]byte, 2*len(p))
	for i, v := range p {
		b[2*i] = byte(v)
		b[2*i+1] = byte(v >> 8)
	}
	return string(b)
}

// Rank64 returns the lexicographic rank of p among all permutations of its
// length, computed via the Lehmer code. It panics if len(p) > 20, where the
// rank can exceed a uint64 (21! > 2^64).
func (p Permutation) Rank64() uint64 {
	k := len(p)
	if k > 20 {
		panic("perm: Rank64 supports k <= 20; use Rank")
	}
	// O(k²) Lehmer code; k ≤ 20 makes this trivially fast and
	// allocation-free aside from nothing at all.
	var rank uint64
	for i := 0; i < k; i++ {
		smaller := 0
		for j := i + 1; j < k; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank = rank*uint64(k-i) + uint64(smaller)
	}
	return rank
}

// Unrank64 returns the permutation of length k with lexicographic rank r.
// It is the inverse of Rank64.
func Unrank64(k int, r uint64) Permutation {
	if k > 20 {
		panic("perm: Unrank64 supports k <= 20")
	}
	// Decompose r in the factorial number system.
	code := make([]int, k)
	for i := k - 1; i >= 0; i-- {
		base := uint64(k - i)
		code[i] = int(r % base)
		r /= base
	}
	// Materialise: code[i] counts how many unused values smaller than
	// p[i] remain.
	avail := make([]int, k)
	for i := range avail {
		avail[i] = i
	}
	p := make(Permutation, k)
	for i := 0; i < k; i++ {
		p[i] = avail[code[i]]
		avail = append(avail[:code[i]], avail[code[i]+1:]...)
	}
	return p
}

// Rank returns the lexicographic rank of p as a big integer, valid for any
// length.
func (p Permutation) Rank() *big.Int {
	rank := new(big.Int)
	tmp := new(big.Int)
	k := len(p)
	for i := 0; i < k; i++ {
		smaller := 0
		for j := i + 1; j < k; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		rank.Mul(rank, tmp.SetInt64(int64(k-i)))
		rank.Add(rank, tmp.SetInt64(int64(smaller)))
	}
	return rank
}

// Factorial returns n! as a big integer.
func Factorial(n int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}
