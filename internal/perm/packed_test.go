package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackedArrayRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, k := range []int{1, 2, 3, 5, 8, 12, 20} {
		a := NewPackedArray(k)
		var want []Permutation
		for i := 0; i < 200; i++ {
			p := randomPerm(rng, k)
			want = append(want, p)
			a.Append(p)
		}
		if a.Len() != 200 {
			t.Fatalf("k=%d: Len = %d", k, a.Len())
		}
		for i, w := range want {
			if got := a.At(i); !got.Equal(w) {
				t.Fatalf("k=%d: At(%d) = %v, want %v", k, i, got, w)
			}
			if a.Rank64At(i) != w.Rank64() {
				t.Fatalf("k=%d: rank mismatch at %d", k, i)
			}
		}
	}
}

func TestPackedArrayBitWidths(t *testing.T) {
	// ⌈lg k!⌉ for k = 1..8: 0,1,3,5,7,10,13,16.
	want := map[int]int{1: 0, 2: 1, 3: 3, 4: 5, 5: 7, 6: 10, 7: 13, 8: 16}
	for k, bits := range want {
		if got := NewPackedArray(k).BitsPerElement(); got != bits {
			t.Errorf("k=%d: %d bits, want %d", k, got, bits)
		}
	}
}

func TestPackedArrayDensity(t *testing.T) {
	// n elements at w bits each must occupy ~n·w bits, not n·64.
	const n = 10_000
	a := NewPackedArray(8) // 16 bits each
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < n; i++ {
		a.Append(randomPerm(rng, 8))
	}
	expected := int64(n * 16)
	if a.SizeBits() > expected+64 {
		t.Errorf("SizeBits = %d, want ≈ %d", a.SizeBits(), expected)
	}
	// Versus the naive 8 ints = 512 bits per permutation.
	if a.SizeBits()*8 > int64(n)*512 {
		t.Error("packing should be far denser than raw ints")
	}
}

func TestPackedArrayQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		k := 1 + rng.Intn(12)
		a := NewPackedArray(k)
		n := 1 + rng.Intn(50)
		ps := make([]Permutation, n)
		for i := range ps {
			ps[i] = randomPerm(rng, k)
			a.Append(ps[i])
		}
		i := rng.Intn(n)
		return a.At(i).Equal(ps[i])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackedArrayPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("k=21 should panic")
			}
		}()
		NewPackedArray(21)
	}()
	a := NewPackedArray(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong length append should panic")
			}
		}()
		a.Append(Identity(4))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range At should panic")
			}
		}()
		a.At(0)
	}()
}

func TestTableArrayRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ta := NewTableArray(5)
	// Few distinct permutations, many elements: the table encoding's
	// home turf.
	distinct := []Permutation{
		{0, 1, 2, 3, 4}, {1, 0, 2, 3, 4}, {4, 3, 2, 1, 0},
	}
	var want []Permutation
	for i := 0; i < 5_000; i++ {
		p := distinct[rng.Intn(3)]
		want = append(want, p)
		ta.Append(p)
	}
	if ta.Distinct() != 3 {
		t.Fatalf("Distinct = %d", ta.Distinct())
	}
	for _, i := range []int{0, 17, 4_999} {
		if !ta.At(i).Equal(want[i]) {
			t.Fatalf("At(%d) mismatch", i)
		}
	}
	// 2 bits per element + tiny table vs 7 bits packed.
	packed := NewPackedArray(5)
	for _, p := range want {
		packed.Append(p)
	}
	if ta.SizeBits() >= packed.SizeBits() {
		t.Errorf("table %d bits should beat packed %d bits with 3 distinct perms",
			ta.SizeBits(), packed.SizeBits())
	}
}

func TestTableArrayCrossover(t *testing.T) {
	// With every element distinct, the table encoding must lose to plain
	// packing (index bits + full table ≈ double cost).
	ta := NewTableArray(6)
	packed := NewPackedArray(6)
	i := 0
	All(6, func(p Permutation) bool {
		ta.Append(p)
		packed.Append(p)
		i++
		return true
	})
	if ta.SizeBits() <= packed.SizeBits() {
		t.Errorf("table %d bits should exceed packed %d bits with all-distinct perms",
			ta.SizeBits(), packed.SizeBits())
	}
}

func TestTableArrayEmpty(t *testing.T) {
	ta := NewTableArray(4)
	if ta.Len() != 0 || ta.Distinct() != 0 || ta.SizeBits() != 0 {
		t.Error("empty table array should be all-zero")
	}
}
