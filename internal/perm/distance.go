package perm

import (
	"fmt"
	"math"
)

// The permutation distances below are the comparators used by
// permutation-based indexes (Chávez/Figueroa/Navarro; iAESA). They operate
// on the *inverse* representation: for distance permutations p and q, the
// index compares how far each site's rank moved, so distances are computed
// between p.Inverse() and q.Inverse(). The functions here are agnostic — they
// compare the slices they are given — and the sisap package applies them to
// inverses.

// SpearmanFootrule returns Σ_i |p[i] − q[i]|, the L1 distance between the
// rank vectors. It is a metric on the symmetric group.
func SpearmanFootrule(p, q Permutation) int {
	mustSameLen(p, q)
	s := 0
	for i := range p {
		d := p[i] - q[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// SpearmanRho returns sqrt(Σ_i (p[i] − q[i])²), the L2 distance between the
// rank vectors.
func SpearmanRho(p, q Permutation) float64 {
	return math.Sqrt(float64(SpearmanRhoSq(p, q)))
}

// SpearmanRhoSq returns Σ_i (p[i] − q[i])², the squared Spearman rho. It is
// an integer bounded by k(k²−1)/3, and sorting by it is equivalent to
// sorting by SpearmanRho (sqrt is strictly monotone), which is what lets
// candidate ordering use integer keys for all three permutation distances.
func SpearmanRhoSq(p, q Permutation) int {
	mustSameLen(p, q)
	s := 0
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// KendallTau returns the number of discordant pairs between p and q: pairs
// (a, b) ordered one way by p and the other way by q. It equals the minimum
// number of adjacent transpositions transforming p into q and is a metric on
// the symmetric group. O(k log k) via merge-sort inversion counting.
func KendallTau(p, q Permutation) int {
	mustSameLen(p, q)
	// Relabel p through q's inverse so the problem becomes counting
	// inversions of a single sequence.
	qinv := q.Inverse()
	seq := make([]int, len(p))
	for i := range p {
		seq[i] = qinv[p[i]]
	}
	buf := make([]int, len(seq))
	return countInversions(seq, buf)
}

// MaxFootrule returns the maximum possible Spearman footrule between two
// permutations of length k: ⌊k²/2⌋.
func MaxFootrule(k int) int { return k * k / 2 }

// MaxKendallTau returns the maximum possible Kendall tau between two
// permutations of length k: k(k−1)/2.
func MaxKendallTau(k int) int { return k * (k - 1) / 2 }

func countInversions(a, buf []int) int {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := countInversions(a[:mid], buf) + countInversions(a[mid:], buf)
	// Merge while counting cross inversions.
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] <= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			inv += mid - i
			j++
		}
		k++
	}
	for i < mid {
		buf[k] = a[i]
		i++
		k++
	}
	for j < n {
		buf[k] = a[j]
		j++
		k++
	}
	copy(a, buf[:n])
	return inv
}

func mustSameLen(p, q Permutation) {
	if len(p) != len(q) {
		panic(fmt.Sprintf("perm: length mismatch %d vs %d", len(p), len(q)))
	}
}
