package perm

// NextLex advances p to the next permutation in lexicographic order,
// returning false (and leaving p as the identity's reverse restored to
// identity) when p was already the last permutation. It mutates p in place,
// enabling allocation-free iteration over all k! permutations:
//
//	p := Identity(k)
//	for ok := true; ok; ok = p.NextLex() { ... }
func (p Permutation) NextLex() bool {
	// Standard Knuth algorithm L.
	i := len(p) - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		// Wrapped: restore ascending order for reuse.
		reverse(p)
		return false
	}
	j := len(p) - 1
	for p[j] <= p[i] {
		j--
	}
	p[i], p[j] = p[j], p[i]
	reverse(p[i+1:])
	return true
}

// All invokes f once per permutation of length k, in lexicographic order,
// stopping early if f returns false. The slice passed to f is reused between
// calls; clone it if retaining.
func All(k int, f func(Permutation) bool) {
	p := Identity(k)
	for {
		if !f(p) {
			return
		}
		if !p.NextLex() {
			return
		}
	}
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
