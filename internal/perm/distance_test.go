package perm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpearmanFootruleKnownValues(t *testing.T) {
	cases := []struct {
		p, q Permutation
		want int
	}{
		{Permutation{0, 1, 2}, Permutation{0, 1, 2}, 0},
		{Permutation{0, 1, 2}, Permutation{2, 1, 0}, 4},
		{Permutation{0, 1}, Permutation{1, 0}, 2},
		{Permutation{0, 1, 2, 3}, Permutation{1, 0, 3, 2}, 4},
	}
	for _, c := range cases {
		if got := SpearmanFootrule(c.p, c.q); got != c.want {
			t.Errorf("Footrule(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
	}
}

func TestKendallTauKnownValues(t *testing.T) {
	cases := []struct {
		p, q Permutation
		want int
	}{
		{Permutation{0, 1, 2}, Permutation{0, 1, 2}, 0},
		{Permutation{0, 1, 2}, Permutation{2, 1, 0}, 3},
		{Permutation{0, 1}, Permutation{1, 0}, 1},
		{Permutation{0, 2, 1}, Permutation{0, 1, 2}, 1},
		{Permutation{3, 2, 1, 0}, Permutation{0, 1, 2, 3}, 6},
	}
	for _, c := range cases {
		if got := KendallTau(c.p, c.q); got != c.want {
			t.Errorf("KendallTau(%v,%v) = %d, want %d", c.p, c.q, got, c.want)
		}
	}
}

func TestSpearmanRhoKnownValues(t *testing.T) {
	if got := SpearmanRho(Permutation{0, 1}, Permutation{1, 0}); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("Rho = %v, want sqrt(2)", got)
	}
	if got := SpearmanRho(Identity(4), Identity(4)); got != 0 {
		t.Errorf("Rho identical = %v, want 0", got)
	}
}

func TestKendallTauBruteForce(t *testing.T) {
	// Cross-check the merge-sort implementation against the O(k²)
	// definition on random pairs.
	brute := func(p, q Permutation) int {
		qinv := q.Inverse()
		n := 0
		for i := 0; i < len(p); i++ {
			for j := i + 1; j < len(p); j++ {
				if qinv[p[i]] > qinv[p[j]] {
					n++
				}
			}
		}
		return n
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		k := 1 + rng.Intn(12)
		p, q := randomPerm(rng, k), randomPerm(rng, k)
		if got, want := KendallTau(p, q), brute(p, q); got != want {
			t.Fatalf("KendallTau(%v,%v) = %d, want %d", p, q, got, want)
		}
	}
}

// TestPermDistanceMetricAxioms property-tests that footrule and tau are
// metrics on the symmetric group: symmetry, identity, triangle inequality,
// and right-invariance.
func TestPermDistanceMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	type distFn struct {
		name string
		f    func(a, b Permutation) float64
	}
	fns := []distFn{
		{"footrule", func(a, b Permutation) float64 { return float64(SpearmanFootrule(a, b)) }},
		{"tau", func(a, b Permutation) float64 { return float64(KendallTau(a, b)) }},
		{"rho", SpearmanRho},
	}
	for _, fn := range fns {
		fn := fn
		t.Run(fn.name, func(t *testing.T) {
			check := func(seed int64) bool {
				k := 2 + rng.Intn(8)
				a, b, c := randomPerm(rng, k), randomPerm(rng, k), randomPerm(rng, k)
				dab, dba := fn.f(a, b), fn.f(b, a)
				if dab != dba {
					return false // symmetry
				}
				if fn.f(a, a) != 0 {
					return false // identity
				}
				if !a.Equal(b) && dab <= 0 {
					return false // positivity
				}
				if dab > fn.f(a, c)+fn.f(c, b)+1e-9 {
					return false // triangle
				}
				// Invariance: footrule and rho compare positionwise
				// values, so they are right-invariant (relabelling
				// positions); tau counts discordant value pairs, so it
				// is left-invariant (relabelling values).
				s := randomPerm(rng, k)
				if fn.name == "tau" {
					return math.Abs(fn.f(s.Compose(a), s.Compose(b))-dab) < 1e-9
				}
				return math.Abs(fn.f(a.Compose(s), b.Compose(s))-dab) < 1e-9
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDiaconisGraham verifies the classical inequality
// I(σ) ≤ D(σ) ≤ 2·I(σ) (Diaconis & Graham 1977), where σ = q⁻¹∘p,
// I(σ) = KendallTau(p, q) (discordant pairs) and D(σ) = the Spearman
// footrule of the *rank vectors*, i.e. of the inverses. This is exactly why
// the permutation index compares inverse permutations.
func TestDiaconisGraham(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		k := 2 + rng.Intn(10)
		p, q := randomPerm(rng, k), randomPerm(rng, k)
		tau := KendallTau(p, q)
		f := SpearmanFootrule(p.Inverse(), q.Inverse())
		if f < tau || f > 2*tau {
			t.Fatalf("Diaconis-Graham violated for %v %v: tau=%d footrule=%d", p, q, tau, f)
		}
	}
}

func TestMaxBounds(t *testing.T) {
	for k := 1; k <= 8; k++ {
		rev := make(Permutation, k)
		for i := range rev {
			rev[i] = k - 1 - i
		}
		id := Identity(k)
		if got, want := SpearmanFootrule(id, rev), MaxFootrule(k); got != want {
			t.Errorf("k=%d: max footrule = %d, want %d", k, got, want)
		}
		if got, want := KendallTau(id, rev), MaxKendallTau(k); got != want {
			t.Errorf("k=%d: max tau = %d, want %d", k, got, want)
		}
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	SpearmanFootrule(Identity(3), Identity(4))
}

func TestSpearmanRhoSqConsistent(t *testing.T) {
	// Rho must be exactly the square root of the integer RhoSq, and RhoSq
	// must respect its k(k²−1)/3 maximum (attained by the reversal).
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(12)
		p := Permutation(rng.Perm(k))
		q := Permutation(rng.Perm(k))
		sq := SpearmanRhoSq(p, q)
		if got := SpearmanRho(p, q); got != math.Sqrt(float64(sq)) {
			t.Fatalf("rho %v vs sqrt(rhoSq %d) for %v %v", got, sq, p, q)
		}
		if maxSq := k * (k*k - 1) / 3; sq > maxSq {
			t.Fatalf("rhoSq %d exceeds bound %d at k=%d", sq, maxSq, k)
		}
	}
	rev := Permutation{4, 3, 2, 1, 0}
	if got := SpearmanRhoSq(Identity(5), rev); got != 5*(25-1)/3 {
		t.Errorf("reversal rhoSq = %d, want %d", got, 5*(25-1)/3)
	}
}
