package dataset

// Sizes controls how large the SISAP-analogue databases are generated.
// Paper sizes (Table 2) are the defaults of PaperSizes; ScaledSizes divides
// everything by the given factor for quick runs, flooring at 500 points.
type Sizes struct {
	// Dictionary is the per-language size; 0 means each language uses its
	// own paper size (LanguageProfile.PaperN: 69k Dutch … 229k English).
	Dictionary int
	Listeria   int // paper: 20660
	Long       int // paper: 1265
	Short      int // paper: 25276
	Colors     int // paper: 112544
	NASA       int // paper: 40150
}

// PaperSizes returns per-database sizes matching the paper's Table 2 n
// column; dictionaries use each language's own paper size.
func PaperSizes() Sizes {
	return Sizes{
		Dictionary: 0, // per-language PaperN
		Listeria:   20660,
		Long:       1265,
		Short:      25276,
		Colors:     112544,
		NASA:       40150,
	}
}

// ScaledSizes returns PaperSizes divided by factor (min 500 per database,
// except long, which is already tiny and stays at its paper size). The
// dictionaries share one representative scaled size (the German paper size
// divided by factor) so scaled runs stay comparable across languages.
func ScaledSizes(factor int) Sizes {
	s := PaperSizes()
	scale := func(n int) int {
		n /= factor
		if n < 500 {
			n = 500
		}
		return n
	}
	s.Dictionary = scale(75086)
	s.Listeria = scale(s.Listeria)
	s.Short = scale(s.Short)
	s.Colors = scale(s.Colors)
	s.NASA = scale(s.NASA)
	// long stays at paper scale: it is the database whose smallness the
	// paper's analysis leans on ("contains 1265 points, much less than
	// sqrt(12!)").
	return s
}

// SISAPSuite generates the full Table 2 database roster at the given sizes.
// Ordering matches the paper's table: the seven dictionaries, then
// listeria, long, short, colors, nasa.
func SISAPSuite(sizes Sizes) []*Dataset {
	var out []*Dataset
	if sizes.Dictionary <= 0 {
		for _, p := range Languages() {
			out = append(out, Dictionary(p, p.PaperN))
		}
	} else {
		out = AllDictionaries(sizes.Dictionary)
	}
	// long uses very few topics: the paper's long database (news-article
	// feature vectors) is strongly degenerate — 261 distinct permutations
	// among 1265 points at k=12 — so its synthetic stand-in must live on
	// a low-dimensional cone.
	out = append(out,
		GeneSequences(201, sizes.Listeria),
		DocumentVectors(202, "long", sizes.Long, 400, 3, 600),
		DocumentVectors(203, "short", sizes.Short, 400, 40, 30),
		ColorHistograms(204, sizes.Colors, 112),
		NASAFeatures(205, sizes.NASA, 20, 4),
	)
	return out
}
