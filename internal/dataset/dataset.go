// Package dataset generates the point sets the paper's experiments run on.
//
// The paper's Section 5 uses (a) the SISAP metric-space library's sample
// databases — seven natural-language dictionaries under edit distance, the
// listeria gene-sequence database, the long and short document-vector
// databases, the colors image-feature database, and the nasa feature
// database — and (b) collections of 10^6 vectors drawn uniformly from the
// unit cube under L1/L2/L∞.
//
// The SISAP data files cannot be redistributed here and the module is
// offline, so this package synthesises seeded analogues with matched
// structure: per-language Markov letter models for the dictionaries,
// a mutation process over a common ancestor for the gene sequences, sparse
// term-frequency vectors for the documents, mixture histograms for colors,
// and correlated features for nasa (see DESIGN.md §4 for the substitution
// argument). Every generator is deterministic given its seed.
package dataset

import (
	"fmt"
	"math/rand"

	"distperm/internal/metric"
)

// Dataset is a named finite metric database.
type Dataset struct {
	Name   string
	Metric metric.Metric
	Points []metric.Point
}

// N returns the number of points.
func (d *Dataset) N() int { return len(d.Points) }

// ChooseSites selects k distinct points of the dataset uniformly at random
// as sites, matching how the paper's experiments pick reference sites. It
// panics if k exceeds the dataset size.
func (d *Dataset) ChooseSites(rng *rand.Rand, k int) []metric.Point {
	if k > len(d.Points) {
		panic(fmt.Sprintf("dataset: %d sites requested from %d points", k, len(d.Points)))
	}
	idx := rng.Perm(len(d.Points))[:k]
	sites := make([]metric.Point, k)
	for i, j := range idx {
		sites[i] = d.Points[j]
	}
	return sites
}

// UniformVectors returns n vectors drawn uniformly from the d-dimensional
// unit cube — the Table 3 workload.
func UniformVectors(rng *rand.Rand, n, d int) []metric.Point {
	pts := make([]metric.Point, n)
	for i := range pts {
		v := make(metric.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = v
	}
	return pts
}

// UniformDataset wraps UniformVectors as a Dataset under the given metric.
func UniformDataset(rng *rand.Rand, n, d int, m metric.Metric) *Dataset {
	return &Dataset{
		Name:   fmt.Sprintf("uniform-%dd-%s", d, m.Name()),
		Metric: m,
		Points: UniformVectors(rng, n, d),
	}
}

// GaussianVectors returns n vectors with i.i.d. N(mean, sigma²) components
// in d dimensions.
func GaussianVectors(rng *rand.Rand, n, d int, mean, sigma float64) []metric.Point {
	pts := make([]metric.Point, n)
	for i := range pts {
		v := make(metric.Vector, d)
		for j := range v {
			v[j] = mean + sigma*rng.NormFloat64()
		}
		pts[i] = v
	}
	return pts
}

// ClusteredVectors returns n vectors in d dimensions drawn from c Gaussian
// clusters with centres uniform in the unit cube and common within-cluster
// standard deviation sigma. Clustered data has fewer reachable distance
// permutations than uniform data of the same nominal dimension — the
// phenomenon behind the paper's Figure 7 and the dimension-characterisation
// discussion.
func ClusteredVectors(rng *rand.Rand, n, d, c int, sigma float64) []metric.Point {
	centres := UniformVectors(rng, c, d)
	pts := make([]metric.Point, n)
	for i := range pts {
		centre := centres[rng.Intn(c)].(metric.Vector)
		v := make(metric.Vector, d)
		for j := range v {
			v[j] = centre[j] + sigma*rng.NormFloat64()
		}
		pts[i] = v
	}
	return pts
}
