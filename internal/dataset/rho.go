package dataset

import "math/rand"

// Rho estimates the intrinsic dimensionality statistic of Chávez and
// Navarro used throughout the paper's Table 2:
//
//	ρ = μ² / (2σ²)
//
// where μ and σ² are the mean and variance of the distance between two
// random points of the database. The estimate samples `pairs` random
// ordered pairs of distinct points; the paper's values are computed the
// same way (ρ is a distributional statistic, not a worst-case one).
func Rho(rng *rand.Rand, d *Dataset, pairs int) float64 {
	if d.N() < 2 || pairs < 1 {
		return 0
	}
	var sum, sumSq float64
	for i := 0; i < pairs; i++ {
		a := rng.Intn(d.N())
		b := rng.Intn(d.N() - 1)
		if b >= a {
			b++
		}
		dist := d.Metric.Distance(d.Points[a], d.Points[b])
		sum += dist
		sumSq += dist * dist
	}
	n := float64(pairs)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance <= 0 {
		return 0
	}
	return mean * mean / (2 * variance)
}
