package dataset

import (
	"math"
	"math/rand"
	"sort"

	"distperm/internal/metric"
)

// LanguageProfile parameterises a synthetic dictionary: a word generator
// that mimics a natural language's alphabet, letter-frequency skew, and
// word-length distribution. The dictionaries stand in for the SISAP sample
// databases Dutch, English, French, German, Italian, Norwegian, Spanish in
// the Table 2 reproduction; under edit distance, what governs the
// distance-permutation statistics is word length and letter diversity, which
// the profiles control.
type LanguageProfile struct {
	Name string
	// Alphabet lists the letters in decreasing nominal frequency.
	Alphabet string
	// MeanLen and SdLen shape the (clamped) Gaussian word-length
	// distribution.
	MeanLen, SdLen float64
	// Skew ∈ (0,1] controls the Zipf-like geometric decay of letter
	// probabilities: smaller skew concentrates mass on few letters.
	Skew float64
	// Seed decorrelates the per-language Markov transition matrices.
	Seed int64
	// PaperN is the dictionary's size in the paper's Table 2.
	PaperN int
}

// Languages returns the seven dictionary profiles used by the Table 2
// reproduction, roughly matched to the source languages' alphabet sizes and
// mean word lengths (German compounds run long; Norwegian words run short;
// etc.).
func Languages() []LanguageProfile {
	return []LanguageProfile{
		{Name: "Dutch", Alphabet: "enatirodslgkmvhupbjzcwfxyq", MeanLen: 9.5, SdLen: 2.8, Skew: 0.88, Seed: 101, PaperN: 229328},
		{Name: "English", Alphabet: "etaoinshrdlcumwfgypbvkjxqz", MeanLen: 8.0, SdLen: 2.4, Skew: 0.90, Seed: 102, PaperN: 69069},
		{Name: "French", Alphabet: "esaitnrulodcpmévqfbghjàxèz", MeanLen: 9.0, SdLen: 2.6, Skew: 0.87, Seed: 103, PaperN: 138257},
		{Name: "German", Alphabet: "enisratdhulcgmobwfkzvüpäßj", MeanLen: 10.5, SdLen: 3.2, Skew: 0.89, Seed: 104, PaperN: 75086},
		{Name: "Italian", Alphabet: "eaionlrtscdupmvghfbqzàòùìé", MeanLen: 9.2, SdLen: 2.5, Skew: 0.86, Seed: 105, PaperN: 116879},
		{Name: "Norwegian", Alphabet: "erntsilakodgmvfupbhøjåyæcw", MeanLen: 8.2, SdLen: 2.6, Skew: 0.88, Seed: 106, PaperN: 85637},
		{Name: "Spanish", Alphabet: "eaosrnidlctumpbgvyqhfzjñxk", MeanLen: 9.0, SdLen: 2.5, Skew: 0.87, Seed: 107, PaperN: 86061},
	}
}

// Dictionary generates a dataset of n distinct words under the edit-distance
// metric from the profile's first-order Markov letter model.
func Dictionary(p LanguageProfile, n int) *Dataset {
	rng := rand.New(rand.NewSource(p.Seed))
	letters := []rune(p.Alphabet)
	a := len(letters)

	// Stationary Zipf-like letter weights.
	base := make([]float64, a)
	w := 1.0
	for i := range base {
		base[i] = w
		w *= p.Skew
	}
	// Per-language first-order transition rows: the base distribution
	// perturbed multiplicatively, normalised via cumulative sums for
	// O(log a) sampling.
	cum := make([][]float64, a+1) // row a is the word-initial distribution
	for r := 0; r <= a; r++ {
		row := make([]float64, a)
		total := 0.0
		for c := 0; c < a; c++ {
			row[c] = base[c] * (0.25 + 1.5*rng.Float64())
			total += row[c]
		}
		acc := 0.0
		cumRow := make([]float64, a)
		for c := 0; c < a; c++ {
			acc += row[c] / total
			cumRow[c] = acc
		}
		cumRow[a-1] = 1 // guard against rounding
		cum[r] = cumRow
	}
	sample := func(row []float64) int {
		return sort.SearchFloat64s(row, rng.Float64())
	}

	seen := make(map[string]bool, n)
	pts := make([]metric.Point, 0, n)
	for len(pts) < n {
		length := int(math.Round(p.MeanLen + p.SdLen*rng.NormFloat64()))
		if length < 2 {
			length = 2
		}
		if length > 24 {
			length = 24
		}
		word := make([]rune, length)
		prev := a // word-initial row
		for i := range word {
			c := sample(cum[prev])
			word[i] = letters[c]
			prev = c
		}
		s := string(word)
		if !seen[s] {
			seen[s] = true
			pts = append(pts, metric.String(s))
		}
	}
	return &Dataset{Name: p.Name, Metric: metric.Edit{}, Points: pts}
}

// AllDictionaries generates all seven language dictionaries at the given
// size.
func AllDictionaries(n int) []*Dataset {
	langs := Languages()
	out := make([]*Dataset, len(langs))
	for i, p := range langs {
		out[i] = Dictionary(p, n)
	}
	return out
}

// GeneSequences generates the listeria analogue: n nucleotide strings under
// edit distance, produced by random point mutations, insertions, and
// deletions applied to prefixes of a common ancestor genome. Shared ancestry
// plus length variation concentrates the pairwise-distance distribution
// (distance is dominated by length difference), which is what gives the real
// listeria database its strikingly low intrinsic dimensionality (ρ ≈ 0.9 in
// the paper) and its tiny distance-permutation counts.
func GeneSequences(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	const bases = "ACGT"
	ancestorLen := 600
	ancestor := make([]byte, ancestorLen)
	for i := range ancestor {
		ancestor[i] = bases[rng.Intn(4)]
	}
	seen := make(map[string]bool, n)
	pts := make([]metric.Point, 0, n)
	for len(pts) < n {
		// Take a prefix of widely varying length, then mutate ~3% of it.
		length := 40 + rng.Intn(ancestorLen-40)
		seq := append([]byte(nil), ancestor[:length]...)
		mutations := 1 + rng.Intn(1+length/30)
		for m := 0; m < mutations; m++ {
			pos := rng.Intn(len(seq))
			switch rng.Intn(3) {
			case 0: // substitute
				seq[pos] = bases[rng.Intn(4)]
			case 1: // delete
				seq = append(seq[:pos], seq[pos+1:]...)
			case 2: // insert
				seq = append(seq[:pos], append([]byte{bases[rng.Intn(4)]}, seq[pos:]...)...)
			}
		}
		s := string(seq)
		if !seen[s] {
			seen[s] = true
			pts = append(pts, metric.String(s))
		}
	}
	return &Dataset{Name: "listeria", Metric: metric.Edit{}, Points: pts}
}
