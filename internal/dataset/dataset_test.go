package dataset

import (
	"math/rand"
	"testing"

	"distperm/internal/metric"
)

func TestUniformVectorsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := UniformVectors(rng, 100, 5)
	if len(pts) != 100 {
		t.Fatalf("n = %d", len(pts))
	}
	for _, p := range pts {
		v := p.(metric.Vector)
		if len(v) != 5 {
			t.Fatalf("dim = %d", len(v))
		}
		for _, x := range v {
			if x < 0 || x >= 1 {
				t.Fatalf("component %v outside [0,1)", x)
			}
		}
	}
}

func TestUniformDeterminism(t *testing.T) {
	a := UniformVectors(rand.New(rand.NewSource(7)), 50, 3)
	b := UniformVectors(rand.New(rand.NewSource(7)), 50, 3)
	for i := range a {
		av, bv := a[i].(metric.Vector), b[i].(metric.Vector)
		for j := range av {
			if av[j] != bv[j] {
				t.Fatal("same seed must reproduce the same data")
			}
		}
	}
}

func TestGaussianVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := GaussianVectors(rng, 2000, 2, 0.5, 0.1)
	var mean float64
	for _, p := range pts {
		mean += p.(metric.Vector)[0]
	}
	mean /= float64(len(pts))
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("sample mean %v, want ~0.5", mean)
	}
}

func TestClusteredVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := ClusteredVectors(rng, 500, 4, 5, 0.01)
	if len(pts) != 500 {
		t.Fatalf("n = %d", len(pts))
	}
	// Clustered data should have a much smaller mean nearest-point
	// distance than uniform data of the same size.
	uni := UniformVectors(rng, 500, 4)
	if nnMean(pts) >= nnMean(uni) {
		t.Error("clustered data should be locally denser than uniform")
	}
}

func nnMean(pts []metric.Point) float64 {
	m := metric.L2{}
	total := 0.0
	for i := 0; i < 50; i++ {
		best := 1e18
		for j := range pts {
			if j == i {
				continue
			}
			if d := m.Distance(pts[i], pts[j]); d < best {
				best = d
			}
		}
		total += best
	}
	return total / 50
}

func TestChooseSites(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := UniformDataset(rng, 100, 2, metric.L2{})
	sites := ds.ChooseSites(rng, 10)
	if len(sites) != 10 {
		t.Fatalf("sites = %d", len(sites))
	}
	seen := map[*float64]bool{}
	for _, s := range sites {
		v := s.(metric.Vector)
		if seen[&v[0]] {
			t.Fatal("duplicate site")
		}
		seen[&v[0]] = true
	}
}

func TestChooseSitesPanicsWhenTooMany(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := UniformDataset(rng, 5, 2, metric.L2{})
	defer func() {
		if recover() == nil {
			t.Error("too many sites should panic")
		}
	}()
	ds.ChooseSites(rng, 6)
}

func TestDictionaryGeneratesDistinctWords(t *testing.T) {
	for _, p := range Languages() {
		ds := Dictionary(p, 2000)
		if ds.N() != 2000 {
			t.Fatalf("%s: n = %d", p.Name, ds.N())
		}
		if ds.Metric.Name() != "edit" {
			t.Fatalf("%s: metric %s", p.Name, ds.Metric.Name())
		}
		seen := map[metric.String]bool{}
		for _, pt := range ds.Points {
			w := pt.(metric.String)
			if seen[w] {
				t.Fatalf("%s: duplicate word %q", p.Name, w)
			}
			seen[w] = true
			if len(w) < 2 || len(w) > 4*24 {
				t.Fatalf("%s: word length %d out of range", p.Name, len(w))
			}
		}
	}
}

func TestDictionaryDeterminism(t *testing.T) {
	p := Languages()[0]
	a := Dictionary(p, 100)
	b := Dictionary(p, 100)
	for i := range a.Points {
		if a.Points[i].(metric.String) != b.Points[i].(metric.String) {
			t.Fatal("dictionary not deterministic")
		}
	}
}

func TestLanguagesAreDistinct(t *testing.T) {
	// Different language profiles must generate different dictionaries.
	langs := Languages()
	if len(langs) != 7 {
		t.Fatalf("languages = %d, want 7", len(langs))
	}
	a := Dictionary(langs[0], 50)
	b := Dictionary(langs[1], 50)
	same := 0
	for i := range a.Points {
		if a.Points[i].(metric.String) == b.Points[i].(metric.String) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("%d/50 words identical across languages", same)
	}
}

func TestGeneSequences(t *testing.T) {
	ds := GeneSequences(1, 500)
	if ds.N() != 500 {
		t.Fatalf("n = %d", ds.N())
	}
	for _, pt := range ds.Points {
		s := string(pt.(metric.String))
		if len(s) == 0 {
			t.Fatal("empty sequence")
		}
		for i := 0; i < len(s); i++ {
			switch s[i] {
			case 'A', 'C', 'G', 'T':
			default:
				t.Fatalf("invalid base %q", s[i])
			}
		}
	}
}

func TestGeneSequencesLowRho(t *testing.T) {
	// The listeria analogue must have markedly lower intrinsic
	// dimensionality than a dictionary (the paper's ρ: 0.894 vs 5–10).
	rng := rand.New(rand.NewSource(6))
	genes := GeneSequences(1, 800)
	dict := Dictionary(Languages()[1], 800)
	rhoGenes := Rho(rng, genes, 3000)
	rhoDict := Rho(rng, dict, 3000)
	if rhoGenes >= rhoDict {
		t.Errorf("rho(listeria)=%v should be below rho(dictionary)=%v", rhoGenes, rhoDict)
	}
	if rhoGenes > 2.5 {
		t.Errorf("rho(listeria)=%v, want small (paper: 0.894)", rhoGenes)
	}
}

func TestDocumentVectorsNonZero(t *testing.T) {
	ds := DocumentVectors(9, "docs", 300, 200, 8, 50)
	if ds.N() != 300 {
		t.Fatalf("n = %d", ds.N())
	}
	if ds.Metric.Name() != "angular" {
		t.Fatalf("metric = %s", ds.Metric.Name())
	}
	for _, pt := range ds.Points {
		v := pt.(metric.Vector)
		nonzero := false
		for _, x := range v {
			if x < 0 {
				t.Fatal("negative term frequency")
			}
			if x > 0 {
				nonzero = true
			}
		}
		if !nonzero {
			t.Fatal("zero document vector (angular metric undefined)")
		}
	}
}

func TestShortDocsHigherRhoThanLong(t *testing.T) {
	// Short near-orthogonal documents concentrate pairwise angles,
	// driving ρ up — the paper's short database has ρ ≈ 809 vs long's 2.6.
	rng := rand.New(rand.NewSource(7))
	long := DocumentVectors(202, "long", 600, 400, 3, 600)
	short := DocumentVectors(203, "short", 600, 400, 40, 30)
	rhoLong := Rho(rng, long, 4000)
	rhoShort := Rho(rng, short, 4000)
	if rhoShort <= rhoLong {
		t.Errorf("rho(short)=%v should exceed rho(long)=%v", rhoShort, rhoLong)
	}
}

func TestColorHistogramsNormalised(t *testing.T) {
	ds := ColorHistograms(11, 200, 112)
	for _, pt := range ds.Points {
		v := pt.(metric.Vector)
		if len(v) != 112 {
			t.Fatalf("dim = %d", len(v))
		}
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				t.Fatal("negative bin")
			}
			sum += x
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("histogram sums to %v", sum)
		}
	}
}

func TestNASAFeatures(t *testing.T) {
	ds := NASAFeatures(12, 300, 20, 4)
	if ds.N() != 300 {
		t.Fatalf("n = %d", ds.N())
	}
	for _, pt := range ds.Points {
		if len(pt.(metric.Vector)) != 20 {
			t.Fatal("dimension mismatch")
		}
	}
}

func TestRhoUniformIncreasesWithDimension(t *testing.T) {
	// ρ of the uniform cube grows roughly linearly with dimension
	// (Chávez–Navarro); verify monotone trend over a spread of dims.
	rng := rand.New(rand.NewSource(8))
	rho2 := Rho(rng, UniformDataset(rng, 3000, 2, metric.L2{}), 5000)
	rho8 := Rho(rng, UniformDataset(rng, 3000, 8, metric.L2{}), 5000)
	if rho8 <= rho2 {
		t.Errorf("rho(8d)=%v should exceed rho(2d)=%v", rho8, rho2)
	}
}

func TestRhoEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tiny := &Dataset{Name: "tiny", Metric: metric.L2{}, Points: []metric.Point{metric.Vector{0}}}
	if got := Rho(rng, tiny, 100); got != 0 {
		t.Errorf("rho of single point = %v, want 0", got)
	}
	// All-identical points: zero variance → 0 by convention.
	same := &Dataset{Name: "same", Metric: metric.L2{}, Points: []metric.Point{
		metric.Vector{1}, metric.Vector{1}, metric.Vector{1},
	}}
	if got := Rho(rng, same, 100); got != 0 {
		t.Errorf("rho of identical points = %v, want 0", got)
	}
}

func TestSISAPSuiteRoster(t *testing.T) {
	suite := SISAPSuite(ScaledSizes(200))
	if len(suite) != 12 {
		t.Fatalf("suite size = %d, want 12", len(suite))
	}
	wantNames := []string{"Dutch", "English", "French", "German", "Italian",
		"Norwegian", "Spanish", "listeria", "long", "short", "colors", "nasa"}
	for i, ds := range suite {
		if ds.Name != wantNames[i] {
			t.Errorf("suite[%d] = %s, want %s", i, ds.Name, wantNames[i])
		}
		if ds.N() == 0 {
			t.Errorf("%s is empty", ds.Name)
		}
	}
}

func TestScaledSizes(t *testing.T) {
	s := ScaledSizes(8)
	p := PaperSizes()
	if s.Dictionary != 75086/8 {
		t.Errorf("Dictionary = %d", s.Dictionary)
	}
	if p.Dictionary != 0 {
		t.Error("paper sizes should signal per-language dictionary sizes")
	}
	if s.Long != p.Long {
		t.Error("long should stay at paper size")
	}
	tiny := ScaledSizes(1_000_000)
	if tiny.Colors != 500 {
		t.Errorf("floor should be 500, got %d", tiny.Colors)
	}
}
