package dataset

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateByName(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, gen := range []string{
		"uniform", "gauss", "clustered", "english", "Dutch", "listeria",
		"long", "short", "colors", "nasa",
	} {
		ds, err := Generate(rng, gen, 200, 3)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if ds.N() == 0 {
			t.Errorf("%s: empty dataset", gen)
		}
	}
	if _, err := Generate(rng, "bogus", 10, 2); err == nil {
		t.Error("unknown generator should error")
	}
	if len(GeneratorNames()) < 10 {
		t.Errorf("GeneratorNames() = %v, implausibly short", GeneratorNames())
	}
}

func TestReadVectorFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "points.txt")
	content := "0.1 0.2 0.3\n0.4 0.5 0.6\n\n0.7 0.8 0.9\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := ReadVectorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 {
		t.Fatalf("n = %d, want 3", ds.N())
	}

	// Ragged rows must be rejected.
	bad := filepath.Join(dir, "ragged.txt")
	os.WriteFile(bad, []byte("1 2\n3\n"), 0o644)
	if _, err := ReadVectorFile(bad); err == nil {
		t.Error("ragged file should error")
	}
	// Non-numeric input must be rejected.
	nonNum := filepath.Join(dir, "alpha.txt")
	os.WriteFile(nonNum, []byte("a b c\n"), 0o644)
	if _, err := ReadVectorFile(nonNum); err == nil {
		t.Error("non-numeric file should error")
	}
	// Empty file must be rejected.
	empty := filepath.Join(dir, "empty.txt")
	os.WriteFile(empty, []byte("\n\n"), 0o644)
	if _, err := ReadVectorFile(empty); err == nil {
		t.Error("empty file should error")
	}
	// Missing file must be rejected.
	if _, err := ReadVectorFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
}
