package dataset

import (
	"math/rand"
	"testing"

	"distperm/internal/core"
	"distperm/internal/metric"
)

func TestSparseDocumentVectorsMatchDense(t *testing.T) {
	// Same seed: the sparse dataset must be the same point set as the
	// dense one, and all pairwise distances must agree.
	dense := DocumentVectors(300, "docs", 150, 200, 6, 40)
	sparse := SparseDocumentVectors(300, "docs", 150, 200, 6, 40)
	if sparse.N() != dense.N() {
		t.Fatalf("sizes differ: %d vs %d", sparse.N(), dense.N())
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		i, j := rng.Intn(dense.N()), rng.Intn(dense.N())
		dd := dense.Metric.Distance(dense.Points[i], dense.Points[j])
		ds := sparse.Metric.Distance(sparse.Points[i], sparse.Points[j])
		if diff := dd - ds; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("distance mismatch at (%d,%d): %v vs %v", i, j, dd, ds)
		}
	}
}

func TestSparseDocumentsSaveWork(t *testing.T) {
	sparse := SparseDocumentVectors(301, "docs", 100, 5000, 6, 40)
	// Short documents over a 5000-term vocabulary must be genuinely
	// sparse.
	for _, p := range sparse.Points {
		s := p.(metric.Sparse)
		if s.NNZ() == 0 || s.NNZ() > 200 {
			t.Fatalf("NNZ = %d, want 1..200", s.NNZ())
		}
	}
}

func TestSparseDocumentsPermutationCounting(t *testing.T) {
	// The whole counting pipeline must run on sparse points.
	ds := SparseDocumentVectors(302, "docs", 500, 1000, 4, 40)
	rng := rand.New(rand.NewSource(2))
	sites := ds.ChooseSites(rng, 6)
	count := core.CountDistinct(ds.Metric, sites, ds.Points)
	if count < 2 || count > 500 {
		t.Errorf("count = %d out of range", count)
	}
	if count > 720 {
		t.Errorf("count exceeds 6!")
	}
}
