package dataset

import (
	"math"
	"math/rand"
	"testing"

	"distperm/internal/metric"
)

func TestCorrelationDimensionUniform(t *testing.T) {
	// For uniform data in the d-cube, D₂ ≈ d at small radii.
	rng := rand.New(rand.NewSource(90))
	for _, d := range []int{1, 2, 3} {
		ds := UniformDataset(rng, 20_000, d, metric.L2{})
		got := CorrelationDimension(rng, ds, 30_000)
		if math.Abs(got-float64(d)) > 0.5 {
			t.Errorf("d=%d: D2 estimate %v", d, got)
		}
	}
}

func TestCorrelationDimensionEmbedded(t *testing.T) {
	// 2-d data embedded in 10 ambient dimensions must read ≈2, not ≈10 —
	// the local statistic sees through the embedding, unlike raw
	// coordinate count.
	rng := rand.New(rand.NewSource(91))
	pts := make([]metric.Point, 20_000)
	for i := range pts {
		v := make(metric.Vector, 10)
		v[0], v[1] = rng.Float64(), rng.Float64()
		pts[i] = v
	}
	ds := &Dataset{Name: "embedded", Metric: metric.L2{}, Points: pts}
	got := CorrelationDimension(rng, ds, 30_000)
	if got > 3 {
		t.Errorf("embedded 2-d data: D2 = %v, want ≈2", got)
	}
}

func TestCorrelationDimensionOrderingMatchesPermCounts(t *testing.T) {
	// D₂ and the distance-permutation count should order datasets the
	// same way (both are dimension signals per the paper's §5).
	rng := rand.New(rand.NewSource(92))
	low := UniformDataset(rng, 10_000, 2, metric.L2{})
	high := UniformDataset(rng, 10_000, 6, metric.L2{})
	d2low := CorrelationDimension(rng, low, 20_000)
	d2high := CorrelationDimension(rng, high, 20_000)
	if d2high <= d2low {
		t.Errorf("D2(6d)=%v should exceed D2(2d)=%v", d2high, d2low)
	}
}

func TestCorrelationDimensionDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	single := &Dataset{Name: "one", Metric: metric.L2{}, Points: []metric.Point{metric.Vector{1}}}
	if got := CorrelationDimension(rng, single, 1000); got != 0 {
		t.Errorf("single point: %v, want 0", got)
	}
	same := &Dataset{Name: "same", Metric: metric.L2{}, Points: []metric.Point{
		metric.Vector{1}, metric.Vector{1}, metric.Vector{1},
	}}
	if got := CorrelationDimension(rng, same, 1000); got != 0 {
		t.Errorf("identical points: %v, want 0", got)
	}
}

func TestLeastSquaresSlope(t *testing.T) {
	// Exact line y = 3x + 1.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 4, 7, 10}
	if got := leastSquaresSlope(xs, ys); math.Abs(got-3) > 1e-12 {
		t.Errorf("slope = %v, want 3", got)
	}
	if got := leastSquaresSlope([]float64{2, 2}, []float64{1, 5}); got != 0 {
		t.Errorf("degenerate xs: %v, want 0", got)
	}
}
