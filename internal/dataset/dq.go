package dataset

import (
	"math"
	"math/rand"
	"sort"
)

// CorrelationDimension estimates the D₂ (correlation) dimension of a
// database: the growth exponent of the correlation integral
//
//	C(r) = P[d(x, y) ≤ r]  ~  r^D₂  as r → 0,
//
// estimated as the slope of log C(r) against log r over a small-radius
// window. The paper's §5 points to the Dq dimensions as the small-radius
// alternative to ρ for describing indexing difficulty: ρ reflects the
// global distance distribution, D₂ the local density growth that governs
// behaviour at small query radii.
//
// The estimator samples `pairs` random point pairs, takes the radius window
// between the 2nd and 25th percentile of sampled distances, and fits the
// slope by least squares over logarithmically spaced radii. It returns 0
// for degenerate inputs (fewer than 2 points, all distances equal).
func CorrelationDimension(rng *rand.Rand, d *Dataset, pairs int) float64 {
	if d.N() < 2 || pairs < 16 {
		return 0
	}
	dists := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		a := rng.Intn(d.N())
		b := rng.Intn(d.N() - 1)
		if b >= a {
			b++
		}
		dist := d.Metric.Distance(d.Points[a], d.Points[b])
		if dist > 0 {
			dists = append(dists, dist)
		}
	}
	if len(dists) < 16 {
		return 0
	}
	sort.Float64s(dists)
	lo := dists[len(dists)/50]    // 2nd percentile
	hi := dists[len(dists)/4]     // 25th percentile
	if lo <= 0 || hi <= lo*1.01 { // degenerate window
		return 0
	}
	// C(r) at logarithmically spaced radii via binary search in the
	// sorted sample.
	const steps = 12
	var xs, ys []float64
	for s := 0; s <= steps; s++ {
		r := lo * math.Pow(hi/lo, float64(s)/steps)
		c := sort.SearchFloat64s(dists, r)
		if c == 0 {
			continue
		}
		xs = append(xs, math.Log(r))
		ys = append(ys, math.Log(float64(c)/float64(len(dists))))
	}
	if len(xs) < 2 {
		return 0
	}
	return leastSquaresSlope(xs, ys)
}

func leastSquaresSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
