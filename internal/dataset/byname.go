package dataset

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"distperm/internal/metric"
)

// GeneratorNames lists the names Generate accepts, in display order — the
// vector generators first, then the dictionary languages, then the
// remaining SISAP-analogue datasets.
func GeneratorNames() []string {
	names := []string{"uniform", "gauss", "clustered"}
	for _, p := range Languages() {
		names = append(names, strings.ToLower(p.Name))
	}
	return append(names, "listeria", "long", "short", "colors", "nasa")
}

// Generate constructs the named dataset at size n (dimension d for the
// vector generators), drawing randomness from rng — the one seam behind the
// -gen flag of every binary. Language names match case-insensitively.
func Generate(rng *rand.Rand, gen string, n, d int) (*Dataset, error) {
	switch gen {
	case "uniform":
		return UniformDataset(rng, n, d, metric.L2{}), nil
	case "gauss":
		return &Dataset{Name: "gauss", Metric: metric.L2{},
			Points: GaussianVectors(rng, n, d, 0.5, 0.15)}, nil
	case "clustered":
		return &Dataset{Name: "clustered", Metric: metric.L2{},
			Points: ClusteredVectors(rng, n, d, 10, 0.03)}, nil
	case "listeria":
		return GeneSequences(rng.Int63(), n), nil
	case "long":
		return DocumentVectors(rng.Int63(), "long", n, 400, 12, 600), nil
	case "short":
		return DocumentVectors(rng.Int63(), "short", n, 400, 40, 30), nil
	case "colors":
		return ColorHistograms(rng.Int63(), n, 112), nil
	case "nasa":
		return NASAFeatures(rng.Int63(), n, 20, 4), nil
	default:
		for _, p := range Languages() {
			if strings.EqualFold(p.Name, gen) {
				return Dictionary(p, n), nil
			}
		}
		return nil, fmt.Errorf("unknown generator %q (have %s)",
			gen, strings.Join(GeneratorNames(), ", "))
	}
}

// Load resolves the -file / -gen flag pair every binary shares: a non-empty
// file path reads vectors from disk, otherwise gen names a generator.
func Load(rng *rand.Rand, gen, file string, n, d int) (*Dataset, error) {
	if file != "" {
		return ReadVectorFile(file)
	}
	return Generate(rng, gen, n, d)
}

// Sample draws n query points from the dataset's own points, with
// replacement — the query workload of the serving and loadgen modes.
func (d *Dataset) Sample(rng *rand.Rand, n int) []metric.Point {
	qs := make([]metric.Point, n)
	for i := range qs {
		qs[i] = d.Points[rng.Intn(d.N())]
	}
	return qs
}

// ReadVectorFile reads whitespace-separated vectors, one per line, into an
// L2 dataset named after the path. Every line must have the same number of
// fields; blank lines are skipped.
func ReadVectorFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pts []metric.Point
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	dims := -1
	for line := 1; sc.Scan(); line++ {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if dims == -1 {
			dims = len(fields)
		} else if len(fields) != dims {
			return nil, fmt.Errorf("%s:%d: %d fields, want %d", path, line, len(fields), dims)
		}
		v := make(metric.Vector, len(fields))
		for i, fld := range fields {
			x, err := strconv.ParseFloat(fld, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, line, err)
			}
			v[i] = x
		}
		pts = append(pts, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("%s: no points", path)
	}
	return &Dataset{Name: path, Metric: metric.L2{}, Points: pts}, nil
}
