package dataset

import (
	"math"
	"math/rand"

	"distperm/internal/metric"
)

// DocumentVectors generates the long/short analogues: n term-frequency
// vectors over a vocabulary of dim terms, compared under the angular
// (cosine) metric. Documents are produced by a two-level topic model: each
// document mixes a handful of topic distributions (Zipf-weighted over the
// vocabulary), so the support concentrates near a low-dimensional cone —
// which is why the paper's long database, despite its nominal
// dimensionality, shows permutation counts comparable to a low-dimensional
// Euclidean uniform distribution.
//
//   - "long": few, long documents (the paper's 1265 news articles).
//   - "short": many, short documents (the paper's 25276 short documents,
//     whose near-orthogonality yields the huge ρ the paper reports).
func DocumentVectors(seed int64, name string, n, dim, topics int, docLen int) *Dataset {
	rng := rand.New(rand.NewSource(seed))

	// Topic distributions: Zipf over a shuffled vocabulary per topic.
	topicCum := make([][]float64, topics)
	for t := range topicCum {
		order := rng.Perm(dim)
		weights := make([]float64, dim)
		for rank, term := range order {
			weights[term] = 1 / math.Pow(float64(rank+1), 1.1)
		}
		total := 0.0
		for _, w := range weights {
			total += w
		}
		cum := make([]float64, dim)
		acc := 0.0
		for i, w := range weights {
			acc += w / total
			cum[i] = acc
		}
		cum[dim-1] = 1
		topicCum[t] = cum
	}

	pts := make([]metric.Point, n)
	for i := range pts {
		v := make(metric.Vector, dim)
		// Each document draws from 1–3 topics.
		nt := 1 + rng.Intn(3)
		docTopics := make([]int, nt)
		for j := range docTopics {
			docTopics[j] = rng.Intn(topics)
		}
		length := docLen/2 + rng.Intn(docLen)
		for w := 0; w < length; w++ {
			cum := topicCum[docTopics[rng.Intn(nt)]]
			term := searchCum(cum, rng.Float64())
			v[term]++
		}
		// Guarantee a non-zero vector for the angular metric.
		if isZero(v) {
			v[rng.Intn(dim)] = 1
		}
		pts[i] = v
	}
	return &Dataset{Name: name, Metric: metric.Angular{}, Points: pts}
}

// SparseDocumentVectors is DocumentVectors with the word-space-native
// representation: each document is a metric.Sparse term-frequency vector
// under metric.SparseAngular. With realistic vocabularies ("thousands or
// millions of dimensions", as the paper's §1 puts it) the sparse form is
// the only practical one; distances cost O(non-zeros) instead of O(dim).
func SparseDocumentVectors(seed int64, name string, n, dim, topics, docLen int) *Dataset {
	dense := DocumentVectors(seed, name, n, dim, topics, docLen)
	pts := make([]metric.Point, len(dense.Points))
	for i, p := range dense.Points {
		v := p.(metric.Vector)
		var idx []int
		var val []float64
		for j, x := range v {
			if x != 0 {
				idx = append(idx, j)
				val = append(val, x)
			}
		}
		pts[i] = metric.NewSparse(idx, val)
	}
	return &Dataset{Name: name, Metric: metric.SparseAngular{}, Points: pts}
}

// ColorHistograms generates the colors analogue: n normalised dim-bin
// histograms under the L1 metric, drawn from a small number of smooth
// Gaussian-bump mixtures. Image colour histograms are heavily clustered
// (most images share a few dominant palettes), giving the low effective
// dimensionality the paper measures for colors.
func ColorHistograms(seed int64, n, dim int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	const palettes = 24
	centres := make([][]float64, palettes)
	for p := range centres {
		c := make([]float64, dim)
		// Two or three smooth bumps per palette.
		for b := 0; b < 2+rng.Intn(2); b++ {
			mu := rng.Float64() * float64(dim)
			sd := 2 + 6*rng.Float64()
			amp := 0.5 + rng.Float64()
			for i := range c {
				d := (float64(i) - mu) / sd
				c[i] += amp * math.Exp(-d*d/2)
			}
		}
		centres[p] = c
	}
	pts := make([]metric.Point, n)
	for i := range pts {
		c := centres[rng.Intn(palettes)]
		v := make(metric.Vector, dim)
		total := 0.0
		for j := range v {
			x := c[j] * (0.6 + 0.8*rng.Float64())
			v[j] = x
			total += x
		}
		for j := range v {
			v[j] /= total
		}
		pts[i] = v
	}
	return &Dataset{Name: "colors", Metric: metric.L1{}, Points: pts}
}

// NASAFeatures generates the nasa analogue: n feature vectors of dimension
// dim under L2 whose variance is concentrated in a few principal directions
// (a random linear map applied to a low-dimensional latent Gaussian plus
// small isotropic noise). The paper finds nasa behaves like a 3–4
// dimensional uniform distribution; the latent dimension below is chosen to
// match.
func NASAFeatures(seed int64, n, dim, latent int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	// Random latent->observed map.
	a := make([][]float64, dim)
	for i := range a {
		a[i] = make([]float64, latent)
		for j := range a[i] {
			a[i][j] = rng.NormFloat64()
		}
	}
	pts := make([]metric.Point, n)
	for i := range pts {
		z := make([]float64, latent)
		for j := range z {
			z[j] = rng.NormFloat64()
		}
		v := make(metric.Vector, dim)
		for r := 0; r < dim; r++ {
			s := 0.0
			for j := 0; j < latent; j++ {
				s += a[r][j] * z[j]
			}
			v[r] = s + 0.05*rng.NormFloat64()
		}
		pts[i] = v
	}
	return &Dataset{Name: "nasa", Metric: metric.L2{}, Points: pts}
}

func searchCum(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func isZero(v metric.Vector) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
