// Package construct implements the constructive proof of Theorem 6: for any
// k ≥ 2, ε > 0, and p ≥ 1, it places k sites in (k−1)-dimensional Lp space
// such that every one of the k! permutations occurs as the distance
// permutation of some point near the origin, and produces an explicit
// witness point for each permutation.
//
// The construction follows the paper's induction exactly:
//
//   - Basis (k = 2): sites ⟨−1⟩ and ⟨1⟩; witnesses ⟨−ε/2⟩ and ⟨ε/2⟩.
//   - Step (k > 2): recursively construct k−1 sites and witnesses in k−2
//     dimensions with ε/4; extend all by a zero coordinate; add site
//     x_k = (0,…,0, 1+ε/4). For each permutation π of k sites with π' = π
//     minus k, take the recursive witness for π' and choose its new last
//     coordinate z ∈ (−ε/2, 3ε/4) to slot site k into the required position
//     of the distance order — found here by binary-search on each adjacent
//     gap of the recursive witness's sorted distances.
package construct

import (
	"fmt"
	"math"
	"sort"

	"distperm/internal/core"
	"distperm/internal/metric"
	"distperm/internal/perm"
)

// Witness pairs a permutation with a point realising it.
type Witness struct {
	Perm  perm.Permutation
	Point metric.Vector
}

// Result holds a full Theorem 6 construction: the sites and one witness per
// permutation of the sites.
type Result struct {
	K         int
	P         float64 // Lp parameter
	Eps       float64
	Sites     []metric.Vector
	Witnesses []Witness // length k!
}

// Build runs the construction for k sites under the Lp metric with the given
// ε ∈ (0, 1/2). It panics for k < 2 or k > 7 (8! = 40320 witnesses is
// already generous; the construction is exponential by nature).
func Build(k int, p float64, eps float64) *Result {
	if k < 2 || k > 7 {
		panic(fmt.Sprintf("construct: Build supports 2 <= k <= 7, got %d", k))
	}
	if eps <= 0 || eps >= 0.5 {
		panic(fmt.Sprintf("construct: need 0 < eps < 1/2, got %g", eps))
	}
	m := metric.NewLP(p)
	sites, wit := build(k, m, eps)
	res := &Result{K: k, P: p, Eps: eps, Sites: sites, Witnesses: wit}
	return res
}

// build returns sites in k−1 dimensions and a witness for every permutation
// of {0..k−1}.
func build(k int, m metric.Metric, eps float64) ([]metric.Vector, []Witness) {
	if k == 2 {
		sites := []metric.Vector{{-1}, {1}}
		return sites, []Witness{
			{Perm: perm.Permutation{0, 1}, Point: metric.Vector{-eps / 2}},
			{Perm: perm.Permutation{1, 0}, Point: metric.Vector{eps / 2}},
		}
	}
	subSites, subWit := build(k-1, m, eps/4)
	// Extend sites by a zero coordinate; add the new site on the new axis.
	sites := make([]metric.Vector, 0, k)
	for _, s := range subSites {
		sites = append(sites, append(s.Clone(), 0))
	}
	newSite := make(metric.Vector, k-1)
	newSite[k-2] = 1 + eps/4
	sites = append(sites, newSite)

	witnesses := make([]Witness, 0, len(subWit)*k)
	for _, w := range subWit {
		base := append(w.Point.Clone(), 0)
		// For each insertion position of site k−1 (0-based index k−1)
		// into the recursive permutation, find z realising it.
		for pos := 0; pos <= k-1; pos++ {
			target := insertAt(w.Perm, k-1, pos)
			z := findZ(m, sites, base, target, eps)
			pt := base.Clone()
			pt[k-2] = z
			witnesses = append(witnesses, Witness{Perm: target, Point: pt})
		}
	}
	return sites, witnesses
}

// insertAt returns sub with value v inserted at index pos.
func insertAt(sub perm.Permutation, v, pos int) perm.Permutation {
	out := make(perm.Permutation, 0, len(sub)+1)
	out = append(out, sub[:pos]...)
	out = append(out, v)
	out = append(out, sub[pos:]...)
	return out
}

// findZ locates a last-coordinate value z ∈ (−ε/2, 3ε/4) at which the point
// base-with-z has distance permutation target. Following the proof, the new
// site's distance is strictly decreasing in z on this interval while the old
// sites' relative order is unchanged, so the new site's rank is a
// non-increasing step function of z sweeping from k−1 (at z = −ε/2) to 0
// (at z = 3ε/4). Each target rank is realised on a plateau of positive
// width; bisecting to *both* plateau edges and returning the midpoint keeps
// the witness safely away from the tie boundaries where ranks change.
func findZ(m metric.Metric, sites []metric.Vector, base metric.Vector, target perm.Permutation, eps float64) float64 {
	k := len(sites)
	newIdx := k - 1
	wantRank := rankOf(target, newIdx)

	pt := base.Clone()
	rankAt := func(z float64) int {
		pt[len(pt)-1] = z
		d := make([]float64, k)
		for i, s := range sites {
			d[i] = m.Distance(s, pt)
		}
		// Rank of the new site under the paper's tie-break: number of
		// sites strictly closer, plus those tied with smaller index
		// (every old index is smaller than newIdx).
		r := 0
		for i := 0; i < k; i++ {
			if i == newIdx {
				continue
			}
			if d[i] < d[newIdx] || d[i] == d[newIdx] {
				r++
			}
		}
		return r
	}

	lo, hi := -eps/2, 3*eps/4
	if r := rankAt(lo); r != k-1 {
		panic(fmt.Sprintf("construct: rank %d at interval start, want %d", r, k-1))
	}
	if r := rankAt(hi); r != 0 {
		panic(fmt.Sprintf("construct: rank %d at interval end, want 0", r))
	}
	// crossing(t) ≈ the z at which rank first becomes ≤ t (rank is
	// non-increasing in z). crossing(k−1) = lo and crossing(−1) = hi by the
	// endpoint checks above.
	crossing := func(t int) float64 {
		if t >= k-1 {
			return lo
		}
		if t < 0 {
			return hi
		}
		a, b := lo, hi // rank(a) > t, rank(b) <= t
		for iter := 0; iter < 100; iter++ {
			mid := (a + b) / 2
			if rankAt(mid) > t {
				a = mid
			} else {
				b = mid
			}
		}
		return (a + b) / 2
	}
	z := (crossing(wantRank) + crossing(wantRank-1)) / 2
	if got := permOf(m, sites, pt, z); !got.Equal(target) {
		panic(fmt.Sprintf("construct: z=%v realises %v, want %v (eps=%g)", z, got, target, eps))
	}
	return z
}

func permOf(m metric.Metric, sites []metric.Vector, pt metric.Vector, z float64) perm.Permutation {
	pt[len(pt)-1] = z
	pts := make([]metric.Point, len(sites))
	for i, s := range sites {
		pts[i] = s
	}
	return core.NewPermuter(m, pts).Permutation(pt)
}

// rankOf returns the position of v within p.
func rankOf(p perm.Permutation, v int) int {
	for i, x := range p {
		if x == v {
			return i
		}
	}
	panic("construct: value not in permutation")
}

// Verify recomputes the distance permutation of every witness and checks it
// matches, that all k! permutations are covered exactly once, and the
// proof's side conditions (2)–(4): witnesses within ε of the origin, site
// distances within ε of 1, and no exact ties. It returns the first
// discrepancy as an error, or nil.
func (r *Result) Verify() error {
	m := metric.NewLP(r.P)
	sitePts := make([]metric.Point, len(r.Sites))
	for i, s := range r.Sites {
		sitePts[i] = s
	}
	pm := core.NewPermuter(m, sitePts)
	origin := make(metric.Vector, r.K-1)

	fact := 1
	for i := 2; i <= r.K; i++ {
		fact *= i
	}
	if len(r.Witnesses) != fact {
		return fmt.Errorf("construct: %d witnesses, want %d", len(r.Witnesses), fact)
	}
	seen := make(map[string]bool, fact)
	for _, w := range r.Witnesses {
		got := pm.Permutation(w.Point)
		if !got.Equal(w.Perm) {
			return fmt.Errorf("construct: witness for %v realises %v", w.Perm, got)
		}
		key := w.Perm.Key()
		if seen[key] {
			return fmt.Errorf("construct: duplicate witness for %v", w.Perm)
		}
		seen[key] = true
		if d := m.Distance(origin, w.Point); d >= r.Eps {
			return fmt.Errorf("construct: witness for %v at distance %g from origin, want < %g", w.Perm, d, r.Eps)
		}
		dists := pm.Distances(w.Point)
		sorted := append([]float64(nil), dists...)
		sort.Float64s(sorted)
		for i := 1; i < len(sorted); i++ {
			if sorted[i] == sorted[i-1] {
				return fmt.Errorf("construct: witness for %v has tied site distances", w.Perm)
			}
		}
		for _, d := range dists {
			if math.Abs(1-d) >= r.Eps {
				return fmt.Errorf("construct: witness for %v has site distance %g, want within %g of 1", w.Perm, d, r.Eps)
			}
		}
	}
	return nil
}
