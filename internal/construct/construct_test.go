package construct

import (
	"math"
	"testing"

	"distperm/internal/metric"
)

func TestBuildVerifiesAcrossKAndP(t *testing.T) {
	for _, p := range []float64{1, 2, 3, math.Inf(1)} {
		for k := 2; k <= 5; k++ {
			r := Build(k, p, 0.3)
			if err := r.Verify(); err != nil {
				t.Errorf("k=%d p=%v: %v", k, p, err)
			}
		}
	}
}

func TestBuildK6(t *testing.T) {
	if testing.Short() {
		t.Skip("720 witnesses in 5 dimensions")
	}
	for _, p := range []float64{1, 2, math.Inf(1)} {
		r := Build(6, p, 0.3)
		if err := r.Verify(); err != nil {
			t.Errorf("k=6 p=%v: %v", p, err)
		}
	}
}

func TestWitnessCount(t *testing.T) {
	r := Build(4, 2, 0.25)
	if len(r.Witnesses) != 24 {
		t.Errorf("witnesses = %d, want 24", len(r.Witnesses))
	}
	if len(r.Sites) != 4 {
		t.Errorf("sites = %d, want 4", len(r.Sites))
	}
	for _, s := range r.Sites {
		if len(s) != 3 {
			t.Errorf("site dimension %d, want 3 (k−1)", len(s))
		}
	}
}

func TestSmallerEpsilonStillWorks(t *testing.T) {
	r := Build(4, 2, 0.05)
	if err := r.Verify(); err != nil {
		t.Error(err)
	}
	// Witnesses must be within ε of the origin.
	origin := make(metric.Vector, 3)
	for _, w := range r.Witnesses {
		if d := (metric.L2{}).Distance(origin, w.Point); d >= 0.05 {
			t.Errorf("witness at distance %v, want < 0.05", d)
		}
	}
}

func TestBasisCase(t *testing.T) {
	r := Build(2, 2, 0.4)
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(r.Witnesses) != 2 {
		t.Fatalf("k=2 should have 2 witnesses")
	}
}

func TestBuildPanics(t *testing.T) {
	cases := []struct {
		k   int
		p   float64
		eps float64
	}{
		{1, 2, 0.3},  // k too small
		{8, 2, 0.3},  // k too large
		{4, 2, 0},    // eps zero
		{4, 2, 0.5},  // eps at the boundary
		{4, 2, -0.1}, // eps negative
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Build(%d,%v,%v) should panic", c.k, c.p, c.eps)
				}
			}()
			Build(c.k, c.p, c.eps)
		}()
	}
}

func TestSitesNearUnitDistanceFromOrigin(t *testing.T) {
	// The construction places sites approximately unit distance from the
	// origin (Fig 6's geometry): within ε·(levels) in the Lp metric used.
	r := Build(5, 2, 0.2)
	m := metric.L2{}
	origin := make(metric.Vector, 4)
	for i, s := range r.Sites {
		d := m.Distance(origin, s)
		if math.Abs(d-1) > 0.3 {
			t.Errorf("site %d at distance %v from origin", i, d)
		}
	}
}
