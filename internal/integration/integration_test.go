// Package integration ties the theory modules to the experimental modules:
// every test crosses at least two packages and checks a paper-level claim
// end to end.
package integration

import (
	"math"
	"math/rand"
	"testing"

	"distperm/internal/construct"
	"distperm/internal/core"
	"distperm/internal/counting"
	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/perm"
	"distperm/internal/sisap"
	"distperm/internal/tree"
	"distperm/internal/voronoi"
)

// TestObservedCountsRespectAllBounds runs the full chain — dataset
// generation, permutation counting, theoretical bounds — across metrics and
// dimensions: no observed count may ever exceed the applicable bound.
func TestObservedCountsRespectAllBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, d := range []int{1, 2, 3} {
		for _, k := range []int{2, 3, 4, 5} {
			pts := dataset.UniformVectors(rng, 5000, d)
			sites := pts[:k]
			for _, m := range []metric.Metric{metric.L1{}, metric.L2{}, metric.LInf{}} {
				count := core.CountDistinct(m, sites, pts)
				var p float64
				switch m.(type) {
				case metric.L1:
					p = 1
				case metric.L2:
					p = 2
				default:
					p = math.Inf(1)
				}
				bound := counting.GeneralUpperBound(d, k, p)
				if bound.IsInt64() && int64(count) > bound.Int64() {
					t.Errorf("%s d=%d k=%d: %d observed > bound %v", m.Name(), d, k, count, bound)
				}
				if f := counting.Factorial(k); f.IsInt64() && int64(count) > f.Int64() {
					t.Errorf("%s d=%d k=%d: %d observed > k!", m.Name(), d, k, count)
				}
			}
		}
	}
}

// TestTheorem6WitnessesSaturateCounter feeds the Theorem 6 construction's
// witness points to the streaming counter: it must report exactly k!
// distinct permutations — the construction and the counter agree.
func TestTheorem6WitnessesSaturateCounter(t *testing.T) {
	for _, k := range []int{3, 4, 5} {
		r := construct.Build(k, 2, 0.3)
		sitePts := make([]metric.Point, len(r.Sites))
		for i, s := range r.Sites {
			sitePts[i] = s
		}
		c := core.NewCounter(metric.L2{}, sitePts)
		for _, w := range r.Witnesses {
			c.Add(w.Point)
		}
		want := 1
		for i := 2; i <= k; i++ {
			want *= i
		}
		if c.Distinct() != want {
			t.Errorf("k=%d: counter reports %d, want %d", k, c.Distinct(), want)
		}
		// And that saturates the d = k−1 theoretical count.
		if got := counting.EuclideanCount64(k-1, k); got != int64(want) {
			t.Errorf("N(%d,%d) = %d, want %d", k-1, k, got, want)
		}
	}
}

// TestArrangementGridAndRecurrenceAgree cross-validates three independent
// computations of the planar Euclidean count: the Theorem 7 recurrence, the
// exact bisector-arrangement region count, and (as a lower bound) grid
// sampling.
func TestArrangementGridAndRecurrenceAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for k := 2; k <= 6; k++ {
		sites := make([]metric.Point, k)
		for i := range sites {
			sites[i] = metric.Vector{rng.Float64(), rng.Float64()}
		}
		recurrence := int(counting.EuclideanCount64(2, k))
		arrangement := voronoi.ExactEuclideanCells2D(sites)
		if arrangement != recurrence {
			t.Errorf("k=%d: arrangement %d != recurrence %d", k, arrangement, recurrence)
		}
		grid := voronoi.CountPermCells(metric.L2{}, sites,
			voronoi.Grid{Rect: voronoi.WidePlane, W: 700, H: 700})
		if grid > arrangement {
			t.Errorf("k=%d: grid %d exceeds exact %d", k, grid, arrangement)
		}
	}
}

// TestPermIndexStorageMatchesCountingTheory builds the distperm index over
// a planar database and confirms its stored distinct-permutation count is
// bounded by the Theorem 7 value and its per-point bits by Corollary 8's
// 2d·lg k.
func TestPermIndexStorageMatchesCountingTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	const d, k, n = 2, 6, 3000
	db := sisap.NewDB(metric.L2{}, dataset.UniformVectors(rng, n, d))
	idx := sisap.NewPermIndex(db, rng.Perm(n)[:k], sisap.Footrule)
	if int64(idx.DistinctPermutations()) > counting.EuclideanCount64(d, k) {
		t.Errorf("index stores %d distinct perms > N(%d,%d) = %d",
			idx.DistinctPermutations(), d, k, counting.EuclideanCount64(d, k))
	}
	perPoint := float64(idx.IndexBits()) / float64(n)
	limit := 2*float64(d)*math.Log2(float64(k)) + 2 // + table amortisation slack
	if perPoint > limit {
		t.Errorf("%.2f bits/point exceeds Corollary 8 envelope %.2f", perPoint, limit)
	}
}

// TestCorollary5IndexedByPermIndex runs the search structure over the
// Corollary 5 tree-metric space: the index must store at most C(k,2)+1
// distinct permutations, and exact kNN must agree with linear scan.
func TestCorollary5IndexedByPermIndex(t *testing.T) {
	const k = 6
	space, sites, points := tree.Corollary5Construction(k)
	db := sisap.NewDB(space, points)
	siteIDs := make([]int, k)
	for i, s := range sites {
		siteIDs[i] = int(s.(tree.Vertex))
	}
	idx := sisap.NewPermIndex(db, siteIDs, sisap.Footrule)
	if got, want := idx.DistinctPermutations(), int(counting.TreeBound64(k)); got != want {
		t.Errorf("index stores %d distinct perms, want exactly %d (Corollary 5)", got, want)
	}
	linear := sisap.NewLinearScan(db)
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		q := points[rng.Intn(len(points))]
		want, _ := linear.KNN(q, 3)
		got, _ := idx.KNN(q, 3)
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("trial %d: distperm kNN diverges from linear scan", trial)
			}
		}
	}
}

// TestDistancePermutationInvariantUnderIsometry applies a rigid motion
// (rotation + translation) to sites and points: Euclidean distance
// permutations must be unchanged.
func TestDistancePermutationInvariantUnderIsometry(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	theta := 0.73
	rot := func(v metric.Vector) metric.Vector {
		return metric.Vector{
			v[0]*math.Cos(theta) - v[1]*math.Sin(theta) + 3.1,
			v[0]*math.Sin(theta) + v[1]*math.Cos(theta) - 1.7,
		}
	}
	sites := make([]metric.Point, 5)
	sitesT := make([]metric.Point, 5)
	for i := range sites {
		v := metric.Vector{rng.Float64(), rng.Float64()}
		sites[i] = v
		sitesT[i] = rot(v)
	}
	pm := core.NewPermuter(metric.L2{}, sites)
	pmT := core.NewPermuter(metric.L2{}, sitesT)
	for trial := 0; trial < 200; trial++ {
		y := metric.Vector{rng.Float64() * 2, rng.Float64() * 2}
		a := pm.Permutation(y)
		b := pmT.Permutation(rot(y))
		if !a.Equal(b) {
			t.Fatalf("isometry changed permutation: %v vs %v", a, b)
		}
	}
}

// TestScanOrderConsistentWithStoredPermutations checks that PermIndex's
// candidate ordering is exactly the footrule ordering of the stored inverse
// permutations — the index's behaviour reduces to perm package arithmetic.
func TestScanOrderConsistentWithStoredPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	const n, k = 200, 5
	pts := dataset.UniformVectors(rng, n, 3)
	db := sisap.NewDB(metric.L2{}, pts)
	siteIDs := rng.Perm(n)[:k]
	idx := sisap.NewPermIndex(db, siteIDs, sisap.Footrule)

	sites := make([]metric.Point, k)
	for i, id := range siteIDs {
		sites[i] = pts[id]
	}
	pm := core.NewPermuter(metric.L2{}, sites)
	q := metric.Vector{0.5, 0.5, 0.5}
	qinv := pm.Permutation(q).Inverse()

	order, _ := idx.ScanOrder(q)
	prev := -1
	for _, i := range order {
		f := perm.SpearmanFootrule(qinv, pm.Permutation(pts[i]).Inverse())
		if f < prev {
			t.Fatalf("scan order not sorted by footrule: %d after %d", f, prev)
		}
		prev = f
	}
}

// TestDimensionSignal reproduces the §5 dimensionality-characterisation
// idea end to end: the permutation count of clustered low-dimensional data
// embedded in high dimension must look like the low dimension, not the
// ambient one.
func TestDimensionSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	const n, k = 8000, 8
	// 2-d data embedded in 10-d space (8 dead coordinates).
	flat := make([]metric.Point, n)
	for i := range flat {
		v := make(metric.Vector, 10)
		v[0], v[1] = rng.Float64(), rng.Float64()
		flat[i] = v
	}
	ambient := dataset.UniformVectors(rng, n, 10)
	countFlat := core.CountDistinct(metric.L2{}, flat[:k], flat)
	countAmb := core.CountDistinct(metric.L2{}, ambient[:k], ambient)
	if int64(countFlat) > counting.EuclideanCount64(2, k) {
		t.Errorf("embedded 2-d data exceeded N(2,%d): %d", k, countFlat)
	}
	if countAmb <= countFlat {
		t.Errorf("ambient 10-d count (%d) should exceed embedded 2-d count (%d)",
			countAmb, countFlat)
	}
}
