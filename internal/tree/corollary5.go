package tree

import (
	"distperm/internal/metric"
)

// Corollary5Construction builds the witness of Corollary 5: a path of
// 2^(k−1) equal-weight edges (vertices labelled 0..2^(k−1)) with the k sites
// placed at labels 0, 2, 4, 8, …, 2^(k−1). On this configuration the number
// of distinct distance permutations over all vertices is exactly C(k,2)+1,
// matching the Theorem 4 bound.
//
// It returns the metric space, the site points, and all vertex points.
// k must be at least 2 (Corollary 5's construction needs the 0-and-powers
// site pattern); k ≤ 20 keeps the path length 2^(k−1) practical.
func Corollary5Construction(k int) (space *Space, sites, points []metric.Point) {
	if k < 2 || k > 20 {
		panic("tree: Corollary5Construction requires 2 <= k <= 20")
	}
	n := 1 << (k - 1) // number of edges; vertices are 0..n
	t := Path(n, 1)
	space = NewSpace(t)
	sites = make([]metric.Point, 0, k)
	sites = append(sites, Vertex(0))
	for i := 1; i <= k-1; i++ {
		sites = append(sites, Vertex(1<<i))
	}
	points = space.AllVertices()
	return space, sites, points
}
