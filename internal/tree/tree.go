// Package tree implements tree metric spaces (paper §3, Definition 2): a
// point set that is the vertex set of a (possibly edge-weighted) tree, with
// distance the (weighted) path length. It provides exact all-pairs and
// single-source distances, the four-point condition check, the prefix
// metric's trie view, and the Corollary 5 path construction that attains the
// C(k,2)+1 permutation bound.
package tree

import (
	"fmt"

	"distperm/internal/metric"
)

// Tree is an edge-weighted tree on vertices 0..n−1. The zero value is an
// empty tree; grow it with AddEdge. Edge weights must be positive
// (Definition 2 requires positive real weights; unweighted trees use
// weight 1).
type Tree struct {
	n   int
	adj [][]halfEdge
}

type halfEdge struct {
	to int
	w  float64
}

// New returns a tree with n isolated vertices and no edges. Edges are added
// with AddEdge; the structure is validated by Validate.
func New(n int) *Tree {
	if n < 0 {
		panic("tree: negative vertex count")
	}
	return &Tree{n: n, adj: make([][]halfEdge, n)}
}

// N returns the number of vertices.
func (t *Tree) N() int { return t.n }

// AddEdge inserts an undirected edge {u, v} with weight w > 0.
func (t *Tree) AddEdge(u, v int, w float64) {
	if u < 0 || u >= t.n || v < 0 || v >= t.n {
		panic(fmt.Sprintf("tree: edge (%d,%d) out of range [0,%d)", u, v, t.n))
	}
	if u == v {
		panic("tree: self-loop")
	}
	if w <= 0 {
		panic(fmt.Sprintf("tree: non-positive edge weight %g", w))
	}
	t.adj[u] = append(t.adj[u], halfEdge{v, w})
	t.adj[v] = append(t.adj[v], halfEdge{u, w})
}

// Validate returns an error unless the structure is a tree: connected with
// exactly n−1 edges.
func (t *Tree) Validate() error {
	edges := 0
	for _, a := range t.adj {
		edges += len(a)
	}
	edges /= 2
	if t.n == 0 {
		return nil
	}
	if edges != t.n-1 {
		return fmt.Errorf("tree: %d edges for %d vertices, want %d", edges, t.n, t.n-1)
	}
	seen := make([]bool, t.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.adj[u] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, e.to)
			}
		}
	}
	if count != t.n {
		return fmt.Errorf("tree: disconnected (%d of %d vertices reachable)", count, t.n)
	}
	return nil
}

// DistancesFrom returns the distance from src to every vertex, via a single
// depth-first traversal (paths in trees are unique, so no priority queue is
// needed even with weights).
func (t *Tree) DistancesFrom(src int) []float64 {
	if src < 0 || src >= t.n {
		panic(fmt.Sprintf("tree: source %d out of range", src))
	}
	dist := make([]float64, t.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.adj[u] {
			if dist[e.to] < 0 {
				dist[e.to] = dist[u] + e.w
				stack = append(stack, e.to)
			}
		}
	}
	return dist
}

// Distance returns the path distance between u and v.
func (t *Tree) Distance(u, v int) float64 {
	return t.DistancesFrom(u)[v]
}

// Path returns a fresh path tree on n+1 vertices labelled 0..n (n edges),
// all with weight w.
func Path(n int, w float64) *Tree {
	t := New(n + 1)
	for i := 0; i < n; i++ {
		t.AddEdge(i, i+1, w)
	}
	return t
}

// Star returns a star with center 0 and leaves 1..n, all edges weight w.
func Star(n int, w float64) *Tree {
	t := New(n + 1)
	for i := 1; i <= n; i++ {
		t.AddEdge(0, i, w)
	}
	return t
}

// Vertex is a point of a tree metric space: an index into the tree.
type Vertex int

// Space adapts a Tree to metric.Metric, with points of type Vertex. To keep
// Distance O(1), the full distance matrix is materialised at construction:
// O(n²) space, acceptable for the experiment sizes used here and faithful to
// how the SISAP library handles precomputed metrics.
type Space struct {
	t    *Tree
	dist [][]float64
}

// NewSpace builds the metric space of t's vertices. It panics if t is not a
// valid tree.
func NewSpace(t *Tree) *Space {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	d := make([][]float64, t.n)
	for i := 0; i < t.n; i++ {
		d[i] = t.DistancesFrom(i)
	}
	return &Space{t: t, dist: d}
}

// Distance implements metric.Metric.
func (s *Space) Distance(a, b metric.Point) float64 {
	u, ok := a.(Vertex)
	if !ok {
		panic(fmt.Sprintf("tree: expected Vertex point, got %T", a))
	}
	v, ok := b.(Vertex)
	if !ok {
		panic(fmt.Sprintf("tree: expected Vertex point, got %T", b))
	}
	return s.dist[u][v]
}

// Name implements metric.Metric.
func (s *Space) Name() string { return "tree" }

// Tree returns the underlying tree.
func (s *Space) Tree() *Tree { return s.t }

// AllVertices returns every vertex as a metric.Point slice.
func (s *Space) AllVertices() []metric.Point {
	pts := make([]metric.Point, s.t.n)
	for i := range pts {
		pts[i] = Vertex(i)
	}
	return pts
}

// FourPointCondition checks Buneman's four-point condition on the four
// distances of points {x,y,z,t} under m:
//
//	d(x,y)+d(z,t) ≤ max{ d(x,z)+d(y,t), d(x,t)+d(y,z) }
//
// Every tree metric satisfies it for every 4-subset; it is the classical
// characterisation of metrics embeddable in trees.
func FourPointCondition(m metric.Metric, x, y, z, t metric.Point) bool {
	const eps = 1e-9
	s1 := m.Distance(x, y) + m.Distance(z, t)
	s2 := m.Distance(x, z) + m.Distance(y, t)
	s3 := m.Distance(x, t) + m.Distance(y, z)
	max := s2
	if s3 > max {
		max = s3
	}
	return s1 <= max+eps
}
