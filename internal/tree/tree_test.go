package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distperm/internal/core"
	"distperm/internal/counting"
	"distperm/internal/metric"
)

// randomTree builds a random tree on n vertices: vertex i > 0 attaches to a
// uniformly random earlier vertex with a random positive weight.
func randomTree(rng *rand.Rand, n int, weighted bool) *Tree {
	t := New(n)
	for i := 1; i < n; i++ {
		w := 1.0
		if weighted {
			w = 0.1 + rng.Float64()*5
		}
		t.AddEdge(rng.Intn(i), i, w)
	}
	return t
}

func TestPathDistances(t *testing.T) {
	p := Path(5, 1) // vertices 0..5
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Distance(0, 5); got != 5 {
		t.Errorf("path distance = %v, want 5", got)
	}
	if got := p.Distance(2, 4); got != 2 {
		t.Errorf("path distance = %v, want 2", got)
	}
}

func TestWeightedPath(t *testing.T) {
	p := Path(3, 2.5)
	if got := p.Distance(0, 3); got != 7.5 {
		t.Errorf("weighted path distance = %v, want 7.5", got)
	}
}

func TestStarDistances(t *testing.T) {
	s := Star(4, 1)
	if got := s.Distance(1, 2); got != 2 {
		t.Errorf("leaf-leaf = %v, want 2", got)
	}
	if got := s.Distance(0, 3); got != 1 {
		t.Errorf("center-leaf = %v, want 1", got)
	}
}

func TestValidateRejectsNonTrees(t *testing.T) {
	// Too few edges (disconnected).
	d := New(4)
	d.AddEdge(0, 1, 1)
	if d.Validate() == nil {
		t.Error("disconnected graph should fail validation")
	}
	// Cycle (right edge count but disconnected elsewhere).
	c := New(4)
	c.AddEdge(0, 1, 1)
	c.AddEdge(1, 2, 1)
	c.AddEdge(2, 0, 1)
	if c.Validate() == nil {
		t.Error("cyclic graph should fail validation")
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []func(*Tree){
		func(t *Tree) { t.AddEdge(0, 0, 1) },  // self-loop
		func(t *Tree) { t.AddEdge(0, 9, 1) },  // out of range
		func(t *Tree) { t.AddEdge(0, 1, 0) },  // non-positive weight
		func(t *Tree) { t.AddEdge(0, 1, -1) }, // negative weight
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f(New(3))
		}()
	}
}

func TestSpaceMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		n := 4 + rng.Intn(20)
		tr := randomTree(rng, n, true)
		sp := NewSpace(tr)
		a := Vertex(rng.Intn(n))
		b := Vertex(rng.Intn(n))
		c := Vertex(rng.Intn(n))
		return metric.CheckAxioms(sp, a, b, c) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFourPointCondition(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(20)
		sp := NewSpace(randomTree(rng, n, true))
		for rep := 0; rep < 10; rep++ {
			pts := rng.Perm(n)[:4]
			if !FourPointCondition(sp, Vertex(pts[0]), Vertex(pts[1]), Vertex(pts[2]), Vertex(pts[3])) {
				t.Fatal("tree metric violates four-point condition")
			}
		}
	}
}

func TestFourPointFailsForEuclideanPlane(t *testing.T) {
	// Four corners of a unit square violate the four-point condition for
	// the pairing (diag+diag vs side+side): 2·sqrt2 > 2 — which confirms
	// the checker can fail and the plane is not a tree metric.
	m := metric.L2{}
	a := metric.Vector{0, 0}
	b := metric.Vector{1, 1}
	c := metric.Vector{1, 0}
	d := metric.Vector{0, 1}
	if FourPointCondition(m, a, b, c, d) {
		t.Error("square corners should violate the four-point condition under this pairing")
	}
}

func TestTheorem4Bound(t *testing.T) {
	// For random (weighted) trees and random sites, the number of
	// distinct distance permutations never exceeds C(k,2)+1.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 60; trial++ {
		n := 10 + rng.Intn(60)
		sp := NewSpace(randomTree(rng, n, trial%2 == 0))
		k := 2 + rng.Intn(6)
		if k > n {
			k = n
		}
		idx := rng.Perm(n)[:k]
		sites := make([]metric.Point, k)
		for i, v := range idx {
			sites[i] = Vertex(v)
		}
		count := core.CountDistinct(sp, sites, sp.AllVertices())
		bound := int(counting.TreeBound64(k))
		if count > bound {
			t.Fatalf("tree with n=%d k=%d realises %d perms > bound %d", n, k, count, bound)
		}
	}
}

func TestCorollary5AchievesBound(t *testing.T) {
	// The Corollary 5 construction attains exactly C(k,2)+1.
	for k := 2; k <= 10; k++ {
		sp, sites, points := Corollary5Construction(k)
		count := core.CountDistinct(sp, sites, points)
		want := int(counting.TreeBound64(k))
		if count != want {
			t.Errorf("k=%d: Corollary 5 yields %d permutations, want %d", k, count, want)
		}
	}
}

func TestCorollary5Panics(t *testing.T) {
	for _, k := range []int{1, 21} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d should panic", k)
				}
			}()
			Corollary5Construction(k)
		}()
	}
}

func TestSpacePanicsOnInvalidTree(t *testing.T) {
	bad := New(3) // no edges
	defer func() {
		if recover() == nil {
			t.Error("NewSpace on invalid tree should panic")
		}
	}()
	NewSpace(bad)
}

func TestSpaceWrongPointType(t *testing.T) {
	sp := NewSpace(Path(2, 1))
	defer func() {
		if recover() == nil {
			t.Error("wrong point type should panic")
		}
	}()
	sp.Distance(metric.Vector{0}, Vertex(1))
}

func TestDistancesFromMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tr := randomTree(rng, 30, true)
	for src := 0; src < 5; src++ {
		d := tr.DistancesFrom(src)
		for v := 0; v < 30; v++ {
			if got := tr.Distance(src, v); got != d[v] {
				t.Fatalf("Distance(%d,%d) = %v, DistancesFrom = %v", src, v, got, d[v])
			}
		}
	}
}

func TestPrefixSpaceTrieMatchesMetric(t *testing.T) {
	words := []string{"", "a", "ab", "abc", "abd", "b", "ba", "hello"}
	sp := NewPrefixSpace(words)
	trie, index := sp.BuildTrie()
	if err := trie.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, a := range sp.Words() {
		from := trie.DistancesFrom(index[a])
		for _, b := range sp.Words() {
			want := metric.PrefixDistance(a, b)
			if got := int(from[index[b]]); got != want {
				t.Errorf("trie distance %q-%q = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestPrefixSpaceDedup(t *testing.T) {
	sp := NewPrefixSpace([]string{"x", "x", "y"})
	if len(sp.Words()) != 2 {
		t.Errorf("dedup failed: %v", sp.Words())
	}
	if len(sp.Points()) != 2 {
		t.Errorf("Points length %d", len(sp.Points()))
	}
}

func TestPrefixMetricTheorem4(t *testing.T) {
	// Distance permutations in a prefix-metric space also respect the
	// tree bound, since the prefix metric is a tree metric.
	rng := rand.New(rand.NewSource(16))
	alphabet := "ab"
	var words []string
	seen := map[string]bool{}
	for len(words) < 120 {
		n := rng.Intn(9)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(2)]
		}
		w := string(b)
		if !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	sp := NewPrefixSpace(words)
	pts := sp.Points()
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(6)
		idx := rng.Perm(len(pts))[:k]
		sites := make([]metric.Point, k)
		for i, j := range idx {
			sites[i] = pts[j]
		}
		count := core.CountDistinct(metric.Prefix{}, sites, pts)
		if count > int(counting.TreeBound64(k)) {
			t.Fatalf("prefix metric exceeded tree bound: k=%d count=%d", k, count)
		}
	}
}
