package tree

import (
	"sort"

	"distperm/internal/metric"
)

// PrefixSpace is the tree metric space of Figure 5: a finite set of strings
// under the prefix metric (Definition 3). The underlying tree is the trie of
// the closure of the strings under prefixes; distance between two strings is
// the number of add/remove-at-right edits, i.e. the trie path length.
//
// PrefixSpace validates the tree view explicitly: BuildTrie constructs the
// trie as a Tree so tests can confirm that metric.Prefix distances equal
// tree path distances, demonstrating that the prefix metric really is a tree
// metric.
type PrefixSpace struct {
	words []string
}

// NewPrefixSpace returns the prefix-metric space over the given strings
// (duplicates removed, order normalised).
func NewPrefixSpace(words []string) *PrefixSpace {
	seen := make(map[string]bool, len(words))
	uniq := make([]string, 0, len(words))
	for _, w := range words {
		if !seen[w] {
			seen[w] = true
			uniq = append(uniq, w)
		}
	}
	sort.Strings(uniq)
	return &PrefixSpace{words: uniq}
}

// Words returns the normalised word list.
func (s *PrefixSpace) Words() []string { return s.words }

// Points returns the words as metric points for use with metric.Prefix.
func (s *PrefixSpace) Points() []metric.Point {
	pts := make([]metric.Point, len(s.words))
	for i, w := range s.words {
		pts[i] = metric.String(w)
	}
	return pts
}

// BuildTrie materialises the trie of the prefix closure of the word set as
// a Tree, returning the tree and a map from word to vertex index. The root
// (empty string) is vertex 0. Every edge has weight 1, so tree path length
// between two word vertices equals their prefix distance.
func (s *PrefixSpace) BuildTrie() (*Tree, map[string]int) {
	// Collect the prefix closure.
	closure := map[string]bool{"": true}
	for _, w := range s.words {
		for i := 1; i <= len(w); i++ {
			closure[w[:i]] = true
		}
	}
	all := make([]string, 0, len(closure))
	for p := range closure {
		all = append(all, p)
	}
	// Sorting by length then lexicographic guarantees each node's parent
	// (its string minus the last byte) is assigned an index first.
	sort.Slice(all, func(i, j int) bool {
		if len(all[i]) != len(all[j]) {
			return len(all[i]) < len(all[j])
		}
		return all[i] < all[j]
	})
	index := make(map[string]int, len(all))
	for i, p := range all {
		index[p] = i
	}
	t := New(len(all))
	for _, p := range all {
		if p == "" {
			continue
		}
		t.AddEdge(index[p[:len(p)-1]], index[p], 1)
	}
	return t, index
}
