package sisap

import (
	"math/rand"
	"reflect"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/metric"
)

// approxTestIndex builds a PermIndex over the given points with k sites.
func approxTestIndex(t *testing.T, points []metric.Point, k int, dist PermDistance, seed int64) *PermIndex {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := NewDB(metric.L2{}, points)
	return NewPermIndex(db, rng.Perm(len(points))[:k], dist)
}

// recallAt returns |approx ∩ truth| / |truth| over result IDs.
func recallAt(truth, approx []Result) float64 {
	want := make(map[int]bool, len(truth))
	for _, r := range truth {
		want[r.ID] = true
	}
	hit := 0
	for _, r := range approx {
		if want[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// TestApproxRecallMonotoneInNProbe pins the contract recall rides on: for
// every query the probe order is fixed, so a larger nprobe only ever grows
// the candidate set, and per-query recall@k against the exact answer is
// non-decreasing — reaching exactly 1.0 once the probe set covers the
// directory. Exercised over uniform and clustered databases and both rank
// widths (uint8 for k ≤ 256, uint16 beyond).
func TestApproxRecallMonotoneInNProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name   string
		points []metric.Point
		sites  int
	}{
		{"uniform-u8", dataset.UniformVectors(rng, 3000, 6), 12},
		{"clustered-u8", dataset.ClusteredVectors(rng, 3000, 6, 24, 0.05), 12},
		{"uniform-u16", dataset.UniformVectors(rng, 500, 4), 300},
		{"clustered-u16", dataset.ClusteredVectors(rng, 500, 4, 8, 0.05), 300},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			idx := approxTestIndex(t, tc.points, tc.sites, Footrule, 11)
			if tc.sites > 256 && !idx.table.wide() {
				t.Fatalf("expected a wide (uint16) rank table at k=%d", tc.sites)
			}
			nb := idx.ApproxBuckets()
			if nb < 2 {
				t.Skipf("directory has %d buckets; nothing to probe", nb)
			}
			const k = 10
			qrng := rand.New(rand.NewSource(23))
			for qi := 0; qi < 20; qi++ {
				q := dataset.UniformVectors(qrng, 1, len(tc.points[0].(metric.Vector)))[0]
				truth, _ := idx.KNN(q, k)
				prev := -1.0
				for nprobe := 1; nprobe <= nb; nprobe += 1 + nb/7 {
					rs, st := idx.KNNApprox(q, k, nprobe)
					r := recallAt(truth, rs)
					if r < prev {
						t.Fatalf("query %d: recall fell from %.3f to %.3f at nprobe=%d", qi, prev, r, nprobe)
					}
					prev = r
					if st.ProbedBuckets < min(nprobe, nb) || st.ProbedBuckets > nb {
						t.Fatalf("probed %d buckets for nprobe=%d (directory %d)", st.ProbedBuckets, nprobe, nb)
					}
					if st.Candidates < k || st.Candidates > idx.db.N() {
						t.Fatalf("candidates %d out of range %d..%d", st.Candidates, k, idx.db.N())
					}
				}
				if rs, st := idx.KNNApprox(q, k, nb); !st.Exact {
					t.Fatalf("nprobe=%d over %d buckets did not report the exact fallback", nb, nb)
				} else if !reflect.DeepEqual(rs, truth) {
					t.Fatalf("full-coverage approx answer differs from exact")
				}
			}
		})
	}
}

// TestApproxRecallQuality pins that a modest probe fraction already buys
// high recall on clustered data — the workload the inverted file exists
// for. The dataset and seeds are fixed, so the floor is deterministic.
func TestApproxRecallQuality(t *testing.T) {
	for _, pd := range []PermDistance{Footrule, KendallTau, SpearmanRho} {
		t.Run(pd.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			points := dataset.ClusteredVectors(rng, 4000, 8, 32, 0.05)
			idx := approxTestIndex(t, points, 14, pd, 5)
			nb := idx.ApproxBuckets()
			nprobe := (nb + 3) / 4
			const k = 10
			qrng := rand.New(rand.NewSource(41))
			total, cands := 0.0, 0
			const queries = 25
			for qi := 0; qi < queries; qi++ {
				q := dataset.ClusteredVectors(qrng, 1, 8, 1, 0.05)[0]
				truth, _ := idx.KNN(q, k)
				rs, st := idx.KNNApprox(q, k, nprobe)
				total += recallAt(truth, rs)
				cands += st.Candidates
			}
			recall := total / queries
			frac := float64(cands) / float64(queries*len(points))
			t.Logf("%s: %d/%d buckets probed, mean recall@%d %.3f, candidate fraction %.3f",
				pd, nprobe, nb, k, recall, frac)
			if recall < 0.6 {
				t.Fatalf("mean recall@%d = %.3f below floor 0.6 at nprobe=%d/%d", k, recall, nprobe, nb)
			}
			if frac >= 1 {
				t.Fatalf("candidate fraction %.3f did not shrink the scan", frac)
			}
		})
	}
}

// TestApproxFullCoverageByteIdentical pins the approx=0 contract at the
// index level: a probe set covering every bucket answers byte-identically
// to KNN, tie-breaks included, for every permutation distance.
func TestApproxFullCoverageByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	// Duplicated points force distance ties, exercising the (distance, ID)
	// tie-break agreement.
	pts := dataset.UniformVectors(rng, 400, 5)
	points := append(append([]metric.Point{}, pts...), pts[:100]...)
	for _, pd := range []PermDistance{Footrule, KendallTau, SpearmanRho} {
		idx := approxTestIndex(t, points, 9, pd, 29)
		nb := idx.ApproxBuckets()
		qrng := rand.New(rand.NewSource(31))
		for qi := 0; qi < 10; qi++ {
			q := dataset.UniformVectors(qrng, 1, 5)[0]
			want, wantSt := idx.KNN(q, 7)
			for _, nprobe := range []int{nb, nb + 3, 1 << 20} {
				got, st := idx.KNNApprox(q, 7, nprobe)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: nprobe=%d answers differ from exact KNN", pd, nprobe)
				}
				if !st.Exact || st.DistanceEvals != wantSt.DistanceEvals {
					t.Fatalf("%s: full-coverage stats %+v not exact (want evals %d)", pd, st, wantSt.DistanceEvals)
				}
			}
		}
	}
}

// TestApproxWidensProbeSetForK pins that a tiny nprobe still yields k
// results: the probe set widens along the fixed bucket order until the
// candidate pool can fill the answer.
func TestApproxWidensProbeSetForK(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	points := dataset.ClusteredVectors(rng, 600, 6, 40, 0.02)
	idx := approxTestIndex(t, points, 10, Footrule, 13)
	q := dataset.UniformVectors(rng, 1, 6)[0]
	const k = 50
	rs, st := idx.KNNApprox(q, k, 1)
	if len(rs) != k {
		t.Fatalf("got %d results, want %d", len(rs), k)
	}
	if st.Candidates < k {
		t.Fatalf("candidate pool %d smaller than k=%d", st.Candidates, k)
	}
}

// TestApproxBatchMatchesSingle pins KNNApproxBatch ≡ per-query KNNApprox.
func TestApproxBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	points := dataset.UniformVectors(rng, 1500, 6)
	idx := approxTestIndex(t, points, 12, Footrule, 17)
	qs := dataset.UniformVectors(rng, 17, 6)
	batch, bstats := idx.KNNApproxBatch(qs, 5, 3)
	for i, q := range qs {
		single, sstats := idx.KNNApprox(q, 5, 3)
		if !reflect.DeepEqual(batch[i], single) {
			t.Fatalf("query %d: batch answer differs from single", i)
		}
		if bstats[i] != sstats {
			t.Fatalf("query %d: batch stats %+v != single %+v", i, bstats[i], sstats)
		}
	}
}

// TestConfigurePrefixBuckets pins the explicit-ℓ override: the directory
// adopts the requested prefix length (clamped to k) and longer prefixes
// never coarsen the directory.
func TestConfigurePrefixBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	points := dataset.UniformVectors(rng, 1000, 6)
	idx := approxTestIndex(t, points, 8, Footrule, 37)
	prev := 0
	for _, ell := range []int{1, 2, 3, 4, 99} {
		idx.ConfigurePrefixBuckets(ell)
		want := ell
		if want > idx.K() {
			want = idx.K()
		}
		if got := idx.PrefixLen(); got != want {
			t.Fatalf("PrefixLen() = %d after configuring ell=%d (k=%d)", got, ell, idx.K())
		}
		nb := idx.ApproxBuckets()
		if nb < prev {
			t.Fatalf("directory shrank from %d to %d buckets as ell grew to %d", prev, nb, ell)
		}
		prev = nb
	}
}

// TestApproxReplicaSharesDirectory pins that replicas share one bucket
// directory (the build is once-per-index, not once-per-worker) and answer
// identically.
func TestApproxReplicaSharesDirectory(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	points := dataset.UniformVectors(rng, 800, 6)
	idx := approxTestIndex(t, points, 10, Footrule, 41)
	rep := idx.Replica().(*PermIndex)
	if idx.lb != rep.lb {
		t.Fatalf("replica does not share the lazyBuckets handle")
	}
	q := dataset.UniformVectors(rng, 1, 6)[0]
	a, ast := idx.KNNApprox(q, 5, 2)
	b, bst := rep.KNNApprox(q, 5, 2)
	if !reflect.DeepEqual(a, b) || ast != bst {
		t.Fatalf("replica answers differ from the original")
	}
}
