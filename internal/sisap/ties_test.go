package sisap

import (
	"math/rand"
	"testing"

	"distperm/internal/metric"
)

// gridDB builds a database of integer lattice points under L1 — a
// tie-saturated configuration: many distinct points share exact distances,
// stressing every index's tie handling and pruning boundaries.
func gridDB(side int) *DB {
	var pts []metric.Point
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			pts = append(pts, metric.Vector{float64(x), float64(y)})
		}
	}
	return NewDB(metric.L1{}, pts)
}

func TestIndexesExactOnTieHeavyGrid(t *testing.T) {
	db := gridDB(12) // 144 points, distances all integers
	rng := rand.New(rand.NewSource(150))
	indexes := []Index{
		NewAESA(db),
		NewIAESA(db),
		NewLAESA(db, []int{0, 13, 77, 143}),
		NewPermIndex(db, []int{0, 13, 77, 143, 60}, Footrule),
		NewVPTree(db, rng),
		NewGHTree(db, rng),
	}
	linear := NewLinearScan(db)
	queries := []metric.Point{
		metric.Vector{5, 5},     // exact lattice point
		metric.Vector{5.5, 5.5}, // equidistant from 4 lattice points
		metric.Vector{0, 0},     // corner
		metric.Vector{-3, 20},   // outside the grid
		metric.Vector{5.5, 7},   // equidistant from 2
	}
	for _, q := range queries {
		for _, k := range []int{1, 4, 9} {
			want, _ := linear.KNN(q, k)
			for _, idx := range indexes {
				got, _ := idx.KNN(q, k)
				sameResults(t, idx.Name(), got, want)
			}
		}
		// Integer radii land exactly on tie shells — the hardest
		// boundary for range pruning.
		for _, r := range []float64{0, 1, 2, 5} {
			want, _ := linear.Range(q, r)
			for _, idx := range indexes {
				got, _ := idx.Range(q, r)
				sameResults(t, idx.Name()+"-range", got, want)
			}
		}
	}
}

func TestPermIndexDegenerateAllTies(t *testing.T) {
	// All database points equidistant from all sites: every stored
	// permutation is the identity; search must still be exact.
	pts := []metric.Point{
		metric.Vector{1, 0}, metric.Vector{-1, 0},
		metric.Vector{0, 1}, metric.Vector{0, -1},
	}
	db := NewDB(metric.L2{}, pts)
	idx := NewPermIndex(db, []int{0, 1}, Footrule)
	if idx.DistinctPermutations() != 1 {
		// Sites 0 and 1 are antipodal; points 2 and 3 are equidistant
		// from both, and each site is closer to itself.
		t.Logf("distinct = %d (fine: sites rank themselves first)", idx.DistinctPermutations())
	}
	linear := NewLinearScan(db)
	q := metric.Vector{0.1, 0.1}
	want, _ := linear.KNN(q, 2)
	got, _ := idx.KNN(q, 2)
	sameResults(t, "degenerate", got, want)
}
