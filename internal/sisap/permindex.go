package sisap

import (
	"fmt"
	"math/big"

	"distperm/internal/core"
	"distperm/internal/counting"
	"distperm/internal/metric"
	"distperm/internal/perm"
)

// PermDistance selects which permutation distance orders the candidates.
type PermDistance int

// Candidate-ordering permutation distances. The original
// Chávez/Figueroa/Navarro proposal and iAESA use Spearman footrule; the
// alternatives are provided for the ablation study.
const (
	Footrule PermDistance = iota
	KendallTau
	SpearmanRho
)

func (p PermDistance) String() string {
	switch p {
	case Footrule:
		return "footrule"
	case KendallTau:
		return "kendall-tau"
	case SpearmanRho:
		return "spearman-rho"
	default:
		return fmt.Sprintf("PermDistance(%d)", int(p))
	}
}

// PermIndex is the distance-permutation index ("distperm" in the SISAP
// library, after Chávez/Figueroa/Navarro 2005): for each database point it
// stores only the point's distance permutation with respect to k sites. A
// query computes its own permutation (k metric evaluations) and scans the
// database in increasing permutation-distance order — points whose
// permutation resembles the query's are probably close. The scan is
// probabilistic, not exact: permutation distance gives no lower bound on the
// metric, so PermIndex exposes a budgeted kNN (KNNBudget) reporting how good
// an answer a given fraction of the database buys. That cost/quality curve
// is the search-performance side of the paper; the index size (counted by
// IndexBits via the paper's counting results) is the storage side.
//
// The in-memory representation is the paper's table encoding, live: the
// distinct occurring inverse permutations sit once each in a flat row-major
// rank matrix (rankTable) and every point stores only a table row ID, so a
// query pays the permutation distance once per *distinct* permutation and
// scatters integer keys to points — the few-distinct-permutations
// phenomenon the paper counts is a direct query-time speedup.
type PermIndex struct {
	db       *DB
	siteIDs  []int
	permuter *core.Permuter
	dist     PermDistance
	// table holds one row per distinct stored inverse permutation
	// (site → rank); tableIDs[i] is the row of point i. Both are immutable
	// after construction and shared between replicas.
	table    *rankTable
	tableIDs []uint32
	// lb shares the approximate-search bucket directory (prefixbuckets.go)
	// between the index and every replica: built lazily on first
	// approximate query, or pre-filled with container views by a frozen
	// open.
	lb *lazyBuckets
	// scratch holds the per-query buffers (allocated lazily, never shared:
	// Replica clears it), which is what makes the query path non-reentrant.
	scratch *permScratch
}

// permScratch is the per-replica query workspace.
type permScratch struct {
	qbuf   perm.Permutation // forward query permutation, len k
	qfwd   []int32          // qbuf as int32, for the Kendall kernel
	qinv   []int32          // query inverse ranks, len k
	seq    []int32          // Kendall relabel buffer, len k
	tkeys  []int64          // one integer distance key per distinct row
	keys   []int64          // per-point keys scattered from tkeys
	counts []int32          // counting-sort buckets, grown on demand
	batch  *batchScratch    // batch-path workspace, allocated on first batch
	approx *approxScratch   // approximate-path workspace, on first approx query
}

// batchScratch is the per-replica workspace of the batch query path: the
// query block's rank vectors, the chunk×rows key matrix the tiled kernels
// fill, and the Kendall tile-relabel buffer — allocated once per replica
// and reused across batches (the counting-sort counts buffer is shared with
// the scalar path through permScratch).
type batchScratch struct {
	chunk   int       // queries per kernel pass, sized by batchChunkFor
	qinvs   [][]int32 // chunk views of k inverse ranks each
	qfwds   [][]int32 // chunk views of k forward entries each
	tkeys   [][]int64 // chunk views of one key per distinct row each
	maxKeys []int64   // per-query maximum key, len chunk
	seq     []int32   // Kendall tile relabel buffer, batchTileRows·k
}

const (
	// batchKeyBudget bounds one replica's key-matrix scratch (chunk × rows
	// × 8 bytes); batches beyond the resulting chunk run in chunk-sized
	// kernel passes, so serving memory stays flat however large a batch the
	// engine hands down.
	batchKeyBudget = 8 << 20
	// batchChunkMin/Max clamp the pass width: at least one full register
	// block (4 queries) even over a huge table, at most the scale of one
	// serving batch.
	batchChunkMin = 4
	batchChunkMax = 64
)

// batchChunkFor sizes the kernel pass for a table of the given row count.
// Chunks of 8 and up are rounded down to a multiple of the SWAR group width
// so full passes carry no scalar-remainder queries.
func batchChunkFor(rows int) int {
	chunk := batchChunkMax
	if per := rows * 8; per > 0 && batchKeyBudget/per < chunk {
		chunk = batchKeyBudget / per
	}
	if chunk >= swarGroup {
		chunk &^= swarGroup - 1
	}
	if chunk < batchChunkMin {
		chunk = batchChunkMin
	}
	return chunk
}

// parallelBuildThreshold is the database size below which sharded
// construction is not worth the goroutine overhead.
const parallelBuildThreshold = 2048

// NewPermIndex builds the index with the given site IDs (database indexes)
// and candidate-ordering distance. Construction costs k·n metric
// evaluations, sharded across runtime.NumCPU() workers for large databases
// (each worker clones the Permuter, which is not goroutine-safe). The result
// is identical to a sequential build, including the table row order
// (first occurrence in index order).
func NewPermIndex(db *DB, siteIDs []int, dist PermDistance) *PermIndex {
	if len(siteIDs) == 0 {
		panic("sisap: PermIndex requires at least one site")
	}
	sites := make([]metric.Point, len(siteIDs))
	for i, id := range siteIDs {
		sites[i] = db.Points[id]
	}
	pm := core.NewPermuter(db.Metric, sites)
	ids := make([]uint32, db.N())
	return &PermIndex{
		db:       db,
		siteIDs:  append([]int(nil), siteIDs...),
		permuter: pm,
		dist:     dist,
		table:    buildPermTable(pm, db.Points, ids),
		tableIDs: ids,
		lb:       &lazyBuckets{},
	}
}

// newPermIndexFromTable assembles an index from an already-built table
// encoding (the deserialization path).
func newPermIndexFromTable(db *DB, siteIDs []int, dist PermDistance, table *rankTable, ids []uint32) *PermIndex {
	sites := make([]metric.Point, len(siteIDs))
	for i, id := range siteIDs {
		sites[i] = db.Points[id]
	}
	return &PermIndex{
		db:       db,
		siteIDs:  siteIDs,
		permuter: core.NewPermuter(db.Metric, sites),
		dist:     dist,
		table:    table,
		tableIDs: ids,
		lb:       &lazyBuckets{},
	}
}

// buildPermTable computes each point's distance permutation, deduplicates
// the inverses into a rankTable (rows in first-occurrence order), and fills
// ids with each point's row. Large databases shard the scan: workers build
// local tables over disjoint ranges, which are then merged in shard order —
// shards cover ascending contiguous ranges, so the merged row order equals
// the sequential first-occurrence order.
func buildPermTable(pm *core.Permuter, points []metric.Point, ids []uint32) *rankTable {
	workers := core.ShardWorkers(len(points))
	if workers <= 1 || len(points) < parallelBuildThreshold {
		table := newRankTable(pm.K())
		buildPermTableRange(pm, points, ids, table, nil)
		return table
	}
	locals := make([]*rankTable, workers)
	localKeys := make([][]string, workers)
	ranges := make([][2]int, workers)
	shards := core.ShardIndexes(len(points), workers, func(shard, lo, hi int) {
		table := newRankTable(pm.K())
		keys := buildPermTableRange(pm.Clone(), points[lo:hi], ids[lo:hi], table, []string{})
		locals[shard] = table
		localKeys[shard] = keys
		ranges[shard] = [2]int{lo, hi}
	})
	table := newRankTable(pm.K())
	global := make(map[string]uint32)
	for s := 0; s < shards; s++ {
		local := locals[s]
		l2g := make([]uint32, local.rows)
		for r, key := range localKeys[s] {
			gid, ok := global[key]
			if !ok {
				gid = uint32(table.rows)
				global[key] = gid
				table.appendRowFrom(local, r)
			}
			l2g[r] = gid
		}
		// Remap this shard's point IDs from local to global rows.
		for i := ranges[s][0]; i < ranges[s][1]; i++ {
			ids[i] = l2g[ids[i]]
		}
	}
	return table
}

// buildPermTableRange fills ids[i] with the table row of points[i],
// appending new rows to table. When keys is non-nil it records the dedup
// key of every new row, in row order (the parallel merge needs them).
func buildPermTableRange(pm *core.Permuter, points []metric.Point, ids []uint32, table *rankTable, keys []string) []string {
	index := make(map[string]uint32)
	buf := make(perm.Permutation, pm.K())
	for i, pt := range points {
		pm.PermutationInto(pt, buf)
		key := buf.Key()
		id, ok := index[key]
		if !ok {
			id = uint32(table.appendInverseOf(buf))
			index[key] = id
			if keys != nil {
				keys = append(keys, key)
			}
		}
		ids[i] = id
	}
	return keys
}

// Name implements Index.
func (x *PermIndex) Name() string { return "distperm" }

// Replica implements Replicable: the returned index shares the immutable
// table encoding and database but owns fresh query scratch and a fresh
// Permuter (whose buffers make the query path non-reentrant), so it can be
// queried concurrently with the original as long as each replica stays on
// one goroutine.
func (x *PermIndex) Replica() Index {
	y := *x
	y.permuter = x.permuter.Clone()
	y.scratch = nil
	return &y
}

// K returns the number of sites.
func (x *PermIndex) K() int { return len(x.siteIDs) }

// SiteIDs returns a copy of the database IDs of the sites, in site order.
func (x *PermIndex) SiteIDs() []int { return append([]int(nil), x.siteIDs...) }

// DistinctPermutations returns the number of distinct distance permutations
// stored in the index — the paper's central statistic for this structure,
// and the per-query permutation-distance workload of the scan.
func (x *PermIndex) DistinctPermutations() int { return x.table.rows }

// invPermAt reconstructs the stored inverse permutation of point i
// (allocating; the reference and serialization paths use it, queries never
// do).
func (x *PermIndex) invPermAt(i int) perm.Permutation {
	return x.table.invAt(int(x.tableIDs[i]))
}

// IndexBits implements Index: the cheaper of the two encodings the paper
// discusses. The naive encoding stores ⌈lg k!⌉ bits per point. The
// table encoding exploits the paper's counting results: a shared table
// stores each *distinct occurring* permutation once and every point stores
// ⌈lg(#distinct)⌉ bits of table index — the win when the database is large
// relative to the number of permutations, exactly as the paper's §4 notes.
func (x *PermIndex) IndexBits() int64 {
	if t := x.TableIndexBits(); t < x.NaiveIndexBits() {
		return t
	}
	return x.NaiveIndexBits()
}

// TableIndexBits returns the storage of the shared-table encoding:
// n·⌈lg(#distinct)⌉ bits of per-point table indexes plus the table itself.
func (x *PermIndex) TableIndexBits() int64 {
	perPoint := counting.Bits(big.NewInt(int64(x.table.rows)))
	table := int64(x.table.rows) * int64(naiveBitsPerPerm(x.K()))
	return int64(x.db.N())*int64(perPoint) + table
}

// NaiveIndexBits returns the storage under the unrestricted-permutation
// encoding, n·⌈lg k!⌉ bits — the Chávez/Figueroa/Navarro O(nk log k) figure.
func (x *PermIndex) NaiveIndexBits() int64 {
	return int64(x.db.N()) * int64(naiveBitsPerPerm(x.K()))
}

// scratchBuffers returns the per-replica query workspace, allocating it on
// first use (Replica hands out copies with nil scratch).
func (x *PermIndex) scratchBuffers() *permScratch {
	if x.scratch == nil {
		k := x.K()
		x.scratch = &permScratch{
			qbuf:  make(perm.Permutation, k),
			qfwd:  make([]int32, k),
			qinv:  make([]int32, k),
			seq:   make([]int32, k),
			tkeys: make([]int64, x.table.rows),
			keys:  make([]int64, x.db.N()),
		}
	}
	return x.scratch
}

// scanOrderInto fills out with the first len(out) database indexes of the
// permutation-distance scan order (ties by lower index) and returns the
// query's own cost, k metric evaluations. It is the table-encoded fast
// path: one permutation distance per distinct row, an O(n) key scatter, and
// a (partial) counting sort.
func (x *PermIndex) scanOrderInto(q metric.Point, out []int) Stats {
	s := x.scratchBuffers()
	x.permuter.PermutationInto(q, s.qbuf)
	for rank, site := range s.qbuf {
		s.qfwd[rank] = int32(site)
		s.qinv[site] = int32(rank)
	}
	maxKey := x.table.distanceKeys(x.dist, s.qinv, s.qfwd, s.seq, s.tkeys)
	for i, id := range x.tableIDs {
		s.keys[i] = s.tkeys[id]
	}
	s.counts = countingArgsortInto(s.keys, maxKey, s.counts, out)
	return Stats{DistanceEvals: x.K()}
}

// ScanOrder returns the database indexes ordered by increasing permutation
// distance between each point's stored permutation and the query's, ties by
// index — the candidate schedule iAESA-style search follows. It costs k
// metric evaluations (the query's own permutation).
func (x *PermIndex) ScanOrder(q metric.Point) ([]int, Stats) {
	order := make([]int, x.db.N())
	stats := x.scanOrderInto(q, order)
	return order, stats
}

// batchBuffers returns the batch-path workspace, allocated on first use and
// reused across batches.
func (x *PermIndex) batchBuffers() *batchScratch {
	s := x.scratchBuffers()
	if s.batch == nil {
		k := x.K()
		rows := x.table.rows
		chunk := batchChunkFor(rows)
		b := &batchScratch{
			chunk:   chunk,
			qinvs:   make([][]int32, chunk),
			qfwds:   make([][]int32, chunk),
			tkeys:   make([][]int64, chunk),
			maxKeys: make([]int64, chunk),
			seq:     make([]int32, x.table.batchTileRows()*k),
		}
		qinv := make([]int32, chunk*k)
		qfwd := make([]int32, chunk*k)
		keys := make([]int64, chunk*rows)
		for i := 0; i < chunk; i++ {
			b.qinvs[i] = qinv[i*k : (i+1)*k : (i+1)*k]
			b.qfwds[i] = qfwd[i*k : (i+1)*k : (i+1)*k]
			b.tkeys[i] = keys[i*rows : (i+1)*rows : (i+1)*rows]
		}
		s.batch = b
	}
	return s.batch
}

// scanOrderBatchInto fills outs[i] with the first len(outs[i]) database
// indexes of query i's permutation-distance scan order — exactly what
// len(qs) scanOrderInto calls would produce, computed batch-natively: the
// queries run in chunk-sized blocks, each block evaluated against the rank
// table by the cache-tiled kernels (one tile fetch per block instead of one
// per query), then each query scatters its keys and runs the same (partial)
// counting sort as the scalar path, reusing one counts buffer across the
// whole batch. Per query it costs k metric evaluations, like scanOrderInto.
func (x *PermIndex) scanOrderBatchInto(qs []metric.Point, outs [][]int) {
	s := x.scratchBuffers()
	b := x.batchBuffers()
	for base := 0; base < len(qs); base += b.chunk {
		end := base + b.chunk
		if end > len(qs) {
			end = len(qs)
		}
		m := end - base
		for i := 0; i < m; i++ {
			x.permuter.PermutationInto(qs[base+i], s.qbuf)
			qinv, qfwd := b.qinvs[i], b.qfwds[i]
			for rank, site := range s.qbuf {
				qfwd[rank] = int32(site)
				qinv[site] = int32(rank)
			}
		}
		x.table.distanceKeysBatch(x.dist, b.qinvs[:m], b.qfwds[:m], b.seq, b.tkeys[:m], b.maxKeys[:m])
		for i := 0; i < m; i++ {
			tkeys := b.tkeys[i]
			for j, id := range x.tableIDs {
				s.keys[j] = tkeys[id]
			}
			s.counts = countingArgsortInto(s.keys, b.maxKeys[i], s.counts, outs[base+i])
		}
	}
}

// ScanOrderBatch is the batch form of ScanOrder: one scan order per query
// of qs, byte-identical (tie-breaks included) to calling ScanOrder per
// query, with the rank table walked once per query block instead of once
// per query. Stats are per query: k metric evaluations each.
func (x *PermIndex) ScanOrderBatch(qs []metric.Point) ([][]int, []Stats) {
	outs := make([][]int, len(qs))
	for i := range outs {
		outs[i] = make([]int, x.db.N())
	}
	x.scanOrderBatchInto(qs, outs)
	stats := make([]Stats, len(qs))
	for i := range stats {
		stats[i] = Stats{DistanceEvals: x.K()}
	}
	return outs, stats
}

// KNNBudgetBatch is the batch form of KNNBudget: each query's best k
// results after measuring at most maxEvals candidates in permutation-scan
// order, identical per query (budget cutoff included) to KNNBudget. The
// candidate schedules come from one batch-kernel pass; the metric
// evaluations against the scheduled candidates are inherently per-query.
func (x *PermIndex) KNNBudgetBatch(qs []metric.Point, k, maxEvals int) ([][]Result, []Stats) {
	checkK(k, x.db.N())
	if maxEvals > x.db.N() {
		maxEvals = x.db.N()
	}
	orders := make([][]int, len(qs))
	for i := range orders {
		orders[i] = make([]int, maxEvals)
	}
	x.scanOrderBatchInto(qs, orders)
	results := make([][]Result, len(qs))
	stats := make([]Stats, len(qs))
	for i, q := range qs {
		h := newKNNHeap(k)
		for _, j := range orders[i] {
			h.push(Result{ID: j, Distance: x.db.Metric.Distance(q, x.db.Points[j])})
		}
		results[i] = h.results()
		stats[i] = Stats{DistanceEvals: x.K() + maxEvals}
	}
	return results, stats
}

// KNNBatch implements BatchIndex with an exhaustive batched scan: exact
// answers, identical per query to KNN, with the candidate-ordering pass —
// the dominant cost — batch-amortised across qs.
func (x *PermIndex) KNNBatch(qs []metric.Point, k int) ([][]Result, []Stats) {
	return x.KNNBudgetBatch(qs, k, x.db.N())
}

// referenceScanOrder is the pre-table-encoding scan, retained as the oracle
// for equivalence tests: one permutation-distance evaluation per *point*
// over materialised inverse permutations and a stable float64 argsort. Its
// output is byte-identical to ScanOrder by construction (integer keys order
// identically to their float images; counting sort and SliceStable break
// ties the same way).
func (x *PermIndex) referenceScanOrder(q metric.Point) []int {
	qinv := x.permuter.Permutation(q).Inverse()
	keys := make([]float64, x.db.N())
	for i := range keys {
		inv := x.invPermAt(i)
		switch x.dist {
		case Footrule:
			keys[i] = float64(perm.SpearmanFootrule(qinv, inv))
		case KendallTau:
			keys[i] = float64(perm.KendallTau(qinv, inv))
		case SpearmanRho:
			keys[i] = perm.SpearmanRho(qinv, inv)
		default:
			panic("sisap: unknown permutation distance")
		}
	}
	return argsort(keys)
}

// KNNBudget returns the best k results found after measuring at most
// maxEvals database points in permutation-distance order (the query's k
// site evaluations are charged on top). With maxEvals ≥ n the scan is
// exhaustive and the answer exact. The candidate schedule is produced by
// the partial counting sort, so a small budget never pays for ordering the
// whole database.
func (x *PermIndex) KNNBudget(q metric.Point, k, maxEvals int) ([]Result, Stats) {
	checkK(k, x.db.N())
	if maxEvals > x.db.N() {
		maxEvals = x.db.N()
	}
	order := make([]int, maxEvals)
	stats := x.scanOrderInto(q, order)
	h := newKNNHeap(k)
	for _, i := range order {
		h.push(Result{ID: i, Distance: x.db.Metric.Distance(q, x.db.Points[i])})
	}
	stats.DistanceEvals += maxEvals
	return h.results(), stats
}

// KNN implements Index with an exhaustive scan in permutation order: the
// answer is exact and the candidate ordering is what distinguishes the
// structure (early candidates are nearly always the true neighbours; see
// EvalsToFindTrueKNN). Cost: n + k evaluations.
func (x *PermIndex) KNN(q metric.Point, k int) ([]Result, Stats) {
	return x.KNNBudget(q, k, x.db.N())
}

// Range implements Index: permutations carry no metric lower bound, so
// every point is measured and the results are exact. The scan runs in plain
// index order — computing the query permutation and ordering candidates
// first (as this method once did) is pure overhead when every point is
// measured anyway — into a result slice pre-sized to the database. Stats
// are identical to the permutation-ordered scan this replaced: the k site
// evaluations stay charged so the index's reported Range cost model is
// unchanged by the optimisation.
func (x *PermIndex) Range(q metric.Point, r float64) ([]Result, Stats) {
	n := x.db.N()
	out := make([]Result, 0, n)
	for i, pt := range x.db.Points {
		if d := x.db.Metric.Distance(q, pt); d <= r {
			out = append(out, Result{ID: i, Distance: d})
		}
	}
	sortResults(out)
	return out, Stats{DistanceEvals: x.K() + n}
}

// EvalsToFindTrueKNN reports how many database points must be measured, in
// permutation-scan order, before all k true nearest neighbours have been
// seen. It is the paper-style quality measure for permutation ordering:
// small values mean the permutation index extracts most of the information
// an exact index would.
func (x *PermIndex) EvalsToFindTrueKNN(q metric.Point, k int) (int, Stats) {
	truth, _ := NewLinearScan(x.db).KNN(q, k)
	want := make(map[int]bool, k)
	for _, r := range truth {
		want[r.ID] = true
	}
	order, stats := x.ScanOrder(q)
	found := 0
	for n, i := range order {
		if want[i] {
			found++
			if found == k {
				stats.DistanceEvals += n + 1
				return n + 1, stats
			}
		}
	}
	stats.DistanceEvals += len(order)
	return len(order), stats
}

func naiveBitsPerPerm(k int) int {
	return counting.Bits(counting.Factorial(k))
}
