package sisap

import (
	"fmt"
	"math/big"

	"distperm/internal/core"
	"distperm/internal/counting"
	"distperm/internal/metric"
	"distperm/internal/perm"
)

// PermDistance selects which permutation distance orders the candidates.
type PermDistance int

// Candidate-ordering permutation distances. The original
// Chávez/Figueroa/Navarro proposal and iAESA use Spearman footrule; the
// alternatives are provided for the ablation study.
const (
	Footrule PermDistance = iota
	KendallTau
	SpearmanRho
)

func (p PermDistance) String() string {
	switch p {
	case Footrule:
		return "footrule"
	case KendallTau:
		return "kendall-tau"
	case SpearmanRho:
		return "spearman-rho"
	default:
		return fmt.Sprintf("PermDistance(%d)", int(p))
	}
}

// PermIndex is the distance-permutation index ("distperm" in the SISAP
// library, after Chávez/Figueroa/Navarro 2005): for each database point it
// stores only the point's distance permutation with respect to k sites. A
// query computes its own permutation (k metric evaluations) and scans the
// database in increasing permutation-distance order — points whose
// permutation resembles the query's are probably close. The scan is
// probabilistic, not exact: permutation distance gives no lower bound on the
// metric, so PermIndex exposes a budgeted kNN (KNNBudget) reporting how good
// an answer a given fraction of the database buys. That cost/quality curve
// is the search-performance side of the paper; the index size (counted by
// IndexBits via the paper's counting results) is the storage side.
type PermIndex struct {
	db       *DB
	siteIDs  []int
	permuter *core.Permuter
	dist     PermDistance
	// invPerms[i] is the *inverse* distance permutation of point i:
	// invPerms[i][s] = rank of site s in point i's closeness order.
	// Inverses are what the Spearman/Kendall comparisons consume.
	invPerms []perm.Permutation
	distinct int // number of distinct permutations stored
}

// parallelBuildThreshold is the database size below which sharded
// construction is not worth the goroutine overhead.
const parallelBuildThreshold = 2048

// NewPermIndex builds the index with the given site IDs (database indexes)
// and candidate-ordering distance. Construction costs k·n metric
// evaluations, sharded across runtime.NumCPU() workers for large databases
// (each worker clones the Permuter, which is not goroutine-safe). The result
// is identical to a sequential build.
func NewPermIndex(db *DB, siteIDs []int, dist PermDistance) *PermIndex {
	if len(siteIDs) == 0 {
		panic("sisap: PermIndex requires at least one site")
	}
	sites := make([]metric.Point, len(siteIDs))
	for i, id := range siteIDs {
		sites[i] = db.Points[id]
	}
	pm := core.NewPermuter(db.Metric, sites)
	inv := make([]perm.Permutation, db.N())
	return &PermIndex{
		db:       db,
		siteIDs:  append([]int(nil), siteIDs...),
		permuter: pm,
		dist:     dist,
		invPerms: inv,
		distinct: buildInvPerms(pm, db.Points, inv),
	}
}

// buildInvPerms fills inv[i] with the inverse distance permutation of
// points[i] and returns the number of distinct permutations, sharding the
// scan across workers when the database is large. Shards write disjoint
// ranges of inv; per-shard distinct sets are merged at the end.
func buildInvPerms(pm *core.Permuter, points []metric.Point, inv []perm.Permutation) int {
	workers := core.ShardWorkers(len(points))
	if workers <= 1 || len(points) < parallelBuildThreshold {
		seen := make(map[string]bool)
		buildInvPermsRange(pm, points, inv, seen)
		return len(seen)
	}
	shardSeen := make([]map[string]bool, workers)
	shards := core.ShardIndexes(len(points), workers, func(shard, lo, hi int) {
		seen := make(map[string]bool)
		buildInvPermsRange(pm.Clone(), points[lo:hi], inv[lo:hi], seen)
		shardSeen[shard] = seen
	})
	total := shardSeen[0]
	for _, seen := range shardSeen[1:shards] {
		for key := range seen {
			total[key] = true
		}
	}
	return len(total)
}

func buildInvPermsRange(pm *core.Permuter, points []metric.Point, inv []perm.Permutation, seen map[string]bool) {
	buf := make(perm.Permutation, pm.K())
	for i, pt := range points {
		pm.PermutationInto(pt, buf)
		seen[buf.Key()] = true
		inv[i] = buf.Inverse()
	}
}

// Name implements Index.
func (x *PermIndex) Name() string { return "distperm" }

// Replica implements Replicable: the returned index shares the immutable
// stored permutations and database but owns a fresh Permuter (whose scratch
// buffers make the query path non-reentrant), so it can be queried
// concurrently with the original as long as each replica stays on one
// goroutine.
func (x *PermIndex) Replica() Index {
	y := *x
	y.permuter = x.permuter.Clone()
	return &y
}

// K returns the number of sites.
func (x *PermIndex) K() int { return len(x.siteIDs) }

// SiteIDs returns a copy of the database IDs of the sites, in site order.
func (x *PermIndex) SiteIDs() []int { return append([]int(nil), x.siteIDs...) }

// DistinctPermutations returns the number of distinct distance permutations
// stored in the index — the paper's central statistic for this structure.
func (x *PermIndex) DistinctPermutations() int { return x.distinct }

// IndexBits implements Index: the cheaper of the two encodings the paper
// discusses. The naive encoding stores ⌈lg k!⌉ bits per point. The
// table encoding exploits the paper's counting results: a shared table
// stores each *distinct occurring* permutation once and every point stores
// ⌈lg(#distinct)⌉ bits of table index — the win when the database is large
// relative to the number of permutations, exactly as the paper's §4 notes.
func (x *PermIndex) IndexBits() int64 {
	if t := x.TableIndexBits(); t < x.NaiveIndexBits() {
		return t
	}
	return x.NaiveIndexBits()
}

// TableIndexBits returns the storage of the shared-table encoding:
// n·⌈lg(#distinct)⌉ bits of per-point table indexes plus the table itself.
func (x *PermIndex) TableIndexBits() int64 {
	perPoint := counting.Bits(big.NewInt(int64(x.distinct)))
	table := int64(x.distinct) * int64(naiveBitsPerPerm(x.K()))
	return int64(x.db.N())*int64(perPoint) + table
}

// NaiveIndexBits returns the storage under the unrestricted-permutation
// encoding, n·⌈lg k!⌉ bits — the Chávez/Figueroa/Navarro O(nk log k) figure.
func (x *PermIndex) NaiveIndexBits() int64 {
	return int64(x.db.N()) * int64(naiveBitsPerPerm(x.K()))
}

// ScanOrder returns the database indexes ordered by increasing permutation
// distance between each point's stored permutation and the query's, ties by
// index — the candidate schedule iAESA-style search follows. It costs k
// metric evaluations (the query's own permutation).
func (x *PermIndex) ScanOrder(q metric.Point) ([]int, Stats) {
	qinv := x.permuter.Permutation(q).Inverse()
	keys := make([]float64, x.db.N())
	for i, inv := range x.invPerms {
		switch x.dist {
		case Footrule:
			keys[i] = float64(perm.SpearmanFootrule(qinv, inv))
		case KendallTau:
			keys[i] = float64(perm.KendallTau(qinv, inv))
		case SpearmanRho:
			keys[i] = perm.SpearmanRho(qinv, inv)
		default:
			panic("sisap: unknown permutation distance")
		}
	}
	order := argsort(keys)
	return order, Stats{DistanceEvals: x.K()}
}

// KNNBudget returns the best k results found after measuring at most
// maxEvals database points in permutation-distance order (the query's k
// site evaluations are charged on top). With maxEvals ≥ n the scan is
// exhaustive and the answer exact.
func (x *PermIndex) KNNBudget(q metric.Point, k, maxEvals int) ([]Result, Stats) {
	checkK(k, x.db.N())
	order, stats := x.ScanOrder(q)
	if maxEvals > len(order) {
		maxEvals = len(order)
	}
	h := newKNNHeap(k)
	for _, i := range order[:maxEvals] {
		h.push(Result{ID: i, Distance: x.db.Metric.Distance(q, x.db.Points[i])})
	}
	stats.DistanceEvals += maxEvals
	return h.results(), stats
}

// KNN implements Index with an exhaustive scan in permutation order: the
// answer is exact and the candidate ordering is what distinguishes the
// structure (early candidates are nearly always the true neighbours; see
// EvalsToFindTrueKNN). Cost: n + k evaluations.
func (x *PermIndex) KNN(q metric.Point, k int) ([]Result, Stats) {
	return x.KNNBudget(q, k, x.db.N())
}

// Range implements Index: permutations carry no metric lower bound, so the
// scan is exhaustive; results are exact.
func (x *PermIndex) Range(q metric.Point, r float64) ([]Result, Stats) {
	order, stats := x.ScanOrder(q)
	var out []Result
	for _, i := range order {
		if d := x.db.Metric.Distance(q, x.db.Points[i]); d <= r {
			out = append(out, Result{ID: i, Distance: d})
		}
	}
	stats.DistanceEvals += len(order)
	sortResults(out)
	return out, stats
}

// EvalsToFindTrueKNN reports how many database points must be measured, in
// permutation-scan order, before all k true nearest neighbours have been
// seen. It is the paper-style quality measure for permutation ordering:
// small values mean the permutation index extracts most of the information
// an exact index would.
func (x *PermIndex) EvalsToFindTrueKNN(q metric.Point, k int) (int, Stats) {
	truth, _ := NewLinearScan(x.db).KNN(q, k)
	want := make(map[int]bool, k)
	for _, r := range truth {
		want[r.ID] = true
	}
	order, stats := x.ScanOrder(q)
	found := 0
	for n, i := range order {
		if want[i] {
			found++
			if found == k {
				stats.DistanceEvals += n + 1
				return n + 1, stats
			}
		}
	}
	stats.DistanceEvals += len(order)
	return len(order), stats
}

func naiveBitsPerPerm(k int) int {
	return counting.Bits(counting.Factorial(k))
}
