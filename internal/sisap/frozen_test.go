package sisap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/metric"

	"math/rand"
)

// writeFrozenFile freezes idx into a temp container file and returns its
// path.
func writeFrozenFile(t testing.TB, idx *PermIndex) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "frozen.dpidx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFrozen(f, idx); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// mappedCopy round-trips idx through a frozen container into an
// OpenMapped view (zero-copy where the platform supports it), closing the
// mapping when the test ends.
func mappedCopy(t testing.TB, idx *PermIndex, db *DB) *PermIndex {
	t.Helper()
	m, err := OpenMapped(writeFrozenFile(t, idx), db)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := m.Close(); err != nil {
			t.Errorf("closing mapping: %v", err)
		}
	})
	return m.Index()
}

type permBackend struct {
	name string
	idx  *PermIndex
}

// permBackends returns the index over both storage backends: as built
// (heap-owned growable store) and round-tripped through a frozen
// container opened by OpenMapped (read-only views into the mapping). The
// oracle tests run over both, pinning every kernel to byte-identical
// behaviour regardless of where the table bytes live.
func permBackends(t testing.TB, idx *PermIndex, db *DB) []permBackend {
	return []permBackend{{"heap", idx}, {"mmap", mappedCopy(t, idx, db)}}
}

func TestFrozenStreamRoundTrip(t *testing.T) {
	// A frozen container must also decode through the ordinary stream path
	// (ReadIndex), yielding the same index a compact container would.
	for _, k := range []int{1, 6, 12} {
		db, rng := testDB(710, 300, 3, metric.L2{})
		for _, dist := range allPermDistances {
			idx := NewPermIndex(db, rng.Perm(db.N())[:k], dist)
			var buf bytes.Buffer
			n, err := WriteFrozen(&buf, idx)
			if err != nil {
				t.Fatalf("k=%d %s: %v", k, dist, err)
			}
			if n != int64(buf.Len()) {
				t.Errorf("k=%d %s: reported %d bytes, wrote %d", k, dist, n, buf.Len())
			}
			loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()), db)
			if err != nil {
				t.Fatalf("k=%d %s: stream decode: %v", k, dist, err)
			}
			got := loaded.(*PermIndex)
			if got.DistinctPermutations() != idx.DistinctPermutations() {
				t.Fatalf("k=%d %s: distinct %d != %d", k, dist, got.DistinctPermutations(), idx.DistinctPermutations())
			}
			q := dataset.UniformVectors(rng, 1, 3)[0]
			a, _ := idx.ScanOrder(q)
			b, _ := got.ScanOrder(q)
			assertSameOrder(t, dist.String(), b, a)
		}
	}
}

func TestFrozenMappedRoundTrip(t *testing.T) {
	db, rng := testDB(711, 400, 3, metric.L2{})
	for _, dist := range allPermDistances {
		idx := NewPermIndex(db, rng.Perm(db.N())[:8], dist)
		got := mappedCopy(t, idx, db)
		if got.DistinctPermutations() != idx.DistinctPermutations() {
			t.Fatalf("%s: distinct %d != %d", dist, got.DistinctPermutations(), idx.DistinctPermutations())
		}
		for qi := 0; qi < 10; qi++ {
			q := dataset.UniformVectors(rng, 1, 3)[0]
			a, _ := idx.ScanOrder(q)
			b, _ := got.ScanOrder(q)
			assertSameOrder(t, dist.String(), b, a)
		}
	}
}

func TestFrozenWideRanksRoundTrip(t *testing.T) {
	// k > 256 exercises the uint16 rank store — and is exactly what the
	// compact bit-packed form (k ≤ 20) cannot represent at all.
	db, rng := testDB(712, 400, 4, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:300], KendallTau)
	if _, err := WriteIndex(&bytes.Buffer{}, idx); err == nil {
		t.Fatal("compact form unexpectedly accepts k=300")
	}
	var buf bytes.Buffer
	if _, err := WriteFrozen(&buf, idx); err != nil {
		t.Fatal(err)
	}
	streamed, err := ReadIndex(bytes.NewReader(buf.Bytes()), db)
	if err != nil {
		t.Fatal(err)
	}
	mapped := mappedCopy(t, idx, db)
	if !mapped.table.wide() || mapped.table.r16.data == nil {
		t.Fatal("mapped k=300 index should use the uint16 store")
	}
	q := dataset.UniformVectors(rng, 1, 4)[0]
	want, _ := idx.ScanOrder(q)
	a, _ := streamed.(*PermIndex).ScanOrder(q)
	b, _ := mapped.ScanOrder(q)
	assertSameOrder(t, "stream", a, want)
	assertSameOrder(t, "mapped", b, want)
}

func TestFrozenSelfContained(t *testing.T) {
	// L2 over equal-dimension vectors is self-describing, so the container
	// embeds the points and opens without a database.
	db, rng := testDB(713, 250, 3, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:6], Footrule)
	m, err := OpenMapped(writeFrozenFile(t, idx), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if mmapSupported && hostLittleEndian && !m.Zero() {
		t.Error("expected a zero-copy mapping on this platform")
	}
	if m.DB().N() != db.N() {
		t.Fatalf("embedded database has %d points, want %d", m.DB().N(), db.N())
	}
	for qi := 0; qi < 10; qi++ {
		q := dataset.UniformVectors(rng, 1, 3)[0]
		want, _ := idx.KNN(q, 5)
		got, _ := m.Index().KNN(q, 5)
		sameResults(t, "self-contained knn", got, want)
	}
}

func TestFrozenNeedDB(t *testing.T) {
	// An LP metric with fractional P has no ByName spelling, so the
	// container cannot embed a reconstructible database: opening without
	// one must fail with ErrNeedDB, and succeed with it.
	rng := rand.New(rand.NewSource(714))
	db := NewDB(metric.LP{P: 2.5}, dataset.UniformVectors(rng, 120, 3))
	idx := NewPermIndex(db, rng.Perm(db.N())[:5], Footrule)
	path := writeFrozenFile(t, idx)
	if _, err := OpenMapped(path, nil); !errors.Is(err, ErrNeedDB) {
		t.Fatalf("open without db: %v, want ErrNeedDB", err)
	}
	m, err := OpenMapped(path, db)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	q := dataset.UniformVectors(rng, 1, 3)[0]
	want, _ := idx.ScanOrder(q)
	got, _ := m.Index().ScanOrder(q)
	assertSameOrder(t, "lp metric", got, want)
}

func TestFrozenRejectsWrongDatabase(t *testing.T) {
	db, rng := testDB(715, 80, 2, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:4], Footrule)
	path := writeFrozenFile(t, idx)
	other := NewDB(metric.L2{}, dataset.UniformVectors(rng, 10, 2))
	if _, err := OpenMapped(path, other); err == nil {
		t.Error("mapped open against a different-size database should error")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bytes.NewReader(data), other); err == nil {
		t.Error("stream decode against a different-size database should error")
	}
}

func TestWriteIndexWithSelectsForm(t *testing.T) {
	db, rng := testDB(716, 150, 3, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:6], Footrule)
	var compact, frozen bytes.Buffer
	if _, err := WriteIndexWith(&compact, idx, WriteOptions{Compact: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteIndexWith(&frozen, idx, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if _, err := WriteIndex(&direct, idx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(compact.Bytes(), direct.Bytes()) {
		t.Error("Compact: true should emit exactly the WriteIndex wire form")
	}
	if tag := binary.LittleEndian.Uint32(frozen.Bytes()[frozenPrefixLen:]); tag != permFrozenV2Tag {
		t.Errorf("default WriteIndexWith form has payload tag %#x, want frozen", tag)
	}
	if frozen.Len() <= compact.Len() {
		t.Logf("note: frozen (%d bytes) not larger than compact (%d bytes)", frozen.Len(), compact.Len())
	}
	for _, buf := range []*bytes.Buffer{&compact, &frozen} {
		loaded, err := ReadIndex(bytes.NewReader(buf.Bytes()), db)
		if err != nil {
			t.Fatal(err)
		}
		q := dataset.UniformVectors(rng, 1, 3)[0]
		a, _ := idx.ScanOrder(q)
		b, _ := loaded.(*PermIndex).ScanOrder(q)
		assertSameOrder(t, "form", b, a)
	}
}

// refreezeCRC recomputes the stored CRC of section i from the (possibly
// mutated) section bytes, so corruption tests can separate "checksum
// catches it" from "bounds validation catches it".
func refreezeCRC(data []byte, i int) {
	le := binary.LittleEndian
	base := frozenPrefixLen + 4 + 40 + 24*i
	off := le.Uint64(data[base:])
	length := le.Uint64(data[base+8:])
	crc := crc32.Checksum(data[off:off+length], frozenCRC)
	le.PutUint32(data[base+16:], crc)
}

func TestFrozenRejectsCorruptContainers(t *testing.T) {
	db, rng := testDB(717, 200, 3, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:6], Footrule)
	var buf bytes.Buffer
	if _, err := WriteFrozen(&buf, idx); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	if _, err := OpenMappedBytesForTest(pristine, db); err != nil {
		t.Fatalf("pristine container should open: %v", err)
	}

	le := binary.LittleEndian
	// Field offsets within the file: container prefix is 24 bytes, then
	// tag@24, headerOff@28, k@36, dist@40, n@44, distinct@52, rankWidth@56,
	// dims@60, metricLen@64, section descriptors @68+24i.
	cases := []struct {
		name       string
		streamSkip bool // mutation invisible to the non-seeking stream decoder
		mutate     func(d []byte) []byte
	}{
		{"truncated header", false, func(d []byte) []byte { return d[:100] }},
		{"truncated section", false, func(d []byte) []byte { return d[:len(d)-7] }},
		{"trailing garbage", true, func(d []byte) []byte { return append(d, 0xAB) }},
		{"bad payload tag", false, func(d []byte) []byte {
			le.PutUint32(d[24:], 0xFFFF_FFFF)
			return d
		}},
		{"header offset lies", false, func(d []byte) []byte {
			le.PutUint64(d[28:], 1024)
			return d
		}},
		{"k zero", false, func(d []byte) []byte {
			le.PutUint32(d[36:], 0)
			return d
		}},
		{"unknown distance", false, func(d []byte) []byte {
			le.PutUint32(d[40:], 9)
			return d
		}},
		{"distinct zero", false, func(d []byte) []byte {
			le.PutUint32(d[52:], 0)
			return d
		}},
		{"distinct beyond n", false, func(d []byte) []byte {
			le.PutUint32(d[52:], uint32(db.N()+1))
			return d
		}},
		{"wrong rank width", false, func(d []byte) []byte {
			le.PutUint32(d[56:], 2)
			return d
		}},
		{"oversized metric name", false, func(d []byte) []byte {
			le.PutUint32(d[64:], 2000)
			return d
		}},
		{"sites offset out of bounds", false, func(d []byte) []byte {
			le.PutUint64(d[68:], uint64(len(d))+(1<<20))
			return d
		}},
		{"ranks length inflated", false, func(d []byte) []byte {
			base := 68 + 24*frozenSecRanks
			le.PutUint64(d[base+8:], le.Uint64(d[base+8:])+8)
			return d
		}},
		{"ranks checksum mismatch", false, func(d []byte) []byte {
			off := le.Uint64(d[68+24*frozenSecRanks:])
			d[off] ^= 0xFF
			return d
		}},
		{"rank out of range, checksum fixed", false, func(d []byte) []byte {
			off := le.Uint64(d[68+24*frozenSecRanks:])
			d[off] = 0xFF // k=6, rank 255 is out of range
			refreezeCRC(d, frozenSecRanks)
			return d
		}},
		{"row ID out of range, checksum fixed", false, func(d []byte) []byte {
			off := le.Uint64(d[68+24*frozenSecIDs:])
			le.PutUint32(d[off:], uint32(db.N())) // ≥ distinct for any table
			refreezeCRC(d, frozenSecIDs)
			return d
		}},
		{"site ID out of range, checksum fixed", false, func(d []byte) []byte {
			off := le.Uint64(d[68+24*frozenSecSites:])
			le.PutUint64(d[off:], uint64(db.N()))
			refreezeCRC(d, frozenSecSites)
			return d
		}},
		// A header whose fields pass every individual bound but whose
		// dims inflates the points section to n×65536×8 ≈ 100GB. The
		// mapped path rejects it as shorter than described; the stream
		// path must fail on the short read without first attempting a
		// 100GB allocation (readFrozenSection grows in bounded chunks).
		{"points section claims 100GB", false, func(d []byte) []byte {
			le.PutUint32(d[60:], frozenMaxDims)
			base := 68 + 24*frozenSecPoints
			n := le.Uint64(d[44:])
			le.PutUint64(d[base+8:], n*frozenMaxDims*8)
			return d
		}},
	}
	for _, tc := range cases {
		data := tc.mutate(append([]byte(nil), pristine...))
		if _, err := OpenMappedBytesForTest(data, db); err == nil {
			t.Errorf("%s: mapped open accepted the corruption", tc.name)
		}
		if tc.streamSkip {
			continue
		}
		if _, err := ReadIndex(bytes.NewReader(data), db); err == nil {
			t.Errorf("%s: stream decode accepted the corruption", tc.name)
		}
	}
}

// OpenMappedBytesForTest runs the mapped-open validation and construction
// over an in-memory image, so corruption tests need no temp files.
func OpenMappedBytesForTest(data []byte, db *DB) (*PermIndex, error) {
	idx, _, err := openFrozenBytes(data, db, false)
	return idx, err
}

// frozenBucketGeometry reads the PFR2 directory geometry back out of a
// container image: the absolute byte offsets of the five uint32 arrays in
// the buckets section, plus ell and nbuckets. Field positions: n@44,
// distinct@52, buckets descriptor @68+24·frozenSecBuckets, ell@188,
// nbuckets@192.
func frozenBucketGeometry(d []byte) (n, distinct, ell, nb, prefixesOff, rowStartsOff, rowOrderOff, ptStartsOff, ptOrderOff int) {
	le := binary.LittleEndian
	n = int(le.Uint64(d[44:]))
	distinct = int(le.Uint32(d[52:]))
	ell = int(le.Uint32(d[188:]))
	nb = int(le.Uint32(d[192:]))
	prefixesOff = int(le.Uint64(d[68+24*frozenSecBuckets:]))
	rowStartsOff = prefixesOff + 4*nb*ell
	rowOrderOff = rowStartsOff + 4*(nb+1)
	ptStartsOff = rowOrderOff + 4*distinct
	ptOrderOff = ptStartsOff + 4*(nb+1)
	return
}

func TestFrozenRejectsCorruptBucketDirectory(t *testing.T) {
	// The mis-probe guarantee: any directory inconsistent with the rank
	// table — even one whose checksum has been recomputed — must fail
	// decode on both the mapped and stream paths, never serve wrong
	// candidates.
	db, rng := testDB(718, 200, 3, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:6], Footrule)
	var buf bytes.Buffer
	if _, err := WriteFrozen(&buf, idx); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	le := binary.LittleEndian
	n, distinct, _, nb, prefixesOff, rowStartsOff, rowOrderOff, ptStartsOff, ptOrderOff := frozenBucketGeometry(pristine)
	if nb < 2 {
		t.Fatalf("need at least 2 buckets to corrupt, have %d", nb)
	}
	swap4 := func(d []byte, a, b int) {
		var tmp [4]byte
		copy(tmp[:], d[a:a+4])
		copy(d[a:a+4], d[b:b+4])
		copy(d[b:b+4], tmp[:])
	}
	cases := []struct {
		name   string
		refix  bool // recompute the section CRC: validation, not the checksum, must catch it
		mutate func(d []byte)
	}{
		{"buckets checksum mismatch", false, func(d []byte) { d[prefixesOff] ^= 0xFF }},
		{"ell zero", false, func(d []byte) { le.PutUint32(d[188:], 0) }},
		{"ell beyond k", false, func(d []byte) { le.PutUint32(d[188:], 7) }},
		{"nbuckets zero", false, func(d []byte) { le.PutUint32(d[192:], 0) }},
		{"nbuckets beyond distinct", false, func(d []byte) { le.PutUint32(d[192:], uint32(distinct)+1) }},
		{"prefix site out of range", true, func(d []byte) { le.PutUint32(d[prefixesOff:], 99) }},
		{"row boundaries start past 0", true, func(d []byte) { le.PutUint32(d[rowStartsOff:], 1) }},
		{"duplicate row in posting list", true, func(d []byte) {
			copy(d[rowOrderOff:rowOrderOff+4], d[rowOrderOff+4:rowOrderOff+8])
		}},
		{"row listed under wrong bucket", true, func(d []byte) {
			// Swap the first rows of buckets 0 and 1: both end up under a
			// prefix they do not carry.
			s1 := int(le.Uint32(d[rowStartsOff+4:]))
			swap4(d, rowOrderOff, rowOrderOff+4*s1)
		}},
		{"duplicate point in posting list", true, func(d []byte) {
			copy(d[ptOrderOff:ptOrderOff+4], d[ptOrderOff+4:ptOrderOff+8])
		}},
		{"point boundaries end short", true, func(d []byte) {
			le.PutUint32(d[ptStartsOff+4*nb:], uint32(n-1))
		}},
	}
	for _, tc := range cases {
		data := append([]byte(nil), pristine...)
		tc.mutate(data)
		if tc.refix {
			refreezeCRC(data, frozenSecBuckets)
		}
		if _, err := OpenMappedBytesForTest(data, db); err == nil {
			t.Errorf("%s: mapped open accepted the corruption", tc.name)
		}
		if _, err := ReadIndex(bytes.NewReader(data), db); err == nil {
			t.Errorf("%s: stream decode accepted the corruption", tc.name)
		}
	}
}

// readFuzzSeed decodes one committed `go test fuzz v1` corpus file back to
// its raw byte payload.
func readFuzzSeed(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	i := strings.Index(s, "[]byte(")
	j := strings.LastIndex(s, ")")
	if i < 0 || j <= i {
		t.Fatalf("%s is not a fuzz seed file", path)
	}
	raw, err := strconv.Unquote(strings.TrimSpace(s[i+len("[]byte(") : j]))
	if err != nil {
		t.Fatalf("unquoting %s: %v", path, err)
	}
	return []byte(raw)
}

func TestFrozenV1StillDecodes(t *testing.T) {
	// The committed PFRZ fuzz seed doubles as the backward-compatibility
	// pin: the pre-directory revision keeps decoding on both paths, with
	// the bucket directory rebuilt lazily on the heap. The seed was
	// written against the reproducible testDB(607, 50, 3) index.
	raw := readFuzzSeed(t, filepath.Join("testdata", "fuzz", "FuzzReadIndex", "seed-frozen-v1"))
	db, rng := testDB(607, 50, 3, metric.L2{})
	want := NewPermIndex(db, rng.Perm(db.N())[:5], Footrule)
	for name, decode := range map[string]func() (*PermIndex, error){
		"stream": func() (*PermIndex, error) {
			got, err := ReadIndex(bytes.NewReader(raw), db)
			if err != nil {
				return nil, err
			}
			return got.(*PermIndex), nil
		},
		"mapped": func() (*PermIndex, error) { return OpenMappedBytesForTest(raw, db) },
	} {
		got, err := decode()
		if err != nil {
			t.Fatalf("%s: v1 frozen container no longer decodes: %v", name, err)
		}
		if got.lb.pb != nil {
			t.Fatalf("%s: v1 container unexpectedly carries a directory", name)
		}
		q := dataset.UniformVectors(rng, 1, 3)[0]
		a, _ := want.ScanOrder(q)
		b, _ := got.ScanOrder(q)
		assertSameOrder(t, name, b, a)
		// The lazily built heap directory must agree with the original's.
		if got.ApproxBuckets() != want.ApproxBuckets() {
			t.Fatalf("%s: lazy directory has %d buckets, want %d", name, got.ApproxBuckets(), want.ApproxBuckets())
		}
		rs, st := got.KNNApprox(q, 3, 1)
		ws, wt := want.KNNApprox(q, 3, 1)
		sameResults(t, name+" v1 approx", rs, ws)
		if st != wt {
			t.Fatalf("%s: v1 approx stats %+v, want %+v", name, st, wt)
		}
	}
}

func TestFrozenBucketDirectoryRoundTrip(t *testing.T) {
	// save → OpenMapped → approximate query: the mapped index must answer
	// from the container's directory (no rebuild) and agree with the
	// heap-built index bucket for bucket.
	db, rng := testDB(719, 500, 3, metric.L2{})
	for _, k := range []int{6, 300} {
		idx := NewPermIndex(db, rng.Perm(db.N())[:k], Footrule)
		idx.ConfigurePrefixBuckets(3)
		mapped := mappedCopy(t, idx, db)
		if mapped.lb.pb == nil {
			t.Fatalf("k=%d: mapped open did not pre-fill the bucket directory", k)
		}
		if got, want := mapped.PrefixLen(), idx.PrefixLen(); got != want {
			t.Fatalf("k=%d: mapped prefix length %d, want %d", k, got, want)
		}
		if got, want := mapped.ApproxBuckets(), idx.ApproxBuckets(); got != want {
			t.Fatalf("k=%d: mapped directory has %d buckets, want %d", k, got, want)
		}
		for qi := 0; qi < 10; qi++ {
			q := dataset.UniformVectors(rng, 1, 3)[0]
			for _, nprobe := range []int{1, 3, idx.ApproxBuckets()} {
				want, wantSt := idx.KNNApprox(q, 5, nprobe)
				got, gotSt := mapped.KNNApprox(q, 5, nprobe)
				sameResults(t, "mapped approx knn", got, want)
				if gotSt != wantSt {
					t.Fatalf("k=%d nprobe=%d: mapped stats %+v, heap stats %+v", k, nprobe, gotSt, wantSt)
				}
			}
		}
	}
}
