package sisap

import (
	"math"
	"sync"

	"distperm/internal/metric"
)

// Approximate kNN over the distinct rank table: a permutation-prefix
// inverted file (PP-Index / MI-File style), keyed by the rows the table
// already deduplicates. The paper's counting theorems bound how many
// distinct distance permutations occur, and PR 5 stores each exactly once —
// so bucketing the *rows* by their length-ℓ permutation prefix gives an
// inverted file whose directory is tiny (≤ distinct entries) while its
// posting lists cover every stored point.
//
// A query computes its own site permutation once (k metric evaluations,
// exactly what the exact path pays), scores every bucket by the prefix
// footrule distance Σ_j |j − qinv[prefix[j]]| — the same bounded-integer
// key family the row kernels use, ordered by the same counting argsort —
// and probes only the nprobe nearest buckets. The probed buckets' rows are
// gathered into a contiguous candidate sub-table and run through the
// unchanged rank-table kernels, the candidate points inherit their row's
// key through the usual scatter, and the metric is evaluated over just
// those candidates. Recall is bounded (a true neighbour may live in an
// unprobed bucket) but monotone in nprobe: the probe order is a fixed
// per-query bucket ranking, so a larger nprobe's candidate set is a
// superset. When the probe set covers every bucket the candidate set is
// the whole database and the answer is byte-identical to the exact scan
// (the kNN heap's (distance, ID) ordering is set-determined), which is why
// approx=0 / nprobe ≥ buckets can always be served safely.

// prefixBuckets is the bucket directory: for each distinct length-ℓ
// permutation prefix occurring in the rank table, the rows and points that
// carry it. All slices are immutable after construction and may be
// zero-copy views into a mapped frozen container (frozen.go section 5).
type prefixBuckets struct {
	ell       int
	prefixes  []uint32 // buckets×ell site IDs, bucket-major, rank order
	rowStarts []uint32 // len buckets+1: rowOrder run boundaries
	rowOrder  []uint32 // len distinct: row IDs grouped by bucket
	ptStarts  []uint32 // len buckets+1: ptOrder run boundaries
	ptOrder   []uint32 // len n: point IDs grouped by bucket, ascending within
}

// numBuckets returns the directory size (distinct occurring prefixes).
func (pb *prefixBuckets) numBuckets() int { return len(pb.rowStarts) - 1 }

// bucketKeys scores every bucket against the query's inverse permutation
// with the prefix footrule Σ_j |j − qinv[prefix[j]]|, filling keys (len
// numBuckets) and returning the maximum key — the same bounded-integer
// shape the row kernels produce, so the same counting argsort orders the
// probe schedule.
func (pb *prefixBuckets) bucketKeys(qinv []int32, keys []int64) int64 {
	ell := pb.ell
	var maxKey int64
	for b := range keys {
		pref := pb.prefixes[b*ell : (b+1)*ell : (b+1)*ell]
		var sum int64
		for j, site := range pref {
			d := int64(j) - int64(qinv[site])
			if d < 0 {
				d = -d
			}
			sum += d
		}
		keys[b] = sum
		if sum > maxKey {
			maxKey = sum
		}
	}
	return maxKey
}

// lazyBuckets shares one once-built directory between an index and every
// replica cloned from it (Replica copies the struct, so the pointer is
// shared). A frozen open pre-fills pb with container views; heap indexes
// build it on first approximate query.
type lazyBuckets struct {
	once sync.Once
	pb   *prefixBuckets
}

// maxAutoPrefixLen caps the automatic ℓ choice: prefixes longer than this
// fragment the directory past any probing benefit.
const maxAutoPrefixLen = 8

// defaultPrefixLen picks ℓ from k and the distinct-row count: the shortest
// prefix whose directory reaches ~√distinct buckets, so probe cost and
// mean posting-list length balance at the square root of the table.
func defaultPrefixLen(t *rankTable) int {
	maxEll := maxAutoPrefixLen
	if maxEll > t.k {
		maxEll = t.k
	}
	target := int(math.Ceil(math.Sqrt(float64(t.rows))))
	for ell := 1; ell < maxEll; ell++ {
		if countDistinctPrefixes(t, ell) >= target {
			return ell
		}
	}
	return maxEll
}

// fillPrefix writes row r's length-ell permutation prefix (the ell sites
// the row ranks closest, in rank order) into out.
func fillPrefix(t *rankTable, r, ell int, out []uint32) {
	if t.wide() {
		for s, rank := range t.r16.row(t.k, r) {
			if int(rank) < ell {
				out[rank] = uint32(s)
			}
		}
		return
	}
	for s, rank := range t.r8.row(t.k, r) {
		if int(rank) < ell {
			out[rank] = uint32(s)
		}
	}
}

func countDistinctPrefixes(t *rankTable, ell int) int {
	seen := make(map[string]struct{}, t.rows)
	pref := make([]uint32, ell)
	key := make([]byte, 4*ell)
	for r := 0; r < t.rows; r++ {
		fillPrefix(t, r, ell, pref)
		for j, s := range pref {
			key[4*j] = byte(s)
			key[4*j+1] = byte(s >> 8)
			key[4*j+2] = byte(s >> 16)
			key[4*j+3] = byte(s >> 24)
		}
		seen[string(key)] = struct{}{}
	}
	return len(seen)
}

// buildPrefixBuckets groups the table's rows (and, through tableIDs, the
// points) by length-ell permutation prefix. ell ≤ 0 selects
// defaultPrefixLen. Buckets are numbered in first-occurrence row order;
// rows and points stay in ascending ID order within their bucket, so the
// directory is a deterministic function of the table.
func buildPrefixBuckets(t *rankTable, tableIDs []uint32, ell int) *prefixBuckets {
	if ell <= 0 {
		ell = defaultPrefixLen(t)
	}
	if ell > t.k {
		ell = t.k
	}
	distinct := t.rows
	index := make(map[string]uint32, distinct)
	rowBucket := make([]uint32, distinct)
	var prefixes []uint32
	pref := make([]uint32, ell)
	key := make([]byte, 4*ell)
	for r := 0; r < distinct; r++ {
		fillPrefix(t, r, ell, pref)
		for j, s := range pref {
			key[4*j] = byte(s)
			key[4*j+1] = byte(s >> 8)
			key[4*j+2] = byte(s >> 16)
			key[4*j+3] = byte(s >> 24)
		}
		b, ok := index[string(key)]
		if !ok {
			b = uint32(len(index))
			index[string(key)] = b
			prefixes = append(prefixes, pref...)
		}
		rowBucket[r] = b
	}
	buckets := len(index)
	// Counting scatters: rows then points, grouped by bucket, ascending
	// within each group.
	rowStarts := make([]uint32, buckets+1)
	for _, b := range rowBucket {
		rowStarts[b+1]++
	}
	for b := 0; b < buckets; b++ {
		rowStarts[b+1] += rowStarts[b]
	}
	rowOrder := make([]uint32, distinct)
	cur := make([]uint32, buckets)
	copy(cur, rowStarts[:buckets])
	for r, b := range rowBucket {
		rowOrder[cur[b]] = uint32(r)
		cur[b]++
	}
	ptStarts := make([]uint32, buckets+1)
	for _, row := range tableIDs {
		ptStarts[rowBucket[row]+1]++
	}
	for b := 0; b < buckets; b++ {
		ptStarts[b+1] += ptStarts[b]
	}
	ptOrder := make([]uint32, len(tableIDs))
	copy(cur, ptStarts[:buckets])
	for pt, row := range tableIDs {
		b := rowBucket[row]
		ptOrder[cur[b]] = uint32(pt)
		cur[b]++
	}
	return &prefixBuckets{
		ell:       ell,
		prefixes:  prefixes,
		rowStarts: rowStarts,
		rowOrder:  rowOrder,
		ptStarts:  ptStarts,
		ptOrder:   ptOrder,
	}
}

// approxScratch is the per-replica workspace of the approximate query
// path, sized to the directory on first use and grown with the candidate
// sets it gathers.
type approxScratch struct {
	bkeys  []int64 // one prefix-footrule key per bucket
	border []int   // full bucket probe order
	rowPos []int32 // table row → gathered candidate row position; only
	// entries of probed rows are valid (each is freshly written before read)
	cand8    []uint8  // gathered candidate rank rows, narrow tables
	cand16   []uint16 // gathered candidate rank rows, wide tables
	candKeys []int64  // one kernel key per gathered candidate row
	ptIDs    []int    // gathered candidate point IDs
	pkeys    []int64  // per-candidate-point keys scattered from candKeys
	corder   []int    // counting-argsort order over the candidate points
}

// approxBuffers returns the approximate-path workspace, allocated on first
// use against the given directory.
func (x *PermIndex) approxBuffers(pb *prefixBuckets) *approxScratch {
	s := x.scratchBuffers()
	if s.approx == nil {
		b := pb.numBuckets()
		s.approx = &approxScratch{
			bkeys:  make([]int64, b),
			border: make([]int, b),
			rowPos: make([]int32, x.table.rows),
		}
	}
	return s.approx
}

// buckets returns the shared directory, building it on first use for
// heap-backed indexes (frozen opens pre-fill it with container views).
func (x *PermIndex) buckets() *prefixBuckets {
	x.lb.once.Do(func() {
		if x.lb.pb == nil {
			x.lb.pb = buildPrefixBuckets(x.table, x.tableIDs, 0)
		}
	})
	return x.lb.pb
}

// ConfigurePrefixBuckets builds the approximate-search directory with an
// explicit prefix length ell (clamped to 1..k; ≤ 0 selects the automatic
// choice), replacing any directory already attached. It must be called
// before the index starts serving — replicas cloned earlier keep the old
// directory.
func (x *PermIndex) ConfigurePrefixBuckets(ell int) {
	lb := &lazyBuckets{}
	lb.pb = buildPrefixBuckets(x.table, x.tableIDs, ell)
	x.lb = lb
}

// ApproxBuckets returns the directory size — the value nprobe is measured
// against — building the directory if needed.
func (x *PermIndex) ApproxBuckets() int { return x.buckets().numBuckets() }

// PrefixLen returns the directory's prefix length ℓ, building the
// directory if needed.
func (x *PermIndex) PrefixLen() int { return x.buckets().ell }

// defaultNProbe is the serving default when a caller asks for approximate
// search without choosing nprobe: an eighth of the directory, at least one
// bucket. The recall sweep in internal/experiments is the tool for tuning
// past this.
func defaultNProbe(buckets int) int {
	np := (buckets + 7) / 8
	if np < 1 {
		np = 1
	}
	return np
}

// KNNApprox answers a k-nearest-neighbour query approximately: only the
// nprobe nearest prefix buckets are probed and only their points measured.
// nprobe ≤ 0 selects defaultNProbe. The probe set is widened past nprobe
// if needed until it holds at least k candidate points, and when it covers
// every bucket the answer is byte-identical to KNN (Exact is reported in
// the stats). Cost: k site evaluations plus one metric evaluation per
// candidate.
func (x *PermIndex) KNNApprox(q metric.Point, k, nprobe int) ([]Result, ApproxStats) {
	checkK(k, x.db.N())
	pb := x.buckets()
	nb := pb.numBuckets()
	if nprobe <= 0 {
		nprobe = defaultNProbe(nb)
	}
	if nprobe >= nb {
		rs, st := x.KNN(q, k)
		return rs, ApproxStats{
			Stats: st, ProbedBuckets: nb, TotalBuckets: nb,
			Candidates: x.db.N(), Exact: true,
		}
	}
	s := x.scratchBuffers()
	a := x.approxBuffers(pb)
	x.permuter.PermutationInto(q, s.qbuf)
	for rank, site := range s.qbuf {
		s.qfwd[rank] = int32(site)
		s.qinv[site] = int32(rank)
	}
	return x.knnApproxScheduled(q, k, nprobe, pb, s, a)
}

// knnApproxScheduled runs the probe/gather/measure pipeline for one query
// whose permutation is already in the scratch buffers (shared between the
// single and batch entry points).
func (x *PermIndex) knnApproxScheduled(q metric.Point, k, nprobe int, pb *prefixBuckets, s *permScratch, a *approxScratch) ([]Result, ApproxStats) {
	nb := pb.numBuckets()
	maxBKey := pb.bucketKeys(s.qinv, a.bkeys)
	s.counts = countingArgsortInto(a.bkeys, maxBKey, s.counts, a.border)
	// Widen past nprobe until the candidate set can fill k answers; the
	// probe order is fixed, so this only ever grows the candidate set.
	probed, npts := 0, 0
	for probed < nb && (probed < nprobe || npts < k) {
		b := a.border[probed]
		npts += int(pb.ptStarts[b+1] - pb.ptStarts[b])
		probed++
	}
	if probed >= nb {
		rs, st := x.KNN(q, k)
		return rs, ApproxStats{
			Stats: st, ProbedBuckets: nb, TotalBuckets: nb,
			Candidates: x.db.N(), Exact: true,
		}
	}
	// Gather the probed buckets' rows into a contiguous candidate
	// sub-table and run the unchanged rank-table kernels over it.
	kk := x.table.k
	wide := x.table.wide()
	a.cand8 = a.cand8[:0]
	a.cand16 = a.cand16[:0]
	nrows := 0
	for _, b := range a.border[:probed] {
		lo, hi := pb.rowStarts[b], pb.rowStarts[b+1]
		for _, r := range pb.rowOrder[lo:hi] {
			a.rowPos[r] = int32(nrows)
			if wide {
				a.cand16 = append(a.cand16, x.table.r16.row(kk, int(r))...)
			} else {
				a.cand8 = append(a.cand8, x.table.r8.row(kk, int(r))...)
			}
			nrows++
		}
	}
	cand := rankTable{
		k: kk, rows: nrows,
		r8:  rankStore[uint8]{data: a.cand8, frozen: true},
		r16: rankStore[uint16]{data: a.cand16, frozen: true},
	}
	if cap(a.candKeys) < nrows {
		a.candKeys = make([]int64, nrows)
	}
	candKeys := a.candKeys[:nrows]
	maxKey := cand.distanceKeys(x.dist, s.qinv, s.qfwd, s.seq, candKeys)
	// Scatter row keys to the probed buckets' points and order them with
	// the same counting argsort the exact path uses.
	if cap(a.ptIDs) < npts {
		a.ptIDs = make([]int, npts)
		a.pkeys = make([]int64, npts)
		a.corder = make([]int, npts)
	}
	ptIDs, pkeys, corder := a.ptIDs[:npts], a.pkeys[:npts], a.corder[:npts]
	i := 0
	for _, b := range a.border[:probed] {
		lo, hi := pb.ptStarts[b], pb.ptStarts[b+1]
		for _, pt := range pb.ptOrder[lo:hi] {
			ptIDs[i] = int(pt)
			pkeys[i] = candKeys[a.rowPos[x.tableIDs[pt]]]
			i++
		}
	}
	s.counts = countingArgsortInto(pkeys, maxKey, s.counts, corder)
	h := newKNNHeap(k)
	for _, pos := range corder {
		id := ptIDs[pos]
		h.push(Result{ID: id, Distance: x.db.Metric.Distance(q, x.db.Points[id])})
	}
	return h.results(), ApproxStats{
		Stats:         Stats{DistanceEvals: x.K() + npts},
		ProbedBuckets: probed,
		TotalBuckets:  nb,
		Candidates:    npts,
	}
}

// KNNApproxBatch answers one approximate kNN query per element of qs,
// identical per query to KNNApprox. Each query probes its own buckets, so
// unlike the exact batch path there is no shared tile walk to amortise —
// the win is already in touching only candidate rows — but the gathered
// sub-tables run the same kernels.
func (x *PermIndex) KNNApproxBatch(qs []metric.Point, k, nprobe int) ([][]Result, []ApproxStats) {
	results := make([][]Result, len(qs))
	stats := make([]ApproxStats, len(qs))
	for i, q := range qs {
		results[i], stats[i] = x.KNNApprox(q, k, nprobe)
	}
	return results, stats
}
