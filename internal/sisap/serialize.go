package sisap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"distperm/internal/core"
	"distperm/internal/metric"
	"distperm/internal/perm"
)

// Serialization of the distance-permutation index: the sites (by database
// ID) and one permutation per point, bit-packed at ⌈lg k!⌉ bits each via
// perm.PackedArray. This is the artefact whose size the paper's analysis is
// about, written to disk the way a production index would be. The database
// points themselves are not serialised — like the SISAP library, the index
// file accompanies the data file.
//
// Format (little-endian):
//
//	magic   [8]byte  "DPERMIDX"
//	version uint32   (1)
//	k       uint32   number of sites
//	n       uint64   number of points
//	dist    uint32   PermDistance
//	sites   k × uint64   database IDs of the sites
//	perms   ceil(n·⌈lg k!⌉ / 64) × uint64   packed Lehmer ranks
const (
	permIndexMagic   = "DPERMIDX"
	permIndexVersion = 1
)

// WriteTo serialises the index in the standalone v1 format. It returns the
// number of bytes written. The codec registry (codec.go) wraps the same
// payload in the v2 multi-index container; both read back via ReadPermIndex
// / ReadIndex respectively.
func (x *PermIndex) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	if _, err := bw.WriteString(permIndexMagic); err != nil {
		return written, err
	}
	written += int64(len(permIndexMagic))
	if err := binary.Write(bw, binary.LittleEndian, uint32(permIndexVersion)); err != nil {
		return written, err
	}
	written += 4
	n, err := x.encodePayload(bw)
	written += n
	if err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// encodePayload writes the header-less index body: k, n, the permutation
// distance, the site IDs, and the bit-packed Lehmer ranks.
func (x *PermIndex) encodePayload(w io.Writer) (int64, error) {
	var written int64
	// The packed encoding stores Lehmer ranks in a uint64, so the on-disk
	// format (like its decoder) caps k at 20; an in-memory index above that
	// is usable but not serialisable.
	if x.K() > 20 {
		return 0, fmt.Errorf("sisap: cannot serialise distperm index with k=%d sites (format limit 20)", x.K())
	}
	put := func(v interface{}) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if err := put(uint32(x.K())); err != nil {
		return written, err
	}
	if err := put(uint64(x.db.N())); err != nil {
		return written, err
	}
	if err := put(uint32(x.dist)); err != nil {
		return written, err
	}
	for _, id := range x.siteIDs {
		if err := put(uint64(id)); err != nil {
			return written, err
		}
	}
	// Re-pack the stored inverse permutations as forward-permutation
	// Lehmer ranks.
	packed := perm.NewPackedArray(x.K())
	for _, inv := range x.invPerms {
		packed.Append(inv.Inverse())
	}
	words := packWords(packed)
	for _, w64 := range words {
		if err := put(w64); err != nil {
			return written, err
		}
	}
	return written, nil
}

// packWords re-encodes a PackedArray's payload deterministically. It exists
// so the on-disk format is defined by this file alone (bit width ⌈lg k!⌉,
// little-endian 64-bit words, LSB-first within a word) rather than by the
// PackedArray internals.
func packWords(a *perm.PackedArray) []uint64 {
	w := uint64(a.BitsPerElement())
	if w == 0 {
		return nil
	}
	totalBits := uint64(a.Len()) * w
	words := make([]uint64, (totalBits+63)/64)
	for i := 0; i < a.Len(); i++ {
		r := a.Rank64At(i)
		bitPos := uint64(i) * w
		word := bitPos / 64
		off := bitPos % 64
		words[word] |= r << off
		if off+w > 64 {
			words[word+1] |= r >> (64 - off)
		}
	}
	return words
}

// ReadPermIndex deserialises an index against db (which must be the same
// database the index was built on; k·n metric evaluations are *not*
// re-run — that is the point of persisting the index).
func ReadPermIndex(r io.Reader, db *DB) (*PermIndex, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(permIndexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sisap: reading magic: %w", err)
	}
	if string(magic) != permIndexMagic {
		return nil, fmt.Errorf("sisap: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != permIndexVersion {
		return nil, fmt.Errorf("sisap: unsupported version %d", version)
	}
	return decodePermPayload(br, db)
}

// decodePermPayload reads the header-less index body written by
// encodePayload and reconstructs the index against db.
func decodePermPayload(br io.Reader, db *DB) (*PermIndex, error) {
	var k, dist uint32
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &k); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &dist); err != nil {
		return nil, err
	}
	if k == 0 || k > 20 {
		return nil, fmt.Errorf("sisap: k=%d out of range", k)
	}
	if int(n) != db.N() {
		return nil, fmt.Errorf("sisap: index has %d points, database has %d", n, db.N())
	}
	siteIDs := make([]int, k)
	for i := range siteIDs {
		var id uint64
		if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
			return nil, err
		}
		if id >= n {
			return nil, fmt.Errorf("sisap: site ID %d out of range", id)
		}
		siteIDs[i] = int(id)
	}
	width := uint64(perm.NewPackedArray(int(k)).BitsPerElement())
	nWords := (n*width + 63) / 64
	words := make([]uint64, nWords)
	for i := range words {
		if err := binary.Read(br, binary.LittleEndian, &words[i]); err != nil {
			return nil, err
		}
	}

	x := &PermIndex{
		db:      db,
		siteIDs: siteIDs,
		dist:    PermDistance(dist),
	}
	// Rebuild the permuter (sites only — the stored per-point permutations
	// are what makes reloading cheaper than reindexing).
	sitePts := make([]metric.Point, k)
	for i, id := range siteIDs {
		sitePts[i] = db.Points[id]
	}
	x.permuter = core.NewPermuter(db.Metric, sitePts)
	maxRank := rankLimit(int(k))
	x.invPerms = make([]perm.Permutation, n)
	seen := make(map[uint64]bool)
	mask := uint64(1)<<width - 1
	for i := uint64(0); i < n; i++ {
		var rank uint64
		if width > 0 {
			bitPos := i * width
			word := bitPos / 64
			off := bitPos % 64
			rank = words[word] >> off
			if off+width > 64 {
				rank |= words[word+1] << (64 - off)
			}
			rank &= mask
		}
		if rank >= maxRank {
			return nil, fmt.Errorf("sisap: corrupt permutation rank %d at point %d", rank, i)
		}
		p := perm.Unrank64(int(k), rank)
		seen[rank] = true
		x.invPerms[i] = p.Inverse()
	}
	x.distinct = len(seen)
	return x, nil
}

func rankLimit(k int) uint64 {
	limit := uint64(1)
	for i := 2; i <= k; i++ {
		limit *= uint64(i)
	}
	return limit
}
