package sisap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"distperm/internal/perm"
)

// Serialization of the distance-permutation index. Three payload formats
// exist, distinguished by the first uint32 of the payload:
//
//   - legacy (first uint32 = k, 1..20): the sites and one bit-packed
//     permutation per point at ⌈lg k!⌉ bits each — the naive encoding.
//     Written by every version before the table format; still decoded.
//   - table (first uint32 = permTableTag): the paper's §4 table encoding on
//     disk. The distinct occurring permutations are stored once each
//     (bit-packed Lehmer ranks) and every point stores only a table index
//     of ⌈lg(#distinct)⌉ bits. Containers shrink by the Corollary 8 margin
//     whenever distinct ≪ k!, and ReadIndex gets faster with them: it
//     decodes #distinct permutations instead of n and scatters the IDs
//     straight into the in-memory table encoding, no re-deduplication.
//     This bit-packed form stays the compact wire format WriteIndex emits.
//   - frozen (first uint32 = permFrozenTag, frozen.go): the table encoding
//     laid out raw in 64-byte-aligned checksummed sections so OpenMapped
//     can serve the file zero-copy out of the page cache; ReadIndex also
//     stream-decodes it here for compatibility. Written by WriteFrozen.
//
// The database points themselves are never serialised — like the SISAP
// library, the index file accompanies the data file.
//
// Table payload format (little-endian):
//
//	tag      uint32   permTableTag (distinguishes from legacy k ≤ 20)
//	k        uint32   number of sites
//	n        uint64   number of points
//	dist     uint32   PermDistance
//	sites    k × uint64   database IDs of the sites
//	distinct uint32   number of distinct permutations (1 ≤ distinct ≤ n)
//	table    ceil(distinct·⌈lg k!⌉ / 64) × uint64   packed Lehmer ranks
//	ids      ceil(n·⌈lg distinct⌉ / 64) × uint64    packed table indexes
const (
	permIndexMagic   = "DPERMIDX"
	permIndexVersion = 1
	// permTableTag marks the table-encoded payload. Any value above 20 is
	// unambiguous against the legacy payload, whose first uint32 is k; the
	// spelled-out constant is "PTBL" read little-endian.
	permTableTag = 0x4C425450
)

// WriteTo serialises the index in the standalone v1 container. It returns
// the number of bytes written. The codec registry (codec.go) wraps the same
// payload in the v2 multi-index container; both read back via ReadPermIndex
// / ReadIndex respectively.
func (x *PermIndex) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	if _, err := bw.WriteString(permIndexMagic); err != nil {
		return written, err
	}
	written += int64(len(permIndexMagic))
	if err := binary.Write(bw, binary.LittleEndian, uint32(permIndexVersion)); err != nil {
		return written, err
	}
	written += 4
	n, err := x.encodePayload(bw)
	written += n
	if err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// encodePayload writes the header-less table-format index body.
func (x *PermIndex) encodePayload(w io.Writer) (int64, error) {
	var written int64
	// The packed encoding stores Lehmer ranks in a uint64, so the on-disk
	// format (like its decoder) caps k at 20; an in-memory index above that
	// is usable but not serialisable.
	if x.K() > 20 {
		return 0, fmt.Errorf("sisap: cannot serialise distperm index with k=%d sites (format limit 20)", x.K())
	}
	put := func(v interface{}) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	for _, v := range []interface{}{
		uint32(permTableTag), uint32(x.K()), uint64(x.db.N()), uint32(x.dist),
	} {
		if err := put(v); err != nil {
			return written, err
		}
	}
	for _, id := range x.siteIDs {
		if err := put(uint64(id)); err != nil {
			return written, err
		}
	}
	distinct := x.table.rows
	if err := put(uint32(distinct)); err != nil {
		return written, err
	}
	// The distinct-permutation table, as forward-permutation Lehmer ranks.
	packed := perm.NewPackedArray(x.K())
	for r := 0; r < distinct; r++ {
		packed.Append(x.table.invAt(r).Inverse())
	}
	for _, w64 := range packWords(packed) {
		if err := put(w64); err != nil {
			return written, err
		}
	}
	// The per-point table indexes at ⌈lg distinct⌉ bits each.
	idWidth := tableIDBits(distinct)
	for _, w64 := range packUint32s(x.tableIDs, idWidth) {
		if err := put(w64); err != nil {
			return written, err
		}
	}
	return written, nil
}

// tableIDBits returns ⌈lg distinct⌉, the per-point index width of the table
// encoding (0 when a single permutation covers the whole database).
func tableIDBits(distinct int) uint {
	return uint(bits.Len(uint(distinct - 1)))
}

// packWords re-encodes a PackedArray's payload deterministically. It exists
// so the on-disk format is defined by this file alone (bit width ⌈lg k!⌉,
// little-endian 64-bit words, LSB-first within a word) rather than by the
// PackedArray internals.
func packWords(a *perm.PackedArray) []uint64 {
	w := uint64(a.BitsPerElement())
	if w == 0 {
		return nil
	}
	totalBits := uint64(a.Len()) * w
	words := make([]uint64, (totalBits+63)/64)
	for i := 0; i < a.Len(); i++ {
		putBits(words, uint64(i)*w, w, a.Rank64At(i))
	}
	return words
}

// packUint32s packs vals at width bits each into LSB-first little-endian
// words, the same layout packWords uses.
func packUint32s(vals []uint32, width uint) []uint64 {
	if width == 0 {
		return nil
	}
	w := uint64(width)
	totalBits := uint64(len(vals)) * w
	words := make([]uint64, (totalBits+63)/64)
	for i, v := range vals {
		putBits(words, uint64(i)*w, w, uint64(v))
	}
	return words
}

func putBits(words []uint64, bitPos, width, v uint64) {
	word := bitPos / 64
	off := bitPos % 64
	words[word] |= v << off
	if off+width > 64 {
		words[word+1] |= v >> (64 - off)
	}
}

func getBits(words []uint64, bitPos, width uint64) uint64 {
	word := bitPos / 64
	off := bitPos % 64
	v := words[word] >> off
	if off+width > 64 {
		v |= words[word+1] << (64 - off)
	}
	return v & (uint64(1)<<width - 1)
}

// ReadPermIndex deserialises an index against db (which must be the same
// database the index was built on; k·n metric evaluations are *not*
// re-run — that is the point of persisting the index).
func ReadPermIndex(r io.Reader, db *DB) (*PermIndex, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(permIndexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sisap: reading magic: %w", err)
	}
	if string(magic) != permIndexMagic {
		return nil, fmt.Errorf("sisap: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != permIndexVersion {
		return nil, fmt.Errorf("sisap: unsupported version %d", version)
	}
	return decodePermPayload(br, db)
}

// decodePermPayload reads a header-less index body — table format or
// legacy, self-described by the first uint32 — and reconstructs the index
// against db.
func decodePermPayload(br io.Reader, db *DB) (*PermIndex, error) {
	var first uint32
	if err := binary.Read(br, binary.LittleEndian, &first); err != nil {
		return nil, err
	}
	switch first {
	case permTableTag:
		return decodeTablePayload(br, db)
	case permFrozenTag:
		return decodeFrozenStream(br, db, 1)
	case permFrozenV2Tag:
		return decodeFrozenStream(br, db, 2)
	}
	return decodeLegacyPayload(br, db, first)
}

// readPermHeader reads the n/dist/sites fields shared by both payload
// formats (k has already been consumed and validated).
func readPermHeader(br io.Reader, db *DB, k uint32) (dist uint32, n uint64, siteIDs []int, err error) {
	if err = binary.Read(br, binary.LittleEndian, &n); err != nil {
		return
	}
	if err = binary.Read(br, binary.LittleEndian, &dist); err != nil {
		return
	}
	if int(n) != db.N() {
		err = fmt.Errorf("sisap: index has %d points, database has %d", n, db.N())
		return
	}
	siteIDs = make([]int, k)
	for i := range siteIDs {
		var id uint64
		if err = binary.Read(br, binary.LittleEndian, &id); err != nil {
			return
		}
		if id >= n {
			err = fmt.Errorf("sisap: site ID %d out of range", id)
			return
		}
		siteIDs[i] = int(id)
	}
	return
}

// readWords reads the packed bit vector covering count elements of the
// given width. The callers derive count and width from db-validated
// header fields; the explicit bounds here keep a corrupt header that
// slips past them an error rather than an overflowed allocation.
func readWords(br io.Reader, count, width uint64) ([]uint64, error) {
	if width > 64 {
		return nil, fmt.Errorf("sisap: packed element width %d out of range", width)
	}
	if width != 0 && count > (1<<40)/width {
		return nil, fmt.Errorf("sisap: packed section of %d×%d-bit elements out of range", count, width)
	}
	words := make([]uint64, (count*width+63)/64)
	for i := range words {
		if err := binary.Read(br, binary.LittleEndian, &words[i]); err != nil {
			return nil, err
		}
	}
	return words, nil
}

// decodeTablePayload reads the table-encoded body: the distinct
// permutations are decoded once each into a rankTable and the per-point
// table IDs are scattered — O(distinct·k + n) instead of the legacy
// O(n·k) decode.
func decodeTablePayload(br io.Reader, db *DB) (*PermIndex, error) {
	var k uint32
	if err := binary.Read(br, binary.LittleEndian, &k); err != nil {
		return nil, err
	}
	if k == 0 || k > 20 {
		return nil, fmt.Errorf("sisap: k=%d out of range", k)
	}
	dist, n, siteIDs, err := readPermHeader(br, db, k)
	if err != nil {
		return nil, err
	}
	var distinct uint32
	if err := binary.Read(br, binary.LittleEndian, &distinct); err != nil {
		return nil, err
	}
	if distinct == 0 || uint64(distinct) > n {
		return nil, fmt.Errorf("sisap: distinct count %d out of range 1..%d", distinct, n)
	}
	permWidth := uint64(perm.NewPackedArray(int(k)).BitsPerElement())
	permWords, err := readWords(br, uint64(distinct), permWidth)
	if err != nil {
		return nil, err
	}
	table := newRankTable(int(k))
	maxRank := rankLimit(int(k))
	seen := make(map[uint64]bool, distinct)
	for r := uint64(0); r < uint64(distinct); r++ {
		var rank uint64
		if permWidth > 0 {
			rank = getBits(permWords, r*permWidth, permWidth)
		}
		if rank >= maxRank {
			return nil, fmt.Errorf("sisap: corrupt permutation rank %d in table row %d", rank, r)
		}
		if seen[rank] {
			return nil, fmt.Errorf("sisap: duplicate permutation in table row %d", r)
		}
		seen[rank] = true
		table.appendInverseOf(perm.Unrank64(int(k), rank))
	}
	idWidth := uint64(tableIDBits(int(distinct)))
	idWords, err := readWords(br, n, idWidth)
	if err != nil {
		return nil, err
	}
	ids := make([]uint32, n)
	for i := uint64(0); i < n; i++ {
		var id uint64
		if idWidth > 0 {
			id = getBits(idWords, i*idWidth, idWidth)
		}
		if id >= uint64(distinct) {
			return nil, fmt.Errorf("sisap: table index %d out of range at point %d", id, i)
		}
		ids[i] = uint32(id)
	}
	return newPermIndexFromTable(db, siteIDs, PermDistance(dist), table, ids), nil
}

// decodeLegacyPayload reads the pre-table body (one packed permutation per
// point), deduplicating into the in-memory table encoding as it goes. k has
// already been read as the format discriminant.
func decodeLegacyPayload(br io.Reader, db *DB, k uint32) (*PermIndex, error) {
	if k == 0 || k > 20 {
		return nil, fmt.Errorf("sisap: k=%d out of range", k)
	}
	dist, n, siteIDs, err := readPermHeader(br, db, k)
	if err != nil {
		return nil, err
	}
	width := uint64(perm.NewPackedArray(int(k)).BitsPerElement())
	words, err := readWords(br, n, width)
	if err != nil {
		return nil, err
	}
	maxRank := rankLimit(int(k))
	table := newRankTable(int(k))
	ids := make([]uint32, n)
	rowOf := make(map[uint64]uint32)
	for i := uint64(0); i < n; i++ {
		var rank uint64
		if width > 0 {
			rank = getBits(words, i*width, width)
		}
		if rank >= maxRank {
			return nil, fmt.Errorf("sisap: corrupt permutation rank %d at point %d", rank, i)
		}
		id, ok := rowOf[rank]
		if !ok {
			id = uint32(table.appendInverseOf(perm.Unrank64(int(k), rank)))
			rowOf[rank] = id
		}
		ids[i] = id
	}
	return newPermIndexFromTable(db, siteIDs, PermDistance(dist), table, ids), nil
}

func rankLimit(k int) uint64 {
	limit := uint64(1)
	for i := 2; i <= k; i++ {
		limit *= uint64(i)
	}
	return limit
}
