package sisap

import (
	"fmt"
	"sort"

	"distperm/internal/perm"
)

// This file holds the query-path machinery the paper's counting results buy
// the distance-permutation index:
//
//   - rankTable: the table encoding, live. Every *distinct occurring*
//     inverse distance permutation is stored once as one contiguous
//     row-major row of site ranks (uint8 when k ≤ 256, uint16 beyond), and
//     each database point keeps only a row ID. Where the old representation
//     paid O(n·k) permutation-distance work per query over a cache-hostile
//     slice-of-slices, a query now evaluates its distance once per distinct
//     row (O(distinct·k), with distinct ≪ n exactly where the paper says)
//     and scatters the precomputed keys to points in O(n).
//   - integer distance kernels: footrule and Kendall tau are integers
//     bounded by ⌊k²/2⌉ and k(k−1)/2, and Spearman rho sorts identically to
//     its integer square, so every candidate ordering reduces to integer
//     keys. The kernel is chosen once per query, not per element.
//   - countingArgsort: a stable counting sort over those bounded integer
//     keys replacing the O(n log n) float64 comparison argsort, with a
//     partial variant that stops after the first `limit` candidates for
//     KNNBudget. Stability plus ascending-index placement reproduces the
//     argsort tie-break (ties by lower index) exactly.

// rankStore is the backing store of one rank width: a read-only view over
// either a heap-owned growable buffer or a section of a mapped frozen
// container. The kernels consume plain []T slices of it, so they are
// backend-agnostic; only the build paths append, and appending to a frozen
// view is a programming error (the container bytes are not ours to grow).
type rankStore[T uint8 | uint16] struct {
	data   []T
	frozen bool
}

// row returns row r of a k-wide matrix as a capacity-pinned slice.
func (s *rankStore[T]) row(k, r int) []T {
	return s.data[r*k : (r+1)*k : (r+1)*k]
}

// appendInverseOf appends the inverse of the forward permutation p (site →
// rank) as one new k-wide row.
func (s *rankStore[T]) appendInverseOf(k int, p perm.Permutation) {
	s.checkMutable()
	n := len(s.data)
	s.data = append(s.data, make([]T, k)...)
	row := s.data[n : n+k : n+k]
	for rank, site := range p {
		row[site] = T(rank)
	}
}

// appendRow appends a copy of row (one k-wide row of another store).
func (s *rankStore[T]) appendRow(row []T) {
	s.checkMutable()
	s.data = append(s.data, row...)
}

func (s *rankStore[T]) checkMutable() {
	if s.frozen {
		panic("sisap: append to a frozen rank store")
	}
}

// rankTable stores the distinct inverse distance permutations of an index
// as a flat rows×k row-major matrix: row r, column s holds the rank of site
// s in the r-th distinct permutation's closeness order. Rows are immutable
// once built and shared between replicas. The backing store is heap-owned
// for built and stream-decoded tables, or a zero-copy view into a mapped
// frozen container (newFrozenRankTable); every kernel runs unchanged over
// both.
type rankTable struct {
	k    int
	rows int
	r8   rankStore[uint8]  // backing store when k ≤ 256 (ranks fit a byte)
	r16  rankStore[uint16] // backing store when k > 256
}

func newRankTable(k int) *rankTable {
	// 65535 matches perm.Key, the build path's dedup key, so the bound
	// fails fast here instead of mid-build.
	if k < 1 || k > 65535 {
		panic(fmt.Sprintf("sisap: rankTable supports 1 <= k <= 65535, got %d", k))
	}
	return &rankTable{k: k}
}

// newFrozenRankTable wraps an already-materialised rank matrix — typically
// views into a mapped container — without copying. Exactly one of r8/r16 is
// non-nil, matching wide().
func newFrozenRankTable(k, rows int, r8 []uint8, r16 []uint16) *rankTable {
	t := newRankTable(k)
	t.rows = rows
	t.r8 = rankStore[uint8]{data: r8, frozen: true}
	t.r16 = rankStore[uint16]{data: r16, frozen: true}
	return t
}

// wide reports whether ranks need uint16 storage (the r16 store).
func (t *rankTable) wide() bool { return t.k > 256 }

// appendInverseOf appends the inverse of the forward permutation p (site →
// rank) as a new row and returns its row ID.
func (t *rankTable) appendInverseOf(p perm.Permutation) int {
	r := t.rows
	t.rows++
	if t.wide() {
		t.r16.appendInverseOf(t.k, p)
	} else {
		t.r8.appendInverseOf(t.k, p)
	}
	return r
}

// appendRowFrom copies row r of src (same k) as a new row of t.
func (t *rankTable) appendRowFrom(src *rankTable, r int) {
	t.rows++
	if t.wide() {
		t.r16.appendRow(src.r16.row(t.k, r))
	} else {
		t.r8.appendRow(src.r8.row(t.k, r))
	}
}

// invAt reconstructs row r as an inverse permutation (site → rank). It
// allocates; query paths use the raw rows, this is for serialization and
// reference implementations.
func (t *rankTable) invAt(r int) perm.Permutation {
	out := make(perm.Permutation, t.k)
	if t.wide() {
		fillInverse(t.r16.row(t.k, r), out)
	} else {
		fillInverse(t.r8.row(t.k, r), out)
	}
	return out
}

func fillInverse[T uint8 | uint16](row []T, out perm.Permutation) {
	for s, rank := range row {
		out[s] = int(rank)
	}
}

// distanceKeys computes the permutation distance between the query's
// permutation and every row of the table, as integer keys into out (len
// t.rows), returning the maximum key produced. qinv is the query's inverse
// (site → rank, what footrule and rho consume), qfwd its forward form
// (rank → site, what the Kendall kernel consumes), and seq a k-length
// scratch buffer. The kernel — distance × rank width — is selected here,
// once per query, instead of per element.
func (t *rankTable) distanceKeys(dist PermDistance, qinv, qfwd, seq []int32, out []int64) int64 {
	switch {
	case dist == Footrule && !t.wide():
		return footruleKeys(t.k, qinv, t.r8.data, out)
	case dist == Footrule:
		return footruleKeys(t.k, qinv, t.r16.data, out)
	case dist == KendallTau && !t.wide():
		return kendallKeys(t.k, qfwd, t.r8.data, seq, out)
	case dist == KendallTau:
		return kendallKeys(t.k, qfwd, t.r16.data, seq, out)
	case dist == SpearmanRho && !t.wide():
		return rhoSqKeys(t.k, qinv, t.r8.data, out)
	case dist == SpearmanRho:
		return rhoSqKeys(t.k, qinv, t.r16.data, out)
	default:
		panic("sisap: unknown permutation distance")
	}
}

// footruleKeys is the Spearman footrule kernel: out[r] = Σ_s |qinv[s] −
// row_r[s]|, an integer ≤ ⌊k²/2⌋.
func footruleKeys[T uint8 | uint16](k int, qinv []int32, rows []T, out []int64) int64 {
	var maxKey int64
	for r := range out {
		row := rows[r*k : (r+1)*k : (r+1)*k]
		var sum int64
		for s, rank := range row {
			d := int64(qinv[s]) - int64(rank)
			if d < 0 {
				d = -d
			}
			sum += d
		}
		out[r] = sum
		if sum > maxKey {
			maxKey = sum
		}
	}
	return maxKey
}

// kendallKeys is the Kendall tau kernel: out[r] is perm.KendallTau between
// the query's and the row's inverse vectors, an integer ≤ k(k−1)/2. That
// definition counts the inversions of row⁻¹∘qinv, which equals the
// inversions of its inverse qinv⁻¹∘row — and qinv⁻¹ is exactly the forward
// query permutation, so relabelling each row through qfwd (seq[s] =
// qfwd[row[s]]) reduces the distance to plain inversion counting with no
// row inversion. Rank vectors have no repeated values, so every pair is
// cleanly concordant or discordant. The O(k²) pair scan beats the
// allocating O(k log k) merge sort at the k this index runs at, and runs
// once per distinct row rather than once per point. seq is k-length scratch
// owned by the per-replica permScratch (sized once per index, not per call).
func kendallKeys[T uint8 | uint16](k int, qfwd []int32, rows []T, seq []int32, out []int64) int64 {
	// The three-index recap pins len(seq) to k, like row below, so the
	// relabel loop's seq[s] store needs no per-iteration bounds check.
	seq = seq[:k:k]
	var maxKey int64
	for r := range out {
		row := rows[r*k : (r+1)*k : (r+1)*k]
		for s, rank := range row {
			seq[s] = qfwd[rank]
		}
		var inv int64
		for i := 1; i < k; i++ {
			v := seq[i]
			for j := 0; j < i; j++ {
				if seq[j] > v {
					inv++
				}
			}
		}
		out[r] = inv
		if inv > maxKey {
			maxKey = inv
		}
	}
	return maxKey
}

// rhoSqKeys is the Spearman rho kernel: out[r] = Σ_s (qinv[s] − row_r[s])²,
// the integer square of the rho distance. sqrt is strictly monotone, so
// ordering (including ties) by the square is identical to ordering by rho.
func rhoSqKeys[T uint8 | uint16](k int, qinv []int32, rows []T, out []int64) int64 {
	var maxKey int64
	for r := range out {
		row := rows[r*k : (r+1)*k : (r+1)*k]
		var sum int64
		for s, rank := range row {
			d := int64(qinv[s]) - int64(rank)
			sum += d * d
		}
		out[r] = sum
		if sum > maxKey {
			maxKey = sum
		}
	}
	return maxKey
}

// countingBucketLimit bounds the bucket array a counting sort is allowed to
// allocate relative to n; beyond it (possible only for rho² at large k,
// where maxKey grows as k³) a stable comparison sort on the integer keys is
// cheaper than touching a sparse bucket array.
func countingBucketLimit(n int) int64 {
	return int64(4*n) + 1024
}

// countingArgsortInto writes into out the first len(out) indexes of the
// stable ascending-key ordering of keys (ties by lower index) — exactly
// argsort's ordering, in O(n + maxKey) instead of O(n log n). counts is
// scratch, grown as needed and reused across queries.
func countingArgsortInto(keys []int64, maxKey int64, counts []int32, out []int) []int32 {
	n := len(keys)
	limit := len(out)
	if limit > n {
		panic("sisap: countingArgsortInto limit exceeds key count")
	}
	if maxKey+1 > countingBucketLimit(n) {
		// Sparse key range: stable comparison sort preserves the identical
		// (key, index) order at O(n log n).
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
		copy(out, idx[:limit])
		return counts
	}
	buckets := int(maxKey) + 1
	if cap(counts) < buckets {
		counts = make([]int32, buckets)
	}
	counts = counts[:buckets]
	for i := range counts {
		counts[i] = 0
	}
	for _, key := range keys {
		counts[key]++
	}
	if limit == n {
		// Full sort: prefix sums become placement cursors; the ascending
		// index pass keeps equal keys in index order.
		var sum int32
		for key, c := range counts {
			counts[key] = sum
			sum += c
		}
		for i, key := range keys {
			out[counts[key]] = i
			counts[key]++
		}
		return counts
	}
	// Partial sort: find the cutoff bucket containing the limit-th
	// candidate, then place only keys below it (at their final positions)
	// plus the first `slack` index-order members of the cutoff bucket —
	// byte-identical to the prefix of the full ordering.
	var cutoff int64
	var below int32
	for key, c := range counts {
		if below+c > int32(limit) {
			cutoff = int64(key)
			break
		}
		below += c
		cutoff = int64(key) + 1
	}
	slack := int32(limit) - below // slots available within the cutoff bucket
	var sum int32
	for key := int64(0); key < cutoff; key++ {
		c := counts[key]
		counts[key] = sum
		sum += c
	}
	placed := 0
	for i, key := range keys {
		switch {
		case key < cutoff:
			out[counts[key]] = i
			counts[key]++
			placed++
		case key == cutoff && slack > 0:
			out[below] = i
			below++
			slack--
			placed++
		}
		if placed == limit {
			break
		}
	}
	return counts
}

// footruleRanks is the integer Spearman footrule over plain int rank
// vectors — the same kernel the table path uses, shared with iAESA's
// partial-permutation candidate selection.
func footruleRanks(a, b []int) int {
	s := 0
	for i, v := range a {
		d := v - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}
