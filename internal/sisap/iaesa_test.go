package sisap

import (
	"math/rand"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/metric"
)

func TestIAESAMatchesLinearScanKNN(t *testing.T) {
	for _, m := range []metric.Metric{metric.L2{}, metric.L1{}} {
		db, rng := testDB(51, 250, 3, m)
		ia := NewIAESA(db)
		linear := NewLinearScan(db)
		queries := dataset.UniformVectors(rng, 12, 3)
		for _, k := range []int{1, 4} {
			for _, q := range queries {
				want, _ := linear.KNN(q, k)
				got, _ := ia.KNN(q, k)
				sameResults(t, "iaesa/"+m.Name(), got, want)
			}
		}
	}
}

func TestIAESAMatchesLinearScanRange(t *testing.T) {
	db, rng := testDB(52, 200, 2, metric.L2{})
	ia := NewIAESA(db)
	linear := NewLinearScan(db)
	queries := dataset.UniformVectors(rng, 8, 2)
	for _, r := range []float64{0.1, 0.4} {
		for _, q := range queries {
			want, _ := linear.Range(q, r)
			got, _ := ia.Range(q, r)
			sameResults(t, "iaesa-range", got, want)
		}
	}
}

func TestIAESAFewEvals(t *testing.T) {
	// iAESA must retain AESA's headline property: far fewer distance
	// evaluations than a linear scan.
	db, rng := testDB(53, 400, 3, metric.L2{})
	ia := NewIAESA(db)
	total := 0
	const queries = 20
	for i := 0; i < queries; i++ {
		q := dataset.UniformVectors(rng, 1, 3)[0]
		_, stats := ia.KNN(q, 1)
		total += stats.DistanceEvals
	}
	if avg := float64(total) / queries; avg > float64(db.N())/5 {
		t.Errorf("iAESA averaged %.1f evals on n=%d", avg, db.N())
	}
}

func TestIAESAOnStrings(t *testing.T) {
	db, _ := stringDB(120)
	ia := NewIAESA(db)
	linear := NewLinearScan(db)
	q := metric.Point(metric.String("distance"))
	want, _ := linear.KNN(q, 3)
	got, _ := ia.KNN(q, 3)
	sameResults(t, "iaesa-edit", got, want)
}

func TestIAESAIndexBits(t *testing.T) {
	db, _ := testDB(54, 100, 2, metric.L2{})
	ia := NewIAESA(db)
	if ia.IndexBits() != 100*100*64 {
		t.Errorf("IndexBits = %d", ia.IndexBits())
	}
	if ia.Name() != "iaesa" {
		t.Errorf("Name = %s", ia.Name())
	}
}

func TestRankOrder(t *testing.T) {
	got := rankOrder([]float64{0.5, 0.1, 0.9, 0.1})
	// Sorted ascending with ties by index: 0.1(idx1), 0.1(idx3), 0.5, 0.9.
	want := []int{2, 0, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rankOrder = %v, want %v", got, want)
		}
	}
}

func BenchmarkIAESAvsAESAEvals(b *testing.B) {
	// Not a timing benchmark per se: reports average distance evaluations
	// as custom metrics so the iAESA-vs-AESA comparison (the paper's cited
	// improvement) is visible in bench output.
	rng := rand.New(rand.NewSource(55))
	db := NewDB(metric.L2{}, dataset.UniformVectors(rng, 600, 4))
	aesa := NewAESA(db)
	iaesa := NewIAESA(db)
	queries := dataset.UniformVectors(rng, 32, 4)
	b.ResetTimer()
	var aEvals, iEvals int
	for i := 0; i < b.N; i++ {
		q := queries[i&31]
		_, sa := aesa.KNN(q, 1)
		_, si := iaesa.KNN(q, 1)
		aEvals += sa.DistanceEvals
		iEvals += si.DistanceEvals
	}
	b.ReportMetric(float64(aEvals)/float64(b.N), "aesa-evals/query")
	b.ReportMetric(float64(iEvals)/float64(b.N), "iaesa-evals/query")
}
