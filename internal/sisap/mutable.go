package sisap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"distperm/internal/metric"
)

// MutableIndex is the snapshot form of a live-mutated store: an immutable
// base index over the first nb points of the database, a delta of unindexed
// points (the rest of the database) answered by linear scan, and a tombstone
// set of deleted points filtered at gather time. Every point carries a
// stable global ID (gid) that survives rebuilds, deletions, and save/load;
// query results report gids, so answers stay comparable across snapshots of
// the same logical point set.
//
// The invariants (validated by NewMutableIndex):
//
//   - the database holds the base points first, then the delta points;
//   - gids are strictly increasing in local order (so base gids < delta
//     gids, and (distance, gid) tie-breaking agrees with (distance, local))
//     and all below nextGid;
//   - tombstones name gids present in the database.
//
// A query merges the base answer (tombstones filtered, IDs remapped to
// gids) with a linear scan of the live delta — exactly the answer an index
// built from scratch over the logical point set would give, with the
// logical set ordered by gid. MutableIndex satisfies Index and Replicable,
// so a plain engine can serve a loaded snapshot read-only; the live write
// path around it is pkg/distperm's MutableEngine.
type MutableIndex struct {
	full    *DB
	baseDB  *DB
	nb      int
	base    Index
	gids    []int
	tomb    map[int]struct{}
	tombs   []int // ascending, the serialised form of tomb
	nextGid int
}

// NewMutableIndex assembles a snapshot from its parts: the full database
// (base points then delta points), the base prefix length nb, the base
// index (built over the first nb points), the per-point gids, the
// tombstoned gids (ascending), and the next gid an insert would take. The
// invariants above are validated; violations are errors, not panics,
// because the codec feeds this from untrusted bytes.
func NewMutableIndex(full *DB, nb int, base Index, gids []int, tombs []int, nextGid int) (*MutableIndex, error) {
	if full == nil || full.N() == 0 {
		return nil, fmt.Errorf("sisap: mutable index requires a non-empty database")
	}
	if base == nil {
		return nil, fmt.Errorf("sisap: mutable index requires a base index")
	}
	if nb < 1 || nb > full.N() {
		return nil, fmt.Errorf("sisap: base prefix %d out of range 1..%d", nb, full.N())
	}
	if len(gids) != full.N() {
		return nil, fmt.Errorf("sisap: %d gids for %d points", len(gids), full.N())
	}
	prev := -1
	for i, g := range gids {
		if g <= prev {
			return nil, fmt.Errorf("sisap: gids not strictly increasing at local %d", i)
		}
		prev = g
	}
	if prev >= nextGid {
		return nil, fmt.Errorf("sisap: max gid %d ≥ next gid %d", prev, nextGid)
	}
	tomb := make(map[int]struct{}, len(tombs))
	prev = -1
	for _, g := range tombs {
		if g <= prev {
			return nil, fmt.Errorf("sisap: tombstones not strictly increasing at %d", g)
		}
		prev = g
		i := sort.SearchInts(gids, g)
		if i >= len(gids) || gids[i] != g {
			return nil, fmt.Errorf("sisap: tombstone %d names no point", g)
		}
		tomb[g] = struct{}{}
	}
	return &MutableIndex{
		full:    full,
		baseDB:  NewDB(full.Metric, full.Points[:nb]),
		nb:      nb,
		base:    base,
		gids:    gids,
		tomb:    tomb,
		tombs:   append([]int(nil), tombs...),
		nextGid: nextGid,
	}, nil
}

// Name identifies the snapshot kind in the codec registry.
func (x *MutableIndex) Name() string { return "mutable" }

// Base returns the base index.
func (x *MutableIndex) Base() Index { return x.base }

// BaseDB returns the database the base index was built on (the first BaseN
// points of DB).
func (x *MutableIndex) BaseDB() *DB { return x.baseDB }

// BaseN returns the number of indexed base points.
func (x *MutableIndex) BaseN() int { return x.nb }

// DeltaN returns the number of unindexed delta points (live or tombstoned).
func (x *MutableIndex) DeltaN() int { return x.full.N() - x.nb }

// LiveN returns the logical point count: all points minus tombstones.
func (x *MutableIndex) LiveN() int { return x.full.N() - len(x.tomb) }

// NextGID returns the gid the next insert would take.
func (x *MutableIndex) NextGID() int { return x.nextGid }

// GIDs returns the per-point global IDs in local order. The caller must not
// modify the slice.
func (x *MutableIndex) GIDs() []int { return x.gids }

// Tombstones returns the tombstoned gids in ascending order. The caller
// must not modify the slice.
func (x *MutableIndex) Tombstones() []int { return x.tombs }

// Tombstoned reports whether gid is deleted.
func (x *MutableIndex) Tombstoned(gid int) bool {
	_, dead := x.tomb[gid]
	return dead
}

// DB returns the full database: base points then delta points, including
// tombstoned ones (the base index is built over them; they are filtered at
// gather time).
func (x *MutableIndex) DB() *DB { return x.full }

// IndexBits counts the base index plus the snapshot bookkeeping: 64 bits of
// gid per point and per tombstone. Delta points are unindexed and free.
func (x *MutableIndex) IndexBits() int64 {
	return x.base.IndexBits() + 64*int64(x.full.N()) + 64*int64(len(x.tombs))
}

// Replica satisfies Replicable: the base index's scratch state is cloned,
// everything else is immutable and shared.
func (x *MutableIndex) Replica() Index {
	r := *x
	r.base = QueryReplica(x.base)
	return &r
}

// KNN returns the k nearest live points by (distance, gid), with Result.ID
// carrying gids. The base index is asked for k plus the tombstone count (so
// at least k live base points surface), the delta is linear-scanned, and
// the merge keeps the global top k. Fewer than k results are returned when
// fewer than k points are live.
func (x *MutableIndex) KNN(q metric.Point, k int) ([]Result, Stats) {
	checkK(k, x.full.N())
	kb := k + len(x.tomb)
	if kb > x.nb {
		kb = x.nb
	}
	rs, st := x.base.KNN(q, kb)
	rs = x.filterBase(rs)
	delta := x.scanDelta(q, -1, &st)
	return MergeKNN([][]Result{rs, delta}, k), st
}

// Range returns all live points within radius r, in (distance, gid) order.
func (x *MutableIndex) Range(q metric.Point, r float64) ([]Result, Stats) {
	rs, st := x.base.Range(q, r)
	rs = x.filterBase(rs)
	delta := x.scanDelta(q, r, &st)
	return MergeRange([][]Result{rs, delta}), st
}

// FilterLive is the shared gather step of the mutation design: it drops
// tombstoned base answers and remaps base-local IDs to gids, in place.
// Remapping preserves (distance, ID) order because gids are strictly
// increasing in local order. Both MutableIndex and the live engine
// (pkg/distperm MutableEngine) filter through here, so their answers
// cannot drift.
func FilterLive(rs []Result, gids []int, tomb map[int]struct{}) []Result {
	keep := rs[:0]
	for _, r := range rs {
		g := gids[r.ID]
		if _, dead := tomb[g]; dead {
			continue
		}
		r.ID = g
		keep = append(keep, r)
	}
	return keep
}

func (x *MutableIndex) filterBase(rs []Result) []Result {
	return FilterLive(rs, x.gids, x.tomb)
}

// scanDelta measures the query against every live delta point, counting the
// evaluations into st. r < 0 keeps every point (the kNN path); otherwise
// only points within r survive. pkg/distperm's MutableEngine carries the
// same semantics over its deltaPoint buffer (which holds live points only,
// so it skips the tombstone check).
func (x *MutableIndex) scanDelta(q metric.Point, r float64, st *Stats) []Result {
	var out []Result
	for local := x.nb; local < x.full.N(); local++ {
		g := x.gids[local]
		if _, dead := x.tomb[g]; dead {
			continue
		}
		d := x.full.Metric.Distance(q, x.full.Points[local])
		st.DistanceEvals++
		if r < 0 || d <= r {
			out = append(out, Result{ID: g, Distance: d})
		}
	}
	return out
}

// --- mutable codec ---

// The mutable container payload — the delta/tombstone section the DPERMIDX
// format gains so a mutated store survives save/load. The accompanying
// database must hold the base points first and the delta points after them,
// exactly as DB() reports; as everywhere else in the format, the points
// themselves live in the data file, not the index file.
//
//	n       uint64   total point count (base + delta; == db.N())
//	nb      uint64   base prefix length
//	nextGid uint64   next gid an insert would take
//	gids    n × uint64   per-point global IDs, strictly increasing
//	nt      uint64   tombstone count
//	tombs   nt × uint64  tombstoned gids, ascending
//	blen    uint64   embedded base container length
//	base    blen bytes   WriteIndex container over the base prefix
func encodeMutable(w io.Writer, x Index) error {
	m, ok := x.(*MutableIndex)
	if !ok {
		return fmt.Errorf("sisap: mutable codec given %T", x)
	}
	for _, v := range []uint64{uint64(m.full.N()), uint64(m.nb), uint64(m.nextGid)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, g := range m.gids {
		if err := binary.Write(w, binary.LittleEndian, uint64(g)); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(m.tombs))); err != nil {
		return err
	}
	for _, g := range m.tombs {
		if err := binary.Write(w, binary.LittleEndian, uint64(g)); err != nil {
			return err
		}
	}
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, m.base); err != nil {
		return fmt.Errorf("sisap: encoding mutable base: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(buf.Len())); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func decodeMutable(r io.Reader, db *DB) (Index, error) {
	if err := checkN(r, db); err != nil {
		return nil, err
	}
	var nb, nextGid uint64
	if err := binary.Read(r, binary.LittleEndian, &nb); err != nil {
		return nil, fmt.Errorf("sisap: reading base prefix: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &nextGid); err != nil {
		return nil, fmt.Errorf("sisap: reading next gid: %w", err)
	}
	if nb == 0 || nb > uint64(db.N()) {
		return nil, fmt.Errorf("sisap: base prefix %d out of range 1..%d", nb, db.N())
	}
	readInts := func(n uint64, what string) ([]int, error) {
		if n > uint64(db.N()) {
			return nil, fmt.Errorf("sisap: %d %s for %d points", n, what, db.N())
		}
		out := make([]int, n)
		for i := range out {
			var v uint64
			if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
				return nil, fmt.Errorf("sisap: reading %s: %w", what, err)
			}
			if v >= nextGid {
				return nil, fmt.Errorf("sisap: %s entry %d ≥ next gid %d", what, v, nextGid)
			}
			out[i] = int(v)
		}
		return out, nil
	}
	gids, err := readInts(uint64(db.N()), "gids")
	if err != nil {
		return nil, err
	}
	var nt uint64
	if err := binary.Read(r, binary.LittleEndian, &nt); err != nil {
		return nil, fmt.Errorf("sisap: reading tombstone count: %w", err)
	}
	tombs, err := readInts(nt, "tombstones")
	if err != nil {
		return nil, err
	}
	var blen uint64
	if err := binary.Read(r, binary.LittleEndian, &blen); err != nil {
		return nil, fmt.Errorf("sisap: reading base payload size: %w", err)
	}
	if blen == 0 || blen > maxShardPayload {
		return nil, fmt.Errorf("sisap: base payload size %d out of range", blen)
	}
	buf := make([]byte, blen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("sisap: reading base payload: %w", err)
	}
	baseDB := NewDB(db.Metric, db.Points[:nb])
	base, err := ReadIndex(bytes.NewReader(buf), baseDB)
	if err != nil {
		return nil, fmt.Errorf("sisap: decoding mutable base: %w", err)
	}
	return NewMutableIndex(db, int(nb), base, gids, tombs, int(nextGid))
}

func init() {
	RegisterCodec(Codec{Kind: "mutable", Encode: encodeMutable, Decode: decodeMutable})
}
