package sisap

import "distperm/internal/metric"

// LinearScan is the baseline index: every query measures the distance to
// every database point. It defines the correct answers the other indexes are
// tested against, and the n-evaluation cost ceiling they must beat.
type LinearScan struct {
	db *DB
}

// NewLinearScan returns a linear-scan "index" over db.
func NewLinearScan(db *DB) *LinearScan { return &LinearScan{db: db} }

// Name implements Index.
func (s *LinearScan) Name() string { return "linear" }

// IndexBits implements Index: a linear scan stores nothing.
func (s *LinearScan) IndexBits() int64 { return 0 }

// KNN implements Index.
func (s *LinearScan) KNN(q metric.Point, k int) ([]Result, Stats) {
	checkK(k, s.db.N())
	h := newKNNHeap(k)
	for i, p := range s.db.Points {
		h.push(Result{ID: i, Distance: s.db.Metric.Distance(q, p)})
	}
	return h.results(), Stats{DistanceEvals: s.db.N()}
}

// Range implements Index.
func (s *LinearScan) Range(q metric.Point, r float64) ([]Result, Stats) {
	var out []Result
	for i, p := range s.db.Points {
		if d := s.db.Metric.Distance(q, p); d <= r {
			out = append(out, Result{ID: i, Distance: d})
		}
	}
	sortResults(out)
	return out, Stats{DistanceEvals: s.db.N()}
}
