package sisap

import (
	"math"
	"sort"

	"distperm/internal/metric"
)

// LAESA (Linear AESA, Micó/Oncina/Vidal 1994) stores only the distances
// from every database point to m chosen pivots — Θ(mn) floats instead of
// AESA's Θ(n²). A query first measures the distances to the pivots, then
// scans the database in order of increasing pivot-derived lower bound,
// skipping points whose bound proves they cannot qualify. This is the
// structure whose storage the distance-permutation representation compresses
// (O(nm log n) bits → O(n log #perms)), the comparison at the heart of the
// paper's §1.
type LAESA struct {
	db     *DB
	pivots []int       // database indexes of the pivots
	table  [][]float64 // table[p][i] = d(points[pivots[p]], points[i])
}

// NewLAESA builds a LAESA index with the given pivot IDs (database
// indexes). Construction costs m·n metric evaluations.
func NewLAESA(db *DB, pivots []int) *LAESA {
	if len(pivots) == 0 {
		panic("sisap: LAESA requires at least one pivot")
	}
	table := make([][]float64, len(pivots))
	for p, id := range pivots {
		row := make([]float64, db.N())
		for i, pt := range db.Points {
			row[i] = db.Metric.Distance(db.Points[id], pt)
		}
		table[p] = row
	}
	return &LAESA{db: db, pivots: append([]int(nil), pivots...), table: table}
}

// NewLAESAMaxSpread builds a LAESA index with m pivots chosen by the
// classical greedy max-min-distance heuristic: the first pivot is point 0,
// each subsequent pivot maximises its minimum distance to the pivots chosen
// so far. Construction cost is O(mn) metric evaluations.
func NewLAESAMaxSpread(db *DB, m int) *LAESA {
	if m < 1 || m > db.N() {
		panic("sisap: pivot count out of range")
	}
	pivots := []int{0}
	minDist := make([]float64, db.N())
	for i := range minDist {
		minDist[i] = db.Metric.Distance(db.Points[0], db.Points[i])
	}
	for len(pivots) < m {
		best, bestD := -1, -1.0
		for i, d := range minDist {
			if d > bestD {
				best, bestD = i, d
			}
		}
		pivots = append(pivots, best)
		for i := range minDist {
			if d := db.Metric.Distance(db.Points[best], db.Points[i]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return NewLAESA(db, pivots)
}

// Name implements Index.
func (l *LAESA) Name() string { return "laesa" }

// IndexBits implements Index: m·n distances at 64 bits — the paper's
// O(nk log n) storage figure, with log n standing for the float width.
func (l *LAESA) IndexBits() int64 {
	return int64(len(l.pivots)) * int64(l.db.N()) * 64
}

// Pivots returns the pivot database indexes.
func (l *LAESA) Pivots() []int { return append([]int(nil), l.pivots...) }

// lowerBounds measures the query-to-pivot distances (returned in qd, one
// metric evaluation each) and computes for every database point the best
// pivot-derived lower bound max_p |d(q, pivot_p) − table[p][i]|.
func (l *LAESA) lowerBounds(q metric.Point) (lb, qd []float64) {
	qd = make([]float64, len(l.pivots))
	for p, id := range l.pivots {
		qd[p] = l.db.Metric.Distance(q, l.db.Points[id])
	}
	lb = make([]float64, l.db.N())
	for i := range lb {
		best := 0.0
		for p := range l.pivots {
			b := math.Abs(qd[p] - l.table[p][i])
			if b > best {
				best = b
			}
		}
		lb[i] = best
	}
	return lb, qd
}

// KNN implements Index.
func (l *LAESA) KNN(q metric.Point, k int) ([]Result, Stats) {
	checkK(k, l.db.N())
	lb, qd := l.lowerBounds(q)
	evals := len(l.pivots)
	h := newKNNHeap(k)
	isPivot := make(map[int]bool, len(l.pivots))
	for p, id := range l.pivots {
		if !isPivot[id] {
			isPivot[id] = true
			h.push(Result{ID: id, Distance: qd[p]}) // already measured
		}
	}
	// Scan in increasing lower-bound order so the pruning radius tightens
	// as early as possible; points with lb above the current k-th-best
	// distance are skipped without evaluation.
	for _, i := range argsort(lb) {
		if isPivot[i] {
			continue
		}
		if lb[i] > h.bound() {
			continue
		}
		d := l.db.Metric.Distance(q, l.db.Points[i])
		evals++
		h.push(Result{ID: i, Distance: d})
	}
	return h.results(), Stats{DistanceEvals: evals}
}

// Range implements Index.
func (l *LAESA) Range(q metric.Point, r float64) ([]Result, Stats) {
	lb, qd := l.lowerBounds(q)
	evals := len(l.pivots)
	var out []Result
	isPivot := make(map[int]bool, len(l.pivots))
	for p, id := range l.pivots {
		if !isPivot[id] {
			isPivot[id] = true
			if qd[p] <= r {
				out = append(out, Result{ID: id, Distance: qd[p]})
			}
		}
	}
	for i, b := range lb {
		if isPivot[i] || b > r {
			continue
		}
		d := l.db.Metric.Distance(q, l.db.Points[i])
		evals++
		if d <= r {
			out = append(out, Result{ID: i, Distance: d})
		}
	}
	sortResults(out)
	return out, Stats{DistanceEvals: evals}
}

func argsort(x []float64) []int {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	return idx
}
