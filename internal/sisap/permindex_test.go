package sisap

import (
	"math/rand"
	"testing"

	"distperm/internal/counting"
	"distperm/internal/dataset"
	"distperm/internal/metric"
)

func TestPermIndexDistinctWithinBounds(t *testing.T) {
	db, rng := testDB(31, 400, 2, metric.L2{})
	sites := rng.Perm(db.N())[:5]
	pi := NewPermIndex(db, sites, Footrule)
	distinct := pi.DistinctPermutations()
	if distinct < 1 || distinct > db.N() {
		t.Fatalf("distinct = %d out of range", distinct)
	}
	// In 2-d Euclidean, never above N(2,5) = 46.
	if int64(distinct) > counting.EuclideanCount64(2, 5) {
		t.Fatalf("distinct = %d exceeds N(2,5)", distinct)
	}
}

func TestPermIndexScanOrderIsPermutation(t *testing.T) {
	db, rng := testDB(32, 120, 3, metric.L2{})
	pi := NewPermIndex(db, rng.Perm(db.N())[:6], Footrule)
	order, stats := pi.ScanOrder(metric.Vector{0.5, 0.5, 0.5})
	if stats.DistanceEvals != 6 {
		t.Errorf("scan order cost %d evals, want 6 (the sites)", stats.DistanceEvals)
	}
	seen := make([]bool, db.N())
	for _, i := range order {
		if i < 0 || i >= db.N() || seen[i] {
			t.Fatalf("scan order is not a permutation of the database")
		}
		seen[i] = true
	}
	if len(order) != db.N() {
		t.Fatalf("order length %d", len(order))
	}
}

func TestPermIndexBudgetMonotone(t *testing.T) {
	// A larger budget can only improve (not worsen) the best distance
	// found.
	db, rng := testDB(33, 300, 4, metric.L2{})
	pi := NewPermIndex(db, rng.Perm(db.N())[:8], Footrule)
	q := metric.Vector{0.3, 0.6, 0.2, 0.9}
	prev := 1e18
	for _, budget := range []int{1, 5, 20, 100, 300} {
		got, stats := pi.KNNBudget(q, 1, budget)
		if len(got) != 1 {
			t.Fatalf("budget %d: %d results", budget, len(got))
		}
		if got[0].Distance > prev {
			t.Fatalf("budget %d worsened the result", budget)
		}
		prev = got[0].Distance
		if stats.DistanceEvals != budget+8 {
			t.Errorf("budget %d: %d evals, want %d", budget, stats.DistanceEvals, budget+8)
		}
	}
	// Full budget must equal the true nearest neighbour.
	want, _ := NewLinearScan(db).KNN(q, 1)
	got, _ := pi.KNNBudget(q, 1, db.N())
	if got[0].ID != want[0].ID {
		t.Error("exhaustive budget should find the true NN")
	}
}

func TestPermIndexOrderingQuality(t *testing.T) {
	// The reason the structure works: the true NN appears very early in
	// permutation order. Require it in the first 20% on average (it is
	// typically ≪ 5%).
	db, rng := testDB(34, 500, 3, metric.L2{})
	pi := NewPermIndex(db, rng.Perm(db.N())[:10], Footrule)
	total := 0
	const queries = 30
	for i := 0; i < queries; i++ {
		q := dataset.UniformVectors(rng, 1, 3)[0]
		rank, _ := pi.EvalsToFindTrueKNN(q, 1)
		total += rank
	}
	if avg := float64(total) / queries; avg > float64(db.N())/5 {
		t.Errorf("true NN found after %.1f of %d points on average; ordering is not informative", avg, db.N())
	}
}

func TestPermIndexDistanceAblation(t *testing.T) {
	// All three permutation distances must produce correct exhaustive
	// results and valid scan orders.
	db, rng := testDB(35, 200, 3, metric.L2{})
	sites := rng.Perm(db.N())[:7]
	q := metric.Vector{0.5, 0.1, 0.8}
	want, _ := NewLinearScan(db).KNN(q, 3)
	for _, d := range []PermDistance{Footrule, KendallTau, SpearmanRho} {
		pi := NewPermIndex(db, sites, d)
		got, _ := pi.KNN(q, 3)
		sameResults(t, d.String(), got, want)
	}
}

func TestPermDistanceString(t *testing.T) {
	cases := map[PermDistance]string{
		Footrule:         "footrule",
		KendallTau:       "kendall-tau",
		SpearmanRho:      "spearman-rho",
		PermDistance(42): "PermDistance(42)",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestPermIndexStorageAccounting(t *testing.T) {
	db, rng := testDB(36, 1000, 2, metric.L2{})
	pi := NewPermIndex(db, rng.Perm(db.N())[:6], Footrule)
	// 2-d, k=6: at most N(2,6) = 101 distinct permutations, so the
	// shared-table encoding (7 bits/point) must beat naive (10 bits).
	if pi.TableIndexBits() >= pi.NaiveIndexBits() {
		t.Errorf("table encoding %d should beat naive %d here",
			pi.TableIndexBits(), pi.NaiveIndexBits())
	}
	if pi.IndexBits() != pi.TableIndexBits() {
		t.Error("IndexBits should pick the cheaper encoding")
	}
	if pi.K() != 6 {
		t.Errorf("K = %d", pi.K())
	}
}

func TestPermIndexPanicsWithoutSites(t *testing.T) {
	db, _ := testDB(37, 10, 2, metric.L2{})
	defer func() {
		if recover() == nil {
			t.Error("no sites should panic")
		}
	}()
	NewPermIndex(db, nil, Footrule)
}

func TestPermIndexRangeExact(t *testing.T) {
	db, rng := testDB(38, 150, 2, metric.L1{})
	pi := NewPermIndex(db, rng.Perm(db.N())[:5], KendallTau)
	q := metric.Vector{0.4, 0.4}
	want, _ := NewLinearScan(db).Range(q, 0.3)
	got, _ := pi.Range(q, 0.3)
	sameResults(t, "distperm-range", got, want)
}

func TestPermIndexOnEditDistance(t *testing.T) {
	// The index must work over non-vector spaces too (the SISAP
	// dictionaries are its original use case).
	db, rng := stringDB(150)
	pi := NewPermIndex(db, rng.Perm(db.N())[:6], Footrule)
	q := metric.Point(metric.String("permutation"))
	want, _ := NewLinearScan(db).KNN(q, 3)
	got, _ := pi.KNN(q, 3)
	sameResults(t, "distperm-edit", got, want)
	if pi.DistinctPermutations() < 2 {
		t.Error("dictionary should realise multiple permutations")
	}
}

func rankStats(t *testing.T, pi *PermIndex, rng *rand.Rand, d, queries int) float64 {
	t.Helper()
	total := 0
	for i := 0; i < queries; i++ {
		q := dataset.UniformVectors(rng, 1, d)[0]
		rank, _ := pi.EvalsToFindTrueKNN(q, 1)
		total += rank
	}
	return float64(total) / float64(queries)
}

func TestMoreSitesImproveOrdering(t *testing.T) {
	// With more sites the permutation carries more information, so the
	// true NN should be found earlier (on average, with margin).
	db, rng := testDB(39, 600, 4, metric.L2{})
	few := NewPermIndex(db, rng.Perm(db.N())[:2], Footrule)
	many := NewPermIndex(db, rng.Perm(db.N())[:16], Footrule)
	avgFew := rankStats(t, few, rng, 4, 25)
	avgMany := rankStats(t, many, rng, 4, 25)
	if avgMany >= avgFew {
		t.Errorf("16 sites (%.1f) should beat 2 sites (%.1f)", avgMany, avgFew)
	}
}
