package sisap

import (
	"math/rand"

	"distperm/internal/metric"
)

// VPTree is a vantage-point tree (Uhlmann 1991; Yianilos 1993): each node
// holds a vantage point and the median distance from it to the points below;
// the inside subtree holds points closer than the median, the outside
// subtree the rest. The triangle inequality prunes whole subtrees during
// search. Cited by the paper (§1) as the tree-structured class of proximity
// indexes that distance-permutation methods are an alternative to.
type VPTree struct {
	db   *DB
	root *vpNode
	size int64 // node count, for IndexBits
}

type vpNode struct {
	id              int     // vantage point (database index)
	median          float64 // median distance to points below
	inside, outside *vpNode
}

// NewVPTree builds a VP-tree over db, choosing vantage points uniformly at
// random with the supplied source. Construction is O(n log n) metric
// evaluations in expectation.
func NewVPTree(db *DB, rng *rand.Rand) *VPTree {
	ids := make([]int, db.N())
	for i := range ids {
		ids[i] = i
	}
	t := &VPTree{db: db}
	t.root = t.build(ids, rng)
	return t
}

func (t *VPTree) build(ids []int, rng *rand.Rand) *vpNode {
	if len(ids) == 0 {
		return nil
	}
	t.size++
	// Pick a random vantage point and swap it to the front.
	v := rng.Intn(len(ids))
	ids[0], ids[v] = ids[v], ids[0]
	node := &vpNode{id: ids[0]}
	rest := ids[1:]
	if len(rest) == 0 {
		return node
	}
	d := make([]float64, len(rest))
	vp := t.db.Points[node.id]
	for i, id := range rest {
		d[i] = t.db.Metric.Distance(vp, t.db.Points[id])
	}
	node.median = medianSplit(rest, d)
	mid := 0
	for mid < len(rest) && d[mid] < node.median {
		mid++
	}
	node.inside = t.build(rest[:mid], rng)
	node.outside = t.build(rest[mid:], rng)
	return node
}

// medianSplit partially sorts ids by their distances and returns the median
// distance; afterwards every id with distance < median precedes every id
// with distance ≥ median.
func medianSplit(ids []int, d []float64) float64 {
	// Simple full sort; construction cost is dominated by metric
	// evaluations anyway.
	order := argsort(d)
	idsCopy := append([]int(nil), ids...)
	dCopy := append([]float64(nil), d...)
	for i, o := range order {
		ids[i] = idsCopy[o]
		d[i] = dCopy[o]
	}
	return d[len(d)/2]
}

// Name implements Index.
func (t *VPTree) Name() string { return "vptree" }

// IndexBits implements Index: one float64 radius plus ~2 pointers' worth of
// structure per node. Pointer overhead is charged at 64 bits each, matching
// how the literature accounts tree indexes.
func (t *VPTree) IndexBits() int64 { return t.size * (64 + 2*64) }

// KNN implements Index.
func (t *VPTree) KNN(q metric.Point, k int) ([]Result, Stats) {
	checkK(k, t.db.N())
	h := newKNNHeap(k)
	evals := 0
	var walk func(n *vpNode)
	walk = func(n *vpNode) {
		if n == nil {
			return
		}
		d := t.db.Metric.Distance(q, t.db.Points[n.id])
		evals++
		h.push(Result{ID: n.id, Distance: d})
		// h.bound() is re-read after each recursive call: it can only
		// tighten, enabling more pruning on the second subtree.
		if d < n.median {
			walk(n.inside)
			if d+h.bound() >= n.median {
				walk(n.outside)
			}
		} else {
			walk(n.outside)
			if d-h.bound() <= n.median {
				walk(n.inside)
			}
		}
	}
	walk(t.root)
	return h.results(), Stats{DistanceEvals: evals}
}

// Range implements Index.
func (t *VPTree) Range(q metric.Point, r float64) ([]Result, Stats) {
	var out []Result
	evals := 0
	var walk func(n *vpNode)
	walk = func(n *vpNode) {
		if n == nil {
			return
		}
		d := t.db.Metric.Distance(q, t.db.Points[n.id])
		evals++
		if d <= r {
			out = append(out, Result{ID: n.id, Distance: d})
		}
		if d-r < n.median {
			walk(n.inside)
		}
		if d+r >= n.median {
			walk(n.outside)
		}
	}
	walk(t.root)
	sortResults(out)
	return out, Stats{DistanceEvals: evals}
}
