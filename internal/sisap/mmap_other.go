//go:build !unix

package sisap

import (
	"errors"
	"os"
)

// mmapSupported reports whether OpenMapped can hand out true zero-copy
// views on this platform; where it cannot, the open path falls back to a
// heap read of the file.
const mmapSupported = false

type mmapping struct {
	data []byte
}

var errNoMmap = errors.New("sisap: memory mapping is not supported on this platform")

func mapFile(*os.File, int64) (*mmapping, error) { return nil, errNoMmap }

func (m *mmapping) unmap() error { return nil }
