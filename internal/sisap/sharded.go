package sisap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"distperm/internal/metric"
)

// ShardedIndex partitions one database across S disjoint shards and holds
// one member-family index per shard. A query is scattered to every shard and
// the per-shard answers are merged back into global terms — exactly the
// answer the unpartitioned index would give, because each shard's local ID
// order mirrors the global ID order (parts are strictly increasing), so
// per-shard (distance, ID) tie-breaking agrees with global tie-breaking.
//
// The per-shard Stats sum to the query's global cost: the metric-evaluation
// cost model of the paper composes additively across shards.
//
// ShardedIndex itself satisfies Index (and Replicable, cloning per-shard
// query replicas), so it can be served by a plain Engine; the sharded
// serving layer in pkg/distperm instead runs one worker-pool Engine per
// shard and merges in the gather step.
type ShardedIndex struct {
	db     *DB
	parts  [][]int // parts[s][local] = global ID, strictly increasing
	dbs    []*DB   // shard-local databases, points shared with db
	shards []Index
}

// NewShardedIndex partitions db by parts (parts[s] lists the global IDs of
// shard s, strictly increasing; the parts must cover every ID exactly once
// and be non-empty) and builds one index per shard via build, which receives
// the shard number and the shard-local database.
func NewShardedIndex(db *DB, parts [][]int, build func(shard int, sdb *DB) (Index, error)) (*ShardedIndex, error) {
	if db == nil || db.N() == 0 {
		return nil, fmt.Errorf("sisap: sharded index requires a non-empty database")
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("sisap: sharded index requires at least one shard")
	}
	n := db.N()
	seen := make([]bool, n)
	total := 0
	for s, part := range parts {
		if len(part) == 0 {
			return nil, fmt.Errorf("sisap: shard %d is empty", s)
		}
		prev := -1
		for _, id := range part {
			if id < 0 || id >= n {
				return nil, fmt.Errorf("sisap: shard %d: ID %d out of range 0..%d", s, id, n-1)
			}
			if id <= prev {
				return nil, fmt.Errorf("sisap: shard %d: IDs not strictly increasing at %d", s, id)
			}
			if seen[id] {
				return nil, fmt.Errorf("sisap: ID %d assigned to two shards", id)
			}
			seen[id] = true
			prev = id
			total++
		}
	}
	if total != n {
		return nil, fmt.Errorf("sisap: partition covers %d of %d points", total, n)
	}
	x := &ShardedIndex{
		db:     db,
		parts:  parts,
		dbs:    make([]*DB, len(parts)),
		shards: make([]Index, len(parts)),
	}
	for s, part := range parts {
		pts := make([]metric.Point, len(part))
		for i, id := range part {
			pts[i] = db.Points[id]
		}
		x.dbs[s] = NewDB(db.Metric, pts)
		idx, err := build(s, x.dbs[s])
		if err != nil {
			return nil, fmt.Errorf("sisap: building shard %d: %w", s, err)
		}
		if idx == nil {
			return nil, fmt.Errorf("sisap: shard %d built a nil index", s)
		}
		x.shards[s] = idx
	}
	return x, nil
}

// Name identifies the container kind in the codec registry.
func (x *ShardedIndex) Name() string { return "sharded" }

// NumShards returns the shard count.
func (x *ShardedIndex) NumShards() int { return len(x.parts) }

// Shard returns shard s's index.
func (x *ShardedIndex) Shard(s int) Index { return x.shards[s] }

// ShardDB returns shard s's local database.
func (x *ShardedIndex) ShardDB(s int) *DB { return x.dbs[s] }

// Part returns shard s's local→global ID map. The caller must not modify it.
func (x *ShardedIndex) Part(s int) []int { return x.parts[s] }

// DB returns the global database the index partitions.
func (x *ShardedIndex) DB() *DB { return x.db }

// KNN scatters the query to every shard (asking each for its min(k, shard
// size) best) and gathers the global top k. Stats sum across shards.
func (x *ShardedIndex) KNN(q metric.Point, k int) ([]Result, Stats) {
	checkK(k, x.db.N())
	perShard := make([][]Result, len(x.shards))
	var st Stats
	for s, idx := range x.shards {
		ks := k
		if ks > x.dbs[s].N() {
			ks = x.dbs[s].N()
		}
		rs, sst := idx.KNN(q, ks)
		perShard[s] = RemapShardResults(rs, x.parts[s])
		st.DistanceEvals += sst.DistanceEvals
	}
	return MergeKNN(perShard, k), st
}

// Range scatters the query to every shard and concatenates the gathered
// answers in global (distance, ID) order. Stats sum across shards.
func (x *ShardedIndex) Range(q metric.Point, r float64) ([]Result, Stats) {
	perShard := make([][]Result, len(x.shards))
	var st Stats
	for s, idx := range x.shards {
		rs, sst := idx.Range(q, r)
		perShard[s] = RemapShardResults(rs, x.parts[s])
		st.DistanceEvals += sst.DistanceEvals
	}
	return MergeRange(perShard), st
}

// IndexBits sums the shard indexes plus the partition map (⌈lg S⌉ bits per
// point to name its shard).
func (x *ShardedIndex) IndexBits() int64 {
	var bits int64
	for _, idx := range x.shards {
		bits += idx.IndexBits()
	}
	shardBits := 0
	for 1<<shardBits < len(x.shards) {
		shardBits++
	}
	return bits + int64(x.db.N())*int64(shardBits)
}

// Replica clones per-shard query replicas over the shared built structures,
// satisfying Replicable: shard indexes with mutable scratch state (the
// distperm index) are cloned, read-only ones are shared.
func (x *ShardedIndex) Replica() Index {
	shards := make([]Index, len(x.shards))
	for s, idx := range x.shards {
		shards[s] = QueryReplica(idx)
	}
	return &ShardedIndex{db: x.db, parts: x.parts, dbs: x.dbs, shards: shards}
}

// RemapShardResults rewrites shard-local result IDs to global IDs via the
// shard's local→global part, in place.
func RemapShardResults(rs []Result, part []int) []Result {
	for i := range rs {
		rs[i].ID = part[rs[i].ID]
	}
	return rs
}

// MergeKNN gathers per-shard kNN answers (already remapped to global IDs)
// into the global top k in (distance, ID) order.
func MergeKNN(perShard [][]Result, k int) []Result {
	var all []Result
	for _, rs := range perShard {
		all = append(all, rs...)
	}
	sortResults(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// MergeRange gathers per-shard range answers (already remapped to global
// IDs) into one (distance, ID)-ordered slice.
func MergeRange(perShard [][]Result) []Result {
	var all []Result
	for _, rs := range perShard {
		all = append(all, rs...)
	}
	sortResults(all)
	return all
}

// --- sharded codec ---

// The sharded container payload: the partition map, then each shard's index
// as a length-prefixed embedded DPERMIDX container, so any codec-registered
// kind (including another sharded container) can be a shard member.
//
//	n       uint64   global point count
//	S       uint32   shard count
//	parts   S × (len uint64, len × uint64 global IDs)
//	shards  S × (len uint64, len bytes: WriteIndex container)
const maxShardPayload = 1 << 31 // sanity cap on one embedded shard index

func encodeSharded(w io.Writer, x Index) error {
	sx, ok := x.(*ShardedIndex)
	if !ok {
		return fmt.Errorf("sisap: sharded codec given %T", x)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(sx.db.N())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(sx.parts))); err != nil {
		return err
	}
	for _, part := range sx.parts {
		if err := binary.Write(w, binary.LittleEndian, uint64(len(part))); err != nil {
			return err
		}
		for _, id := range part {
			if err := binary.Write(w, binary.LittleEndian, uint64(id)); err != nil {
				return err
			}
		}
	}
	for s, idx := range sx.shards {
		var buf bytes.Buffer
		if _, err := WriteIndex(&buf, idx); err != nil {
			return fmt.Errorf("sisap: encoding shard %d: %w", s, err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint64(buf.Len())); err != nil {
			return err
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

func decodeSharded(r io.Reader, db *DB) (Index, error) {
	if err := checkN(r, db); err != nil {
		return nil, err
	}
	var s32 uint32
	if err := binary.Read(r, binary.LittleEndian, &s32); err != nil {
		return nil, fmt.Errorf("sisap: reading shard count: %w", err)
	}
	if s32 == 0 || int(s32) > db.N() {
		return nil, fmt.Errorf("sisap: shard count %d out of range 1..%d", s32, db.N())
	}
	parts := make([][]int, s32)
	for s := range parts {
		var plen uint64
		if err := binary.Read(r, binary.LittleEndian, &plen); err != nil {
			return nil, fmt.Errorf("sisap: reading shard %d size: %w", s, err)
		}
		// Compare in uint64 space: int(plen) would overflow (and slip past
		// the bound) for a corrupt length in the top bit range.
		if plen == 0 || plen > uint64(db.N()) {
			return nil, fmt.Errorf("sisap: shard %d size %d out of range", s, plen)
		}
		part := make([]int, plen)
		for i := range part {
			var id uint64
			if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
				return nil, fmt.Errorf("sisap: reading shard %d IDs: %w", s, err)
			}
			part[i] = int(id)
		}
		parts[s] = part
	}
	// NewShardedIndex re-validates the partition (range, coverage,
	// monotonicity) before any shard payload is trusted.
	return NewShardedIndex(db, parts, func(s int, sdb *DB) (Index, error) {
		var blen uint64
		if err := binary.Read(r, binary.LittleEndian, &blen); err != nil {
			return nil, fmt.Errorf("reading payload size: %w", err)
		}
		if blen == 0 || blen > maxShardPayload {
			return nil, fmt.Errorf("payload size %d out of range", blen)
		}
		buf := make([]byte, blen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("reading payload: %w", err)
		}
		return ReadIndex(bytes.NewReader(buf), sdb)
	})
}

func init() {
	RegisterCodec(Codec{Kind: "sharded", Encode: encodeSharded, Decode: decodeSharded})
}
