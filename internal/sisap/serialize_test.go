package sisap

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/perm"
)

func TestPermIndexSerializationRoundTrip(t *testing.T) {
	for _, k := range []int{1, 3, 8, 12} {
		db, rng := testDB(110, 300, 3, metric.L2{})
		idx := NewPermIndex(db, rng.Perm(db.N())[:k], KendallTau)

		var buf bytes.Buffer
		n, err := idx.WriteTo(&buf)
		if err != nil {
			t.Fatalf("k=%d: write: %v", k, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("k=%d: reported %d bytes, wrote %d", k, n, buf.Len())
		}

		got, err := ReadPermIndex(&buf, db)
		if err != nil {
			t.Fatalf("k=%d: read: %v", k, err)
		}
		if got.K() != idx.K() || got.dist != idx.dist {
			t.Fatalf("k=%d: header mismatch", k)
		}
		if got.DistinctPermutations() != idx.DistinctPermutations() {
			t.Errorf("k=%d: distinct %d != %d", k, got.DistinctPermutations(), idx.DistinctPermutations())
		}
		for i := 0; i < db.N(); i++ {
			if !got.invPermAt(i).Equal(idx.invPermAt(i)) {
				t.Fatalf("k=%d: permutation %d differs after round trip", k, i)
			}
		}
		// Behavioural equivalence: identical scan orders.
		q := dataset.UniformVectors(rng, 1, 3)[0]
		a, _ := idx.ScanOrder(q)
		b, _ := got.ScanOrder(q)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("k=%d: scan order diverges at %d", k, i)
			}
		}
	}
}

func TestPermIndexSerializationCompactness(t *testing.T) {
	// The naive encoding costs n·⌈lg k!⌉ bits; the table encoding must come
	// in under that whenever distinct ≪ k! — the paper's Corollary 8 margin,
	// on disk and not just on paper.
	db, rng := testDB(111, 10_000, 2, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:8], Footrule)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	naivePayload := 10_000 * 16 / 8 // n × ⌈lg 8!⌉ bits = 16 bits/point
	if buf.Len() > naivePayload+256 {
		t.Errorf("file is %d bytes; naive payload bound %d + header", buf.Len(), naivePayload)
	}
	// In 2-d Euclidean with k=8 the distinct count is far below n, so the
	// table-encoded container must be strictly smaller than the naive
	// payload alone — ⌈lg distinct⌉ < ⌈lg 8!⌉ bits per point.
	if buf.Len() >= naivePayload {
		t.Errorf("table-encoded file (%d bytes) should beat the naive payload (%d bytes); distinct = %d",
			buf.Len(), naivePayload, idx.DistinctPermutations())
	}
}

// encodeLegacyPayload reproduces the pre-table on-disk body (k, n, dist,
// sites, one ⌈lg k!⌉-bit packed permutation per point) so the decoder's
// backward compatibility stays covered now that WriteTo emits the table
// format.
func encodeLegacyPayload(t testing.TB, w *bytes.Buffer, x *PermIndex) {
	t.Helper()
	put := func(v interface{}) {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	put(uint32(x.K()))
	put(uint64(x.db.N()))
	put(uint32(x.dist))
	for _, id := range x.siteIDs {
		put(uint64(id))
	}
	packed := perm.NewPackedArray(x.K())
	for i := 0; i < x.db.N(); i++ {
		packed.Append(x.invPermAt(i).Inverse())
	}
	for _, w64 := range packWords(packed) {
		put(w64)
	}
}

func TestReadPermIndexAcceptsLegacyPayload(t *testing.T) {
	db, rng := testDB(115, 250, 3, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:6], Footrule)
	var buf bytes.Buffer
	buf.WriteString(permIndexMagic)
	if err := binary.Write(&buf, binary.LittleEndian, uint32(permIndexVersion)); err != nil {
		t.Fatal(err)
	}
	encodeLegacyPayload(t, &buf, idx)
	got, err := ReadPermIndex(&buf, db)
	if err != nil {
		t.Fatalf("legacy payload: %v", err)
	}
	if got.DistinctPermutations() != idx.DistinctPermutations() {
		t.Errorf("legacy distinct %d != %d", got.DistinctPermutations(), idx.DistinctPermutations())
	}
	q := dataset.UniformVectors(rng, 1, 3)[0]
	a, _ := idx.ScanOrder(q)
	b, _ := got.ScanOrder(q)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("legacy scan order diverges at %d", i)
		}
	}
}

func TestReadPermIndexRejectsCorruption(t *testing.T) {
	db, rng := testDB(112, 50, 2, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:4], Footrule)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte("NOTANIDX"), raw[8:]...)
	if _, err := ReadPermIndex(bytes.NewReader(bad), db); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
	// Truncated.
	if _, err := ReadPermIndex(bytes.NewReader(raw[:len(raw)/2]), db); err == nil {
		t.Error("truncated file should error")
	}
	// Wrong database size.
	other := NewDB(metric.L2{}, dataset.UniformVectors(rand.New(rand.NewSource(1)), 10, 2))
	if _, err := ReadPermIndex(bytes.NewReader(raw), other); err == nil {
		t.Error("database size mismatch should error")
	}
	// Corrupt version.
	vbad := append([]byte(nil), raw...)
	vbad[8] = 99
	if _, err := ReadPermIndex(bytes.NewReader(vbad), db); err == nil {
		t.Error("bad version should error")
	}
	// Unknown payload discriminant (neither legacy k ≤ 20 nor the table
	// tag).
	dbad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(dbad[12:], 999)
	if _, err := ReadPermIndex(bytes.NewReader(dbad), db); err == nil {
		t.Error("unknown payload discriminant should error")
	}
}

// FuzzReadIndex drives the container decoder — v1, v2-compact, legacy,
// and frozen payloads all dispatch from ReadIndex — with arbitrary bytes.
// Any input may fail to decode; none may panic or over-allocate.
func FuzzReadIndex(f *testing.F) {
	rng := rand.New(rand.NewSource(601))
	db := NewDB(metric.L2{}, dataset.UniformVectors(rng, 50, 3))
	idx := NewPermIndex(db, rng.Perm(db.N())[:5], Footrule)
	var compact bytes.Buffer
	if _, err := WriteIndex(&compact, idx); err != nil {
		f.Fatal(err)
	}
	f.Add(compact.Bytes())
	var frozen bytes.Buffer
	if _, err := WriteFrozen(&frozen, idx); err != nil {
		f.Fatal(err)
	}
	f.Add(frozen.Bytes())
	f.Add(frozen.Bytes()[:90])
	// A checksum-valid but inconsistent bucket directory, seeding the
	// fuzzer at the directory-consistency validation.
	badBuckets := append([]byte(nil), frozen.Bytes()...)
	_, _, _, _, _, _, _, _, ptOrderOff := frozenBucketGeometry(badBuckets)
	copy(badBuckets[ptOrderOff:ptOrderOff+4], badBuckets[ptOrderOff+4:ptOrderOff+8])
	refreezeCRC(badBuckets, frozenSecBuckets)
	f.Add(badBuckets)
	var v1 bytes.Buffer
	if _, err := idx.WriteTo(&v1); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	var legacy bytes.Buffer
	legacy.WriteString(permIndexMagic)
	if err := binary.Write(&legacy, binary.LittleEndian, uint32(permIndexVersion)); err != nil {
		f.Fatal(err)
	}
	encodeLegacyPayload(f, &legacy, idx)
	f.Add(legacy.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadIndex(bytes.NewReader(data), db)
		if err == nil && got == nil {
			t.Fatal("nil index with nil error")
		}
		// The mapped-open validation must be equally crash-free.
		if _, err := OpenMappedBytesForTest(data, db); err != nil {
			_ = err
		}
	})
}

func TestReadPermIndexRejectsBadRank(t *testing.T) {
	// Hand-craft a file whose packed table rank exceeds k!−1.
	db, rng := testDB(113, 4, 2, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(4)[:3], Footrule) // k=3: 3 bits/perm, ranks 0..5
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The table words start after 8+4 (magic+version) + 4 (tag) + 4 (k) +
	// 8 (n) + 4 (dist) + 3*8 (sites) + 4 (distinct) = 60 bytes; set the
	// first packed rank to 7 (0b111 > 5).
	raw[60] |= 0b111
	if _, err := ReadPermIndex(bytes.NewReader(raw), db); err == nil {
		t.Error("out-of-range rank should error")
	}
}

func TestReadPermIndexRejectsBadTableID(t *testing.T) {
	// A per-point table index pointing past the table must be rejected.
	db, rng := testDB(114, 40, 2, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:4], Footrule)
	distinct := idx.DistinctPermutations()
	if distinct < 2 || distinct&(distinct-1) == 0 {
		// Need a non-power-of-two table so an out-of-range ID is encodable
		// in ⌈lg distinct⌉ bits.
		t.Skipf("distinct = %d not suitable for the corruption", distinct)
	}
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// ids words start after 60 bytes of header/sites/distinct (k=4: 4*8
	// sites... recompute: 8+4+4+4+8+4+32+4 = 68) plus the table words.
	permBits := perm.NewPackedArray(4).BitsPerElement()
	tableWords := (distinct*permBits + 63) / 64
	idsOff := 68 + 8*tableWords
	// Force the first id's bits all-ones: with a non-power-of-two table
	// size, the all-ones pattern of width ⌈lg distinct⌉ is ≥ distinct.
	width := int(tableIDBits(distinct))
	raw[idsOff] |= byte(1<<width - 1)
	if _, err := ReadPermIndex(bytes.NewReader(raw), db); err == nil {
		t.Error("out-of-range table index should error")
	}
}
