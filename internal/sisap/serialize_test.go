package sisap

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/metric"
)

func TestPermIndexSerializationRoundTrip(t *testing.T) {
	for _, k := range []int{1, 3, 8, 12} {
		db, rng := testDB(110, 300, 3, metric.L2{})
		idx := NewPermIndex(db, rng.Perm(db.N())[:k], KendallTau)

		var buf bytes.Buffer
		n, err := idx.WriteTo(&buf)
		if err != nil {
			t.Fatalf("k=%d: write: %v", k, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("k=%d: reported %d bytes, wrote %d", k, n, buf.Len())
		}

		got, err := ReadPermIndex(&buf, db)
		if err != nil {
			t.Fatalf("k=%d: read: %v", k, err)
		}
		if got.K() != idx.K() || got.dist != idx.dist {
			t.Fatalf("k=%d: header mismatch", k)
		}
		if got.DistinctPermutations() != idx.DistinctPermutations() {
			t.Errorf("k=%d: distinct %d != %d", k, got.DistinctPermutations(), idx.DistinctPermutations())
		}
		for i := range idx.invPerms {
			if !got.invPerms[i].Equal(idx.invPerms[i]) {
				t.Fatalf("k=%d: permutation %d differs after round trip", k, i)
			}
		}
		// Behavioural equivalence: identical scan orders.
		q := dataset.UniformVectors(rng, 1, 3)[0]
		a, _ := idx.ScanOrder(q)
		b, _ := got.ScanOrder(q)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("k=%d: scan order diverges at %d", k, i)
			}
		}
	}
}

func TestPermIndexSerializationCompactness(t *testing.T) {
	// The file must be close to n·⌈lg k!⌉ bits plus a small header —
	// the paper's storage figure on disk, not just on paper.
	db, rng := testDB(111, 10_000, 2, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:8], Footrule)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	payload := 10_000 * 16 / 8 // n × ⌈lg 8!⌉ bits = 16 bits/point
	if buf.Len() > payload+256 {
		t.Errorf("file is %d bytes; payload bound %d + header", buf.Len(), payload)
	}
}

func TestReadPermIndexRejectsCorruption(t *testing.T) {
	db, rng := testDB(112, 50, 2, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:4], Footrule)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte("NOTANIDX"), raw[8:]...)
	if _, err := ReadPermIndex(bytes.NewReader(bad), db); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
	// Truncated.
	if _, err := ReadPermIndex(bytes.NewReader(raw[:len(raw)/2]), db); err == nil {
		t.Error("truncated file should error")
	}
	// Wrong database size.
	other := NewDB(metric.L2{}, dataset.UniformVectors(rand.New(rand.NewSource(1)), 10, 2))
	if _, err := ReadPermIndex(bytes.NewReader(raw), other); err == nil {
		t.Error("database size mismatch should error")
	}
	// Corrupt version.
	vbad := append([]byte(nil), raw...)
	vbad[8] = 99
	if _, err := ReadPermIndex(bytes.NewReader(vbad), db); err == nil {
		t.Error("bad version should error")
	}
}

func TestReadPermIndexRejectsBadRank(t *testing.T) {
	// Hand-craft a file whose packed rank exceeds k!−1.
	db, rng := testDB(113, 4, 2, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(4)[:3], Footrule) // k=3: 3 bits/perm, ranks 0..5
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The perms words start after 8+4+4+8+4 + 3*8 = 52 bytes; set the
	// first packed rank to 7 (0b111 > 5).
	raw[52] |= 0b111
	if _, err := ReadPermIndex(bytes.NewReader(raw), db); err == nil {
		t.Error("out-of-range rank should error")
	}
}
