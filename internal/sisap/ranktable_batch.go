package sisap

// Batch-native variants of the rank-table distance kernels. The scalar
// kernels in ranktable.go stream the whole distinct×k rank matrix once per
// query; at serving batch sizes that re-streams the same rows B times, and
// the memory traffic — not the integer arithmetic — dominates the query
// path. The kernels here push the batch boundary into the table walk:
//
//   - Cache tiling. The row stream is cut into tiles sized so one tile's
//     ranks (tile × k × 1-or-2 bytes) fit comfortably in L1
//     (batchTileBytes). Every query of the block is evaluated against the
//     tile before the walk advances, so each tile is fetched from memory
//     once per block instead of once per query.
//   - Query-block register blocking. Within a tile, the footrule and rho
//     kernels process four queries per pass over a row: one load of the
//     stored rank feeds four accumulators, quartering the per-query
//     load/decode overhead of the inner loop (the GEMM register-blocking
//     trick, at integer-kernel scale). A remainder loop covers blocks that
//     are not a multiple of four.
//   - Kendall relabels each tile once per query (seq[i] = qfwd[tile[i]], a
//     flat pass over the hot tile) and then inversion-counts the relabelled
//     rows; the O(k²) pair scan is unchanged, so the tile fetch is the only
//     traffic that amortises — which is the right trade, because for
//     Kendall the pair scan, not the fetch, dominates.
//   - SWAR query lanes (footrule, uint8 tables, k ≤ 128). The batch
//     dimension itself becomes the vector width: eight queries' ranks for
//     one site pack into one machine word, and the byte-parallel
//     absolute-difference below evaluates one stored rank against all eight
//     at once — roughly two bit-ops per query×site where the scalar kernel
//     pays a load, subtract, branchy abs, and add each. This is the win a
//     single query fundamentally cannot have: with one query there are no
//     lanes to fill.
//
// Every kernel computes exactly the integer keys its scalar twin computes —
// the SWAR lanes produce the same Σ|qinv−rank| integers — so batch answers
// are byte-identical to the per-query path, tie-breaks included.

// batchTileBytes is the rank-data budget of one batch tile. 32 KiB keeps a
// tile resident in any contemporary L1d alongside the query block's rank
// vectors and key-matrix write cursors.
const batchTileBytes = 32 << 10

// batchTileRows returns the row-tile height of the batch kernels: as many
// rows as fit the tile budget, at least one, at most the whole table.
func (t *rankTable) batchTileRows() int {
	elem := 1
	if t.k > 256 {
		elem = 2
	}
	rows := batchTileBytes / (t.k * elem)
	if rows < 1 {
		rows = 1
	}
	if rows > t.rows && t.rows > 0 {
		rows = t.rows
	}
	return rows
}

// distanceKeysBatch is the batch form of distanceKeys: it fills outs[q][r]
// with the permutation distance between query q and table row r, for every
// query of the block, and maxKeys[q] with query q's maximum key. qinvs and
// qfwds hold each query's inverse (site → rank) and forward (rank → site)
// vectors; seq is the Kendall tile-relabel buffer (batchTileRows()·k long).
// The kernel — distance × rank width — is selected once per block.
func (t *rankTable) distanceKeysBatch(dist PermDistance, qinvs, qfwds [][]int32, seq []int32, outs [][]int64, maxKeys []int64) {
	for i := range maxKeys {
		maxKeys[i] = 0
	}
	if len(outs) == 0 || t.rows == 0 {
		return
	}
	tile := t.batchTileRows()
	switch {
	case dist == Footrule && !t.wide():
		footruleKeysBatch8(t.k, tile, qinvs, t.r8.data, outs, maxKeys)
	case dist == Footrule:
		footruleKeysBatch(t.k, tile, qinvs, t.r16.data, outs, maxKeys)
	case dist == KendallTau && !t.wide():
		kendallKeysBatch(t.k, tile, qfwds, t.r8.data, seq, outs, maxKeys)
	case dist == KendallTau:
		kendallKeysBatch(t.k, tile, qfwds, t.r16.data, seq, outs, maxKeys)
	case dist == SpearmanRho && !t.wide():
		rhoSqKeysBatch(t.k, tile, qinvs, t.r8.data, outs, maxKeys)
	case dist == SpearmanRho:
		rhoSqKeysBatch(t.k, tile, qinvs, t.r16.data, outs, maxKeys)
	default:
		panic("sisap: unknown permutation distance")
	}
}

// swarGroup is the SWAR query-lane width: eight byte lanes per uint64.
const swarGroup = 8

// SWAR byte-lane constants.
const (
	swarH  uint64 = 0x8080808080808080 // byte-lane high bits
	swarNH uint64 = 0x7f7f7f7f7f7f7f7f // ^swarH: byte-lane low sevens
	swarL1 uint64 = 0x0101010101010101 // byte-lane ones
	swarLo uint64 = 0x00ff00ff00ff00ff // even byte lanes, for 16-bit widening
)

// footruleKeysBatch8 is the uint8-table footrule entry point: eight queries
// run per machine word through the byte-parallel kernel below; the remainder
// (and any k outside [2,128], where ranks no longer fit seven bits) runs the
// generic blocked kernel over the same tiles.
//
// Lane algebra, per byte, with a = query rank, b = stored rank, both ≤ 127:
//
//	t  = a + (128 − b)            // in [1,255]: no carries between lanes
//	ge = 0xff where t ≥ 128       // i.e. a ≥ b: the high bit of t
//	|a−b| = (t − 128)  on ge lanes  = t XOR 0x80
//	      = (128 − t)  on lt lanes  = (t XOR 0x7f) + 1  (t ≤ 127 there)
//
// Lane sums accumulate in byte lanes and widen to 16-bit lanes every
// flushEvery sites (a single flush at row end for k ≤ 22, since the footrule
// row total ⌊k²/2⌋ still fits a byte there).
func footruleKeysBatch8(k, tileRows int, qinvs [][]int32, rows []uint8, outs [][]int64, maxKeys []int64) {
	if k < 2 || k > 128 {
		footruleKeysBatch(k, tileRows, qinvs, rows, outs, maxKeys)
		return
	}
	nq := len(qinvs)
	groups := nq / 8
	// Pack the query block column-major, eight queries per word: byte lane l
	// of qpk[g*k+s] holds query 8g+l's rank of site s.
	qpk := make([]uint64, groups*k)
	for g := 0; g < groups; g++ {
		for l := 0; l < 8; l++ {
			qi := qinvs[g*8+l][:k]
			w := qpk[g*k : g*k+k : g*k+k]
			sh := 8 * l
			for s, rank := range qi {
				w[s] |= uint64(uint8(rank)) << sh
			}
		}
	}
	flushEvery := 255 / (k - 1)
	nRows := len(outs[0])
	for base := 0; base < nRows; base += tileRows {
		end := base + tileRows
		if end > nRows {
			end = nRows
		}
		for g := 0; g < groups; g++ {
			qg := qpk[g*k : g*k+k : g*k+k]
			o0, o1, o2, o3 := outs[g*8], outs[g*8+1], outs[g*8+2], outs[g*8+3]
			o4, o5, o6, o7 := outs[g*8+4], outs[g*8+5], outs[g*8+6], outs[g*8+7]
			mk := maxKeys[g*8 : g*8+8 : g*8+8]
			for r := base; r < end; r++ {
				row := rows[r*k : r*k+k : r*k+k]
				var accB, lo, hi uint64
				left := flushEvery
				for s, rank := range row {
					b := uint64(rank) * swarL1
					t := qg[s] + (swarH - b)
					m := t & swarH
					ge := (m - m>>7) | m
					lt := ^ge
					accB += ((t ^ swarH) & ge) | (((t ^ swarNH) & lt) + (lt & swarL1))
					left--
					if left == 0 {
						lo += accB & swarLo
						hi += (accB >> 8) & swarLo
						accB = 0
						left = flushEvery
					}
				}
				lo += accB & swarLo
				hi += (accB >> 8) & swarLo
				s0, s1 := int64(lo&0xffff), int64(hi&0xffff)
				s2, s3 := int64((lo>>16)&0xffff), int64((hi>>16)&0xffff)
				s4, s5 := int64((lo>>32)&0xffff), int64((hi>>32)&0xffff)
				s6, s7 := int64(lo>>48), int64(hi>>48)
				o0[r], o1[r], o2[r], o3[r] = s0, s1, s2, s3
				o4[r], o5[r], o6[r], o7[r] = s4, s5, s6, s7
				if s0 > mk[0] {
					mk[0] = s0
				}
				if s1 > mk[1] {
					mk[1] = s1
				}
				if s2 > mk[2] {
					mk[2] = s2
				}
				if s3 > mk[3] {
					mk[3] = s3
				}
				if s4 > mk[4] {
					mk[4] = s4
				}
				if s5 > mk[5] {
					mk[5] = s5
				}
				if s6 > mk[6] {
					mk[6] = s6
				}
				if s7 > mk[7] {
					mk[7] = s7
				}
			}
		}
		// Remainder queries run the plain scalar loop over the same tile.
		for q := groups * 8; q < nq; q++ {
			qi := qinvs[q][:k]
			o := outs[q]
			m := maxKeys[q]
			for r := base; r < end; r++ {
				row := rows[r*k : r*k+k : r*k+k]
				var sum int64
				for s, rank := range row {
					d := int64(qi[s]) - int64(rank)
					if d < 0 {
						d = -d
					}
					sum += d
				}
				o[r] = sum
				if sum > m {
					m = sum
				}
			}
			maxKeys[q] = m
		}
	}
}

// footruleKeysBatch is the tiled, query-blocked footrule kernel:
// outs[q][r] = Σ_s |qinvs[q][s] − row_r[s]|.
func footruleKeysBatch[T uint8 | uint16](k, tileRows int, qinvs [][]int32, rows []T, outs [][]int64, maxKeys []int64) {
	nRows := len(outs[0])
	for base := 0; base < nRows; base += tileRows {
		end := base + tileRows
		if end > nRows {
			end = nRows
		}
		q := 0
		for ; q+4 <= len(qinvs); q += 4 {
			q0, q1, q2, q3 := qinvs[q][:k], qinvs[q+1][:k], qinvs[q+2][:k], qinvs[q+3][:k]
			o0, o1, o2, o3 := outs[q], outs[q+1], outs[q+2], outs[q+3]
			m0, m1, m2, m3 := maxKeys[q], maxKeys[q+1], maxKeys[q+2], maxKeys[q+3]
			for r := base; r < end; r++ {
				row := rows[r*k : r*k+k : r*k+k]
				var s0, s1, s2, s3 int64
				for s, rank := range row {
					v := int64(rank)
					d0 := int64(q0[s]) - v
					if d0 < 0 {
						d0 = -d0
					}
					s0 += d0
					d1 := int64(q1[s]) - v
					if d1 < 0 {
						d1 = -d1
					}
					s1 += d1
					d2 := int64(q2[s]) - v
					if d2 < 0 {
						d2 = -d2
					}
					s2 += d2
					d3 := int64(q3[s]) - v
					if d3 < 0 {
						d3 = -d3
					}
					s3 += d3
				}
				o0[r], o1[r], o2[r], o3[r] = s0, s1, s2, s3
				if s0 > m0 {
					m0 = s0
				}
				if s1 > m1 {
					m1 = s1
				}
				if s2 > m2 {
					m2 = s2
				}
				if s3 > m3 {
					m3 = s3
				}
			}
			maxKeys[q], maxKeys[q+1], maxKeys[q+2], maxKeys[q+3] = m0, m1, m2, m3
		}
		for ; q < len(qinvs); q++ {
			qi := qinvs[q][:k]
			o := outs[q]
			m := maxKeys[q]
			for r := base; r < end; r++ {
				row := rows[r*k : r*k+k : r*k+k]
				var sum int64
				for s, rank := range row {
					d := int64(qi[s]) - int64(rank)
					if d < 0 {
						d = -d
					}
					sum += d
				}
				o[r] = sum
				if sum > m {
					m = sum
				}
			}
			maxKeys[q] = m
		}
	}
}

// rhoSqKeysBatch is the tiled, query-blocked Spearman rho kernel:
// outs[q][r] = Σ_s (qinvs[q][s] − row_r[s])².
func rhoSqKeysBatch[T uint8 | uint16](k, tileRows int, qinvs [][]int32, rows []T, outs [][]int64, maxKeys []int64) {
	nRows := len(outs[0])
	for base := 0; base < nRows; base += tileRows {
		end := base + tileRows
		if end > nRows {
			end = nRows
		}
		q := 0
		for ; q+4 <= len(qinvs); q += 4 {
			q0, q1, q2, q3 := qinvs[q][:k], qinvs[q+1][:k], qinvs[q+2][:k], qinvs[q+3][:k]
			o0, o1, o2, o3 := outs[q], outs[q+1], outs[q+2], outs[q+3]
			m0, m1, m2, m3 := maxKeys[q], maxKeys[q+1], maxKeys[q+2], maxKeys[q+3]
			for r := base; r < end; r++ {
				row := rows[r*k : r*k+k : r*k+k]
				var s0, s1, s2, s3 int64
				for s, rank := range row {
					v := int64(rank)
					d0 := int64(q0[s]) - v
					s0 += d0 * d0
					d1 := int64(q1[s]) - v
					s1 += d1 * d1
					d2 := int64(q2[s]) - v
					s2 += d2 * d2
					d3 := int64(q3[s]) - v
					s3 += d3 * d3
				}
				o0[r], o1[r], o2[r], o3[r] = s0, s1, s2, s3
				if s0 > m0 {
					m0 = s0
				}
				if s1 > m1 {
					m1 = s1
				}
				if s2 > m2 {
					m2 = s2
				}
				if s3 > m3 {
					m3 = s3
				}
			}
			maxKeys[q], maxKeys[q+1], maxKeys[q+2], maxKeys[q+3] = m0, m1, m2, m3
		}
		for ; q < len(qinvs); q++ {
			qi := qinvs[q][:k]
			o := outs[q]
			m := maxKeys[q]
			for r := base; r < end; r++ {
				row := rows[r*k : r*k+k : r*k+k]
				var sum int64
				for s, rank := range row {
					d := int64(qi[s]) - int64(rank)
					sum += d * d
				}
				o[r] = sum
				if sum > m {
					m = sum
				}
			}
			maxKeys[q] = m
		}
	}
}

// kendallKeysBatch is the tiled Kendall kernel: each query relabels the
// whole tile once (a flat pass keeping the tile hot) and inversion-counts
// the relabelled rows, exactly as kendallKeys does row by row. seq must be
// at least tileRows·k long.
func kendallKeysBatch[T uint8 | uint16](k, tileRows int, qfwds [][]int32, rows []T, seq []int32, outs [][]int64, maxKeys []int64) {
	nRows := len(outs[0])
	for base := 0; base < nRows; base += tileRows {
		end := base + tileRows
		if end > nRows {
			end = nRows
		}
		n := end - base
		tile := rows[base*k : end*k : end*k]
		for q := range qfwds {
			qf := qfwds[q][:k]
			sq := seq[: n*k : n*k]
			for i, rank := range tile {
				sq[i] = qf[rank]
			}
			o := outs[q]
			m := maxKeys[q]
			for r := 0; r < n; r++ {
				rowSeq := sq[r*k : r*k+k : r*k+k]
				var inv int64
				for i := 1; i < k; i++ {
					v := rowSeq[i]
					for j := 0; j < i; j++ {
						if rowSeq[j] > v {
							inv++
						}
					}
				}
				o[base+r] = inv
				if inv > m {
					m = inv
				}
			}
			maxKeys[q] = m
		}
	}
}
