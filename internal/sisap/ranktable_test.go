package sisap

import (
	"math/rand"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/perm"
)

func TestRankTableRoundTrip(t *testing.T) {
	// Rows appended from forward permutations must come back as their
	// inverses, for both rank widths.
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{1, 7, 256, 300} {
		tab := newRankTable(k)
		perms := make([]perm.Permutation, 5)
		for i := range perms {
			perms[i] = perm.Permutation(rng.Perm(k))
			if got := tab.appendInverseOf(perms[i]); got != i {
				t.Fatalf("k=%d: row id %d, want %d", k, got, i)
			}
		}
		for i, p := range perms {
			if !tab.invAt(i).Equal(p.Inverse()) {
				t.Fatalf("k=%d: row %d is not the inverse of its permutation", k, i)
			}
		}
		other := newRankTable(k)
		other.appendRowFrom(tab, 3)
		if !other.invAt(0).Equal(perms[3].Inverse()) {
			t.Fatalf("k=%d: appendRowFrom copied the wrong row", k)
		}
	}
}

func TestDistanceKernelsMatchPermPackage(t *testing.T) {
	// The width-specialised kernels must agree exactly with the perm
	// package's definitions on the same inverse vectors.
	rng := rand.New(rand.NewSource(6))
	for _, k := range []int{1, 2, 9, 300} {
		tab := newRankTable(k)
		const rows = 12
		invs := make([]perm.Permutation, rows)
		for r := range invs {
			p := perm.Permutation(rng.Perm(k))
			tab.appendInverseOf(p)
			invs[r] = p.Inverse()
		}
		qfwdPerm := perm.Permutation(rng.Perm(k))
		qinvPerm := qfwdPerm.Inverse()
		qinv := make([]int32, k)
		qfwd := make([]int32, k)
		for s, rank := range qinvPerm {
			qinv[s] = int32(rank)
		}
		for rank, site := range qfwdPerm {
			qfwd[rank] = int32(site)
		}
		seq := make([]int32, k)
		out := make([]int64, rows)
		for _, dist := range allPermDistances {
			maxKey := tab.distanceKeys(dist, qinv, qfwd, seq, out)
			var top int64
			for r, got := range out {
				var want int64
				switch dist {
				case Footrule:
					want = int64(perm.SpearmanFootrule(qinvPerm, invs[r]))
				case KendallTau:
					want = int64(perm.KendallTau(qinvPerm, invs[r]))
				case SpearmanRho:
					want = int64(perm.SpearmanRhoSq(qinvPerm, invs[r]))
				}
				if got != want {
					t.Fatalf("k=%d %s row %d: kernel %d, perm package %d", k, dist, r, got, want)
				}
				if got > top {
					top = got
				}
			}
			if maxKey != top {
				t.Fatalf("k=%d %s: reported maxKey %d, actual %d", k, dist, maxKey, top)
			}
		}
	}
}

func TestCountingArgsortMatchesArgsort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		maxKey := int64(rng.Intn(50)) // dense keys: plenty of ties
		keys := make([]int64, n)
		floats := make([]float64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(int(maxKey) + 1))
			floats[i] = float64(keys[i])
		}
		want := argsort(floats)
		var counts []int32
		full := make([]int, n)
		counts = countingArgsortInto(keys, maxKey, counts, full)
		assertSameOrder(t, "full", full, want)
		limit := rng.Intn(n + 1)
		partial := make([]int, limit)
		countingArgsortInto(keys, maxKey, counts, partial)
		assertSameOrder(t, "partial", partial, want[:limit])
	}
}

func TestCountingArgsortSparseFallback(t *testing.T) {
	// Keys far beyond the bucket limit take the comparison-sort path; the
	// ordering contract is identical.
	rng := rand.New(rand.NewSource(8))
	n := 100
	keys := make([]int64, n)
	floats := make([]float64, n)
	var maxKey int64
	for i := range keys {
		keys[i] = int64(rng.Intn(1 << 30))
		floats[i] = float64(keys[i])
		if keys[i] > maxKey {
			maxKey = keys[i]
		}
	}
	if maxKey <= countingBucketLimit(n) {
		t.Fatal("test premise broken: keys fit the bucket limit")
	}
	want := argsort(floats)
	full := make([]int, n)
	countingArgsortInto(keys, maxKey, nil, full)
	assertSameOrder(t, "sparse full", full, want)
	partial := make([]int, 17)
	countingArgsortInto(keys, maxKey, nil, partial)
	assertSameOrder(t, "sparse partial", partial, want[:17])
}

func TestFootruleRanksMatchesPermPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(20)
		a := perm.Permutation(rng.Perm(k))
		b := perm.Permutation(rng.Perm(k))
		if got, want := footruleRanks(a, b), perm.SpearmanFootrule(a, b); got != want {
			t.Fatalf("footruleRanks = %d, want %d", got, want)
		}
	}
}

func TestWideKScanOrderMatchesReference(t *testing.T) {
	// k > 256 exercises the uint16 rank rows (and, for rho², the sparse-key
	// fallback). The in-memory index has no k cap; only serialization does.
	rng := rand.New(rand.NewSource(10))
	db := NewDB(metric.L2{}, dataset.UniformVectors(rng, 350, 4))
	for _, dist := range allPermDistances {
		idx := NewPermIndex(db, rng.Perm(db.N())[:300], dist)
		for qi := 0; qi < 3; qi++ {
			q := dataset.UniformVectors(rng, 1, 4)[0]
			got, _ := idx.ScanOrder(q)
			assertSameOrder(t, dist.String(), got, idx.referenceScanOrder(q))
		}
	}
}
