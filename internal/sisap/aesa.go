package sisap

import (
	"math"

	"distperm/internal/metric"
)

// AESA (Approximating and Eliminating Search Algorithm, Vidal 1986) stores
// the complete n×n pairwise-distance matrix. At query time it alternates
// approximation (pick the live candidate with the smallest accumulated
// lower bound, measure its true distance) with elimination (use the
// triangle inequality |d(q,p) − d(p,x)| ≤ d(q,x) to discard candidates).
// Search cost is famously near-constant in distance evaluations, at the
// price of Θ(n²) precomputation and storage — the trade-off the paper's
// §1 explains makes pure AESA impractical, motivating LAESA and distance
// permutations.
type AESA struct {
	db     *DB
	matrix [][]float64 // matrix[i][j] = d(points[i], points[j])
}

// NewAESA builds the full distance matrix: n(n−1)/2 metric evaluations.
func NewAESA(db *DB) *AESA {
	n := db.N()
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := db.Metric.Distance(db.Points[i], db.Points[j])
			m[i][j] = d
			m[j][i] = d
		}
	}
	return &AESA{db: db, matrix: m}
}

// Name implements Index.
func (a *AESA) Name() string { return "aesa" }

// IndexBits implements Index: n² float64 entries (the symmetric half could
// halve this; the classical description stores the full matrix).
func (a *AESA) IndexBits() int64 {
	n := int64(a.db.N())
	return n * n * 64
}

// KNN implements Index.
func (a *AESA) KNN(q metric.Point, k int) ([]Result, Stats) {
	checkK(k, a.db.N())
	h := newKNNHeap(k)
	stats := a.search(q, func(id int, d float64) float64 {
		h.push(Result{ID: id, Distance: d})
		return h.bound()
	}, math.Inf(1))
	return h.results(), stats
}

// Range implements Index.
func (a *AESA) Range(q metric.Point, r float64) ([]Result, Stats) {
	var out []Result
	stats := a.search(q, func(id int, d float64) float64 {
		if d <= r {
			out = append(out, Result{ID: id, Distance: d})
		}
		return r
	}, r)
	sortResults(out)
	return out, stats
}

// search runs the approximate-and-eliminate loop. visit is called with each
// measured point and returns the current pruning radius: candidates whose
// lower bound exceeds it are eliminated. radius0 is the initial pruning
// radius.
func (a *AESA) search(q metric.Point, visit func(id int, d float64) float64, radius0 float64) Stats {
	n := a.db.N()
	lower := make([]float64, n) // accumulated lower bound on d(q, x)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	radius := radius0
	evals := 0
	for remaining := n; remaining > 0; {
		// Approximation step: live candidate with the smallest lower
		// bound (the "most promising" pivot).
		best, bestLB := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if alive[i] && lower[i] < bestLB {
				best, bestLB = i, lower[i]
			}
		}
		if best < 0 {
			break
		}
		alive[best] = false
		remaining--
		if bestLB > radius {
			// Even the most promising candidate is excluded; all
			// remaining candidates are too.
			break
		}
		d := a.db.Metric.Distance(q, a.db.Points[best])
		evals++
		radius = visit(best, d)
		// Elimination step: tighten lower bounds through the new pivot.
		row := a.matrix[best]
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			lb := math.Abs(d - row[i])
			if lb > lower[i] {
				lower[i] = lb
			}
			if lower[i] > radius {
				alive[i] = false
				remaining--
			}
		}
	}
	return Stats{DistanceEvals: evals}
}
