package sisap

import (
	"math/rand"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/metric"
)

// testDB builds a small uniform vector database.
func testDB(seed int64, n, d int, m metric.Metric) (*DB, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	return NewDB(m, dataset.UniformVectors(rng, n, d)), rng
}

// stringDB builds a small dictionary database under edit distance.
func stringDB(n int) (*DB, *rand.Rand) {
	ds := dataset.Dictionary(dataset.Languages()[1], n)
	return NewDB(ds.Metric, ds.Points), rand.New(rand.NewSource(99))
}

func sameResults(t *testing.T, name string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: result %d = ID %d (d=%v), want ID %d (d=%v)",
				name, i, got[i].ID, got[i].Distance, want[i].ID, want[i].Distance)
		}
	}
}

// buildAll constructs every index type over db.
func buildAll(db *DB, rng *rand.Rand) []Index {
	k := 8
	if db.N() < 16 {
		k = db.N() / 2
		if k < 1 {
			k = 1
		}
	}
	pivots := rng.Perm(db.N())[:k]
	return []Index{
		NewLinearScan(db),
		NewAESA(db),
		NewLAESA(db, pivots),
		NewPermIndex(db, pivots, Footrule),
		NewVPTree(db, rng),
		NewGHTree(db, rng),
	}
}

func TestAllIndexesAgreeOnKNNVectors(t *testing.T) {
	for _, m := range []metric.Metric{metric.L1{}, metric.L2{}, metric.LInf{}} {
		db, rng := testDB(21, 300, 3, m)
		indexes := buildAll(db, rng)
		linear := indexes[0]
		queries := dataset.UniformVectors(rng, 15, 3)
		for _, k := range []int{1, 3, 10} {
			for qi, q := range queries {
				want, _ := linear.KNN(q, k)
				for _, idx := range indexes[1:] {
					got, _ := idx.KNN(q, k)
					if len(got) != k {
						t.Fatalf("%s/%s q%d k%d: %d results", m.Name(), idx.Name(), qi, k, len(got))
					}
					sameResults(t, m.Name()+"/"+idx.Name(), got, want)
				}
			}
		}
	}
}

func TestAllIndexesAgreeOnKNNStrings(t *testing.T) {
	db, rng := stringDB(200)
	indexes := buildAll(db, rng)
	linear := indexes[0]
	queries := []metric.Point{
		metric.String("hello"), metric.String("thedistance"),
		metric.String("a"), metric.String("permutation"),
	}
	for _, q := range queries {
		want, _ := linear.KNN(q, 5)
		for _, idx := range indexes[1:] {
			got, _ := idx.KNN(q, 5)
			sameResults(t, idx.Name(), got, want)
		}
	}
}

func TestAllIndexesAgreeOnRange(t *testing.T) {
	db, rng := testDB(22, 250, 2, metric.L2{})
	indexes := buildAll(db, rng)
	linear := indexes[0]
	queries := dataset.UniformVectors(rng, 10, 2)
	for _, r := range []float64{0.05, 0.2, 0.7} {
		for _, q := range queries {
			want, _ := linear.Range(q, r)
			for _, idx := range indexes[1:] {
				got, _ := idx.Range(q, r)
				sameResults(t, idx.Name(), got, want)
			}
		}
	}
}

func TestQueryCostsBounded(t *testing.T) {
	db, rng := testDB(23, 400, 4, metric.L2{})
	indexes := buildAll(db, rng)
	queries := dataset.UniformVectors(rng, 10, 4)
	for _, idx := range indexes {
		for _, q := range queries {
			_, stats := idx.KNN(q, 3)
			limit := db.N()
			switch idx.(type) {
			case *LAESA:
				limit += 8 // the pivots are measured on top
			case *PermIndex:
				limit += 8 // the sites are measured on top
			}
			if stats.DistanceEvals > limit {
				t.Errorf("%s: %d evals > limit %d", idx.Name(), stats.DistanceEvals, limit)
			}
			if stats.DistanceEvals <= 0 {
				t.Errorf("%s: non-positive eval count", idx.Name())
			}
		}
	}
}

func TestAESABeatsLinearScan(t *testing.T) {
	db, rng := testDB(24, 500, 3, metric.L2{})
	aesa := NewAESA(db)
	queries := dataset.UniformVectors(rng, 20, 3)
	total := 0
	for _, q := range queries {
		_, stats := aesa.KNN(q, 1)
		total += stats.DistanceEvals
	}
	avg := float64(total) / 20
	// The whole point of AESA: near-constant evaluations, far below n.
	if avg > float64(db.N())/5 {
		t.Errorf("AESA averaged %.1f evals on n=%d; expected far fewer", avg, db.N())
	}
}

func TestLAESABeatsLinearScan(t *testing.T) {
	db, rng := testDB(25, 500, 3, metric.L2{})
	laesa := NewLAESAMaxSpread(db, 8)
	queries := dataset.UniformVectors(rng, 20, 3)
	total := 0
	for _, q := range queries {
		_, stats := laesa.KNN(q, 1)
		total += stats.DistanceEvals
	}
	avg := float64(total) / 20
	if avg > float64(db.N())/2 {
		t.Errorf("LAESA averaged %.1f evals on n=%d; expected far fewer", avg, db.N())
	}
}

func TestMaxSpreadPivotsAreDistinct(t *testing.T) {
	db, _ := testDB(26, 100, 2, metric.L2{})
	l := NewLAESAMaxSpread(db, 10)
	seen := map[int]bool{}
	for _, p := range l.Pivots() {
		if seen[p] {
			t.Fatalf("duplicate pivot %d", p)
		}
		seen[p] = true
	}
}

func TestKNNTieBreaksById(t *testing.T) {
	// Duplicate points force distance ties; results must order by ID.
	pts := []metric.Point{
		metric.Vector{0.5}, metric.Vector{0.5}, metric.Vector{0.5},
		metric.Vector{0.9},
	}
	db := NewDB(metric.L2{}, pts)
	rng := rand.New(rand.NewSource(1))
	for _, idx := range buildAll(db, rng) {
		got, _ := idx.KNN(metric.Vector{0.5}, 3)
		for i, want := range []int{0, 1, 2} {
			if got[i].ID != want {
				t.Errorf("%s: tie order %v", idx.Name(), got)
				break
			}
		}
	}
}

func TestKNNPanicsOnBadK(t *testing.T) {
	db, _ := testDB(27, 10, 2, metric.L2{})
	for _, k := range []int{0, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d should panic", k)
				}
			}()
			NewLinearScan(db).KNN(metric.Vector{0, 0}, k)
		}()
	}
}

func TestIndexBitsOrdering(t *testing.T) {
	db, rng := testDB(28, 500, 4, metric.L2{})
	pivots := rng.Perm(db.N())[:8]
	aesa := NewAESA(db)
	laesa := NewLAESA(db, pivots)
	pi := NewPermIndex(db, pivots, Footrule)
	if !(pi.IndexBits() < laesa.IndexBits() && laesa.IndexBits() < aesa.IndexBits()) {
		t.Errorf("storage ordering violated: perm=%d laesa=%d aesa=%d",
			pi.IndexBits(), laesa.IndexBits(), aesa.IndexBits())
	}
	if NewLinearScan(db).IndexBits() != 0 {
		t.Error("linear scan should store nothing")
	}
}

func TestEmptyDBPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty database should panic")
		}
	}()
	NewDB(metric.L2{}, nil)
}

func TestHeapBehaviour(t *testing.T) {
	h := newKNNHeap(3)
	for _, r := range []Result{
		{ID: 5, Distance: 0.9}, {ID: 1, Distance: 0.3}, {ID: 2, Distance: 0.7},
		{ID: 3, Distance: 0.1}, {ID: 4, Distance: 0.5},
	} {
		h.push(r)
	}
	rs := h.results()
	want := []int{3, 1, 4}
	for i := range want {
		if rs[i].ID != want[i] {
			t.Fatalf("heap results %v", rs)
		}
	}
	if h.bound() != 0.5 {
		t.Errorf("bound = %v, want 0.5", h.bound())
	}
}

func TestVPAndGHTreesOnClusteredData(t *testing.T) {
	// Trees must stay exact on pathological (heavily duplicated,
	// clustered) data.
	rng := rand.New(rand.NewSource(29))
	pts := dataset.ClusteredVectors(rng, 300, 3, 4, 0.001)
	pts = append(pts, pts[0], pts[1], pts[2]) // exact duplicates
	db := NewDB(metric.L2{}, pts)
	linear := NewLinearScan(db)
	vp := NewVPTree(db, rng)
	gh := NewGHTree(db, rng)
	for i := 0; i < 10; i++ {
		q := dataset.UniformVectors(rng, 1, 3)[0]
		want, _ := linear.KNN(q, 4)
		gotVP, _ := vp.KNN(q, 4)
		gotGH, _ := gh.KNN(q, 4)
		sameResults(t, "vptree", gotVP, want)
		sameResults(t, "ghtree", gotGH, want)
	}
}

func TestRangeRadiusZero(t *testing.T) {
	db, rng := testDB(30, 50, 2, metric.L2{})
	q := db.Points[7] // exact database point
	for _, idx := range buildAll(db, rng) {
		got, _ := idx.Range(q, 0)
		if len(got) == 0 || got[0].ID != 7 {
			t.Errorf("%s: range 0 at a database point should return it, got %v", idx.Name(), got)
		}
	}
}
