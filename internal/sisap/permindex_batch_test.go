package sisap

import (
	"fmt"
	"math/rand"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/metric"
)

// The tests in this file pin the batch query path to the scalar one: every
// batch method must be byte-identical — orderings, tie-breaks, budget
// cutoffs, and Stats — to issuing its queries one at a time (and the scalar
// path is itself pinned to the naive reference by permindex_equiv_test.go).
// Like the scalar oracles, every comparison runs over both storage backends
// (permBackends): the tiled/SWAR kernels must behave identically over the
// heap-built table and its frozen-container mmap view.

var batchSizes = []int{1, 3, 17, 256}

// interface conformance: the distance-permutation index is the family's
// batch-native member.
var _ BatchIndex = (*PermIndex)(nil)

func batchQueries(rng *rand.Rand, n, d int) []metric.Point {
	return dataset.UniformVectors(rng, n, d)
}

func TestScanOrderBatchMatchesScalar(t *testing.T) {
	for _, dist := range allPermDistances {
		rng := rand.New(rand.NewSource(501))
		db := NewDB(metric.L2{}, dataset.UniformVectors(rng, 600, 3))
		idx := NewPermIndex(db, rng.Perm(db.N())[:8], dist)
		for _, be := range permBackends(t, idx, db) {
			for _, batch := range batchSizes {
				qs := batchQueries(rng, batch, 3)
				got, stats := be.idx.ScanOrderBatch(qs)
				if len(got) != batch || len(stats) != batch {
					t.Fatalf("%s %s batch %d: %d orders, %d stats", dist, be.name, batch, len(got), len(stats))
				}
				for i, q := range qs {
					want, wantStats := be.idx.ScanOrder(q)
					if stats[i] != wantStats {
						t.Fatalf("%s %s batch %d query %d: stats %+v != %+v", dist, be.name, batch, i, stats[i], wantStats)
					}
					assertSameOrder(t, fmt.Sprintf("%s %s batch %d query %d", dist, be.name, batch, i), got[i], want)
				}
			}
		}
	}
}

func TestScanOrderBatchMatchesScalarClustered(t *testing.T) {
	// The distinct ≪ n regime, where tiles cover the whole table in a few
	// rows and the scatter dominates — tie traffic between identical
	// permutations must still break identically.
	for _, dist := range allPermDistances {
		rng := rand.New(rand.NewSource(503))
		db := NewDB(metric.L2{}, dataset.ClusteredVectors(rng, 2_000, 4, 12, 0.02))
		idx := NewPermIndex(db, rng.Perm(db.N())[:6], dist)
		for _, be := range permBackends(t, idx, db) {
			qs := batchQueries(rng, 17, 4)
			got, _ := be.idx.ScanOrderBatch(qs)
			for i, q := range qs {
				want, _ := be.idx.ScanOrder(q)
				assertSameOrder(t, fmt.Sprintf("%s %s clustered query %d", dist, be.name, i), got[i], want)
			}
		}
	}
}

func TestScanOrderBatchWideRanks(t *testing.T) {
	// k > 256 exercises the uint16 rank rows and, for rho, the sparse-key
	// comparison-sort fallback inside the per-query ordering.
	for _, dist := range allPermDistances {
		rng := rand.New(rand.NewSource(505))
		db := NewDB(metric.L2{}, dataset.UniformVectors(rng, 400, 4))
		idx := NewPermIndex(db, rng.Perm(db.N())[:300], dist)
		if idx.table.r16.data == nil {
			t.Fatalf("%s: k=300 should use uint16 rank rows", dist)
		}
		for _, be := range permBackends(t, idx, db) {
			qs := batchQueries(rng, 5, 4)
			got, _ := be.idx.ScanOrderBatch(qs)
			for i, q := range qs {
				want, _ := be.idx.ScanOrder(q)
				assertSameOrder(t, fmt.Sprintf("%s %s wide query %d", dist, be.name, i), got[i], want)
			}
		}
	}
}

func TestScanOrderBatchBeyondChunk(t *testing.T) {
	// Batches wider than the kernel-pass chunk must split into passes with
	// no seam: force a tiny chunk by hand and compare against the scalar
	// path across the pass boundary.
	rng := rand.New(rand.NewSource(507))
	db := NewDB(metric.L2{}, dataset.UniformVectors(rng, 300, 3))
	idx := NewPermIndex(db, rng.Perm(db.N())[:7], Footrule)
	b := idx.batchBuffers()
	if b.chunk != batchChunkMax {
		t.Fatalf("small table should get the max chunk, got %d", b.chunk)
	}
	b.chunk = 5 // forces ceil(13/5) = 3 kernel passes below
	qs := batchQueries(rng, 13, 3)
	got, _ := idx.ScanOrderBatch(qs)
	for i, q := range qs {
		want, _ := idx.ScanOrder(q)
		assertSameOrder(t, fmt.Sprintf("chunked query %d", i), got[i], want)
	}
}

func TestKNNBudgetBatchMatchesScalar(t *testing.T) {
	for _, dist := range allPermDistances {
		rng := rand.New(rand.NewSource(509))
		db := NewDB(metric.L2{}, dataset.ClusteredVectors(rng, 1_000, 3, 8, 0.05))
		idx := NewPermIndex(db, rng.Perm(db.N())[:7], dist)
		for _, be := range permBackends(t, idx, db) {
			for _, batch := range batchSizes {
				qs := batchQueries(rng, batch, 3)
				for _, budget := range []int{1, 37, 1_000, 5_000} {
					got, stats := be.idx.KNNBudgetBatch(qs, 3, budget)
					for i, q := range qs {
						want, wantStats := be.idx.KNNBudget(q, 3, budget)
						if stats[i] != wantStats {
							t.Fatalf("%s %s batch %d budget %d query %d: stats %+v != %+v",
								dist, be.name, batch, budget, i, stats[i], wantStats)
						}
						sameResults(t, fmt.Sprintf("%s %s batch %d budget %d query %d", dist, be.name, batch, budget, i), got[i], want)
					}
				}
			}
		}
	}
}

func TestKNNBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(511))
	db := NewDB(metric.L2{}, dataset.UniformVectors(rng, 500, 4))
	idx := NewPermIndex(db, rng.Perm(db.N())[:9], Footrule)
	for _, be := range permBackends(t, idx, db) {
		qs := batchQueries(rng, 17, 4)
		got, stats := be.idx.KNNBatch(qs, 5)
		for i, q := range qs {
			want, wantStats := be.idx.KNN(q, 5)
			if stats[i] != wantStats {
				t.Fatalf("%s query %d: stats %+v != %+v", be.name, i, stats[i], wantStats)
			}
			sameResults(t, fmt.Sprintf("%s query %d", be.name, i), got[i], want)
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(513))
	db := NewDB(metric.L2{}, dataset.UniformVectors(rng, 100, 3))
	idx := NewPermIndex(db, rng.Perm(db.N())[:5], Footrule)
	if orders, stats := idx.ScanOrderBatch(nil); len(orders) != 0 || len(stats) != 0 {
		t.Errorf("empty ScanOrderBatch: %d orders, %d stats", len(orders), len(stats))
	}
	if results, stats := idx.KNNBatch([]metric.Point{}, 2); len(results) != 0 || len(stats) != 0 {
		t.Errorf("empty KNNBatch: %d results, %d stats", len(results), len(stats))
	}
}

func TestBatchReplicaIndependence(t *testing.T) {
	// Replicas share the immutable table but own their batch scratch:
	// interleaving batches on original and replica must equal isolated runs.
	rng := rand.New(rand.NewSource(515))
	db := NewDB(metric.L2{}, dataset.UniformVectors(rng, 400, 3))
	idx := NewPermIndex(db, rng.Perm(db.N())[:8], SpearmanRho)
	rep := idx.Replica().(*PermIndex)
	qs1 := batchQueries(rng, 9, 3)
	qs2 := batchQueries(rng, 9, 3)
	got1, _ := idx.ScanOrderBatch(qs1)
	got2, _ := rep.ScanOrderBatch(qs2)
	for i := range qs1 {
		want1 := idx.referenceScanOrder(qs1[i])
		want2 := idx.referenceScanOrder(qs2[i])
		assertSameOrder(t, fmt.Sprintf("original %d", i), got1[i], want1)
		assertSameOrder(t, fmt.Sprintf("replica %d", i), got2[i], want2)
	}
}
