// Package sisap reimplements the relevant slice of the SISAP metric-space
// library that the paper's experiments were built on: a database of points
// under an expensive metric, and a family of index structures that answer
// k-nearest-neighbour and range queries while minimising the number of
// metric evaluations.
//
// Implemented indexes:
//
//   - LinearScan: the naive baseline (n distance evaluations per query).
//   - AESA: full pairwise-distance matrix, lower-bound elimination
//     (Vidal 1986) — the Θ(n²) storage extreme the paper motivates against.
//   - LAESA: distances to k pivots only (Micó/Oncina/Vidal 1994) —
//     Θ(kn·64) bits.
//   - PermIndex: the distperm index (Chávez/Figueroa/Navarro 2005) —
//     stores only each point's distance permutation, candidate order by
//     permutation distance (iAESA-style), Θ(n·lg(#perms)) bits. This is
//     the structure whose storage the paper's counting results bound.
//   - VPTree, GHTree: classical metric trees (Uhlmann 1991, Yianilos 1993)
//     for exact search, cited by the paper as the tree-structured
//     alternatives.
//
// Every query reports the number of metric evaluations via Stats, the cost
// model the whole literature (and the paper's §1) uses.
package sisap

import (
	"fmt"
	"math"
	"sort"

	"distperm/internal/metric"
)

// DB is an immutable database of points under a metric.
type DB struct {
	Metric metric.Metric
	Points []metric.Point
}

// NewDB returns a database. The point slice is retained, not copied.
func NewDB(m metric.Metric, points []metric.Point) *DB {
	if len(points) == 0 {
		panic("sisap: empty database")
	}
	return &DB{Metric: m, Points: points}
}

// N returns the database size.
func (db *DB) N() int { return len(db.Points) }

// Result is one answer to a proximity query: a database point index and its
// distance to the query.
type Result struct {
	ID       int
	Distance float64
}

// Stats reports the cost of a query in the metric-evaluation cost model.
type Stats struct {
	// DistanceEvals counts metric evaluations between the query and
	// database points (site/pivot distances included).
	DistanceEvals int
}

// Index answers proximity queries over a DB.
type Index interface {
	// Name identifies the index type.
	Name() string
	// KNN returns the k nearest database points to q in increasing
	// distance order (ties broken by lower ID), plus query cost.
	KNN(q metric.Point, k int) ([]Result, Stats)
	// Range returns all database points within radius r of q (inclusive),
	// in increasing distance order, plus query cost.
	Range(q metric.Point, r float64) ([]Result, Stats)
	// IndexBits estimates the index's storage cost in bits, excluding the
	// points themselves — the quantity the paper's analysis is about.
	IndexBits() int64
}

// BatchIndex is the batch-native query capability: an index whose kernels
// evaluate a whole block of queries per pass over the index data, instead
// of re-walking it once per query. Answers must be identical — results,
// tie-breaks, and per-query Stats — to calling KNN once per query; the
// batch boundary buys memory-traffic amortisation, never a different
// answer. Engines detect this interface on their worker replicas and hand
// down contiguous sub-batches instead of single-query jobs. A BatchIndex
// whose scalar path is non-reentrant (Replicable) has a non-reentrant batch
// path too: one goroutine per replica, as usual.
type BatchIndex interface {
	Index
	// KNNBatch answers one kNN query per element of qs, with per-query
	// results and cost — identical to KNN(qs[i], k) for every i.
	KNNBatch(qs []metric.Point, k int) ([][]Result, []Stats)
}

// ApproxStats extends Stats with the probe accounting of an approximate
// query: how much of the bucket directory was consulted and how much of
// the database was actually measured.
type ApproxStats struct {
	Stats
	// ProbedBuckets and TotalBuckets report the probe set against the
	// directory size; Candidates counts the points measured (the candidate
	// fraction is Candidates over the database size).
	ProbedBuckets int
	TotalBuckets  int
	Candidates    int
	// Exact reports that the probe set covered every bucket, so the exact
	// scan answered and the results are byte-identical to KNN.
	Exact bool
}

// ApproxIndex is the approximate-search capability: an index that can
// trade bounded recall for a smaller candidate set, steered by nprobe
// (how many inverted-file buckets to probe; ≤ 0 selects the index's
// default, ≥ the directory size degrades to the exact scan with
// byte-identical answers). Recall must be monotone non-decreasing in
// nprobe. Engines detect this interface on their worker replicas, exactly
// as they detect BatchIndex.
type ApproxIndex interface {
	Index
	// KNNApprox answers one approximate kNN query.
	KNNApprox(q metric.Point, k, nprobe int) ([]Result, ApproxStats)
	// KNNApproxBatch answers one approximate kNN query per element of qs,
	// identical per query to KNNApprox.
	KNNApproxBatch(qs []metric.Point, k, nprobe int) ([][]Result, []ApproxStats)
	// ApproxBuckets returns the inverted-file directory size nprobe is
	// measured against.
	ApproxBuckets() int
}

// Replicable is implemented by indexes whose query path mutates per-index
// scratch state and which can therefore not be shared across goroutines.
// Replica returns an independent view over the same immutable built
// structure, cheap to create (no metric evaluations) and safe to query from
// one goroutine at a time. Indexes that do not implement Replicable have
// read-only query paths and may be shared freely.
type Replicable interface {
	Index
	// Replica returns an independent query handle over the same data.
	Replica() Index
}

// QueryReplica returns a handle on x suitable for a dedicated worker
// goroutine: x.Replica() when x is Replicable, x itself otherwise.
func QueryReplica(x Index) Index {
	if r, ok := x.(Replicable); ok {
		return r.Replica()
	}
	return x
}

// sortResults orders results by (distance, id).
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Distance != rs[j].Distance {
			return rs[i].Distance < rs[j].Distance
		}
		return rs[i].ID < rs[j].ID
	})
}

// knnHeap maintains the current k best candidates as a bounded max-heap
// keyed by (distance, id), so the worst retained candidate is inspectable in
// O(1).
type knnHeap struct {
	k  int
	rs []Result
}

func newKNNHeap(k int) *knnHeap { return &knnHeap{k: k} }

func (h *knnHeap) worse(a, b Result) bool { // a sorts after b
	if a.Distance != b.Distance {
		return a.Distance > b.Distance
	}
	return a.ID > b.ID
}

// bound returns the distance beyond which a candidate cannot enter the heap,
// or +Inf while the heap is not yet full.
func (h *knnHeap) bound() float64 {
	if len(h.rs) < h.k {
		return math.Inf(1)
	}
	return h.rs[0].Distance
}

func (h *knnHeap) push(r Result) {
	if len(h.rs) == h.k {
		if !h.worse(h.rs[0], r) {
			return
		}
		h.rs[0] = r
		h.siftDown(0)
		return
	}
	h.rs = append(h.rs, r)
	// Sift up: in a max-heap the worse entry belongs above.
	i := len(h.rs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.worse(h.rs[i], h.rs[parent]) {
			h.rs[i], h.rs[parent] = h.rs[parent], h.rs[i]
			i = parent
		} else {
			break
		}
	}
}

func (h *knnHeap) siftDown(i int) {
	n := len(h.rs)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.worse(h.rs[l], h.rs[largest]) {
			largest = l
		}
		if r < n && h.worse(h.rs[r], h.rs[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.rs[i], h.rs[largest] = h.rs[largest], h.rs[i]
		i = largest
	}
}

func (h *knnHeap) results() []Result {
	out := append([]Result(nil), h.rs...)
	sortResults(out)
	return out
}

func checkK(k, n int) {
	if k < 1 || k > n {
		panic(fmt.Sprintf("sisap: k=%d out of range 1..%d", k, n))
	}
}
