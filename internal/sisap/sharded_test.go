package sisap

import (
	"math/rand"
	"strings"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/metric"
)

func shardedTestDB(seed int64, n, d int) (*DB, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	return NewDB(metric.L2{}, dataset.UniformVectors(rng, n, d)), rng
}

// buildLinearShards is the simplest member builder for structural tests.
func buildLinearShards(_ int, sdb *DB) (Index, error) { return NewLinearScan(sdb), nil }

// roundRobinParts deals IDs 0..n-1 across s shards in increasing order.
func roundRobinParts(n, s int) [][]int {
	parts := make([][]int, s)
	for id := 0; id < n; id++ {
		parts[id%s] = append(parts[id%s], id)
	}
	return parts
}

// TestShardedIndexMatchesLinearScan: scatter-gather over linear shards must
// reproduce the unpartitioned LinearScan exactly, with per-shard distance
// evaluations summing to the global cost (n per query for linear shards).
func TestShardedIndexMatchesLinearScan(t *testing.T) {
	const n = 120
	db, rng := shardedTestDB(50, n, 3)
	x, err := NewShardedIndex(db, roundRobinParts(n, 5), buildLinearShards)
	if err != nil {
		t.Fatal(err)
	}
	truth := NewLinearScan(db)
	for _, q := range dataset.UniformVectors(rng, 25, 3) {
		got, st := x.KNN(q, 4)
		want, wst := truth.KNN(q, 4)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("kNN result %d = %+v, want %+v", j, got[j], want[j])
			}
		}
		if st.DistanceEvals != wst.DistanceEvals {
			t.Fatalf("sharded evals %d != unpartitioned %d: per-shard counters must sum to the global cost",
				st.DistanceEvals, wst.DistanceEvals)
		}
		gr, _ := x.Range(q, 0.4)
		wr, _ := truth.Range(q, 0.4)
		if len(gr) != len(wr) {
			t.Fatalf("range sizes differ: %d vs %d", len(gr), len(wr))
		}
		for j := range wr {
			if gr[j] != wr[j] {
				t.Fatalf("range result %d differs", j)
			}
		}
	}
}

// TestShardedIndexTieBreaking plants exact distance ties straddling shards:
// the merge must break them by global ID, exactly as one index would.
func TestShardedIndexTieBreaking(t *testing.T) {
	// Four coincident point pairs; round-robin over 2 shards separates the
	// members of each pair.
	pts := []metric.Point{
		metric.Vector{0, 0}, metric.Vector{0, 0},
		metric.Vector{1, 0}, metric.Vector{1, 0},
		metric.Vector{0, 1}, metric.Vector{0, 1},
		metric.Vector{1, 1}, metric.Vector{1, 1},
	}
	db := NewDB(metric.L2{}, pts)
	x, err := NewShardedIndex(db, roundRobinParts(len(pts), 2), buildLinearShards)
	if err != nil {
		t.Fatal(err)
	}
	truth := NewLinearScan(db)
	q := metric.Vector{0.1, 0.1}
	for k := 1; k <= len(pts); k++ {
		got, _ := x.KNN(q, k)
		want, _ := truth.KNN(q, k)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("k=%d result %d = %+v, want %+v (tie broken wrong)", k, j, got[j], want[j])
			}
		}
	}
}

func TestNewShardedIndexValidation(t *testing.T) {
	db, _ := shardedTestDB(51, 10, 2)
	cases := []struct {
		name  string
		parts [][]int
		want  string
	}{
		{"no shards", [][]int{}, "at least one"},
		{"empty shard", [][]int{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {}}, "empty"},
		{"out of range", [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 10}}, "out of range"},
		{"negative", [][]int{{-1, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}, "out of range"},
		{"duplicate", [][]int{{0, 1, 2, 3, 4}, {4, 5, 6, 7, 8}}, "two shards"},
		{"not increasing", [][]int{{0, 2, 1, 3, 4}, {5, 6, 7, 8, 9}}, "increasing"},
		{"incomplete", [][]int{{0, 1, 2}, {5, 6, 7}}, "covers"},
	}
	for _, c := range cases {
		_, err := NewShardedIndex(db, c.parts, buildLinearShards)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	if _, err := NewShardedIndex(nil, [][]int{{0}}, buildLinearShards); err == nil {
		t.Error("nil database should error")
	}
	// Builder failures surface with the shard number.
	_, err := NewShardedIndex(db, roundRobinParts(10, 2), func(s int, sdb *DB) (Index, error) {
		return nil, nil
	})
	if err == nil || !strings.Contains(err.Error(), "nil index") {
		t.Errorf("nil member index: %v", err)
	}
}

// TestShardedIndexReplica: Replica must clone replicas of replicable member
// indexes (distperm) while sharing the built structures, so sharded serving
// through one Engine is race-free.
func TestShardedIndexReplica(t *testing.T) {
	const n = 90
	db, rng := shardedTestDB(52, n, 3)
	x, err := NewShardedIndex(db, roundRobinParts(n, 3), func(s int, sdb *DB) (Index, error) {
		ids := make([]int, 4)
		for i := range ids {
			ids[i] = (i * 7) % sdb.N()
		}
		return NewPermIndex(sdb, ids, Footrule), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := QueryReplica(x).(*ShardedIndex)
	if !ok {
		t.Fatalf("replica is %T", QueryReplica(x))
	}
	if r == x {
		t.Fatal("replica should be a distinct handle")
	}
	for s := 0; s < x.NumShards(); s++ {
		if r.Shard(s) == x.Shard(s) {
			t.Errorf("shard %d replica shares the mutable member index", s)
		}
	}
	q := dataset.UniformVectors(rng, 1, 3)[0]
	a, _ := x.KNN(q, 3)
	b, _ := r.KNN(q, 3)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("replica answer %d differs", j)
		}
	}
}
