package sisap

import (
	"math/rand"

	"distperm/internal/metric"
)

// GHTree is a generalized-hyperplane tree (Uhlmann 1991): each node holds
// two pivot points; the left subtree contains points closer to the first
// pivot, the right subtree the rest. The bisector of the pivots (the
// paper's Definition 1) is exactly the decision boundary, making the GH-tree
// the index whose geometry the paper's bisector analysis speaks to most
// directly: a GH-tree path is a prefix of sign choices against bisectors,
// and a full distance permutation determines every such choice among the
// sites.
type GHTree struct {
	db   *DB
	root *ghNode
	size int64
}

type ghNode struct {
	a, b        int // pivot database indexes; b < 0 at leaves with one point
	left, right *ghNode
}

// NewGHTree builds a GH-tree over db with random pivot pairs.
func NewGHTree(db *DB, rng *rand.Rand) *GHTree {
	ids := make([]int, db.N())
	for i := range ids {
		ids[i] = i
	}
	t := &GHTree{db: db}
	t.root = t.build(ids, rng)
	return t
}

func (t *GHTree) build(ids []int, rng *rand.Rand) *ghNode {
	if len(ids) == 0 {
		return nil
	}
	t.size++
	if len(ids) == 1 {
		return &ghNode{a: ids[0], b: -1}
	}
	// Choose two distinct random pivots and swap them to the front.
	i := rng.Intn(len(ids))
	ids[0], ids[i] = ids[i], ids[0]
	j := 1 + rng.Intn(len(ids)-1)
	ids[1], ids[j] = ids[j], ids[1]
	n := &ghNode{a: ids[0], b: ids[1]}
	pa, pb := t.db.Points[n.a], t.db.Points[n.b]
	var left, right []int
	for _, id := range ids[2:] {
		da := t.db.Metric.Distance(pa, t.db.Points[id])
		db := t.db.Metric.Distance(pb, t.db.Points[id])
		if da <= db { // ties to the first pivot, like the paper's tie-break
			left = append(left, id)
		} else {
			right = append(right, id)
		}
	}
	n.left = t.build(left, rng)
	n.right = t.build(right, rng)
	return n
}

// Name implements Index.
func (t *GHTree) Name() string { return "ghtree" }

// IndexBits implements Index: two pivot references and two pointers per
// node at 64 bits each.
func (t *GHTree) IndexBits() int64 { return t.size * 4 * 64 }

// KNN implements Index.
func (t *GHTree) KNN(q metric.Point, k int) ([]Result, Stats) {
	checkK(k, t.db.N())
	h := newKNNHeap(k)
	evals := 0
	var walk func(n *ghNode)
	walk = func(n *ghNode) {
		if n == nil {
			return
		}
		da := t.db.Metric.Distance(q, t.db.Points[n.a])
		evals++
		h.push(Result{ID: n.a, Distance: da})
		if n.b < 0 {
			return
		}
		db := t.db.Metric.Distance(q, t.db.Points[n.b])
		evals++
		h.push(Result{ID: n.b, Distance: db})
		// Generalized-hyperplane pruning: a point on the far side of the
		// a|b bisector is at distance at least (db−da)/2 from the query
		// side. Explore the nearer side first.
		if da <= db {
			walk(n.left)
			if (db-da)/2 <= h.bound() {
				walk(n.right)
			}
		} else {
			walk(n.right)
			if (da-db)/2 <= h.bound() {
				walk(n.left)
			}
		}
	}
	walk(t.root)
	return h.results(), Stats{DistanceEvals: evals}
}

// Range implements Index.
func (t *GHTree) Range(q metric.Point, r float64) ([]Result, Stats) {
	var out []Result
	evals := 0
	var walk func(n *ghNode)
	walk = func(n *ghNode) {
		if n == nil {
			return
		}
		da := t.db.Metric.Distance(q, t.db.Points[n.a])
		evals++
		if da <= r {
			out = append(out, Result{ID: n.a, Distance: da})
		}
		if n.b < 0 {
			return
		}
		db := t.db.Metric.Distance(q, t.db.Points[n.b])
		evals++
		if db <= r {
			out = append(out, Result{ID: n.b, Distance: db})
		}
		if (da-db)/2 <= r {
			walk(n.left)
		}
		if (db-da)/2 <= r {
			walk(n.right)
		}
	}
	walk(t.root)
	sortResults(out)
	return out, Stats{DistanceEvals: evals}
}
