package sisap

import (
	"bytes"
	"math/rand"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/metric"
)

// buildMutableFixture assembles a MutableIndex by hand: nb indexed base
// points, nd delta points, every third live point tombstoned, and gids with
// a gap (as a post-rebuild snapshot would have).
func buildMutableFixture(t *testing.T, seed int64, nb, nd int) (*MutableIndex, *DB) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := dataset.UniformVectors(rng, nb+nd, 3)
	full := NewDB(metric.L2{}, pts)
	gids := make([]int, nb+nd)
	for i := range gids {
		gids[i] = 2 * i // gaps: gids need not be contiguous
	}
	var tombs []int
	for i := 0; i < nb+nd; i += 3 {
		tombs = append(tombs, gids[i])
	}
	base := NewLinearScan(NewDB(metric.L2{}, pts[:nb]))
	x, err := NewMutableIndex(full, nb, base, gids, tombs, 2*(nb+nd))
	if err != nil {
		t.Fatal(err)
	}
	return x, full
}

// mutableReference builds the ground truth for a MutableIndex: a LinearScan
// over the live points in gid order, plus the local→gid map to translate
// its answers.
func mutableReference(x *MutableIndex) (*LinearScan, []int) {
	var pts []metric.Point
	var gids []int
	for local, g := range x.GIDs() {
		if x.Tombstoned(g) {
			continue
		}
		pts = append(pts, x.DB().Points[local])
		gids = append(gids, g)
	}
	return NewLinearScan(NewDB(x.DB().Metric, pts)), gids
}

func sameAnswers(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d (%v vs %v)", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestMutableIndexMatchesRebuild is the snapshot-form correctness bar:
// kNN and range answers over base+delta with tombstones must equal a
// from-scratch linear scan over the logical point set.
func TestMutableIndexMatchesRebuild(t *testing.T) {
	x, _ := buildMutableFixture(t, 41, 120, 30)
	ref, refGids := mutableReference(x)
	rng := rand.New(rand.NewSource(42))
	queries := dataset.UniformVectors(rng, 40, 3)
	for qi, q := range queries {
		for _, k := range []int{1, 3, 10} {
			got, gst := x.KNN(q, k)
			want, _ := ref.KNN(q, k)
			for i := range want {
				want[i].ID = refGids[want[i].ID]
			}
			sameAnswers(t, "kNN", got, want)
			if gst.DistanceEvals < x.DeltaN() {
				t.Fatalf("query %d: %d evals cannot cover the %d-point delta", qi, gst.DistanceEvals, x.DeltaN())
			}
		}
		for _, r := range []float64{0, 0.2, 0.6} {
			got, _ := x.Range(q, r)
			want, _ := ref.Range(q, r)
			for i := range want {
				want[i].ID = refGids[want[i].ID]
			}
			sameAnswers(t, "range", got, want)
		}
	}
}

// TestMutableIndexReplica: replicas answer identically and satisfy
// Replicable (the engine's per-worker seam).
func TestMutableIndexReplica(t *testing.T) {
	x, _ := buildMutableFixture(t, 43, 80, 20)
	r, ok := any(x).(Replicable)
	if !ok {
		t.Fatal("MutableIndex should be Replicable")
	}
	rep := r.Replica().(*MutableIndex)
	q := dataset.UniformVectors(rand.New(rand.NewSource(44)), 1, 3)[0]
	got, _ := rep.KNN(q, 4)
	want, _ := x.KNN(q, 4)
	sameAnswers(t, "replica kNN", got, want)
}

// TestMutableCodecRoundTrip: the "mutable" container kind round-trips
// through WriteIndex/ReadIndex with identical answers, including the
// embedded base container.
func TestMutableCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	pts := dataset.UniformVectors(rng, 100, 3)
	full := NewDB(metric.L2{}, pts)
	gids := make([]int, 100)
	for i := range gids {
		gids[i] = i
	}
	base := NewPermIndex(NewDB(metric.L2{}, pts[:80]), rng.Perm(80)[:6], Footrule)
	x, err := NewMutableIndex(full, 80, base, gids, []int{3, 17, 85}, 100)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, x); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(bytes.NewReader(buf.Bytes()), full)
	if err != nil {
		t.Fatal(err)
	}
	y, ok := back.(*MutableIndex)
	if !ok {
		t.Fatalf("decoded %T", back)
	}
	if y.BaseN() != 80 || y.NextGID() != 100 || y.LiveN() != 97 || y.Base().Name() != "distperm" {
		t.Fatalf("decoded snapshot shape: baseN=%d nextGid=%d liveN=%d base=%s",
			y.BaseN(), y.NextGID(), y.LiveN(), y.Base().Name())
	}
	for _, q := range dataset.UniformVectors(rng, 20, 3) {
		got, _ := y.KNN(q, 5)
		want, _ := x.KNN(q, 5)
		sameAnswers(t, "round-trip kNN", got, want)
		gotR, _ := y.Range(q, 0.4)
		wantR, _ := x.Range(q, 0.4)
		sameAnswers(t, "round-trip range", gotR, wantR)
	}
}

// TestMutableIndexValidation: malformed snapshot parts are errors, not
// panics — the codec feeds this path from untrusted bytes.
func TestMutableIndexValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	pts := dataset.UniformVectors(rng, 10, 2)
	full := NewDB(metric.L2{}, pts)
	base := NewLinearScan(NewDB(metric.L2{}, pts[:8]))
	good := func() ([]int, []int) {
		gids := make([]int, 10)
		for i := range gids {
			gids[i] = i
		}
		return gids, nil
	}
	cases := []struct {
		name string
		mut  func(gids, tombs []int) (*DB, int, Index, []int, []int, int)
	}{
		{"nil base", func(g, tb []int) (*DB, int, Index, []int, []int, int) { return full, 8, nil, g, tb, 10 }},
		{"bad prefix", func(g, tb []int) (*DB, int, Index, []int, []int, int) { return full, 0, base, g, tb, 10 }},
		{"prefix too large", func(g, tb []int) (*DB, int, Index, []int, []int, int) { return full, 11, base, g, tb, 10 }},
		{"gid count", func(g, tb []int) (*DB, int, Index, []int, []int, int) { return full, 8, base, g[:9], tb, 10 }},
		{"gids not increasing", func(g, tb []int) (*DB, int, Index, []int, []int, int) {
			g[4] = g[3]
			return full, 8, base, g, tb, 10
		}},
		{"gid ≥ nextGid", func(g, tb []int) (*DB, int, Index, []int, []int, int) { return full, 8, base, g, tb, 9 }},
		{"unknown tombstone", func(g, tb []int) (*DB, int, Index, []int, []int, int) {
			return full, 8, base, g, []int{42}, 43
		}},
		{"tombstones not increasing", func(g, tb []int) (*DB, int, Index, []int, []int, int) {
			return full, 8, base, g, []int{5, 5}, 10
		}},
	}
	for _, tc := range cases {
		gids, tombs := good()
		if _, err := NewMutableIndex(tc.mut(gids, tombs)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	gids, tombs := good()
	if _, err := NewMutableIndex(full, 8, base, gids, tombs, 10); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

// TestMutableCodecCorruptPayload: truncated or inconsistent container bytes
// fail cleanly on decode.
func TestMutableCodecCorruptPayload(t *testing.T) {
	x, full := buildMutableFixture(t, 47, 40, 10)
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, x); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{len(whole) - 1, len(whole) / 2, 20} {
		if _, err := ReadIndex(bytes.NewReader(whole[:cut]), full); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
	// A database of the wrong size is refused before the payload is trusted.
	small := NewDB(full.Metric, full.Points[:full.N()-1])
	if _, err := ReadIndex(bytes.NewReader(whole), small); err == nil {
		t.Error("wrong database size should fail")
	}
}
