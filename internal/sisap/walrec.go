package sisap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"distperm/internal/metric"
)

// This file is the record codec of the write-ahead log (pkg/distperm's WAL):
// one mutation — an insert carrying its point, or a delete carrying only the
// global ID — framed as a length-prefixed, CRC-32C-checksummed record. The
// framing is what makes crash recovery decidable: a torn final record (the
// write the crash interrupted) fails its length or checksum test and replay
// stops cleanly at the last intact record, never inventing data from garbage
// bytes. The CRC table is the same Castagnoli polynomial the frozen
// container's sections use.
//
// Frame layout (little-endian):
//
//	length uint32   body length (1..maxWALBody)
//	crc    uint32   CRC-32C over the body
//	body   [length]byte
//
// Body layout:
//
//	op     uint8    1 insert, 2 delete
//	gid    uint64   the mutation's stable global ID
//	point  …        inserts only: wire point (below)
//
// Wire point layout (shared with the WAL checkpoint's embedded database):
//
//	kind   uint8    0 vector, 1 string
//	n      uint32   element count (vector) or byte length (string)
//	data   …        n × float64 | n bytes

// WALOp discriminates WAL record kinds.
type WALOp uint8

const (
	// WALInsert records an accepted insert: gid plus the point.
	WALInsert WALOp = 1
	// WALDelete records an accepted delete: the gid alone.
	WALDelete WALOp = 2
)

// maxWALBody bounds a record body so a corrupt length prefix cannot force a
// giant allocation: 64 MiB holds a vector of ~8M dimensions, far beyond any
// real point.
const maxWALBody = 64 << 20

// walFrameHeader is the fixed frame prefix: length + crc.
const walFrameHeader = 8

// walCRC is the Castagnoli table shared with the frozen container.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrWALTorn reports an incomplete or checksum-mismatched frame — the shape
// a crash mid-append leaves behind. Replay treats it as end-of-log when it
// appears at the tail; anywhere else it is corruption.
var ErrWALTorn = errors.New("sisap: torn wal record")

// WALRecord is one logged mutation.
type WALRecord struct {
	Op  WALOp
	GID int
	// Point accompanies inserts (deletes leave it nil).
	Point metric.Point
}

// AppendWirePoint appends the wire encoding of p to dst. Only the shapes
// the serving stack accepts travel: Vector and String.
func AppendWirePoint(dst []byte, p metric.Point) ([]byte, error) {
	switch v := p.(type) {
	case metric.Vector:
		dst = append(dst, 0)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
		for _, x := range v {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
		}
		return dst, nil
	case metric.String:
		dst = append(dst, 1)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
		return append(dst, v...), nil
	default:
		return nil, fmt.Errorf("sisap: cannot encode %T points", p)
	}
}

// DecodeWirePoint decodes one wire point from the front of data, returning
// the point and the bytes consumed.
func DecodeWirePoint(data []byte) (metric.Point, int, error) {
	if len(data) < 5 {
		return nil, 0, fmt.Errorf("sisap: wire point header truncated: %w", ErrWALTorn)
	}
	kind := data[0]
	n := binary.LittleEndian.Uint32(data[1:5])
	body := data[5:]
	switch kind {
	case 0:
		if n > maxWALBody/8 || uint64(len(body)) < 8*uint64(n) {
			return nil, 0, fmt.Errorf("sisap: wire vector of %d dims truncated: %w", n, ErrWALTorn)
		}
		v := make(metric.Vector, n)
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return v, 5 + 8*int(n), nil
	case 1:
		if n > maxWALBody || uint64(len(body)) < uint64(n) {
			return nil, 0, fmt.Errorf("sisap: wire string of %d bytes truncated: %w", n, ErrWALTorn)
		}
		return metric.String(body[:n]), 5 + int(n), nil
	default:
		return nil, 0, fmt.Errorf("sisap: unknown wire point kind %d", kind)
	}
}

// AppendWALRecord appends rec's frame to dst.
func AppendWALRecord(dst []byte, rec WALRecord) ([]byte, error) {
	if rec.GID < 0 {
		return nil, fmt.Errorf("sisap: wal record with negative gid %d", rec.GID)
	}
	body := make([]byte, 0, 64)
	body = append(body, byte(rec.Op))
	body = binary.LittleEndian.AppendUint64(body, uint64(rec.GID))
	switch rec.Op {
	case WALInsert:
		var err error
		if body, err = AppendWirePoint(body, rec.Point); err != nil {
			return nil, err
		}
	case WALDelete:
	default:
		return nil, fmt.Errorf("sisap: unknown wal op %d", rec.Op)
	}
	if len(body) > maxWALBody {
		return nil, fmt.Errorf("sisap: wal record body of %d bytes exceeds %d", len(body), maxWALBody)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, walCRC))
	return append(dst, body...), nil
}

// DecodeWALRecord decodes the frame at the front of data, returning the
// record and the frame bytes consumed. Incomplete frames, out-of-range
// lengths, and checksum mismatches all wrap ErrWALTorn — the caller decides
// whether the position makes that a tolerable torn tail or corruption. A
// frame that checksums clean but carries an undecodable body (unknown op,
// malformed point) is corruption outright and never wraps ErrWALTorn.
func DecodeWALRecord(data []byte) (WALRecord, int, error) {
	if len(data) < walFrameHeader {
		return WALRecord{}, 0, fmt.Errorf("sisap: wal frame header truncated: %w", ErrWALTorn)
	}
	length := binary.LittleEndian.Uint32(data)
	crc := binary.LittleEndian.Uint32(data[4:])
	if length == 0 || length > maxWALBody {
		return WALRecord{}, 0, fmt.Errorf("sisap: wal body length %d out of range: %w", length, ErrWALTorn)
	}
	if uint64(len(data)-walFrameHeader) < uint64(length) {
		return WALRecord{}, 0, fmt.Errorf("sisap: wal body truncated at %d of %d bytes: %w", len(data)-walFrameHeader, length, ErrWALTorn)
	}
	body := data[walFrameHeader : walFrameHeader+int(length)]
	if got := crc32.Checksum(body, walCRC); got != crc {
		return WALRecord{}, 0, fmt.Errorf("sisap: wal body checksum %#x, frame says %#x: %w", got, crc, ErrWALTorn)
	}
	// The body checksummed clean: from here every defect is corruption (or
	// an encoder from the future), not a torn write.
	if len(body) < 9 {
		return WALRecord{}, 0, fmt.Errorf("sisap: wal body of %d bytes cannot hold op+gid", len(body))
	}
	rec := WALRecord{Op: WALOp(body[0])}
	gid := binary.LittleEndian.Uint64(body[1:9])
	if gid > math.MaxInt64 {
		return WALRecord{}, 0, fmt.Errorf("sisap: wal gid %d overflows int", gid)
	}
	rec.GID = int(gid)
	rest := body[9:]
	switch rec.Op {
	case WALInsert:
		p, n, err := DecodeWirePoint(rest)
		if err != nil {
			return WALRecord{}, 0, fmt.Errorf("sisap: wal insert point: %v", err)
		}
		if n != len(rest) {
			return WALRecord{}, 0, fmt.Errorf("sisap: wal insert body has %d trailing bytes", len(rest)-n)
		}
		rec.Point = p
	case WALDelete:
		if len(rest) != 0 {
			return WALRecord{}, 0, fmt.Errorf("sisap: wal delete body has %d trailing bytes", len(rest))
		}
	default:
		return WALRecord{}, 0, fmt.Errorf("sisap: unknown wal op %d", rec.Op)
	}
	return rec, walFrameHeader + int(length), nil
}
