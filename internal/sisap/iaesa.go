package sisap

import (
	"math"

	"distperm/internal/metric"
)

// IAESA is improved AESA (Figueroa, Chávez, Navarro, Paredes 2006): the
// same full pairwise-distance matrix and triangle-inequality elimination as
// AESA, but the next candidate to measure is chosen by *distance
// permutation* rather than by smallest accumulated lower bound. Both the
// query and every live candidate rank the already-measured points by
// distance; the candidate whose ranking most resembles the query's (smallest
// Spearman footrule between the partial permutations) is measured next.
// This is the search-time use of distance permutations whose storage the
// paper's counting results bound, and the algorithm the paper cites as
// improving search speed over AESA.
type IAESA struct {
	db     *DB
	matrix [][]float64
}

// NewIAESA builds the index: the full distance matrix, n(n−1)/2 metric
// evaluations, same as AESA.
func NewIAESA(db *DB) *IAESA {
	a := NewAESA(db)
	return &IAESA{db: a.db, matrix: a.matrix}
}

// Name implements Index.
func (a *IAESA) Name() string { return "iaesa" }

// IndexBits implements Index: the same n² matrix as AESA.
func (a *IAESA) IndexBits() int64 {
	n := int64(a.db.N())
	return n * n * 64
}

// KNN implements Index.
func (a *IAESA) KNN(q metric.Point, k int) ([]Result, Stats) {
	checkK(k, a.db.N())
	h := newKNNHeap(k)
	stats := a.search(q, func(id int, d float64) float64 {
		h.push(Result{ID: id, Distance: d})
		return h.bound()
	}, math.Inf(1))
	return h.results(), stats
}

// Range implements Index.
func (a *IAESA) Range(q metric.Point, r float64) ([]Result, Stats) {
	var out []Result
	stats := a.search(q, func(id int, d float64) float64 {
		if d <= r {
			out = append(out, Result{ID: id, Distance: d})
		}
		return r
	}, r)
	sortResults(out)
	return out, stats
}

// search mirrors AESA's approximate-and-eliminate loop with
// permutation-based approximation. The permutation state is maintained
// incrementally: each candidate keeps the footrule between its ranking of
// the measured pivots and the query's, updated by insertion as each new
// pivot's distance becomes known.
func (a *IAESA) search(q metric.Point, visit func(id int, d float64) float64, radius0 float64) Stats {
	n := a.db.N()
	lower := make([]float64, n)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	// measured pivot ids in measurement order, with their query distances.
	var pivots []int
	var pivotQD []float64
	radius := radius0
	evals := 0

	// footrule(i) computes the Spearman footrule between the query's and
	// candidate i's rankings of the measured pivots. m = |pivots| stays
	// small in practice (AESA-family searches measure few points), so the
	// O(m log m) per-candidate cost per step is acceptable and keeps the
	// implementation transparently close to the published algorithm.
	queryRank := func() []int {
		return rankOrder(pivotQD)
	}
	candidateRank := func(i int) []int {
		ds := make([]float64, len(pivots))
		for pi, p := range pivots {
			ds[pi] = a.matrix[i][p]
		}
		return rankOrder(ds)
	}

	for remaining := n; remaining > 0; {
		// Approximation: first pivot is the candidate with index 0 by
		// convention; afterwards, the live candidate whose partial
		// distance permutation is closest to the query's.
		best := -1
		if len(pivots) == 0 {
			for i := 0; i < n; i++ {
				if alive[i] {
					best = i
					break
				}
			}
		} else {
			qr := queryRank()
			bs := math.MaxInt // footrule is integral; the integer kernel is
			// the same one the PermIndex table path runs per distinct row.
			for i := 0; i < n; i++ {
				if !alive[i] {
					continue
				}
				if f := footruleRanks(qr, candidateRank(i)); f < bs {
					best, bs = i, f
				}
			}
		}
		if best < 0 {
			break
		}
		alive[best] = false
		remaining--
		if lower[best] > radius {
			continue // eliminated candidate surfaced; skip, keep scanning
		}
		d := a.db.Metric.Distance(q, a.db.Points[best])
		evals++
		radius = visit(best, d)
		pivots = append(pivots, best)
		pivotQD = append(pivotQD, d)
		row := a.matrix[best]
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			lb := math.Abs(d - row[i])
			if lb > lower[i] {
				lower[i] = lb
			}
			if lower[i] > radius {
				alive[i] = false
				remaining--
			}
		}
	}
	return Stats{DistanceEvals: evals}
}

// rankOrder returns, for each index position, the rank of that entry when
// the values are sorted ascending (ties by index) — the inverse distance
// permutation of the value vector.
func rankOrder(vals []float64) []int {
	order := argsort(vals)
	ranks := make([]int, len(vals))
	for r, idx := range order {
		ranks[idx] = r
	}
	return ranks
}
