package sisap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// This file generalises the distance-permutation index's DPERMIDX format
// (serialize.go) into a versioned multi-index container: a common header
// naming the index kind, followed by a kind-specific payload supplied by a
// registered Codec. Every index in the family gains persistence through the
// same two entry points, WriteIndex and ReadIndex, and new index types join
// by calling RegisterCodec — the same extension seam the Build registry in
// pkg/distperm uses for construction.
//
// Container format (little-endian):
//
//	magic   [8]byte  "DPERMIDX"
//	version uint32   (2; version 1 is the legacy PermIndex-only format,
//	                  still accepted by ReadIndex for compatibility)
//	kindLen uint32   length of the kind name
//	kind    []byte   codec kind, e.g. "distperm", "vptree"
//	payload …        codec-defined
//
// As with the v1 format, the database points themselves are never
// serialised: the index file accompanies the data file, and ReadIndex
// reconstructs against the caller-supplied DB without re-running the metric
// evaluations that built the index.
const (
	codecMagic   = "DPERMIDX"
	codecVersion = 2
	maxKindLen   = 64
)

// Codec serialises and deserialises one index kind.
type Codec struct {
	// Kind is the registry key; it must equal the Name() of the indexes the
	// codec handles so WriteIndex can dispatch on the index itself.
	Kind string
	// Encode writes the index payload (no container header).
	Encode func(w io.Writer, x Index) error
	// Decode reads the payload back and reconstructs the index against db.
	Decode func(r io.Reader, db *DB) (Index, error)
}

var (
	codecsMu sync.RWMutex
	codecs   = map[string]Codec{}
)

// RegisterCodec adds a codec to the registry. It panics on a duplicate or
// incomplete registration — misregistration is a programming error.
func RegisterCodec(c Codec) {
	if c.Kind == "" || len(c.Kind) > maxKindLen || c.Encode == nil || c.Decode == nil {
		panic("sisap: RegisterCodec requires a kind (≤64 bytes), an Encode, and a Decode")
	}
	codecsMu.Lock()
	defer codecsMu.Unlock()
	if _, dup := codecs[c.Kind]; dup {
		panic(fmt.Sprintf("sisap: codec %q registered twice", c.Kind))
	}
	codecs[c.Kind] = c
}

// Codecs returns the registered kinds, sorted.
func Codecs() []string {
	codecsMu.RLock()
	defer codecsMu.RUnlock()
	kinds := make([]string, 0, len(codecs))
	for k := range codecs {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

func lookupCodec(kind string) (Codec, bool) {
	codecsMu.RLock()
	defer codecsMu.RUnlock()
	c, ok := codecs[kind]
	return c, ok
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteIndex serialises x in the v2 container format, dispatching to the
// codec registered under x.Name(). It returns the number of bytes written.
func WriteIndex(w io.Writer, x Index) (int64, error) {
	c, ok := lookupCodec(x.Name())
	if !ok {
		return 0, fmt.Errorf("sisap: no codec registered for index kind %q", x.Name())
	}
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	if _, err := io.WriteString(cw, codecMagic); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(codecVersion)); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(c.Kind))); err != nil {
		return cw.n, err
	}
	if _, err := io.WriteString(cw, c.Kind); err != nil {
		return cw.n, err
	}
	if err := c.Encode(cw, x); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// ReadIndex deserialises an index written by WriteIndex against db (which
// must be the same database the index was built on). Legacy version-1 files
// (PermIndex-only, written by WriteTo) are accepted transparently.
func ReadIndex(r io.Reader, db *DB) (Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("sisap: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("sisap: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("sisap: reading version: %w", err)
	}
	switch version {
	case permIndexVersion:
		return decodePermPayload(br, db)
	case codecVersion:
	default:
		return nil, fmt.Errorf("sisap: unsupported container version %d", version)
	}
	var kindLen uint32
	if err := binary.Read(br, binary.LittleEndian, &kindLen); err != nil {
		return nil, fmt.Errorf("sisap: reading kind length: %w", err)
	}
	if kindLen == 0 || kindLen > maxKindLen {
		return nil, fmt.Errorf("sisap: kind length %d out of range", kindLen)
	}
	kind := make([]byte, kindLen)
	if _, err := io.ReadFull(br, kind); err != nil {
		return nil, fmt.Errorf("sisap: reading kind: %w", err)
	}
	c, ok := lookupCodec(string(kind))
	if !ok {
		return nil, fmt.Errorf("sisap: no codec registered for index kind %q", kind)
	}
	return c.Decode(br, db)
}

func init() {
	RegisterCodec(Codec{Kind: "linear", Encode: encodeLinear, Decode: decodeLinear})
	RegisterCodec(Codec{Kind: "aesa", Encode: encodeMatrixIndex, Decode: decodeAESA})
	RegisterCodec(Codec{Kind: "iaesa", Encode: encodeMatrixIndex, Decode: decodeIAESA})
	RegisterCodec(Codec{Kind: "laesa", Encode: encodeLAESA, Decode: decodeLAESA})
	RegisterCodec(Codec{Kind: "distperm", Encode: encodeDistperm, Decode: decodeDistperm})
	RegisterCodec(Codec{Kind: "vptree", Encode: encodeVPTree, Decode: decodeVPTree})
	RegisterCodec(Codec{Kind: "ghtree", Encode: encodeGHTree, Decode: decodeGHTree})
}

// checkN reads the point count stored at the front of every payload and
// verifies it matches the database the caller supplied.
func checkN(r io.Reader, db *DB) error {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("sisap: reading point count: %w", err)
	}
	if int(n) != db.N() {
		return fmt.Errorf("sisap: index has %d points, database has %d", n, db.N())
	}
	return nil
}

// --- linear ---

func encodeLinear(w io.Writer, x Index) error {
	s, ok := x.(*LinearScan)
	if !ok {
		return fmt.Errorf("sisap: linear codec given %T", x)
	}
	return binary.Write(w, binary.LittleEndian, uint64(s.db.N()))
}

func decodeLinear(r io.Reader, db *DB) (Index, error) {
	if err := checkN(r, db); err != nil {
		return nil, err
	}
	return NewLinearScan(db), nil
}

// --- aesa / iaesa ---

// encodeMatrixIndex writes the strict upper triangle of the n×n distance
// matrix shared by AESA and IAESA: n(n−1)/2 float64s, halving the on-disk
// footprint relative to the in-memory representation.
func encodeMatrixIndex(w io.Writer, x Index) error {
	var matrix [][]float64
	switch idx := x.(type) {
	case *AESA:
		matrix = idx.matrix
	case *IAESA:
		matrix = idx.matrix
	default:
		return fmt.Errorf("sisap: matrix codec given %T", x)
	}
	n := len(matrix)
	if err := binary.Write(w, binary.LittleEndian, uint64(n)); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := binary.Write(w, binary.LittleEndian, matrix[i][i+1:]); err != nil {
			return err
		}
	}
	return nil
}

func decodeMatrix(r io.Reader, db *DB) ([][]float64, error) {
	if err := checkN(r, db); err != nil {
		return nil, err
	}
	n := db.N()
	matrix := make([][]float64, n)
	for i := range matrix {
		matrix[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		row := matrix[i][i+1:]
		if err := binary.Read(r, binary.LittleEndian, row); err != nil {
			return nil, fmt.Errorf("sisap: reading matrix row %d: %w", i, err)
		}
		for j := i + 1; j < n; j++ {
			d := matrix[i][j]
			if math.IsNaN(d) || d < 0 {
				return nil, fmt.Errorf("sisap: corrupt matrix entry (%d,%d) = %v", i, j, d)
			}
			matrix[j][i] = d
		}
	}
	return matrix, nil
}

func decodeAESA(r io.Reader, db *DB) (Index, error) {
	m, err := decodeMatrix(r, db)
	if err != nil {
		return nil, err
	}
	return &AESA{db: db, matrix: m}, nil
}

func decodeIAESA(r io.Reader, db *DB) (Index, error) {
	m, err := decodeMatrix(r, db)
	if err != nil {
		return nil, err
	}
	return &IAESA{db: db, matrix: m}, nil
}

// --- laesa ---

func encodeLAESA(w io.Writer, x Index) error {
	l, ok := x.(*LAESA)
	if !ok {
		return fmt.Errorf("sisap: laesa codec given %T", x)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(l.db.N())); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(l.pivots))); err != nil {
		return err
	}
	for _, id := range l.pivots {
		if err := binary.Write(w, binary.LittleEndian, uint64(id)); err != nil {
			return err
		}
	}
	for _, row := range l.table {
		if err := binary.Write(w, binary.LittleEndian, row); err != nil {
			return err
		}
	}
	return nil
}

func decodeLAESA(r io.Reader, db *DB) (Index, error) {
	if err := checkN(r, db); err != nil {
		return nil, err
	}
	var m uint32
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("sisap: reading pivot count: %w", err)
	}
	if m == 0 || int(m) > db.N() {
		return nil, fmt.Errorf("sisap: pivot count %d out of range 1..%d", m, db.N())
	}
	pivots := make([]int, m)
	for i := range pivots {
		var id uint64
		if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
			return nil, fmt.Errorf("sisap: reading pivot %d: %w", i, err)
		}
		if int(id) >= db.N() {
			return nil, fmt.Errorf("sisap: pivot ID %d out of range", id)
		}
		pivots[i] = int(id)
	}
	table := make([][]float64, m)
	for p := range table {
		row := make([]float64, db.N())
		if err := binary.Read(r, binary.LittleEndian, row); err != nil {
			return nil, fmt.Errorf("sisap: reading pivot table row %d: %w", p, err)
		}
		table[p] = row
	}
	return &LAESA{db: db, pivots: pivots, table: table}, nil
}

// --- distperm ---

func encodeDistperm(w io.Writer, x Index) error {
	p, ok := x.(*PermIndex)
	if !ok {
		return fmt.Errorf("sisap: distperm codec given %T", x)
	}
	_, err := p.encodePayload(w)
	return err
}

func decodeDistperm(r io.Reader, db *DB) (Index, error) {
	return decodePermPayload(r, db)
}

// --- vptree ---

// Tree payloads store a preorder walk. Each node is a flags byte (bit 0:
// inside/left child present, bit 1: outside/right child present) followed by
// the node fields; children follow recursively. Reconstruction therefore
// costs zero metric evaluations, unlike rebuilding the tree.

func encodeVPTree(w io.Writer, x Index) error {
	t, ok := x.(*VPTree)
	if !ok {
		return fmt.Errorf("sisap: vptree codec given %T", x)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(t.db.N())); err != nil {
		return err
	}
	return encodeVPNode(w, t.root)
}

func encodeVPNode(w io.Writer, n *vpNode) error {
	var flags byte
	if n.inside != nil {
		flags |= 1
	}
	if n.outside != nil {
		flags |= 2
	}
	if err := binary.Write(w, binary.LittleEndian, flags); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(n.id)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, n.median); err != nil {
		return err
	}
	if n.inside != nil {
		if err := encodeVPNode(w, n.inside); err != nil {
			return err
		}
	}
	if n.outside != nil {
		return encodeVPNode(w, n.outside)
	}
	return nil
}

func decodeVPTree(r io.Reader, db *DB) (Index, error) {
	if err := checkN(r, db); err != nil {
		return nil, err
	}
	t := &VPTree{db: db}
	root, err := decodeVPNode(r, db.N(), &t.size)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func decodeVPNode(r io.Reader, n int, size *int64) (*vpNode, error) {
	if *size >= int64(n) {
		return nil, fmt.Errorf("sisap: vptree has more than %d nodes", n)
	}
	*size++
	var flags byte
	if err := binary.Read(r, binary.LittleEndian, &flags); err != nil {
		return nil, fmt.Errorf("sisap: reading vptree node: %w", err)
	}
	if flags > 3 {
		return nil, fmt.Errorf("sisap: corrupt vptree node flags %#x", flags)
	}
	var id uint64
	if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
		return nil, fmt.Errorf("sisap: reading vptree node: %w", err)
	}
	if int(id) >= n {
		return nil, fmt.Errorf("sisap: vptree vantage point %d out of range", id)
	}
	node := &vpNode{id: int(id)}
	if err := binary.Read(r, binary.LittleEndian, &node.median); err != nil {
		return nil, fmt.Errorf("sisap: reading vptree node: %w", err)
	}
	var err error
	if flags&1 != 0 {
		if node.inside, err = decodeVPNode(r, n, size); err != nil {
			return nil, err
		}
	}
	if flags&2 != 0 {
		if node.outside, err = decodeVPNode(r, n, size); err != nil {
			return nil, err
		}
	}
	return node, nil
}

// --- ghtree ---

func encodeGHTree(w io.Writer, x Index) error {
	t, ok := x.(*GHTree)
	if !ok {
		return fmt.Errorf("sisap: ghtree codec given %T", x)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(t.db.N())); err != nil {
		return err
	}
	return encodeGHNode(w, t.root)
}

func encodeGHNode(w io.Writer, n *ghNode) error {
	var flags byte
	if n.left != nil {
		flags |= 1
	}
	if n.right != nil {
		flags |= 2
	}
	if err := binary.Write(w, binary.LittleEndian, flags); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(n.a)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(n.b)); err != nil {
		return err
	}
	if n.left != nil {
		if err := encodeGHNode(w, n.left); err != nil {
			return err
		}
	}
	if n.right != nil {
		return encodeGHNode(w, n.right)
	}
	return nil
}

func decodeGHTree(r io.Reader, db *DB) (Index, error) {
	if err := checkN(r, db); err != nil {
		return nil, err
	}
	t := &GHTree{db: db}
	root, err := decodeGHNode(r, db.N(), &t.size)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

func decodeGHNode(r io.Reader, n int, size *int64) (*ghNode, error) {
	if *size >= int64(n) {
		return nil, fmt.Errorf("sisap: ghtree has more than %d nodes", n)
	}
	*size++
	var flags byte
	if err := binary.Read(r, binary.LittleEndian, &flags); err != nil {
		return nil, fmt.Errorf("sisap: reading ghtree node: %w", err)
	}
	if flags > 3 {
		return nil, fmt.Errorf("sisap: corrupt ghtree node flags %#x", flags)
	}
	var a uint64
	var b int64
	if err := binary.Read(r, binary.LittleEndian, &a); err != nil {
		return nil, fmt.Errorf("sisap: reading ghtree node: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &b); err != nil {
		return nil, fmt.Errorf("sisap: reading ghtree node: %w", err)
	}
	if int(a) >= n || b >= int64(n) || b < -1 {
		return nil, fmt.Errorf("sisap: ghtree pivot (%d,%d) out of range", a, b)
	}
	node := &ghNode{a: int(a), b: int(b)}
	var err error
	if flags&1 != 0 {
		if node.left, err = decodeGHNode(r, n, size); err != nil {
			return nil, err
		}
	}
	if flags&2 != 0 {
		if node.right, err = decodeGHNode(r, n, size); err != nil {
			return nil, err
		}
	}
	return node, nil
}
