package sisap

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/metric"
)

// The tests in this file pin the tentpole invariant of the table-encoded
// query path: ScanOrder — distinct-permutation kernel evaluation plus
// counting-sort candidate ordering — must be byte-identical, tie-breaking
// included, to the retained naive reference (per-point permutation
// distances, stable float64 argsort) for every permutation distance. Each
// oracle comparison runs over both storage backends (permBackends): the
// heap-built table and its frozen-container mmap view must be
// indistinguishable to every kernel.

var allPermDistances = []PermDistance{Footrule, KendallTau, SpearmanRho}

func assertSameOrder(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: order length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: scan order diverges at position %d: %d != %d", label, i, got[i], want[i])
		}
	}
}

func TestScanOrderMatchesReference(t *testing.T) {
	cases := []struct{ n, d, k int }{
		{60, 2, 3},
		{300, 3, 8},
		{500, 5, 12},
		{250, 2, 1},   // single site: every permutation identical
		{400, 4, 280}, // k > 256: the uint16 rank store, both backends
	}
	for ci, c := range cases {
		for _, dist := range allPermDistances {
			rng := rand.New(rand.NewSource(int64(400 + ci)))
			db := NewDB(metric.L2{}, dataset.UniformVectors(rng, c.n, c.d))
			idx := NewPermIndex(db, rng.Perm(c.n)[:c.k], dist)
			for _, be := range permBackends(t, idx, db) {
				for qi := 0; qi < 20; qi++ {
					q := dataset.UniformVectors(rng, 1, c.d)[0]
					got, stats := be.idx.ScanOrder(q)
					if stats.DistanceEvals != c.k {
						t.Fatalf("case %d %s %s: ScanOrder cost %d evals, want %d", ci, dist, be.name, stats.DistanceEvals, c.k)
					}
					label := fmt.Sprintf("case %d %s %s query %d", ci, dist, be.name, qi)
					assertSameOrder(t, label, got, be.idx.referenceScanOrder(q))
				}
			}
		}
	}
}

func TestScanOrderMatchesReferenceClustered(t *testing.T) {
	// The paper's regime: clustered data and small k realise very few
	// distinct permutations, which is exactly where the table encoding
	// turns counting into speed. The equivalence must hold there too, with
	// heavy tie traffic between identical permutations.
	for _, dist := range allPermDistances {
		rng := rand.New(rand.NewSource(77))
		db := NewDB(metric.L2{}, dataset.ClusteredVectors(rng, 2_000, 4, 12, 0.02))
		idx := NewPermIndex(db, rng.Perm(db.N())[:6], dist)
		if d := idx.DistinctPermutations(); d >= db.N()/4 {
			t.Fatalf("clustered workload realised %d distinct permutations of %d points; not the distinct ≪ n regime", d, db.N())
		}
		for _, be := range permBackends(t, idx, db) {
			for qi := 0; qi < 15; qi++ {
				q := dataset.ClusteredVectors(rng, 1, 4, 1, 0.5)[0]
				got, _ := be.idx.ScanOrder(q)
				assertSameOrder(t, fmt.Sprintf("%s %s query %d", dist, be.name, qi), got, be.idx.referenceScanOrder(q))
			}
		}
	}
}

func TestScanOrderCountingSortFallback(t *testing.T) {
	// Spearman rho² keys grow as k³; at large k over a small database the
	// bucket array would dwarf n and the sort falls back to a stable
	// comparison sort. The fallback must preserve the exact ordering.
	rng := rand.New(rand.NewSource(88))
	db := NewDB(metric.L2{}, dataset.UniformVectors(rng, 120, 8))
	idx := NewPermIndex(db, rng.Perm(db.N())[:40], SpearmanRho)
	maxKey := int64(40 * 39 * 39) // loose rho² bound, k·(k−1)²
	if maxKey <= countingBucketLimit(db.N()) {
		t.Fatalf("test premise broken: maxKey %d fits the bucket limit %d", maxKey, countingBucketLimit(db.N()))
	}
	for _, be := range permBackends(t, idx, db) {
		for qi := 0; qi < 10; qi++ {
			q := dataset.UniformVectors(rng, 1, 8)[0]
			got, _ := be.idx.ScanOrder(q)
			assertSameOrder(t, fmt.Sprintf("fallback %s query %d", be.name, qi), got, be.idx.referenceScanOrder(q))
		}
	}
}

func TestKNNBudgetPartialOrderMatchesPrefix(t *testing.T) {
	// The partial counting sort feeding KNNBudget must produce exactly the
	// first maxEvals entries of the full scan order.
	rng := rand.New(rand.NewSource(99))
	db := NewDB(metric.L2{}, dataset.ClusteredVectors(rng, 1_000, 3, 8, 0.05))
	for _, dist := range allPermDistances {
		idx := NewPermIndex(db, rng.Perm(db.N())[:7], dist)
		for _, be := range permBackends(t, idx, db) {
			for qi := 0; qi < 8; qi++ {
				q := dataset.UniformVectors(rng, 1, 3)[0]
				full, _ := be.idx.ScanOrder(q)
				for _, budget := range []int{0, 1, 7, 100, 999, 1_000} {
					partial := make([]int, budget)
					be.idx.scanOrderInto(q, partial)
					assertSameOrder(t, fmt.Sprintf("%s %s budget %d", dist, be.name, budget), partial, full[:budget])
				}
			}
		}
	}
}

func TestScanOrderReplicaIndependence(t *testing.T) {
	// Replicas share the immutable table but must not share query scratch:
	// interleaved queries on original and replica give the same answers as
	// isolated queries.
	rng := rand.New(rand.NewSource(111))
	db := NewDB(metric.L2{}, dataset.UniformVectors(rng, 400, 3))
	idx := NewPermIndex(db, rng.Perm(db.N())[:8], Footrule)
	rep := idx.Replica().(*PermIndex)
	q1 := dataset.UniformVectors(rng, 1, 3)[0]
	q2 := dataset.UniformVectors(rng, 1, 3)[0]
	want1 := idx.referenceScanOrder(q1)
	want2 := idx.referenceScanOrder(q2)
	got1, _ := idx.ScanOrder(q1)
	got2, _ := rep.ScanOrder(q2)
	assertSameOrder(t, "original", got1, want1)
	assertSameOrder(t, "replica", got2, want2)
}

func TestTableEncodingCodecRoundTripClustered(t *testing.T) {
	// The distinct ≪ n regime through the v2 container: save/load must
	// preserve the table encoding (distinct count, per-point rows) and the
	// exact scan order.
	rng := rand.New(rand.NewSource(121))
	db := NewDB(metric.L2{}, dataset.ClusteredVectors(rng, 1_500, 3, 10, 0.02))
	for _, dist := range allPermDistances {
		idx := NewPermIndex(db, rng.Perm(db.N())[:5], dist)
		var buf bytes.Buffer
		if _, err := WriteIndex(&buf, idx); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadIndex(&buf, db)
		if err != nil {
			t.Fatal(err)
		}
		got := loaded.(*PermIndex)
		if got.DistinctPermutations() != idx.DistinctPermutations() {
			t.Fatalf("%s: distinct %d != %d after round trip", dist, got.DistinctPermutations(), idx.DistinctPermutations())
		}
		q := dataset.UniformVectors(rng, 1, 3)[0]
		a, _ := idx.ScanOrder(q)
		b, _ := got.ScanOrder(q)
		assertSameOrder(t, dist.String(), b, a)
	}
}

func TestTableEncodingSurvivesMutableSnapshot(t *testing.T) {
	// The mutable container embeds a distperm base; the rebuild-then-save
	// path must carry the table encoding through intact.
	rng := rand.New(rand.NewSource(131))
	pts := dataset.ClusteredVectors(rng, 600, 3, 6, 0.03)
	full := NewDB(metric.L2{}, pts)
	base := NewPermIndex(NewDB(metric.L2{}, pts[:500]), rng.Perm(500)[:6], Footrule)
	gids := make([]int, 600)
	for i := range gids {
		gids[i] = i
	}
	mx, err := NewMutableIndex(full, 500, base, gids, []int{3, 501}, 600)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, mx); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf, full)
	if err != nil {
		t.Fatal(err)
	}
	lmx := loaded.(*MutableIndex)
	lbase, ok := lmx.Base().(*PermIndex)
	if !ok {
		t.Fatalf("loaded base is %T, want *PermIndex", lmx.Base())
	}
	if lbase.DistinctPermutations() != base.DistinctPermutations() {
		t.Fatalf("base distinct %d != %d after snapshot round trip",
			lbase.DistinctPermutations(), base.DistinctPermutations())
	}
	for qi := 0; qi < 10; qi++ {
		q := dataset.UniformVectors(rng, 1, 3)[0]
		a, _ := mx.KNN(q, 3)
		b, _ := lmx.KNN(q, 3)
		sameResults(t, "mutable-knn", b, a)
		ao, _ := base.ScanOrder(q)
		bo, _ := lbase.ScanOrder(q)
		assertSameOrder(t, fmt.Sprintf("base scan %d", qi), bo, ao)
	}
}

func TestPermIndexRangeStats(t *testing.T) {
	// The index-order Range optimisation must keep the reported cost model
	// identical to the permutation-ordered scan it replaced: k + n.
	db, rng := testDB(141, 200, 3, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:6], Footrule)
	_, stats := idx.Range(metric.Vector{0.5, 0.5, 0.5}, 0.4)
	if stats.DistanceEvals != 6+200 {
		t.Errorf("Range stats = %d evals, want %d", stats.DistanceEvals, 6+200)
	}
}
