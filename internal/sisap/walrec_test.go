package sisap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"distperm/internal/metric"
)

func walTestRecords() []WALRecord {
	return []WALRecord{
		{Op: WALInsert, GID: 0, Point: metric.Vector{0.25, -1.5, 3}},
		{Op: WALInsert, GID: 41, Point: metric.Vector{math.Inf(1), math.SmallestNonzeroFloat64}},
		{Op: WALDelete, GID: 7},
		{Op: WALInsert, GID: 1 << 40, Point: metric.String("hello, wal")},
		{Op: WALInsert, GID: 43, Point: metric.Vector{}},
		{Op: WALInsert, GID: 44, Point: metric.String("")},
		{Op: WALDelete, GID: 0},
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	var buf []byte
	recs := walTestRecords()
	for _, rec := range recs {
		var err error
		if buf, err = AppendWALRecord(buf, rec); err != nil {
			t.Fatalf("append %+v: %v", rec, err)
		}
	}
	for i, want := range recs {
		got, n, err := DecodeWALRecord(buf)
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if got.Op != want.Op || got.GID != want.GID || !reflect.DeepEqual(got.Point, want.Point) {
			// Empty vector/string round-trip to empty, not nil; normalise.
			if fmt.Sprintf("%v|%v|%q", got.Op, got.GID, got.Point) != fmt.Sprintf("%v|%v|%q", want.Op, want.GID, want.Point) {
				t.Errorf("record %d: got %+v, want %+v", i, got, want)
			}
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Errorf("%d trailing bytes after decoding all records", len(buf))
	}
}

// TestWALRecordTornEveryByte is the codec half of the torn-write story: a
// frame truncated at every possible byte boundary must decode to ErrWALTorn
// (never a record, never a panic), and flipping any single byte must never
// yield the original record with a nil error.
func TestWALRecordTornEveryByte(t *testing.T) {
	for _, rec := range walTestRecords() {
		frame, err := AppendWALRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(frame); cut++ {
			if _, _, err := DecodeWALRecord(frame[:cut]); err == nil {
				t.Fatalf("frame %+v truncated to %d of %d bytes decoded cleanly", rec, cut, len(frame))
			}
		}
		for i := range frame {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 0x5a
			got, _, err := DecodeWALRecord(mut)
			if err == nil && got.Op == rec.Op && got.GID == rec.GID && reflect.DeepEqual(got.Point, rec.Point) {
				// A flip in the float payload can survive the CRC only by
				// collision, which CRC-32C rules out for single-byte flips.
				t.Fatalf("flipping byte %d of %+v went unnoticed", i, rec)
			}
		}
	}
}

func TestWALRecordRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{1, 2, 3},
		binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, 0), 0),            // zero length
		binary.LittleEndian.AppendUint32(binary.LittleEndian.AppendUint32(nil, maxWALBody+1), 0), // oversized length
	}
	for i, data := range bad {
		if _, _, err := DecodeWALRecord(data); err == nil {
			t.Errorf("garbage %d decoded cleanly", i)
		}
	}
	// A clean checksum over a bad body is corruption, not a torn tail.
	frame, err := AppendWALRecord(nil, WALRecord{Op: WALDelete, GID: 3})
	if err != nil {
		t.Fatal(err)
	}
	body := append([]byte(nil), frame[walFrameHeader:]...)
	body[0] = 99 // unknown op
	reframed := reframe(body)
	if _, _, err := DecodeWALRecord(reframed); err == nil {
		t.Error("unknown op decoded cleanly")
	}
}

// reframe wraps body in a fresh, correctly-checksummed frame.
func reframe(body []byte) []byte {
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, walCRC))
	return append(out, body...)
}

// FuzzWALRecord drives the WAL record decoder with arbitrary bytes: any
// input may fail to decode, none may panic or over-allocate, and every
// successful decode must re-encode to a frame that decodes to the same
// record (the round-trip invariant recovery relies on).
func FuzzWALRecord(f *testing.F) {
	for _, rec := range walTestRecords() {
		frame, err := AppendWALRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		f.Add(frame[:len(frame)-1])
	}
	f.Add([]byte("go test fuzz"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeWALRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded %d bytes of %d", n, len(data))
		}
		frame, err := AppendWALRecord(nil, rec)
		if err != nil {
			t.Fatalf("decoded record %+v does not re-encode: %v", rec, err)
		}
		back, m, err := DecodeWALRecord(frame)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if m != len(frame) || back.Op != rec.Op || back.GID != rec.GID || !reflect.DeepEqual(back.Point, rec.Point) {
			t.Fatalf("round trip drifted: %+v -> %+v", rec, back)
		}
	})
}

// TestGenerateFuzzCorpus writes the committed seed corpora under
// testdata/fuzz so CI fuzz regressions replay deterministically. It only
// writes when GEN_FUZZ_CORPUS=1 (regeneration after a format change);
// otherwise it asserts the committed corpus is present and decodable.
func TestGenerateFuzzCorpus(t *testing.T) {
	write := os.Getenv("GEN_FUZZ_CORPUS") == "1"
	emit := func(target, name string, data []byte) {
		path := filepath.Join("testdata", "fuzz", target, name)
		if write {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		if _, err := os.Stat(path); err != nil {
			t.Errorf("missing committed fuzz seed %s (regenerate with GEN_FUZZ_CORPUS=1): %v", path, err)
		}
	}

	// WAL record seeds: intact frames, a torn tail, a checksum flip.
	var all []byte
	for i, rec := range walTestRecords() {
		frame, err := AppendWALRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		emit("FuzzWALRecord", fmt.Sprintf("seed-record-%d", i), frame)
		all = append(all, frame...)
	}
	emit("FuzzWALRecord", "seed-stream", all)
	emit("FuzzWALRecord", "seed-torn", all[:len(all)-3])
	flipped := append([]byte(nil), all...)
	flipped[4] ^= 0xff
	emit("FuzzWALRecord", "seed-badcrc", flipped)

	// Container seeds: compact, frozen, and a torn frozen prefix (the same
	// shapes FuzzReadIndex adds at runtime, persisted so a regression found
	// by fuzzing replays from the repo alone).
	db, rng := testDB(607, 50, 3, metric.L2{})
	idx := NewPermIndex(db, rng.Perm(db.N())[:5], Footrule)
	var compact bytes.Buffer
	if _, err := WriteIndex(&compact, idx); err != nil {
		t.Fatal(err)
	}
	emit("FuzzReadIndex", "seed-compact", compact.Bytes())
	var frozen bytes.Buffer
	if _, err := WriteFrozen(&frozen, idx); err != nil {
		t.Fatal(err)
	}
	emit("FuzzReadIndex", "seed-frozen", frozen.Bytes())
	emit("FuzzReadIndex", "seed-frozen-torn", frozen.Bytes()[:90])
	// A directory-inconsistency seed: duplicate the first point posting and
	// recompute the section CRC, starting the fuzzer right at the
	// bucket-directory validation instead of the checksum wall.
	badBuckets := append([]byte(nil), frozen.Bytes()...)
	_, _, _, _, _, _, _, _, ptOrderOff := frozenBucketGeometry(badBuckets)
	copy(badBuckets[ptOrderOff:ptOrderOff+4], badBuckets[ptOrderOff+4:ptOrderOff+8])
	refreezeCRC(badBuckets, frozenSecBuckets)
	emit("FuzzReadIndex", "seed-frozen-badbuckets", badBuckets)
	// seed-frozen-v1 pins the PFRZ revision (no bucket directory): it was
	// committed from the last v1 writer and cannot be regenerated, so it is
	// asserted present but never rewritten.
	if _, err := os.Stat(filepath.Join("testdata", "fuzz", "FuzzReadIndex", "seed-frozen-v1")); err != nil {
		t.Errorf("missing committed v1 frozen seed: %v", err)
	}
}
