//go:build unix

package sisap

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether OpenMapped can hand out true zero-copy
// views on this platform; where it cannot, the open path falls back to a
// heap read of the file.
const mmapSupported = true

// mmapping is one read-only, shared mapping of a container file. Shared
// (not private) because the whole point is that every process serving the
// same frozen store shares one page-cache copy.
type mmapping struct {
	data []byte
}

// mapFile maps size bytes of f read-only. The mapping outlives f — the
// caller may close the file immediately.
func mapFile(f *os.File, size int64) (*mmapping, error) {
	if size <= 0 {
		return nil, fmt.Errorf("sisap: cannot map %d-byte file", size)
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("sisap: file of %d bytes exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("sisap: mmap: %w", err)
	}
	return &mmapping{data: data}, nil
}

func (m *mmapping) unmap() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}
