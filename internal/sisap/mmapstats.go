package sisap

import (
	"sync/atomic"

	"distperm/pkg/obs"
)

// MmapStats is a snapshot of the frozen-container open path: how many
// containers were opened, how many of those opens were true zero-copy
// mappings, how long opens took, how many bytes are currently mapped,
// and how many section-checksum verifications have failed (a non-zero
// value means a corrupt or tampered container was rejected). The
// counters are process-wide because mappings are: the point of MAP_SHARED
// is that every store in the process shares the page cache.
type MmapStats struct {
	Opens            uint64
	ZeroCopyOpens    uint64
	ChecksumFailures uint64
	MappedBytes      int64
	OpenLatency      obs.HistogramSnapshot
}

var (
	mmapOpens     atomic.Uint64
	mmapZeroCopy  atomic.Uint64
	mmapCksumFail atomic.Uint64
	mmapBytes     atomic.Int64
	mmapOpenLat   = obs.NewHistogram(obs.DefLatencyBuckets)
)

// ReadMmapStats snapshots the process-wide open-path counters.
func ReadMmapStats() MmapStats {
	return MmapStats{
		Opens:            mmapOpens.Load(),
		ZeroCopyOpens:    mmapZeroCopy.Load(),
		ChecksumFailures: mmapCksumFail.Load(),
		MappedBytes:      mmapBytes.Load(),
		OpenLatency:      mmapOpenLat.Snapshot(),
	}
}
