package sisap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"
	"unsafe"

	"distperm/internal/metric"
)

// The frozen payload: the distance-permutation index laid out so the file
// bytes ARE the in-memory representation. Where the compact table payload
// (serialize.go) bit-packs Lehmer ranks and row IDs to minimise wire size,
// the frozen form stores the rank matrix raw (uint8/uint16 rows, exactly
// the rankTable layout), the row IDs as plain uint32, and each section
// 64-byte-aligned at an explicit offset — so OpenMapped can validate the
// header and hand out zero-copy views into a read-only mapping instead of
// stream-decoding the container onto the heap. Restart cost over a frozen
// store is one sequential checksum pass, not a per-element decode, and
// every process serving the same file shares one page-cache copy.
//
// Frozen payload layout (little-endian), inside the standard v2 container
// (magic, version, kind "distperm"):
//
//	tag        uint32   permFrozenTag ("PFRZ")
//	headerOff  uint64   absolute file offset of the tag (self-locating:
//	                    section offsets below are absolute, so a
//	                    non-seeking stream decoder derives skip distances
//	                    from this instead of its unknown stream position)
//	k          uint32   number of sites
//	dist       uint32   PermDistance
//	n          uint64   number of points
//	distinct   uint32   rank-matrix rows (1 ≤ distinct ≤ n)
//	rankWidth  uint32   bytes per rank: 1 when k ≤ 256, else 2
//	dims       uint32   dimensions of embedded point vectors (0 = none)
//	metricLen  uint32   length of the metric name (0 when no points)
//	sections   4 × {off uint64, len uint64, crc32c uint32, _ uint32}
//	metric     metricLen bytes
//	sections:  sites  k × uint64        database IDs of the sites
//	           ranks  distinct×k ranks  raw row-major rank matrix
//	           ids    n × uint32        per-point table row IDs
//	           points n × dims × float64  vectors (optional)
//
// Sections sit at ascending 64-byte-aligned offsets with zero padding
// between; each carries a CRC-32C. Unlike the compact form, the frozen
// form has no k ≤ 20 cap — ranks are stored raw, not as packed factorials.
// The points section (plus the metric name) makes a container
// self-contained: OpenMapped can reconstruct the database from the
// mapping, so a serving process needs no separate data file.
// Two frozen payload revisions exist, distinguished by tag. PFRZ is the
// original four-section layout above. PFR2 adds a fifth "buckets" section
// — the permutation-prefix inverted-file directory of prefixbuckets.go —
// so mapped opens serve approximate queries zero-copy instead of
// rebuilding the directory per process. Its fixed header keeps every PFRZ
// field at the same offset, appends the fifth section descriptor directly
// after the fourth, then two uint32s (ell, nbuckets):
//
//	sections   5 × {off uint64, len uint64, crc32c uint32, _ uint32}
//	ell        uint32   directory prefix length (1..k)
//	nbuckets   uint32   directory size (1..distinct)
//	buckets    4·(nbuckets·ell + 2·(nbuckets+1) + distinct + n) bytes:
//	           uint32 arrays [prefixes][rowStarts][rowOrder][ptStarts][ptOrder]
//
// WriteFrozen emits PFR2; both revisions decode (a PFRZ file builds its
// directory lazily on the heap instead).
const (
	permFrozenTag    = 0x5A524650 // "PFRZ" read little-endian
	permFrozenV2Tag  = 0x32524650 // "PFR2" read little-endian
	frozenAlign      = 64
	frozenNumSecs    = 4
	frozenV2NumSecs  = 5
	frozenFixedLen   = 136 // v1 header bytes after the tag, before the metric name
	frozenV2FixedLen = 168 // v2: + fifth descriptor (24) + ell/nbuckets (8)
	frozenMaxDims    = 1 << 16
	frozenKind       = "distperm"
	// frozenPrefixLen is where WriteFrozen puts the tag: after the v2
	// container prefix (magic, version, kindLen, kind).
	frozenPrefixLen = len(codecMagic) + 4 + 4 + len(frozenKind)
)

// Section indexes, in file order.
const (
	frozenSecSites = iota
	frozenSecRanks
	frozenSecIDs
	frozenSecPoints
	frozenSecBuckets // PFR2 only
)

var frozenSectionName = [frozenV2NumSecs]string{"sites", "ranks", "ids", "points", "buckets"}

// frozenFixedLenFor returns the fixed-header length of a payload revision.
func frozenFixedLenFor(version int) int {
	if version >= 2 {
		return frozenV2FixedLen
	}
	return frozenFixedLen
}

var frozenCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrNeedDB reports that a frozen container embeds no point vectors, so
// opening it requires the caller to supply the database it was built on.
var ErrNeedDB = errors.New("sisap: frozen container embeds no points; a database is required")

// hostLittleEndian gates the zero-copy casts: on a big-endian host the
// open path falls back to decoding copies.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func align64(off uint64) uint64 { return (off + frozenAlign - 1) &^ uint64(frozenAlign-1) }

type frozenSection struct {
	off    uint64 // absolute file offset, 64-byte-aligned
	length uint64
	crc    uint32 // CRC-32C of the section bytes
}

// frozenHeader is the parsed fixed header of a frozen payload.
type frozenHeader struct {
	version   int // payload revision: 1 (PFRZ) or 2 (PFR2)
	headerOff uint64
	k         int
	dist      PermDistance
	n         uint64
	distinct  int
	rankWidth int
	dims      int
	metricLen int
	ell       int // v2: directory prefix length
	nbuckets  int // v2: directory size
	sec       []frozenSection
}

// parseFrozenFixed decodes the fixed header bytes that follow the tag —
// frozenFixedLenFor(version) of them.
func parseFrozenFixed(b []byte, version int) frozenHeader {
	le := binary.LittleEndian
	h := frozenHeader{version: version}
	h.headerOff = le.Uint64(b[0:])
	h.k = int(le.Uint32(b[8:]))
	h.dist = PermDistance(le.Uint32(b[12:]))
	h.n = le.Uint64(b[16:])
	h.distinct = int(le.Uint32(b[24:]))
	h.rankWidth = int(le.Uint32(b[28:]))
	h.dims = int(le.Uint32(b[32:]))
	h.metricLen = int(le.Uint32(b[36:]))
	nsec := frozenNumSecs
	if version >= 2 {
		nsec = frozenV2NumSecs
	}
	h.sec = make([]frozenSection, nsec)
	for i := range h.sec {
		base := 40 + 24*i
		h.sec[i] = frozenSection{
			off:    le.Uint64(b[base:]),
			length: le.Uint64(b[base+8:]),
			crc:    le.Uint32(b[base+16:]),
		}
	}
	if version >= 2 {
		h.ell = int(le.Uint32(b[40+24*frozenV2NumSecs:]))
		h.nbuckets = int(le.Uint32(b[44+24*frozenV2NumSecs:]))
	}
	return h
}

// sectionLens returns the exact byte length every section must have given
// the header counts. All factors are bounded by check's field validation,
// so the uint64 products cannot overflow.
func (h *frozenHeader) sectionLens() []uint64 {
	lens := []uint64{
		frozenSecSites:  uint64(h.k) * 8,
		frozenSecRanks:  uint64(h.distinct) * uint64(h.k) * uint64(h.rankWidth),
		frozenSecIDs:    h.n * 4,
		frozenSecPoints: h.n * uint64(h.dims) * 8,
	}
	if h.version >= 2 {
		nb := uint64(h.nbuckets)
		lens = append(lens, 4*(nb*uint64(h.ell)+2*(nb+1)+uint64(h.distinct)+h.n))
	}
	return lens
}

// end returns the file offset one past the last section.
func (h *frozenHeader) end() uint64 {
	last := h.sec[len(h.sec)-1]
	return last.off + last.length
}

// check validates every header field and the canonical section layout —
// ascending 64-byte-aligned offsets with sub-alignment gaps and exact
// computed lengths — so that a header that passes cannot direct the
// decoder out of bounds or into an oversized allocation.
func (h *frozenHeader) check() error {
	if h.k < 1 || h.k > 65535 {
		return fmt.Errorf("sisap: frozen k=%d out of range 1..65535", h.k)
	}
	if h.dist < Footrule || h.dist > SpearmanRho {
		return fmt.Errorf("sisap: frozen container has unknown permutation distance %d", int(h.dist))
	}
	if h.n == 0 || h.n >= 1<<32 {
		return fmt.Errorf("sisap: frozen point count %d out of range", h.n)
	}
	if h.distinct < 1 || uint64(h.distinct) > h.n {
		return fmt.Errorf("sisap: frozen distinct count %d out of range 1..%d", h.distinct, h.n)
	}
	wantWidth := 1
	if h.k > 256 {
		wantWidth = 2
	}
	if h.rankWidth != wantWidth {
		return fmt.Errorf("sisap: frozen rank width %d does not match k=%d (want %d)", h.rankWidth, h.k, wantWidth)
	}
	if h.dims > frozenMaxDims {
		return fmt.Errorf("sisap: frozen point dimensionality %d exceeds limit %d", h.dims, frozenMaxDims)
	}
	if h.metricLen > maxKindLen {
		return fmt.Errorf("sisap: frozen metric name length %d out of range", h.metricLen)
	}
	if h.dims > 0 && h.metricLen == 0 {
		return errors.New("sisap: frozen container embeds points but no metric name")
	}
	if h.version >= 2 {
		if h.ell < 1 || h.ell > h.k {
			return fmt.Errorf("sisap: frozen bucket prefix length %d out of range 1..%d", h.ell, h.k)
		}
		if h.nbuckets < 1 || h.nbuckets > h.distinct {
			return fmt.Errorf("sisap: frozen bucket count %d out of range 1..%d", h.nbuckets, h.distinct)
		}
	}
	// headerOff is bounded so the offset arithmetic below cannot overflow
	// (section lengths are ≤ 2^51 by the field bounds above).
	if h.headerOff > 1<<20 {
		return fmt.Errorf("sisap: frozen header offset %d out of range", h.headerOff)
	}
	want := h.sectionLens()
	pos := h.headerOff + 4 + uint64(frozenFixedLenFor(h.version)) + uint64(h.metricLen)
	for i, s := range h.sec {
		off := align64(pos)
		if s.off != off {
			return fmt.Errorf("sisap: frozen %s section at offset %d, want %d", frozenSectionName[i], s.off, off)
		}
		if s.length != want[i] {
			return fmt.Errorf("sisap: frozen %s section is %d bytes, want %d", frozenSectionName[i], s.length, want[i])
		}
		pos = off + s.length
	}
	return nil
}

// verifySections checks each section's CRC-32C and then the value bounds
// the query kernels index by without per-element checks: every rank < k,
// every row ID < distinct, every site ID < n. A file that passes cannot
// drive the kernels or the scatter loops out of bounds. (Duplicate rank
// rows — which the compact decoder rejects — are tolerated here: they
// waste table space but cannot corrupt an answer, and detecting them
// would cost the O(n·k) hashing pass this format exists to avoid.)
func (h *frozenHeader) verifySections(secs [][]byte) error {
	le := binary.LittleEndian
	for i, b := range secs {
		if got := crc32.Checksum(b, frozenCRC); got != h.sec[i].crc {
			mmapCksumFail.Add(1)
			return fmt.Errorf("sisap: frozen %s section checksum mismatch (%08x, want %08x)", frozenSectionName[i], got, h.sec[i].crc)
		}
	}
	for off := 0; off < len(secs[frozenSecSites]); off += 8 {
		if id := le.Uint64(secs[frozenSecSites][off:]); id >= h.n {
			return fmt.Errorf("sisap: frozen site ID %d out of range", id)
		}
	}
	ranks := secs[frozenSecRanks]
	switch {
	case h.rankWidth == 1 && h.k < 256:
		for _, r := range ranks {
			if int(r) >= h.k {
				return fmt.Errorf("sisap: frozen rank %d out of range (k=%d)", r, h.k)
			}
		}
	case h.rankWidth == 2:
		for off := 0; off < len(ranks); off += 2 {
			if r := le.Uint16(ranks[off:]); int(r) >= h.k {
				return fmt.Errorf("sisap: frozen rank %d out of range (k=%d)", r, h.k)
			}
		}
	}
	ids := secs[frozenSecIDs]
	for off := 0; off < len(ids); off += 4 {
		if id := le.Uint32(ids[off:]); int(id) >= h.distinct {
			return fmt.Errorf("sisap: frozen row ID %d out of range (distinct=%d)", id, h.distinct)
		}
	}
	if h.version >= 2 {
		return h.verifyBucketSection(secs)
	}
	return nil
}

// verifyBucketSection validates the v2 inverted-file directory far beyond
// memory safety: the posting-list boundaries must tile the row and point
// ranges exactly, rowOrder/ptOrder must be permutations, and — the
// mis-probe guarantee — every row listed under a bucket must actually
// carry that bucket's prefix (checked against the rank matrix) and every
// point must be listed under its own row's bucket. A hostile directory
// that survives this is, by construction, a correct directory: probing it
// can only ever select the points it claims, so corruption fails decode
// instead of silently degrading answers.
func (h *frozenHeader) verifyBucketSection(secs [][]byte) error {
	le := binary.LittleEndian
	b := secs[frozenSecBuckets]
	u32 := func(i int) uint32 { return le.Uint32(b[4*i:]) }
	nb, ell, distinct := h.nbuckets, h.ell, h.distinct
	n := int(h.n)
	prefixesOff := 0
	rowStartsOff := prefixesOff + nb*ell
	rowOrderOff := rowStartsOff + nb + 1
	ptStartsOff := rowOrderOff + distinct
	ptOrderOff := ptStartsOff + nb + 1
	for i := 0; i < nb*ell; i++ {
		if int(u32(prefixesOff+i)) >= h.k {
			return fmt.Errorf("sisap: frozen bucket prefix site %d out of range (k=%d)", u32(prefixesOff+i), h.k)
		}
	}
	checkStarts := func(off, total int, what string) error {
		if u32(off) != 0 {
			return fmt.Errorf("sisap: frozen bucket %s do not start at 0", what)
		}
		for i := 1; i <= nb; i++ {
			if u32(off+i) < u32(off+i-1) {
				return fmt.Errorf("sisap: frozen bucket %s not monotone at bucket %d", what, i-1)
			}
		}
		if int(u32(off+nb)) != total {
			return fmt.Errorf("sisap: frozen bucket %s end at %d, want %d", what, u32(off+nb), total)
		}
		return nil
	}
	if err := checkStarts(rowStartsOff, distinct, "row boundaries"); err != nil {
		return err
	}
	if err := checkStarts(ptStartsOff, n, "point boundaries"); err != nil {
		return err
	}
	// rankAt reads the stored rank of site s in table row r straight from
	// the verified ranks section.
	ranks := secs[frozenSecRanks]
	rankAt := func(r, s int) int {
		if h.rankWidth == 2 {
			return int(le.Uint16(ranks[2*(r*h.k+s):]))
		}
		return int(ranks[r*h.k+s])
	}
	rowBucket := make([]uint32, distinct)
	seenRow := make([]bool, distinct)
	for bkt := 0; bkt < nb; bkt++ {
		lo, hi := int(u32(rowStartsOff+bkt)), int(u32(rowStartsOff+bkt+1))
		for i := lo; i < hi; i++ {
			r := u32(rowOrderOff + i)
			if int(r) >= distinct || seenRow[r] {
				return fmt.Errorf("sisap: frozen bucket row list is not a permutation (row %d)", r)
			}
			seenRow[r] = true
			rowBucket[r] = uint32(bkt)
			for j := 0; j < ell; j++ {
				if rankAt(int(r), int(u32(prefixesOff+bkt*ell+j))) != j {
					return fmt.Errorf("sisap: frozen table row %d does not carry its bucket's prefix", r)
				}
			}
		}
	}
	ids := secs[frozenSecIDs]
	seenPt := make([]bool, n)
	for bkt := 0; bkt < nb; bkt++ {
		lo, hi := int(u32(ptStartsOff+bkt)), int(u32(ptStartsOff+bkt+1))
		for i := lo; i < hi; i++ {
			pt := u32(ptOrderOff + i)
			if int(pt) >= n || seenPt[pt] {
				return fmt.Errorf("sisap: frozen bucket point list is not a permutation (point %d)", pt)
			}
			seenPt[pt] = true
			if rowBucket[le.Uint32(ids[4*pt:])] != uint32(bkt) {
				return fmt.Errorf("sisap: frozen point %d listed under the wrong bucket", pt)
			}
		}
	}
	return nil
}

// --- writing ---

// frozenPoints encodes the database's point vectors for embedding, if the
// database is self-describing: a ByName-resolvable metric over non-empty
// equal-dimension float vectors. Otherwise it reports dims 0 and the
// container is written without points (ErrNeedDB on a db-less open).
func frozenPoints(db *DB) (points []byte, dims int, name string) {
	name = db.Metric.Name()
	if _, err := metric.ByName(name); err != nil {
		return nil, 0, ""
	}
	d := 0
	for _, p := range db.Points {
		v, ok := p.(metric.Vector)
		if !ok || len(v) == 0 || len(v) > frozenMaxDims || (d != 0 && len(v) != d) {
			return nil, 0, ""
		}
		d = len(v)
	}
	if d == 0 {
		return nil, 0, ""
	}
	buf := make([]byte, 8*d*len(db.Points))
	off := 0
	for _, p := range db.Points {
		for _, f := range p.(metric.Vector) {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(f))
			off += 8
		}
	}
	return buf, d, name
}

// WriteOptions configures WriteIndexWith.
type WriteOptions struct {
	// Compact selects the bit-packed wire form — exactly what WriteIndex
	// emits, smallest on the wire but k ≤ 20 and decoded onto the heap.
	// The default (false) writes the sectioned frozen form, larger but
	// servable zero-copy via OpenMapped and unrestricted in k.
	Compact bool
}

// WriteIndexWith serialises x in the v2 container, in the form opts
// selects. The frozen form is only defined for the distperm kind; every
// other index kind writes compact regardless.
func WriteIndexWith(w io.Writer, x Index, opts WriteOptions) (int64, error) {
	if px, ok := x.(*PermIndex); ok && !opts.Compact {
		return WriteFrozen(w, px)
	}
	return WriteIndex(w, x)
}

// WriteFrozen serialises x in the sectioned frozen form (PFR2) of the v2
// container. Unlike WriteIndex's compact payload it has no k ≤ 20 cap,
// and when the database is self-describing (a named metric over
// equal-dimension vectors) the point vectors are embedded, making the
// file self-contained for OpenMapped. The prefix-bucket directory is
// built (if the index has not served an approximate query yet) and
// written as the fifth section, so mapped opens serve approximate queries
// zero-copy.
func WriteFrozen(w io.Writer, x *PermIndex) (int64, error) {
	k := x.K()
	n := uint64(x.db.N())
	if n == 0 || n >= 1<<32 {
		return 0, fmt.Errorf("sisap: cannot freeze an index over %d points", n)
	}
	distinct := x.table.rows
	pb := x.buckets()
	nb := pb.numBuckets()

	secs := make([][]byte, frozenV2NumSecs)
	sites := make([]byte, 8*k)
	for i, id := range x.siteIDs {
		binary.LittleEndian.PutUint64(sites[8*i:], uint64(id))
	}
	secs[frozenSecSites] = sites
	rankWidth := 1
	if x.table.wide() {
		rankWidth = 2
		ranks := make([]byte, 2*distinct*k)
		for i, r := range x.table.r16.data {
			binary.LittleEndian.PutUint16(ranks[2*i:], r)
		}
		secs[frozenSecRanks] = ranks
	} else {
		// The uint8 store is already the on-disk byte layout.
		secs[frozenSecRanks] = x.table.r8.data
	}
	ids := make([]byte, 4*len(x.tableIDs))
	for i, id := range x.tableIDs {
		binary.LittleEndian.PutUint32(ids[4*i:], id)
	}
	secs[frozenSecIDs] = ids
	points, dims, metricName := frozenPoints(x.db)
	secs[frozenSecPoints] = points
	buckets := make([]byte, 0, 4*(nb*pb.ell+2*(nb+1)+distinct+int(n)))
	for _, arr := range [][]uint32{pb.prefixes, pb.rowStarts, pb.rowOrder, pb.ptStarts, pb.ptOrder} {
		for _, v := range arr {
			buckets = binary.LittleEndian.AppendUint32(buckets, v)
		}
	}
	secs[frozenSecBuckets] = buckets

	headerOff := uint64(frozenPrefixLen)
	sec := make([]frozenSection, frozenV2NumSecs)
	pos := headerOff + 4 + frozenV2FixedLen + uint64(len(metricName))
	for i, b := range secs {
		off := align64(pos)
		sec[i] = frozenSection{off: off, length: uint64(len(b)), crc: crc32.Checksum(b, frozenCRC)}
		pos = off + uint64(len(b))
	}

	le := binary.LittleEndian
	hdr := make([]byte, 4+frozenV2FixedLen+len(metricName))
	le.PutUint32(hdr[0:], permFrozenV2Tag)
	le.PutUint64(hdr[4:], headerOff)
	le.PutUint32(hdr[12:], uint32(k))
	le.PutUint32(hdr[16:], uint32(x.dist))
	le.PutUint64(hdr[20:], n)
	le.PutUint32(hdr[28:], uint32(distinct))
	le.PutUint32(hdr[32:], uint32(rankWidth))
	le.PutUint32(hdr[36:], uint32(dims))
	le.PutUint32(hdr[40:], uint32(len(metricName)))
	for i, s := range sec {
		base := 44 + 24*i
		le.PutUint64(hdr[base:], s.off)
		le.PutUint64(hdr[base+8:], s.length)
		le.PutUint32(hdr[base+16:], s.crc)
	}
	le.PutUint32(hdr[44+24*frozenV2NumSecs:], uint32(pb.ell))
	le.PutUint32(hdr[48+24*frozenV2NumSecs:], uint32(nb))
	copy(hdr[4+frozenV2FixedLen:], metricName)

	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}
	werr := func() error {
		if _, err := io.WriteString(cw, codecMagic); err != nil {
			return err
		}
		if err := binary.Write(cw, le, uint32(codecVersion)); err != nil {
			return err
		}
		if err := binary.Write(cw, le, uint32(len(frozenKind))); err != nil {
			return err
		}
		if _, err := io.WriteString(cw, frozenKind); err != nil {
			return err
		}
		if _, err := cw.Write(hdr); err != nil {
			return err
		}
		for i, b := range secs {
			if err := writeZeros(cw, int64(sec[i].off)-cw.n); err != nil {
				return err
			}
			if _, err := cw.Write(b); err != nil {
				return err
			}
		}
		return bw.Flush()
	}()
	return cw.n, werr
}

var zeroPad [frozenAlign]byte

func writeZeros(w io.Writer, n int64) error {
	for n > 0 {
		chunk := n
		if chunk > frozenAlign {
			chunk = frozenAlign
		}
		if _, err := w.Write(zeroPad[:chunk]); err != nil {
			return err
		}
		n -= chunk
	}
	return nil
}

// --- decoding (shared by the stream and mapped paths) ---

// Zero-copy reinterpretations of a mapping section as its typed contents.
// Safe because the writer 64-byte-aligns every section, mappings are
// page-aligned (so section bases are at least 8-byte-aligned), and the
// callers gate on hostLittleEndian; the heap fallbacks below decode
// copies instead.

func viewUint16(b []byte) []uint16 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), len(b)/2)
}

func viewUint32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func viewFloat64(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func frozenUint16s(b []byte, zeroCopy bool) []uint16 {
	if zeroCopy {
		return viewUint16(b)
	}
	out := make([]uint16, len(b)/2)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out
}

func frozenUint32s(b []byte, zeroCopy bool) []uint32 {
	if zeroCopy {
		return viewUint32(b)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func frozenFloat64s(b []byte, zeroCopy bool) []float64 {
	if zeroCopy {
		return viewFloat64(b)
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// buildFrozenIndex assembles the index (and, for a self-contained
// container opened without a database, the database itself) from verified
// section bytes. With zeroCopy the rank matrix, row IDs, and point
// vectors are views into the section bytes — the mapped path; otherwise
// they are decoded copies and the section bytes may be discarded.
func buildFrozenIndex(h *frozenHeader, metricName string, secs [][]byte, db *DB, zeroCopy bool) (*PermIndex, *DB, error) {
	if db != nil {
		if uint64(db.N()) != h.n {
			return nil, nil, fmt.Errorf("sisap: index has %d points, database has %d", h.n, db.N())
		}
	} else {
		if h.dims == 0 {
			return nil, nil, fmt.Errorf("sisap: opening %d-point container: %w", h.n, ErrNeedDB)
		}
		m, err := metric.ByName(metricName)
		if err != nil {
			return nil, nil, fmt.Errorf("sisap: frozen container metric: %w", err)
		}
		floats := frozenFloat64s(secs[frozenSecPoints], zeroCopy)
		points := make([]metric.Point, h.n)
		d := h.dims
		for i := range points {
			points[i] = metric.Vector(floats[i*d : (i+1)*d : (i+1)*d])
		}
		db = &DB{Metric: m, Points: points}
	}
	siteIDs := make([]int, h.k)
	for i := range siteIDs {
		siteIDs[i] = int(binary.LittleEndian.Uint64(secs[frozenSecSites][8*i:]))
	}
	var table *rankTable
	if h.rankWidth == 1 {
		// []uint8 is []byte: the section bytes are the store, both paths.
		table = newFrozenRankTable(h.k, h.distinct, secs[frozenSecRanks], nil)
	} else {
		table = newFrozenRankTable(h.k, h.distinct, nil, frozenUint16s(secs[frozenSecRanks], zeroCopy))
	}
	ids := frozenUint32s(secs[frozenSecIDs], zeroCopy)
	idx := newPermIndexFromTable(db, siteIDs, h.dist, table, ids)
	if h.version >= 2 {
		// The verified directory becomes the index's bucket directory
		// directly — views into the mapping on the zero-copy path — so no
		// process ever rebuilds what the file already stores.
		u := frozenUint32s(secs[frozenSecBuckets], zeroCopy)
		nb, ell := h.nbuckets, h.ell
		p := 0
		cut := func(n int) []uint32 { s := u[p : p+n : p+n]; p += n; return s }
		idx.lb.pb = &prefixBuckets{
			ell:       ell,
			prefixes:  cut(nb * ell),
			rowStarts: cut(nb + 1),
			rowOrder:  cut(h.distinct),
			ptStarts:  cut(nb + 1),
			ptOrder:   cut(int(h.n)),
		}
	}
	return idx, db, nil
}

// readFrozenSection reads exactly length section bytes, growing the buffer
// in bounded chunks as data actually arrives. The header's field bounds cap
// most sections, but a corrupt points section can legitimately claim
// n×dims×8 bytes — far more than any real file holds — and a single
// make([]byte, length) up front would be an attacker-priced allocation.
// Chunked growth keeps memory proportional to the bytes the file really
// contains: a short file fails with io.ErrUnexpectedEOF after at most one
// chunk of slack.
func readFrozenSection(br io.Reader, length uint64) ([]byte, error) {
	const chunk = 1 << 20
	if length <= chunk {
		b := make([]byte, length)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	b := make([]byte, 0, chunk)
	for uint64(len(b)) < length {
		n := length - uint64(len(b))
		if n > chunk {
			n = chunk
		}
		grown := append(b, make([]byte, n)...)
		if _, err := io.ReadFull(br, grown[len(b):]); err != nil {
			return nil, err
		}
		b = grown
	}
	return b, nil
}

// decodeFrozenStream reads a frozen payload sequentially — the
// compatibility path ReadIndex uses, materialising a heap-backed index;
// OpenMapped is the zero-copy path. The tag has already been consumed and
// names the payload revision. The header stores absolute section offsets,
// but it also stores its own absolute offset, so the padding gaps can be
// derived without seeking.
func decodeFrozenStream(br io.Reader, db *DB, version int) (*PermIndex, error) {
	if db == nil {
		return nil, errors.New("sisap: stream-decoding a frozen container requires a database")
	}
	fixed := make([]byte, frozenFixedLenFor(version))
	if _, err := io.ReadFull(br, fixed); err != nil {
		return nil, fmt.Errorf("sisap: reading frozen header: %w", err)
	}
	h := parseFrozenFixed(fixed, version)
	if err := h.check(); err != nil {
		return nil, err
	}
	if uint64(db.N()) != h.n {
		return nil, fmt.Errorf("sisap: index has %d points, database has %d", h.n, db.N())
	}
	name := make([]byte, h.metricLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("sisap: reading frozen metric name: %w", err)
	}
	pos := h.headerOff + 4 + uint64(frozenFixedLenFor(version)) + uint64(h.metricLen)
	secs := make([][]byte, len(h.sec))
	for i, s := range h.sec {
		// check pinned s.off to align64(pos), so the gap is < frozenAlign.
		if gap := int64(s.off - pos); gap > 0 {
			if _, err := io.CopyN(io.Discard, br, gap); err != nil {
				return nil, fmt.Errorf("sisap: reading frozen %s section padding: %w", frozenSectionName[i], err)
			}
		}
		b, err := readFrozenSection(br, s.length)
		if err != nil {
			return nil, fmt.Errorf("sisap: reading frozen %s section: %w", frozenSectionName[i], err)
		}
		secs[i] = b
		pos = s.off + s.length
	}
	if err := h.verifySections(secs); err != nil {
		return nil, err
	}
	idx, _, err := buildFrozenIndex(&h, string(name), secs, db, false)
	return idx, err
}

// --- mapped open ---

// Mapped is an open frozen container: an index (and, for self-contained
// containers, its database) whose rank matrix, row IDs, and point vectors
// are zero-copy views into one read-only file mapping. Close unmaps; the
// views — including every Engine replica sharing the table — must not be
// used after Close, so a server drains queries first (MutableConfig's
// BaseRelease hook and distpermd's drain path do exactly that).
type Mapped struct {
	m   *mmapping // nil when the open fell back to a heap read
	idx *PermIndex
	db  *DB
}

// Index returns the mapped index. Replicas share the mapping.
func (m *Mapped) Index() *PermIndex { return m.idx }

// DB returns the database the index is served against: the one supplied
// to OpenMapped, or the container-embedded one.
func (m *Mapped) DB() *DB { return m.db }

// Zero reports whether the open was truly zero-copy (a live mapping) as
// opposed to the heap fallback.
func (m *Mapped) Zero() bool { return m.m != nil }

// Close releases the mapping. It is idempotent and safe on the heap
// fallback; it is the caller's contract that no view is used afterwards.
func (m *Mapped) Close() error {
	if m.m == nil {
		return nil
	}
	// unmap nils the data slice, so capture the size first; idempotence
	// of the gauge update rides on unmap's own idempotence.
	released := int64(len(m.m.data))
	err := m.m.unmap()
	if released > 0 {
		mmapBytes.Add(-released)
	}
	return err
}

// OpenMapped opens a frozen container produced by WriteFrozen without
// copying it: the header and per-section checksums are verified (one
// sequential pass, no per-element decode or allocation), then the index
// is assembled from views into the read-only mapping. db may be nil for
// self-contained containers (embedded points); otherwise it must be the
// database the index was built on. On platforms without mmap support the
// same validation runs over a heap read of the file.
func OpenMapped(path string, db *DB) (*Mapped, error) {
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	zeroCopy := mmapSupported && hostLittleEndian
	var m *mmapping
	var data []byte
	if zeroCopy {
		if m, err = mapFile(f, st.Size()); err != nil {
			return nil, err
		}
		data = m.data
	} else {
		if data, err = io.ReadAll(bufio.NewReader(f)); err != nil {
			return nil, fmt.Errorf("sisap: reading %s: %w", path, err)
		}
	}
	idx, fdb, err := openFrozenBytes(data, db, zeroCopy)
	if err != nil {
		if m != nil {
			m.unmap()
		}
		return nil, fmt.Errorf("sisap: open %s: %w", path, err)
	}
	mmapOpens.Add(1)
	if m != nil {
		mmapZeroCopy.Add(1)
		mmapBytes.Add(int64(len(m.data)))
	}
	mmapOpenLat.Observe(time.Since(start).Seconds())
	return &Mapped{m: m, idx: idx, db: fdb}, nil
}

// openFrozenBytes validates a complete frozen container image and builds
// the index over it (views when zeroCopy, decoded copies otherwise).
func openFrozenBytes(data []byte, db *DB, zeroCopy bool) (*PermIndex, *DB, error) {
	le := binary.LittleEndian
	if len(data) < frozenPrefixLen+4+frozenFixedLen {
		return nil, nil, fmt.Errorf("sisap: %d-byte file is too short for a frozen container", len(data))
	}
	if string(data[:len(codecMagic)]) != codecMagic {
		return nil, nil, fmt.Errorf("sisap: bad magic %q", data[:len(codecMagic)])
	}
	if v := le.Uint32(data[len(codecMagic):]); v != codecVersion {
		return nil, nil, fmt.Errorf("sisap: mapped open needs a v%d container, got version %d", codecVersion, v)
	}
	kindLen := le.Uint32(data[len(codecMagic)+4:])
	if int(kindLen) != len(frozenKind) || string(data[len(codecMagic)+8:frozenPrefixLen]) != frozenKind {
		return nil, nil, fmt.Errorf("sisap: mapped open supports only %q containers", frozenKind)
	}
	version := 0
	switch le.Uint32(data[frozenPrefixLen:]) {
	case permFrozenTag:
		version = 1
	case permFrozenV2Tag:
		version = 2
	default:
		return nil, nil, errors.New("sisap: container payload is not frozen (write it with WriteFrozen, or stream-decode with ReadIndex)")
	}
	if len(data) < frozenPrefixLen+4+frozenFixedLenFor(version) {
		return nil, nil, fmt.Errorf("sisap: %d-byte file is too short for a frozen v%d header", len(data), version)
	}
	h := parseFrozenFixed(data[frozenPrefixLen+4:], version)
	if err := h.check(); err != nil {
		return nil, nil, err
	}
	if h.headerOff != uint64(frozenPrefixLen) {
		return nil, nil, fmt.Errorf("sisap: frozen header claims offset %d, found at %d", h.headerOff, frozenPrefixLen)
	}
	nameOff := frozenPrefixLen + 4 + frozenFixedLenFor(version)
	if h.end() != uint64(len(data)) {
		return nil, nil, fmt.Errorf("sisap: frozen container is %d bytes, header describes %d", len(data), h.end())
	}
	name := string(data[nameOff : nameOff+h.metricLen])
	secs := make([][]byte, len(h.sec))
	for i, s := range h.sec {
		secs[i] = data[s.off : s.off+s.length : s.off+s.length]
	}
	if err := h.verifySections(secs); err != nil {
		return nil, nil, err
	}
	return buildFrozenIndex(&h, name, secs, db, zeroCopy)
}
