package experiments

import (
	"fmt"
	"io"

	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/sisap"
)

// RecallCurve measures the cost/quality behaviour of the distance-
// permutation index: for a range of scan budgets (fractions of the
// database measured, in permutation order), the fraction of queries whose
// true nearest neighbour was found. This quantifies the paper's framing
// that distance permutations "provide enough information to do an
// efficient search, comparable to LAESA, while consuming much less
// storage", and doubles as the ablation harness for the choice of
// permutation distance (DESIGN.md §6).
type RecallCurve struct {
	N, D, K      int
	Queries      int
	PermDistance sisap.PermDistance
	Budgets      []int     // points measured
	Recall       []float64 // fraction of queries with the true NN found
	// MeanRankOfNN is the average position of the true nearest neighbour
	// in the permutation-ordered scan.
	MeanRankOfNN float64
	// IndexBits is the index's storage cost for context.
	IndexBits int64
}

// RunRecallCurve builds the index over a uniform database and sweeps the
// budget.
func RunRecallCurve(cfg Config, d, k, queries int, pd sisap.PermDistance) *RecallCurve {
	rng := cfg.rng(60_000 + int64(d*1000+k) + int64(pd))
	n := cfg.VectorN
	if n > 20_000 {
		n = 20_000 // the curve's shape stabilises long before table scale
	}
	db := sisap.NewDB(metric.L2{}, dataset.UniformVectors(rng, n, d))
	idx := sisap.NewPermIndex(db, rng.Perm(n)[:k], pd)

	budgets := []int{n / 100, n / 50, n / 20, n / 10, n / 4}
	for i, b := range budgets {
		if b < 1 {
			budgets[i] = 1
		}
	}
	rc := &RecallCurve{
		N: n, D: d, K: k, Queries: queries, PermDistance: pd,
		Budgets:   budgets,
		Recall:    make([]float64, len(budgets)),
		IndexBits: idx.IndexBits(),
	}
	linear := sisap.NewLinearScan(db)
	totalRank := 0
	for qi := 0; qi < queries; qi++ {
		q := dataset.UniformVectors(rng, 1, d)[0]
		want, _ := linear.KNN(q, 1)
		order, _ := idx.ScanOrder(q)
		rank := n // position of the true NN in scan order (1-based)
		for pos, id := range order {
			if id == want[0].ID {
				rank = pos + 1
				break
			}
		}
		totalRank += rank
		for bi, b := range budgets {
			if rank <= b {
				rc.Recall[bi]++
			}
		}
	}
	for bi := range rc.Recall {
		rc.Recall[bi] /= float64(queries)
	}
	rc.MeanRankOfNN = float64(totalRank) / float64(queries)
	return rc
}

// Write renders the curve.
func (rc *RecallCurve) Write(w io.Writer) {
	fmt.Fprintf(w, "Recall curve: distperm(%s), n=%d, d=%d, k=%d, %d queries, index %d bits\n",
		rc.PermDistance, rc.N, rc.D, rc.K, rc.Queries, rc.IndexBits)
	for bi, b := range rc.Budgets {
		fmt.Fprintf(w, "  scan %6d points (%5.1f%%): recall@1 = %.2f\n",
			b, 100*float64(b)/float64(rc.N), rc.Recall[bi])
	}
	fmt.Fprintf(w, "  mean scan position of the true NN: %.1f of %d (%.2f%%)\n",
		rc.MeanRankOfNN, rc.N, 100*rc.MeanRankOfNN/float64(rc.N))
}
