package experiments

import (
	"fmt"
	"io"
	"time"

	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/sisap"
)

// RecallCurve measures the cost/quality behaviour of the distance-
// permutation index: for a range of scan budgets (fractions of the
// database measured, in permutation order), the fraction of queries whose
// true nearest neighbour was found. This quantifies the paper's framing
// that distance permutations "provide enough information to do an
// efficient search, comparable to LAESA, while consuming much less
// storage", and doubles as the ablation harness for the choice of
// permutation distance (DESIGN.md §6).
type RecallCurve struct {
	N, D, K      int
	Queries      int
	PermDistance sisap.PermDistance
	Budgets      []int     // points measured
	Recall       []float64 // fraction of queries with the true NN found
	// MeanRankOfNN is the average position of the true nearest neighbour
	// in the permutation-ordered scan.
	MeanRankOfNN float64
	// IndexBits is the index's storage cost for context.
	IndexBits int64
}

// RunRecallCurve builds the index over a uniform database and sweeps the
// budget.
func RunRecallCurve(cfg Config, d, k, queries int, pd sisap.PermDistance) *RecallCurve {
	rng := cfg.rng(60_000 + int64(d*1000+k) + int64(pd))
	n := cfg.VectorN
	if n > 20_000 {
		n = 20_000 // the curve's shape stabilises long before table scale
	}
	db := sisap.NewDB(metric.L2{}, dataset.UniformVectors(rng, n, d))
	idx := sisap.NewPermIndex(db, rng.Perm(n)[:k], pd)

	budgets := []int{n / 100, n / 50, n / 20, n / 10, n / 4}
	for i, b := range budgets {
		if b < 1 {
			budgets[i] = 1
		}
	}
	rc := &RecallCurve{
		N: n, D: d, K: k, Queries: queries, PermDistance: pd,
		Budgets:   budgets,
		Recall:    make([]float64, len(budgets)),
		IndexBits: idx.IndexBits(),
	}
	linear := sisap.NewLinearScan(db)
	totalRank := 0
	for qi := 0; qi < queries; qi++ {
		q := dataset.UniformVectors(rng, 1, d)[0]
		want, _ := linear.KNN(q, 1)
		order, _ := idx.ScanOrder(q)
		rank := n // position of the true NN in scan order (1-based)
		for pos, id := range order {
			if id == want[0].ID {
				rank = pos + 1
				break
			}
		}
		totalRank += rank
		for bi, b := range budgets {
			if rank <= b {
				rc.Recall[bi]++
			}
		}
	}
	for bi := range rc.Recall {
		rc.Recall[bi] /= float64(queries)
	}
	rc.MeanRankOfNN = float64(totalRank) / float64(queries)
	return rc
}

// ApproxSweep measures the quality/cost trade of the prefix-bucket
// approximate kNN path: for a sweep of nprobe values, the mean recall@K
// against the exact answer, the candidate fraction (share of the database
// measured per query), and the speedup over the exact scan — both the
// deterministic distance-evaluation ratio and the measured wall-time ratio.
// This is the harness behind the approximate-search knob guidance: it shows
// where on the nprobe axis recall saturates while the scan cost is still a
// small fraction of exact.
type ApproxSweep struct {
	N, D, SitesK, K int
	Queries         int
	Clustered       bool
	// PrefixLen and TotalBuckets describe the directory the sweep probed.
	PrefixLen    int
	TotalBuckets int
	NProbe       []int
	// Recall is the mean recall@K vs the exact answer at each nprobe.
	Recall []float64
	// CandidateFraction is the mean share of the database measured.
	CandidateFraction []float64
	// EvalSpeedup is exact distance evaluations over approximate ones
	// (deterministic); TimeSpeedup is the measured wall-time ratio.
	EvalSpeedup []float64
	TimeSpeedup []float64
}

// RunApproxSweep builds a distance-permutation index over a uniform or
// clustered database and sweeps nprobe across the bucket directory.
func RunApproxSweep(cfg Config, d, sitesK, k, queries int, clustered bool) *ApproxSweep {
	rng := cfg.rng(70_000 + int64(d*1000+sitesK) + int64(btoi(clustered)))
	n := cfg.VectorN
	var points []metric.Point
	if clustered {
		points = dataset.ClusteredVectors(rng, n, d, 32, 0.05)
	} else {
		points = dataset.UniformVectors(rng, n, d)
	}
	db := sisap.NewDB(metric.L2{}, points)
	idx := sisap.NewPermIndex(db, rng.Perm(n)[:sitesK], sisap.Footrule)
	nb := idx.ApproxBuckets()

	sweep := []int{1, 2, 4, 8, 16, 32, 64}
	probes := sweep[:0]
	for _, p := range sweep {
		if p < nb {
			probes = append(probes, p)
		}
	}
	probes = append(probes, nb) // full coverage: exact by construction
	as := &ApproxSweep{
		N: n, D: d, SitesK: sitesK, K: k, Queries: queries, Clustered: clustered,
		PrefixLen: idx.PrefixLen(), TotalBuckets: nb,
		NProbe:            probes,
		Recall:            make([]float64, len(probes)),
		CandidateFraction: make([]float64, len(probes)),
		EvalSpeedup:       make([]float64, len(probes)),
		TimeSpeedup:       make([]float64, len(probes)),
	}
	qs := dataset.UniformVectors(rng, queries, d)
	truth := make([][]sisap.Result, queries)
	exactEvals := 0
	exactStart := time.Now()
	for qi, q := range qs {
		var st sisap.Stats
		truth[qi], st = idx.KNN(q, k)
		exactEvals += st.DistanceEvals
	}
	exactTime := time.Since(exactStart)
	for pi, nprobe := range probes {
		evals, cands := 0, 0
		start := time.Now()
		for qi, q := range qs {
			got, st := idx.KNNApprox(q, k, nprobe)
			evals += st.DistanceEvals
			cands += st.Candidates
			hit := 0
			for _, r := range got {
				for _, w := range truth[qi] {
					if r.ID == w.ID {
						hit++
						break
					}
				}
			}
			as.Recall[pi] += float64(hit) / float64(len(truth[qi]))
		}
		elapsed := time.Since(start)
		as.Recall[pi] /= float64(queries)
		as.CandidateFraction[pi] = float64(cands) / float64(queries*n)
		if evals > 0 {
			as.EvalSpeedup[pi] = float64(exactEvals) / float64(evals)
		}
		if elapsed > 0 {
			as.TimeSpeedup[pi] = float64(exactTime) / float64(elapsed)
		}
	}
	return as
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Write renders the sweep.
func (as *ApproxSweep) Write(w io.Writer) {
	shape := "uniform"
	if as.Clustered {
		shape = "clustered"
	}
	fmt.Fprintf(w, "Approx sweep: distperm prefix buckets, %s n=%d, d=%d, sites k=%d, recall@%d over %d queries, ℓ=%d (%d buckets)\n",
		shape, as.N, as.D, as.SitesK, as.K, as.Queries, as.PrefixLen, as.TotalBuckets)
	for pi, p := range as.NProbe {
		fmt.Fprintf(w, "  nprobe %4d: recall@%d = %.3f, candidates %5.1f%%, speedup %5.1f× evals (%.1f× time)\n",
			p, as.K, as.Recall[pi], 100*as.CandidateFraction[pi], as.EvalSpeedup[pi], as.TimeSpeedup[pi])
	}
}

// Write renders the curve.
func (rc *RecallCurve) Write(w io.Writer) {
	fmt.Fprintf(w, "Recall curve: distperm(%s), n=%d, d=%d, k=%d, %d queries, index %d bits\n",
		rc.PermDistance, rc.N, rc.D, rc.K, rc.Queries, rc.IndexBits)
	for bi, b := range rc.Budgets {
		fmt.Fprintf(w, "  scan %6d points (%5.1f%%): recall@1 = %.2f\n",
			b, 100*float64(b)/float64(rc.N), rc.Recall[bi])
	}
	fmt.Fprintf(w, "  mean scan position of the true NN: %.1f of %d (%.2f%%)\n",
		rc.MeanRankOfNN, rc.N, 100*rc.MeanRankOfNN/float64(rc.N))
}
