package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"distperm/internal/core"
	"distperm/internal/dataset"
	"distperm/internal/metric"
)

// Table3Cell is one (metric, d) row fragment of the paper's Table 3: the
// intrinsic dimensionality of the uniform distribution under that metric,
// and mean/max distinct permutation counts over the runs, for each k.
type Table3Cell struct {
	MetricName string
	D          int
	Rho        float64
	Ks         []int
	Mean       []float64
	Max        []int
}

// Table3 is the full Table 3 reproduction.
type Table3 struct {
	Cells   []Table3Cell
	N       int
	Runs    int
	Ks      []int
	MaxDims int
}

// RunTable3 regenerates Table 3: databases of cfg.VectorN points uniform in
// the d-dimensional unit cube, for d = 1..10 under L1, L2, and L∞, counting
// distinct distance permutations for k ∈ {4, 8, 12} random sites, repeated
// cfg.VectorRuns times per cell; mean and max reported. Runs execute in
// parallel across (metric, d) rows.
func RunTable3(cfg Config) *Table3 {
	ks := []int{4, 8, 12}
	metrics := []metric.Metric{metric.L1{}, metric.L2{}, metric.LInf{}}
	const maxD = 10
	t := &Table3{N: cfg.VectorN, Runs: cfg.VectorRuns, Ks: ks, MaxDims: maxD}
	type job struct{ mi, d int }
	jobs := make([]job, 0, len(metrics)*maxD)
	for mi := range metrics {
		for d := 1; d <= maxD; d++ {
			jobs = append(jobs, job{mi, d})
		}
	}
	cells := make([]Table3Cell, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for ji, jb := range jobs {
		wg.Add(1)
		go func(ji int, jb job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m := metrics[jb.mi]
			cells[ji] = runTable3Cell(cfg, m, jb.d, ks, int64(ji))
		}(ji, jb)
	}
	wg.Wait()
	t.Cells = cells
	return t
}

func runTable3Cell(cfg Config, m metric.Metric, d int, ks []int, stream int64) Table3Cell {
	rng := cfg.rng(20_000 + stream)
	cell := Table3Cell{
		MetricName: m.Name(),
		D:          d,
		Ks:         ks,
		Mean:       make([]float64, len(ks)),
		Max:        make([]int, len(ks)),
	}
	// One shared database per run, as in the paper (sites vary per run;
	// the paper redraws sites and, implicitly, data per trial — redrawing
	// data too keeps the max statistic honest).
	var rhoSum float64
	for run := 0; run < cfg.VectorRuns; run++ {
		pts := dataset.UniformVectors(rng, cfg.VectorN, d)
		db := &dataset.Dataset{Name: "uniform", Metric: m, Points: pts}
		rhoSum += dataset.Rho(rng, db, 5_000)
		for ki, k := range ks {
			sites := db.ChooseSites(rng, k)
			c := core.CountDistinct(m, sites, pts)
			cell.Mean[ki] += float64(c)
			if c > cell.Max[ki] {
				cell.Max[ki] = c
			}
		}
	}
	for ki := range ks {
		cell.Mean[ki] /= float64(cfg.VectorRuns)
	}
	cell.Rho = rhoSum / float64(cfg.VectorRuns)
	return cell
}

// Write renders the table in the paper's layout: one block per metric, one
// row per dimension.
func (t *Table3) Write(w io.Writer) {
	fmt.Fprintf(w, "Table 3: Distance permutations for uniform random vectors (n=%d, %d runs)\n", t.N, t.Runs)
	fmt.Fprintf(w, "%-5s %2s %8s |", "metr", "d", "rho")
	for _, k := range t.Ks {
		fmt.Fprintf(w, " mean k=%-8d", k)
	}
	fmt.Fprint(w, "|")
	for _, k := range t.Ks {
		fmt.Fprintf(w, " max k=%-7d", k)
	}
	fmt.Fprintln(w)
	for _, c := range t.Cells {
		fmt.Fprintf(w, "%-5s %2d %8.2f |", c.MetricName, c.D, c.Rho)
		for _, m := range c.Mean {
			fmt.Fprintf(w, " %-13.2f", m)
		}
		fmt.Fprint(w, "|")
		for _, m := range c.Max {
			fmt.Fprintf(w, " %-11d", m)
		}
		fmt.Fprintln(w)
	}
}

// Cell returns the cell for (metricName, d), or nil.
func (t *Table3) Cell(metricName string, d int) *Table3Cell {
	for i := range t.Cells {
		if t.Cells[i].MetricName == metricName && t.Cells[i].D == d {
			return &t.Cells[i]
		}
	}
	return nil
}
