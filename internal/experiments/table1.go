package experiments

import (
	"fmt"
	"io"

	"distperm/internal/counting"
)

// Table1 holds the exact Euclidean permutation counts N_{d,2}(k) of the
// paper's Table 1.
type Table1 struct {
	Dims  []int     // row labels d
	Ks    []int     // column labels k
	Cells [][]int64 // Cells[i][j] = N(Dims[i], Ks[j])
}

// RunTable1 computes Table 1 over the paper's exact ranges d = 1..10,
// k = 2..12.
func RunTable1() *Table1 {
	t := &Table1{}
	for d := 1; d <= 10; d++ {
		t.Dims = append(t.Dims, d)
	}
	for k := 2; k <= 12; k++ {
		t.Ks = append(t.Ks, k)
	}
	for _, d := range t.Dims {
		row := make([]int64, len(t.Ks))
		for j, k := range t.Ks {
			row[j] = counting.EuclideanCount64(d, k)
		}
		t.Cells = append(t.Cells, row)
	}
	return t
}

// Lookup returns N(d,k) from the table, or false if out of range.
func (t *Table1) Lookup(d, k int) (int64, bool) {
	for i, dd := range t.Dims {
		if dd != d {
			continue
		}
		for j, kk := range t.Ks {
			if kk == k {
				return t.Cells[i][j], true
			}
		}
	}
	return 0, false
}

// Write renders the table in the paper's layout.
func (t *Table1) Write(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Number of distance permutations N_{d,2}(k) in Euclidean space")
	fmt.Fprintf(w, "%4s", "d\\k")
	for _, k := range t.Ks {
		fmt.Fprintf(w, "%12d", k)
	}
	fmt.Fprintln(w)
	for i, d := range t.Dims {
		fmt.Fprintf(w, "%4d", d)
		for j := range t.Ks {
			fmt.Fprintf(w, "%12d", t.Cells[i][j])
		}
		fmt.Fprintln(w)
	}
}
