package experiments

import (
	"bytes"
	"strings"
	"testing"

	"distperm/internal/sisap"
)

func TestRecallCurveShape(t *testing.T) {
	cfg := Config{VectorN: 4_000, Seed: 1}
	rc := RunRecallCurve(cfg, 4, 10, 40, sisap.Footrule)
	if len(rc.Recall) != len(rc.Budgets) {
		t.Fatal("malformed curve")
	}
	// Recall is monotone in budget and within [0,1].
	prev := 0.0
	for i, r := range rc.Recall {
		if r < prev {
			t.Errorf("recall not monotone at budget %d", rc.Budgets[i])
		}
		if r < 0 || r > 1 {
			t.Errorf("recall %v out of range", r)
		}
		prev = r
	}
	// At a 25% budget the permutation ordering should nearly always have
	// found the true NN.
	if last := rc.Recall[len(rc.Recall)-1]; last < 0.9 {
		t.Errorf("recall@25%% = %v, want ≥ 0.9", last)
	}
	if rc.MeanRankOfNN < 1 || rc.MeanRankOfNN > float64(rc.N) {
		t.Errorf("mean rank %v out of range", rc.MeanRankOfNN)
	}
	var buf bytes.Buffer
	rc.Write(&buf)
	if !strings.Contains(buf.String(), "recall@1") {
		t.Error("write output malformed")
	}
}

func TestApproxSweepShape(t *testing.T) {
	cfg := Config{VectorN: 4_000, Seed: 3}
	for _, clustered := range []bool{false, true} {
		as := RunApproxSweep(cfg, 4, 10, 10, 30, clustered)
		if len(as.NProbe) == 0 || len(as.Recall) != len(as.NProbe) {
			t.Fatal("malformed sweep")
		}
		prev := -1.0
		for pi, p := range as.NProbe {
			r := as.Recall[pi]
			if r < 0 || r > 1 {
				t.Errorf("clustered=%v nprobe %d: recall %v out of range", clustered, p, r)
			}
			// Monotone in nprobe: a superset of buckets can only improve the
			// candidate set (tiny float tolerance for the mean).
			if r < prev-1e-9 {
				t.Errorf("clustered=%v: recall dropped from %v to %v at nprobe %d",
					clustered, prev, r, p)
			}
			prev = r
			if f := as.CandidateFraction[pi]; f <= 0 || f > 1 {
				t.Errorf("clustered=%v nprobe %d: candidate fraction %v", clustered, p, f)
			}
		}
		// The last probe count covers the whole directory: exact answer.
		if last := as.Recall[len(as.Recall)-1]; last != 1 {
			t.Errorf("clustered=%v: full-coverage recall %v, want 1", clustered, last)
		}
		var buf bytes.Buffer
		as.Write(&buf)
		if !strings.Contains(buf.String(), "nprobe") {
			t.Error("sweep output malformed")
		}
	}
}

func TestRecallCurveAblation(t *testing.T) {
	// All three permutation distances must produce usable orderings; the
	// footrule and rho orderings are typically very close, tau close
	// behind (this is the DESIGN.md §6 ablation as a test).
	cfg := Config{VectorN: 3_000, Seed: 2}
	for _, pd := range []sisap.PermDistance{sisap.Footrule, sisap.KendallTau, sisap.SpearmanRho} {
		rc := RunRecallCurve(cfg, 3, 8, 30, pd)
		if rc.MeanRankOfNN > float64(rc.N)/4 {
			t.Errorf("%s: mean NN rank %v of %d — ordering uninformative",
				pd, rc.MeanRankOfNN, rc.N)
		}
	}
}
