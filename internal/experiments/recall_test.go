package experiments

import (
	"bytes"
	"strings"
	"testing"

	"distperm/internal/sisap"
)

func TestRecallCurveShape(t *testing.T) {
	cfg := Config{VectorN: 4_000, Seed: 1}
	rc := RunRecallCurve(cfg, 4, 10, 40, sisap.Footrule)
	if len(rc.Recall) != len(rc.Budgets) {
		t.Fatal("malformed curve")
	}
	// Recall is monotone in budget and within [0,1].
	prev := 0.0
	for i, r := range rc.Recall {
		if r < prev {
			t.Errorf("recall not monotone at budget %d", rc.Budgets[i])
		}
		if r < 0 || r > 1 {
			t.Errorf("recall %v out of range", r)
		}
		prev = r
	}
	// At a 25% budget the permutation ordering should nearly always have
	// found the true NN.
	if last := rc.Recall[len(rc.Recall)-1]; last < 0.9 {
		t.Errorf("recall@25%% = %v, want ≥ 0.9", last)
	}
	if rc.MeanRankOfNN < 1 || rc.MeanRankOfNN > float64(rc.N) {
		t.Errorf("mean rank %v out of range", rc.MeanRankOfNN)
	}
	var buf bytes.Buffer
	rc.Write(&buf)
	if !strings.Contains(buf.String(), "recall@1") {
		t.Error("write output malformed")
	}
}

func TestRecallCurveAblation(t *testing.T) {
	// All three permutation distances must produce usable orderings; the
	// footrule and rho orderings are typically very close, tau close
	// behind (this is the DESIGN.md §6 ablation as a test).
	cfg := Config{VectorN: 3_000, Seed: 2}
	for _, pd := range []sisap.PermDistance{sisap.Footrule, sisap.KendallTau, sisap.SpearmanRho} {
		rc := RunRecallCurve(cfg, 3, 8, 30, pd)
		if rc.MeanRankOfNN > float64(rc.N)/4 {
			t.Errorf("%s: mean NN rank %v of %d — ordering uninformative",
				pd, rc.MeanRankOfNN, rc.N)
		}
	}
}
