package experiments

import (
	"fmt"
	"io"

	"distperm/internal/counting"
	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/sisap"
)

// SiteSweep tests the paper's closing §4 observation operationally: "once
// we have about twice as many sites as dimensions, there is little value in
// adding more sites; the distance permutation contains little more
// information". For a fixed database it sweeps the number of sites k and
// reports, per k, the index cost in bits per point, the fraction of a full
// permutation's information the Euclidean geometry allows (Corollary 8),
// and the search quality (mean permutation-scan position of the true
// nearest neighbour). Quality gains should flatten near k ≈ 2d while cost
// keeps rising.
type SiteSweep struct {
	N, D    int
	Ks      []int
	BitsPer []float64 // index bits per point
	InfoRat []float64 // lg N(d,k) / lg k!
	NNRank  []float64 // mean scan position of the true NN
}

// RunSiteSweep sweeps k over a uniform d-dimensional database.
func RunSiteSweep(cfg Config, d int, ks []int, queries int) *SiteSweep {
	rng := cfg.rng(70_000 + int64(d))
	n := cfg.VectorN
	if n > 10_000 {
		n = 10_000
	}
	db := sisap.NewDB(metric.L2{}, dataset.UniformVectors(rng, n, d))
	linear := sisap.NewLinearScan(db)
	queryPts := dataset.UniformVectors(rng, queries, d)
	truth := make([]int, queries)
	for i, q := range queryPts {
		want, _ := linear.KNN(q, 1)
		truth[i] = want[0].ID
	}

	s := &SiteSweep{N: n, D: d, Ks: ks}
	for _, k := range ks {
		idx := sisap.NewPermIndex(db, rng.Perm(n)[:k], sisap.Footrule)
		total := 0
		for i, q := range queryPts {
			order, _ := idx.ScanOrder(q)
			for pos, id := range order {
				if id == truth[i] {
					total += pos + 1
					break
				}
			}
		}
		s.BitsPer = append(s.BitsPer, float64(idx.IndexBits())/float64(n))
		s.InfoRat = append(s.InfoRat, counting.InformationRatio(d, k))
		s.NNRank = append(s.NNRank, float64(total)/float64(queries))
	}
	return s
}

// Write renders the sweep.
func (s *SiteSweep) Write(w io.Writer) {
	fmt.Fprintf(w, "Site sweep: n=%d uniform %d-d points, L2 (paper §4: little value past k ≈ 2d = %d)\n",
		s.N, s.D, 2*s.D)
	fmt.Fprintf(w, "%4s %12s %10s %14s\n", "k", "bits/point", "info", "mean NN rank")
	for i, k := range s.Ks {
		fmt.Fprintf(w, "%4d %12.1f %10.3f %14.1f\n", k, s.BitsPer[i], s.InfoRat[i], s.NNRank[i])
	}
}
