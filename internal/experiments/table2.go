package experiments

import (
	"fmt"
	"io"
	"sync"

	"distperm/internal/core"
	"distperm/internal/dataset"
)

// Table2Row is one database's row of the paper's Table 2: the database
// size, intrinsic dimensionality ρ, and the number of distinct distance
// permutations observed for each site count k.
type Table2Row struct {
	Database string
	N        int
	Rho      float64
	Ks       []int
	Counts   []int
}

// Table2 is the full Table 2 reproduction.
type Table2 struct {
	Rows []Table2Row
	Ks   []int
}

// RunTable2 regenerates Table 2 on the synthetic SISAP-analogue suite:
// for each database, choose k random sites (k = 3..12) and count the
// distinct distance permutations over all database points.
func RunTable2(cfg Config) *Table2 {
	var sizes dataset.Sizes
	if cfg.SISAPScale <= 1 {
		sizes = dataset.PaperSizes()
	} else {
		sizes = dataset.ScaledSizes(cfg.SISAPScale)
	}
	suite := dataset.SISAPSuite(sizes)
	ks := make([]int, 0, 10)
	for k := 3; k <= 12; k++ {
		ks = append(ks, k)
	}
	t := &Table2{Ks: ks, Rows: make([]Table2Row, len(suite))}
	var wg sync.WaitGroup
	for di, db := range suite {
		wg.Add(1)
		go func(di int, db *dataset.Dataset) {
			defer wg.Done()
			rng := cfg.rng(10_000 + int64(di))
			// 2000 sampled pairs estimate ρ to well under the precision
			// the table needs; edit distance on long gene strings makes
			// larger samples disproportionately expensive.
			row := Table2Row{
				Database: db.Name,
				N:        db.N(),
				Rho:      dataset.Rho(rng, db, 2_000),
				Ks:       ks,
			}
			for _, k := range ks {
				sites := db.ChooseSites(rng, k)
				row.Counts = append(row.Counts, core.CountDistinct(db.Metric, sites, db.Points))
			}
			t.Rows[di] = row
		}(di, db)
	}
	wg.Wait()
	return t
}

// Write renders the table in the paper's layout.
func (t *Table2) Write(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Number of distance permutations for the SISAP-analogue databases")
	fmt.Fprintf(w, "%-10s %8s %8s", "Database", "n", "rho")
	for _, k := range t.Ks {
		fmt.Fprintf(w, " k=%-6d", k)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-10s %8d %8.3f", r.Database, r.N, r.Rho)
		for _, c := range r.Counts {
			fmt.Fprintf(w, " %-8d", c)
		}
		fmt.Fprintln(w)
	}
}
