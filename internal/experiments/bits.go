package experiments

import (
	"fmt"
	"io"

	"distperm/internal/counting"
)

// StorageTable is the Corollary 8 / §4 storage analysis: per-point index
// bits under the three encodings, and the information ratio showing the
// diminishing value of sites beyond k ≈ 2d.
type StorageTable struct {
	D    int
	Rows []counting.StorageBits
	// Ratio[i] = lg N(d, k_i) / lg k_i! for the same ks as Rows.
	Ratio []float64
}

// RunStorageTable computes the analysis for dimension d over k = 2..kMax.
func RunStorageTable(d, kMax int) *StorageTable {
	t := &StorageTable{D: d}
	for k := 2; k <= kMax; k++ {
		t.Rows = append(t.Rows, counting.Storage(d, k))
		t.Ratio = append(t.Ratio, counting.InformationRatio(d, k))
	}
	return t
}

// Write renders the analysis.
func (t *StorageTable) Write(w io.Writer) {
	fmt.Fprintf(w, "Storage analysis (Corollary 8), d=%d: bits per distance permutation\n", t.D)
	fmt.Fprintf(w, "%4s %12s %12s %12s %14s %8s\n",
		"k", "lg k!", "lg N(d,k)", "tree", "LAESA(64k)", "info")
	for i, r := range t.Rows {
		fmt.Fprintf(w, "%4d %12d %12d %12d %14d %8.3f\n",
			r.K, r.FullPerm, r.Euclidean, r.TreeMetric, r.NaiveDistances, t.Ratio[i])
	}
	fmt.Fprintf(w, "  saturation: all k! permutations realisable up to k = d+1 = %d (Theorem 6); first constrained k = %d\n",
		t.D+1, counting.SaturationK(t.D))
}
