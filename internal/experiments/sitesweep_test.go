package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSiteSweepShape(t *testing.T) {
	cfg := Config{VectorN: 4_000, Seed: 1}
	ks := []int{2, 4, 8, 16}
	s := RunSiteSweep(cfg, 4, ks, 25)
	if len(s.NNRank) != len(ks) {
		t.Fatal("malformed sweep")
	}
	// Cost must rise monotonically with k.
	for i := 1; i < len(ks); i++ {
		if s.BitsPer[i] < s.BitsPer[i-1] {
			t.Errorf("bits/point fell from k=%d to k=%d", ks[i-1], ks[i])
		}
	}
	// Quality: k=8 (= 2d) must be far better than k=2; k=16 must not be
	// dramatically better than k=8 (the paper's diminishing returns).
	if s.NNRank[2] >= s.NNRank[0] {
		t.Errorf("k=8 rank %v should beat k=2 rank %v", s.NNRank[2], s.NNRank[0])
	}
	gainEarly := s.NNRank[0] - s.NNRank[2] // k=2 -> k=8
	gainLate := s.NNRank[2] - s.NNRank[3]  // k=8 -> k=16
	if gainLate > gainEarly {
		t.Errorf("late gain %v exceeds early gain %v — diminishing returns violated",
			gainLate, gainEarly)
	}
	// Information ratio is 1 through k = d+1 and below 1 at 2d+2.
	if s.InfoRat[0] != 1 {
		t.Errorf("info ratio at k=2 should be 1 (k ≤ d+1), got %v", s.InfoRat[0])
	}
	if s.InfoRat[3] >= 1 {
		t.Errorf("info ratio at k=16 should be < 1, got %v", s.InfoRat[3])
	}
	var buf bytes.Buffer
	s.Write(&buf)
	if !strings.Contains(buf.String(), "Site sweep") {
		t.Error("write output malformed")
	}
}
