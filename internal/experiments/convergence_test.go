package experiments

import (
	"bytes"
	"strings"
	"testing"

	"distperm/internal/metric"
)

func TestConvergenceMonotoneAndBounded(t *testing.T) {
	cfg := Config{Seed: 1}
	c := RunConvergence(cfg, metric.L2{}, 2, 5, []int{100, 1_000, 10_000, 50_000})
	if len(c.Counts) != 4 {
		t.Fatalf("counts = %d", len(c.Counts))
	}
	for i := 1; i < len(c.Counts); i++ {
		if c.Counts[i] < c.Counts[i-1] {
			t.Error("incremental series must be non-decreasing")
		}
	}
	last := c.Counts[len(c.Counts)-1]
	if int64(last) > c.TheoreticalN {
		t.Errorf("count %d exceeds N(2,5) = %d", last, c.TheoreticalN)
	}
	if c.Exact2D == 0 {
		t.Error("d=2 L2 run should compute the exact arrangement count")
	}
	if last > c.Exact2D {
		t.Errorf("count %d exceeds exact plane cells %d", last, c.Exact2D)
	}
	if c.Occupancy < 1 {
		t.Errorf("occupancy %v < 1", c.Occupancy)
	}
	var buf bytes.Buffer
	c.Write(&buf)
	if !strings.Contains(buf.String(), "Convergence") {
		t.Error("write output malformed")
	}
}

func TestConvergenceSaturates(t *testing.T) {
	// In 2-d with k=4 the ceiling is at most 18; by n = 50k the count
	// must have stopped growing (the paper's justification for sub-10^6
	// runs).
	cfg := Config{Seed: 2}
	c := RunConvergence(cfg, metric.L2{}, 2, 4, []int{10_000, 50_000, 100_000})
	if c.Counts[2] != c.Counts[1] {
		t.Errorf("count still growing at n=10^5: %v", c.Counts)
	}
}

func TestConvergenceNonEuclidean(t *testing.T) {
	cfg := Config{Seed: 3}
	c := RunConvergence(cfg, metric.L1{}, 3, 4, []int{1_000, 5_000})
	if c.Exact2D != 0 {
		t.Error("exact cells only defined for 2-d L2")
	}
	if c.Counts[1] > 24 {
		t.Errorf("k=4 count %d exceeds 4!", c.Counts[1])
	}
}
