package experiments

import (
	"fmt"
	"io"

	"distperm/internal/core"
	"distperm/internal/counting"
	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/voronoi"
)

// PaperCounterexampleSites returns the five sites of the paper's Eq. (12):
// the explicit configuration in three-dimensional L1 space for which the
// paper's experiment observed 108 > 96 = N_{3,2}(5) distinct distance
// permutations, disproving the conjecture that the Euclidean maximum bounds
// every Lp metric.
func PaperCounterexampleSites() []metric.Point {
	return []metric.Point{
		metric.Vector{0.205281, 0.621547, 0.332507},
		metric.Vector{0.053421, 0.344351, 0.260859},
		metric.Vector{0.418166, 0.207143, 0.119789},
		metric.Vector{0.735218, 0.653301, 0.650154},
		metric.Vector{0.527133, 0.814207, 0.704307},
	}
}

// Counterexample reports the reproduction of the paper's §5 counterexample.
type Counterexample struct {
	MetricName    string
	D, K          int
	N             int
	Observed      int
	EuclideanMax  int64
	ExceedsL2Max  bool
	FactorialMax  int64
	TheoremBound9 string // the (loose) Theorem 9 bound, for context
	// RefinedCells, when non-zero, is the octree-refined lower bound on
	// the number of cells meeting the unit cube (RunCounterexampleRefined)
	// — the answer to the paper's remark that "even more than 108
	// permutations may exist because the experiment only counted
	// permutations represented in the database".
	RefinedCells int
}

// RunCounterexample counts the distinct permutations of cfg.VectorN uniform
// unit-cube points against the Eq. (12) sites under L1. Any count above 96
// reproduces the refutation; the paper saw 108 with its particular 10^6
// points.
func RunCounterexample(cfg Config) *Counterexample {
	sites := PaperCounterexampleSites()
	rng := cfg.rng(40_000)
	pts := dataset.UniformVectors(rng, cfg.VectorN, 3)
	observed := core.ParallelCount(metric.L1{}, sites, pts)
	return &Counterexample{
		MetricName:    "L1",
		D:             3,
		K:             5,
		N:             cfg.VectorN,
		Observed:      observed,
		EuclideanMax:  counting.EuclideanCount64(3, 5),
		ExceedsL2Max:  int64(observed) > counting.EuclideanCount64(3, 5),
		FactorialMax:  120,
		TheoremBound9: counting.L1Bound(3, 5).String(),
	}
}

// RunCounterexampleRefined augments RunCounterexample with an octree-
// refined cell count of the unit cube for the Eq. (12) sites. At
// initial = 10, depth = 6 the refinement finds 116 cells — strictly more
// than both the paper's database-observed 108 and any database count here,
// confirming and quantifying the paper's "more than 108 may exist".
func RunCounterexampleRefined(cfg Config, initial, depth int) *Counterexample {
	c := RunCounterexample(cfg)
	c.RefinedCells = voronoi.AdaptiveCountBox(metric.L1{}, PaperCounterexampleSites(),
		metric.Vector{0, 0, 0}, metric.Vector{1, 1, 1}, initial, depth)
	return c
}

// CounterexampleSearch reruns the paper's *discovery* process rather than
// its artifact: draw random site sets in d-dimensional Lp space, count
// permutations over a uniform database, and report the best configuration
// found and whether it beats the Euclidean maximum. The paper reports
// successes for (L1, d=3, k=5), (L1, d=3, k=6), (L∞, d=3, k=5), and
// (L1, d=4, k=6).
type CounterexampleSearch struct {
	MetricName   string
	D, K         int
	Trials       int
	BestCount    int
	BestSites    []metric.Point
	EuclideanMax int64
	Beaten       bool
}

// RunCounterexampleSearch performs the randomized search.
func RunCounterexampleSearch(cfg Config, m metric.Metric, d, k, trials int) *CounterexampleSearch {
	rng := cfg.rng(41_000 + int64(d*100+k))
	pts := dataset.UniformVectors(rng, cfg.VectorN, d)
	res := &CounterexampleSearch{
		MetricName:   m.Name(),
		D:            d,
		K:            k,
		Trials:       trials,
		EuclideanMax: counting.EuclideanCount64(d, k),
	}
	for t := 0; t < trials; t++ {
		sites := make([]metric.Point, k)
		for i := range sites {
			v := make(metric.Vector, d)
			for j := range v {
				v[j] = rng.Float64()
			}
			sites[i] = v
		}
		c := core.CountDistinct(m, sites, pts)
		if c > res.BestCount {
			res.BestCount = c
			res.BestSites = sites
		}
	}
	res.Beaten = int64(res.BestCount) > res.EuclideanMax
	return res
}

// Write renders the counterexample report.
func (c *Counterexample) Write(w io.Writer) {
	fmt.Fprintf(w, "Counterexample (paper Eq. 12): %d sites in %d-dim %s, n=%d uniform points\n",
		c.K, c.D, c.MetricName, c.N)
	fmt.Fprintf(w, "  observed %d distinct permutations; Euclidean max N(%d,%d)=%d; k!=%d\n",
		c.Observed, c.D, c.K, c.EuclideanMax, c.FactorialMax)
	if c.ExceedsL2Max {
		fmt.Fprintln(w, "  REFUTED: N_{d,p}(k) <= N_{d,2}(k) is false (matches the paper).")
	} else {
		fmt.Fprintln(w, "  below the Euclidean max at this database size; increase -n (the paper used 10^6).")
	}
	if c.RefinedCells > 0 {
		fmt.Fprintf(w, "  octree-refined unit-cube cell count: %d (paper observed 108 and noted more may exist)\n",
			c.RefinedCells)
	}
}

// Write renders the search report.
func (s *CounterexampleSearch) Write(w io.Writer) {
	fmt.Fprintf(w, "Counterexample search: %s, d=%d, k=%d, %d trials: best %d (Euclidean max %d)",
		s.MetricName, s.D, s.K, s.Trials, s.BestCount, s.EuclideanMax)
	if s.Beaten {
		fmt.Fprint(w, " — EXCEEDED")
	}
	fmt.Fprintln(w)
	if s.Beaten {
		for _, st := range s.BestSites {
			v := st.(metric.Vector)
			parts := make([]string, len(v))
			for i, x := range v {
				parts[i] = fmt.Sprintf("%.6f", x)
			}
			fmt.Fprintf(w, "    site ⟨%s⟩\n", join(parts, ", "))
		}
	}
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
