package experiments

import (
	"fmt"
	"io"

	"distperm/internal/core"
	"distperm/internal/counting"
	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/voronoi"
)

// Convergence measures how the observed distinct-permutation count grows
// with database size toward its ceiling — the justification for running
// Tables 2–3 below the paper's 10^6 points (see EXPERIMENTS.md "Scaling
// notes"), and a quantitative companion to Figure 7: the count saturates at
// the number of cells intersecting the data region, typically long before
// the database stops growing.
type Convergence struct {
	D, K       int
	MetricName string
	Sizes      []int
	Counts     []int
	// Exact2D is the exact whole-plane cell count (arrangement-based) when
	// d = 2 under L2, else 0.
	Exact2D int
	// TheoreticalN is the Theorem 7 value N(d,k).
	TheoreticalN int64
	// Occupancy is the mean number of database points per observed
	// permutation at the largest size — the paper's "average of about 10
	// database points per permutation" style statistic.
	Occupancy float64
}

// RunConvergence samples uniform unit-cube databases of growing size under
// m and counts distinct permutations against one fixed random site draw.
func RunConvergence(cfg Config, m metric.Metric, d, k int, sizes []int) *Convergence {
	rng := cfg.rng(50_000 + int64(d*100+k))
	c := &Convergence{
		D: d, K: k, MetricName: m.Name(),
		TheoreticalN: counting.EuclideanCount64(d, k),
	}
	sites := make([]metric.Point, k)
	for i := range sites {
		v := make(metric.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		sites[i] = v
	}
	if d == 2 {
		if _, isL2 := m.(metric.L2); isL2 {
			c.Exact2D = voronoi.ExactEuclideanCells2D(sites)
		}
	}
	counter := core.NewCounter(m, sites)
	generated := 0
	for _, n := range sizes {
		// Grow the same database incrementally so the series is
		// monotone by construction, as it would be for one database.
		pts := dataset.UniformVectors(rng, n-generated, d)
		counter.AddAll(pts)
		generated = n
		c.Sizes = append(c.Sizes, n)
		c.Counts = append(c.Counts, counter.Distinct())
	}
	if counter.Distinct() > 0 {
		c.Occupancy = float64(counter.Total()) / float64(counter.Distinct())
	}
	return c
}

// Write renders the series.
func (c *Convergence) Write(w io.Writer) {
	fmt.Fprintf(w, "Convergence: %s, d=%d, k=%d (N(d,k)=%d", c.MetricName, c.D, c.K, c.TheoreticalN)
	if c.Exact2D > 0 {
		fmt.Fprintf(w, "; exact plane cells=%d", c.Exact2D)
	}
	fmt.Fprintln(w, ")")
	for i, n := range c.Sizes {
		fmt.Fprintf(w, "  n=%-9d distinct=%d\n", n, c.Counts[i])
	}
	fmt.Fprintf(w, "  mean points per observed permutation: %.1f\n", c.Occupancy)
}
