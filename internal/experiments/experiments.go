// Package experiments regenerates every table and figure in the paper's
// evaluation, writing the same rows/series the paper reports. Each
// experiment takes a Config so the command-line tools can run at paper scale
// while tests and benchmarks run scaled down; EXPERIMENTS.md records the
// paper-vs-measured comparison produced by these functions.
package experiments

import (
	"math/rand"
)

// Config scales the experiment workloads.
type Config struct {
	// VectorN is the database size for the Table 3 uniform-vector runs
	// (paper: 1e6).
	VectorN int
	// VectorRuns is the number of random site draws per (metric, d, k)
	// cell (paper: 100).
	VectorRuns int
	// SISAPScale divides the Table 2 database sizes (1 = paper scale).
	SISAPScale int
	// GridSide is the sampling resolution per axis for the figure
	// rasterisations.
	GridSide int
	// Seed makes every run deterministic.
	Seed int64
}

// PaperScale reproduces the paper's workload sizes. Expect minutes to hours
// of CPU for Table 3.
func PaperScale() Config {
	return Config{VectorN: 1_000_000, VectorRuns: 100, SISAPScale: 1, GridSide: 1500, Seed: 1}
}

// DefaultScale balances fidelity and runtime (a few minutes for the full
// suite): permutation counts saturate in n long before 1e6 for the small
// d·k cells, and mean/max statistics stabilise well below 100 runs.
func DefaultScale() Config {
	return Config{VectorN: 200_000, VectorRuns: 10, SISAPScale: 8, GridSide: 900, Seed: 1}
}

// TestScale keeps every experiment under a second or two for unit tests and
// testing.B iterations.
func TestScale() Config {
	return Config{VectorN: 20_000, VectorRuns: 3, SISAPScale: 100, GridSide: 300, Seed: 1}
}

func (c Config) rng(stream int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1_000_003 + stream))
}
