package experiments

import (
	"bytes"
	"strings"
	"testing"

	"distperm/internal/counting"
	"distperm/internal/metric"
)

func TestTable1MatchesPaperSpotValues(t *testing.T) {
	tab := RunTable1()
	spot := []struct {
		d, k int
		want int64
	}{
		{1, 2, 2}, {1, 12, 67}, {2, 4, 18}, {3, 5, 96}, {4, 12, 392085},
		{7, 12, 62364908}, {10, 12, 439084800}, {10, 8, 40320},
	}
	for _, s := range spot {
		got, ok := tab.Lookup(s.d, s.k)
		if !ok {
			t.Fatalf("missing cell (%d,%d)", s.d, s.k)
		}
		if got != s.want {
			t.Errorf("Table1(%d,%d) = %d, want %d", s.d, s.k, got, s.want)
		}
	}
	if _, ok := tab.Lookup(99, 2); ok {
		t.Error("out-of-range lookup should fail")
	}
}

func TestTable1Write(t *testing.T) {
	var buf bytes.Buffer
	RunTable1().Write(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "439084800", "d\\k"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 12 { // header + title + 10 rows
		t.Errorf("output has %d lines", lines)
	}
}

func TestTable2TinyScale(t *testing.T) {
	cfg := TestScale()
	cfg.SISAPScale = 400
	tab := RunTable2(cfg)
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row.N == 0 {
			t.Errorf("%s: empty database", row.Database)
		}
		if row.Rho <= 0 {
			t.Errorf("%s: rho = %v", row.Database, row.Rho)
		}
		if len(row.Counts) != len(tab.Ks) {
			t.Fatalf("%s: %d counts", row.Database, len(row.Counts))
		}
		for i, c := range row.Counts {
			k := tab.Ks[i]
			if c < 1 || c > row.N {
				t.Errorf("%s k=%d: count %d outside [1,n]", row.Database, k, c)
			}
			kfact := 1
			for j := 2; j <= k; j++ {
				kfact *= j
			}
			if c > kfact {
				t.Errorf("%s k=%d: count %d exceeds k!", row.Database, k, c)
			}
		}
	}
	var buf bytes.Buffer
	tab.Write(&buf)
	if !strings.Contains(buf.String(), "listeria") {
		t.Error("write output missing databases")
	}
}

func TestTable2QualitativeShape(t *testing.T) {
	// The paper's headline: permutation counts are far below both k! and
	// often below n. Check the k=12 column at small scale: every database
	// must realise far fewer than min(n, 12!) permutations.
	cfg := TestScale()
	cfg.SISAPScale = 200
	tab := RunTable2(cfg)
	last := len(tab.Ks) - 1
	// At this tiny scale only the structurally degenerate databases show
	// compression at k=12 (dictionaries need the paper's n ≈ 10^5 before
	// n outruns the reachable permutation count — see EXPERIMENTS.md);
	// listeria, long, and colors must compress at any scale, as in the
	// paper's Table 2.
	for _, row := range tab.Rows {
		switch row.Database {
		case "listeria", "long", "colors":
			if float64(row.Counts[last]) > 0.6*float64(row.N) {
				t.Errorf("%s: %d of %d points have distinct permutations; expected compression",
					row.Database, row.Counts[last], row.N)
			}
		}
	}
	// listeria must be among the most degenerate (lowest counts), as in
	// the paper.
	byName := map[string]Table2Row{}
	for _, r := range tab.Rows {
		byName[r.Database] = r
	}
	if byName["listeria"].Counts[last] >= byName["Dutch"].Counts[last] {
		t.Errorf("listeria (%d) should realise fewer permutations than Dutch (%d)",
			byName["listeria"].Counts[last], byName["Dutch"].Counts[last])
	}
}

func TestTable3TinyScale(t *testing.T) {
	cfg := Config{VectorN: 3_000, VectorRuns: 2, SISAPScale: 100, GridSide: 100, Seed: 1}
	tab := RunTable3(cfg)
	if len(tab.Cells) != 30 { // 3 metrics × 10 dims
		t.Fatalf("cells = %d, want 30", len(tab.Cells))
	}
	for _, c := range tab.Cells {
		for ki, k := range c.Ks {
			if c.Max[ki] < int(c.Mean[ki]) {
				t.Errorf("%s d=%d k=%d: max %d below mean %v", c.MetricName, c.D, k, c.Max[ki], c.Mean[ki])
			}
			kfact := 1
			for j := 2; j <= k; j++ {
				kfact *= j
			}
			if c.Max[ki] > kfact || c.Max[ki] > cfg.VectorN {
				t.Errorf("%s d=%d k=%d: max %d out of range", c.MetricName, c.D, k, c.Max[ki])
			}
		}
	}
	// d=1 exactness: in one dimension all Lp metrics coincide and the
	// count is bounded by C(k,2)+1; at n=3000 the k=4 bound of 7 is
	// always achieved.
	for _, name := range []string{"L1", "L2", "Linf"} {
		c := tab.Cell(name, 1)
		if c == nil {
			t.Fatalf("missing cell %s d=1", name)
		}
		if c.Max[0] != 7 {
			t.Errorf("%s d=1 k=4: max %d, want 7 = C(4,2)+1", name, c.Max[0])
		}
	}
	// Counts grow with dimension for fixed k (paper's Table 3 trend).
	for _, name := range []string{"L1", "L2", "Linf"} {
		lo, hi := tab.Cell(name, 1), tab.Cell(name, 6)
		if hi.Mean[1] <= lo.Mean[1] {
			t.Errorf("%s: mean count should grow from d=1 to d=6", name)
		}
	}
	var buf bytes.Buffer
	tab.Write(&buf)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("write output malformed")
	}
}

func TestFigureVoronoi(t *testing.T) {
	f := RunFigureVoronoi(Config{GridSide: 700, Seed: 1})
	if f.Order1Cells != 4 {
		t.Errorf("Fig 1 cells = %d, want 4", f.Order1Cells)
	}
	if f.L2PermCells != 18 {
		t.Errorf("Fig 3 cells = %d, want 18", f.L2PermCells)
	}
	if f.L1PermCells != 18 {
		t.Errorf("Fig 4 cells = %d, want 18", f.L1PermCells)
	}
	if f.OnlyL1 == 0 || f.OnlyL2 == 0 {
		t.Error("L1 and L2 should each realise an exclusive permutation")
	}
	if f.Order2Cells <= f.Order1Cells {
		t.Error("order-2 diagram should refine order-1")
	}
	var buf bytes.Buffer
	f.Write(&buf)
	if !strings.Contains(buf.String(), "Fig 3") {
		t.Error("write output malformed")
	}
}

func TestFigurePrefix(t *testing.T) {
	f := RunFigurePrefix()
	if !f.TrieOK {
		t.Error("prefix distances must match trie path lengths")
	}
	if len(f.Words) == 0 || len(f.Distances) != len(f.Words) {
		t.Error("distance matrix malformed")
	}
	// Symmetry and zero diagonal.
	for i := range f.Distances {
		if f.Distances[i][i] != 0 {
			t.Error("nonzero diagonal")
		}
		for j := range f.Distances {
			if f.Distances[i][j] != f.Distances[j][i] {
				t.Error("asymmetric matrix")
			}
		}
	}
}

func TestFigureConstruction(t *testing.T) {
	for _, p := range []float64{1, 2} {
		f := RunFigureConstruction(4, p)
		if f.VerifyErr != nil {
			t.Errorf("p=%v: %v", p, f.VerifyErr)
		}
		if f.Witnesses != 24 {
			t.Errorf("p=%v: witnesses = %d", p, f.Witnesses)
		}
	}
}

func TestFigureCoverage(t *testing.T) {
	f := RunFigureCoverage(Config{VectorN: 10_000, GridSide: 400, Seed: 1})
	if f.BoxCells > f.PlaneCells {
		t.Errorf("box cells %d exceed plane cells %d", f.BoxCells, f.PlaneCells)
	}
	if int64(f.PlaneCells) > f.TheoreticalN {
		t.Errorf("plane cells %d exceed N(2,%d)=%d", f.PlaneCells, f.K, f.TheoreticalN)
	}
	last := f.ObservedCounts[len(f.ObservedCounts)-1]
	if last > f.BoxCells {
		t.Errorf("observed %d exceeds box-limited cells %d", last, f.BoxCells)
	}
	// Counts must be non-decreasing in database size.
	for i := 1; i < len(f.ObservedCounts); i++ {
		if f.ObservedCounts[i] < f.ObservedCounts[i-1] {
			t.Error("counts should be non-decreasing in n")
		}
	}
}

func TestCounterexampleReproduces(t *testing.T) {
	// At 300k points the Eq. 12 configuration already exceeds the
	// Euclidean bound of 96 (the paper's 10^6 points found 108).
	c := RunCounterexample(Config{VectorN: 300_000, Seed: 1})
	if !c.ExceedsL2Max {
		t.Errorf("observed %d permutations; expected > %d", c.Observed, c.EuclideanMax)
	}
	if c.Observed > 120 {
		t.Errorf("observed %d exceeds 5! = 120", c.Observed)
	}
	var buf bytes.Buffer
	c.Write(&buf)
	if !strings.Contains(buf.String(), "REFUTED") {
		t.Error("report should declare the refutation")
	}
}

func TestCounterexampleSearchRuns(t *testing.T) {
	s := RunCounterexampleSearch(Config{VectorN: 5_000, Seed: 2}, metric.L1{}, 2, 3, 5)
	if s.BestCount < 1 || int64(s.BestCount) > counting.EuclideanCount64(2, 3) {
		// In 2-d L1 with k=3 the Euclidean bound happens to hold
		// empirically at this scale; mostly we check plumbing.
		t.Errorf("best count %d out of range", s.BestCount)
	}
	if s.BestSites == nil {
		t.Error("search should record the best sites")
	}
}

func TestStorageTable(t *testing.T) {
	tab := RunStorageTable(4, 12)
	if len(tab.Rows) != 11 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		if r.Euclidean > r.FullPerm {
			t.Errorf("k=%d: Euclidean bits exceed full-perm bits", r.K)
		}
		if tab.Ratio[i] <= 0 || tab.Ratio[i] > 1 {
			t.Errorf("k=%d: ratio %v", r.K, tab.Ratio[i])
		}
	}
	var buf bytes.Buffer
	tab.Write(&buf)
	if !strings.Contains(buf.String(), "saturation") {
		t.Error("write output malformed")
	}
}

func TestConfigScales(t *testing.T) {
	if p := PaperScale(); p.VectorN != 1_000_000 || p.VectorRuns != 100 || p.SISAPScale != 1 {
		t.Error("PaperScale should match the paper's workload")
	}
	if d := DefaultScale(); d.VectorN >= PaperScale().VectorN {
		t.Error("DefaultScale should be smaller than paper scale")
	}
	if ts := TestScale(); ts.VectorN >= DefaultScale().VectorN {
		t.Error("TestScale should be smaller than default")
	}
}
