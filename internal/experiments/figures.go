package experiments

import (
	"fmt"
	"io"

	"distperm/internal/construct"
	"distperm/internal/core"
	"distperm/internal/counting"
	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/tree"
	"distperm/internal/voronoi"
)

// FigureVoronoi reproduces the data behind Figures 1–4: for the paper's
// four-site planar configuration it reports the number of cells of the
// order-1 diagram (Fig 1), the order-2 diagram (Fig 2), and the full
// distance-permutation diagram under L2 (Fig 3) and L1 (Fig 4), together
// with the permutation sets' symmetric difference (the paper's observation
// that L1 and L2 realise different 18-permutation sets).
type FigureVoronoi struct {
	Order1Cells, Order2Cells   int
	L2PermCells, L1PermCells   int
	OnlyL2, OnlyL1             int // permutations exclusive to each metric
	EuclideanTheoreticalN      int64
	SignVectorNaiveUpper       int // 2^C(4,2)
	TotalPermutations          int // 4!
	RenderL2, RenderL1, Render string
}

// RunFigureVoronoi computes the figure data at the configured grid
// resolution.
func RunFigureVoronoi(cfg Config) *FigureVoronoi {
	sites := voronoi.PaperFourSites()
	g := voronoi.Grid{Rect: voronoi.WidePlane, W: cfg.GridSide, H: cfg.GridSide}
	small := voronoi.Grid{Rect: voronoi.UnitSquare, W: 60, H: 30}

	l2 := voronoi.Permutations(metric.L2{}, sites, g)
	l1 := voronoi.Permutations(metric.L1{}, sites, g)
	f := &FigureVoronoi{
		Order1Cells:           voronoi.Order(metric.L2{}, sites, 1, g).Cells(),
		Order2Cells:           voronoi.Order(metric.L2{}, sites, 2, g).Cells(),
		L2PermCells:           l2.Cells(),
		L1PermCells:           l1.Cells(),
		EuclideanTheoreticalN: counting.EuclideanCount64(2, 4),
		SignVectorNaiveUpper:  1 << 6,
		TotalPermutations:     24,
		RenderL2:              voronoi.Permutations(metric.L2{}, sites, small).Render(sites),
		RenderL1:              voronoi.Permutations(metric.L1{}, sites, small).Render(sites),
	}
	inL2 := map[string]bool{}
	for _, k := range l2.Keys {
		inL2[k] = true
	}
	inL1 := map[string]bool{}
	for _, k := range l1.Keys {
		inL1[k] = true
	}
	for k := range inL1 {
		if !inL2[k] {
			f.OnlyL1++
		}
	}
	for k := range inL2 {
		if !inL1[k] {
			f.OnlyL2++
		}
	}
	return f
}

// Write renders the figure summary.
func (f *FigureVoronoi) Write(w io.Writer) {
	fmt.Fprintln(w, "Figures 1-4: generalized Voronoi cells of four sites in the plane")
	fmt.Fprintf(w, "  Fig 1 (order-1 Voronoi, L2):            %d cells (expect 4)\n", f.Order1Cells)
	fmt.Fprintf(w, "  Fig 2 (order-2 Voronoi, L2):            %d cells\n", f.Order2Cells)
	fmt.Fprintf(w, "  Fig 3 (full permutation diagram, L2):   %d cells (paper: 18; N(2,4)=%d; naive sign bound %d; 4!=%d)\n",
		f.L2PermCells, f.EuclideanTheoreticalN, f.SignVectorNaiveUpper, f.TotalPermutations)
	fmt.Fprintf(w, "  Fig 4 (full permutation diagram, L1):   %d cells (paper: 18)\n", f.L1PermCells)
	fmt.Fprintf(w, "  permutations only in L2: %d, only in L1: %d (paper: the 18-sets differ)\n", f.OnlyL2, f.OnlyL1)
	fmt.Fprintln(w, "  Fig 3 rendering (unit square, L2):")
	fmt.Fprintln(w, indent(f.RenderL2, "    "))
	fmt.Fprintln(w, "  Fig 4 rendering (unit square, L1):")
	fmt.Fprintln(w, indent(f.RenderL1, "    "))
}

// FigurePrefix reproduces Figure 5: the prefix metric on a small string
// family is a tree metric — prefix distances coincide with trie path
// lengths.
type FigurePrefix struct {
	Words     []string
	Distances [][]int
	TrieOK    bool
}

// RunFigurePrefix builds the paper's flavour of example (hierarchical call
// numbers) and cross-validates the metric against the trie.
func RunFigurePrefix() *FigurePrefix {
	words := []string{"q", "qa", "qa76", "qa76.9", "qa9", "z", "za4"}
	f := &FigurePrefix{Words: words}
	for _, a := range words {
		row := make([]int, len(words))
		for j, b := range words {
			row[j] = metric.PrefixDistance(a, b)
		}
		f.Distances = append(f.Distances, row)
	}
	space := tree.NewPrefixSpace(words)
	trie, index := space.BuildTrie()
	f.TrieOK = true
	for _, a := range space.Words() {
		from := trie.DistancesFrom(index[a])
		for _, b := range space.Words() {
			if int(from[index[b]]) != metric.PrefixDistance(a, b) {
				f.TrieOK = false
			}
		}
	}
	return f
}

// Write renders the distance matrix.
func (f *FigurePrefix) Write(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: the prefix metric is a tree metric")
	fmt.Fprintf(w, "%8s", "")
	for _, s := range f.Words {
		fmt.Fprintf(w, "%8s", s)
	}
	fmt.Fprintln(w)
	for i, s := range f.Words {
		fmt.Fprintf(w, "%8s", s)
		for _, d := range f.Distances[i] {
			fmt.Fprintf(w, "%8d", d)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  trie path lengths match prefix distances: %v\n", f.TrieOK)
}

// FigureConstruction reproduces Figure 6 / Theorem 6: the constructive site
// placement realising all k! permutations in k−1 dimensions.
type FigureConstruction struct {
	K         int
	P         float64
	Witnesses int
	VerifyErr error
}

// RunFigureConstruction builds and verifies the construction.
func RunFigureConstruction(k int, p float64) *FigureConstruction {
	r := construct.Build(k, p, 0.3)
	return &FigureConstruction{K: k, P: p, Witnesses: len(r.Witnesses), VerifyErr: r.Verify()}
}

// Write renders the verification result.
func (f *FigureConstruction) Write(w io.Writer) {
	status := "verified"
	if f.VerifyErr != nil {
		status = "FAILED: " + f.VerifyErr.Error()
	}
	fmt.Fprintf(w, "Figure 6 / Theorem 6: k=%d sites in %d-dim L%g realise all %d permutations: %s\n",
		f.K, f.K-1, f.P, f.Witnesses, status)
}

// FigureCoverage reproduces Figure 7: a database confined to a box misses
// the permutation cells that lie entirely outside its range, so the
// observed count is below the whole-plane count no matter how many points
// are drawn.
type FigureCoverage struct {
	K               int
	PlaneCells      int // cells of the whole (wide) plane
	BoxCells        int // cells intersecting the data box
	ObservedCounts  []int
	DatabaseSizes   []int
	TheoreticalN    int64
	SaturatedAtSize int
}

// RunFigureCoverage samples increasingly large uniform databases inside the
// unit square and shows the distinct-permutation count saturating at the
// box-limited cell count, short of the whole-plane count.
func RunFigureCoverage(cfg Config) *FigureCoverage {
	const k = 5
	rng := cfg.rng(30_000)
	sites := make([]metric.Point, k)
	for i := range sites {
		sites[i] = metric.Vector{rng.Float64(), rng.Float64()}
	}
	g := voronoi.Grid{Rect: voronoi.WidePlane, W: cfg.GridSide, H: cfg.GridSide}
	gBox := voronoi.Grid{Rect: voronoi.UnitSquare, W: cfg.GridSide, H: cfg.GridSide}
	f := &FigureCoverage{
		K:            k,
		PlaneCells:   voronoi.CountPermCells(metric.L2{}, sites, g),
		BoxCells:     voronoi.CountPermCells(metric.L2{}, sites, gBox),
		TheoreticalN: counting.EuclideanCount64(2, k),
	}
	for _, n := range []int{100, 1_000, 10_000, 100_000} {
		pts := dataset.UniformVectors(rng, n, 2)
		f.DatabaseSizes = append(f.DatabaseSizes, n)
		f.ObservedCounts = append(f.ObservedCounts, core.CountDistinct(metric.L2{}, sites, pts))
	}
	f.SaturatedAtSize = f.DatabaseSizes[len(f.DatabaseSizes)-1]
	return f
}

// Write renders the saturation series.
func (f *FigureCoverage) Write(w io.Writer) {
	fmt.Fprintf(w, "Figure 7: the database may not hit every cell (k=%d sites, L2 plane)\n", f.K)
	fmt.Fprintf(w, "  theoretical max N(2,%d) = %d; whole-plane cells = %d; cells meeting the data box = %d\n",
		f.K, f.TheoreticalN, f.PlaneCells, f.BoxCells)
	for i, n := range f.DatabaseSizes {
		fmt.Fprintf(w, "  n=%-8d observed %d distinct permutations\n", n, f.ObservedCounts[i])
	}
	fmt.Fprintln(w, "  observed counts saturate at the box-limited cell count, not the plane count.")
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += prefix + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += prefix + s[start:]
	}
	return out
}
