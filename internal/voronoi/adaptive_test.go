package voronoi

import (
	"math/rand"
	"testing"

	"distperm/internal/metric"
)

func TestAdaptiveFindsAllPaperCells(t *testing.T) {
	sites := PaperFourSites()
	for _, m := range []metric.Metric{metric.L2{}, metric.L1{}} {
		got := AdaptiveCount(m, sites, WidePlane, 32, 8)
		if got != 18 {
			t.Errorf("%s: adaptive count = %d, want 18", m.Name(), got)
		}
	}
}

func TestAdaptiveMatchesExactEuclidean(t *testing.T) {
	// AdaptiveCount is a lower bound: a sliver cell can cross a box
	// without touching any of its five sample points, and cells can live
	// arbitrarily far from the window. Require it within one cell of the
	// exact arrangement count and exact in the majority of trials.
	rng := rand.New(rand.NewSource(130))
	exactHits := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		k := 3 + rng.Intn(3)
		sites := randomSites(rng, k)
		exact := ExactEuclideanCells2D(sites)
		got := AdaptiveCount(metric.L2{}, sites, WidePlane, 40, 9)
		if got > exact {
			t.Fatalf("k=%d: adaptive %d exceeds exact %d", k, got, exact)
		}
		if got < exact-1 {
			t.Errorf("k=%d: adaptive %d more than one below exact %d", k, got, exact)
		}
		if got == exact {
			exactHits++
		}
	}
	if exactHits < trials/2 {
		t.Errorf("adaptive matched the exact count in only %d of %d trials", exactHits, trials)
	}
}

func TestAdaptiveFindsMoreThanUniform(t *testing.T) {
	// At a comparable sampling budget, adaptive refinement must find at
	// least as many cells as a uniform grid; across random configurations
	// it finds strictly more in aggregate (thin cells at bisector
	// boundaries).
	rng := rand.New(rand.NewSource(131))
	adaptiveTotal, uniformTotal := 0, 0
	for trial := 0; trial < 10; trial++ {
		sites := randomSites(rng, 5)
		// Uniform 150×150 ≈ 22.5k samples; adaptive initial 24² grid +
		// refinement stays well under that.
		uniformTotal += CountPermCells(metric.L1{}, sites,
			Grid{Rect: WidePlane, W: 150, H: 150})
		adaptiveTotal += AdaptiveCount(metric.L1{}, sites, WidePlane, 24, 8)
	}
	if adaptiveTotal < uniformTotal {
		t.Errorf("adaptive total %d below uniform total %d at similar budget",
			adaptiveTotal, uniformTotal)
	}
}

func TestAdaptiveMonotoneInDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	sites := randomSites(rng, 4)
	prev := 0
	for depth := 0; depth <= 6; depth += 2 {
		got := AdaptiveCount(metric.LInf{}, sites, WidePlane, 16, depth)
		if got < prev {
			t.Errorf("depth %d found fewer cells (%d < %d)", depth, got, prev)
		}
		prev = got
	}
}

func TestAdaptivePanicsOnBadGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero initial grid should panic")
		}
	}()
	AdaptiveCount(metric.L2{}, PaperFourSites(), WidePlane, 0, 3)
}
