// Package voronoi rasterises generalized Voronoi diagrams of a site set
// under an arbitrary metric, reproducing the cell structures of the paper's
// Figures 1–4 and 7:
//
//   - order 1: cells by nearest site (classical Voronoi, Fig 1);
//   - order j: cells by the *set* of the j nearest sites (Fig 2);
//   - full permutation: cells by the entire distance permutation (Figs 3–4).
//
// Exact arrangements of non-Euclidean bisectors are combinatorially
// unpleasant (the paper's §2 surveys how badly L1 bisectors behave), so the
// package counts cells the way the paper's own experiments do: by sampling a
// fine grid over a rectangle and tallying distinct labels. For well-spread
// sites and fine grids this recovers the exact planar counts (18 cells for
// the paper's four-site examples in both L2 and L1).
package voronoi

import (
	"fmt"
	"sort"
	"strings"

	"distperm/internal/core"
	"distperm/internal/metric"
	"distperm/internal/perm"
)

// Rect is an axis-aligned rectangle in the plane.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// UnitSquare is the [0,1]² rectangle.
var UnitSquare = Rect{0, 0, 1, 1}

// WidePlane is a rectangle comfortably larger than the unit square. Every
// cell of the full-permutation diagram of sites inside the unit square
// extends into (or lies within) this window for the configurations used in
// the figures, so sampling it recovers the whole-plane cell count rather
// than the count clipped to the data range (the distinction Figure 7 is
// about).
var WidePlane = Rect{-4, -4, 5, 5}

// Grid describes a rasterisation request.
type Grid struct {
	Rect Rect
	// W and H are the number of sample columns and rows.
	W, H int
}

// Labeling is the result of rasterising a diagram: a W×H grid of small
// integer labels, one per distinct cell key encountered, plus the key
// catalogue in first-seen order.
type Labeling struct {
	Grid   Grid
	Labels []int    // row-major, len W*H
	Keys   []string // label -> cell key (permutation string or site set)
}

// Cells returns the number of distinct cells sampled.
func (l *Labeling) Cells() int { return len(l.Keys) }

// At returns the label at column x, row y.
func (l *Labeling) At(x, y int) int { return l.Labels[y*l.Grid.W+x] }

// Permutations rasterises the full distance-permutation diagram: every grid
// sample is labelled with its complete distance permutation (Figs 3–4).
func Permutations(m metric.Metric, sites []metric.Point, g Grid) *Labeling {
	pm := core.NewPermuter(m, sites)
	buf := make(perm.Permutation, pm.K())
	return rasterise(g, func(pt metric.Vector) string {
		pm.PermutationInto(pt, buf)
		return buf.Key()
	})
}

// Order rasterises the order-j diagram: samples are labelled with the set
// (order-insensitive) of their j nearest sites. Order(m, sites, 1, g) is the
// classical Voronoi diagram of Fig 1; Order(m, sites, 2, g) is Fig 2.
func Order(m metric.Metric, sites []metric.Point, j int, g Grid) *Labeling {
	if j < 1 || j > len(sites) {
		panic(fmt.Sprintf("voronoi: order %d out of range 1..%d", j, len(sites)))
	}
	pm := core.NewPermuter(m, sites)
	buf := make(perm.Permutation, pm.K())
	set := make([]int, j)
	return rasterise(g, func(pt metric.Vector) string {
		pm.PermutationInto(pt, buf)
		copy(set, buf[:j])
		sort.Ints(set)
		var sb strings.Builder
		for _, v := range set {
			sb.WriteByte(byte(v))
		}
		return sb.String()
	})
}

func rasterise(g Grid, key func(metric.Vector) string) *Labeling {
	if g.W < 1 || g.H < 1 {
		panic("voronoi: grid must have positive dimensions")
	}
	labels := make([]int, g.W*g.H)
	index := map[string]int{}
	var keys []string
	pt := make(metric.Vector, 2)
	for row := 0; row < g.H; row++ {
		// Sample cell centres, not corners, to avoid boundary ties.
		pt[1] = g.Rect.Y0 + (float64(row)+0.5)*(g.Rect.Y1-g.Rect.Y0)/float64(g.H)
		for col := 0; col < g.W; col++ {
			pt[0] = g.Rect.X0 + (float64(col)+0.5)*(g.Rect.X1-g.Rect.X0)/float64(g.W)
			k := key(pt)
			id, ok := index[k]
			if !ok {
				id = len(keys)
				index[k] = id
				keys = append(keys, k)
			}
			labels[row*g.W+col] = id
		}
	}
	return &Labeling{Grid: g, Labels: labels, Keys: keys}
}

// CountPermCells counts the distinct full distance permutations of grid
// samples: a lower bound on (and for fine grids, the value of) the number of
// generalized Voronoi cells intersecting the rectangle.
func CountPermCells(m metric.Metric, sites []metric.Point, g Grid) int {
	return Permutations(m, sites, g).Cells()
}

// Render draws the labelling as ASCII art, one character per sample, cycling
// through a 62-character alphabet. Sites are overdrawn with '*'. Intended
// for qualitative inspection of the figures at small grid sizes.
func (l *Labeling) Render(sites []metric.Point) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var sb strings.Builder
	g := l.Grid
	// Precompute site cell coordinates.
	type cell struct{ x, y int }
	siteCells := map[cell]bool{}
	for _, s := range sites {
		v := s.(metric.Vector)
		x := int((v[0] - g.Rect.X0) / (g.Rect.X1 - g.Rect.X0) * float64(g.W))
		y := int((v[1] - g.Rect.Y0) / (g.Rect.Y1 - g.Rect.Y0) * float64(g.H))
		if x >= 0 && x < g.W && y >= 0 && y < g.H {
			siteCells[cell{x, y}] = true
		}
	}
	for row := g.H - 1; row >= 0; row-- { // render north-up
		for col := 0; col < g.W; col++ {
			if siteCells[cell{col, row}] {
				sb.WriteByte('*')
				continue
			}
			sb.WriteByte(alphabet[l.At(col, row)%len(alphabet)])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// PaperFourSites returns a four-site configuration in the plane reproducing
// the paper's Figures 1–4 example: non-degenerate sites whose full
// permutation diagram has exactly 18 cells under both L2 (Fig 3) and L1
// (Fig 4), with the two 18-permutation sets differing — each metric realises
// a permutation the other does not, just as the paper observes. The
// configuration was found by the same randomized search the experiments
// use; see TestPaperFourSites for the verification.
func PaperFourSites() []metric.Point {
	return []metric.Point{
		metric.Vector{0.131892, 0.342679},
		metric.Vector{0.499633, 0.328593},
		metric.Vector{0.770438, 0.666051},
		metric.Vector{0.369468, 0.740660},
	}
}
