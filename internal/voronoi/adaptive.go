package voronoi

import (
	"distperm/internal/core"
	"distperm/internal/metric"
	"distperm/internal/perm"
)

// AdaptiveCount counts distinct distance-permutation cells in a rectangle
// by quadtree refinement: the rectangle is divided into a coarse initial
// grid, and any box whose corners or centre disagree on their permutation
// is subdivided, down to maxDepth extra levels. Sampling effort thus
// concentrates along the bisector boundaries where the thin cells live —
// the cells uniform grids miss (see TestAdaptiveFindsMoreThanUniform). This
// is the counting engine the paper's "informal computer-graphics
// experiments" for L1 needed: no exact arrangement machinery exists for
// non-Euclidean bisectors (§2 explains why), so refined sampling is the
// practical tool.
//
// The returned count is a lower bound on the true number of cells meeting
// the rectangle, monotonically improving in initial resolution and depth.
func AdaptiveCount(m metric.Metric, sites []metric.Point, r Rect, initial, maxDepth int) int {
	if initial < 1 {
		panic("voronoi: initial grid must be positive")
	}
	pm := core.NewPermuter(m, sites)
	buf := make(perm.Permutation, pm.K())
	pt := make(metric.Vector, 2)
	seen := map[string]bool{}
	sample := func(x, y float64) string {
		pt[0], pt[1] = x, y
		pm.PermutationInto(pt, buf)
		k := buf.Key()
		seen[k] = true
		return k
	}

	var refine func(x0, y0, x1, y1 string, bx0, by0, bx1, by1 float64, depth int)
	refine = func(c00, c10, c01, c11 string, bx0, by0, bx1, by1 float64, depth int) {
		mx := (bx0 + bx1) / 2
		my := (by0 + by1) / 2
		centre := sample(mx, my)
		if depth >= maxDepth {
			return
		}
		if c00 == c10 && c10 == c01 && c01 == c11 && c11 == centre {
			return // box looks homogeneous; stop refining
		}
		e0 := sample(mx, by0) // bottom edge midpoint
		e1 := sample(bx0, my) // left
		e2 := sample(bx1, my) // right
		e3 := sample(mx, by1) // top
		refine(c00, e0, e1, centre, bx0, by0, mx, my, depth+1)
		refine(e0, c10, centre, e2, mx, by0, bx1, my, depth+1)
		refine(e1, centre, c01, e3, bx0, my, mx, by1, depth+1)
		refine(centre, e2, e3, c11, mx, my, bx1, by1, depth+1)
	}

	dx := (r.X1 - r.X0) / float64(initial)
	dy := (r.Y1 - r.Y0) / float64(initial)
	// Corner samples of the initial grid, reused across neighbouring
	// boxes via a row cache.
	corners := make([][]string, initial+1)
	for i := 0; i <= initial; i++ {
		corners[i] = make([]string, initial+1)
		for j := 0; j <= initial; j++ {
			corners[i][j] = sample(r.X0+float64(i)*dx, r.Y0+float64(j)*dy)
		}
	}
	for i := 0; i < initial; i++ {
		for j := 0; j < initial; j++ {
			refine(corners[i][j], corners[i+1][j], corners[i][j+1], corners[i+1][j+1],
				r.X0+float64(i)*dx, r.Y0+float64(j)*dy,
				r.X0+float64(i+1)*dx, r.Y0+float64(j+1)*dy, 0)
		}
	}
	return len(seen)
}
