package voronoi

import (
	"math/rand"
	"testing"

	"distperm/internal/counting"
	"distperm/internal/metric"
)

func randomSites(rng *rand.Rand, k int) []metric.Point {
	sites := make([]metric.Point, k)
	for i := range sites {
		sites[i] = metric.Vector{rng.Float64(), rng.Float64()}
	}
	return sites
}

func TestExactCellsMatchTheorem7(t *testing.T) {
	// Random sites are in general position almost surely, so the exact
	// arrangement count must equal N(2,k) — an independent, sampling-free
	// validation of Theorem 7's d=2 row of Table 1.
	rng := rand.New(rand.NewSource(70))
	for k := 1; k <= 8; k++ {
		for trial := 0; trial < 5; trial++ {
			sites := randomSites(rng, k)
			got := ExactEuclideanCells2D(sites)
			want := int(counting.EuclideanCount64(2, k))
			if got != want {
				t.Errorf("k=%d trial %d: exact cells = %d, want N(2,%d) = %d",
					k, trial, got, k, want)
			}
		}
	}
}

func TestExactCellsDegenerateSquare(t *testing.T) {
	// The four corners of a square are cocircular: two bisector pairs
	// coincide and all four distinct bisectors concur at the centre,
	// leaving 8 cells instead of the generic 18.
	square := []metric.Point{
		metric.Vector{0, 0}, metric.Vector{1, 0},
		metric.Vector{1, 1}, metric.Vector{0, 1},
	}
	if got := ExactEuclideanCells2D(square); got != 8 {
		t.Errorf("square cells = %d, want 8", got)
	}
}

func TestExactCellsCollinearSites(t *testing.T) {
	// Collinear sites have parallel bisectors: the plane is cut into
	// strips, exactly the 1-dimensional count.
	for k := 2; k <= 8; k++ {
		sites := make([]metric.Point, k)
		coords := make([]float64, k)
		rng := rand.New(rand.NewSource(int64(71 + k)))
		for i := range sites {
			x := rng.Float64() * 10
			coords[i] = x
			sites[i] = metric.Vector{x, 0}
		}
		got := ExactEuclideanCells2D(sites)
		want := counting.ExactLineCount(coords)
		if got != want {
			t.Errorf("k=%d collinear: %d cells, want %d", k, got, want)
		}
	}
}

func TestExactCellsAgreeWithGridSampling(t *testing.T) {
	// Grid sampling is a strict lower bound on the exact count (thin
	// cells and cells far from the window can be missed) and approaches
	// it at practical resolutions.
	rng := rand.New(rand.NewSource(72))
	g := Grid{Rect: WidePlane, W: 1200, H: 1200}
	for trial := 0; trial < 5; trial++ {
		k := 3 + rng.Intn(3)
		sites := randomSites(rng, k)
		exact := ExactEuclideanCells2D(sites)
		sampled := CountPermCells(metric.L2{}, sites, g)
		if sampled > exact {
			t.Fatalf("sampled %d exceeds exact %d", sampled, exact)
		}
		if float64(sampled) < 0.85*float64(exact) {
			t.Errorf("k=%d: sampled %d far below exact %d", k, sampled, exact)
		}
	}
}

func TestExactCellsSmallCases(t *testing.T) {
	if got := ExactEuclideanCells2D([]metric.Point{metric.Vector{0.3, 0.7}}); got != 1 {
		t.Errorf("k=1: %d cells, want 1", got)
	}
	two := []metric.Point{metric.Vector{0, 0}, metric.Vector{1, 1}}
	if got := ExactEuclideanCells2D(two); got != 2 {
		t.Errorf("k=2: %d cells, want 2", got)
	}
	// Equilateral-ish triangle: three bisectors concurrent at the
	// circumcentre → 1 + 3 + 2 = 6 (same as generic for k=3, where all
	// three bisectors always concur).
	tri := []metric.Point{metric.Vector{0, 0}, metric.Vector{1, 0}, metric.Vector{0.5, 0.9}}
	if got := ExactEuclideanCells2D(tri); got != 6 {
		t.Errorf("triangle: %d cells, want 6", got)
	}
}

func TestExactCellsPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no sites should panic")
			}
		}()
		ExactEuclideanCells2D(nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate sites should panic")
			}
		}()
		ExactEuclideanCells2D([]metric.Point{metric.Vector{1, 1}, metric.Vector{1, 1}})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("3-d site should panic")
			}
		}()
		ExactEuclideanCells2D([]metric.Point{metric.Vector{1, 1, 1}})
	}()
}
