// Box-counter tests live in the external test package so they can use the
// experiments package (which itself imports voronoi) for the Eq. 12 sites.
package voronoi_test

import (
	"math/rand"
	"testing"

	"distperm/internal/counting"
	"distperm/internal/experiments"
	"distperm/internal/metric"
	"distperm/internal/voronoi"
)

func TestAdaptiveBoxMatchesPlanarAdaptive(t *testing.T) {
	sites := voronoi.PaperFourSites()
	lo := metric.Vector{voronoi.WidePlane.X0, voronoi.WidePlane.Y0}
	hi := metric.Vector{voronoi.WidePlane.X1, voronoi.WidePlane.Y1}
	for _, m := range []metric.Metric{metric.L2{}, metric.L1{}} {
		planar := voronoi.AdaptiveCount(m, sites, voronoi.WidePlane, 32, 7)
		box := voronoi.AdaptiveCountBox(m, sites, lo, hi, 32, 7)
		if box != planar {
			t.Errorf("%s: box %d != planar %d", m.Name(), box, planar)
		}
	}
}

func TestAdaptiveBoxOneDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	for trial := 0; trial < 5; trial++ {
		k := 2 + rng.Intn(6)
		coords := make([]float64, k)
		sites := make([]metric.Point, k)
		for i := range coords {
			coords[i] = rng.Float64()
			sites[i] = metric.Vector{coords[i]}
		}
		want := counting.ExactLineCount(coords)
		got := voronoi.AdaptiveCountBox(metric.L2{}, sites,
			metric.Vector{-10}, metric.Vector{11}, 64, 10)
		if got != want {
			t.Errorf("k=%d: box count %d, want %d", k, got, want)
		}
	}
}

func TestAdaptiveBoxThreeDimensionBound(t *testing.T) {
	// In 3-d Euclidean space with k=4 sites, cells are bounded by
	// N(3,4) = 24; a quick octree must stay under it.
	rng := rand.New(rand.NewSource(141))
	sites := make([]metric.Point, 4)
	for i := range sites {
		sites[i] = metric.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	got := voronoi.AdaptiveCountBox(metric.L2{}, sites,
		metric.Vector{-3, -3, -3}, metric.Vector{4, 4, 4}, 8, 4)
	if got > 24 {
		t.Errorf("count %d exceeds N(3,4) = 24", got)
	}
	if got < 18 {
		t.Errorf("count %d suspiciously low for a generic configuration", got)
	}
}

func TestCounterexampleCellsBeyondDatabase(t *testing.T) {
	// The paper's Eq. 12 sites: refined sampling of the unit cube alone
	// already exceeds the Euclidean bound of 96 — the counterexample is a
	// property of the space, not of the particular database.
	if testing.Short() {
		t.Skip("octree refinement takes several seconds")
	}
	got := voronoi.AdaptiveCountBox(metric.L1{}, experiments.PaperCounterexampleSites(),
		metric.Vector{0, 0, 0}, metric.Vector{1, 1, 1}, 8, 5)
	if got <= 96 {
		t.Errorf("refined unit-cube count %d should exceed N(3,5) = 96", got)
	}
}

func TestAdaptiveBoxPanics(t *testing.T) {
	sites := voronoi.PaperFourSites()
	cases := []func(){
		func() {
			voronoi.AdaptiveCountBox(metric.L2{}, sites, metric.Vector{}, metric.Vector{}, 4, 2)
		},
		func() {
			voronoi.AdaptiveCountBox(metric.L2{}, sites, metric.Vector{0, 0}, metric.Vector{1}, 4, 2)
		},
		func() {
			voronoi.AdaptiveCountBox(metric.L2{}, sites, metric.Vector{1, 0}, metric.Vector{0, 1}, 4, 2)
		},
		func() {
			voronoi.AdaptiveCountBox(metric.L2{}, sites, metric.Vector{0, 0}, metric.Vector{1, 1}, 0, 2)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}
