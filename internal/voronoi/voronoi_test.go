package voronoi

import (
	"math/rand"
	"strings"
	"testing"

	"distperm/internal/counting"
	"distperm/internal/metric"
)

func fineGrid() Grid  { return Grid{Rect: WidePlane, W: 900, H: 900} }
func quickGrid() Grid { return Grid{Rect: WidePlane, W: 300, H: 300} }

func TestPaperFourSites(t *testing.T) {
	sites := PaperFourSites()
	g := fineGrid()
	l2 := Permutations(metric.L2{}, sites, g)
	l1 := Permutations(metric.L1{}, sites, g)
	if l2.Cells() != 18 {
		t.Errorf("Fig 3 (L2) cells = %d, want 18", l2.Cells())
	}
	if l1.Cells() != 18 {
		t.Errorf("Fig 4 (L1) cells = %d, want 18", l1.Cells())
	}
	// The paper: the two 18-permutation sets differ.
	inL2 := map[string]bool{}
	for _, k := range l2.Keys {
		inL2[k] = true
	}
	diff := 0
	for _, k := range l1.Keys {
		if !inL2[k] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("L1 and L2 permutation sets should differ")
	}
}

func TestOrderOneIsClassicalVoronoi(t *testing.T) {
	sites := PaperFourSites()
	l := Order(metric.L2{}, sites, 1, quickGrid())
	if l.Cells() != 4 {
		t.Errorf("order-1 cells = %d, want 4 (one per site)", l.Cells())
	}
}

func TestOrderTwoRefinement(t *testing.T) {
	// Full-permutation labels refine order-j labels: two samples with the
	// same permutation must have the same order-j set for every j.
	sites := PaperFourSites()
	g := Grid{Rect: UnitSquare, W: 80, H: 80}
	full := Permutations(metric.L2{}, sites, g)
	for j := 1; j <= 4; j++ {
		oj := Order(metric.L2{}, sites, j, g)
		permToSet := map[int]int{}
		for i := range full.Labels {
			f, o := full.Labels[i], oj.Labels[i]
			if prev, ok := permToSet[f]; ok && prev != o {
				t.Fatalf("order-%d not refined by full permutation", j)
			}
			permToSet[f] = o
		}
		if oj.Cells() > full.Cells() {
			t.Fatalf("order-%d has more cells than the full diagram", j)
		}
	}
}

func TestOrderKEqualsKFactorialPartition(t *testing.T) {
	// Order-k (all sites, order-insensitive) has exactly one cell.
	sites := PaperFourSites()
	l := Order(metric.L2{}, sites, 4, quickGrid())
	if l.Cells() != 1 {
		t.Errorf("order-4 set diagram cells = %d, want 1", l.Cells())
	}
}

func TestCellCountNeverExceedsEuclideanBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := quickGrid()
	for trial := 0; trial < 25; trial++ {
		k := 2 + rng.Intn(4)
		sites := make([]metric.Point, k)
		for i := range sites {
			sites[i] = metric.Vector{rng.Float64(), rng.Float64()}
		}
		cells := CountPermCells(metric.L2{}, sites, g)
		bound := int(counting.EuclideanCount64(2, k))
		if cells > bound {
			t.Fatalf("k=%d: %d cells exceed N(2,%d)=%d", k, cells, k, bound)
		}
	}
}

func TestThreeSitesEuclideanExact(t *testing.T) {
	// Any non-degenerate 3-site configuration yields exactly N(2,3) = 6
	// cells in the plane.
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 10; trial++ {
		sites := []metric.Point{
			metric.Vector{rng.Float64(), rng.Float64()},
			metric.Vector{rng.Float64(), rng.Float64()},
			metric.Vector{rng.Float64(), rng.Float64()},
		}
		if cells := CountPermCells(metric.L2{}, sites, fineGrid()); cells != 6 {
			t.Errorf("trial %d: %d cells, want 6", trial, cells)
		}
	}
}

func TestLabelingAccessors(t *testing.T) {
	sites := PaperFourSites()
	g := Grid{Rect: UnitSquare, W: 10, H: 7}
	l := Permutations(metric.L2{}, sites, g)
	if len(l.Labels) != 70 {
		t.Fatalf("labels = %d, want 70", len(l.Labels))
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			v := l.At(x, y)
			if v < 0 || v >= l.Cells() {
				t.Fatalf("label %d out of range", v)
			}
		}
	}
}

func TestRender(t *testing.T) {
	sites := PaperFourSites()
	g := Grid{Rect: UnitSquare, W: 24, H: 12}
	out := Permutations(metric.L2{}, sites, g).Render(sites)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 {
		t.Fatalf("render rows = %d, want 12", len(lines))
	}
	for _, ln := range lines {
		if len(ln) != 24 {
			t.Fatalf("render row width = %d, want 24", len(ln))
		}
	}
	if !strings.Contains(out, "*") {
		t.Error("render should mark sites with '*'")
	}
}

func TestOrderPanicsOnBadJ(t *testing.T) {
	sites := PaperFourSites()
	for _, j := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %d should panic", j)
				}
			}()
			Order(metric.L2{}, sites, j, quickGrid())
		}()
	}
}

func TestGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size grid should panic")
		}
	}()
	Permutations(metric.L2{}, PaperFourSites(), Grid{Rect: UnitSquare, W: 0, H: 5})
}

func TestMonotoneInResolution(t *testing.T) {
	// Finer grids can only find at least as many cells.
	sites := PaperFourSites()
	coarse := CountPermCells(metric.L1{}, sites, Grid{Rect: WidePlane, W: 100, H: 100})
	fine := CountPermCells(metric.L1{}, sites, Grid{Rect: WidePlane, W: 400, H: 400})
	if fine < coarse {
		t.Errorf("finer grid found fewer cells (%d < %d)", fine, coarse)
	}
}
