package voronoi

import (
	"fmt"
	"math"
	"sort"

	"distperm/internal/metric"
)

// ExactEuclideanCells2D returns the exact number of distance-permutation
// cells for the given sites in the Euclidean plane, by counting the regions
// of the arrangement of the C(k,2) perpendicular bisector lines.
//
// For an arrangement of L distinct lines in the plane the number of regions
// is
//
//	R = 1 + L + Σ_v (m_v − 1)
//
// summed over the distinct intersection points v, where m_v is the number
// of lines through v (general position: every vertex has m_v = 2 and
// R = 1 + L + C(L,2), Price's S_2(L)). Every region of the bisector
// arrangement carries a distinct distance permutation — two regions are
// separated by some bisector, so the corresponding site pair is ordered
// differently — which makes R exactly the paper's cell count, computed
// without sampling. For sites in general position this equals N_{2,2}(k)
// from Theorem 7; degenerate configurations (concurrent or parallel
// bisectors, e.g. cocircular or collinear sites) yield fewer.
//
// Coordinates are compared with a relative tolerance; the function is
// intended for the moderate k (≤ a few dozen) where the O(L²)–O(L³)
// geometry is trivial. It panics on duplicate sites.
func ExactEuclideanCells2D(sites []metric.Point) int {
	k := len(sites)
	if k < 1 {
		panic("voronoi: need at least one site")
	}
	pts := make([]metric.Vector, k)
	for i, s := range sites {
		v, ok := s.(metric.Vector)
		if !ok || len(v) != 2 {
			panic(fmt.Sprintf("voronoi: expected 2-d Vector site, got %T", s))
		}
		pts[i] = v
	}
	if k == 1 {
		return 1
	}

	// Build the perpendicular bisector of each pair as a normalised line
	// a·x + b·y = c with (a,b) unit and a > 0 (or a == 0, b > 0).
	type line struct{ a, b, c float64 }
	var lines []line
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			dx := pts[j][0] - pts[i][0]
			dy := pts[j][1] - pts[i][1]
			n := math.Hypot(dx, dy)
			if n == 0 {
				panic(fmt.Sprintf("voronoi: duplicate sites %d and %d", i, j))
			}
			a, b := dx/n, dy/n
			mx := (pts[i][0] + pts[j][0]) / 2
			my := (pts[i][1] + pts[j][1]) / 2
			c := a*mx + b*my
			if a < 0 || (a == 0 && b < 0) {
				a, b, c = -a, -b, -c
			}
			lines = append(lines, line{a, b, c})
		}
	}

	const eps = 1e-9

	// Deduplicate coincident lines (two site pairs can share a bisector,
	// e.g. opposite sides of a rectangle's diagonal pairs).
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].a != lines[j].a {
			return lines[i].a < lines[j].a
		}
		if lines[i].b != lines[j].b {
			return lines[i].b < lines[j].b
		}
		return lines[i].c < lines[j].c
	})
	uniq := lines[:0]
	for _, l := range lines {
		if len(uniq) > 0 {
			p := uniq[len(uniq)-1]
			if math.Abs(p.a-l.a) < eps && math.Abs(p.b-l.b) < eps && math.Abs(p.c-l.c) < eps {
				continue
			}
		}
		uniq = append(uniq, l)
	}
	lines = uniq
	L := len(lines)

	// Collect intersection points and count line multiplicity per point.
	type vertex struct{ x, y float64 }
	var verts []vertex
	for i := 0; i < L; i++ {
		for j := i + 1; j < L; j++ {
			det := lines[i].a*lines[j].b - lines[j].a*lines[i].b
			if math.Abs(det) < eps {
				continue // parallel
			}
			x := (lines[i].c*lines[j].b - lines[j].c*lines[i].b) / det
			y := (lines[i].a*lines[j].c - lines[j].a*lines[i].c) / det
			verts = append(verts, vertex{x, y})
		}
	}
	// Group coincident intersection points, then recount multiplicities
	// directly against the line set (a point where m lines concur appears
	// C(m,2) times above; we need m itself).
	sort.Slice(verts, func(i, j int) bool {
		if verts[i].x != verts[j].x {
			return verts[i].x < verts[j].x
		}
		return verts[i].y < verts[j].y
	})
	regions := 1 + L
	for i := 0; i < len(verts); {
		j := i
		for j < len(verts) &&
			math.Abs(verts[j].x-verts[i].x) < eps &&
			math.Abs(verts[j].y-verts[i].y) < eps {
			j++
		}
		// Count the lines through this point.
		m := 0
		for _, l := range lines {
			if math.Abs(l.a*verts[i].x+l.b*verts[i].y-l.c) < eps*(1+math.Abs(l.c)) {
				m++
			}
		}
		if m >= 2 {
			regions += m - 1
		}
		i = j
	}
	return regions
}
