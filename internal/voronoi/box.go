package voronoi

import (
	"fmt"

	"distperm/internal/core"
	"distperm/internal/metric"
	"distperm/internal/perm"
)

// AdaptiveCountBox generalises AdaptiveCount to any dimension: it counts
// distinct distance-permutation cells inside the axis-aligned box [lo, hi]
// by 2^d-tree refinement (quadtree in the plane, octree in 3-space, …).
// Boxes whose 2^d corners and centre all agree are pruned; disagreeing
// boxes split at the midpoint of every axis, down to maxDepth levels below
// the initial per-axis grid.
//
// The paper's §5 leaves open how many permutations beyond the observed 108
// the Eq. (12) counterexample really has ("Even more than 108 permutations
// may exist because the experiment only counted permutations represented in
// the database"); this is the tool that tightens that lower bound — see
// TestCounterexampleCellsBeyondDatabase.
func AdaptiveCountBox(m metric.Metric, sites []metric.Point, lo, hi metric.Vector, initial, maxDepth int) int {
	d := len(lo)
	if d == 0 || len(hi) != d {
		panic("voronoi: box bounds must be non-empty and of equal dimension")
	}
	for i := range lo {
		if !(lo[i] < hi[i]) {
			panic(fmt.Sprintf("voronoi: empty box on axis %d", i))
		}
	}
	if initial < 1 {
		panic("voronoi: initial grid must be positive")
	}
	if d > 16 {
		panic("voronoi: dimension too large for corner enumeration")
	}
	pm := core.NewPermuter(m, sites)
	buf := make(perm.Permutation, pm.K())
	pt := make(metric.Vector, d)
	seen := map[string]bool{}
	sample := func(x []float64) string {
		copy(pt, x)
		pm.PermutationInto(pt, buf)
		k := buf.Key()
		seen[k] = true
		return k
	}

	corners := 1 << d
	var refine func(blo, bhi []float64, keys []string, depth int)
	refine = func(blo, bhi []float64, keys []string, depth int) {
		mid := make([]float64, d)
		for i := range mid {
			mid[i] = (blo[i] + bhi[i]) / 2
		}
		centre := sample(mid)
		if depth >= maxDepth {
			return
		}
		uniform := true
		for _, k := range keys {
			if k != centre {
				uniform = false
				break
			}
		}
		if uniform {
			return
		}
		// Split into 2^d children. Corner keys for children are
		// recomputed; caching the full lattice is possible but the
		// permuter evaluation dominates anyway.
		for child := 0; child < corners; child++ {
			clo := make([]float64, d)
			chi := make([]float64, d)
			for axis := 0; axis < d; axis++ {
				if child>>axis&1 == 0 {
					clo[axis], chi[axis] = blo[axis], mid[axis]
				} else {
					clo[axis], chi[axis] = mid[axis], bhi[axis]
				}
			}
			ckeys := make([]string, corners)
			for c := 0; c < corners; c++ {
				x := make([]float64, d)
				for axis := 0; axis < d; axis++ {
					if c>>axis&1 == 0 {
						x[axis] = clo[axis]
					} else {
						x[axis] = chi[axis]
					}
				}
				ckeys[c] = sample(x)
			}
			refine(clo, chi, ckeys, depth+1)
		}
	}

	// Initial per-axis grid of boxes.
	idx := make([]int, d)
	var walk func(axis int)
	walk = func(axis int) {
		if axis == d {
			blo := make([]float64, d)
			bhi := make([]float64, d)
			for i := 0; i < d; i++ {
				step := (hi[i] - lo[i]) / float64(initial)
				blo[i] = lo[i] + float64(idx[i])*step
				bhi[i] = blo[i] + step
			}
			keys := make([]string, corners)
			for c := 0; c < corners; c++ {
				x := make([]float64, d)
				for i := 0; i < d; i++ {
					if c>>i&1 == 0 {
						x[i] = blo[i]
					} else {
						x[i] = bhi[i]
					}
				}
				keys[c] = sample(x)
			}
			refine(blo, bhi, keys, 0)
			return
		}
		for i := 0; i < initial; i++ {
			idx[axis] = i
			walk(axis + 1)
		}
	}
	walk(0)
	return len(seen)
}
