package metric

import (
	"math"
	"testing"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*(1+math.Abs(a)+math.Abs(b))
}

func TestL1KnownValues(t *testing.T) {
	m := L1{}
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{0, 0}, Vector{0, 0}, 0},
		{Vector{0, 0}, Vector{1, 1}, 2},
		{Vector{1, 2, 3}, Vector{4, 6, 3}, 7},
		{Vector{-1}, Vector{1}, 2},
	}
	for _, c := range cases {
		if got := m.Distance(c.a, c.b); !almostEqual(got, c.want) {
			t.Errorf("L1(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestL2KnownValues(t *testing.T) {
	m := L2{}
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{0, 0}, Vector{3, 4}, 5},
		{Vector{1, 1, 1}, Vector{1, 1, 1}, 0},
		{Vector{0}, Vector{2}, 2},
	}
	for _, c := range cases {
		if got := m.Distance(c.a, c.b); !almostEqual(got, c.want) {
			t.Errorf("L2(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLInfKnownValues(t *testing.T) {
	m := LInf{}
	if got := m.Distance(Vector{1, 5, 2}, Vector{2, 1, 2}); !almostEqual(got, 4) {
		t.Errorf("LInf = %v, want 4", got)
	}
	if got := m.Distance(Vector{0}, Vector{0}); got != 0 {
		t.Errorf("LInf identical = %v, want 0", got)
	}
}

func TestLPGeneral(t *testing.T) {
	m := LP{P: 3}
	// (|1|^3 + |1|^3)^(1/3) = 2^(1/3)
	if got := m.Distance(Vector{0, 0}, Vector{1, 1}); !almostEqual(got, math.Cbrt(2)) {
		t.Errorf("L3 = %v, want %v", got, math.Cbrt(2))
	}
}

func TestNewLPSpecialisation(t *testing.T) {
	if _, ok := NewLP(1).(L1); !ok {
		t.Error("NewLP(1) should return L1")
	}
	if _, ok := NewLP(2).(L2); !ok {
		t.Error("NewLP(2) should return L2")
	}
	if _, ok := NewLP(math.Inf(1)).(LInf); !ok {
		t.Error("NewLP(inf) should return LInf")
	}
	if _, ok := NewLP(4).(LP); !ok {
		t.Error("NewLP(4) should return LP")
	}
}

func TestNewLPPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLP(0.5) should panic")
		}
	}()
	NewLP(0.5)
}

func TestLpOrdering(t *testing.T) {
	// For any pair of vectors, L1 ≥ L2 ≥ L4 ≥ L∞ (Lp norms are
	// non-increasing in p).
	pairs := [][2]Vector{
		{{0, 0, 0}, {1, 2, 3}},
		{{0.3, -0.2, 0.9}, {-0.5, 0.7, 0.4}},
		{{1}, {4}},
		{{2, 2, 2, 2}, {0, 0, 0, 0}},
	}
	ps := []float64{1, 2, 4, math.Inf(1)}
	for _, pr := range pairs {
		prev := math.Inf(1)
		for i, p := range ps {
			d := NewLP(p).Distance(pr[0], pr[1])
			if i > 0 && d > prev+1e-12 {
				t.Errorf("Lp monotonicity violated at p=%v for %v,%v: %v > %v", p, pr[0], pr[1], d, prev)
			}
			prev = d
		}
	}
}

func TestVectorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	L2{}.Distance(Vector{1, 2}, Vector{1})
}

func TestVectorPanicsOnWrongType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong point type should panic")
		}
	}()
	L2{}.Distance(String("x"), Vector{1})
}

func TestSquaredL2(t *testing.T) {
	if got := SquaredL2(Vector{0, 0}, Vector{3, 4}); got != 25 {
		t.Errorf("SquaredL2 = %v, want 25", got)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Error("Clone should be independent")
	}
}

func TestEditDistanceKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"saturday", "sunday", 3},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := EditDistance(c.b, c.a); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestEditMetricWrapper(t *testing.T) {
	if got := (Edit{}).Distance(String("kitten"), String("sitting")); got != 3 {
		t.Errorf("Edit.Distance = %v, want 3", got)
	}
}

func TestPrefixDistanceKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "ab", 1},
		{"abc", "abd", 2},
		{"abc", "xyz", 6},
		{"qa76", "qa9", 3},
		{"q", "z", 2},
	}
	for _, c := range cases {
		if got := PrefixDistance(c.a, c.b); got != c.want {
			t.Errorf("PrefixDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPrefixAtLeastEdit(t *testing.T) {
	// Prefix edits are a restricted edit alphabet, so edit ≤ prefix
	// always.
	words := []string{"", "a", "ab", "abc", "abd", "xyz", "axc", "hello", "help"}
	for _, a := range words {
		for _, b := range words {
			if EditDistance(a, b) > PrefixDistance(a, b) {
				t.Errorf("edit(%q,%q)=%d > prefix=%d", a, b,
					EditDistance(a, b), PrefixDistance(a, b))
			}
		}
	}
}

func TestHammingKnownValues(t *testing.T) {
	m := Hamming{}
	if got := m.Distance(String("karolin"), String("kathrin")); got != 3 {
		t.Errorf("Hamming = %v, want 3", got)
	}
	if got := m.Distance(String(""), String("")); got != 0 {
		t.Errorf("Hamming empty = %v, want 0", got)
	}
}

func TestHammingPanicsOnUnequalLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Hamming on unequal lengths should panic")
		}
	}()
	Hamming{}.Distance(String("ab"), String("abc"))
}

func TestHammingAtLeastEdit(t *testing.T) {
	pairs := [][2]string{{"karolin", "kathrin"}, {"abcd", "dcba"}, {"aaaa", "aaab"}}
	for _, p := range pairs {
		if EditDistance(p[0], p[1]) > int(Hamming{}.Distance(String(p[0]), String(p[1]))) {
			t.Errorf("edit(%q,%q) exceeds hamming", p[0], p[1])
		}
	}
}

func TestAngularKnownValues(t *testing.T) {
	m := Angular{}
	if got := m.Distance(Vector{1, 0}, Vector{0, 1}); !almostEqual(got, math.Pi/2) {
		t.Errorf("Angular orthogonal = %v, want pi/2", got)
	}
	if got := m.Distance(Vector{1, 0}, Vector{-1, 0}); !almostEqual(got, math.Pi) {
		t.Errorf("Angular opposite = %v, want pi", got)
	}
	if got := m.Distance(Vector{2, 2}, Vector{5, 5}); !almostEqual(got, 0) {
		t.Errorf("Angular colinear = %v, want 0", got)
	}
}

func TestAngularClampsRounding(t *testing.T) {
	// Nearly identical unit vectors can produce cos slightly above 1;
	// result must be finite and ~0, not NaN.
	a := Vector{0.1234567891234, 0.987654321}
	got := Angular{}.Distance(a, a.Clone())
	if math.IsNaN(got) || got != 0 {
		t.Errorf("Angular self = %v, want 0", got)
	}
}

func TestAngularPanicsOnZeroVector(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Angular on zero vector should panic")
		}
	}()
	Angular{}.Distance(Vector{0, 0}, Vector{1, 0})
}

func TestDiscreteMetric(t *testing.T) {
	m := Discrete{}
	if got := m.Distance(Vector{1, 2}, Vector{1, 2}); got != 0 {
		t.Errorf("Discrete equal = %v, want 0", got)
	}
	if got := m.Distance(Vector{1, 2}, Vector{1, 3}); got != 1 {
		t.Errorf("Discrete unequal = %v, want 1", got)
	}
	if got := m.Distance(String("a"), String("b")); got != 1 {
		t.Errorf("Discrete strings = %v, want 1", got)
	}
}

func TestMetricNames(t *testing.T) {
	cases := []struct {
		m    Metric
		want string
	}{
		{L1{}, "L1"}, {L2{}, "L2"}, {LInf{}, "Linf"}, {LP{P: 3}, "L3"},
		{Edit{}, "edit"}, {Prefix{}, "prefix"}, {Hamming{}, "hamming"},
		{Angular{}, "angular"}, {Discrete{}, "discrete"},
	}
	for _, c := range cases {
		if got := c.m.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}
