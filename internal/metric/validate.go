package metric

import (
	"fmt"
	"math"
)

// Tolerance for floating-point comparisons in axiom checks. The metrics in
// this package are numerically benign (sums and square roots of moderate
// magnitudes), so a tight relative tolerance suffices.
const axiomEps = 1e-9

// CheckAxioms verifies the four metric axioms on a specific triple of
// points and returns a descriptive error on the first violation. It is the
// workhorse behind the property tests: generators produce random triples
// and CheckAxioms validates them.
func CheckAxioms(m Metric, a, b, c Point) error {
	dab := m.Distance(a, b)
	dba := m.Distance(b, a)
	dac := m.Distance(a, c)
	dbc := m.Distance(b, c)

	if math.IsNaN(dab) || math.IsInf(dab, 0) {
		return fmt.Errorf("%s: non-finite distance %v", m.Name(), dab)
	}
	if dab < 0 {
		return fmt.Errorf("%s: negative distance %v", m.Name(), dab)
	}
	if da := m.Distance(a, a); da != 0 {
		return fmt.Errorf("%s: d(a,a) = %v, want 0", m.Name(), da)
	}
	if diff := math.Abs(dab - dba); diff > axiomEps*(1+dab) {
		return fmt.Errorf("%s: asymmetric: d(a,b)=%v d(b,a)=%v", m.Name(), dab, dba)
	}
	if dab > dac+dbc+axiomEps*(1+dac+dbc) {
		return fmt.Errorf("%s: triangle violation: d(a,b)=%v > d(a,c)+d(c,b)=%v",
			m.Name(), dab, dac+dbc)
	}
	return nil
}

// CheckIdentity verifies that distinct points have strictly positive
// distance. It is split from CheckAxioms because some useful pseudometrics
// (e.g. Angular on colinear rays) identify distinct representations.
func CheckIdentity(m Metric, a, b Point) error {
	if pointsEqual(a, b) {
		return nil
	}
	if d := m.Distance(a, b); d <= 0 {
		return fmt.Errorf("%s: d(a,b) = %v for distinct points", m.Name(), d)
	}
	return nil
}
