package metric

import (
	"fmt"
	"math"
	"sort"
)

// Sparse is a point of a high-dimensional real vector space stored as
// sorted (index, value) pairs. The paper's motivating document spaces (the
// word-space model, "thousands or millions of dimensions") are natively
// sparse; Sparse makes the angular metric on them cost O(nnz) instead of
// O(dim).
//
// Construct with NewSparse (which sorts and deduplicates) or directly with
// strictly increasing indexes.
type Sparse struct {
	Index []int
	Value []float64
}

// NewSparse builds a sparse point from parallel index/value slices,
// sorting by index, summing duplicates, and dropping explicit zeros.
func NewSparse(index []int, value []float64) Sparse {
	if len(index) != len(value) {
		panic(fmt.Sprintf("metric: sparse index/value length mismatch %d vs %d", len(index), len(value)))
	}
	type pair struct {
		i int
		v float64
	}
	pairs := make([]pair, len(index))
	for i := range index {
		if index[i] < 0 {
			panic(fmt.Sprintf("metric: negative sparse index %d", index[i]))
		}
		pairs[i] = pair{index[i], value[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].i < pairs[b].i })
	s := Sparse{}
	for _, p := range pairs {
		if n := len(s.Index); n > 0 && s.Index[n-1] == p.i {
			s.Value[n-1] += p.v
			continue
		}
		s.Index = append(s.Index, p.i)
		s.Value = append(s.Value, p.v)
	}
	// Drop zeros introduced by cancellation.
	out := Sparse{}
	for i := range s.Index {
		if s.Value[i] != 0 {
			out.Index = append(out.Index, s.Index[i])
			out.Value = append(out.Value, s.Value[i])
		}
	}
	return out
}

// NNZ returns the number of stored non-zeros.
func (s Sparse) NNZ() int { return len(s.Index) }

// Dot returns the inner product of two sparse points by merge.
func (s Sparse) Dot(t Sparse) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(s.Index) && j < len(t.Index) {
		switch {
		case s.Index[i] < t.Index[j]:
			i++
		case s.Index[i] > t.Index[j]:
			j++
		default:
			sum += s.Value[i] * t.Value[j]
			i++
			j++
		}
	}
	return sum
}

// Norm returns the Euclidean norm.
func (s Sparse) Norm() float64 {
	var sum float64
	for _, v := range s.Value {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Dense materialises the point in the given dimensionality.
func (s Sparse) Dense(dim int) Vector {
	v := make(Vector, dim)
	for i, idx := range s.Index {
		if idx >= dim {
			panic(fmt.Sprintf("metric: sparse index %d outside dimension %d", idx, dim))
		}
		v[idx] = s.Value[i]
	}
	return v
}

// SparseAngular is the angle metric on non-zero Sparse points — the same
// space as Angular on dense vectors, at sparse cost.
type SparseAngular struct{}

// Distance implements Metric.
func (SparseAngular) Distance(a, b Point) float64 {
	x, ok := a.(Sparse)
	if !ok {
		panic(fmt.Sprintf("metric: expected Sparse point, got %T", a))
	}
	y, ok := b.(Sparse)
	if !ok {
		panic(fmt.Sprintf("metric: expected Sparse point, got %T", b))
	}
	// Divide by sqrt(‖x‖²·‖y‖²) rather than ‖x‖·‖y‖: sqrt of the exact
	// product keeps d(x,x) exactly zero (sqrt(s·s) = s in IEEE rounding),
	// where multiplying two rounded square roots can land a hair under 1.
	var nx2, ny2 float64
	for _, v := range x.Value {
		nx2 += v * v
	}
	for _, v := range y.Value {
		ny2 += v * v
	}
	if nx2 == 0 || ny2 == 0 {
		panic("metric: SparseAngular distance undefined for zero vector")
	}
	c := x.Dot(y) / math.Sqrt(nx2*ny2)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Name implements Metric.
func (SparseAngular) Name() string { return "sparse-angular" }

// SparseL1 is the L1 metric on Sparse points, by merge over non-zeros.
type SparseL1 struct{}

// Distance implements Metric.
func (SparseL1) Distance(a, b Point) float64 {
	x, ok := a.(Sparse)
	if !ok {
		panic(fmt.Sprintf("metric: expected Sparse point, got %T", a))
	}
	y, ok := b.(Sparse)
	if !ok {
		panic(fmt.Sprintf("metric: expected Sparse point, got %T", b))
	}
	var sum float64
	i, j := 0, 0
	for i < len(x.Index) || j < len(y.Index) {
		switch {
		case j >= len(y.Index) || (i < len(x.Index) && x.Index[i] < y.Index[j]):
			sum += math.Abs(x.Value[i])
			i++
		case i >= len(x.Index) || y.Index[j] < x.Index[i]:
			sum += math.Abs(y.Value[j])
			j++
		default:
			sum += math.Abs(x.Value[i] - y.Value[j])
			i++
			j++
		}
	}
	return sum
}

// Name implements Metric.
func (SparseL1) Name() string { return "sparse-L1" }
