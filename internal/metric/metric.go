// Package metric defines the metric-space abstraction used throughout the
// library, together with concrete metrics on real vectors (the Minkowski Lp
// family), strings (edit, prefix, Hamming), and sparse documents (angular
// distance).
//
// A metric space in this library is a pair of a point representation and a
// Metric over it. The distance-permutation machinery (package core) and the
// search structures (package sisap) are generic over Metric, mirroring the
// SISAP metric-space library the paper's experiments were built on.
package metric

import (
	"fmt"
	"math"
)

// Point is an opaque element of a metric space. Concrete metrics document
// the dynamic types they accept (e.g. Vector for Lp metrics, String for the
// string metrics). Using a small interface rather than generics keeps the
// index structures storable in mixed collections and matches the C library's
// void-pointer object model.
type Point interface{}

// Metric computes distances between points and names itself. Implementations
// must satisfy the metric axioms: non-negativity, identity of
// indiscernibles, symmetry, and the triangle inequality. All implementations
// in this package are property-tested against those axioms.
type Metric interface {
	// Distance returns the distance between two points. It panics if the
	// points have the wrong dynamic type for the metric; mixing point
	// types in one space is a programming error, not a runtime condition.
	Distance(a, b Point) float64
	// Name returns a short human-readable identifier such as "L2" or
	// "edit".
	Name() string
}

// Vector is a point of a d-dimensional real vector space.
type Vector []float64

// String is a point of a string metric space.
type String string

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// LP is the Minkowski metric with parameter P ≥ 1:
//
//	d(x,y) = (Σ |x_i − y_i|^P)^(1/P).
//
// Use L1, L2, or LInf for the common special cases; they avoid the generic
// pow-based computation.
type LP struct {
	P float64
}

// NewLP returns the Lp metric for p ≥ 1, choosing the specialised
// implementation for p ∈ {1, 2, +Inf}.
func NewLP(p float64) Metric {
	switch {
	case p < 1:
		panic(fmt.Sprintf("metric: Lp requires p >= 1, got %g", p))
	case p == 1:
		return L1{}
	case p == 2:
		return L2{}
	case math.IsInf(p, 1):
		return LInf{}
	default:
		return LP{P: p}
	}
}

// Probe checks that m can measure p, converting the metric's type-mismatch
// panic into an error. Metrics panic on wrong point types by contract (a
// programming error in trusted internal callers), but at a boundary where
// the metric/point pairing comes from user input — CLI flags, a loaded
// dataset — the mismatch must surface as an error before it can reach a
// query worker.
func Probe(m Metric, p Point) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("metric %s cannot measure these points: %v", m.Name(), r)
		}
	}()
	m.Distance(p, p)
	return nil
}

// ByName maps a CLI-style metric name (L1, L2, Linf, edit, prefix, angular)
// to its Metric — the one seam behind the -metric flag of every binary.
func ByName(name string) (Metric, error) {
	switch name {
	case "L1":
		return L1{}, nil
	case "L2":
		return L2{}, nil
	case "Linf":
		return LInf{}, nil
	case "edit":
		return Edit{}, nil
	case "prefix":
		return Prefix{}, nil
	case "angular":
		return Angular{}, nil
	default:
		return nil, fmt.Errorf("unknown metric %q (have L1, L2, Linf, edit, prefix, angular)", name)
	}
}

// Distance implements Metric.
func (m LP) Distance(a, b Point) float64 {
	x, y := mustVectors(a, b)
	var s float64
	for i := range x {
		s += math.Pow(math.Abs(x[i]-y[i]), m.P)
	}
	return math.Pow(s, 1/m.P)
}

// Name implements Metric.
func (m LP) Name() string { return fmt.Sprintf("L%g", m.P) }

// L1 is the Manhattan (taxicab) metric.
type L1 struct{}

// Distance implements Metric.
func (L1) Distance(a, b Point) float64 {
	x, y := mustVectors(a, b)
	var s float64
	for i := range x {
		s += math.Abs(x[i] - y[i])
	}
	return s
}

// Name implements Metric.
func (L1) Name() string { return "L1" }

// L2 is the Euclidean metric.
type L2 struct{}

// Distance implements Metric.
func (L2) Distance(a, b Point) float64 {
	x, y := mustVectors(a, b)
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Name implements Metric.
func (L2) Name() string { return "L2" }

// LInf is the Chebyshev (maximum) metric.
type LInf struct{}

// Distance implements Metric.
func (LInf) Distance(a, b Point) float64 {
	x, y := mustVectors(a, b)
	var s float64
	for i := range x {
		d := math.Abs(x[i] - y[i])
		if d > s {
			s = d
		}
	}
	return s
}

// Name implements Metric.
func (LInf) Name() string { return "Linf" }

// SquaredL2 returns the squared Euclidean distance between two vectors.
// It is not itself a metric (it violates the triangle inequality) but is
// useful for nearest-neighbour comparisons where the monotone transform is
// harmless and the square root is wasted work.
func SquaredL2(x, y Vector) float64 {
	if len(x) != len(y) {
		panic(dimMismatch(len(x), len(y)))
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

func mustVectors(a, b Point) (Vector, Vector) {
	x, ok := a.(Vector)
	if !ok {
		panic(fmt.Sprintf("metric: expected Vector point, got %T", a))
	}
	y, ok := b.(Vector)
	if !ok {
		panic(fmt.Sprintf("metric: expected Vector point, got %T", b))
	}
	if len(x) != len(y) {
		panic(dimMismatch(len(x), len(y)))
	}
	return x, y
}

func dimMismatch(a, b int) string {
	return fmt.Sprintf("metric: dimension mismatch %d vs %d", a, b)
}
