package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSparse(rng *rand.Rand, dim, nnz int) Sparse {
	idx := make([]int, nnz)
	val := make([]float64, nnz)
	for i := range idx {
		idx[i] = rng.Intn(dim)
		val[i] = rng.Float64()*2 - 1
	}
	return NewSparse(idx, val)
}

func randomNonZeroSparse(rng *rand.Rand, dim, nnz int) Sparse {
	for {
		s := randomSparse(rng, dim, nnz)
		if s.NNZ() > 0 {
			return s
		}
	}
}

func TestNewSparseNormalises(t *testing.T) {
	s := NewSparse([]int{5, 1, 5, 3}, []float64{2, 1, 3, 0})
	// Index 5 appears twice (2+3=5); index 3 has value 0 and is dropped.
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2: %+v", s.NNZ(), s)
	}
	if s.Index[0] != 1 || s.Index[1] != 5 {
		t.Errorf("indexes %v", s.Index)
	}
	if s.Value[1] != 5 {
		t.Errorf("merged value %v, want 5", s.Value[1])
	}
}

func TestNewSparseCancellation(t *testing.T) {
	s := NewSparse([]int{2, 2}, []float64{1, -1})
	if s.NNZ() != 0 {
		t.Errorf("cancelled entry should vanish: %+v", s)
	}
}

func TestNewSparsePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("length mismatch should panic")
			}
		}()
		NewSparse([]int{1}, []float64{1, 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative index should panic")
			}
		}()
		NewSparse([]int{-1}, []float64{1})
	}()
}

func TestSparseDotAndNorm(t *testing.T) {
	a := NewSparse([]int{0, 2, 5}, []float64{1, 2, 3})
	b := NewSparse([]int{2, 3, 5}, []float64{4, 9, 1})
	if got := a.Dot(b); got != 2*4+3*1 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := a.Norm(); math.Abs(got-math.Sqrt(14)) > 1e-12 {
		t.Errorf("Norm = %v", got)
	}
}

func TestSparseDense(t *testing.T) {
	s := NewSparse([]int{1, 3}, []float64{2, 4})
	v := s.Dense(5)
	want := Vector{0, 2, 0, 4, 0}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Dense = %v", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Dense with too-small dim should panic")
		}
	}()
	s.Dense(2)
}

func TestSparseAngularMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	const dim = 40
	f := func(seed int64) bool {
		a := randomNonZeroSparse(rng, dim, 1+rng.Intn(10))
		b := randomNonZeroSparse(rng, dim, 1+rng.Intn(10))
		sparse := SparseAngular{}.Distance(a, b)
		dense := Angular{}.Distance(a.Dense(dim), b.Dense(dim))
		return math.Abs(sparse-dense) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSparseL1MatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	const dim = 40
	f := func(seed int64) bool {
		a := randomSparse(rng, dim, rng.Intn(12))
		b := randomSparse(rng, dim, rng.Intn(12))
		sparse := SparseL1{}.Distance(a, b)
		dense := L1{}.Distance(a.Dense(dim), b.Dense(dim))
		return math.Abs(sparse-dense) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSparseMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	f := func(seed int64) bool {
		a := randomNonZeroSparse(rng, 30, 1+rng.Intn(8))
		b := randomNonZeroSparse(rng, 30, 1+rng.Intn(8))
		c := randomNonZeroSparse(rng, 30, 1+rng.Intn(8))
		if err := CheckAxioms(SparseAngular{}, a, b, c); err != nil {
			t.Log(err)
			return false
		}
		return CheckAxioms(SparseL1{}, a, b, c) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSparseMetricPanics(t *testing.T) {
	for _, m := range []Metric{SparseAngular{}, SparseL1{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: dense point should panic", m.Name())
				}
			}()
			m.Distance(Vector{1}, NewSparse([]int{0}, []float64{1}))
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("zero sparse vector should panic under angular")
		}
	}()
	SparseAngular{}.Distance(Sparse{}, NewSparse([]int{0}, []float64{1}))
}

func TestSparseNames(t *testing.T) {
	if (SparseAngular{}).Name() != "sparse-angular" {
		t.Error("bad name")
	}
	if (SparseL1{}).Name() != "sparse-L1" {
		t.Error("bad name")
	}
}
