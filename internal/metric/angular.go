package metric

import "math"

// Angular is the angle metric on non-zero vectors:
//
//	d(x,y) = arccos( ⟨x,y⟩ / (‖x‖·‖y‖) ) ∈ [0, π].
//
// Unlike "cosine distance" (1 − cos θ), the angle itself satisfies the
// triangle inequality, so it is a genuine metric on rays. It is the natural
// metric for the document-vector databases (long, short) in the paper's
// Table 2, where documents are term-frequency vectors and similarity is
// cosine similarity.
//
// Zero vectors are not valid points of this space; Distance panics on them.
type Angular struct{}

// Distance implements Metric.
func (Angular) Distance(a, b Point) float64 {
	x, y := mustVectors(a, b)
	var dot, nx, ny float64
	for i := range x {
		dot += x[i] * y[i]
		nx += x[i] * x[i]
		ny += y[i] * y[i]
	}
	if nx == 0 || ny == 0 {
		panic("metric: Angular distance undefined for zero vector")
	}
	c := dot / math.Sqrt(nx*ny)
	// Clamp: floating-point rounding can push |c| infinitesimally past 1,
	// where Acos returns NaN.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Name implements Metric.
func (Angular) Name() string { return "angular" }

// Discrete is the discrete (equality) metric: 0 if the points are equal,
// 1 otherwise. It is the degenerate extreme of metric-space structure and a
// useful edge case for the counting machinery: with k sites and the discrete
// metric, the only distance permutations that occur are the identity (for
// points equal to no site, all distances tie at 1) and the k rotations that
// move one site to the front.
type Discrete struct{}

// Distance implements Metric.
func (Discrete) Distance(a, b Point) float64 {
	if pointsEqual(a, b) {
		return 0
	}
	return 1
}

// Name implements Metric.
func (Discrete) Name() string { return "discrete" }

func pointsEqual(a, b Point) bool {
	switch x := a.(type) {
	case Vector:
		y, ok := b.(Vector)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case String:
		y, ok := b.(String)
		return ok && x == y
	default:
		return a == b
	}
}
