package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomVector draws a vector with components in [-size, size].
func randomVector(rng *rand.Rand, d int, size float64) Vector {
	v := make(Vector, d)
	for i := range v {
		v[i] = (2*rng.Float64() - 1) * size
	}
	return v
}

func randomString(rng *rand.Rand, maxLen int, alphabet string) String {
	n := rng.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return String(b)
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

// TestVectorMetricAxioms property-tests the four metric axioms on random
// vector triples for every vector metric.
func TestVectorMetricAxioms(t *testing.T) {
	metrics := []Metric{L1{}, L2{}, LInf{}, LP{P: 1.5}, LP{P: 3}, LP{P: 7}}
	for _, m := range metrics {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				d := 1 + r.Intn(6)
				a := randomVector(rng, d, 10)
				b := randomVector(rng, d, 10)
				c := randomVector(rng, d, 10)
				if err := CheckAxioms(m, a, b, c); err != nil {
					t.Log(err)
					return false
				}
				return CheckIdentity(m, a, b) == nil
			}
			if err := quick.Check(f, quickCfg(17)); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestStringMetricAxioms property-tests the string metrics.
func TestStringMetricAxioms(t *testing.T) {
	t.Run("edit", func(t *testing.T) {
		rng := rand.New(rand.NewSource(13))
		f := func(seed int64) bool {
			a := randomString(rng, 12, "abcde")
			b := randomString(rng, 12, "abcde")
			c := randomString(rng, 12, "abcde")
			return CheckAxioms(Edit{}, a, b, c) == nil &&
				CheckIdentity(Edit{}, a, b) == nil
		}
		if err := quick.Check(f, quickCfg(19)); err != nil {
			t.Error(err)
		}
	})
	t.Run("prefix", func(t *testing.T) {
		rng := rand.New(rand.NewSource(23))
		f := func(seed int64) bool {
			a := randomString(rng, 12, "ab")
			b := randomString(rng, 12, "ab")
			c := randomString(rng, 12, "ab")
			return CheckAxioms(Prefix{}, a, b, c) == nil &&
				CheckIdentity(Prefix{}, a, b) == nil
		}
		if err := quick.Check(f, quickCfg(29)); err != nil {
			t.Error(err)
		}
	})
	t.Run("hamming", func(t *testing.T) {
		rng := rand.New(rand.NewSource(31))
		f := func(seed int64) bool {
			n := rng.Intn(10)
			mk := func() String {
				b := make([]byte, n)
				for i := range b {
					b[i] = "abc"[rng.Intn(3)]
				}
				return String(b)
			}
			a, b, c := mk(), mk(), mk()
			return CheckAxioms(Hamming{}, a, b, c) == nil
		}
		if err := quick.Check(f, quickCfg(37)); err != nil {
			t.Error(err)
		}
	})
}

// TestAngularAxioms property-tests the angular metric on random non-zero
// vectors (it is a metric on rays, so CheckIdentity is skipped: antipodal
// representations of the same ray are legitimately at distance 0 only when
// colinear with equal sign, which random reals never produce exactly — but
// we avoid asserting it anyway).
func TestAngularAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64) bool {
		d := 2 + rng.Intn(5)
		mk := func() Vector {
			for {
				v := randomVector(rng, d, 5)
				for _, x := range v {
					if x != 0 {
						return v
					}
				}
			}
		}
		return CheckAxioms(Angular{}, mk(), mk(), mk()) == nil
	}
	if err := quick.Check(f, quickCfg(43)); err != nil {
		t.Error(err)
	}
}

// TestDiscreteAxioms covers the degenerate metric.
func TestDiscreteAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	f := func(seed int64) bool {
		a := randomVector(rng, 2, 1)
		b := randomVector(rng, 2, 1)
		c := randomVector(rng, 2, 1)
		return CheckAxioms(Discrete{}, a, b, c) == nil
	}
	if err := quick.Check(f, quickCfg(53)); err != nil {
		t.Error(err)
	}
}

// TestEditDistanceTriangleExhaustive exhaustively checks the triangle
// inequality for all short binary strings — the combinatorial core the
// property tests sample.
func TestEditDistanceTriangleExhaustive(t *testing.T) {
	var words []string
	for n := 0; n <= 4; n++ {
		for mask := 0; mask < 1<<n; mask++ {
			b := make([]byte, n)
			for i := 0; i < n; i++ {
				b[i] = "ab"[(mask>>i)&1]
			}
			words = append(words, string(b))
		}
	}
	for _, a := range words {
		for _, b := range words {
			dab := EditDistance(a, b)
			for _, c := range words {
				if dab > EditDistance(a, c)+EditDistance(c, b) {
					t.Fatalf("triangle violated: %q %q %q", a, b, c)
				}
			}
		}
	}
}

// TestLPConvergesToLInf checks that LP approaches LInf as p grows.
func TestLPConvergesToLInf(t *testing.T) {
	a := Vector{0.1, -0.4, 0.9}
	b := Vector{0.7, 0.2, -0.3}
	want := LInf{}.Distance(a, b)
	got := LP{P: 200}.Distance(a, b)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("L200 = %v, LInf = %v; should be close", got, want)
	}
}
