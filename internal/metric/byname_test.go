package metric

import "testing"

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"L1": "L1", "L2": "L2", "Linf": "Linf",
		"edit": "edit", "prefix": "prefix", "angular": "angular",
	} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != want {
			t.Errorf("%s -> %s", name, m.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown metric should error")
	}
}

// TestProbe: a metric/point mismatch is reported as an error, not the
// panic the metrics themselves raise for trusted callers.
func TestProbe(t *testing.T) {
	if err := Probe(L2{}, Vector{1, 2}); err != nil {
		t.Errorf("L2 over Vector: %v", err)
	}
	if err := Probe(Edit{}, String("abc")); err != nil {
		t.Errorf("edit over String: %v", err)
	}
	if err := Probe(Edit{}, Vector{1}); err == nil {
		t.Error("edit over Vector should error")
	}
	if err := Probe(L2{}, String("abc")); err == nil {
		t.Error("L2 over String should error")
	}
}
