package metric

import "fmt"

// Edit is the Levenshtein metric on strings: the minimum number of
// single-character insertions, deletions, and substitutions transforming one
// string into the other. It is the metric used by the SISAP dictionary
// databases in the paper's Table 2.
type Edit struct{}

// Distance implements Metric.
func (Edit) Distance(a, b Point) float64 {
	x, y := mustStrings(a, b)
	return float64(EditDistance(string(x), string(y)))
}

// Name implements Metric.
func (Edit) Name() string { return "edit" }

// EditDistance returns the Levenshtein distance between a and b using a
// two-row dynamic program, O(len(a)·len(b)) time and O(min) space.
func EditDistance(a, b string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost // substitute
			if v := prev[j] + 1; v < m {
				m = v // delete from a
			}
			if v := cur[j-1] + 1; v < m {
				m = v // insert into a
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Prefix is the prefix metric of Definition 3 in the paper: the distance
// between two strings is the sum of their lengths minus twice the length of
// their longest common prefix. It is a tree metric (the tree is the trie of
// all strings), and is the running example of Section 3.
type Prefix struct{}

// Distance implements Metric.
func (Prefix) Distance(a, b Point) float64 {
	x, y := mustStrings(a, b)
	return float64(PrefixDistance(string(x), string(y)))
}

// Name implements Metric.
func (Prefix) Name() string { return "prefix" }

// PrefixDistance returns len(a)+len(b)−2·lcp(a,b), the number of
// add/remove-at-right edits between a and b.
func PrefixDistance(a, b string) int {
	lcp := 0
	for lcp < len(a) && lcp < len(b) && a[lcp] == b[lcp] {
		lcp++
	}
	return len(a) + len(b) - 2*lcp
}

// Hamming is the Hamming metric on equal-length strings: the number of
// positions at which the strings differ. It panics on unequal lengths.
type Hamming struct{}

// Distance implements Metric.
func (Hamming) Distance(a, b Point) float64 {
	x, y := mustStrings(a, b)
	if len(x) != len(y) {
		panic(fmt.Sprintf("metric: Hamming requires equal lengths, got %d vs %d", len(x), len(y)))
	}
	n := 0
	for i := 0; i < len(x); i++ {
		if x[i] != y[i] {
			n++
		}
	}
	return float64(n)
}

// Name implements Metric.
func (Hamming) Name() string { return "hamming" }

func mustStrings(a, b Point) (String, String) {
	x, ok := a.(String)
	if !ok {
		panic(fmt.Sprintf("metric: expected String point, got %T", a))
	}
	y, ok := b.(String)
	if !ok {
		panic(fmt.Sprintf("metric: expected String point, got %T", b))
	}
	return x, y
}
