package core

import (
	"math/rand"
	"testing"

	"distperm/internal/metric"
)

func randomPoints(rng *rand.Rand, n, d int) []metric.Point {
	pts := make([]metric.Point, n)
	for i := range pts {
		v := make(metric.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		pts[i] = v
	}
	return pts
}

func TestParallelCountMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 10; trial++ {
		d := 1 + rng.Intn(4)
		k := 2 + rng.Intn(6)
		n := 1 + rng.Intn(5000)
		pts := randomPoints(rng, n, d)
		sites := randomPoints(rng, k, d)
		seq := CountDistinct(metric.L1{}, sites, pts)
		par := ParallelCount(metric.L1{}, sites, pts)
		if seq != par {
			t.Fatalf("trial %d: sequential %d != parallel %d", trial, seq, par)
		}
	}
}

func TestParallelCountTinyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	sites := randomPoints(rng, 3, 2)
	for _, n := range []int{1, 2, 3} {
		pts := randomPoints(rng, n, 2)
		if got, want := ParallelCount(metric.L2{}, sites, pts),
			CountDistinct(metric.L2{}, sites, pts); got != want {
			t.Errorf("n=%d: %d != %d", n, got, want)
		}
	}
}

func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	sites := randomPoints(rng, 4, 2)
	pts := randomPoints(rng, 1000, 2)

	whole := NewCounter(metric.L2{}, sites)
	whole.AddAll(pts)

	a := NewCounter(metric.L2{}, sites)
	b := NewCounter(metric.L2{}, sites)
	a.AddAll(pts[:400])
	b.AddAll(pts[400:])
	a.Merge(b)

	if a.Distinct() != whole.Distinct() {
		t.Errorf("merged distinct %d != whole %d", a.Distinct(), whole.Distinct())
	}
	if a.Total() != whole.Total() {
		t.Errorf("merged total %d != whole %d", a.Total(), whole.Total())
	}
}

func TestMergePanicsOnMismatchedK(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	a := NewCounter(metric.L2{}, randomPoints(rng, 3, 2))
	b := NewCounter(metric.L2{}, randomPoints(rng, 4, 2))
	defer func() {
		if recover() == nil {
			t.Error("mismatched k should panic")
		}
	}()
	a.Merge(b)
}
