package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distperm/internal/metric"
	"distperm/internal/perm"
)

func vecSites(vs ...metric.Vector) []metric.Point {
	out := make([]metric.Point, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

func TestPermutationLine(t *testing.T) {
	// Sites at 0, 1, 4 on the line.
	sites := vecSites(metric.Vector{0}, metric.Vector{1}, metric.Vector{4})
	pm := NewPermuter(metric.L2{}, sites)
	cases := []struct {
		y    float64
		want perm.Permutation
	}{
		{-1, perm.Permutation{0, 1, 2}},  // closest 0, then 1, then 4
		{0.9, perm.Permutation{1, 0, 2}}, // closest 1
		{3.0, perm.Permutation{2, 1, 0}}, // closest 4, then 1
		{2.4, perm.Permutation{1, 2, 0}},
	}
	for _, c := range cases {
		got := pm.Permutation(metric.Vector{c.y})
		if !got.Equal(c.want) {
			t.Errorf("Π(%v) = %v, want %v", c.y, got, c.want)
		}
	}
}

func TestPermutationTieBreak(t *testing.T) {
	// y equidistant from sites 0 and 1: the paper's rule puts the lower
	// index first.
	sites := vecSites(metric.Vector{0, 0}, metric.Vector{2, 0}, metric.Vector{1, 5})
	pm := NewPermuter(metric.L2{}, sites)
	got := pm.Permutation(metric.Vector{1, 0})
	if !got.Equal(perm.Permutation{0, 1, 2}) {
		t.Errorf("tie-break: got %v, want 012", got)
	}
	// All sites equidistant: identity.
	sites2 := vecSites(metric.Vector{1, 0}, metric.Vector{-1, 0}, metric.Vector{0, 1})
	got2 := NewPermuter(metric.L2{}, sites2).Permutation(metric.Vector{0, 0})
	if !got2.Equal(perm.Permutation{0, 1, 2}) {
		t.Errorf("all-ties: got %v, want identity", got2)
	}
}

func TestPermutationAtSite(t *testing.T) {
	sites := vecSites(metric.Vector{0, 0}, metric.Vector{1, 0}, metric.Vector{0, 1})
	pm := NewPermuter(metric.L2{}, sites)
	got := pm.Permutation(metric.Vector{1, 0}) // exactly site 1
	if got[0] != 1 {
		t.Errorf("point at site 1 should rank site 1 first, got %v", got)
	}
}

func TestPermutationIsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		d := 1 + rng.Intn(4)
		k := 1 + rng.Intn(8)
		sites := make([]metric.Point, k)
		for i := range sites {
			v := make(metric.Vector, d)
			for j := range v {
				v[j] = rng.Float64()
			}
			sites[i] = v
		}
		y := make(metric.Vector, d)
		for j := range y {
			y[j] = rng.Float64()
		}
		p := NewPermuter(metric.L1{}, sites).Permutation(y)
		return p.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPermutationMatchesSortedDistances(t *testing.T) {
	// The permutation must list sites in non-decreasing distance order.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(7)
		sites := make([]metric.Point, k)
		for i := range sites {
			sites[i] = metric.Vector{rng.Float64(), rng.Float64()}
		}
		pm := NewPermuter(metric.LInf{}, sites)
		y := metric.Vector{rng.Float64(), rng.Float64()}
		p := pm.Permutation(y)
		d := pm.Distances(y)
		for i := 1; i < k; i++ {
			if d[p[i-1]] > d[p[i]] {
				t.Fatalf("out of order: %v distances %v", p, d)
			}
			if d[p[i-1]] == d[p[i]] && p[i-1] > p[i] {
				t.Fatalf("tie-break violated: %v distances %v", p, d)
			}
		}
	}
}

func TestPermutationIntoPanicsOnBadBuffer(t *testing.T) {
	pm := NewPermuter(metric.L2{}, vecSites(metric.Vector{0}, metric.Vector{1}))
	defer func() {
		if recover() == nil {
			t.Error("short buffer should panic")
		}
	}()
	pm.PermutationInto(metric.Vector{0.5}, make(perm.Permutation, 3))
}

func TestNewPermuterPanicsWithoutSites(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no sites should panic")
		}
	}()
	NewPermuter(metric.L2{}, nil)
}

func TestPermuterClone(t *testing.T) {
	sites := vecSites(metric.Vector{0}, metric.Vector{1})
	pm := NewPermuter(metric.L2{}, sites)
	clone := pm.Clone()
	if clone.K() != pm.K() {
		t.Error("clone should share k")
	}
	// Clones must not share buffers: interleaved use must not corrupt.
	a := pm.Permutation(metric.Vector{-1})
	b := clone.Permutation(metric.Vector{2})
	if !a.Equal(perm.Permutation{0, 1}) || !b.Equal(perm.Permutation{1, 0}) {
		t.Errorf("clone interference: %v %v", a, b)
	}
}

func TestPermuterAccessors(t *testing.T) {
	sites := vecSites(metric.Vector{0}, metric.Vector{1})
	pm := NewPermuter(metric.L1{}, sites)
	if pm.K() != 2 {
		t.Errorf("K = %d", pm.K())
	}
	if pm.Metric().Name() != "L1" {
		t.Errorf("Metric = %s", pm.Metric().Name())
	}
	if len(pm.Sites()) != 2 {
		t.Errorf("Sites len = %d", len(pm.Sites()))
	}
}

func TestStringMetricPermutations(t *testing.T) {
	sites := []metric.Point{
		metric.String("cat"), metric.String("dog"), metric.String("cart"),
	}
	pm := NewPermuter(metric.Edit{}, sites)
	got := pm.Permutation(metric.String("car"))
	// d(car,cat)=1, d(car,dog)=3, d(car,cart)=1 → tie between 0 and 2,
	// lower index first: 0, 2, 1.
	if !got.Equal(perm.Permutation{0, 2, 1}) {
		t.Errorf("edit-metric permutation = %v, want 031 (0-based 021)", got)
	}
}

func TestCounterBasics(t *testing.T) {
	sites := vecSites(metric.Vector{0}, metric.Vector{1})
	c := NewCounter(metric.L2{}, sites)
	if c.Distinct() != 0 || c.Total() != 0 {
		t.Error("fresh counter should be empty")
	}
	if !c.Add(metric.Vector{-1}) {
		t.Error("first permutation should be new")
	}
	if c.Add(metric.Vector{-2}) {
		t.Error("same permutation should not be new")
	}
	if !c.Add(metric.Vector{5}) {
		t.Error("different permutation should be new")
	}
	if c.Distinct() != 2 {
		t.Errorf("Distinct = %d, want 2", c.Distinct())
	}
	if c.Total() != 3 {
		t.Errorf("Total = %d, want 3", c.Total())
	}
	occ := c.Occupancy()
	if len(occ) != 2 || occ[0] != 2 || occ[1] != 1 {
		t.Errorf("Occupancy = %v, want [2 1]", occ)
	}
}

func TestCounterPermutationsDecoding(t *testing.T) {
	sites := vecSites(metric.Vector{0}, metric.Vector{1}, metric.Vector{2})
	c := NewCounter(metric.L2{}, sites)
	c.AddAll([]metric.Point{
		metric.Vector{-1},  // 012
		metric.Vector{2.9}, // 210
	})
	perms := c.Permutations()
	if len(perms) != 2 {
		t.Fatalf("decoded %d perms", len(perms))
	}
	if !perms[0].Equal(perm.Permutation{0, 1, 2}) || !perms[1].Equal(perm.Permutation{2, 1, 0}) {
		t.Errorf("decoded %v", perms)
	}
}

func TestCountDistinctNeverExceedsKFactorialOrN(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(4)
		n := 1 + rng.Intn(100)
		sites := make([]metric.Point, k)
		for i := range sites {
			sites[i] = metric.Vector{rng.Float64(), rng.Float64()}
		}
		pts := make([]metric.Point, n)
		for i := range pts {
			pts[i] = metric.Vector{rng.Float64(), rng.Float64()}
		}
		got := CountDistinct(metric.L2{}, sites, pts)
		kfact := 1
		for i := 2; i <= k; i++ {
			kfact *= i
		}
		if got > n || got > kfact || got < 1 {
			t.Fatalf("count %d out of range (n=%d, k!=%d)", got, n, kfact)
		}
	}
}

func TestCounterDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sites := make([]metric.Point, 5)
	for i := range sites {
		sites[i] = metric.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	pts := make([]metric.Point, 500)
	for i := range pts {
		pts[i] = metric.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	a := CountDistinct(metric.L1{}, sites, pts)
	b := CountDistinct(metric.L1{}, sites, pts)
	if a != b {
		t.Errorf("counting is not deterministic: %d vs %d", a, b)
	}
}
