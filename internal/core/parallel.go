package core

import (
	"runtime"
	"sync"

	"distperm/internal/metric"
)

// Merge folds other's tallies into c. Both counters must have been created
// with the same sites and metric (same k at minimum; merging counters over
// different site sets is meaningless and panics on mismatched k).
func (c *Counter) Merge(other *Counter) {
	if c.p.K() != other.p.K() {
		panic("core: merging counters with different site counts")
	}
	for key, n := range other.counts {
		c.counts[key] += n
	}
}

// ShardWorkers returns the worker count for an n-element sharded scan:
// GOMAXPROCS (the process's parallelism budget, not the machine's core
// count) capped at n.
func ShardWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ShardIndexes partitions [0, n) into at most workers contiguous non-empty
// ranges and runs fn on each concurrently, returning the number of shards
// used once all finish. fn receives its shard number and [lo, hi) range;
// shard numbers are dense, so a shards-sized slice indexed by shard is a
// safe place for per-shard results.
func ShardIndexes(n, workers int, fn func(shard, lo, hi int)) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	shards := 0
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		shard := shards
		shards++
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			fn(shard, lo, hi)
		}(shard, lo, hi)
	}
	wg.Wait()
	return shards
}

// ParallelCount counts distinct distance permutations of points with
// respect to sites under m, sharding the scan across GOMAXPROCS goroutines
// with per-shard counters merged at the end. Results are identical to
// CountDistinct; use it when a single count dominates wall-clock (the
// 10^6-point experiments).
func ParallelCount(m metric.Metric, sites, points []metric.Point) int {
	workers := ShardWorkers(len(points))
	if workers <= 1 {
		return CountDistinct(m, sites, points)
	}
	counters := make([]*Counter, workers)
	shards := ShardIndexes(len(points), workers, func(shard, lo, hi int) {
		c := NewCounter(m, sites)
		c.AddAll(points[lo:hi])
		counters[shard] = c
	})
	total := counters[0]
	for _, c := range counters[1:shards] {
		total.Merge(c)
	}
	return total.Distinct()
}
