package core

import (
	"runtime"
	"sync"

	"distperm/internal/metric"
)

// Merge folds other's tallies into c. Both counters must have been created
// with the same sites and metric (same k at minimum; merging counters over
// different site sets is meaningless and panics on mismatched k).
func (c *Counter) Merge(other *Counter) {
	if c.p.K() != other.p.K() {
		panic("core: merging counters with different site counts")
	}
	for key, n := range other.counts {
		c.counts[key] += n
	}
}

// ParallelCount counts distinct distance permutations of points with
// respect to sites under m, sharding the scan across GOMAXPROCS goroutines
// with per-shard counters merged at the end. Results are identical to
// CountDistinct; use it when a single count dominates wall-clock (the
// 10^6-point experiments).
func ParallelCount(m metric.Metric, sites, points []metric.Point) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		return CountDistinct(m, sites, points)
	}
	counters := make([]*Counter, workers)
	var wg sync.WaitGroup
	chunk := (len(points) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(points) {
			hi = len(points)
		}
		if lo >= hi {
			counters[w] = NewCounter(m, sites)
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			c := NewCounter(m, sites)
			c.AddAll(points[lo:hi])
			counters[w] = c
		}(w, lo, hi)
	}
	wg.Wait()
	total := counters[0]
	for _, c := range counters[1:] {
		total.Merge(c)
	}
	return total.Distinct()
}
