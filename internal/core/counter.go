package core

import (
	"sort"

	"distperm/internal/metric"
	"distperm/internal/perm"
)

// Counter tallies the distinct distance permutations occurring in a stream
// of points, the statistic measured throughout the paper's Section 5. It
// also records how many points mapped to each permutation, which supports
// the paper's "≈10 database points per observed permutation" style of
// analysis (occupancy).
type Counter struct {
	p      *Permuter
	counts map[string]int
	buf    perm.Permutation
}

// NewCounter returns a Counter over the given sites and metric.
func NewCounter(m metric.Metric, sites []metric.Point) *Counter {
	p := NewPermuter(m, sites)
	return &Counter{
		p:      p,
		counts: make(map[string]int),
		buf:    make(perm.Permutation, p.K()),
	}
}

// Add computes the distance permutation of y and records it. It returns
// true if the permutation had not been seen before.
func (c *Counter) Add(y metric.Point) bool {
	c.p.PermutationInto(y, c.buf)
	k := c.buf.Key()
	_, seen := c.counts[k]
	c.counts[k]++
	return !seen
}

// AddAll records every point in the slice.
func (c *Counter) AddAll(points []metric.Point) {
	for _, y := range points {
		c.Add(y)
	}
}

// Distinct returns the number of distinct permutations observed so far —
// |{Π_y : y added}|.
func (c *Counter) Distinct() int { return len(c.counts) }

// Total returns the number of points added.
func (c *Counter) Total() int {
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}

// Permutations returns the observed permutations, each decoded, in
// ascending lexicographic-rank order. Available only for k ≤ 20 (the packed
// key range); it panics otherwise.
func (c *Counter) Permutations() []perm.Permutation {
	k := c.p.K()
	if k > 20 {
		panic("core: Permutations decoding supports k <= 20")
	}
	ranks := make([]uint64, 0, len(c.counts))
	for key := range c.counts {
		var r uint64
		for i := 0; i < 8; i++ {
			r |= uint64(key[i]) << (8 * i)
		}
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(a, b int) bool { return ranks[a] < ranks[b] })
	out := make([]perm.Permutation, len(ranks))
	for i, r := range ranks {
		out[i] = perm.Unrank64(k, r)
	}
	return out
}

// Occupancy returns the multiset of per-permutation point counts, sorted
// descending. Occupancy[0] is the population of the most popular cell of the
// generalized Voronoi diagram that the database actually hit.
func (c *Counter) Occupancy() []int {
	out := make([]int, 0, len(c.counts))
	for _, v := range c.counts {
		out = append(out, v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// CountDistinct is the one-shot convenience: the number of distinct
// distance permutations of points with respect to sites under m.
func CountDistinct(m metric.Metric, sites, points []metric.Point) int {
	c := NewCounter(m, sites)
	c.AddAll(points)
	return c.Distinct()
}
