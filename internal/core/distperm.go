// Package core implements the paper's central object: the distance
// permutation. Given k fixed reference points (sites) x_1..x_k in a metric
// space, the distance permutation Π_y of a point y is the unique permutation
// sorting the site indices into order of increasing distance from y, with
// ties broken toward the lower site index (Chávez, Figueroa, Navarro 2005;
// Skala 2008 Definition in §1).
//
// The package provides a reusable Permuter that computes Π_y with a single
// distance evaluation per site, and a Counter that streams over a point set
// tallying the distinct permutations that occur — the quantity the paper's
// experiments (Tables 2 and 3) measure.
package core

import (
	"fmt"
	"sort"

	"distperm/internal/metric"
	"distperm/internal/perm"
)

// Permuter computes distance permutations with respect to a fixed list of
// sites under a fixed metric. It reuses internal buffers; a Permuter is not
// safe for concurrent use (clone one per goroutine with Clone).
type Permuter struct {
	m     metric.Metric
	sites []metric.Point
	dists []float64
	order []int
}

// NewPermuter returns a Permuter for the given sites under m. It panics if
// fewer than one site is supplied.
func NewPermuter(m metric.Metric, sites []metric.Point) *Permuter {
	if len(sites) == 0 {
		panic("core: NewPermuter requires at least one site")
	}
	return &Permuter{
		m:     m,
		sites: sites,
		dists: make([]float64, len(sites)),
		order: make([]int, len(sites)),
	}
}

// K returns the number of sites.
func (p *Permuter) K() int { return len(p.sites) }

// Metric returns the metric the Permuter evaluates.
func (p *Permuter) Metric() metric.Metric { return p.m }

// Sites returns the site list (shared, not copied).
func (p *Permuter) Sites() []metric.Point { return p.sites }

// Clone returns an independent Permuter sharing the same sites and metric,
// for concurrent use.
func (p *Permuter) Clone() *Permuter {
	return NewPermuter(p.m, p.sites)
}

// Permutation returns Π_y: position i holds the index (0-based) of the
// (i+1)-th closest site to y, ties broken toward the smaller site index.
// The returned slice is freshly allocated. Exactly k distance evaluations
// are performed.
func (p *Permuter) Permutation(y metric.Point) perm.Permutation {
	out := make(perm.Permutation, len(p.sites))
	p.PermutationInto(y, out)
	return out
}

// PermutationInto computes Π_y into out, which must have length k. It is
// the allocation-free variant for hot loops.
func (p *Permuter) PermutationInto(y metric.Point, out perm.Permutation) {
	if len(out) != len(p.sites) {
		panic(fmt.Sprintf("core: PermutationInto buffer length %d, want %d", len(out), len(p.sites)))
	}
	for i, s := range p.sites {
		p.dists[i] = p.m.Distance(s, y)
		p.order[i] = i
	}
	d, o := p.dists, p.order
	sort.Slice(o, func(a, b int) bool {
		if d[o[a]] != d[o[b]] {
			return d[o[a]] < d[o[b]]
		}
		return o[a] < o[b] // the paper's tie-break: lower index is closer
	})
	copy(out, o)
}

// Distances returns the distances from y to every site, in site order. The
// returned slice is freshly allocated.
func (p *Permuter) Distances(y metric.Point) []float64 {
	out := make([]float64, len(p.sites))
	for i, s := range p.sites {
		out[i] = p.m.Distance(s, y)
	}
	return out
}
