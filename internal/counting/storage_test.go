package counting

import (
	"math"
	"math/big"
	"testing"
)

func TestBits(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := Bits(big.NewInt(c.v)); got != c.want {
			t.Errorf("Bits(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBitsPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bits(0) should panic")
		}
	}()
	Bits(big.NewInt(0))
}

func TestStorageComparison(t *testing.T) {
	s := Storage(2, 8)
	// lg 8! = lg 40320 → 16 bits; lg N(2,8) = lg 351 → 9 bits.
	if s.FullPerm != 16 {
		t.Errorf("FullPerm = %d, want 16", s.FullPerm)
	}
	if s.Euclidean != 9 {
		t.Errorf("Euclidean = %d, want 9", s.Euclidean)
	}
	// lg(C(8,2)+1) = lg 29 → 5 bits.
	if s.TreeMetric != 5 {
		t.Errorf("TreeMetric = %d, want 5", s.TreeMetric)
	}
	if s.NaiveDistances != 512 {
		t.Errorf("NaiveDistances = %d, want 512", s.NaiveDistances)
	}
}

func TestStorageOrdering(t *testing.T) {
	// Euclidean ≤ FullPerm always; both far below raw distances.
	for d := 1; d <= 5; d++ {
		for k := 2; k <= 16; k++ {
			s := Storage(d, k)
			if s.Euclidean > s.FullPerm {
				t.Errorf("d=%d k=%d: Euclidean bits exceed full-perm bits", d, k)
			}
			if s.TreeMetric > s.Euclidean && d >= 1 {
				// Tree bound = N(1,k) ≤ N(d,k), so tree bits ≤ Euclidean bits.
				t.Errorf("d=%d k=%d: tree bits exceed Euclidean bits", d, k)
			}
			if s.FullPerm >= s.NaiveDistances {
				t.Errorf("d=%d k=%d: permutation bits should beat raw distances", d, k)
			}
		}
	}
}

func TestStorageThetaDLogK(t *testing.T) {
	// Corollary 8: Euclidean bits ≤ 2d·lg k (from N ≤ k^{2d}).
	for d := 1; d <= 6; d++ {
		for k := 2; k <= 20; k++ {
			limit := 2 * float64(d) * math.Log2(float64(k))
			if got := Storage(d, k).Euclidean; float64(got) > limit+1 {
				t.Errorf("d=%d k=%d: %d bits exceeds 2d lg k = %.1f", d, k, got, limit)
			}
		}
	}
}

func TestSaturationK(t *testing.T) {
	// Theorem 6: all k! realisable up to k = d+1, so the first
	// constrained k is d+2.
	for d := 1; d <= 8; d++ {
		if got := SaturationK(d); got != d+2 {
			t.Errorf("SaturationK(%d) = %d, want %d", d, got, d+2)
		}
	}
}

func TestInformationRatio(t *testing.T) {
	// Ratio is 1 in the factorial regime and strictly decreasing beyond.
	for d := 1; d <= 4; d++ {
		if r := InformationRatio(d, d+1); math.Abs(r-1) > 1e-12 {
			t.Errorf("ratio at k=d+1 should be 1, got %v", r)
		}
		prev := 1.0
		for k := d + 2; k <= 30; k++ {
			r := InformationRatio(d, k)
			if r >= prev {
				t.Errorf("d=%d k=%d: ratio %v not decreasing (prev %v)", d, k, r, prev)
			}
			if r <= 0 || r > 1 {
				t.Errorf("d=%d k=%d: ratio %v out of (0,1]", d, k, r)
			}
			prev = r
		}
	}
}

func TestBigLog2LargeValues(t *testing.T) {
	// lg(2^100) = 100 exactly.
	v := new(big.Int).Lsh(big.NewInt(1), 100)
	if got := bigLog2(v); math.Abs(got-100) > 1e-9 {
		t.Errorf("bigLog2(2^100) = %v", got)
	}
	if got := bigLog2(big.NewInt(1)); got != 0 {
		t.Errorf("bigLog2(1) = %v", got)
	}
}
