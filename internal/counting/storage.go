package counting

import (
	"math"
	"math/big"
)

// StorageBits bundles the storage-space comparison the paper draws in §4:
// the bits needed per database point to store a distance permutation under
// three encodings.
type StorageBits struct {
	K int // number of sites
	D int // dimensionality (vector spaces)

	// FullPerm is ⌈lg k!⌉: bits for an unrestricted permutation, the
	// O(k log k) cost the Chávez/Figueroa/Navarro representation pays.
	FullPerm int
	// Euclidean is ⌈lg N_{d,2}(k)⌉: bits when only realisable Euclidean
	// permutations are enumerated, the paper's Θ(d log k) improvement.
	Euclidean int
	// TreeMetric is ⌈lg (C(k,2)+1)⌉: bits in any tree metric space.
	TreeMetric int
	// NaiveDistances is k·64: bits for LAESA-style raw float64 distances,
	// for scale.
	NaiveDistances int
}

// Bits returns ⌈lg v⌉ for v ≥ 1: the bits needed to address v distinct
// values. Bits(1) = 0.
func Bits(v *big.Int) int {
	if v.Sign() <= 0 {
		panic("counting: Bits of non-positive value")
	}
	// ⌈lg v⌉ = bitlen(v−1) for v ≥ 2.
	w := new(big.Int).Sub(v, big.NewInt(1))
	return w.BitLen()
}

// Storage computes the storage comparison for k sites in d dimensions.
func Storage(d, k int) StorageBits {
	return StorageBits{
		K:              k,
		D:              d,
		FullPerm:       Bits(Factorial(k)),
		Euclidean:      Bits(EuclideanCount(d, k)),
		TreeMetric:     Bits(TreeBound(k)),
		NaiveDistances: 64 * k,
	}
}

// SaturationK returns the smallest k at which N_{d,2}(k) < k!, i.e. the
// number of sites beyond which the Euclidean structure starts constraining
// which permutations can occur. By Theorem 6 this is d+2 (all k! occur up to
// k = d+1).
func SaturationK(d int) int {
	for k := 2; ; k++ {
		if EuclideanCount(d, k).Cmp(Factorial(k)) < 0 {
			return k
		}
	}
}

// InformationRatio returns lg N_{d,2}(k) / lg k!, the fraction of a full
// permutation's information content that a Euclidean distance permutation
// can actually carry. It quantifies the paper's closing observation that
// adding sites beyond ≈2d yields little additional index information.
func InformationRatio(d, k int) float64 {
	if k < 2 {
		return 1
	}
	n := bigLog2(EuclideanCount(d, k))
	f := bigLog2(Factorial(k))
	return n / f
}

// bigLog2 returns lg v for v ≥ 1 with enough precision for ratios.
func bigLog2(v *big.Int) float64 {
	bl := v.BitLen()
	if bl <= 53 {
		f, _ := new(big.Float).SetInt(v).Float64()
		return math.Log2(f)
	}
	// Scale down to the float range, then add back the shifted bits.
	shift := uint(bl - 53)
	w := new(big.Int).Rsh(v, shift)
	f, _ := new(big.Float).SetInt(w).Float64()
	return math.Log2(f) + float64(shift)
}
