package counting

import (
	"math"
	"math/big"
	"testing"
)

// paperTable1 is the full Table 1 from the paper, transcribed verbatim:
// rows d = 1..10, columns k = 2..12.
var paperTable1 = [10][11]int64{
	{2, 4, 7, 11, 16, 22, 29, 37, 46, 56, 67},
	{2, 6, 18, 46, 101, 197, 351, 583, 916, 1376, 1992},
	{2, 6, 24, 96, 326, 932, 2311, 5119, 10366, 19526, 34662},
	{2, 6, 24, 120, 600, 2556, 9080, 27568, 73639, 177299, 392085},
	{2, 6, 24, 120, 720, 4320, 22212, 94852, 342964, 1079354, 3029643},
	{2, 6, 24, 120, 720, 5040, 35280, 212976, 1066644, 4496284, 16369178},
	{2, 6, 24, 120, 720, 5040, 40320, 322560, 2239344, 12905784, 62364908},
	{2, 6, 24, 120, 720, 5040, 40320, 362880, 3265920, 25659360, 167622984},
	{2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800, 36288000, 318540960},
	{2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800, 39916800, 439084800},
}

func TestEuclideanCountMatchesPaperTable1(t *testing.T) {
	for di, row := range paperTable1 {
		d := di + 1
		for ki, want := range row {
			k := ki + 2
			if got := EuclideanCount64(d, k); got != want {
				t.Errorf("N(%d,%d) = %d, want %d (paper Table 1)", d, k, got, want)
			}
		}
	}
}

func TestEuclideanCountBaseCases(t *testing.T) {
	for k := 1; k <= 10; k++ {
		if got := EuclideanCount64(0, k); got != 1 {
			t.Errorf("N(0,%d) = %d, want 1", k, got)
		}
	}
	for d := 0; d <= 10; d++ {
		if got := EuclideanCount64(d, 1); got != 1 {
			t.Errorf("N(%d,1) = %d, want 1", d, got)
		}
	}
}

func TestEuclideanCountRecurrence(t *testing.T) {
	// N(d,k) = N(d,k−1) + (k−1)·N(d−1,k−1) must hold on the whole grid.
	for d := 1; d <= 8; d++ {
		for k := 2; k <= 14; k++ {
			lhs := EuclideanCount(d, k)
			rhs := new(big.Int).Mul(big.NewInt(int64(k-1)), EuclideanCount(d-1, k-1))
			rhs.Add(rhs, EuclideanCount(d, k-1))
			if lhs.Cmp(rhs) != 0 {
				t.Errorf("recurrence fails at (%d,%d): %v vs %v", d, k, lhs, rhs)
			}
		}
	}
}

func TestTheorem6FactorialRegime(t *testing.T) {
	// N(d,k) = k! whenever d ≥ k−1 (Theorem 6).
	for k := 1; k <= 9; k++ {
		for d := k - 1; d <= k+2; d++ {
			if d < 0 {
				continue
			}
			if got, want := EuclideanCount(d, k), Factorial(k); got.Cmp(want) != 0 {
				t.Errorf("N(%d,%d) = %v, want %d! = %v", d, k, got, k, want)
			}
		}
	}
	// And strictly less than k! when d < k−1 (and d ≥ 1, k ≥ 3).
	for k := 3; k <= 9; k++ {
		for d := 1; d < k-1; d++ {
			if EuclideanCount(d, k).Cmp(Factorial(k)) >= 0 {
				t.Errorf("N(%d,%d) should be < %d!", d, k, k)
			}
		}
	}
}

func TestOneDimensionEqualsTreeBound(t *testing.T) {
	// The paper notes N(1,k) = C(k,2)+1, equal to the tree-metric bound.
	for k := 1; k <= 20; k++ {
		if got, want := EuclideanCount(1, k), TreeBound(k); got.Cmp(want) != 0 {
			t.Errorf("N(1,%d) = %v, want %v", k, got, want)
		}
	}
}

func TestTreeBound(t *testing.T) {
	cases := map[int]int64{1: 1, 2: 2, 3: 4, 4: 7, 5: 11, 12: 67}
	for k, want := range cases {
		if got := TreeBound64(k); got != want {
			t.Errorf("TreeBound(%d) = %d, want %d", k, got, want)
		}
		if TreeBound(k).Int64() != want {
			t.Errorf("big TreeBound(%d) mismatch", k)
		}
	}
}

func TestCorollary8UpperBound(t *testing.T) {
	// N(d,k) ≤ k^{2d}.
	for d := 1; d <= 6; d++ {
		for k := 1; k <= 14; k++ {
			bound := new(big.Int).Exp(big.NewInt(int64(k)), big.NewInt(int64(2*d)), nil)
			if EuclideanCount(d, k).Cmp(bound) > 0 {
				t.Errorf("N(%d,%d) exceeds k^2d", d, k)
			}
		}
	}
}

func TestCorollary8Asymptotics(t *testing.T) {
	// N(d,k) / (k^{2d}/(2^d d!)) → 1; at k = 400 the ratio should be
	// within a few percent for small d.
	for d := 1; d <= 3; d++ {
		k := 400
		n := new(big.Float).SetInt(EuclideanCount(d, k))
		approx := big.NewFloat(Asymptotic(d, k))
		ratio, _ := new(big.Float).Quo(n, approx).Float64()
		if math.Abs(ratio-1) > 0.05 {
			t.Errorf("d=%d: asymptotic ratio %v at k=%d", d, ratio, k)
		}
	}
}

func TestLeadingCoefficient(t *testing.T) {
	cases := map[int]float64{0: 1, 1: 0.5, 2: 0.125, 3: 1.0 / 48}
	for d, want := range cases {
		if got := LeadingCoefficient(d); math.Abs(got-want) > 1e-15 {
			t.Errorf("LeadingCoefficient(%d) = %v, want %v", d, got, want)
		}
	}
}

func TestCakeNumbers(t *testing.T) {
	// Classical values: S_2(m) = 1 + m(m+1)/2 ("lazy caterer"),
	// S_3 = "cake numbers".
	lazyCaterer := []int64{1, 2, 4, 7, 11, 16, 22, 29}
	for m, want := range lazyCaterer {
		if got := Cake(2, m); got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("S_2(%d) = %v, want %d", m, got, want)
		}
	}
	cake3 := []int64{1, 2, 4, 8, 15, 26, 42, 64, 93}
	for m, want := range cake3 {
		if got := Cake(3, m); got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("S_3(%d) = %v, want %d", m, got, want)
		}
	}
}

func TestCakeRecurrence(t *testing.T) {
	// S_d(m) = S_d(m−1) + S_{d−1}(m−1), S_d(0) = S_0(m) = 1 (Price).
	for d := 1; d <= 5; d++ {
		for m := 1; m <= 12; m++ {
			lhs := Cake(d, m)
			rhs := new(big.Int).Add(Cake(d, m-1), Cake(d-1, m-1))
			if lhs.Cmp(rhs) != 0 {
				t.Errorf("cake recurrence fails at (%d,%d)", d, m)
			}
		}
	}
	// S_d(m) = 2^m when d ≥ m (every subset of cuts).
	for m := 0; m <= 6; m++ {
		want := new(big.Int).Lsh(big.NewInt(1), uint(m))
		if got := Cake(m, m); got.Cmp(want) != 0 {
			t.Errorf("S_%d(%d) = %v, want 2^%d", m, m, got, m)
		}
	}
}

func TestTheorem9BoundsDominateEuclidean(t *testing.T) {
	// The L1/L∞ bounds are (loose) upper bounds built from more
	// hyperplanes than the Euclidean case uses, so they must dominate
	// N(d,2)(k).
	for d := 1; d <= 4; d++ {
		for k := 2; k <= 8; k++ {
			n := EuclideanCount(d, k)
			if L1Bound(d, k).Cmp(n) < 0 {
				t.Errorf("L1Bound(%d,%d) below Euclidean count", d, k)
			}
			if LInfBound(d, k).Cmp(n) < 0 {
				t.Errorf("LInfBound(%d,%d) below Euclidean count", d, k)
			}
		}
	}
}

func TestTheorem9BoundOneDimension(t *testing.T) {
	// In one dimension every Lp metric coincides, each bisector is (at
	// most) 2^2 = 4 hyperplanes for L1 / 4·1 = 4 for L∞ — the bounds are
	// loose but must still be S_1 of the plane count.
	if got, want := L1Bound(1, 3), Cake(1, 12); got.Cmp(want) != 0 {
		t.Errorf("L1Bound(1,3) = %v, want S_1(12) = %v", got, want)
	}
	if got, want := LInfBound(1, 3), Cake(1, 12); got.Cmp(want) != 0 {
		t.Errorf("LInfBound(1,3) = %v, want S_1(12) = %v", got, want)
	}
}

func TestGeneralUpperBound(t *testing.T) {
	// p=2 → exact N; any bound is capped at k!.
	if got := GeneralUpperBound(3, 5, 2); got.Cmp(big.NewInt(96)) != 0 {
		t.Errorf("GeneralUpperBound L2 = %v, want 96", got)
	}
	if got := GeneralUpperBound(10, 4, 1); got.Cmp(Factorial(4)) != 0 {
		t.Errorf("GeneralUpperBound should cap at k!: %v", got)
	}
	if got := GeneralUpperBound(2, 3, 3.5); got.Cmp(Factorial(3)) != 0 {
		t.Errorf("GeneralUpperBound for general p should be k!: %v", got)
	}
	if got := GeneralUpperBound(1, 6, math.Inf(1)); got.Cmp(Factorial(6)) > 0 {
		t.Errorf("GeneralUpperBound Linf should never exceed k!")
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, r int
		want int64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {4, 5, 0}, {4, -1, 0}, {12, 6, 924},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.r); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("C(%d,%d) = %v, want %d", c.n, c.r, got, c.want)
		}
	}
}

func TestFactorialValues(t *testing.T) {
	cases := map[int]int64{0: 1, 1: 1, 4: 24, 12: 479001600}
	for n, want := range cases {
		if got := Factorial(n); got.Cmp(big.NewInt(want)) != 0 {
			t.Errorf("%d! = %v, want %d", n, got, want)
		}
	}
}

func TestEuclideanCountPanicsOnBadArgs(t *testing.T) {
	for _, c := range []struct{ d, k int }{{-1, 2}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EuclideanCount(%d,%d) should panic", c.d, c.k)
				}
			}()
			EuclideanCount(c.d, c.k)
		}()
	}
}

func TestEuclideanCountMemoisationConcurrency(t *testing.T) {
	// Hammer the memo table from several goroutines; the race detector
	// (go test -race) validates the locking.
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for k := 2; k <= 40; k++ {
				EuclideanCount(3+g%4, k)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if EuclideanCount64(3, 5) != 96 {
		t.Error("memoised value corrupted")
	}
}
