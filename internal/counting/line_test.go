package counting

import (
	"math/rand"
	"testing"

	"distperm/internal/core"
	"distperm/internal/metric"
)

func TestExactLineCountGeneric(t *testing.T) {
	// Random (almost surely generic) sites attain N(1,k) = C(k,2)+1.
	rng := rand.New(rand.NewSource(60))
	for k := 1; k <= 10; k++ {
		sites := make([]float64, k)
		for i := range sites {
			sites[i] = rng.Float64() * 100
		}
		if got, want := ExactLineCount(sites), int(TreeBound64(k)); got != want {
			t.Errorf("k=%d: ExactLineCount = %d, want %d", k, got, want)
		}
	}
}

func TestExactLineCountDegenerate(t *testing.T) {
	// Evenly spaced sites share midpoints.
	for k := 1; k <= 12; k++ {
		sites := make([]float64, k)
		for i := range sites {
			sites[i] = float64(i)
		}
		if got, want := ExactLineCount(sites), EvenlySpacedLineCount(k); got != want {
			t.Errorf("k=%d evenly spaced: %d, want %d", k, got, want)
		}
	}
	// The degenerate count is strictly below the bound for k ≥ 4.
	for k := 4; k <= 12; k++ {
		if int64(EvenlySpacedLineCount(k)) >= TreeBound64(k) {
			t.Errorf("k=%d: evenly spaced should be below C(k,2)+1", k)
		}
	}
}

func TestExactLineCountMatchesSampledCounter(t *testing.T) {
	// Dense sampling of the line must observe exactly the analytic count.
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(6)
		sites := make([]float64, k)
		sitePts := make([]metric.Point, k)
		for i := range sites {
			sites[i] = rng.Float64()
			sitePts[i] = metric.Vector{sites[i]}
		}
		want := ExactLineCount(sites)
		// Sample densely across and beyond the sites' range.
		var pts []metric.Point
		for x := -0.5; x <= 1.5; x += 0.0005 {
			pts = append(pts, metric.Vector{x})
		}
		got := core.CountDistinct(metric.L2{}, sitePts, pts)
		if got != want {
			t.Errorf("trial %d (k=%d): sampled %d, analytic %d", trial, k, got, want)
		}
	}
}

func TestExactLineCountSharedMidpoint(t *testing.T) {
	// Sites {0, 1, 2}: midpoints 0.5, 1.0, 1.5 → 4 regions; sites
	// {0, 2, 4}: 1, 2, 3 → 4; sites {0, 1, 3}: 0.5, 1.5, 2 → 4; but
	// {0, 2, 4, 6}: midpoints 1,2,3,4,5 (3 and others coincide) → 6.
	if got := ExactLineCount([]float64{0, 2, 4, 6}); got != 6 {
		t.Errorf("got %d, want 6", got)
	}
}

func TestExactLineCountPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty sites should panic")
			}
		}()
		ExactLineCount(nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate sites should panic")
			}
		}()
		ExactLineCount([]float64{1, 1})
	}()
}

func TestEvenlySpacedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	EvenlySpacedLineCount(0)
}
