package distperm

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"distperm/internal/sisap"
)

// Spec describes an index to build. The zero value plus an Index kind is a
// usable spec; K defaults per kind.
type Spec struct {
	// Index is the registry kind: one of Kinds() ("linear", "aesa",
	// "iaesa", "laesa", "distperm", "vptree", "ghtree", plus any
	// caller-registered kinds).
	Index string
	// K is the number of pivots (laesa) or sites (distperm). 0 means
	// DefaultK, capped at the database size.
	K int
	// PermDist is the candidate-ordering permutation distance for
	// distperm (default Footrule).
	PermDist PermDistance
	// Seed drives the randomised choices (site selection, tree pivots), so
	// builds are reproducible.
	Seed int64
}

// DefaultK is the pivot/site count used when Spec.K is zero.
const DefaultK = 8

// Builder constructs an index over db from a validated spec (db non-empty;
// for kinds that use K, 1 ≤ spec.K ≤ db.N()).
type Builder func(db *DB, spec Spec) (Index, error)

var (
	buildersMu sync.RWMutex
	builders   = map[string]Builder{}
)

// Register adds an index kind to the build registry. It panics on a
// duplicate or incomplete registration — misregistration is a programming
// error, not a runtime condition.
func Register(kind string, b Builder) {
	if kind == "" || b == nil {
		panic("distperm: Register requires a kind and a Builder")
	}
	buildersMu.Lock()
	defer buildersMu.Unlock()
	if _, dup := builders[kind]; dup {
		panic(fmt.Sprintf("distperm: index kind %q registered twice", kind))
	}
	builders[kind] = b
}

// Kinds returns the registered index kinds, sorted.
func Kinds() []string {
	buildersMu.RLock()
	defer buildersMu.RUnlock()
	kinds := make([]string, 0, len(builders))
	for k := range builders {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// Build constructs the index described by spec over db — the single entry
// point in front of the family's seven constructors. Unknown kinds and
// out-of-range parameters are reported as errors.
func Build(db *DB, spec Spec) (Index, error) {
	if db == nil || db.N() == 0 {
		return nil, fmt.Errorf("distperm: Build requires a non-empty database")
	}
	buildersMu.RLock()
	b, ok := builders[spec.Index]
	buildersMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("distperm: unknown index kind %q (have %s)",
			spec.Index, strings.Join(Kinds(), ", "))
	}
	if spec.K == 0 {
		spec.K = DefaultK
		if spec.K > db.N() {
			spec.K = db.N()
		}
	}
	if spec.K < 1 || spec.K > db.N() {
		return nil, fmt.Errorf("distperm: k=%d out of range 1..%d", spec.K, db.N())
	}
	return b(db, spec)
}

// sampleSites draws k distinct IDs uniformly from [0, n): the first k steps
// of a Fisher–Yates shuffle over a sparse (map-backed) array, so selection
// costs O(k) time and space where rng.Perm(n)[:k] allocates O(n) ints for
// k ≪ n. Deterministic for a given rng state, so builds stay
// seed-reproducible.
func sampleSites(rng *rand.Rand, n, k int) []int {
	displaced := make(map[int]int, 2*k)
	at := func(i int) int {
		if v, ok := displaced[i]; ok {
			return v
		}
		return i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		out[i] = at(j)
		displaced[j] = at(i)
	}
	return out
}

func init() {
	Register("linear", func(db *DB, spec Spec) (Index, error) {
		return sisap.NewLinearScan(db), nil
	})
	Register("aesa", func(db *DB, spec Spec) (Index, error) {
		return sisap.NewAESA(db), nil
	})
	Register("iaesa", func(db *DB, spec Spec) (Index, error) {
		return sisap.NewIAESA(db), nil
	})
	Register("laesa", func(db *DB, spec Spec) (Index, error) {
		return sisap.NewLAESAMaxSpread(db, spec.K), nil
	})
	Register("distperm", func(db *DB, spec Spec) (Index, error) {
		rng := rand.New(rand.NewSource(spec.Seed))
		return sisap.NewPermIndex(db, sampleSites(rng, db.N(), spec.K), spec.PermDist), nil
	})
	Register("vptree", func(db *DB, spec Spec) (Index, error) {
		return sisap.NewVPTree(db, rand.New(rand.NewSource(spec.Seed))), nil
	})
	Register("ghtree", func(db *DB, spec Spec) (Index, error) {
		return sisap.NewGHTree(db, rand.New(rand.NewSource(spec.Seed))), nil
	})
}
