package distperm

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"

	"distperm/internal/sisap"
	"distperm/pkg/obs"
)

// ShardedIndex partitions one database across disjoint shards, one index per
// shard; see BuildSharded. It satisfies Index, so WriteIndex/ReadIndex
// round-trip it through the "sharded" codec, and a plain Engine can serve
// it; ShardedEngine serves it with one worker pool per shard instead.
type ShardedIndex = sisap.ShardedIndex

// Partitioner assigns database points to shards — the placement seam of the
// sharded layer. Implementations must be deterministic: the partition map is
// serialised with the index, and rebuilding with the same inputs must shard
// identically.
type Partitioner interface {
	// Name identifies the strategy (e.g. for CLI flags).
	Name() string
	// Shard returns the shard in [0, shards) for the point with global ID
	// id. Implementations may use the ID, the point's content, or both.
	Shard(id int, p Point, shards int) int
}

// RoundRobin deals points to shards in ID order (id mod shards): perfectly
// balanced shard sizes, placement independent of point content.
type RoundRobin struct{}

// Name returns "roundrobin".
func (RoundRobin) Name() string { return "roundrobin" }

// Shard returns id mod shards.
func (RoundRobin) Shard(id int, _ Point, shards int) int { return id % shards }

// HashPoint places each point by an FNV-1a hash of its content, so a point's
// shard is stable under database reordering or growth. It supports the
// package's point types (Vector, String); other dynamic types panic, because
// no generic fallback (e.g. formatting the value) could honour the
// Partitioner determinism contract for pointer-typed points. Balance is
// statistical, not exact, and a pathological dataset can leave a shard
// empty — Partition reports that as an error.
type HashPoint struct{}

// Name returns "hash".
func (HashPoint) Name() string { return "hash" }

// Shard hashes the point's content into [0, shards).
func (HashPoint) Shard(_ int, p Point, shards int) int {
	h := fnv.New64a()
	switch v := p.(type) {
	case Vector:
		var b [8]byte
		for _, x := range v {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
			h.Write(b[:])
		}
	case String:
		h.Write([]byte(v))
	default:
		panic(fmt.Sprintf("distperm: HashPoint cannot hash %T points; use RoundRobin or a custom Partitioner", p))
	}
	return int(h.Sum64() % uint64(shards))
}

var (
	partitionersMu sync.RWMutex
	partitioners   = map[string]Partitioner{}
)

// RegisterPartitioner adds a placement strategy to the partitioner registry
// under its Name(), making it selectable by name from the CLI and the
// serving daemon — the same extension seam Register gives index kinds. It
// panics on a duplicate or incomplete registration; misregistration is a
// programming error, not a runtime condition. RoundRobin and HashPoint are
// pre-registered.
func RegisterPartitioner(p Partitioner) {
	if p == nil || p.Name() == "" {
		panic("distperm: RegisterPartitioner requires a named Partitioner")
	}
	partitionersMu.Lock()
	defer partitionersMu.Unlock()
	if _, dup := partitioners[p.Name()]; dup {
		panic(fmt.Sprintf("distperm: partitioner %q registered twice", p.Name()))
	}
	partitioners[p.Name()] = p
}

// Partitioners returns the registered strategy names, sorted.
func Partitioners() []string {
	partitionersMu.RLock()
	defer partitionersMu.RUnlock()
	names := make([]string, 0, len(partitioners))
	for name := range partitioners {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PartitionerByName maps a registered strategy name ("roundrobin", "hash",
// plus any caller-registered strategies) to its Partitioner.
func PartitionerByName(name string) (Partitioner, error) {
	partitionersMu.RLock()
	p, ok := partitioners[name]
	partitionersMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("distperm: unknown partitioner %q (have %s)",
			name, strings.Join(Partitioners(), ", "))
	}
	return p, nil
}

func init() {
	RegisterPartitioner(RoundRobin{})
	RegisterPartitioner(HashPoint{})
}

// Partition assigns every point of db to one of shards shards via p,
// returning per-shard global ID lists in increasing order (so shard-local
// tie-breaking agrees with global tie-breaking). Every shard must end up
// non-empty; a partitioner that leaves one empty (possible with HashPoint)
// is an error, not a silent degradation.
func Partition(db *DB, shards int, p Partitioner) ([][]int, error) {
	if db == nil || db.N() == 0 {
		return nil, fmt.Errorf("distperm: Partition requires a non-empty database")
	}
	if p == nil {
		return nil, fmt.Errorf("distperm: Partition requires a Partitioner")
	}
	if shards < 1 || shards > db.N() {
		return nil, fmt.Errorf("distperm: shards=%d out of range 1..%d", shards, db.N())
	}
	parts := make([][]int, shards)
	for id := 0; id < db.N(); id++ {
		s := p.Shard(id, db.Points[id], shards)
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("distperm: partitioner %s sent ID %d to shard %d of %d", p.Name(), id, s, shards)
		}
		parts[s] = append(parts[s], id)
	}
	for s, part := range parts {
		if len(part) == 0 {
			return nil, fmt.Errorf("distperm: partitioner %s left shard %d of %d empty; use fewer shards or roundrobin", p.Name(), s, shards)
		}
	}
	return parts, nil
}

// BuildSharded partitions db with p and builds one index per shard through
// the Build registry. Each shard builds from spec with the seed offset by
// the shard number (decorrelating per-shard random choices while keeping the
// whole build reproducible) and K capped at the shard size.
func BuildSharded(db *DB, spec Spec, shards int, p Partitioner) (*ShardedIndex, error) {
	parts, err := Partition(db, shards, p)
	if err != nil {
		return nil, err
	}
	return sisap.NewShardedIndex(db, parts, func(s int, sdb *sisap.DB) (sisap.Index, error) {
		shardSpec := spec
		shardSpec.Seed = spec.Seed + int64(s)
		if shardSpec.K > sdb.N() {
			shardSpec.K = sdb.N()
		}
		return Build(sdb, shardSpec)
	})
}

// ShardedEngine is the scatter-gather serving layer: one worker-pool Engine
// per shard of a ShardedIndex. Each batch is scattered to every shard's pool
// concurrently and the per-shard answers are merged — top-k by (distance,
// global ID) for kNN, concatenation in (distance, global ID) order for
// range — so answers are identical to a single Engine over the unpartitioned
// database. The batch methods are safe for concurrent use; Close is safe to
// race with in-flight batches (each shard Engine drains before stopping).
type ShardedEngine struct {
	sx      *ShardedIndex
	engines []*Engine
}

// NewShardedEngine starts one Engine of workersPerShard workers (≤ 0 means
// runtime.NumCPU()) over each shard of sx.
func NewShardedEngine(sx *ShardedIndex, workersPerShard int) (*ShardedEngine, error) {
	if sx == nil {
		return nil, fmt.Errorf("distperm: NewShardedEngine requires a sharded index")
	}
	s := &ShardedEngine{sx: sx, engines: make([]*Engine, sx.NumShards())}
	for i := range s.engines {
		e, err := NewEngine(sx.ShardDB(i), sx.Shard(i), workersPerShard)
		if err != nil {
			for _, prev := range s.engines[:i] {
				prev.Close()
			}
			return nil, err
		}
		s.engines[i] = e
	}
	return s, nil
}

// Shards returns the shard count.
func (s *ShardedEngine) Shards() int { return len(s.engines) }

// Workers returns the total worker count across all shard pools.
func (s *ShardedEngine) Workers() int {
	total := 0
	for _, e := range s.engines {
		total += e.Workers()
	}
	return total
}

// Index returns the engine's sharded index.
func (s *ShardedEngine) Index() *ShardedIndex { return s.sx }

// scatter runs run concurrently against every shard engine, collecting each
// shard's per-query result lists (remapped to global IDs), and returns the
// first error.
func (s *ShardedEngine) scatter(run func(shard int, e *Engine) ([][]Result, error)) ([][][]Result, error) {
	perShard := make([][][]Result, len(s.engines)) // [shard][query][result]
	errs := make([]error, len(s.engines))
	var wg sync.WaitGroup
	for i, e := range s.engines {
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			rs, err := run(i, e)
			if err != nil {
				errs[i] = err
				return
			}
			part := s.sx.Part(i)
			for _, qr := range rs {
				sisap.RemapShardResults(qr, part)
			}
			perShard[i] = rs
		}(i, e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return perShard, nil
}

// KNNBatch answers one kNN query per point of qs: each query is scattered to
// every shard (asking each for its min(k, shard size) best) and the gathered
// answers merge into the global top k — identical to a single Engine over
// the unpartitioned database.
func (s *ShardedEngine) KNNBatch(qs []Point, k int) ([][]Result, error) {
	n := s.sx.DB().N()
	if k < 1 || k > n {
		return nil, fmt.Errorf("distperm: k=%d %w 1..%d", k, ErrOutOfRange, n)
	}
	if len(qs) == 0 {
		return [][]Result{}, nil
	}
	perShard, err := s.scatter(func(i int, e *Engine) ([][]Result, error) {
		ks := k
		if sn := s.sx.ShardDB(i).N(); ks > sn {
			ks = sn
		}
		return e.KNNBatch(qs, ks)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(qs))
	gather := make([][]Result, len(s.engines))
	for q := range qs {
		for i := range s.engines {
			gather[i] = perShard[i][q]
		}
		out[q] = sisap.MergeKNN(gather, k)
	}
	return out, nil
}

// KNNApproxBatch answers one approximate kNN query per point of qs: every
// shard probes the nprobe nearest prefix buckets of its own directory and
// answers over its candidate set, and the per-shard answers merge into the
// global top k exactly as KNNBatch merges exact answers. The returned
// per-query stats sum the shard probe accounting; Exact is true only when
// every shard's probe set covered its whole directory — in which case the
// answers are byte-identical to KNNBatch. Any shard without the
// ApproxIndex capability fails the batch with ErrNoApprox.
func (s *ShardedEngine) KNNApproxBatch(qs []Point, k, nprobe int) ([][]Result, []sisap.ApproxStats, error) {
	n := s.sx.DB().N()
	if k < 1 || k > n {
		return nil, nil, fmt.Errorf("distperm: k=%d %w 1..%d", k, ErrOutOfRange, n)
	}
	if len(qs) == 0 {
		return [][]Result{}, []sisap.ApproxStats{}, nil
	}
	perStats := make([][]sisap.ApproxStats, len(s.engines))
	perShard, err := s.scatter(func(i int, e *Engine) ([][]Result, error) {
		ks := k
		if sn := s.sx.ShardDB(i).N(); ks > sn {
			ks = sn
		}
		rs, sts, err := e.KNNApproxBatch(qs, ks, nprobe)
		perStats[i] = sts
		return rs, err
	})
	if err != nil {
		return nil, nil, err
	}
	out := make([][]Result, len(qs))
	asts := make([]sisap.ApproxStats, len(qs))
	gather := make([][]Result, len(s.engines))
	for q := range qs {
		agg := sisap.ApproxStats{Exact: true}
		for i := range s.engines {
			gather[i] = perShard[i][q]
			st := perStats[i][q]
			agg.DistanceEvals += st.DistanceEvals
			agg.ProbedBuckets += st.ProbedBuckets
			agg.TotalBuckets += st.TotalBuckets
			agg.Candidates += st.Candidates
			agg.Exact = agg.Exact && st.Exact
		}
		out[q] = sisap.MergeKNN(gather, k)
		asts[q] = agg
	}
	return out, asts, nil
}

// ApproxBuckets sums the shard directories' bucket counts — the bound the
// per-query TotalBuckets stat reports. 0 when no shard has the capability.
func (s *ShardedEngine) ApproxBuckets() int {
	total := 0
	for _, e := range s.engines {
		total += e.ApproxBuckets()
	}
	return total
}

// DistinctRows sums the shard indexes' distinct permutation-row counts.
func (s *ShardedEngine) DistinctRows() int {
	total := 0
	for _, e := range s.engines {
		total += e.DistinctRows()
	}
	return total
}

// RangeBatch answers one range query of radius r per point of qs, scattered
// to every shard and gathered in global (distance, ID) order.
func (s *ShardedEngine) RangeBatch(qs []Point, r float64) ([][]Result, error) {
	if r < 0 {
		return nil, fmt.Errorf("distperm: negative radius %g is %w", r, ErrOutOfRange)
	}
	if len(qs) == 0 {
		return [][]Result{}, nil
	}
	perShard, err := s.scatter(func(i int, e *Engine) ([][]Result, error) {
		return e.RangeBatch(qs, r)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(qs))
	gather := make([][]Result, len(s.engines))
	for q := range qs {
		for i := range s.engines {
			gather[i] = perShard[i][q]
		}
		out[q] = sisap.MergeRange(gather)
	}
	return out, nil
}

// ShardStats returns one EngineStats snapshot per shard pool. Each shard
// answers every scattered query, so per-shard Queries count sub-queries: S
// shards serving a B-query batch record B sub-queries each.
func (s *ShardedEngine) ShardStats() []EngineStats {
	stats := make([]EngineStats, len(s.engines))
	for i, e := range s.engines {
		stats[i] = e.Stats()
	}
	return stats
}

// Stats aggregates across shards: Queries and DistanceEvals sum (so
// DistanceEvals is exactly the global cost of the sharded serving, the
// paper's cost model composing additively), MeanEvals is per sub-query, and
// the latency percentiles are read from the merged per-shard histograms.
func (s *ShardedEngine) Stats() EngineStats {
	var agg EngineStats
	var lat obs.HistogramSnapshot
	for _, e := range s.engines {
		c, snap := e.counters()
		agg.Queries += c.queries
		agg.DistanceEvals += c.evals
		agg.BatchedQueries += c.batched
		agg.ApproxQueries += c.approxQ
		agg.ProbedBuckets += c.probed
		agg.ApproxCandidates += c.approxCand
		agg.DistinctRows += e.DistinctRows()
		lat.Merge(snap)
	}
	if agg.Queries > 0 {
		agg.MeanEvals = float64(agg.DistanceEvals) / float64(agg.Queries)
	}
	if lat.Count > 0 {
		agg.P50 = histQuantile(lat, 0.50)
		agg.P99 = histQuantile(lat, 0.99)
	}
	return agg
}

// LatencySnapshot merges the per-shard latency histograms into one — every
// sub-query the sharded engine has answered, in a single mergeable
// snapshot.
func (s *ShardedEngine) LatencySnapshot() obs.HistogramSnapshot {
	var lat obs.HistogramSnapshot
	for _, e := range s.engines {
		lat.Merge(e.LatencySnapshot())
	}
	return lat
}

// BusyWorkers sums the busy-worker counts across shard pools.
func (s *ShardedEngine) BusyWorkers() int {
	total := 0
	for _, e := range s.engines {
		total += e.BusyWorkers()
	}
	return total
}

// Close shuts every shard pool down after in-flight queries finish. It is
// idempotent; batches submitted after Close return an error.
func (s *ShardedEngine) Close() {
	var wg sync.WaitGroup
	for _, e := range s.engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			e.Close()
		}(e)
	}
	wg.Wait()
}
