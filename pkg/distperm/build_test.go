package distperm

import (
	"math/rand"
	"strings"
	"testing"

	"distperm/internal/dataset"
)

func testDB(t *testing.T, seed int64, n, d int) (*DB, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db, err := NewDB(L2, dataset.UniformVectors(rng, n, d))
	if err != nil {
		t.Fatal(err)
	}
	return db, rng
}

func TestNewDBErrors(t *testing.T) {
	if _, err := NewDB(nil, []Point{Vector{0}}); err == nil {
		t.Error("nil metric should error")
	}
	if _, err := NewDB(L2, nil); err == nil {
		t.Error("empty database should error")
	}
}

func TestBuildEveryKind(t *testing.T) {
	db, rng := testDB(t, 1, 300, 4)
	q := dataset.UniformVectors(rng, 1, 4)[0]
	truth, _ := mustBuild(t, db, Spec{Index: "linear"}).KNN(q, 3)
	for _, kind := range Kinds() {
		idx := mustBuild(t, db, Spec{Index: kind, K: 6, Seed: 7})
		if idx.Name() != kind {
			t.Errorf("Build(%q).Name() = %q", kind, idx.Name())
		}
		got, stats := idx.KNN(q, 3)
		if len(got) != 3 {
			t.Fatalf("%s: %d results", kind, len(got))
		}
		for i := range got {
			if got[i] != truth[i] {
				t.Errorf("%s: result %d = %+v, want %+v", kind, i, got[i], truth[i])
			}
		}
		if stats.DistanceEvals <= 0 {
			t.Errorf("%s: no distance evaluations reported", kind)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	db, _ := testDB(t, 2, 50, 3)
	if _, err := Build(nil, Spec{Index: "linear"}); err == nil {
		t.Error("nil database should error")
	}
	if _, err := Build(db, Spec{Index: "btree"}); err == nil {
		t.Error("unknown kind should error")
	} else if !strings.Contains(err.Error(), "distperm") {
		t.Errorf("error should list known kinds: %v", err)
	}
	for _, k := range []int{-1, 51} {
		if _, err := Build(db, Spec{Index: "distperm", K: k}); err == nil {
			t.Errorf("k=%d should error", k)
		}
	}
}

func TestBuildDefaultK(t *testing.T) {
	// K defaults to DefaultK, capped at the database size.
	db, _ := testDB(t, 3, 5, 2)
	idx, err := Build(db, Spec{Index: "distperm"})
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.(*PermIndex).K(); got != 5 {
		t.Errorf("K() = %d, want 5 (capped)", got)
	}
}

// TestDistpermSitesReproducible pins the site draw: the builder's partial
// Fisher–Yates selection must stay deterministic per seed (serialized index
// files record explicit site IDs, but reproducible builds are part of the
// Spec contract). The pinned values are the draw of sampleSites, which
// replaced the O(N)-allocating rng.Perm(N)[:K].
func TestDistpermSitesReproducible(t *testing.T) {
	db, _ := testDB(t, 40, 300, 3)
	want := []int{86, 106, 87, 147, 144, 198}
	for run := 0; run < 2; run++ {
		idx := mustBuild(t, db, Spec{Index: "distperm", K: 6, Seed: 7}).(*PermIndex)
		got := idx.SiteIDs()
		if len(got) != len(want) {
			t.Fatalf("run %d: %d sites, want %d", run, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d: sites = %v, want %v", run, got, want)
			}
		}
	}
}

// TestSampleSitesDistinct checks the partial Fisher–Yates draw across the
// k ≤ n spectrum, including the degenerate k = n full shuffle: k distinct
// in-range IDs every time.
func TestSampleSitesDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, c := range []struct{ n, k int }{
		{1, 1}, {2, 1}, {2, 2}, {10, 10}, {100, 1}, {100, 99}, {5000, 8},
	} {
		for trial := 0; trial < 20; trial++ {
			ids := sampleSites(rng, c.n, c.k)
			if len(ids) != c.k {
				t.Fatalf("n=%d k=%d: drew %d IDs", c.n, c.k, len(ids))
			}
			seen := make(map[int]bool, c.k)
			for _, id := range ids {
				if id < 0 || id >= c.n {
					t.Fatalf("n=%d k=%d: ID %d out of range", c.n, c.k, id)
				}
				if seen[id] {
					t.Fatalf("n=%d k=%d: duplicate ID %d in %v", c.n, c.k, id, ids)
				}
				seen[id] = true
			}
		}
	}
}

func TestRegisterValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register should panic")
		}
	}()
	Register("linear", func(db *DB, spec Spec) (Index, error) { return nil, nil })
}

func mustBuild(t *testing.T, db *DB, spec Spec) Index {
	t.Helper()
	idx, err := Build(db, spec)
	if err != nil {
		t.Fatalf("Build(%+v): %v", spec, err)
	}
	return idx
}
