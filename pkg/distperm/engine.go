package distperm

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distperm/internal/sisap"
	"distperm/pkg/obs"
)

// Engine is a concurrent query engine over one built index: a pool of
// worker goroutines, each holding its own query replica of the index (the
// distance-permutation index's Permuter carries scratch buffers and is not
// goroutine-safe; sisap.QueryReplica clones it per worker, while the
// read-only indexes are shared). Batches of kNN/range requests fan out
// across the pool and per-query Stats fold into engine-level counters.
//
// The batch methods are safe to call from many goroutines at once; queries
// from concurrent batches interleave on the same pool. Close is safe to
// race with in-flight batches: it waits for every batch that observed the
// engine open to finish sending before the job channel closes.
type Engine struct {
	db      *DB
	idx     Index
	workers int
	jobs    chan job
	// batchOK records whether the index is batch-native (sisap.BatchIndex).
	// When it is, KNNBatch hands each worker a contiguous sub-batch so the
	// index's batched kernels amortise the table walk across queries; when it
	// is not, batches degrade to the per-query jobs below.
	batchOK bool

	workerWG  sync.WaitGroup
	closeOnce sync.Once

	mu sync.Mutex
	// closed and inflight together serialise submission against Close:
	// submit registers with inflight under mu while closed is still false,
	// so once Close flips closed and inflight drains, no batch can be
	// sending on jobs and closing the channel is safe.
	closed   bool
	inflight sync.WaitGroup
	queries  int64
	evals    int64
	batched  int64 // queries served through the sub-batch fast path
	// lat holds every per-query latency in a fixed-bucket histogram
	// (obs.DefLatencyBuckets): constant memory regardless of lifetime,
	// lock-free to observe, mergeable across shards and epochs, and the
	// one source Stats percentiles and /metrics exposition both read.
	lat *obs.Histogram
	// busy counts workers currently serving a job — the pool-utilization
	// gauge (0..workers).
	busy atomic.Int64
}

type job struct {
	q   Point
	k   int     // > 0: kNN with this k
	r   float64 // k == 0: range with this radius
	out *[]Result
	wg  *sync.WaitGroup

	// Sub-batch form (batch-native indexes): when qs is non-nil the job is a
	// contiguous slice of one KNNBatch call, outs aliases the caller's result
	// slots for exactly these queries, and wg counts jobs, not queries.
	qs   []Point
	outs [][]Result
}

// engineChunkCap bounds the queries a single sub-batch job carries. Beyond
// it the kernels' amortisation has flattened out (the scratch chunk inside
// the index is no larger) while bigger jobs only worsen load balance.
const engineChunkCap = 64

// NewEngine starts a worker pool of the given size (≤ 0 means
// runtime.NumCPU()) over idx, which must have been built on db.
func NewEngine(db *DB, idx Index, workers int) (*Engine, error) {
	if db == nil || idx == nil {
		return nil, fmt.Errorf("distperm: NewEngine requires a database and an index")
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	_, batchOK := idx.(sisap.BatchIndex)
	e := &Engine{
		db:      db,
		idx:     idx,
		workers: workers,
		jobs:    make(chan job, 4*workers),
		batchOK: batchOK,
		lat:     obs.NewHistogram(obs.DefLatencyBuckets),
	}
	for i := 0; i < workers; i++ {
		replica := sisap.QueryReplica(idx)
		e.workerWG.Add(1)
		go e.worker(replica)
	}
	return e, nil
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Index returns the engine's underlying index.
func (e *Engine) Index() Index { return e.idx }

func (e *Engine) worker(idx Index) {
	defer e.workerWG.Done()
	for j := range e.jobs {
		e.busy.Add(1)
		if j.qs != nil {
			e.serveBatch(idx, j)
			e.busy.Add(-1)
			continue
		}
		start := time.Now()
		var rs []Result
		var st Stats
		if j.k > 0 {
			rs, st = idx.KNN(j.q, j.k)
		} else {
			rs, st = idx.Range(j.q, j.r)
		}
		elapsed := time.Since(start)
		*j.out = rs

		e.mu.Lock()
		e.queries++
		e.evals += int64(st.DistanceEvals)
		e.mu.Unlock()
		e.lat.Observe(elapsed.Seconds())
		e.busy.Add(-1)

		j.wg.Done()
	}
}

// serveBatch answers one sub-batch job on the worker's replica. Stats stay
// per-query: each query contributes its own DistanceEvals, and the job's
// wall time is attributed evenly across its queries in the latency window
// (queries inside one kernel pass have no individual wall times).
func (e *Engine) serveBatch(idx Index, j job) {
	start := time.Now()
	var rs [][]Result
	var sts []Stats
	if b, ok := idx.(sisap.BatchIndex); ok {
		rs, sts = b.KNNBatch(j.qs, j.k)
	} else {
		// The engine's index was batch-native but this worker's replica is
		// not (a custom Replicable could downgrade); serve the sub-batch
		// query by query with identical answers.
		rs = make([][]Result, len(j.qs))
		sts = make([]Stats, len(j.qs))
		for i, q := range j.qs {
			rs[i], sts[i] = idx.KNN(q, j.k)
		}
	}
	perQuery := time.Since(start) / time.Duration(len(j.qs))
	copy(j.outs, rs)

	e.mu.Lock()
	e.queries += int64(len(j.qs))
	e.batched += int64(len(j.qs))
	for _, st := range sts {
		e.evals += int64(st.DistanceEvals)
	}
	e.mu.Unlock()
	sec := perQuery.Seconds()
	for range j.qs {
		e.lat.Observe(sec)
	}

	j.wg.Done()
}

// KNNBatch answers one kNN query per point of qs, fanned out across the
// worker pool. out[i] holds the k nearest database points to qs[i] in
// increasing distance order — identical to querying the index sequentially.
func (e *Engine) KNNBatch(qs []Point, k int) ([][]Result, error) {
	if k < 1 || k > e.db.N() {
		return nil, fmt.Errorf("distperm: k=%d %w 1..%d", k, ErrOutOfRange, e.db.N())
	}
	if e.batchOK && len(qs) > 1 {
		return e.submitBatch(qs, k)
	}
	return e.submit(qs, func(i int, out *[]Result, wg *sync.WaitGroup) job {
		return job{q: qs[i], k: k, out: out, wg: wg}
	})
}

// RangeBatch answers one range query of radius r per point of qs.
func (e *Engine) RangeBatch(qs []Point, r float64) ([][]Result, error) {
	if r < 0 {
		return nil, fmt.Errorf("distperm: negative radius %g is %w", r, ErrOutOfRange)
	}
	return e.submit(qs, func(i int, out *[]Result, wg *sync.WaitGroup) job {
		return job{q: qs[i], r: r, out: out, wg: wg}
	})
}

func (e *Engine) submit(qs []Point, mk func(i int, out *[]Result, wg *sync.WaitGroup) job) ([][]Result, error) {
	// An empty batch has nothing to fan out: answer it without touching the
	// in-flight bookkeeping (a closed engine answers it too — there is no
	// work a worker would have to do).
	if len(qs) == 0 {
		return [][]Result{}, nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("distperm: engine is closed")
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()
	outs := make([][]Result, len(qs))
	var wg sync.WaitGroup
	wg.Add(len(qs))
	for i := range qs {
		e.jobs <- mk(i, &outs[i], &wg)
	}
	wg.Wait()
	return outs, nil
}

// submitBatch fans a kNN batch out as contiguous sub-batches instead of
// per-query jobs, so each worker's batch kernels amortise one table walk
// across its whole chunk. The chunk size spreads the batch across the full
// pool (⌈B/workers⌉) and is capped at engineChunkCap — per-query cost is
// homogeneous here, so equal-size contiguous chunks load-balance.
func (e *Engine) submitBatch(qs []Point, k int) ([][]Result, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("distperm: engine is closed")
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()
	chunk := (len(qs) + e.workers - 1) / e.workers
	if chunk > engineChunkCap {
		chunk = engineChunkCap
	}
	outs := make([][]Result, len(qs))
	var wg sync.WaitGroup
	for base := 0; base < len(qs); base += chunk {
		end := base + chunk
		if end > len(qs) {
			end = len(qs)
		}
		wg.Add(1)
		e.jobs <- job{qs: qs[base:end], k: k, outs: outs[base:end], wg: &wg}
	}
	wg.Wait()
	return outs, nil
}

// Close shuts the pool down after in-flight queries finish. It is
// idempotent; batches submitted after Close return an error.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		// New submissions are now refused; wait for batches that got in
		// before the flip to finish sending, then closing jobs is safe.
		e.inflight.Wait()
		close(e.jobs)
	})
	e.workerWG.Wait()
}

// EngineStats aggregates per-query Stats across everything the engine has
// answered — the paper's cost model (distance evaluations) lifted to the
// serving layer, plus wall-clock latency percentiles.
type EngineStats struct {
	// Queries is the number of queries answered.
	Queries int64
	// BatchedQueries is how many of those were served through the sub-batch
	// fast path (batch-native index kernels); 0 means every query ran the
	// per-query path.
	BatchedQueries int64
	// DistanceEvals is the total metric evaluations spent.
	DistanceEvals int64
	// MeanEvals is DistanceEvals / Queries.
	MeanEvals float64
	// P50 and P99 are per-query latency percentiles read from the engine's
	// latency histogram: nearest-rank quantiles resolved to the histogram's
	// bucket edges (obs.DefLatencyBuckets, 2× steps from 1µs), covering
	// every query the engine has ever answered.
	P50, P99 time.Duration
}

// histQuantile reads the q-quantile from a latency histogram snapshot as
// a Duration — the nearest-rank bucket edge, see
// obs.HistogramSnapshot.Quantile.
func histQuantile(s obs.HistogramSnapshot, q float64) time.Duration {
	return time.Duration(math.Round(s.Quantile(q) * 1e9))
}

// Stats returns a snapshot of the engine-level counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	s := EngineStats{Queries: e.queries, BatchedQueries: e.batched, DistanceEvals: e.evals}
	e.mu.Unlock()
	if s.Queries > 0 {
		s.MeanEvals = float64(s.DistanceEvals) / float64(s.Queries)
	}
	if snap := e.lat.Snapshot(); snap.Count > 0 {
		s.P50 = histQuantile(snap, 0.50)
		s.P99 = histQuantile(snap, 0.99)
	}
	return s
}

// counters snapshots the raw engine counters and the latency histogram —
// the sharded layer sums the counters and merges the per-shard histograms
// before taking quantiles.
func (e *Engine) counters() (queries, evals, batched int64, lat obs.HistogramSnapshot) {
	e.mu.Lock()
	queries, evals, batched = e.queries, e.evals, e.batched
	e.mu.Unlock()
	return queries, evals, batched, e.lat.Snapshot()
}

// LatencySnapshot returns the engine's per-query latency histogram — the
// source /metrics exposes and Stats reads its percentiles from.
func (e *Engine) LatencySnapshot() obs.HistogramSnapshot { return e.lat.Snapshot() }

// BusyWorkers returns how many pool workers are serving a job right now,
// in [0, Workers()] — the utilization gauge exposed on /metrics.
func (e *Engine) BusyWorkers() int { return int(e.busy.Load()) }

// Percentile reads the q-quantile from an ascending-sorted non-empty sample
// by the nearest-rank method: the smallest value with at least q·n samples
// at or below it, index ⌈q·n⌉−1. It is the single definition every latency
// percentile in the repo uses — the engine, the sharded aggregate, and the
// load driver (pkg/dpserver/client) — so they cannot drift.
func Percentile(sorted []time.Duration, q float64) time.Duration {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
