package distperm

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distperm/internal/sisap"
	"distperm/pkg/obs"
)

// ErrNoApprox tags KNNApproxBatch calls against an index without the
// ApproxIndex capability, so serving layers can report the request as
// unsupported rather than failed. Match with errors.Is.
var ErrNoApprox = errors.New("index has no approximate-search support")

// Engine is a concurrent query engine over one built index: a pool of
// worker goroutines, each holding its own query replica of the index (the
// distance-permutation index's Permuter carries scratch buffers and is not
// goroutine-safe; sisap.QueryReplica clones it per worker, while the
// read-only indexes are shared). Batches of kNN/range requests fan out
// across the pool and per-query Stats fold into engine-level counters.
//
// The batch methods are safe to call from many goroutines at once; queries
// from concurrent batches interleave on the same pool. Close is safe to
// race with in-flight batches: it waits for every batch that observed the
// engine open to finish sending before the job channel closes.
type Engine struct {
	db      *DB
	idx     Index
	workers int
	jobs    chan job
	// batchOK records whether the index is batch-native (sisap.BatchIndex).
	// When it is, KNNBatch hands each worker a contiguous sub-batch so the
	// index's batched kernels amortise the table walk across queries; when it
	// is not, batches degrade to the per-query jobs below.
	batchOK bool
	// approxOK records whether the index carries the approximate-search
	// capability (sisap.ApproxIndex); without it KNNApproxBatch fails with
	// ErrNoApprox.
	approxOK bool

	workerWG  sync.WaitGroup
	closeOnce sync.Once

	mu sync.Mutex
	// closed and inflight together serialise submission against Close:
	// submit registers with inflight under mu while closed is still false,
	// so once Close flips closed and inflight drains, no batch can be
	// sending on jobs and closing the channel is safe.
	closed   bool
	inflight sync.WaitGroup
	queries  int64
	evals    int64
	batched  int64 // queries served through the sub-batch fast path
	// Approximate-path accounting: queries served through KNNApproxBatch,
	// their summed probed-bucket counts, and their summed candidate counts
	// (the aggregate candidate fraction is approxCand over approxQ·N).
	approxQ    int64
	probed     int64
	approxCand int64
	// lat holds every per-query latency in a fixed-bucket histogram
	// (obs.DefLatencyBuckets): constant memory regardless of lifetime,
	// lock-free to observe, mergeable across shards and epochs, and the
	// one source Stats percentiles and /metrics exposition both read.
	lat *obs.Histogram
	// busy counts workers currently serving a job — the pool-utilization
	// gauge (0..workers).
	busy atomic.Int64
}

type job struct {
	q   Point
	k   int     // > 0: kNN with this k
	r   float64 // k == 0: range with this radius
	out *[]Result
	wg  *sync.WaitGroup

	// Sub-batch form (batch-native indexes): when qs is non-nil the job is a
	// contiguous slice of one KNNBatch call, outs aliases the caller's result
	// slots for exactly these queries, and wg counts jobs, not queries.
	qs   []Point
	outs [][]Result

	// Approximate form (always sub-batch): the job routes through the
	// replica's ApproxIndex capability with this nprobe, and asts aliases
	// the caller's per-query stats slots.
	approx bool
	nprobe int
	asts   []sisap.ApproxStats
}

// engineChunkCap bounds the queries a single sub-batch job carries. Beyond
// it the kernels' amortisation has flattened out (the scratch chunk inside
// the index is no larger) while bigger jobs only worsen load balance.
const engineChunkCap = 64

// NewEngine starts a worker pool of the given size (≤ 0 means
// runtime.NumCPU()) over idx, which must have been built on db.
func NewEngine(db *DB, idx Index, workers int) (*Engine, error) {
	if db == nil || idx == nil {
		return nil, fmt.Errorf("distperm: NewEngine requires a database and an index")
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	_, batchOK := idx.(sisap.BatchIndex)
	_, approxOK := idx.(sisap.ApproxIndex)
	e := &Engine{
		db:       db,
		idx:      idx,
		workers:  workers,
		jobs:     make(chan job, 4*workers),
		batchOK:  batchOK,
		approxOK: approxOK,
		lat:      obs.NewHistogram(obs.DefLatencyBuckets),
	}
	for i := 0; i < workers; i++ {
		replica := sisap.QueryReplica(idx)
		e.workerWG.Add(1)
		go e.worker(replica)
	}
	return e, nil
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Index returns the engine's underlying index.
func (e *Engine) Index() Index { return e.idx }

func (e *Engine) worker(idx Index) {
	defer e.workerWG.Done()
	for j := range e.jobs {
		e.busy.Add(1)
		if j.qs != nil {
			if j.approx {
				e.serveApprox(idx, j)
			} else {
				e.serveBatch(idx, j)
			}
			e.busy.Add(-1)
			continue
		}
		start := time.Now()
		var rs []Result
		var st Stats
		if j.k > 0 {
			rs, st = idx.KNN(j.q, j.k)
		} else {
			rs, st = idx.Range(j.q, j.r)
		}
		elapsed := time.Since(start)
		*j.out = rs

		e.mu.Lock()
		e.queries++
		e.evals += int64(st.DistanceEvals)
		e.mu.Unlock()
		e.lat.Observe(elapsed.Seconds())
		e.busy.Add(-1)

		j.wg.Done()
	}
}

// serveBatch answers one sub-batch job on the worker's replica. Stats stay
// per-query: each query contributes its own DistanceEvals, and the job's
// wall time is attributed evenly across its queries in the latency window
// (queries inside one kernel pass have no individual wall times).
func (e *Engine) serveBatch(idx Index, j job) {
	start := time.Now()
	var rs [][]Result
	var sts []Stats
	if b, ok := idx.(sisap.BatchIndex); ok {
		rs, sts = b.KNNBatch(j.qs, j.k)
	} else {
		// The engine's index was batch-native but this worker's replica is
		// not (a custom Replicable could downgrade); serve the sub-batch
		// query by query with identical answers.
		rs = make([][]Result, len(j.qs))
		sts = make([]Stats, len(j.qs))
		for i, q := range j.qs {
			rs[i], sts[i] = idx.KNN(q, j.k)
		}
	}
	perQuery := time.Since(start) / time.Duration(len(j.qs))
	copy(j.outs, rs)

	e.mu.Lock()
	e.queries += int64(len(j.qs))
	e.batched += int64(len(j.qs))
	for _, st := range sts {
		e.evals += int64(st.DistanceEvals)
	}
	e.mu.Unlock()
	sec := perQuery.Seconds()
	for range j.qs {
		e.lat.Observe(sec)
	}

	j.wg.Done()
}

// serveApprox answers one approximate sub-batch job on the worker's
// replica. Accounting mirrors serveBatch, with the probe statistics folded
// into the approximate-path counters as well.
func (e *Engine) serveApprox(idx Index, j job) {
	start := time.Now()
	var rs [][]Result
	var sts []sisap.ApproxStats
	if a, ok := idx.(sisap.ApproxIndex); ok {
		rs, sts = a.KNNApproxBatch(j.qs, j.k, j.nprobe)
	} else {
		// The engine's index was approx-capable but this worker's replica is
		// not (a custom Replicable could downgrade); serve exactly and report
		// full coverage — correct answers at the cost of the speedup.
		rs = make([][]Result, len(j.qs))
		sts = make([]sisap.ApproxStats, len(j.qs))
		for i, q := range j.qs {
			var st Stats
			rs[i], st = idx.KNN(q, j.k)
			sts[i] = sisap.ApproxStats{Stats: st, Candidates: e.db.N(), Exact: true}
		}
	}
	perQuery := time.Since(start) / time.Duration(len(j.qs))
	copy(j.outs, rs)
	copy(j.asts, sts)

	e.mu.Lock()
	e.queries += int64(len(j.qs))
	e.approxQ += int64(len(j.qs))
	for _, st := range sts {
		e.evals += int64(st.DistanceEvals)
		e.probed += int64(st.ProbedBuckets)
		e.approxCand += int64(st.Candidates)
	}
	e.mu.Unlock()
	sec := perQuery.Seconds()
	for range j.qs {
		e.lat.Observe(sec)
	}

	j.wg.Done()
}

// KNNBatch answers one kNN query per point of qs, fanned out across the
// worker pool. out[i] holds the k nearest database points to qs[i] in
// increasing distance order — identical to querying the index sequentially.
func (e *Engine) KNNBatch(qs []Point, k int) ([][]Result, error) {
	if k < 1 || k > e.db.N() {
		return nil, fmt.Errorf("distperm: k=%d %w 1..%d", k, ErrOutOfRange, e.db.N())
	}
	if e.batchOK && len(qs) > 1 {
		return e.submitBatch(qs, k)
	}
	return e.submit(qs, func(i int, out *[]Result, wg *sync.WaitGroup) job {
		return job{q: qs[i], k: k, out: out, wg: wg}
	})
}

// KNNApproxBatch answers one approximate kNN query per point of qs through
// the index's ApproxIndex capability, fanned out across the worker pool in
// contiguous sub-batches. nprobe steers the recall/speed trade (≤ 0 selects
// the index default; ≥ ApproxBuckets degrades to the exact scan with
// answers byte-identical to KNNBatch). The returned stats are per query.
// Indexes without the capability fail with ErrNoApprox.
func (e *Engine) KNNApproxBatch(qs []Point, k, nprobe int) ([][]Result, []sisap.ApproxStats, error) {
	if !e.approxOK {
		return nil, nil, fmt.Errorf("distperm: %w", ErrNoApprox)
	}
	if k < 1 || k > e.db.N() {
		return nil, nil, fmt.Errorf("distperm: k=%d %w 1..%d", k, ErrOutOfRange, e.db.N())
	}
	if len(qs) == 0 {
		return [][]Result{}, []sisap.ApproxStats{}, nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, nil, fmt.Errorf("distperm: engine is closed")
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()
	chunk := (len(qs) + e.workers - 1) / e.workers
	if chunk > engineChunkCap {
		chunk = engineChunkCap
	}
	outs := make([][]Result, len(qs))
	asts := make([]sisap.ApproxStats, len(qs))
	var wg sync.WaitGroup
	for base := 0; base < len(qs); base += chunk {
		end := base + chunk
		if end > len(qs) {
			end = len(qs)
		}
		wg.Add(1)
		e.jobs <- job{qs: qs[base:end], k: k, outs: outs[base:end], approx: true, nprobe: nprobe, asts: asts[base:end], wg: &wg}
	}
	wg.Wait()
	return outs, asts, nil
}

// ApproxBuckets returns the index's inverted-file directory size — the
// bound nprobe is measured against — or 0 when the index has no
// approximate-search capability.
func (e *Engine) ApproxBuckets() int {
	if a, ok := e.idx.(sisap.ApproxIndex); ok {
		return a.ApproxBuckets()
	}
	return 0
}

// DistinctRows returns the index's distinct permutation-row count — the
// paper's table size and the universe the prefix-bucket directory is built
// over — or 0 when the index does not expose it.
func (e *Engine) DistinctRows() int {
	if d, ok := e.idx.(interface{ DistinctPermutations() int }); ok {
		return d.DistinctPermutations()
	}
	return 0
}

// RangeBatch answers one range query of radius r per point of qs.
func (e *Engine) RangeBatch(qs []Point, r float64) ([][]Result, error) {
	if r < 0 {
		return nil, fmt.Errorf("distperm: negative radius %g is %w", r, ErrOutOfRange)
	}
	return e.submit(qs, func(i int, out *[]Result, wg *sync.WaitGroup) job {
		return job{q: qs[i], r: r, out: out, wg: wg}
	})
}

func (e *Engine) submit(qs []Point, mk func(i int, out *[]Result, wg *sync.WaitGroup) job) ([][]Result, error) {
	// An empty batch has nothing to fan out: answer it without touching the
	// in-flight bookkeeping (a closed engine answers it too — there is no
	// work a worker would have to do).
	if len(qs) == 0 {
		return [][]Result{}, nil
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("distperm: engine is closed")
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()
	outs := make([][]Result, len(qs))
	var wg sync.WaitGroup
	wg.Add(len(qs))
	for i := range qs {
		e.jobs <- mk(i, &outs[i], &wg)
	}
	wg.Wait()
	return outs, nil
}

// submitBatch fans a kNN batch out as contiguous sub-batches instead of
// per-query jobs, so each worker's batch kernels amortise one table walk
// across its whole chunk. The chunk size spreads the batch across the full
// pool (⌈B/workers⌉) and is capped at engineChunkCap — per-query cost is
// homogeneous here, so equal-size contiguous chunks load-balance.
func (e *Engine) submitBatch(qs []Point, k int) ([][]Result, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("distperm: engine is closed")
	}
	e.inflight.Add(1)
	e.mu.Unlock()
	defer e.inflight.Done()
	chunk := (len(qs) + e.workers - 1) / e.workers
	if chunk > engineChunkCap {
		chunk = engineChunkCap
	}
	outs := make([][]Result, len(qs))
	var wg sync.WaitGroup
	for base := 0; base < len(qs); base += chunk {
		end := base + chunk
		if end > len(qs) {
			end = len(qs)
		}
		wg.Add(1)
		e.jobs <- job{qs: qs[base:end], k: k, outs: outs[base:end], wg: &wg}
	}
	wg.Wait()
	return outs, nil
}

// Close shuts the pool down after in-flight queries finish. It is
// idempotent; batches submitted after Close return an error.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		// New submissions are now refused; wait for batches that got in
		// before the flip to finish sending, then closing jobs is safe.
		e.inflight.Wait()
		close(e.jobs)
	})
	e.workerWG.Wait()
}

// EngineStats aggregates per-query Stats across everything the engine has
// answered — the paper's cost model (distance evaluations) lifted to the
// serving layer, plus wall-clock latency percentiles.
type EngineStats struct {
	// Queries is the number of queries answered.
	Queries int64
	// BatchedQueries is how many of those were served through the sub-batch
	// fast path (batch-native index kernels); 0 means every query ran the
	// per-query path.
	BatchedQueries int64
	// ApproxQueries is how many queries were served through the approximate
	// path (KNNApproxBatch), including those whose probe set covered the
	// whole directory and degraded to the exact scan.
	ApproxQueries int64
	// ProbedBuckets sums the per-query probed-bucket counts of the
	// approximate path; ApproxCandidates sums the per-query candidate-set
	// sizes (ApproxCandidates / (ApproxQueries·N) is the aggregate candidate
	// fraction).
	ProbedBuckets    int64
	ApproxCandidates int64
	// DistinctRows is the index's distinct permutation-row count (0 when the
	// index does not expose one) — the table size of the paper's counting
	// bounds and the row universe of the prefix-bucket directory.
	DistinctRows int
	// DistanceEvals is the total metric evaluations spent.
	DistanceEvals int64
	// MeanEvals is DistanceEvals / Queries.
	MeanEvals float64
	// P50 and P99 are per-query latency percentiles read from the engine's
	// latency histogram: nearest-rank quantiles resolved to the histogram's
	// bucket edges (obs.DefLatencyBuckets, 2× steps from 1µs), covering
	// every query the engine has ever answered.
	P50, P99 time.Duration
}

// histQuantile reads the q-quantile from a latency histogram snapshot as
// a Duration — the nearest-rank bucket edge, see
// obs.HistogramSnapshot.Quantile.
func histQuantile(s obs.HistogramSnapshot, q float64) time.Duration {
	return time.Duration(math.Round(s.Quantile(q) * 1e9))
}

// Stats returns a snapshot of the engine-level counters.
func (e *Engine) Stats() EngineStats {
	c, snap := e.counters()
	s := EngineStats{
		Queries:          c.queries,
		BatchedQueries:   c.batched,
		ApproxQueries:    c.approxQ,
		ProbedBuckets:    c.probed,
		ApproxCandidates: c.approxCand,
		DistanceEvals:    c.evals,
		DistinctRows:     e.DistinctRows(),
	}
	if s.Queries > 0 {
		s.MeanEvals = float64(s.DistanceEvals) / float64(s.Queries)
	}
	if snap.Count > 0 {
		s.P50 = histQuantile(snap, 0.50)
		s.P99 = histQuantile(snap, 0.99)
	}
	return s
}

// engineCounters is a raw counter snapshot — the sharded layer sums these
// across shards and merges the per-shard histograms before taking
// quantiles.
type engineCounters struct {
	queries, evals, batched     int64
	approxQ, probed, approxCand int64
}

// counters snapshots the raw engine counters and the latency histogram.
func (e *Engine) counters() (engineCounters, obs.HistogramSnapshot) {
	e.mu.Lock()
	c := engineCounters{
		queries: e.queries, evals: e.evals, batched: e.batched,
		approxQ: e.approxQ, probed: e.probed, approxCand: e.approxCand,
	}
	e.mu.Unlock()
	return c, e.lat.Snapshot()
}

// LatencySnapshot returns the engine's per-query latency histogram — the
// source /metrics exposes and Stats reads its percentiles from.
func (e *Engine) LatencySnapshot() obs.HistogramSnapshot { return e.lat.Snapshot() }

// BusyWorkers returns how many pool workers are serving a job right now,
// in [0, Workers()] — the utilization gauge exposed on /metrics.
func (e *Engine) BusyWorkers() int { return int(e.busy.Load()) }

// Percentile reads the q-quantile from an ascending-sorted non-empty sample
// by the nearest-rank method: the smallest value with at least q·n samples
// at or below it, index ⌈q·n⌉−1. It is the single definition every latency
// percentile in the repo uses — the engine, the sharded aggregate, and the
// load driver (pkg/dpserver/client) — so they cannot drift.
func Percentile(sorted []time.Duration, q float64) time.Duration {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
