package distperm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distperm/internal/metric"
	"distperm/internal/sisap"
	"distperm/pkg/obs"
)

// This file is the durability layer of the write path: an append-only
// write-ahead log that a MutableEngine appends to before acknowledging a
// mutation, so a kill -9 between an acknowledged insert and the next
// snapshot rebuild loses nothing. The log is a directory of segment files
// (rotated at a size threshold, named by the sequence number of their first
// record) plus optional checkpoint files (a self-contained snapshot of the
// whole store that lets replay start from its covered sequence instead of
// zero, and lets the segments behind it be deleted).
//
// Record framing and torn-tail semantics live in internal/sisap's WAL
// record codec: every record is length-prefixed and CRC-32C-checksummed, so
// the write a crash interrupted fails its checksum and OpenWAL physically
// truncates the log at the last intact record. A frame that fails anywhere
// other than the tail of the final segment is corruption, not a crash
// artifact, and opening refuses rather than silently dropping records.
//
// Segment file layout (little-endian):
//
//	magic    [8]byte  "DPWALSEG"
//	version  uint32   walVersion
//	flags    uint32   reserved, 0
//	firstSeq uint64   sequence number of the first record in this file
//	records  …        sisap WAL record frames, back to back
//
// Checkpoint file layout (little-endian, CRC-32C over all prior bytes at
// the end):
//
//	magic    [8]byte  "DPWALCKP"
//	version  uint32   walVersion
//	flags    uint32   reserved, 0
//	seq      uint64   WAL sequence this snapshot covers (replay resumes at seq+1)
//	mlen     uint32 + metric name
//	npoints  uint64 + wire points (base points then delta points, gid order)
//	clen     uint64 + DPERMIDX "mutable" container over those points
//	crc      uint32
//
// Checkpoints are self-contained on purpose: DPERMIDX containers never
// carry the point data, so the checkpoint embeds the full point set in the
// record codec's wire-point encoding. With no checkpoint, recovery rebuilds
// the base the same way the daemon built it the first time (the dataset
// flags are deterministic) and replays the log from sequence zero.

// Aliases re-exporting the record codec at the public boundary, so WAL
// callers and tests never import internal/sisap.
type (
	// WALRecord is one logged mutation.
	WALRecord = sisap.WALRecord
	// WALOp discriminates WAL record kinds.
	WALOp = sisap.WALOp
)

const (
	// WALInsert records an accepted insert: gid plus the point.
	WALInsert = sisap.WALInsert
	// WALDelete records an accepted delete: the gid alone.
	WALDelete = sisap.WALDelete
)

// ErrWALTorn reports an incomplete or checksum-mismatched frame — the shape
// a crash mid-append leaves behind.
var ErrWALTorn = sisap.ErrWALTorn

const (
	walSegMagic  = "DPWALSEG"
	walCkptMagic = "DPWALCKP"
	walVersion   = 1
	segHeaderLen = 8 + 4 + 4 + 8

	defaultSegmentBytes = 64 << 20
	minSegmentBytes     = 4 << 10
	defaultSyncInterval = 50 * time.Millisecond
)

// walCastagnoli is the same CRC-32C polynomial the record codec and the
// frozen container use.
var walCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy decides when an Append becomes durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append before it returns: an
	// acknowledged write survives power loss. The default, and the slowest.
	SyncAlways SyncPolicy = iota
	// SyncInterval leaves appends in the OS page cache and fsyncs from a
	// background ticker: an acknowledged write survives a process crash
	// (kill -9) immediately, and power loss after at most SyncInterval.
	SyncInterval
	// SyncNever never fsyncs during appends: acknowledged writes survive a
	// process crash (the kernel owns the pages) but not power loss.
	SyncNever
)

// String renders the policy the way the -wal-sync flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps a -wal-sync flag value to its policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("distperm: unknown wal sync policy %q (have always, interval, never)", s)
	}
}

// WALOptions tunes a WAL. The zero value is the safe default: fsync on
// every append, 64 MiB segments.
type WALOptions struct {
	// Sync is the durability policy for appends.
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval
	// (default 50ms; ignored otherwise).
	SyncInterval time.Duration
	// SegmentBytes rotates the append segment once it reaches this size
	// (default 64 MiB, minimum 4 KiB).
	SegmentBytes int64
}

// walSegment is one on-disk segment: its path, the sequence of its first
// record, and how many valid records it holds.
type walSegment struct {
	path  string
	first uint64
	count uint64
}

// WAL is an append-only, crash-recoverable log of mutations. Appends are
// serialized by an internal mutex; the durability of a returned Append is
// the configured SyncPolicy's. All methods are safe for concurrent use.
type WAL struct {
	dir  string
	opts WALOptions

	mu       sync.Mutex
	f        *os.File // active append segment
	size     int64    // bytes written to f (including header)
	seq      uint64   // last assigned record sequence (0 = none)
	segments []walSegment
	dirty    bool  // unsynced appends pending (SyncInterval)
	failed   error // sticky: a write/fsync error poisons the log until restart
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup

	appended    atomic.Int64
	appendedB   atomic.Int64
	syncs       atomic.Int64
	replayed    atomic.Int64
	recoveries  atomic.Int64
	tornB       atomic.Int64
	checkpoints atomic.Int64
	ckptSeq     atomic.Uint64
	fsyncHist   *obs.Histogram
}

// WALStats is a point-in-time snapshot of the log's counters, the surface
// /v1/stats and /metrics export.
type WALStats struct {
	Enabled            bool
	Dir                string
	Sync               string
	Seq                uint64
	Segments           int
	AppendedRecords    int64
	AppendedBytes      int64
	Syncs              int64
	ReplayedRecords    int64
	Recoveries         int64
	TornBytesTruncated int64
	Checkpoints        int64
	CheckpointSeq      uint64
	Fsync              obs.HistogramSnapshot
}

// WALCheckpoint is a loaded checkpoint: the snapshot it froze and the WAL
// sequence it covers (replay resumes at Seq+1).
type WALCheckpoint struct {
	Snapshot *MutableIndex
	Seq      uint64
}

// OpenWAL opens (creating if needed) the log at dir, scanning existing
// segments, truncating a torn tail left by a crash, and resuming appends
// after the last intact record. Corruption anywhere but the tail of the
// final segment is an error.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SegmentBytes < minSegmentBytes {
		opts.SegmentBytes = minSegmentBytes
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = defaultSyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("distperm: creating wal dir: %w", err)
	}
	w := &WAL{
		dir:       dir,
		opts:      opts,
		done:      make(chan struct{}),
		fsyncHist: obs.NewHistogram(obs.DefLatencyBuckets),
	}
	if err := w.scan(); err != nil {
		return nil, err
	}
	if w.seq > 0 || w.tornB.Load() > 0 {
		w.recoveries.Add(1)
	}
	if err := w.openAppendSegment(); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		w.wg.Add(1)
		go w.syncLoop()
	}
	return w, nil
}

// scan reads every segment in sequence order, validates headers and record
// continuity, truncates the torn tail of the final segment, and fills in
// w.segments and w.seq.
func (w *WAL) scan() error {
	names, err := filepath.Glob(filepath.Join(w.dir, "wal-*.seg"))
	if err != nil {
		return err
	}
	sort.Strings(names) // wal-%016x sorts numerically
	for i, path := range names {
		last := i == len(names)-1
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("distperm: reading wal segment: %w", err)
		}
		if len(data) < segHeaderLen {
			if !last {
				return fmt.Errorf("distperm: wal segment %s truncated to %d bytes mid-log", filepath.Base(path), len(data))
			}
			// A crash tore the rotation itself: the header never finished.
			// Nothing in the file is a record; drop it.
			w.tornB.Add(int64(len(data)))
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("distperm: removing torn wal segment: %w", err)
			}
			continue
		}
		if string(data[:8]) != walSegMagic {
			return fmt.Errorf("distperm: %s is not a wal segment", filepath.Base(path))
		}
		if v := binary.LittleEndian.Uint32(data[8:]); v != walVersion {
			return fmt.Errorf("distperm: wal segment %s has version %d, this build speaks %d", filepath.Base(path), v, walVersion)
		}
		first := binary.LittleEndian.Uint64(data[16:])
		if first != w.seq+1 {
			return fmt.Errorf("distperm: wal segment %s starts at seq %d, want %d (missing segment?)", filepath.Base(path), first, w.seq+1)
		}
		seg := walSegment{path: path, first: first}
		off := segHeaderLen
		for off < len(data) {
			_, n, err := sisap.DecodeWALRecord(data[off:])
			if err != nil {
				if errors.Is(err, ErrWALTorn) && last {
					// The write the crash interrupted. Truncate so future
					// appends start on a clean frame boundary.
					w.tornB.Add(int64(len(data) - off))
					if terr := os.Truncate(path, int64(off)); terr != nil {
						return fmt.Errorf("distperm: truncating torn wal tail: %w", terr)
					}
					data = data[:off]
					break
				}
				return fmt.Errorf("distperm: wal segment %s corrupt at offset %d: %w", filepath.Base(path), off, err)
			}
			off += n
			seg.count++
		}
		w.seq += seg.count
		w.segments = append(w.segments, seg)
	}
	return nil
}

// openAppendSegment resumes appending to the final scanned segment if it
// has room, or starts a fresh one.
func (w *WAL) openAppendSegment() error {
	if n := len(w.segments); n > 0 {
		seg := w.segments[n-1]
		info, err := os.Stat(seg.path)
		if err != nil {
			return err
		}
		if info.Size() < w.opts.SegmentBytes {
			f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("distperm: reopening wal segment: %w", err)
			}
			w.f, w.size = f, info.Size()
			return nil
		}
	}
	return w.createSegmentLocked(w.seq + 1)
}

// createSegmentLocked starts the segment whose first record will be seq
// `first`, making both the header and the directory entry durable before
// any record lands in it.
func (w *WAL) createSegmentLocked(first uint64) error {
	path := filepath.Join(w.dir, fmt.Sprintf("wal-%016x.seg", first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("distperm: creating wal segment: %w", err)
	}
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, walSegMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, walVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)
	hdr = binary.LittleEndian.AppendUint64(hdr, first)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("distperm: writing wal segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("distperm: syncing wal segment header: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return fmt.Errorf("distperm: syncing wal dir: %w", err)
	}
	w.f, w.size = f, segHeaderLen
	w.segments = append(w.segments, walSegment{path: path, first: first})
	return nil
}

// Append logs the records, in order, as one write. When it returns nil the
// records are on the log with the durability the SyncPolicy promises
// (SyncAlways: fsynced). A write or fsync error poisons the WAL — every
// later Append fails with the same error — because a partially-persisted
// record must not share the log with a reused sequence.
func (w *WAL) Append(recs ...WALRecord) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, rec := range recs {
		var err error
		if buf, err = sisap.AppendWALRecord(buf, rec); err != nil {
			return err
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case w.closed:
		return errors.New("distperm: wal is closed")
	case w.failed != nil:
		return fmt.Errorf("distperm: wal failed earlier: %w", w.failed)
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.failed = err
			return err
		}
	}
	n, err := w.f.Write(buf)
	if err != nil {
		w.failed = err
		return fmt.Errorf("distperm: wal append: %w", err)
	}
	w.size += int64(n)
	w.seq += uint64(len(recs))
	w.segments[len(w.segments)-1].count += uint64(len(recs))
	w.appended.Add(int64(len(recs)))
	w.appendedB.Add(int64(n))
	switch w.opts.Sync {
	case SyncAlways:
		return w.fsyncLocked()
	case SyncInterval:
		w.dirty = true
	}
	return nil
}

func (w *WAL) rotateLocked() error {
	if w.opts.Sync != SyncNever && w.dirty {
		if err := w.fsyncLocked(); err != nil {
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return w.createSegmentLocked(w.seq + 1)
}

func (w *WAL) fsyncLocked() error {
	start := time.Now()
	err := w.f.Sync()
	w.fsyncHist.Observe(time.Since(start).Seconds())
	w.syncs.Add(1)
	if err != nil {
		w.failed = err
		return fmt.Errorf("distperm: wal fsync: %w", err)
	}
	w.dirty = false
	return nil
}

// Sync forces an fsync of the append segment regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.failed != nil {
		return w.failed
	}
	return w.fsyncLocked()
}

func (w *WAL) syncLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.failed == nil && w.dirty {
				w.fsyncLocked() //nolint:errcheck // sticky w.failed carries it
			}
			w.mu.Unlock()
		}
	}
}

// Seq returns the sequence number of the last appended record (0 when the
// log is empty).
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Dir returns the log's directory.
func (w *WAL) Dir() string { return w.dir }

// Replay streams every record with sequence > fromSeq, in order, to fn
// (which must not call back into this WAL). A missing prefix — fromSeq
// predates the oldest retained segment — is an error: recovery from that
// point is impossible, not merely empty. Call before serving traffic; the
// log is locked for the duration.
func (w *WAL) Replay(fromSeq uint64, fn func(seq uint64, rec WALRecord) error) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("distperm: wal is closed")
	}
	w.recoveries.Add(1)
	var replayed uint64
	for _, seg := range w.segments {
		if seg.count == 0 || seg.first+seg.count-1 <= fromSeq {
			continue
		}
		if replayed == 0 && seg.first > fromSeq+1 {
			return 0, fmt.Errorf("distperm: wal replay from seq %d impossible: oldest retained record is %d", fromSeq, seg.first)
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return replayed, fmt.Errorf("distperm: reading wal segment: %w", err)
		}
		off := segHeaderLen
		for i := uint64(0); i < seg.count; i++ {
			rec, n, err := sisap.DecodeWALRecord(data[off:])
			if err != nil {
				return replayed, fmt.Errorf("distperm: wal segment %s corrupt at offset %d: %w", filepath.Base(seg.path), off, err)
			}
			off += n
			if seq := seg.first + i; seq > fromSeq {
				if err := fn(seq, rec); err != nil {
					return replayed, err
				}
				replayed++
				w.replayed.Add(1)
			}
		}
	}
	return replayed, nil
}

// TruncateThrough deletes whole segments every record of which has
// sequence ≤ seq. The active append segment is never deleted. Only call
// once a checkpoint (or an equivalent durable snapshot) covers seq —
// replay afterwards starts at seq+1.
func (w *WAL) TruncateThrough(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.truncateThroughLocked(seq)
}

func (w *WAL) truncateThroughLocked(seq uint64) error {
	for len(w.segments) > 1 {
		seg := w.segments[0]
		if seg.count == 0 || seg.first+seg.count-1 > seq {
			break
		}
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("distperm: removing covered wal segment: %w", err)
		}
		w.segments = w.segments[1:]
	}
	return nil
}

// WriteCheckpoint durably writes a self-contained checkpoint of snap
// covering WAL sequence seq (tmp + fsync + rename), then deletes older
// checkpoints and the segments the new one covers. The snapshot/seq pair
// must be an exact cut — MutableEngine.CheckpointSnapshot produces one.
func (w *WAL) WriteCheckpoint(snap *MutableIndex, seq uint64) error {
	db := snap.DB()
	name := db.Metric.Name()
	if m, err := metric.ByName(name); err != nil || m.Name() != name {
		return fmt.Errorf("distperm: wal checkpoints need a metric loadable by name, %q is not", name)
	}
	body := make([]byte, 0, 1<<20)
	body = append(body, walCkptMagic...)
	body = binary.LittleEndian.AppendUint32(body, walVersion)
	body = binary.LittleEndian.AppendUint32(body, 0)
	body = binary.LittleEndian.AppendUint64(body, seq)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(name)))
	body = append(body, name...)
	body = binary.LittleEndian.AppendUint64(body, uint64(db.N()))
	for _, p := range db.Points {
		var err error
		if body, err = sisap.AppendWirePoint(body, p); err != nil {
			return err
		}
	}
	var container bytes.Buffer
	if _, err := sisap.WriteIndex(&container, snap); err != nil {
		return fmt.Errorf("distperm: encoding checkpoint container: %w", err)
	}
	body = binary.LittleEndian.AppendUint64(body, uint64(container.Len()))
	body = append(body, container.Bytes()...)
	body = binary.LittleEndian.AppendUint32(body, crc32.Checksum(body, walCastagnoli))

	final := filepath.Join(w.dir, fmt.Sprintf("ckpt-%016x.ckpt", seq))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, body); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("distperm: publishing checkpoint: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	w.checkpoints.Add(1)
	w.ckptSeq.Store(seq)

	// The new checkpoint supersedes everything before it.
	olds, _ := filepath.Glob(filepath.Join(w.dir, "ckpt-*.ckpt"))
	for _, old := range olds {
		if old != final {
			os.Remove(old) //nolint:errcheck // best-effort cleanup
		}
	}
	return w.TruncateThrough(seq)
}

// LoadCheckpoint loads the newest intact checkpoint, or (nil, nil) when
// none exists. A checkpoint that fails its checksum is skipped in favour of
// an older one; if every candidate is corrupt the first failure is the
// error (recovery may still be possible by deleting the bad files and
// replaying the full log, but that is the operator's call, not ours).
func (w *WAL) LoadCheckpoint() (*WALCheckpoint, error) {
	names, err := filepath.Glob(filepath.Join(w.dir, "ckpt-*.ckpt"))
	if err != nil {
		return nil, err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // newest (highest seq) first
	var firstErr error
	for _, path := range names {
		ck, err := readCheckpoint(path)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("distperm: checkpoint %s: %w", filepath.Base(path), err)
			}
			continue
		}
		w.ckptSeq.Store(ck.Seq)
		return ck, nil
	}
	return nil, firstErr
}

func readCheckpoint(path string) (*WALCheckpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 8+4+4+8+4+8+8+4 || string(data[:8]) != walCkptMagic {
		return nil, errors.New("not a wal checkpoint")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != walVersion {
		return nil, fmt.Errorf("checkpoint version %d, this build speaks %d", v, walVersion)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got := crc32.Checksum(body, walCastagnoli); got != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("checksum mismatch (%#x)", got)
	}
	off := 16
	seq := binary.LittleEndian.Uint64(body[off:])
	off += 8
	mlen := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if mlen < 0 || off+mlen > len(body) {
		return nil, errors.New("metric name overruns checkpoint")
	}
	m, err := metric.ByName(string(body[off : off+mlen]))
	if err != nil {
		return nil, err
	}
	off += mlen
	if off+8 > len(body) {
		return nil, errors.New("point count overruns checkpoint")
	}
	n := binary.LittleEndian.Uint64(body[off:])
	off += 8
	if n > uint64(len(body)) { // every point costs ≥ 1 byte on the wire
		return nil, fmt.Errorf("point count %d overruns checkpoint", n)
	}
	points := make([]metric.Point, n)
	for i := range points {
		p, used, err := sisap.DecodeWirePoint(body[off:])
		if err != nil {
			return nil, fmt.Errorf("point %d: %v", i, err)
		}
		points[i] = p
		off += used
	}
	if off+8 > len(body) {
		return nil, errors.New("container length overruns checkpoint")
	}
	clen := binary.LittleEndian.Uint64(body[off:])
	off += 8
	if clen != uint64(len(body)-off) {
		return nil, fmt.Errorf("container length %d, %d bytes remain", clen, len(body)-off)
	}
	db, err := NewDB(m, points)
	if err != nil {
		return nil, err
	}
	idx, err := sisap.ReadIndex(bytes.NewReader(body[off:]), db)
	if err != nil {
		return nil, err
	}
	snap, ok := idx.(*MutableIndex)
	if !ok {
		return nil, fmt.Errorf("checkpoint holds a %q container, want mutable", idx.Name())
	}
	return &WALCheckpoint{Snapshot: snap, Seq: seq}, nil
}

// Stats snapshots the log's counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	seq, segs := w.seq, len(w.segments)
	w.mu.Unlock()
	return WALStats{
		Enabled:            true,
		Dir:                w.dir,
		Sync:               w.opts.Sync.String(),
		Seq:                seq,
		Segments:           segs,
		AppendedRecords:    w.appended.Load(),
		AppendedBytes:      w.appendedB.Load(),
		Syncs:              w.syncs.Load(),
		ReplayedRecords:    w.replayed.Load(),
		Recoveries:         w.recoveries.Load(),
		TornBytesTruncated: w.tornB.Load(),
		Checkpoints:        w.checkpoints.Load(),
		CheckpointSeq:      w.ckptSeq.Load(),
		Fsync:              w.fsyncHist.Snapshot(),
	}
}

// Close stops the background syncer, fsyncs any unsynced tail, and closes
// the append segment. Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.failed == nil && w.f != nil {
		start := time.Now()
		err = w.f.Sync()
		w.fsyncHist.Observe(time.Since(start).Seconds())
		w.syncs.Add(1)
	}
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
	}
	if w.failed != nil && err == nil {
		err = w.failed
	}
	return err
}

// writeFileSync writes data to path and fsyncs it before returning.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("distperm: writing %s: %w", filepath.Base(path), err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && !errors.Is(err, os.ErrInvalid) && !strings.Contains(err.Error(), "invalid argument") {
		return fmt.Errorf("distperm: syncing dir %s: %w", dir, err)
	}
	return nil
}
