package distperm

import (
	"errors"
	"reflect"
	"testing"

	"distperm/internal/dataset"
)

// approxTruthRecall returns |truth ∩ got| / |truth| by result ID.
func approxTruthRecall(truth, got []Result) float64 {
	ids := make(map[int]struct{}, len(got))
	for _, r := range got {
		ids[r.ID] = struct{}{}
	}
	hit := 0
	for _, r := range truth {
		if _, ok := ids[r.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// TestEngineApproxFullCoverageByteIdentical pins the exact-degradation
// contract at the engine layer: an approximate batch whose probe set covers
// the whole directory must return byte-identical answers to KNNBatch —
// including tie-breaks — and report Exact. Run under -race this also
// exercises the approx scheduling path across the worker pool.
func TestEngineApproxFullCoverageByteIdentical(t *testing.T) {
	const k = 7
	db, rng := testDB(t, 41, 900, 3)
	qs := dataset.UniformVectors(rng, 200, 3)
	idx := mustBuild(t, db, Spec{Index: "distperm", K: 8, Seed: 3})
	e, err := NewEngine(db, idx, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	want, err := e.KNNBatch(qs, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, nprobe := range []int{e.ApproxBuckets(), 1 << 20} {
		got, sts, err := e.KNNApproxBatch(qs, k, nprobe)
		if err != nil {
			t.Fatalf("nprobe=%d: %v", nprobe, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("nprobe=%d: full-coverage approx answers differ from exact", nprobe)
		}
		for i, st := range sts {
			if !st.Exact {
				t.Fatalf("nprobe=%d query %d: Exact=false with full coverage", nprobe, i)
			}
		}
	}
	st := e.Stats()
	if st.ApproxQueries != int64(2*len(qs)) {
		t.Errorf("ApproxQueries = %d, want %d", st.ApproxQueries, 2*len(qs))
	}
	if st.DistinctRows <= 0 {
		t.Errorf("DistinctRows = %d, want > 0", st.DistinctRows)
	}
}

// TestEngineApproxMonotoneRecall checks the serving-layer contract the
// sisap tests prove at the kernel level: per-query recall against the
// exact answer never decreases as nprobe grows, and partial probes report
// their candidate accounting.
func TestEngineApproxMonotoneRecall(t *testing.T) {
	const k = 10
	db, rng := testDB(t, 42, 2000, 4)
	qs := dataset.UniformVectors(rng, 60, 4)
	idx := mustBuild(t, db, Spec{Index: "distperm", K: 10, Seed: 5})
	e, err := NewEngine(db, idx, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	truth, err := e.KNNBatch(qs, k)
	if err != nil {
		t.Fatal(err)
	}
	nb := e.ApproxBuckets()
	if nb < 4 {
		t.Fatalf("directory too small to sweep: %d buckets", nb)
	}
	prev := make([]float64, len(qs))
	for _, nprobe := range []int{1, nb / 4, nb / 2, nb} {
		got, sts, err := e.KNNApproxBatch(qs, k, nprobe)
		if err != nil {
			t.Fatalf("nprobe=%d: %v", nprobe, err)
		}
		for i := range qs {
			r := approxTruthRecall(truth[i], got[i])
			if r < prev[i] {
				t.Fatalf("nprobe=%d query %d: recall %.3f dropped below %.3f", nprobe, i, r, prev[i])
			}
			prev[i] = r
			if sts[i].Candidates < k || sts[i].Candidates > db.N() {
				t.Fatalf("nprobe=%d query %d: implausible candidate count %d", nprobe, i, sts[i].Candidates)
			}
			if sts[i].TotalBuckets != nb {
				t.Fatalf("nprobe=%d query %d: TotalBuckets %d != %d", nprobe, i, sts[i].TotalBuckets, nb)
			}
		}
	}
	for i, r := range prev {
		if r != 1 {
			t.Errorf("query %d: full coverage recall %.3f != 1", i, r)
		}
	}
}

// TestShardedApproxFullCoverageByteIdentical: per-shard approximate answers
// with full per-shard coverage must merge to exactly the sharded engine's
// exact answers.
func TestShardedApproxFullCoverageByteIdentical(t *testing.T) {
	const k = 6
	db, rng := testDB(t, 43, 1200, 3)
	qs := dataset.UniformVectors(rng, 150, 3)
	sx, err := BuildSharded(db, Spec{Index: "distperm", K: 8, Seed: 7}, 3, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(sx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()

	want, err := se.KNNBatch(qs, k)
	if err != nil {
		t.Fatal(err)
	}
	got, sts, err := se.KNNApproxBatch(qs, k, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("full-coverage sharded approx answers differ from exact")
	}
	for i, st := range sts {
		if !st.Exact {
			t.Fatalf("query %d: Exact=false with full coverage", i)
		}
		if st.TotalBuckets != se.ApproxBuckets() {
			t.Fatalf("query %d: TotalBuckets %d != summed directories %d", i, st.TotalBuckets, se.ApproxBuckets())
		}
	}
	if dr := se.Stats().DistinctRows; dr <= 0 {
		t.Errorf("sharded DistinctRows = %d, want > 0", dr)
	}

	// A partial probe still answers every query with k results and recall
	// bounded by the per-shard candidate sets.
	part, psts, err := se.KNNApproxBatch(qs, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if len(part[i]) != k {
			t.Fatalf("query %d: %d results, want %d", i, len(part[i]), k)
		}
		if psts[i].ProbedBuckets >= psts[i].TotalBuckets {
			t.Fatalf("query %d: nprobe=1 probed %d of %d buckets", i, psts[i].ProbedBuckets, psts[i].TotalBuckets)
		}
	}
}

// TestMutableApproxDeltaStaysExact: on a mutated store, the base index
// answers approximately but the delta buffer is scanned exactly — a point
// inserted a moment ago must appear in an approximate answer even at
// nprobe=1, and full coverage must stay byte-identical to KNNBatch.
func TestMutableApproxDeltaStaysExact(t *testing.T) {
	const k = 5
	db, rng := testDB(t, 44, 800, 3)
	qs := dataset.UniformVectors(rng, 80, 3)
	m, err := NewMutableEngine(db, MutableConfig{Spec: Spec{Index: "distperm", K: 8, Seed: 9}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Mutate: delete some base points, insert fresh ones (the delta).
	for gid := 0; gid < 10; gid++ {
		if err := m.Delete(gid); err != nil {
			t.Fatal(err)
		}
	}
	var inserted []int
	for _, p := range dataset.UniformVectors(rng, 30, 3) {
		gid, err := m.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, gid)
	}

	want, err := m.KNNBatch(qs, k)
	if err != nil {
		t.Fatal(err)
	}
	got, sts, err := m.KNNApproxBatch(qs, k, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("full-coverage mutable approx answers differ from exact")
	}
	for i, st := range sts {
		if !st.Exact {
			t.Fatalf("query %d: Exact=false with full coverage", i)
		}
	}

	// Query exactly at an inserted point: it must be its own nearest
	// neighbour even with the narrowest probe — the delta is never pruned.
	q := []Point{m.snapshot().delta[0].p}
	gid := m.snapshot().delta[0].gid
	narrow, _, err := m.KNNApproxBatch(q, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow[0]) != 1 || narrow[0][0].ID != gid {
		t.Fatalf("inserted point %d missing from nprobe=1 answer: %+v", gid, narrow[0])
	}
	if st := m.Stats(); st.ApproxQueries != int64(len(qs)+1) {
		t.Errorf("ApproxQueries = %d, want %d", st.ApproxQueries, len(qs)+1)
	}
	if m.DistinctRows() <= 0 {
		t.Error("mutable DistinctRows should be positive")
	}
}

// TestApproxUnsupportedIndex: indexes without the capability fail with
// ErrNoApprox at every engine layer.
func TestApproxUnsupportedIndex(t *testing.T) {
	db, rng := testDB(t, 45, 120, 2)
	qs := dataset.UniformVectors(rng, 4, 2)
	idx := mustBuild(t, db, Spec{Index: "vptree", Seed: 1})
	e, err := NewEngine(db, idx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, _, err := e.KNNApproxBatch(qs, 3, 2); !errors.Is(err, ErrNoApprox) {
		t.Fatalf("vptree approx: got %v, want ErrNoApprox", err)
	}
	if e.ApproxBuckets() != 0 {
		t.Errorf("vptree ApproxBuckets = %d, want 0", e.ApproxBuckets())
	}

	m, err := NewMutableEngine(db, MutableConfig{Spec: Spec{Index: "vptree", Seed: 1}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.KNNApproxBatch(qs, 3, 2); !errors.Is(err, ErrNoApprox) {
		t.Fatalf("mutable vptree approx: got %v, want ErrNoApprox", err)
	}
}
