// Package distperm is the public query layer over the distance-permutation
// index family of Skala (ICDE 2008): the paper trades metric evaluations
// against index bits, and this package turns that trade-off into a servable
// API. It exposes the whole index family (linear scan, AESA, iAESA, LAESA,
// the distance-permutation index, VP-tree, GH-tree) behind three seams:
//
//   - Build: one entry point constructing any index from a Spec, extensible
//     through a name → Builder registry (Register).
//   - Engine: a goroutine worker pool answering batched kNN/range traffic
//     over index replicas, aggregating per-query Stats into engine-level
//     counters (distance evaluations, latency percentiles).
//   - ShardedEngine: the scatter-gather serving layer — a Partitioner splits
//     the database into shards (BuildSharded), one Engine per shard answers
//     every query, and the merge step returns answers identical to a single
//     Engine over the unpartitioned database, with per-shard cost counters
//     summing to the global cost.
//   - WriteIndex/ReadIndex: a versioned codec registry persisting every
//     index kind in one container format, including the sharded container
//     (partition map plus one embedded index per shard).
//
// Point, Metric, and the concrete metrics are re-exported from the internal
// layers so callers outside the module can use the package without touching
// internal paths.
package distperm

import (
	"errors"
	"fmt"
	"io"

	"distperm/internal/metric"
	"distperm/internal/sisap"
)

// Core metric-space vocabulary, shared with the internal layers.
type (
	// Point is an opaque element of a metric space (Vector for the Lp
	// family, String for the string metrics).
	Point = metric.Point
	// Metric computes distances between points; implementations satisfy the
	// metric axioms.
	Metric = metric.Metric
	// Vector is a point of a d-dimensional real vector space.
	Vector = metric.Vector
	// String is a point of a string metric space.
	String = metric.String
)

// Query vocabulary, shared with the index implementations.
type (
	// DB is an immutable database of points under a metric.
	DB = sisap.DB
	// Index answers kNN and range queries over a DB and reports its storage
	// cost in bits.
	Index = sisap.Index
	// Result is one answer: a database point index and its distance.
	Result = sisap.Result
	// Stats reports the cost of a query in metric evaluations.
	Stats = sisap.Stats
	// PermIndex is the distance-permutation index, exposed concretely for
	// its extra surface (KNNBudget, DistinctPermutations, storage splits).
	// Its query path runs the paper's table encoding live: permutation
	// distances are computed once per *distinct* stored permutation and the
	// candidates are ordered by an integer counting sort, so queries get
	// cheaper exactly where the paper's counting results say the index gets
	// smaller (DistinctPermutations ≪ n).
	PermIndex = sisap.PermIndex
	// PermDistance selects the candidate-ordering permutation distance.
	PermDistance = sisap.PermDistance
	// MutableIndex is the serialisable snapshot of a live-mutated store
	// (base index + delta + tombstones), the DPERMIDX "mutable" container
	// kind. MutableEngine produces one via Snapshot and resumes one via
	// NewMutableEngineFrom; a plain Engine can serve it read-only.
	MutableIndex = sisap.MutableIndex
	// BatchIndex is the batch-native query capability: KNNBatch answers a
	// block of queries per pass over the index data, identically to per-query
	// KNN. Engine detects it and hands workers contiguous sub-batches.
	BatchIndex = sisap.BatchIndex
	// ApproxIndex is the approximate-search capability: KNNApprox trades
	// bounded recall for a smaller candidate set, steered by nprobe (how
	// many permutation-prefix buckets to probe). PermIndex implements it;
	// the engines detect it on their replicas as they detect BatchIndex.
	ApproxIndex = sisap.ApproxIndex
	// ApproxStats extends Stats with the probe accounting of an approximate
	// query: probed buckets against the directory size, candidate count,
	// and whether the probe set degraded to the exact scan.
	ApproxStats = sisap.ApproxStats
)

// Candidate-ordering permutation distances for PermIndex.
const (
	Footrule    = sisap.Footrule
	KendallTau  = sisap.KendallTau
	SpearmanRho = sisap.SpearmanRho
)

// Ready-made metrics.
var (
	// L1 is the Manhattan metric on Vectors.
	L1 Metric = metric.L1{}
	// L2 is the Euclidean metric on Vectors.
	L2 Metric = metric.L2{}
	// LInf is the Chebyshev metric on Vectors.
	LInf Metric = metric.LInf{}
	// Edit is the Levenshtein metric on Strings.
	Edit Metric = metric.Edit{}
	// Prefix is the prefix metric on Strings.
	Prefix Metric = metric.Prefix{}
	// Angular is the angular metric on sparse document Vectors.
	Angular Metric = metric.Angular{}
)

// LP returns the Minkowski metric for p ≥ 1, choosing the specialised
// implementation for p ∈ {1, 2, +Inf}.
func LP(p float64) Metric { return metric.NewLP(p) }

// NewDB returns a database over points under m. Unlike the internal
// constructors, which panic (their callers are trusted), the public boundary
// reports bad input as an error — including a metric that cannot measure
// the points (e.g. Edit over Vectors), which is probed here so the mismatch
// cannot surface later as a panic in a query worker.
func NewDB(m Metric, points []Point) (*DB, error) {
	if m == nil {
		return nil, errors.New("distperm: nil metric")
	}
	if len(points) == 0 {
		return nil, errors.New("distperm: empty database")
	}
	if err := metric.Probe(m, points[0]); err != nil {
		return nil, fmt.Errorf("distperm: %w", err)
	}
	return sisap.NewDB(m, points), nil
}

// WriteIndex serialises any index with a registered codec in the versioned
// DPERMIDX container format. It returns the number of bytes written. The
// database points are not serialised — the index file accompanies the data.
func WriteIndex(w io.Writer, x Index) (int64, error) { return sisap.WriteIndex(w, x) }

// ReadIndex deserialises an index written by WriteIndex against db, which
// must be the database the index was built on. No metric evaluations are
// re-run — that is the point of persisting the index.
func ReadIndex(r io.Reader, db *DB) (Index, error) { return sisap.ReadIndex(r, db) }

// Codecs returns the registered serialization kinds, sorted.
func Codecs() []string { return sisap.Codecs() }
