package distperm_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"distperm/pkg/distperm"
)

// walRecs builds n distinct insert records with consecutive gids starting
// at base (the shape an engine would log over a base of `base` points).
func walRecs(base, n int) []distperm.WALRecord {
	rng := rand.New(rand.NewSource(77))
	recs := make([]distperm.WALRecord, n)
	for i := range recs {
		recs[i] = distperm.WALRecord{
			Op:    distperm.WALInsert,
			GID:   base + i,
			Point: distperm.Vector{rng.Float64(), rng.Float64(), rng.Float64()},
		}
	}
	return recs
}

// replayAll collects every record in the log.
func replayAll(t *testing.T, w *distperm.WAL, fromSeq uint64) []distperm.WALRecord {
	t.Helper()
	var got []distperm.WALRecord
	if _, err := w.Replay(fromSeq, func(seq uint64, rec distperm.WALRecord) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s (err %v)", dir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := distperm.OpenWAL(dir, distperm.WALOptions{Sync: distperm.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs := walRecs(100, 9)
	recs = append(recs, distperm.WALRecord{Op: distperm.WALDelete, GID: 3})
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Seq(); got != uint64(len(recs)) {
		t.Fatalf("seq %d after %d appends", got, len(recs))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[0]); err == nil {
		t.Fatal("append after Close succeeded")
	}

	w, err = distperm.OpenWAL(dir, distperm.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.Seq(); got != uint64(len(recs)) {
		t.Fatalf("reopened at seq %d, want %d", got, len(recs))
	}
	got := replayAll(t, w, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed %d records, want the %d appended ones", len(got), len(recs))
	}
	// Replay from the middle resumes mid-log; replay past the end is empty.
	if tail := replayAll(t, w, 4); !reflect.DeepEqual(tail, recs[4:]) {
		t.Fatalf("tail replay from 4 gave %d records, want %d", len(tail), len(recs)-4)
	}
	if tail := replayAll(t, w, uint64(len(recs))); len(tail) != 0 {
		t.Fatalf("replay past the end gave %d records", len(tail))
	}
	st := w.Stats()
	if st.Recoveries == 0 || st.ReplayedRecords == 0 || st.AppendedRecords != 0 {
		t.Fatalf("stats after recovery: %+v", st)
	}
}

// TestWALTornTailEveryByte is the heart of the crash story: a log whose
// final record is cut at EVERY byte boundary must reopen cleanly with
// exactly the earlier records (no panic, no invented data), and a log whose
// final record has any single byte flipped must never replay a record that
// differs from the one appended.
func TestWALTornTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	recs := walRecs(10, 5)
	w, err := distperm.OpenWAL(dir, distperm.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[:4] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	info4, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	w, err = distperm.OpenWAL(dir, distperm.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[4]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	info5, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	start, end := info4.Size(), info5.Size() // the final record's frame

	for cut := start; cut < end; cut++ {
		cdir := copyDir(t, dir)
		if err := os.Truncate(lastSegment(t, cdir), cut); err != nil {
			t.Fatal(err)
		}
		cw, err := distperm.OpenWAL(cdir, distperm.WALOptions{})
		if err != nil {
			t.Fatalf("cut at byte %d: open: %v", cut, err)
		}
		if got := cw.Seq(); got != 4 {
			t.Fatalf("cut at byte %d: recovered seq %d, want 4", cut, got)
		}
		if st := cw.Stats(); st.TornBytesTruncated != cut-start {
			t.Fatalf("cut at byte %d: truncated %d torn bytes, want %d", cut, st.TornBytesTruncated, cut-start)
		}
		if got := replayAll(t, cw, 0); !reflect.DeepEqual(got, recs[:4]) {
			t.Fatalf("cut at byte %d: replay diverged from the intact prefix", cut)
		}
		// The log must append cleanly after truncation — on a frame boundary.
		if err := cw.Append(recs[4]); err != nil {
			t.Fatalf("cut at byte %d: append after recovery: %v", cut, err)
		}
		if got := replayAll(t, cw, 0); !reflect.DeepEqual(got, recs[:5]) {
			t.Fatalf("cut at byte %d: post-recovery append diverged", cut)
		}
		cw.Close()
	}

	for off := start; off < end; off++ {
		cdir := copyDir(t, dir)
		path := lastSegment(t, cdir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0x5a
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		cw, err := distperm.OpenWAL(cdir, distperm.WALOptions{})
		if err != nil {
			// A flip can also surface as outright corruption (e.g. a larger
			// length that overruns); refusing to open is acceptable, silent
			// acceptance is not.
			continue
		}
		got := replayAll(t, cw, 0)
		if len(got) > 4 && !reflect.DeepEqual(got[4], recs[4]) {
			t.Fatalf("flip at byte %d: replay invented record %+v", off, got[4])
		}
		if len(got) > 5 {
			t.Fatalf("flip at byte %d: replay grew to %d records", off, len(got))
		}
		if !reflect.DeepEqual(got[:4], recs[:4]) {
			t.Fatalf("flip at byte %d: intact prefix diverged", off)
		}
		cw.Close()
	}
}

// buildMultiSegment fills a WAL with enough 64-dimensional inserts to
// rotate across several minimum-size segments, returning the records.
func buildMultiSegment(t *testing.T, dir string) []distperm.WALRecord {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	w, err := distperm.OpenWAL(dir, distperm.WALOptions{Sync: distperm.SyncNever, SegmentBytes: 1}) // clamped to the 4 KiB minimum
	if err != nil {
		t.Fatal(err)
	}
	var recs []distperm.WALRecord
	for i := 0; i < 40; i++ {
		v := make(distperm.Vector, 64)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		rec := distperm.WALRecord{Op: distperm.WALInsert, GID: i, Point: v}
		recs = append(recs, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.Stats(); st.Segments < 3 {
		t.Fatalf("only %d segments; the test needs rotation", st.Segments)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWALRotationReplayAndTruncate(t *testing.T) {
	dir := t.TempDir()
	recs := buildMultiSegment(t, dir)
	w, err := distperm.OpenWAL(dir, distperm.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := replayAll(t, w, 0); !reflect.DeepEqual(got, recs) {
		t.Fatalf("multi-segment replay diverged (%d records, want %d)", len(got), len(recs))
	}
	if err := w.TruncateThrough(w.Seq()); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("%d segments after TruncateThrough(all), want just the active one", len(segs))
	}
	// The dropped prefix is gone: replaying from 0 must refuse, not return
	// a partial history.
	if _, err := w.Replay(0, func(uint64, distperm.WALRecord) error { return nil }); err == nil {
		t.Fatal("replay from 0 succeeded over a truncated prefix")
	}
	// Replay from the retained suffix still works.
	w2recs := replayAll(t, w, w.Seq())
	if len(w2recs) != 0 {
		t.Fatalf("replay from head gave %d records", len(w2recs))
	}
}

func TestWALCorruptionMidLogRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	buildMultiSegment(t, dir)
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	sort.Strings(segs)

	t.Run("flip in first segment", func(t *testing.T) {
		cdir := copyDir(t, dir)
		csegs, _ := filepath.Glob(filepath.Join(cdir, "wal-*.seg"))
		sort.Strings(csegs)
		data, err := os.ReadFile(csegs[0])
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(csegs[0], data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := distperm.OpenWAL(cdir, distperm.WALOptions{}); err == nil {
			t.Fatal("opened a log with mid-segment corruption")
		}
	})
	t.Run("missing segment", func(t *testing.T) {
		cdir := copyDir(t, dir)
		csegs, _ := filepath.Glob(filepath.Join(cdir, "wal-*.seg"))
		sort.Strings(csegs)
		if err := os.Remove(csegs[1]); err != nil {
			t.Fatal(err)
		}
		_, err := distperm.OpenWAL(cdir, distperm.WALOptions{})
		if err == nil || !strings.Contains(err.Error(), "missing segment") {
			t.Fatalf("opening with a missing middle segment: %v", err)
		}
	})
	t.Run("truncated mid-log segment", func(t *testing.T) {
		cdir := copyDir(t, dir)
		csegs, _ := filepath.Glob(filepath.Join(cdir, "wal-*.seg"))
		sort.Strings(csegs)
		if err := os.Truncate(csegs[0], 40); err != nil {
			t.Fatal(err)
		}
		if _, err := distperm.OpenWAL(cdir, distperm.WALOptions{}); err == nil {
			t.Fatal("opened a log whose non-final segment is truncated")
		}
	})
}

func TestWALSyncPolicies(t *testing.T) {
	if _, err := distperm.ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted nonsense")
	}
	for _, tc := range []struct {
		name string
		opts distperm.WALOptions
	}{
		{"always", distperm.WALOptions{Sync: distperm.SyncAlways}},
		{"interval", distperm.WALOptions{Sync: distperm.SyncInterval, SyncInterval: time.Millisecond}},
		{"never", distperm.WALOptions{Sync: distperm.SyncNever}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if p, err := distperm.ParseSyncPolicy(tc.name); err != nil || p != tc.opts.Sync {
				t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.name, p, err)
			}
			dir := t.TempDir()
			w, err := distperm.OpenWAL(dir, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			recs := walRecs(0, 6)
			for _, rec := range recs {
				if err := w.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			st := w.Stats()
			switch tc.opts.Sync {
			case distperm.SyncAlways:
				if st.Syncs < int64(len(recs)) {
					t.Fatalf("always policy fsynced %d times for %d appends", st.Syncs, len(recs))
				}
				if st.Fsync.Count < uint64(len(recs)) {
					t.Fatalf("fsync histogram saw %d samples", st.Fsync.Count)
				}
			case distperm.SyncInterval:
				deadline := time.Now().Add(5 * time.Second)
				for w.Stats().Syncs == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if w.Stats().Syncs == 0 {
					t.Fatal("interval policy never fsynced")
				}
			}
			if st.Sync != tc.name {
				t.Fatalf("stats report sync %q, want %q", st.Sync, tc.name)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w, err = distperm.OpenWAL(dir, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer w.Close()
			if got := replayAll(t, w, 0); !reflect.DeepEqual(got, recs) {
				t.Fatalf("replay under %s diverged", tc.name)
			}
		})
	}
}

// walEngine builds a WAL-attached engine over a fresh uniform base.
func walEngine(t *testing.T, dir string, db *distperm.DB) (*distperm.MutableEngine, *distperm.WAL) {
	t.Helper()
	w, err := distperm.OpenWAL(dir, distperm.WALOptions{Sync: distperm.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	me, err := distperm.NewMutableEngine(db, distperm.MutableConfig{
		Spec: distperm.Spec{Index: "distperm", K: 4, Seed: 11},
		WAL:  w,
	})
	if err != nil {
		t.Fatal(err)
	}
	return me, w
}

// liveSet fingerprints an engine's logical point set: gid → point.
func liveSet(t *testing.T, me *distperm.MutableEngine) map[int]string {
	t.Helper()
	snap, err := me.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]string)
	full := snap.DB()
	for local, g := range snap.GIDs() {
		if !snap.Tombstoned(g) {
			out[g] = fmt.Sprintf("%v", full.Points[local])
		}
	}
	return out
}

// mutate drives n random inserts/deletes through the engine, mirroring
// them in model.
func mutate(t *testing.T, me *distperm.MutableEngine, model map[int]string, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 && len(model) > 1 {
			gids := make([]int, 0, len(model))
			for g := range model {
				gids = append(gids, g)
			}
			sort.Ints(gids)
			victim := gids[rng.Intn(len(gids))]
			if err := me.Delete(victim); err != nil {
				t.Fatal(err)
			}
			delete(model, victim)
			continue
		}
		p := distperm.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		gid, err := me.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		model[gid] = fmt.Sprintf("%v", p)
	}
}

// TestWALEngineRecovery is the end-to-end crash drill without a process
// boundary: mutate a WAL-attached engine, drop it on the floor (no
// snapshot, no clean close), rebuild from the same base + log, and require
// the recovered live set to equal the acknowledged one exactly.
func TestWALEngineRecovery(t *testing.T) {
	dir := t.TempDir()
	db := mustDB(t, 21, 30)
	me, _ := walEngine(t, dir, db)
	model := make(map[int]string)
	for g, p := range liveSet(t, me) {
		model[g] = p
	}
	rng := rand.New(rand.NewSource(4))
	mutate(t, me, model, rng, 120)
	acked := liveSet(t, me)
	if !reflect.DeepEqual(acked, model) {
		t.Fatal("model drifted from engine before the crash")
	}
	me.Close() // the WAL deliberately stays un-Closed: a crash would not flush it either

	w, err := distperm.OpenWAL(dir, distperm.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	me2, err := distperm.NewMutableEngine(db, distperm.MutableConfig{Spec: distperm.Spec{Index: "distperm", K: 4, Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	defer me2.Close()
	applied, skipped, err := me2.ReplayWAL(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 120 || skipped != 0 {
		t.Fatalf("replay applied %d skipped %d, want 120/0", applied, skipped)
	}
	if err := me2.AttachWAL(w); err != nil {
		t.Fatal(err)
	}
	if err := me2.AttachWAL(w); err == nil {
		t.Fatal("AttachWAL attached twice")
	}
	if got := liveSet(t, me2); !reflect.DeepEqual(got, acked) {
		t.Fatalf("recovered live set has %d points, acknowledged %d — contents diverge", len(got), len(acked))
	}
	// The recovered engine keeps logging: one more write, one more record.
	before := w.Seq()
	if _, err := me2.Insert(distperm.Vector{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if w.Seq() != before+1 {
		t.Fatalf("post-recovery insert moved seq %d→%d", before, w.Seq())
	}
	w.Close()
}

// TestWALCheckpointRecovery covers the checkpoint path: recovery loads the
// newest checkpoint, replays only the tail, and prunes what the checkpoint
// covers; a conservative replay from zero is idempotent.
func TestWALCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	db := mustDB(t, 22, 25)
	me, w := walEngine(t, dir, db)
	model := make(map[int]string)
	for g, p := range liveSet(t, me) {
		model[g] = p
	}
	rng := rand.New(rand.NewSource(5))
	mutate(t, me, model, rng, 60)

	snap, seq, err := me.CheckpointSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 60 {
		t.Fatalf("checkpoint cut at seq %d, want 60", seq)
	}
	if err := w.WriteCheckpoint(snap, seq); err != nil {
		t.Fatal(err)
	}
	mutate(t, me, model, rng, 40)
	acked := liveSet(t, me)
	me.Close()

	w2, err := distperm.OpenWAL(dir, distperm.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := w2.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Seq != seq {
		t.Fatalf("loaded checkpoint %+v, want seq %d", ck, seq)
	}
	for _, fromSeq := range []uint64{ck.Seq, 0} {
		me2, err := distperm.NewMutableEngineFrom(ck.Snapshot, distperm.MutableConfig{Spec: distperm.Spec{Index: "distperm", K: 4, Seed: 11}})
		if err != nil {
			t.Fatal(err)
		}
		applied, skipped, err := me2.ReplayWAL(w2, fromSeq)
		if err != nil {
			t.Fatalf("replay from %d: %v", fromSeq, err)
		}
		if fromSeq == ck.Seq && (applied != 40 || skipped != 0) {
			t.Fatalf("tail replay applied %d skipped %d, want 40/0", applied, skipped)
		}
		if fromSeq == 0 && applied != 40 {
			// Everything the checkpoint covers must be recognised and
			// skipped, not double-applied.
			t.Fatalf("conservative replay applied %d records, want 40 (skipped %d)", applied, skipped)
		}
		if got := liveSet(t, me2); !reflect.DeepEqual(got, acked) {
			t.Fatalf("recovery from seq %d diverged from the acknowledged set", fromSeq)
		}
		me2.Close()
	}
	if ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt")); len(ckpts) != 1 {
		t.Fatalf("%d checkpoint files on disk, want 1", len(ckpts))
	}
	w2.Close()
}

func TestWALReplayAfterAttachRefused(t *testing.T) {
	dir := t.TempDir()
	db := mustDB(t, 23, 10)
	me, mw := walEngine(t, dir, db)
	defer mw.Close()
	defer me.Close()
	w, err := distperm.OpenWAL(t.TempDir(), distperm.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, _, err := me.ReplayWAL(w, 0); err == nil {
		t.Fatal("ReplayWAL ran on an engine with an attached WAL")
	}
}

func TestWALStatsSurface(t *testing.T) {
	db := mustDB(t, 24, 10)
	me, err := distperm.NewMutableEngine(db, distperm.MutableConfig{Spec: distperm.Spec{Index: "linear"}})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()
	if st := me.WALStats(); st.Enabled {
		t.Fatal("WAL-less engine reports an enabled WAL")
	}
	if _, _, err := me.CheckpointSnapshot(); err == nil {
		t.Fatal("CheckpointSnapshot worked without a WAL")
	}

	dir := t.TempDir()
	me2, w2 := walEngine(t, dir, db)
	defer w2.Close()
	defer me2.Close()
	if _, err := me2.Insert(distperm.Vector{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	st := me2.WALStats()
	if !st.Enabled || st.AppendedRecords != 1 || st.Seq != 1 || st.Dir != dir || st.Sync != "never" {
		t.Fatalf("engine wal stats: %+v", st)
	}
}
