package distperm

import (
	"errors"
	"fmt"
	"io"
	"os"

	"distperm/internal/sisap"
)

// ErrNeedDB reports that a frozen container embeds no point vectors, so it
// can only be opened against an explicitly supplied database. Callers that
// attempted a database-less Load can match it with errors.Is, load the
// dataset, and retry.
var ErrNeedDB = sisap.ErrNeedDB

// WriteOptions selects the on-disk form WriteIndexWith emits.
type WriteOptions = sisap.WriteOptions

// WriteIndexWith serialises x like WriteIndex, but lets the caller pick the
// on-disk form. With Compact false (the zero value) a PermIndex is written
// as a frozen container — the sectioned, checksummed, 64-byte-aligned v2
// payload that OpenMapped and Load{Mmap: true} serve zero-copy straight from
// the page cache. Compact true, and every non-PermIndex kind, produce the
// bit-packed stream WriteIndex emits.
func WriteIndexWith(w io.Writer, x Index, opts WriteOptions) (int64, error) {
	return sisap.WriteIndexWith(w, x, opts)
}

// WriteFrozenIndex writes the frozen container form of a distance-permutation
// index: position-independent sections (sites, raw rank matrix, row IDs, and
// — when the metric is named and the points are plain vectors — the point
// data itself) that a later Load with Mmap can map read-only in O(1).
func WriteFrozenIndex(w io.Writer, x *PermIndex) (int64, error) {
	return sisap.WriteFrozen(w, x)
}

// LoadOptions configures Load.
type LoadOptions struct {
	// Mmap maps the container read-only instead of decoding it onto the
	// heap. Opening is O(1) in the index size: the header and section
	// checksums are verified, then the kernels run directly over the mapped
	// bytes. Requires a frozen container (WriteFrozenIndex); on platforms
	// without mmap support, or on big-endian hosts, the same file is
	// transparently decoded onto the heap instead.
	Mmap bool
	// DB is the database the index was built on. It may be nil only for
	// mapped opens of containers that embed their points (Load then serves
	// the embedded database); otherwise Load fails — with ErrNeedDB when a
	// point-less frozen container was opened without one.
	DB *DB
}

// Store is an opened index container: the index, the database it answers
// against, and — for mapped opens — the mapping that backs them. The caller
// owns the Store and must Close it once no Engine built over the index is
// still serving queries; for a MutableEngine base, hand the Close to
// MutableConfig.BaseRelease instead and the engine releases the mapping as
// soon as its first rebuild swaps the base out.
type Store struct {
	DB    *DB
	Index Index

	mapped *sisap.Mapped
}

// Mapped reports whether the store serves zero-copy from a mapped container
// (false after a heap decode, including the big-endian/no-mmap fallbacks).
func (s *Store) Mapped() bool { return s.mapped != nil && s.mapped.Zero() }

// Close releases the mapping, if any. The index must no longer be queried
// afterwards. Closing twice is safe; a heap-backed store's Close is a no-op.
func (s *Store) Close() error {
	if s.mapped == nil {
		return nil
	}
	return s.mapped.Close()
}

// Load opens an index container written by WriteIndex, WriteIndexWith, or
// WriteFrozenIndex. The default path decodes the stream onto the heap
// against opts.DB; with Mmap it maps a frozen container zero-copy, sharing
// one read-only rank table across every Engine replica and every process
// serving the same file.
func Load(path string, opts LoadOptions) (*Store, error) {
	if opts.Mmap {
		m, err := sisap.OpenMapped(path, opts.DB)
		if err != nil {
			return nil, fmt.Errorf("distperm: load %s: %w", path, err)
		}
		return &Store{DB: m.DB(), Index: m.Index(), mapped: m}, nil
	}
	if opts.DB == nil {
		return nil, errors.New("distperm: Load without Mmap requires LoadOptions.DB")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("distperm: load: %w", err)
	}
	defer f.Close()
	idx, err := sisap.ReadIndex(f, opts.DB)
	if err != nil {
		return nil, fmt.Errorf("distperm: load %s: %w", path, err)
	}
	return &Store{DB: opts.DB, Index: idx}, nil
}

// MmapStats is a snapshot of the process-wide frozen-container open path:
// opens (and how many were true zero-copy mappings), open latency, bytes
// currently mapped, and rejected section-checksum verifications. The
// serving layer exports these on /metrics.
type MmapStats = sisap.MmapStats

// ReadMmapStats snapshots the process-wide mmap/open counters.
func ReadMmapStats() MmapStats { return sisap.ReadMmapStats() }
