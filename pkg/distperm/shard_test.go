package distperm

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/sisap"
)

// TestShardedEngineMatchesSingleEngine is the sharding acceptance test: for
// every index kind, partitioner, and a spread of shard counts, the
// scatter-gather answers (kNN and range, indices and distances) must be
// identical to a single Engine over the unpartitioned database. The single
// engine's answers in turn equal LinearScan ground truth (TestEngineMatchesLinearScan),
// so equality here means the sharded layer is exact end to end.
func TestShardedEngineMatchesSingleEngine(t *testing.T) {
	const (
		queries = 60
		k       = 7
		radius  = 0.45
	)
	db, rng := testDB(t, 31, 500, 3)
	queryPts := dataset.UniformVectors(rng, queries, 3)

	truth := sisap.NewLinearScan(db)
	wantKNN := make([][]Result, queries)
	wantRange := make([][]Result, queries)
	for i, q := range queryPts {
		wantKNN[i], _ = truth.KNN(q, k)
		wantRange[i], _ = truth.Range(q, radius)
	}

	for _, kind := range Kinds() {
		for _, p := range []Partitioner{RoundRobin{}, HashPoint{}} {
			for _, shards := range []int{1, 3, 8} {
				name := fmt.Sprintf("%s/%s/shards=%d", kind, p.Name(), shards)
				sx, err := BuildSharded(db, Spec{Index: kind, K: 6, Seed: 9}, shards, p)
				if err != nil {
					t.Fatalf("%s: BuildSharded: %v", name, err)
				}
				if got := sx.NumShards(); got != shards {
					t.Fatalf("%s: NumShards() = %d", name, got)
				}
				se, err := NewShardedEngine(sx, 2)
				if err != nil {
					t.Fatalf("%s: NewShardedEngine: %v", name, err)
				}
				gotKNN, err := se.KNNBatch(queryPts, k)
				if err != nil {
					t.Fatalf("%s: KNNBatch: %v", name, err)
				}
				gotRange, err := se.RangeBatch(queryPts, radius)
				if err != nil {
					t.Fatalf("%s: RangeBatch: %v", name, err)
				}
				se.Close()
				for i := range queryPts {
					if len(gotKNN[i]) != len(wantKNN[i]) {
						t.Fatalf("%s: query %d: %d kNN results, want %d",
							name, i, len(gotKNN[i]), len(wantKNN[i]))
					}
					for j := range wantKNN[i] {
						if gotKNN[i][j] != wantKNN[i][j] {
							t.Fatalf("%s: query %d kNN result %d = %+v, want %+v",
								name, i, j, gotKNN[i][j], wantKNN[i][j])
						}
					}
					if len(gotRange[i]) != len(wantRange[i]) {
						t.Fatalf("%s: query %d: %d range results, want %d",
							name, i, len(gotRange[i]), len(wantRange[i]))
					}
					for j := range wantRange[i] {
						if gotRange[i][j] != wantRange[i][j] {
							t.Fatalf("%s: query %d range result %d differs", name, i, j)
						}
					}
				}
			}
		}
	}
}

// TestShardedEngineSmallShards covers k larger than a shard: every shard
// contributes everything it has and the merge still recovers the exact
// global top k.
func TestShardedEngineSmallShards(t *testing.T) {
	db, rng := testDB(t, 32, 10, 2)
	queryPts := dataset.UniformVectors(rng, 15, 2)
	sx, err := BuildSharded(db, Spec{Index: "linear"}, 4, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(sx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	const k = 7 // > ceil(10/4), so every shard is exhausted
	got, err := se.KNNBatch(queryPts, k)
	if err != nil {
		t.Fatal(err)
	}
	truth := sisap.NewLinearScan(db)
	for i, q := range queryPts {
		want, _ := truth.KNN(q, k)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("query %d result %d = %+v, want %+v", i, j, got[i][j], want[j])
			}
		}
	}
}

// TestShardedIndexServedByPlainEngine: a ShardedIndex satisfies Index and
// Replicable, so the single-pool Engine can serve it directly too.
func TestShardedIndexServedByPlainEngine(t *testing.T) {
	db, rng := testDB(t, 33, 300, 3)
	queryPts := dataset.UniformVectors(rng, 40, 3)
	sx, err := BuildSharded(db, Spec{Index: "distperm", K: 5, Seed: 2}, 3, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(db, sx, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	got, err := e.KNNBatch(queryPts, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := sisap.NewLinearScan(db)
	for i, q := range queryPts {
		want, _ := truth.KNN(q, 4)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("query %d result %d differs", i, j)
			}
		}
	}
}

// TestShardedStatsAggregate: each logical query fans out to every shard, so
// per-shard sub-query counts and distance evaluations must sum exactly to
// the aggregate — the paper's cost model composing additively across shards.
func TestShardedStatsAggregate(t *testing.T) {
	const (
		queries = 80
		shards  = 4
	)
	db, rng := testDB(t, 34, 400, 3)
	queryPts := dataset.UniformVectors(rng, queries, 3)
	sx, err := BuildSharded(db, Spec{Index: "vptree", Seed: 5}, shards, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(sx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	if _, err := se.KNNBatch(queryPts, 3); err != nil {
		t.Fatal(err)
	}

	per := se.ShardStats()
	if len(per) != shards {
		t.Fatalf("ShardStats() has %d entries, want %d", len(per), shards)
	}
	var sumQ, sumE int64
	for s, st := range per {
		if st.Queries != queries {
			t.Errorf("shard %d answered %d sub-queries, want %d", s, st.Queries, queries)
		}
		if st.DistanceEvals <= 0 {
			t.Errorf("shard %d reports no distance evaluations", s)
		}
		sumQ += st.Queries
		sumE += st.DistanceEvals
	}
	agg := se.Stats()
	if agg.Queries != sumQ {
		t.Errorf("aggregate Queries = %d, shard sum = %d", agg.Queries, sumQ)
	}
	if agg.DistanceEvals != sumE {
		t.Errorf("aggregate DistanceEvals = %d, shard sum = %d", agg.DistanceEvals, sumE)
	}
	if agg.MeanEvals <= 0 || agg.P99 < agg.P50 || agg.P50 < 0 {
		t.Errorf("implausible aggregate stats: %+v", agg)
	}
}

// TestShardedSerializeRoundTrip writes the sharded container (shard count,
// partition map, one embedded index per shard) for several member kinds and
// demands bit-identical query behaviour from the reloaded copy.
func TestShardedSerializeRoundTrip(t *testing.T) {
	db, rng := testDB(t, 35, 240, 3)
	queryPts := dataset.UniformVectors(rng, 15, 3)
	for _, kind := range []string{"linear", "laesa", "distperm", "vptree"} {
		sx, err := BuildSharded(db, Spec{Index: kind, K: 5, Seed: 8}, 3, HashPoint{})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var buf bytes.Buffer
		n, err := WriteIndex(&buf, sx)
		if err != nil {
			t.Fatalf("%s: write: %v", kind, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("%s: reported %d bytes, wrote %d", kind, n, buf.Len())
		}
		got, err := ReadIndex(&buf, db)
		if err != nil {
			t.Fatalf("%s: read: %v", kind, err)
		}
		gx, ok := got.(*ShardedIndex)
		if !ok {
			t.Fatalf("%s: reloaded as %T", kind, got)
		}
		if gx.NumShards() != sx.NumShards() {
			t.Errorf("%s: reloaded with %d shards, want %d", kind, gx.NumShards(), sx.NumShards())
		}
		if gx.IndexBits() != sx.IndexBits() {
			t.Errorf("%s: IndexBits %d != %d after round trip", kind, gx.IndexBits(), sx.IndexBits())
		}
		for i, q := range queryPts {
			a, as := sx.KNN(q, 5)
			b, bs := gx.KNN(q, 5)
			if as != bs {
				t.Errorf("%s: query %d stats diverge (%+v vs %+v)", kind, i, as, bs)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%s: query %d kNN result %d differs after round trip", kind, i, j)
				}
			}
			ar, _ := sx.Range(q, 0.3)
			br, _ := gx.Range(q, 0.3)
			if len(ar) != len(br) {
				t.Fatalf("%s: query %d range sizes differ", kind, i)
			}
			for j := range ar {
				if ar[j] != br[j] {
					t.Fatalf("%s: query %d range result %d differs", kind, i, j)
				}
			}
		}
		// The reloaded container serves through the sharded engine too.
		se, err := NewShardedEngine(gx, 2)
		if err != nil {
			t.Fatalf("%s: engine over reloaded index: %v", kind, err)
		}
		if _, err := se.KNNBatch(queryPts, 2); err != nil {
			t.Errorf("%s: reloaded engine batch: %v", kind, err)
		}
		se.Close()
	}
}

// TestShardedSerializeRejectsCorruption fuzzes the sharded container header
// fields that the decoder must bounds-check before trusting.
func TestShardedSerializeRejectsCorruption(t *testing.T) {
	db, _ := testDB(t, 36, 60, 2)
	sx, err := BuildSharded(db, Spec{Index: "linear"}, 2, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, sx); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Layout: 8 magic + 4 version + 4 kindLen + 7 kind + 8 n + 4 shardCount.
	const shardCountOff = 8 + 4 + 4 + 7 + 8

	zeroShards := append([]byte(nil), raw...)
	copy(zeroShards[shardCountOff:], []byte{0, 0, 0, 0})
	if _, err := ReadIndex(bytes.NewReader(zeroShards), db); err == nil ||
		!strings.Contains(err.Error(), "shard count") {
		t.Errorf("zero shard count: %v", err)
	}
	hugeShards := append([]byte(nil), raw...)
	copy(hugeShards[shardCountOff:], []byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadIndex(bytes.NewReader(hugeShards), db); err == nil ||
		!strings.Contains(err.Error(), "shard count") {
		t.Errorf("huge shard count: %v", err)
	}
	// A part length with the top bit set must be rejected in uint64 space,
	// not wrap negative through int() and panic in make().
	hugePart := append([]byte(nil), raw...)
	copy(hugePart[shardCountOff+4:], []byte{0, 0, 0, 0, 0, 0, 0, 0x80})
	if _, err := ReadIndex(bytes.NewReader(hugePart), db); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("huge part length: %v", err)
	}
	if _, err := ReadIndex(bytes.NewReader(raw[:len(raw)-9]), db); err == nil {
		t.Error("truncated sharded file should error")
	}
	other, _ := testDB(t, 37, 10, 2)
	if _, err := ReadIndex(bytes.NewReader(raw), other); err == nil {
		t.Error("database size mismatch should error")
	}
}

// badPartitioner routes everything to one shard (or out of range) to
// exercise Partition's validation.
type badPartitioner struct{ to int }

func (badPartitioner) Name() string                { return "bad" }
func (b badPartitioner) Shard(int, Point, int) int { return b.to }

func TestPartitionErrors(t *testing.T) {
	db, _ := testDB(t, 38, 20, 2)
	if _, err := Partition(nil, 2, RoundRobin{}); err == nil {
		t.Error("nil database should error")
	}
	if _, err := Partition(db, 2, nil); err == nil {
		t.Error("nil partitioner should error")
	}
	for _, shards := range []int{0, -1, 21} {
		if _, err := Partition(db, shards, RoundRobin{}); err == nil {
			t.Errorf("shards=%d should error", shards)
		}
	}
	if _, err := Partition(db, 2, badPartitioner{to: 0}); err == nil ||
		!strings.Contains(err.Error(), "empty") {
		t.Error("empty shard should be reported")
	}
	if _, err := Partition(db, 2, badPartitioner{to: 5}); err == nil {
		t.Error("out-of-range shard assignment should error")
	}
	if _, err := BuildSharded(db, Spec{Index: "bogus"}, 2, RoundRobin{}); err == nil {
		t.Error("unknown member kind should error")
	}
	if _, err := NewShardedEngine(nil, 1); err == nil {
		t.Error("nil sharded index should error")
	}
}

// TestHashPointRejectsUnknownTypes: HashPoint must refuse point types it
// cannot hash content-stably (a formatted pointer would shard differently
// every process run) rather than silently breaking determinism.
func TestHashPointRejectsUnknownTypes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("HashPoint over an unsupported point type should panic")
		}
	}()
	type opaque struct{ x int }
	HashPoint{}.Shard(0, &opaque{1}, 2)
}

func TestPartitionerByName(t *testing.T) {
	for _, name := range []string{"roundrobin", "hash"} {
		p, err := PartitionerByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("%s resolved to %s", name, p.Name())
		}
	}
	if _, err := PartitionerByName("modulo"); err == nil {
		t.Error("unknown partitioner should error")
	}
}

// evenOdd is a custom placement strategy for the registry test: shard 0 gets
// even IDs, shard 1 odd IDs (shards must be 2).
type evenOdd struct{}

func (evenOdd) Name() string                          { return "evenodd" }
func (evenOdd) Shard(id int, _ Point, shards int) int { return id % 2 % shards }

// registerEvenOdd keeps TestRegisterPartitioner idempotent: the registry is
// process-global, so `go test -count=2` would otherwise hit the duplicate
// panic on the second run.
var registerEvenOdd sync.Once

// TestRegisterPartitioner proves the registry is the extension seam the
// Build registry is: a caller-registered strategy becomes resolvable by
// name, shows up in Partitioners(), and drives BuildSharded.
func TestRegisterPartitioner(t *testing.T) {
	registerEvenOdd.Do(func() { RegisterPartitioner(evenOdd{}) })
	p, err := PartitionerByName("evenodd")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range Partitioners() {
		if name == "evenodd" {
			found = true
		}
	}
	if !found {
		t.Errorf("Partitioners() = %v missing evenodd", Partitioners())
	}
	db, _ := testDB(t, 41, 20, 2)
	sx, err := BuildSharded(db, Spec{Index: "linear"}, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		for _, id := range sx.Part(s) {
			if id%2 != s {
				t.Fatalf("evenodd sent ID %d to shard %d", id, s)
			}
		}
	}
	for _, bad := range []Partitioner{nil, evenOdd{}} { // nil and duplicate
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterPartitioner(%v) should panic", bad)
				}
			}()
			RegisterPartitioner(bad)
		}()
	}
}

// TestShardedEngineEmptyBatch: an empty batch short-circuits without
// scattering — no sub-queries reach any shard pool.
func TestShardedEngineEmptyBatch(t *testing.T) {
	db, _ := testDB(t, 42, 30, 2)
	sx, err := BuildSharded(db, Spec{Index: "linear"}, 3, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(sx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	for _, call := range []func() ([][]Result, error){
		func() ([][]Result, error) { return se.KNNBatch(nil, 2) },
		func() ([][]Result, error) { return se.KNNBatch([]Point{}, 2) },
		func() ([][]Result, error) { return se.RangeBatch(nil, 0.3) },
	} {
		out, err := call()
		if err != nil {
			t.Fatal(err)
		}
		if out == nil || len(out) != 0 {
			t.Fatalf("empty batch returned %v, want empty non-nil slice", out)
		}
	}
	if st := se.Stats(); st.Queries != 0 {
		t.Errorf("empty batches recorded %d sub-queries, want 0", st.Queries)
	}
}

// TestShardedEngineClosed: batches after Close surface the engine-closed
// error instead of hanging or panicking.
func TestShardedEngineClosed(t *testing.T) {
	db, rng := testDB(t, 39, 40, 2)
	sx, err := BuildSharded(db, Spec{Index: "linear"}, 2, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(sx, 1)
	if err != nil {
		t.Fatal(err)
	}
	qs := dataset.UniformVectors(rng, 3, 2)
	if _, err := se.KNNBatch(qs, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := se.KNNBatch(qs, 41); err == nil {
		t.Error("k>n should error")
	}
	if _, err := se.RangeBatch(qs, -0.5); err == nil {
		t.Error("negative radius should error")
	}
	se.Close()
	se.Close() // idempotent
	if _, err := se.KNNBatch(qs, 1); err == nil {
		t.Error("batch after Close should error")
	}
	if _, err := se.RangeBatch(qs, 0.1); err == nil {
		t.Error("range batch after Close should error")
	}
}
