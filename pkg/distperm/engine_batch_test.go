package distperm

import (
	"fmt"
	"sync"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/sisap"
)

// TestEngineBatchFastPath pins the sub-batch scheduling: over a batch-native
// index (distperm) every multi-query KNNBatch must flow through the batched
// kernels — Stats().BatchedQueries counts them — with answers identical to
// the sequential LinearScan ground truth, across batch shapes around the
// chunking boundaries (1 = scalar path, < workers, > workers·chunkCap).
func TestEngineBatchFastPath(t *testing.T) {
	db, rng := testDB(t, 21, 1500, 4)
	truth := sisap.NewLinearScan(db)
	idx := mustBuild(t, db, Spec{Index: "distperm", K: 8, Seed: 23})
	e, err := NewEngine(db, idx, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if !e.batchOK {
		t.Fatal("distperm index should be detected as batch-native")
	}

	var wantBatched int64
	for _, batch := range []int{1, 3, 17, 300} {
		qs := dataset.UniformVectors(rng, batch, 4)
		got, err := e.KNNBatch(qs, 4)
		if err != nil {
			t.Fatal(err)
		}
		if batch > 1 {
			wantBatched += int64(batch)
		}
		for i, q := range qs {
			want, _ := truth.KNN(q, 4)
			assertResultsEqual(t, fmt.Sprintf("batch %d query %d", batch, i), got[i], want)
		}
	}
	st := e.Stats()
	if st.BatchedQueries != wantBatched {
		t.Errorf("Stats().BatchedQueries = %d, want %d", st.BatchedQueries, wantBatched)
	}
	if st.Queries != wantBatched+1 {
		t.Errorf("Stats().Queries = %d, want %d", st.Queries, wantBatched+1)
	}
	if st.DistanceEvals <= 0 {
		t.Errorf("no distance evaluations aggregated: %+v", st)
	}
}

// TestEngineBatchStorm hammers the batch fast path from many goroutines at
// once — under -race this proves concurrent sub-batches stay off each other's
// replicas and result slots — and checks every answer against LinearScan.
func TestEngineBatchStorm(t *testing.T) {
	const (
		goroutines = 8
		batch      = 50
	)
	db, rng := testDB(t, 29, 900, 3)
	truth := sisap.NewLinearScan(db)
	idx := mustBuild(t, db, Spec{Index: "distperm", K: 7, Seed: 31})
	e, err := NewEngine(db, idx, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	batches := make([][]Point, goroutines)
	for g := range batches {
		batches[g] = dataset.UniformVectors(rng, batch, 3)
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, err := e.KNNBatch(batches[g], 3)
			if err != nil {
				errs[g] = err
				return
			}
			for i, q := range batches[g] {
				want, _ := truth.KNN(q, 3)
				for j := range want {
					if got[i][j] != want[j] {
						errs[g] = fmt.Errorf("goroutine %d query %d result %d = %+v, want %+v",
							g, i, j, got[i][j], want[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if want := int64(goroutines * batch); st.Queries != want || st.BatchedQueries != want {
		t.Errorf("Stats() queries = %d batched = %d, want %d of each", st.Queries, st.BatchedQueries, want)
	}
}

// TestEngineBatchNonBatchIndex pins the degradation path: an index without
// KNNBatch serves batches through per-query jobs, identical answers,
// BatchedQueries stays zero.
func TestEngineBatchNonBatchIndex(t *testing.T) {
	db, rng := testDB(t, 37, 600, 3)
	truth := sisap.NewLinearScan(db)
	idx := mustBuild(t, db, Spec{Index: "vptree", Seed: 41})
	e, err := NewEngine(db, idx, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.batchOK {
		t.Fatal("vptree should not be detected as batch-native")
	}
	qs := dataset.UniformVectors(rng, 40, 3)
	got, err := e.KNNBatch(qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, _ := truth.KNN(q, 5)
		assertResultsEqual(t, fmt.Sprintf("query %d", i), got[i], want)
	}
	if st := e.Stats(); st.BatchedQueries != 0 {
		t.Errorf("Stats().BatchedQueries = %d, want 0", st.BatchedQueries)
	}
}

// TestShardedEngineBatchStats checks the scatter-gather layer both uses the
// shard engines' batch fast path (each shard is a distperm index) and sums
// BatchedQueries across shards.
func TestShardedEngineBatchStats(t *testing.T) {
	db, rng := testDB(t, 43, 800, 3)
	truth := sisap.NewLinearScan(db)
	sx, err := BuildSharded(db, Spec{Index: "distperm", K: 6, Seed: 47}, 3, RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(sx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	qs := dataset.UniformVectors(rng, 30, 3)
	got, err := se.KNNBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, _ := truth.KNN(q, 4)
		assertResultsEqual(t, fmt.Sprintf("query %d", i), got[i], want)
	}
	st := se.Stats()
	if want := int64(3 * len(qs)); st.BatchedQueries != want {
		t.Errorf("Stats().BatchedQueries = %d, want %d (every shard serves every query batched)", st.BatchedQueries, want)
	}
}

// TestMutableEngineBatchFastPath pins satellite coverage for the write path:
// a MutableEngine over a distperm base routes its batch queries through the
// base engine's sub-batch fast path (BatchedQueries advances, surviving a
// rebuild swap) while the delta merge keeps answers equal to a from-scratch
// linear scan of the logical point set.
func TestMutableEngineBatchFastPath(t *testing.T) {
	db, rng := testDB(t, 53, 400, 3)
	me, err := NewMutableEngine(db, MutableConfig{Spec: Spec{Index: "distperm", K: 6, Seed: 59}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()

	// Mirror of the logical point set: gid-ascending live (gid, point) pairs.
	gids := make([]int, db.N())
	pts := append([]Point(nil), db.Points...)
	for i := range gids {
		gids[i] = i
	}
	for _, p := range dataset.UniformVectors(rng, 25, 3) {
		gid, err := me.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		gids = append(gids, gid)
		pts = append(pts, p)
	}
	for _, i := range []int{7, 100, 390} {
		if err := me.Delete(gids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{390, 100, 7} { // descending: indexes stay valid
		gids = append(gids[:i], gids[i+1:]...)
		pts = append(pts[:i], pts[i+1:]...)
	}

	refDB := sisap.NewDB(db.Metric, pts)
	truth := sisap.NewLinearScan(refDB)
	check := func(label string) {
		qs := dataset.UniformVectors(rng, 20, 3)
		got, err := me.KNNBatch(qs, 4)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for i, q := range qs {
			want, _ := truth.KNN(q, 4)
			for j := range want {
				want[j].ID = gids[want[j].ID]
			}
			assertResultsEqual(t, fmt.Sprintf("%s query %d", label, i), got[i], want)
		}
	}
	check("before rebuild")
	before := me.Stats().BatchedQueries
	if before == 0 {
		t.Fatal("mutable engine batches did not reach the base engine's fast path")
	}
	if err := me.Rebuild(); err != nil {
		t.Fatal(err)
	}
	check("after rebuild")
	if after := me.Stats().BatchedQueries; after <= before {
		t.Errorf("BatchedQueries did not survive the rebuild swap: %d -> %d", before, after)
	}
}

func assertResultsEqual(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("%s: result %d = %+v, want %+v", label, j, got[j], want[j])
		}
	}
}
