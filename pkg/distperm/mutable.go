package distperm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distperm/internal/metric"
	"distperm/internal/sisap"
	"distperm/pkg/obs"
)

// ErrOutOfRange tags request-parameter errors (k or radius outside the
// servable range) so serving layers can tell a bad request from an engine
// failure. It is wrapped by the batch methods of Engine, ShardedEngine, and
// MutableEngine; match with errors.Is.
var ErrOutOfRange = errors.New("out of range")

// ErrUnknownID is wrapped by MutableEngine.Delete when the ID names no live
// point: never issued, already deleted, or dropped by an earlier delete and
// rebuild. Match with errors.Is.
var ErrUnknownID = errors.New("no live point with this id")

// MutableConfig tunes a MutableEngine.
type MutableConfig struct {
	// Spec describes the index kind rebuilds construct (and NewMutableEngine
	// builds initially). For WrapMutable an empty Spec.Index defaults to the
	// wrapped index's kind.
	Spec Spec
	// Workers sizes each engine worker pool (≤ 0 means NumCPU), per shard
	// when Shards > 1.
	Workers int
	// RebuildThreshold triggers a background rebuild once the pending write
	// count (delta points + tombstones) reaches it. ≤ 0 disables automatic
	// rebuilds; Rebuild still folds on demand.
	RebuildThreshold int
	// Shards > 1 makes rebuilds produce a sharded index served by a
	// ShardedEngine, partitioned by Partitioner — the same scatter-gather
	// seam BuildSharded uses. Inserts are routed through the Partitioner at
	// write time, so per-shard pending-write counts are observable before
	// the rebuild folds the points in.
	Shards int
	// Partitioner places points when Shards > 1 (required then).
	Partitioner Partitioner
	// BaseRelease, if set, runs once the initially wrapped base index is
	// no longer reachable by any query: after the first rebuild's RCU swap
	// drains its last in-flight reader, or at Close if no rebuild replaced
	// it. It is the release point for storage backing the base — a Store
	// opened with Mmap keeps its frozen base mapped while the delta lives
	// on heap, and this hook is where the mapping is unmapped. Rebuilt
	// bases are heap-owned and need no hook.
	BaseRelease func()
	// WAL, if set, receives an append for every mutation before it is
	// acknowledged, making the write path crash-safe (see OpenWAL). Only
	// attach a log whose records are already applied — when resuming from a
	// recovery, replay with ReplayWAL first and use AttachWAL after, or the
	// replayed records would be appended a second time.
	WAL *WAL
}

// mutBackend is the engine surface a snapshot serves base queries on;
// *Engine and *ShardedEngine both satisfy it.
type mutBackend interface {
	KNNBatch(qs []Point, k int) ([][]Result, error)
	KNNApproxBatch(qs []Point, k, nprobe int) ([][]Result, []sisap.ApproxStats, error)
	RangeBatch(qs []Point, r float64) ([][]Result, error)
	Stats() EngineStats
	ApproxBuckets() int
	DistinctRows() int
	LatencySnapshot() obs.HistogramSnapshot
	BusyWorkers() int
	Workers() int
	Close()
}

// epoch ties one base engine to the set of in-flight queries using it, so a
// superseded engine closes only after its last reader finishes — the grace
// period of the RCU-style snapshot swap. release, when set, frees storage
// backing the epoch's base index (e.g. a frozen-container mapping) and runs
// exactly once, after the backend has closed.
type epoch struct {
	backend     mutBackend
	inflight    sync.WaitGroup
	release     func()
	releaseOnce sync.Once
}

// close shuts the epoch's backend and runs its release hook. Safe to call
// more than once as long as the backend's Close is idempotent (both engine
// kinds are); the release hook still runs at most once.
func (e *epoch) close() {
	e.backend.Close()
	if e.release != nil {
		e.releaseOnce.Do(e.release)
	}
}

// deltaPoint is one inserted, not-yet-indexed point.
type deltaPoint struct {
	gid   int
	p     Point
	shard int // Partitioner assignment at insert time; -1 unsharded
}

// mutSnapshot is one immutable view of the store: a built base index behind
// a worker-pool engine, the gid map and tombstones over it, and the delta
// of inserts since the base was built. Writers publish a fresh snapshot per
// mutation (sharing everything unchanged); readers pin one snapshot for the
// duration of a batch and never block on writers or rebuilds.
type mutSnapshot struct {
	ep      *epoch
	baseDB  *sisap.DB
	baseIdx Index
	gids    []int // base local -> gid, strictly increasing
	maxBase int   // gids[len(gids)-1]
	tomb    map[int]struct{}
	delta   []deltaPoint // ascending gid, every gid > maxBase
	logical int          // live point count
}

func (s *mutSnapshot) pending() int { return len(s.delta) + len(s.tomb) }

// findDelta returns the position of gid in the delta, or (i, false) with
// the insertion point.
func (s *mutSnapshot) findDelta(gid int) (int, bool) {
	i := sort.Search(len(s.delta), func(i int) bool { return s.delta[i].gid >= gid })
	return i, i < len(s.delta) && s.delta[i].gid == gid
}

// live reports whether gid names a live point in this snapshot.
func (s *mutSnapshot) live(gid int) bool {
	if gid > s.maxBase {
		_, ok := s.findDelta(gid)
		return ok
	}
	i := sort.SearchInts(s.gids, gid)
	if i >= len(s.gids) || s.gids[i] != gid {
		return false
	}
	_, dead := s.tomb[gid]
	return !dead
}

// MutableEngine wraps any engine of the family with a live write path:
// inserts land in a linear-scanned delta buffer whose results merge into
// every kNN/range answer, deletes are tombstones filtered at gather time,
// and a background rebuilder folds delta and tombstones into a freshly
// built index that is swapped in atomically — readers pin a snapshot per
// batch and never see a torn index; a superseded base engine closes only
// after its last in-flight query drains.
//
// Every point carries a stable global ID: the initial database occupies
// 0..N-1 and each insert takes the next ID. Query results report these IDs,
// so answers are comparable across mutations, rebuilds, and save/load
// (Snapshot serialises the store in the DPERMIDX "mutable" container kind).
// After any sequence of writes, answers equal a from-scratch rebuild over
// the logical point set — the delta scan is exact, so mutation costs
// distance evaluations (visible in Stats), never recall.
//
// All methods are safe for concurrent use. Writers serialise against each
// other; readers never wait for writers, rebuilds, or each other.
type MutableEngine struct {
	cfg    MutableConfig
	metric Metric
	proto  Point

	// curMu publishes cur; readers hold it only long enough to pin the
	// snapshot's epoch, writers only long enough to store the new pointer.
	curMu  sync.RWMutex
	cur    *mutSnapshot
	closed atomic.Bool

	// writeMu serialises Insert/Delete/rebuild-swap/Close.
	writeMu sync.Mutex
	nextGid int
	// wal, when non-nil, is appended to under writeMu before a mutation
	// publishes — the durability handshake: no acknowledgement without a
	// logged record. Set by MutableConfig.WAL or AttachWAL.
	wal *WAL

	// rebuildMu serialises whole rebuilds (capture → build → swap) against
	// each other — the background loop and manual Rebuild calls. The swap
	// arithmetic relies on the base being unchanged between its snapshot
	// capture and its swap, which only holds with one rebuild in flight.
	rebuildMu sync.Mutex

	kick      chan struct{}
	done      chan struct{}
	rebuilder sync.WaitGroup
	reapers   sync.WaitGroup

	// Cross-epoch accounting: closed epochs fold their final counters here,
	// so Stats survives rebuilds; deltaEvals counts the gather-time scans.
	statsMu                          sync.Mutex
	accQueries, accEvals, accBatched int64
	accApproxQ, accProbed, accCand   int64
	accLat                           obs.HistogramSnapshot
	deltaEvals                       atomic.Int64
	inserts, deletes                 atomic.Int64
	rebuilds                         atomic.Int64
	rebuildFailures                  atomic.Int64
	lastRebuildNanos                 atomic.Int64
	lastRebuildErr                   atomic.Pointer[string]
}

// MutationStats is a snapshot of the write path, reported alongside
// EngineStats by serving layers.
type MutationStats struct {
	// Inserts and Deletes count accepted mutations.
	Inserts, Deletes int64
	// LiveN is the logical point count; NextID the ID the next insert takes.
	LiveN, NextID int
	// DeltaSize and Tombstones describe the pending write set; their sum is
	// PendingWrites, compared against RebuildThreshold.
	DeltaSize, Tombstones int
	PendingWrites         int
	RebuildThreshold      int
	// DeltaPerShard is the Partitioner's routing of the pending inserts
	// (nil when unsharded).
	DeltaPerShard []int
	// Rebuilds and RebuildFailures count background folds; LastRebuild is
	// the duration of the most recent successful one and LastRebuildError
	// the message of the most recent failed one.
	Rebuilds, RebuildFailures int64
	LastRebuild               time.Duration
	LastRebuildError          string
}

// NewMutableEngine builds cfg.Spec over db (sharded when cfg.Shards > 1)
// and wraps it mutable. The db points take global IDs 0..N-1.
func NewMutableEngine(db *DB, cfg MutableConfig) (*MutableEngine, error) {
	if db == nil || db.N() == 0 {
		return nil, errors.New("distperm: NewMutableEngine requires a non-empty database")
	}
	idx, err := buildForConfig(db, cfg)
	if err != nil {
		return nil, err
	}
	return WrapMutable(db, idx, cfg)
}

// buildForConfig is the rebuild constructor: cfg.Spec over db, through
// BuildSharded when sharding is configured.
func buildForConfig(db *DB, cfg MutableConfig) (Index, error) {
	if cfg.Shards > 1 {
		return BuildSharded(db, cfg.Spec, cfg.Shards, cfg.Partitioner)
	}
	return Build(db, cfg.Spec)
}

// WrapMutable wraps an already-built index (any kind, including "sharded")
// with the write path. idx must have been built on db; the db points take
// global IDs 0..N-1. An empty cfg.Spec.Index defaults to idx's kind, so
// rebuilds reproduce what was wrapped.
func WrapMutable(db *DB, idx Index, cfg MutableConfig) (*MutableEngine, error) {
	if db == nil || db.N() == 0 || idx == nil {
		return nil, errors.New("distperm: WrapMutable requires a database and an index")
	}
	gids := make([]int, db.N())
	for i := range gids {
		gids[i] = i
	}
	return newMutable(db, idx, gids, nil, nil, db.N(), cfg)
}

// NewMutableEngineFrom resumes a saved store: a *MutableIndex read back
// from the DPERMIDX "mutable" container (ReadIndex against the full
// base+delta database) becomes a live engine again, with its gids,
// tombstones, and pending delta intact.
func NewMutableEngineFrom(mi *MutableIndex, cfg MutableConfig) (*MutableEngine, error) {
	if mi == nil {
		return nil, errors.New("distperm: NewMutableEngineFrom requires a snapshot")
	}
	full, nb := mi.DB(), mi.BaseN()
	gids := mi.GIDs()
	var tombs []int
	var delta []deltaPoint
	for _, g := range mi.Tombstones() {
		// Tombstoned delta points simply never re-enter the delta; only
		// base tombstones are carried (the engine's delta holds live points
		// only).
		if g <= gids[nb-1] {
			tombs = append(tombs, g)
		}
	}
	for local := nb; local < full.N(); local++ {
		if mi.Tombstoned(gids[local]) {
			continue
		}
		delta = append(delta, deltaPoint{gid: gids[local], p: full.Points[local], shard: -1})
	}
	return newMutable(mi.BaseDB(), mi.Base(), append([]int(nil), gids[:nb]...), tombs, delta, mi.NextGID(), cfg)
}

func newMutable(baseDB *DB, baseIdx Index, gids, tombs []int, delta []deltaPoint, nextGid int, cfg MutableConfig) (*MutableEngine, error) {
	if cfg.Shards > 1 && cfg.Partitioner == nil {
		return nil, fmt.Errorf("distperm: %d shards need a Partitioner", cfg.Shards)
	}
	if cfg.Spec.Index == "" {
		// Default rebuilds to the wrapped kind; a sharded base defers to
		// its first member (the container kind "sharded" is not buildable).
		if sx, ok := baseIdx.(*ShardedIndex); ok {
			cfg.Spec.Index = sx.Shard(0).Name()
		} else {
			cfg.Spec.Index = baseIdx.Name()
		}
	}
	known := false
	for _, kind := range Kinds() {
		if kind == cfg.Spec.Index {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("distperm: rebuild spec names unknown index kind %q", cfg.Spec.Index)
	}
	backend, err := engineFor(baseDB, baseIdx, cfg.Workers)
	if err != nil {
		return nil, err
	}
	m := &MutableEngine{
		cfg:     cfg,
		metric:  baseDB.Metric,
		proto:   baseDB.Points[0],
		nextGid: nextGid,
		wal:     cfg.WAL,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	tomb := make(map[int]struct{}, len(tombs))
	for _, g := range tombs {
		tomb[g] = struct{}{}
	}
	for i := range delta {
		delta[i].shard = m.routeShard(delta[i].gid, delta[i].p)
	}
	m.cur = &mutSnapshot{
		ep:      &epoch{backend: backend, release: cfg.BaseRelease},
		baseDB:  baseDB,
		baseIdx: baseIdx,
		gids:    gids,
		maxBase: gids[len(gids)-1],
		tomb:    tomb,
		delta:   delta,
		logical: len(gids) - len(tomb) + len(delta),
	}
	m.rebuilder.Add(1)
	go m.rebuildLoop()
	m.maybeKick(m.cur)
	return m, nil
}

// engineFor starts the right engine for idx: a ShardedEngine per-shard pool
// for a sharded index, a single Engine otherwise.
func engineFor(db *DB, idx Index, workers int) (mutBackend, error) {
	if sx, ok := idx.(*ShardedIndex); ok {
		return NewShardedEngine(sx, workers)
	}
	return NewEngine(db, idx, workers)
}

// routeShard places a point through the Partitioner seam at write time.
func (m *MutableEngine) routeShard(gid int, p Point) int {
	if m.cfg.Shards > 1 {
		return m.cfg.Partitioner.Shard(gid, p, m.cfg.Shards)
	}
	return -1
}

// acquire pins the current snapshot for one batch: the snapshot's epoch
// cannot close until the matching release.
func (m *MutableEngine) acquire() (*mutSnapshot, error) {
	m.curMu.RLock()
	if m.closed.Load() {
		m.curMu.RUnlock()
		return nil, errors.New("distperm: mutable engine is closed")
	}
	s := m.cur
	s.ep.inflight.Add(1)
	m.curMu.RUnlock()
	return s, nil
}

// publish installs s as the current snapshot. Callers hold writeMu.
func (m *MutableEngine) publish(s *mutSnapshot) {
	m.curMu.Lock()
	m.cur = s
	m.curMu.Unlock()
}

// snapshot reads the current snapshot without pinning its epoch — for paths
// that only read the immutable bookkeeping, never the engine.
func (m *MutableEngine) snapshot() *mutSnapshot {
	m.curMu.RLock()
	defer m.curMu.RUnlock()
	return m.cur
}

// Workers returns the current base engine's worker count.
func (m *MutableEngine) Workers() int { return m.snapshot().ep.backend.Workers() }

// Shards returns the configured shard count (1 when unsharded).
func (m *MutableEngine) Shards() int {
	if m.cfg.Shards > 1 {
		return m.cfg.Shards
	}
	return 1
}

// BaseKind returns the current base index's registry kind.
func (m *MutableEngine) BaseKind() string { return m.snapshot().baseIdx.Name() }

// Metric returns the store's metric.
func (m *MutableEngine) Metric() Metric { return m.metric }

// Proto returns a representative point of the store — the shape inserts
// and queries are validated against.
func (m *MutableEngine) Proto() Point { return m.proto }

// LiveN returns the logical point count.
func (m *MutableEngine) LiveN() int { return m.snapshot().logical }

// IndexBits reports the current base index's storage cost.
func (m *MutableEngine) IndexBits() int64 { return m.snapshot().baseIdx.IndexBits() }

// KNNBatch answers one kNN query per point of qs over the logical point
// set: the base engine's answer (over-fetched by the tombstone count, dead
// points filtered at gather) merged with a linear scan of the delta.
// Result IDs are stable global IDs.
func (m *MutableEngine) KNNBatch(qs []Point, k int) ([][]Result, error) {
	s, err := m.acquire()
	if err != nil {
		return nil, err
	}
	defer s.ep.inflight.Done()
	if k < 1 || k > s.logical {
		return nil, fmt.Errorf("distperm: k=%d %w 1..%d", k, ErrOutOfRange, s.logical)
	}
	if len(qs) == 0 {
		return [][]Result{}, nil
	}
	kb := k + len(s.tomb)
	if kb > len(s.gids) {
		kb = len(s.gids)
	}
	outs, err := s.ep.backend.KNNBatch(qs, kb)
	if err != nil {
		return nil, err
	}
	var evals int64
	for i, q := range qs {
		outs[i] = sisap.MergeKNN([][]Result{
			filterBase(outs[i], s),
			scanDelta(m.metric, s.delta, q, -1, &evals),
		}, k)
	}
	m.deltaEvals.Add(evals)
	return outs, nil
}

// KNNApproxBatch answers one approximate kNN query per point of qs over
// the logical point set. Only the built base index answers approximately —
// the delta buffer is always scanned exactly, so freshly inserted points
// can never be missed by a probe miss; mutation costs distance
// evaluations, never recall beyond the base's own probe trade. The
// returned per-query stats carry the base's probe accounting with the
// delta scan folded into DistanceEvals and Candidates; Exact refers to the
// base answer (when true, results are byte-identical to KNNBatch). An
// engine whose base index lacks the capability fails with ErrNoApprox.
func (m *MutableEngine) KNNApproxBatch(qs []Point, k, nprobe int) ([][]Result, []sisap.ApproxStats, error) {
	s, err := m.acquire()
	if err != nil {
		return nil, nil, err
	}
	defer s.ep.inflight.Done()
	if k < 1 || k > s.logical {
		return nil, nil, fmt.Errorf("distperm: k=%d %w 1..%d", k, ErrOutOfRange, s.logical)
	}
	if len(qs) == 0 {
		return [][]Result{}, []sisap.ApproxStats{}, nil
	}
	kb := k + len(s.tomb)
	if kb > len(s.gids) {
		kb = len(s.gids)
	}
	outs, sts, err := s.ep.backend.KNNApproxBatch(qs, kb, nprobe)
	if err != nil {
		return nil, nil, err
	}
	var evals int64
	for i, q := range qs {
		outs[i] = sisap.MergeKNN([][]Result{
			filterBase(outs[i], s),
			scanDelta(m.metric, s.delta, q, -1, &evals),
		}, k)
		sts[i].DistanceEvals += len(s.delta)
		sts[i].Candidates += len(s.delta)
	}
	m.deltaEvals.Add(evals)
	return outs, sts, nil
}

// ApproxBuckets returns the current base engine's inverted-file directory
// size (0 when the base index has no approximate capability). It can
// change across rebuilds.
func (m *MutableEngine) ApproxBuckets() int { return m.snapshot().ep.backend.ApproxBuckets() }

// DistinctRows returns the current base index's distinct permutation-row
// count (0 when the base does not expose one). Delta points are not
// counted until a rebuild folds them in.
func (m *MutableEngine) DistinctRows() int { return m.snapshot().ep.backend.DistinctRows() }

// RangeBatch answers one range query of radius r per point of qs over the
// logical point set, in (distance, global ID) order.
func (m *MutableEngine) RangeBatch(qs []Point, r float64) ([][]Result, error) {
	s, err := m.acquire()
	if err != nil {
		return nil, err
	}
	defer s.ep.inflight.Done()
	if r < 0 {
		return nil, fmt.Errorf("distperm: negative radius %g is %w", r, ErrOutOfRange)
	}
	if len(qs) == 0 {
		return [][]Result{}, nil
	}
	outs, err := s.ep.backend.RangeBatch(qs, r)
	if err != nil {
		return nil, err
	}
	var evals int64
	for i, q := range qs {
		outs[i] = sisap.MergeRange([][]Result{
			filterBase(outs[i], s),
			scanDelta(m.metric, s.delta, q, r, &evals),
		})
	}
	m.deltaEvals.Add(evals)
	return outs, nil
}

// filterBase is sisap.FilterLive over the snapshot's bookkeeping — the
// same gather step a read-only-served MutableIndex runs.
func filterBase(rs []Result, s *mutSnapshot) []Result {
	return sisap.FilterLive(rs, s.gids, s.tomb)
}

// scanDelta measures q against every delta point — the engine-side twin of
// MutableIndex's delta scan (the buffer holds live points only, so there
// is no tombstone check here). r < 0 keeps all (kNN); otherwise only
// points within r. Evaluations are counted into evals.
func scanDelta(m Metric, delta []deltaPoint, q Point, r float64, evals *int64) []Result {
	var out []Result
	for _, dp := range delta {
		d := m.Distance(q, dp.p)
		*evals++
		if r < 0 || d <= r {
			out = append(out, Result{ID: dp.gid, Distance: d})
		}
	}
	return out
}

// checkPoint validates an insert against the store's point shape, so a
// malformed write is an error here, not a metric panic in a later query.
func (m *MutableEngine) checkPoint(p Point) error {
	if p == nil {
		return errors.New("distperm: nil point")
	}
	if err := metric.Probe(m.metric, p); err != nil {
		return fmt.Errorf("distperm: %w", err)
	}
	if proto, ok := m.proto.(Vector); ok {
		if v, ok := p.(Vector); !ok || len(v) != len(proto) {
			return fmt.Errorf("distperm: insert must be a %d-dimensional vector", len(proto))
		}
	}
	return nil
}

// Insert adds p to the logical point set and returns its stable global ID.
// The point is immediately visible to every query submitted after Insert
// returns (read-your-writes), served from the delta buffer until a rebuild
// folds it into the base index.
func (m *MutableEngine) Insert(p Point) (int, error) {
	if err := m.checkPoint(p); err != nil {
		return 0, err
	}
	m.writeMu.Lock()
	if m.closed.Load() {
		m.writeMu.Unlock()
		return 0, errors.New("distperm: mutable engine is closed")
	}
	s := m.cur
	gid := m.nextGid
	// Durability before acknowledgement: the record must be on the log
	// before the insert becomes visible or the gid is consumed. On append
	// failure nothing changed — but the WAL itself has poisoned, so the gid
	// cannot be double-logged by a retry.
	if m.wal != nil {
		if err := m.wal.Append(WALRecord{Op: WALInsert, GID: gid, Point: p}); err != nil {
			m.writeMu.Unlock()
			return 0, err
		}
	}
	m.nextGid++
	next := *s
	// Appending may share the backing array with s.delta; that is safe —
	// s's readers never look past their own length, and all appends
	// serialise under writeMu.
	next.delta = append(s.delta, deltaPoint{gid: gid, p: p, shard: m.routeShard(gid, p)})
	next.logical++
	m.publish(&next)
	m.inserts.Add(1)
	m.writeMu.Unlock()
	m.maybeKick(&next)
	return gid, nil
}

// Delete removes the live point with the given global ID: a base point is
// tombstoned (filtered from every subsequent answer, physically dropped by
// the next rebuild), a delta point leaves the buffer directly. Unknown and
// already-deleted IDs fail with ErrUnknownID.
func (m *MutableEngine) Delete(gid int) error {
	m.writeMu.Lock()
	if m.closed.Load() {
		m.writeMu.Unlock()
		return errors.New("distperm: mutable engine is closed")
	}
	s := m.cur
	next := *s
	switch {
	case gid < 0 || gid >= m.nextGid:
		m.writeMu.Unlock()
		return fmt.Errorf("distperm: id %d: %w", gid, ErrUnknownID)
	case gid > s.maxBase:
		i, ok := s.findDelta(gid)
		if !ok {
			m.writeMu.Unlock()
			return fmt.Errorf("distperm: id %d: %w", gid, ErrUnknownID)
		}
		next.delta = make([]deltaPoint, 0, len(s.delta)-1)
		next.delta = append(append(next.delta, s.delta[:i]...), s.delta[i+1:]...)
	default:
		if !s.live(gid) {
			m.writeMu.Unlock()
			return fmt.Errorf("distperm: id %d: %w", gid, ErrUnknownID)
		}
		next.tomb = make(map[int]struct{}, len(s.tomb)+1)
		for g := range s.tomb {
			next.tomb[g] = struct{}{}
		}
		next.tomb[gid] = struct{}{}
	}
	if m.wal != nil {
		if err := m.wal.Append(WALRecord{Op: WALDelete, GID: gid}); err != nil {
			m.writeMu.Unlock()
			return err
		}
	}
	next.logical--
	m.publish(&next)
	m.deletes.Add(1)
	m.writeMu.Unlock()
	m.maybeKick(&next)
	return nil
}

// maybeKick wakes the background rebuilder when the pending write set has
// reached the threshold.
func (m *MutableEngine) maybeKick(s *mutSnapshot) {
	if m.cfg.RebuildThreshold > 0 && s.pending() >= m.cfg.RebuildThreshold && s.logical > 0 {
		select {
		case m.kick <- struct{}{}:
		default:
		}
	}
}

func (m *MutableEngine) rebuildLoop() {
	defer m.rebuilder.Done()
	for {
		select {
		case <-m.done:
			return
		case <-m.kick:
		}
		if err := m.rebuildOnce(false); err != nil {
			m.rebuildFailures.Add(1)
			msg := err.Error()
			m.lastRebuildErr.Store(&msg)
		}
	}
}

// Rebuild folds the pending delta and tombstones into a freshly built base
// index immediately, regardless of the threshold — the synchronous form of
// what the background rebuilder does. It is safe to call concurrently with
// queries and writes; writes landing during the build carry over into the
// new snapshot's delta and tombstones.
func (m *MutableEngine) Rebuild() error { return m.rebuildOnce(true) }

func (m *MutableEngine) rebuildOnce(force bool) error {
	m.rebuildMu.Lock()
	defer m.rebuildMu.Unlock()
	s := m.snapshot()
	if !force && (s.pending() < m.cfg.RebuildThreshold || s.logical == 0) {
		return nil
	}
	if s.logical == 0 {
		return errors.New("distperm: cannot rebuild an empty store")
	}
	if s.pending() == 0 {
		return nil // nothing to fold
	}
	start := time.Now()

	// The new base: s's logical point set in gid order. Delta gids all
	// exceed base gids, so base-then-delta concatenation is gid-ascending.
	newGids := make([]int, 0, s.logical)
	newPts := make([]Point, 0, s.logical)
	for local, g := range s.gids {
		if _, dead := s.tomb[g]; dead {
			continue
		}
		newGids = append(newGids, g)
		newPts = append(newPts, s.baseDB.Points[local])
	}
	for _, dp := range s.delta {
		newGids = append(newGids, dp.gid)
		newPts = append(newPts, dp.p)
	}
	newDB := sisap.NewDB(m.metric, newPts)

	cfg := m.cfg
	cfg.Spec.Seed += m.rebuilds.Load() // decorrelate successive rebuilds, reproducibly
	if cfg.Spec.K > newDB.N() {
		cfg.Spec.K = newDB.N()
	}
	if cfg.Shards > newDB.N() {
		cfg.Shards = newDB.N()
	}
	idx, err := buildForConfig(newDB, cfg)
	if err != nil {
		return fmt.Errorf("distperm: rebuild: %w", err)
	}
	backend, err := engineFor(newDB, idx, cfg.Workers)
	if err != nil {
		return fmt.Errorf("distperm: rebuild: %w", err)
	}

	m.writeMu.Lock()
	if m.closed.Load() {
		m.writeMu.Unlock()
		backend.Close()
		return errors.New("distperm: mutable engine is closed")
	}
	// Writes landed since s was captured; c shares s's base (only this
	// rebuilder replaces bases, and writers only touch delta/tomb), so the
	// new snapshot's tombstones are exactly the new-base points no longer
	// live in c, and its delta the c-delta entries newer than the new base.
	c := m.cur
	maxBase := newGids[len(newGids)-1]
	newTomb := make(map[int]struct{})
	for _, g := range newGids {
		if !c.live(g) {
			newTomb[g] = struct{}{}
		}
	}
	i, _ := c.findDelta(maxBase + 1)
	newDelta := append([]deltaPoint(nil), c.delta[i:]...)
	next := &mutSnapshot{
		ep:      &epoch{backend: backend},
		baseDB:  newDB,
		baseIdx: idx,
		gids:    newGids,
		maxBase: maxBase,
		tomb:    newTomb,
		delta:   newDelta,
		logical: len(newGids) - len(newTomb) + len(newDelta),
	}
	oldEp := c.ep
	m.publish(next)
	m.rebuilds.Add(1)
	m.lastRebuildNanos.Store(int64(time.Since(start)))
	m.reapers.Add(1)
	m.writeMu.Unlock()

	// Grace period: the old engine closes once its last pinned reader
	// finishes; its counters fold into the cross-epoch accumulators so
	// Stats survives the swap.
	go func() {
		defer m.reapers.Done()
		oldEp.inflight.Wait()
		st := oldEp.backend.Stats()
		lat := oldEp.backend.LatencySnapshot()
		m.statsMu.Lock()
		m.accQueries += st.Queries
		m.accEvals += st.DistanceEvals
		m.accBatched += st.BatchedQueries
		m.accApproxQ += st.ApproxQueries
		m.accProbed += st.ProbedBuckets
		m.accCand += st.ApproxCandidates
		m.accLat.Merge(lat)
		m.statsMu.Unlock()
		oldEp.close()
	}()
	m.maybeKick(next)
	return nil
}

// Stats aggregates across every epoch the engine has served: query and
// distance-evaluation counts accumulate over rebuilds, the gather-time
// delta scans are costed in, and the latency percentiles are read from the
// cross-epoch merged histogram (closed epochs fold their histograms into
// the accumulator, so no rebuild loses samples).
func (m *MutableEngine) Stats() EngineStats {
	backend := m.snapshot().ep.backend
	st := backend.Stats()
	lat := backend.LatencySnapshot()
	m.statsMu.Lock()
	st.Queries += m.accQueries
	st.DistanceEvals += m.accEvals
	st.BatchedQueries += m.accBatched
	st.ApproxQueries += m.accApproxQ
	st.ProbedBuckets += m.accProbed
	st.ApproxCandidates += m.accCand
	lat.Merge(m.accLat)
	m.statsMu.Unlock()
	st.DistanceEvals += m.deltaEvals.Load()
	if st.Queries > 0 {
		st.MeanEvals = float64(st.DistanceEvals) / float64(st.Queries)
	}
	if lat.Count > 0 {
		st.P50 = histQuantile(lat, 0.50)
		st.P99 = histQuantile(lat, 0.99)
	}
	return st
}

// LatencySnapshot merges the current epoch's latency histogram with the
// accumulated histograms of every closed epoch.
func (m *MutableEngine) LatencySnapshot() obs.HistogramSnapshot {
	lat := m.snapshot().ep.backend.LatencySnapshot()
	m.statsMu.Lock()
	lat.Merge(m.accLat)
	m.statsMu.Unlock()
	return lat
}

// BusyWorkers returns the current base engine's busy-worker count.
func (m *MutableEngine) BusyWorkers() int { return m.snapshot().ep.backend.BusyWorkers() }

// MutationStats snapshots the write path.
func (m *MutableEngine) MutationStats() MutationStats {
	s := m.snapshot()
	ms := MutationStats{
		Inserts:          m.inserts.Load(),
		Deletes:          m.deletes.Load(),
		LiveN:            s.logical,
		DeltaSize:        len(s.delta),
		Tombstones:       len(s.tomb),
		PendingWrites:    s.pending(),
		RebuildThreshold: m.cfg.RebuildThreshold,
		Rebuilds:         m.rebuilds.Load(),
		RebuildFailures:  m.rebuildFailures.Load(),
		LastRebuild:      time.Duration(m.lastRebuildNanos.Load()),
	}
	m.writeMu.Lock()
	ms.NextID = m.nextGid
	m.writeMu.Unlock()
	if msg := m.lastRebuildErr.Load(); msg != nil {
		ms.LastRebuildError = *msg
	}
	if m.cfg.Shards > 1 {
		ms.DeltaPerShard = make([]int, m.cfg.Shards)
		for _, dp := range s.delta {
			if dp.shard >= 0 && dp.shard < len(ms.DeltaPerShard) {
				ms.DeltaPerShard[dp.shard]++
			}
		}
	}
	return ms
}

// Snapshot captures the store as a serialisable *MutableIndex — write it
// with WriteIndex (the DPERMIDX "mutable" container kind) and resume it
// with ReadIndex + NewMutableEngineFrom. The snapshot's database is the
// base points followed by the live delta points; it shares the built base
// index with the engine, which both only read.
func (m *MutableEngine) Snapshot() (*MutableIndex, error) {
	s := m.snapshot()
	m.writeMu.Lock()
	nextGid := m.nextGid
	m.writeMu.Unlock()
	return m.assemble(s, nextGid)
}

// assemble builds the serialisable snapshot form of s.
func (m *MutableEngine) assemble(s *mutSnapshot, nextGid int) (*MutableIndex, error) {
	pts := append([]Point(nil), s.baseDB.Points...)
	gids := append([]int(nil), s.gids...)
	for _, dp := range s.delta {
		pts = append(pts, dp.p)
		gids = append(gids, dp.gid)
	}
	tombs := make([]int, 0, len(s.tomb))
	for g := range s.tomb {
		tombs = append(tombs, g)
	}
	sort.Ints(tombs)
	full := sisap.NewDB(m.metric, pts)
	return sisap.NewMutableIndex(full, len(s.gids), s.baseIdx, gids, tombs, nextGid)
}

// NextGID returns the global ID the next accepted insert would take.
func (m *MutableEngine) NextGID() int {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	return m.nextGid
}

// AttachWAL starts logging every subsequent mutation to w. It must only be
// called while no mutation is being issued, with a log whose records are
// all already applied to this engine — the boot sequence is OpenWAL →
// ReplayWAL → AttachWAL → serve. Attaching twice is an error.
func (m *MutableEngine) AttachWAL(w *WAL) error {
	if w == nil {
		return errors.New("distperm: AttachWAL requires a WAL")
	}
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	if m.closed.Load() {
		return errors.New("distperm: mutable engine is closed")
	}
	if m.wal != nil {
		return errors.New("distperm: a WAL is already attached")
	}
	m.wal = w
	return nil
}

// ReplayWAL applies every record of w with sequence > fromSeq to the
// engine, in order. It must run before AttachWAL (an attached log would
// re-append what it replays). Replay is idempotent against a conservative
// fromSeq: an insert whose gid the engine already issued is skipped, as is
// a delete of an unknown gid; an insert that would skip a gid is a gap —
// evidence of log loss — and errors. Returns applied and skipped counts.
func (m *MutableEngine) ReplayWAL(w *WAL, fromSeq uint64) (applied, skipped uint64, err error) {
	m.writeMu.Lock()
	attached := m.wal != nil
	m.writeMu.Unlock()
	if attached {
		return 0, 0, errors.New("distperm: ReplayWAL must run before AttachWAL")
	}
	_, err = w.Replay(fromSeq, func(seq uint64, rec WALRecord) error {
		switch rec.Op {
		case WALInsert:
			next := m.NextGID()
			if rec.GID < next {
				skipped++
				return nil
			}
			if rec.GID > next {
				return fmt.Errorf("distperm: wal seq %d inserts gid %d but engine expects %d — records are missing", seq, rec.GID, next)
			}
			gid, err := m.Insert(rec.Point)
			if err != nil {
				return fmt.Errorf("distperm: replaying wal seq %d: %w", seq, err)
			}
			if gid != rec.GID {
				return fmt.Errorf("distperm: replaying wal seq %d issued gid %d, record says %d", seq, gid, rec.GID)
			}
		case WALDelete:
			if err := m.Delete(rec.GID); err != nil {
				if errors.Is(err, ErrUnknownID) {
					skipped++
					return nil
				}
				return fmt.Errorf("distperm: replaying wal seq %d: %w", seq, err)
			}
		default:
			return fmt.Errorf("distperm: wal seq %d has unknown op %d", seq, rec.Op)
		}
		applied++
		return nil
	})
	return applied, skipped, err
}

// CheckpointSnapshot captures the store and the WAL sequence it covers as
// one exact cut (both read under the write lock, which every append and
// publish holds): replaying the log from the returned sequence onto the
// returned snapshot reproduces the live store. Feed the pair to
// WAL.WriteCheckpoint.
func (m *MutableEngine) CheckpointSnapshot() (*MutableIndex, uint64, error) {
	m.writeMu.Lock()
	if m.closed.Load() {
		m.writeMu.Unlock()
		return nil, 0, errors.New("distperm: mutable engine is closed")
	}
	if m.wal == nil {
		m.writeMu.Unlock()
		return nil, 0, errors.New("distperm: no WAL attached")
	}
	s := m.cur
	nextGid := m.nextGid
	seq := m.wal.Seq()
	m.writeMu.Unlock()
	mi, err := m.assemble(s, nextGid)
	return mi, seq, err
}

// WALStats snapshots the attached log's counters; the zero value (Enabled
// false) when no WAL is attached.
func (m *MutableEngine) WALStats() WALStats {
	m.writeMu.Lock()
	w := m.wal
	m.writeMu.Unlock()
	if w == nil {
		return WALStats{}
	}
	return w.Stats()
}

// Close stops the rebuilder, waits for superseded engines to drain, and
// closes the current engine after its in-flight batches finish. Idempotent;
// queries and writes after Close return an error.
func (m *MutableEngine) Close() {
	m.writeMu.Lock()
	// Flipping closed under the exclusive curMu section is the barrier
	// against acquire: a reader that saw closed=false completed its
	// inflight.Add before this Lock could succeed, and every reader
	// admitted afterwards observes closed=true and never Adds — so the
	// Wait below cannot race an Add. Holding writeMu means no rebuild swap
	// is mid-publish either, making ep the final epoch.
	m.curMu.Lock()
	already := m.closed.Swap(true)
	ep := m.cur.ep
	m.curMu.Unlock()
	m.writeMu.Unlock()
	if !already {
		close(m.done)
	}
	m.rebuilder.Wait()
	m.reapers.Wait()
	ep.inflight.Wait()
	ep.close()
}
