package distperm_test

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"distperm/internal/dataset"
	"distperm/pkg/distperm"
)

// buildPermStore builds a distperm index over a fresh uniform database and
// writes it to dir in both on-disk forms, returning the db and both paths.
func buildPermStore(t *testing.T, dir string, n, d, k int) (*distperm.DB, string, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(701))
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, n, d))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := distperm.Build(db, distperm.Spec{Index: "distperm", K: k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	compact := filepath.Join(dir, "index.dpx")
	frozen := filepath.Join(dir, "index.frozen.dpx")
	cf, err := os.Create(compact)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := distperm.WriteIndex(cf, idx); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	ff, err := os.Create(frozen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := distperm.WriteIndexWith(ff, idx, distperm.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := ff.Close(); err != nil {
		t.Fatal(err)
	}
	return db, compact, frozen
}

// TestLoadMappedMatchesStream is the serving-layer half of the backend
// equivalence guarantee: an Engine over a mapped frozen container must
// answer exactly like an Engine over the stream-decoded heap index.
func TestLoadMappedMatchesStream(t *testing.T) {
	dir := t.TempDir()
	db, compact, frozen := buildPermStore(t, dir, 1_500, 3, 8)

	heap, err := distperm.Load(compact, distperm.LoadOptions{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer heap.Close()
	if heap.Mapped() {
		t.Error("stream load reported Mapped")
	}
	mapped, err := distperm.Load(frozen, distperm.LoadOptions{Mmap: true, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if zeroCopyHost() && !mapped.Mapped() {
		t.Error("mmap load did not report Mapped")
	}

	he, err := distperm.NewEngine(db, heap.Index, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer he.Close()
	me, err := distperm.NewEngine(mapped.DB, mapped.Index, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()

	rng := rand.New(rand.NewSource(702))
	qs := dataset.UniformVectors(rng, 64, 3)
	wantK, err := he.KNNBatch(qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotK, err := me.KNNBatch(qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if !sameResultSlices(gotK[i], wantK[i]) {
			t.Fatalf("query %d: mapped kNN %v != heap %v", i, gotK[i], wantK[i])
		}
	}
	wantR, err := he.RangeBatch(qs[:16], 0.3)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := me.RangeBatch(qs[:16], 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantR {
		if !sameResultSlices(gotR[i], wantR[i]) {
			t.Fatalf("query %d: mapped range %v != heap %v", i, gotR[i], wantR[i])
		}
	}
}

// zeroCopyHost mirrors the internal gate: mapped serving needs mmap support
// (the unix build tag) and a little-endian host. The test hosts we run on
// are all little-endian, so the OS check suffices.
func zeroCopyHost() bool {
	switch runtime.GOOS {
	case "linux", "darwin", "freebsd", "netbsd", "openbsd", "dragonfly", "solaris", "aix":
		return true
	}
	return false
}

// TestLoadSelfContained: a frozen container over a named metric embeds its
// points, so a mapped Load needs no database at all — the O(1) restart path.
func TestLoadSelfContained(t *testing.T) {
	dir := t.TempDir()
	db, _, frozen := buildPermStore(t, dir, 400, 3, 6)

	st, err := distperm.Load(frozen, distperm.LoadOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.DB == nil || st.DB.N() != db.N() {
		t.Fatalf("self-contained load: got db of %v points, want %d", st.DB, db.N())
	}
	eng, err := distperm.NewEngine(st.DB, st.Index, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ref, err := distperm.NewEngine(db, mustBuild(t, db), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	rng := rand.New(rand.NewSource(703))
	qs := dataset.UniformVectors(rng, 20, 3)
	got, err := eng.KNNBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.KNNBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if !sameResultSlices(got[i], want[i]) {
			t.Fatalf("query %d: self-contained kNN %v != %v", i, got[i], want[i])
		}
	}
}

func mustBuild(t *testing.T, db *distperm.DB) distperm.Index {
	t.Helper()
	idx, err := distperm.Build(db, distperm.Spec{Index: "distperm", K: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestLoadNeedDB: an unnamed metric (LP 2.5 has no registry name) keeps the
// points out of the container; a database-less mapped Load must fail with
// ErrNeedDB, and succeed once the database is supplied.
func TestLoadNeedDB(t *testing.T) {
	rng := rand.New(rand.NewSource(704))
	db, err := distperm.NewDB(distperm.LP(2.5), dataset.UniformVectors(rng, 120, 3))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := distperm.Build(db, distperm.Spec{Index: "distperm", K: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "nodb.dpx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := distperm.WriteFrozenIndex(f, idx.(*distperm.PermIndex)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := distperm.Load(path, distperm.LoadOptions{Mmap: true}); !errors.Is(err, distperm.ErrNeedDB) {
		t.Fatalf("database-less load of point-less container: err = %v, want ErrNeedDB", err)
	}
	st, err := distperm.Load(path, distperm.LoadOptions{Mmap: true, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	q := dataset.UniformVectors(rng, 1, 3)[0]
	got, _ := st.Index.KNN(q, 3)
	want, _ := idx.KNN(q, 3)
	if !sameResultSlices(got, want) {
		t.Fatalf("kNN over retried load %v != %v", got, want)
	}
}

func TestLoadStreamRequiresDB(t *testing.T) {
	dir := t.TempDir()
	_, compact, _ := buildPermStore(t, dir, 100, 2, 4)
	if _, err := distperm.Load(compact, distperm.LoadOptions{}); err == nil {
		t.Fatal("stream load without a database should fail")
	}
}

// TestMutableBaseRelease pins the release hook's contract: it runs exactly
// once, after the wrapped base stops serving — at the first rebuild swap, or
// at Close when no rebuild ever replaced the base.
func TestMutableBaseRelease(t *testing.T) {
	build := func(t *testing.T, released *atomic.Int32) (*distperm.MutableEngine, []distperm.Point) {
		rng := rand.New(rand.NewSource(705))
		pts := dataset.UniformVectors(rng, 150, 3)
		db, err := distperm.NewDB(distperm.L2, pts)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := distperm.Build(db, distperm.Spec{Index: "distperm", K: 6, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		me, err := distperm.WrapMutable(db, idx, distperm.MutableConfig{
			Workers:     2,
			BaseRelease: func() { released.Add(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return me, pts
	}

	t.Run("on rebuild swap", func(t *testing.T) {
		var released atomic.Int32
		me, pts := build(t, &released)
		if _, err := me.Insert(distperm.Vector{0.5, 0.5, 0.5}); err != nil {
			t.Fatal(err)
		}
		if err := me.Rebuild(); err != nil {
			t.Fatal(err)
		}
		// The reaper runs once the old epoch's readers drain — none are in
		// flight, so the hook must fire promptly.
		deadline := time.Now().Add(10 * time.Second)
		for released.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := released.Load(); got != 1 {
			t.Fatalf("BaseRelease ran %d times after rebuild, want 1", got)
		}
		// The swapped-in base must still answer, and Close must not re-run
		// the hook.
		if _, err := me.KNNBatch(pts[:3], 2); err != nil {
			t.Fatal(err)
		}
		me.Close()
		if got := released.Load(); got != 1 {
			t.Fatalf("BaseRelease ran %d times after Close, want 1", got)
		}
	})

	t.Run("on close without rebuild", func(t *testing.T) {
		var released atomic.Int32
		me, pts := build(t, &released)
		if _, err := me.KNNBatch(pts[:3], 2); err != nil {
			t.Fatal(err)
		}
		if released.Load() != 0 {
			t.Fatal("BaseRelease ran while the base was still serving")
		}
		me.Close()
		if got := released.Load(); got != 1 {
			t.Fatalf("BaseRelease ran %d times after Close, want 1", got)
		}
	})
}
