package distperm

import (
	"sync"
	"testing"
	"time"

	"distperm/internal/dataset"
	"distperm/internal/sisap"
	"distperm/pkg/obs"
)

// TestEngineMatchesLinearScan is the concurrency acceptance test: a
// 1000-query batch answered by the pooled engine over the
// distance-permutation index (whose Permuter forces per-worker replicas)
// must equal the sequential LinearScan ground truth exactly. Run under
// `go test -race` this also proves the replica scheme keeps workers off
// each other's scratch buffers.
func TestEngineMatchesLinearScan(t *testing.T) {
	const (
		queries = 1000
		k       = 5
	)
	db, rng := testDB(t, 10, 1200, 4)
	queryPts := dataset.UniformVectors(rng, queries, 4)
	truth := sisap.NewLinearScan(db)

	for _, kind := range []string{"distperm", "vptree", "laesa"} {
		idx := mustBuild(t, db, Spec{Index: kind, K: 8, Seed: 11})
		e, err := NewEngine(db, idx, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.KNNBatch(queryPts, k)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i, q := range queryPts {
			want, _ := truth.KNN(q, k)
			if len(got[i]) != len(want) {
				t.Fatalf("%s: query %d: %d results, want %d", kind, i, len(got[i]), len(want))
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("%s: query %d result %d = %+v, want %+v",
						kind, i, j, got[i][j], want[j])
				}
			}
		}
		st := e.Stats()
		if st.Queries != queries {
			t.Errorf("%s: Stats().Queries = %d, want %d", kind, st.Queries, queries)
		}
		if st.DistanceEvals <= 0 || st.MeanEvals <= 0 {
			t.Errorf("%s: no evaluation counts aggregated: %+v", kind, st)
		}
		if st.P50 < 0 || st.P99 < st.P50 {
			t.Errorf("%s: implausible latency percentiles: %+v", kind, st)
		}
		e.Close()
	}
}

// TestEngineConcurrentBatches drives one engine from many client goroutines
// at once — the serving pattern — and checks every batch independently.
func TestEngineConcurrentBatches(t *testing.T) {
	db, rng := testDB(t, 12, 600, 3)
	idx := mustBuild(t, db, Spec{Index: "distperm", K: 6, Seed: 1})
	e, err := NewEngine(db, idx, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	truth := sisap.NewLinearScan(db)

	const clients = 8
	queryPts := dataset.UniformVectors(rng, clients*50, 3)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		qs := queryPts[c*50 : (c+1)*50]
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := e.KNNBatch(qs, 3)
			if err != nil {
				errs <- err
				return
			}
			for i, q := range qs {
				want, _ := truth.KNN(q, 3)
				for j := range want {
					if got[i][j] != want[j] {
						t.Errorf("concurrent batch diverges from ground truth at query %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEngineRangeBatch(t *testing.T) {
	db, rng := testDB(t, 13, 400, 3)
	idx := mustBuild(t, db, Spec{Index: "vptree", Seed: 2})
	e, err := NewEngine(db, idx, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	queryPts := dataset.UniformVectors(rng, 40, 3)
	const radius = 0.35
	got, err := e.RangeBatch(queryPts, radius)
	if err != nil {
		t.Fatal(err)
	}
	truth := sisap.NewLinearScan(db)
	for i, q := range queryPts {
		want, _ := truth.Range(q, radius)
		if len(got[i]) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("query %d result %d differs", i, j)
			}
		}
	}
}

// TestNewDBRejectsMismatchedMetric: the public boundary probes the metric
// against the points, so e.g. Edit over Vectors is an error at construction
// — not a panic later in a query worker serving a remote request.
func TestNewDBRejectsMismatchedMetric(t *testing.T) {
	if _, err := NewDB(Edit, []Point{Vector{1, 2}}); err == nil {
		t.Error("edit metric over vector points should error")
	}
	if _, err := NewDB(L2, []Point{String("abc")}); err == nil {
		t.Error("L2 metric over string points should error")
	}
	if _, err := NewDB(L2, []Point{Vector{1, 2}}); err != nil {
		t.Errorf("matching metric rejected: %v", err)
	}
}

func TestEngineErrors(t *testing.T) {
	db, rng := testDB(t, 14, 30, 2)
	idx := mustBuild(t, db, Spec{Index: "linear"})
	if _, err := NewEngine(nil, idx, 1); err == nil {
		t.Error("nil database should error")
	}
	if _, err := NewEngine(db, nil, 1); err == nil {
		t.Error("nil index should error")
	}
	e, err := NewEngine(db, idx, 0) // 0 → NumCPU
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() < 1 {
		t.Errorf("Workers() = %d", e.Workers())
	}
	qs := dataset.UniformVectors(rng, 2, 2)
	if _, err := e.KNNBatch(qs, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := e.KNNBatch(qs, 31); err == nil {
		t.Error("k>n should error")
	}
	if _, err := e.RangeBatch(qs, -1); err == nil {
		t.Error("negative radius should error")
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.KNNBatch(qs, 1); err == nil {
		t.Error("batch after Close should error")
	}
}

// TestEngineEmptyBatch: an empty query slice short-circuits — no in-flight
// bookkeeping, no jobs, an empty (non-nil) answer — and still works after
// Close, since there is no work to refuse.
func TestEngineEmptyBatch(t *testing.T) {
	db, _ := testDB(t, 17, 30, 2)
	idx := mustBuild(t, db, Spec{Index: "linear"})
	e, err := NewEngine(db, idx, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, call := range []func() ([][]Result, error){
		func() ([][]Result, error) { return e.KNNBatch(nil, 1) },
		func() ([][]Result, error) { return e.KNNBatch([]Point{}, 1) },
		func() ([][]Result, error) { return e.RangeBatch(nil, 0.2) },
		func() ([][]Result, error) { return e.RangeBatch([]Point{}, 0.2) },
	} {
		out, err := call()
		if err != nil {
			t.Fatal(err)
		}
		if out == nil || len(out) != 0 {
			t.Fatalf("empty batch returned %v, want empty non-nil slice", out)
		}
	}
	if st := e.Stats(); st.Queries != 0 {
		t.Errorf("empty batches recorded %d queries, want 0", st.Queries)
	}
	// Parameter validation still runs ahead of the short-circuit.
	if _, err := e.KNNBatch(nil, 0); err == nil {
		t.Error("k=0 should error even on an empty batch")
	}
	if _, err := e.RangeBatch(nil, -1); err == nil {
		t.Error("negative radius should error even on an empty batch")
	}
	e.Close()
	if out, err := e.KNNBatch(nil, 1); err != nil || len(out) != 0 {
		t.Errorf("empty batch after Close = (%v, %v), want empty answer", out, err)
	}
}

// TestEngineCloseSubmitRace hammers concurrent batch submission against
// Close. Before the in-flight guard, submit could pass its closed check,
// then Close would close the jobs channel while the batch was still
// sending — "send on closed channel". Now every batch either completes or
// reports the engine closed; run under -race this also proves the guard is
// data-race-free.
func TestEngineCloseSubmitRace(t *testing.T) {
	db, rng := testDB(t, 15, 512, 4)
	idx := mustBuild(t, db, Spec{Index: "linear"})
	// One worker and batches much larger than the job buffer (4×workers)
	// keep submitters blocked inside the send loop for milliseconds, which
	// is exactly where the unguarded engine panicked when Close closed the
	// channel under them.
	qs := dataset.UniformVectors(rng, 256, 4)
	for iter := 0; iter < 10; iter++ {
		e, err := NewEngine(db, idx, 1)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 4; j++ {
					if _, err := e.KNNBatch(qs, 2); err != nil {
						return // engine closed under us — the accepted outcome
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Let the batches get in flight, then close over them.
			time.Sleep(time.Duration(iter) * 200 * time.Microsecond)
			e.Close()
		}()
		wg.Wait()
		e.Close()
	}
}

// TestPercentileNearestRank pins the nearest-rank definition (index
// ⌈q·n⌉−1): P50 over four samples is the second, not the third.
func TestPercentileNearestRank(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	four := []time.Duration{ms(10), ms(20), ms(30), ms(40)}
	cases := []struct {
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{four, 0.50, ms(20)}, // ceil(0.5·4)−1 = 1, was index 2 pre-fix
		{four, 0.25, ms(10)},
		{four, 0.75, ms(30)},
		{four, 0.99, ms(40)},
		{four, 1.00, ms(40)},
		{[]time.Duration{ms(5)}, 0.50, ms(5)},
		{[]time.Duration{ms(5)}, 0.99, ms(5)},
		{[]time.Duration{ms(1), ms(2), ms(3)}, 0.50, ms(2)},
		{[]time.Duration{ms(1), ms(2)}, 0.50, ms(1)},
	}
	for _, c := range cases {
		if got := Percentile(c.sorted, c.q); got != c.want {
			t.Errorf("Percentile(%v, %g) = %v, want %v", c.sorted, c.q, got, c.want)
		}
	}
}

// TestEngineLatencyHistogram pushes a large query volume through the
// engine and checks the histogram bookkeeping: every query is counted
// (Count == Queries, bucket sum == Count), quantiles stay ordered, and
// the snapshot merges cleanly with another engine's — the property the
// sharded and mutable aggregations rely on.
func TestEngineLatencyHistogram(t *testing.T) {
	const total = 20000
	db, rng := testDB(t, 16, 16, 2)
	idx := mustBuild(t, db, Spec{Index: "linear"})
	e, err := NewEngine(db, idx, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	qs := dataset.UniformVectors(rng, 1024, 2)
	served := 0
	for served < total {
		batch := qs
		if rest := total - served; rest < len(batch) {
			batch = batch[:rest]
		}
		if _, err := e.KNNBatch(batch, 1); err != nil {
			t.Fatal(err)
		}
		served += len(batch)
	}
	snap := e.LatencySnapshot()
	if snap.Count != total {
		t.Errorf("histogram count = %d, want %d", snap.Count, total)
	}
	var cum uint64
	for _, b := range snap.Buckets {
		cum += b
	}
	if cum != snap.Count {
		t.Errorf("bucket sum %d != count %d", cum, snap.Count)
	}
	if snap.Sum < 0 {
		t.Errorf("negative latency sum %g", snap.Sum)
	}
	st := e.Stats()
	if st.Queries != total {
		t.Errorf("Queries = %d, want %d", st.Queries, total)
	}
	if st.P50 < 0 || st.P99 < st.P50 {
		t.Errorf("implausible percentiles: p50=%v p99=%v", st.P50, st.P99)
	}
	if e.BusyWorkers() != 0 {
		t.Errorf("BusyWorkers = %d after quiesce, want 0", e.BusyWorkers())
	}
	var merged obs.HistogramSnapshot
	merged.Merge(snap)
	merged.Merge(e.LatencySnapshot())
	if merged.Count != 2*total {
		t.Errorf("merged count = %d, want %d", merged.Count, 2*total)
	}
}
