package distperm

import (
	"sync"
	"testing"

	"distperm/internal/dataset"
	"distperm/internal/sisap"
)

// TestEngineMatchesLinearScan is the concurrency acceptance test: a
// 1000-query batch answered by the pooled engine over the
// distance-permutation index (whose Permuter forces per-worker replicas)
// must equal the sequential LinearScan ground truth exactly. Run under
// `go test -race` this also proves the replica scheme keeps workers off
// each other's scratch buffers.
func TestEngineMatchesLinearScan(t *testing.T) {
	const (
		queries = 1000
		k       = 5
	)
	db, rng := testDB(t, 10, 1200, 4)
	queryPts := dataset.UniformVectors(rng, queries, 4)
	truth := sisap.NewLinearScan(db)

	for _, kind := range []string{"distperm", "vptree", "laesa"} {
		idx := mustBuild(t, db, Spec{Index: kind, K: 8, Seed: 11})
		e, err := NewEngine(db, idx, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.KNNBatch(queryPts, k)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i, q := range queryPts {
			want, _ := truth.KNN(q, k)
			if len(got[i]) != len(want) {
				t.Fatalf("%s: query %d: %d results, want %d", kind, i, len(got[i]), len(want))
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("%s: query %d result %d = %+v, want %+v",
						kind, i, j, got[i][j], want[j])
				}
			}
		}
		st := e.Stats()
		if st.Queries != queries {
			t.Errorf("%s: Stats().Queries = %d, want %d", kind, st.Queries, queries)
		}
		if st.DistanceEvals <= 0 || st.MeanEvals <= 0 {
			t.Errorf("%s: no evaluation counts aggregated: %+v", kind, st)
		}
		if st.P50 < 0 || st.P99 < st.P50 {
			t.Errorf("%s: implausible latency percentiles: %+v", kind, st)
		}
		e.Close()
	}
}

// TestEngineConcurrentBatches drives one engine from many client goroutines
// at once — the serving pattern — and checks every batch independently.
func TestEngineConcurrentBatches(t *testing.T) {
	db, rng := testDB(t, 12, 600, 3)
	idx := mustBuild(t, db, Spec{Index: "distperm", K: 6, Seed: 1})
	e, err := NewEngine(db, idx, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	truth := sisap.NewLinearScan(db)

	const clients = 8
	queryPts := dataset.UniformVectors(rng, clients*50, 3)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		qs := queryPts[c*50 : (c+1)*50]
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := e.KNNBatch(qs, 3)
			if err != nil {
				errs <- err
				return
			}
			for i, q := range qs {
				want, _ := truth.KNN(q, 3)
				for j := range want {
					if got[i][j] != want[j] {
						t.Errorf("concurrent batch diverges from ground truth at query %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestEngineRangeBatch(t *testing.T) {
	db, rng := testDB(t, 13, 400, 3)
	idx := mustBuild(t, db, Spec{Index: "vptree", Seed: 2})
	e, err := NewEngine(db, idx, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	queryPts := dataset.UniformVectors(rng, 40, 3)
	const radius = 0.35
	got, err := e.RangeBatch(queryPts, radius)
	if err != nil {
		t.Fatal(err)
	}
	truth := sisap.NewLinearScan(db)
	for i, q := range queryPts {
		want, _ := truth.Range(q, radius)
		if len(got[i]) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("query %d result %d differs", i, j)
			}
		}
	}
}

func TestEngineErrors(t *testing.T) {
	db, rng := testDB(t, 14, 30, 2)
	idx := mustBuild(t, db, Spec{Index: "linear"})
	if _, err := NewEngine(nil, idx, 1); err == nil {
		t.Error("nil database should error")
	}
	if _, err := NewEngine(db, nil, 1); err == nil {
		t.Error("nil index should error")
	}
	e, err := NewEngine(db, idx, 0) // 0 → NumCPU
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() < 1 {
		t.Errorf("Workers() = %d", e.Workers())
	}
	qs := dataset.UniformVectors(rng, 2, 2)
	if _, err := e.KNNBatch(qs, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := e.KNNBatch(qs, 31); err == nil {
		t.Error("k>n should error")
	}
	if _, err := e.RangeBatch(qs, -1); err == nil {
		t.Error("negative radius should error")
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.KNNBatch(qs, 1); err == nil {
		t.Error("batch after Close should error")
	}
}
