package distperm

import (
	"bytes"
	"strings"
	"testing"

	"distperm/internal/dataset"
)

// TestSerializeRoundTripEveryKind writes and reloads every registered index
// kind through the public codec entry points and demands bit-identical
// query behaviour from the reloaded copy.
func TestSerializeRoundTripEveryKind(t *testing.T) {
	db, rng := testDB(t, 20, 250, 3)
	queryPts := dataset.UniformVectors(rng, 20, 3)
	if len(Codecs()) == 0 {
		t.Fatal("no codecs registered")
	}
	for _, kind := range Codecs() {
		if kind == "sharded" || kind == "mutable" {
			// The sharded and mutable containers have no Build-registry kind
			// (one needs a shard count and Partitioner, the other a live
			// write history); their round trips are covered by
			// TestShardedSerializeRoundTrip and the mutable-engine tests.
			continue
		}
		idx := mustBuild(t, db, Spec{Index: kind, K: 5, Seed: 3})

		var buf bytes.Buffer
		n, err := WriteIndex(&buf, idx)
		if err != nil {
			t.Fatalf("%s: write: %v", kind, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("%s: reported %d bytes, wrote %d", kind, n, buf.Len())
		}
		got, err := ReadIndex(&buf, db)
		if err != nil {
			t.Fatalf("%s: read: %v", kind, err)
		}
		if got.Name() != idx.Name() {
			t.Errorf("%s: reloaded as %q", kind, got.Name())
		}
		if got.IndexBits() != idx.IndexBits() {
			t.Errorf("%s: IndexBits %d != %d after round trip",
				kind, got.IndexBits(), idx.IndexBits())
		}
		for i, q := range queryPts {
			a, as := idx.KNN(q, 4)
			b, bs := got.KNN(q, 4)
			if as != bs {
				t.Errorf("%s: query %d stats diverge (%+v vs %+v)", kind, i, as, bs)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%s: query %d kNN result %d differs after round trip", kind, i, j)
				}
			}
			ar, _ := idx.Range(q, 0.3)
			br, _ := got.Range(q, 0.3)
			if len(ar) != len(br) {
				t.Fatalf("%s: query %d range sizes differ", kind, i)
			}
			for j := range ar {
				if ar[j] != br[j] {
					t.Fatalf("%s: query %d range result %d differs", kind, i, j)
				}
			}
		}
	}
}

// TestReadIndexLegacyV1 checks that standalone v1 PermIndex files
// (PermIndex.WriteTo) still load through the v2 entry point.
func TestReadIndexLegacyV1(t *testing.T) {
	db, rng := testDB(t, 21, 120, 3)
	idx := mustBuild(t, db, Spec{Index: "distperm", K: 6, Seed: 4}).(*PermIndex)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf, db)
	if err != nil {
		t.Fatal(err)
	}
	q := dataset.UniformVectors(rng, 1, 3)[0]
	a, _ := idx.KNN(q, 3)
	b, _ := got.KNN(q, 3)
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("legacy v1 file gives different results")
		}
	}
}

func TestReadIndexRejectsCorruption(t *testing.T) {
	db, _ := testDB(t, 22, 60, 2)
	idx := mustBuild(t, db, Spec{Index: "vptree", Seed: 5})
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, idx); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte("NOTANIDX"), raw[8:]...)
	if _, err := ReadIndex(bytes.NewReader(bad), db); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
	// Unsupported container version.
	vbad := append([]byte(nil), raw...)
	vbad[8] = 99
	if _, err := ReadIndex(bytes.NewReader(vbad), db); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: %v", err)
	}
	// Unknown kind.
	kbad := append([]byte(nil), raw...)
	copy(kbad[16:], "qqtree")
	if _, err := ReadIndex(bytes.NewReader(kbad), db); err == nil ||
		!strings.Contains(err.Error(), "codec") {
		t.Errorf("unknown kind: %v", err)
	}
	// Truncated mid-payload.
	if _, err := ReadIndex(bytes.NewReader(raw[:len(raw)/2]), db); err == nil {
		t.Error("truncated file should error")
	}
	// Truncated mid-header.
	if _, err := ReadIndex(bytes.NewReader(raw[:10]), db); err == nil {
		t.Error("truncated header should error")
	}
	// Wrong database.
	other, _ := testDB(t, 23, 10, 2)
	if _, err := ReadIndex(bytes.NewReader(raw), other); err == nil {
		t.Error("database size mismatch should error")
	}
}

// TestWriteIndexOversizedK: an in-memory distperm index may have more than
// 20 sites, but the packed on-disk format cannot hold it — that must
// surface as an error at the public boundary, not a panic.
func TestWriteIndexOversizedK(t *testing.T) {
	db, _ := testDB(t, 24, 60, 2)
	idx := mustBuild(t, db, Spec{Index: "distperm", K: 25, Seed: 6})
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, idx); err == nil ||
		!strings.Contains(err.Error(), "limit 20") {
		t.Errorf("k=25 WriteIndex: %v", err)
	}
	if _, err := idx.(*PermIndex).WriteTo(&buf); err == nil {
		t.Error("k=25 WriteTo should error")
	}
}

// TestWriteIndexUnknownKind exercises the encode-side registry miss.
func TestWriteIndexUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteIndex(&buf, unknownIndex{}); err == nil {
		t.Error("unregistered kind should error")
	}
}

type unknownIndex struct{}

func (unknownIndex) Name() string                               { return "qqtree" }
func (unknownIndex) KNN(q Point, k int) ([]Result, Stats)       { return nil, Stats{} }
func (unknownIndex) Range(q Point, r float64) ([]Result, Stats) { return nil, Stats{} }
func (unknownIndex) IndexBits() int64                           { return 0 }
