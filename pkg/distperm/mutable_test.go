package distperm_test

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"distperm/internal/dataset"
	"distperm/pkg/distperm"
)

// mutModel is the trusted mirror of a MutableEngine's logical point set:
// live (gid, point) pairs in ascending gid order.
type mutModel struct {
	gids []int
	pts  []distperm.Point
}

func newMutModel(pts []distperm.Point) *mutModel {
	m := &mutModel{pts: append([]distperm.Point(nil), pts...)}
	m.gids = make([]int, len(pts))
	for i := range m.gids {
		m.gids[i] = i
	}
	return m
}

func (m *mutModel) insert(gid int, p distperm.Point) {
	m.gids = append(m.gids, gid)
	m.pts = append(m.pts, p)
}

func (m *mutModel) delete(gid int) bool {
	for i, g := range m.gids {
		if g == gid {
			m.gids = append(m.gids[:i], m.gids[i+1:]...)
			m.pts = append(m.pts[:i], m.pts[i+1:]...)
			return true
		}
	}
	return false
}

func (m *mutModel) randomLive(rng *rand.Rand) int { return m.gids[rng.Intn(len(m.gids))] }

// batchBackend is the query surface shared by MutableEngine and a plain
// Engine serving a loaded snapshot.
type batchBackend interface {
	KNNBatch(qs []distperm.Point, k int) ([][]distperm.Result, error)
	RangeBatch(qs []distperm.Point, r float64) ([][]distperm.Result, error)
}

// checkEquivalence compares backend answers against a from-scratch
// LinearScan over the model's logical point set (ordered by gid, so
// tie-breaking agrees), for a handful of probes.
func checkEquivalence(t *testing.T, label string, backend batchBackend, m *mutModel, probes []distperm.Point, k int, radius float64) {
	t.Helper()
	db, err := distperm.NewDB(distperm.L2, m.pts)
	if err != nil {
		t.Fatalf("%s: reference db: %v", label, err)
	}
	ref, err := distperm.Build(db, distperm.Spec{Index: "linear"})
	if err != nil {
		t.Fatal(err)
	}
	if k > len(m.gids) {
		k = len(m.gids)
	}
	gotK, err := backend.KNNBatch(probes, k)
	if err != nil {
		t.Fatalf("%s: KNNBatch: %v", label, err)
	}
	gotR, err := backend.RangeBatch(probes, radius)
	if err != nil {
		t.Fatalf("%s: RangeBatch: %v", label, err)
	}
	for i, q := range probes {
		wantK, _ := ref.KNN(q, k)
		for j := range wantK {
			wantK[j].ID = m.gids[wantK[j].ID]
		}
		if !sameResultSlices(gotK[i], wantK) {
			t.Fatalf("%s: probe %d kNN = %v, want %v", label, i, gotK[i], wantK)
		}
		wantR, _ := ref.Range(q, radius)
		for j := range wantR {
			wantR[j].ID = m.gids[wantR[j].ID]
		}
		if !sameResultSlices(gotR[i], wantR) {
			t.Fatalf("%s: probe %d range = %v, want %v", label, i, gotR[i], wantR)
		}
	}
}

func sameResultSlices(a, b []distperm.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runMutationEquivalence is the shared acceptance loop: random interleaved
// inserts/deletes with an equivalence check against the from-scratch
// rebuild after every step, a forced fold mid-way and at the end, and a
// save/load round trip (the DPERMIDX "mutable" container) checked both
// resumed as a MutableEngine and served read-only by a plain Engine.
func runMutationEquivalence(t *testing.T, cfg distperm.MutableConfig, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	pts := dataset.UniformVectors(rng, 200, 3)
	db, err := distperm.NewDB(distperm.L2, pts)
	if err != nil {
		t.Fatal(err)
	}
	me, err := distperm.NewMutableEngine(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()
	model := newMutModel(pts)
	probes := dataset.UniformVectors(rng, 8, 3)

	for step := 0; step < 120; step++ {
		switch {
		case rng.Intn(10) < 6 || len(model.gids) < 5:
			p := dataset.UniformVectors(rng, 1, 3)[0]
			gid, err := me.Insert(p)
			if err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			model.insert(gid, p)
		default:
			gid := model.randomLive(rng)
			if err := me.Delete(gid); err != nil {
				t.Fatalf("step %d: delete %d: %v", step, gid, err)
			}
			if !model.delete(gid) {
				t.Fatalf("step %d: model had no %d", step, gid)
			}
		}
		if step%10 == 0 {
			checkEquivalence(t, "mid-write", me, model, probes, 5, 0.5)
		}
		if step == 60 {
			if err := me.Rebuild(); err != nil {
				t.Fatalf("mid-way rebuild: %v", err)
			}
			checkEquivalence(t, "post-rebuild", me, model, probes, 5, 0.5)
		}
	}
	checkEquivalence(t, "final", me, model, probes, 5, 0.5)
	if err := me.Rebuild(); err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, "final folded", me, model, probes, 5, 0.5)
	if ms := me.MutationStats(); ms.Rebuilds < 2 || ms.Inserts == 0 || ms.Deletes == 0 || ms.LiveN != len(model.gids) {
		t.Fatalf("implausible mutation stats %+v (model %d live)", ms, len(model.gids))
	}

	// Save, load, and resume: answers must survive the round trip.
	if _, err := me.Insert(probes[0]); err != nil { // leave a pending delta in the snapshot
		t.Fatal(err)
	}
	model.insert(me.MutationStats().NextID-1, probes[0])
	snap, err := me.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := distperm.WriteIndex(&buf, snap); err != nil {
		t.Fatal(err)
	}
	back, err := distperm.ReadIndex(bytes.NewReader(buf.Bytes()), snap.DB())
	if err != nil {
		t.Fatal(err)
	}
	mi, ok := back.(*distperm.MutableIndex)
	if !ok {
		t.Fatalf("loaded %T, want *MutableIndex", back)
	}
	resumed, err := distperm.NewMutableEngineFrom(mi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	checkEquivalence(t, "resumed", resumed, model, probes, 5, 0.5)
	// Mutation continues where the store left off: fresh IDs, no clashes.
	p := dataset.UniformVectors(rng, 1, 3)[0]
	gid, err := resumed.Insert(p)
	if err != nil {
		t.Fatal(err)
	}
	if gid != snap.NextGID() {
		t.Fatalf("resumed insert took id %d, want %d", gid, snap.NextGID())
	}
	model.insert(gid, p)
	checkEquivalence(t, "resumed+write", resumed, model, probes, 5, 0.5)
	model.delete(gid)

	// The same container serves read-only through a plain Engine.
	ro, err := distperm.NewEngine(mi.DB(), mi, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	checkEquivalence(t, "read-only", ro, model, probes, 5, 0.5)
}

// TestMutableEngineEquivalence: interleaved writes and queries on an
// unsharded MutableEngine always answer like a from-scratch rebuild.
func TestMutableEngineEquivalence(t *testing.T) {
	runMutationEquivalence(t, distperm.MutableConfig{
		Spec:    distperm.Spec{Index: "distperm", K: 6, Seed: 31},
		Workers: 2,
	}, 31)
}

// TestMutableShardedEquivalence: the same bar with writes routed through
// the Partitioner seam into a sharded scatter-gather base.
func TestMutableShardedEquivalence(t *testing.T) {
	runMutationEquivalence(t, distperm.MutableConfig{
		Spec:        distperm.Spec{Index: "distperm", K: 6, Seed: 33},
		Workers:     2,
		Shards:      3,
		Partitioner: distperm.RoundRobin{},
	}, 33)
	me, err := distperm.NewMutableEngine(mustDB(t, 34, 60), distperm.MutableConfig{
		Spec: distperm.Spec{Index: "vptree", Seed: 34}, Shards: 2, Partitioner: distperm.HashPoint{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()
	if _, err := me.Insert(distperm.Vector{0.1, 0.2, 0.3}); err != nil {
		t.Fatal(err)
	}
	ms := me.MutationStats()
	if len(ms.DeltaPerShard) != 2 || ms.DeltaPerShard[0]+ms.DeltaPerShard[1] != 1 {
		t.Fatalf("partitioner routing not visible: %+v", ms)
	}
}

func mustDB(t *testing.T, seed int64, n int) *distperm.DB {
	t.Helper()
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rand.New(rand.NewSource(seed)), n, 3))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestMutableEngineConcurrent hammers a low-threshold MutableEngine with
// concurrent writers and readers, so background rebuild swaps happen under
// live traffic. Under -race this proves the RCU discipline: readers pin a
// snapshot, swapped-out engines drain before closing, and no answer is
// torn (well-formed, sorted, live-only). After the storm quiesces, answers
// must equal the from-scratch rebuild.
func TestMutableEngineConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	pts := dataset.UniformVectors(rng, 300, 3)
	db, err := distperm.NewDB(distperm.L2, pts)
	if err != nil {
		t.Fatal(err)
	}
	me, err := distperm.NewMutableEngine(db, distperm.MutableConfig{
		Spec:             distperm.Spec{Index: "distperm", K: 6, Seed: 51},
		Workers:          2,
		RebuildThreshold: 24, // low: many swaps during the storm
	})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()

	var mu sync.Mutex // guards model + rng
	model := newMutModel(pts)
	probes := dataset.UniformVectors(rng, 16, 3)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				mu.Lock()
				if rng.Intn(3) > 0 || len(model.gids) < 10 {
					p := dataset.UniformVectors(rng, 1, 3)[0]
					mu.Unlock()
					gid, err := me.Insert(p)
					if err != nil {
						t.Errorf("writer %d: insert: %v", w, err)
						return
					}
					mu.Lock()
					model.insert(gid, p)
					mu.Unlock()
				} else {
					gid := model.randomLive(rng)
					if !model.delete(gid) {
						mu.Unlock()
						t.Errorf("writer %d: model had no %d", w, gid)
						return
					}
					mu.Unlock()
					if err := me.Delete(gid); err != nil {
						t.Errorf("writer %d: delete %d: %v", w, gid, err)
						return
					}
				}
			}
		}(w)
	}
	readerStop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-readerStop:
					return
				default:
				}
				outs, err := me.KNNBatch(probes, 3)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				for _, rs := range outs {
					for j := 1; j < len(rs); j++ {
						a, b := rs[j-1], rs[j]
						if a.Distance > b.Distance || (a.Distance == b.Distance && a.ID >= b.ID) {
							t.Errorf("torn answer: %v", rs)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(readerStop)
	readers.Wait()

	if ms := me.MutationStats(); ms.Rebuilds == 0 {
		t.Fatalf("no background rebuild happened under load: %+v", ms)
	}
	checkEquivalence(t, "quiesced", me, model, probes, 5, 0.4)
	if err := me.Rebuild(); err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, "quiesced+folded", me, model, probes, 5, 0.4)
}

// TestMutableEngineRebuildRace hammers manual Rebuild calls against the
// background rebuilder while writers insert — rebuilds must serialise, or
// a stale-snapshot swap silently drops acknowledged inserts (every id the
// writers collected must still be answerable afterwards).
func TestMutableEngineRebuildRace(t *testing.T) {
	db := mustDB(t, 81, 100)
	me, err := distperm.NewMutableEngine(db, distperm.MutableConfig{
		Spec:             distperm.Spec{Index: "distperm", K: 5, Seed: 81},
		Workers:          2,
		RebuildThreshold: 8, // constant background folding
	})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()

	var mu sync.Mutex
	var inserted []int
	var writers, rebuilders sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(81 + w)))
			for i := 0; i < 100; i++ {
				gid, err := me.Insert(dataset.UniformVectors(rng, 1, 3)[0])
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				mu.Lock()
				inserted = append(inserted, gid)
				mu.Unlock()
			}
		}(w)
	}
	rebuilders.Add(1)
	go func() {
		defer rebuilders.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := me.Rebuild(); err != nil {
				t.Errorf("manual rebuild: %v", err)
				return
			}
		}
	}()
	writers.Wait()
	close(stop)
	rebuilders.Wait()

	// Every acknowledged insert must still be deletable — i.e. present in
	// the logical point set despite the rebuild storm.
	if got := me.LiveN(); got != 100+len(inserted) {
		t.Fatalf("LiveN = %d, want %d: inserts lost across racing rebuilds", got, 100+len(inserted))
	}
	for _, gid := range inserted {
		if err := me.Delete(gid); err != nil {
			t.Fatalf("insert %d vanished: %v", gid, err)
		}
	}
}

// TestMutableEngineCloseUnderTraffic: Close racing query batches must
// never panic (the acquire/Close WaitGroup barrier) — queries either
// answer or report the closed engine.
func TestMutableEngineCloseUnderTraffic(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		db := mustDB(t, int64(90+iter), 80)
		me, err := distperm.NewMutableEngine(db, distperm.MutableConfig{
			Spec: distperm.Spec{Index: "linear", Seed: int64(iter)}, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		probe := []distperm.Point{distperm.Vector{0.5, 0.5, 0.5}}
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if _, err := me.KNNBatch(probe, 2); err != nil {
						return // closed — accepted
					}
				}
			}()
		}
		me.Close()
		wg.Wait()
	}
}

// TestMutableEngineErrors: the write path's failure modes are errors with
// matchable sentinels, never panics.
func TestMutableEngineErrors(t *testing.T) {
	db := mustDB(t, 61, 50)
	me, err := distperm.NewMutableEngine(db, distperm.MutableConfig{
		Spec: distperm.Spec{Index: "distperm", K: 4, Seed: 61},
	})
	if err != nil {
		t.Fatal(err)
	}
	probe := []distperm.Point{distperm.Vector{0.5, 0.5, 0.5}}

	if _, err := me.KNNBatch(probe, 0); !errors.Is(err, distperm.ErrOutOfRange) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := me.KNNBatch(probe, 51); !errors.Is(err, distperm.ErrOutOfRange) {
		t.Errorf("k>live: %v", err)
	}
	if _, err := me.RangeBatch(probe, -1); !errors.Is(err, distperm.ErrOutOfRange) {
		t.Errorf("negative radius: %v", err)
	}
	if err := me.Delete(999); !errors.Is(err, distperm.ErrUnknownID) {
		t.Errorf("unknown id: %v", err)
	}
	if err := me.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := me.Delete(7); !errors.Is(err, distperm.ErrUnknownID) {
		t.Errorf("double delete: %v", err)
	}
	gid, err := me.Insert(distperm.Vector{0.1, 0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := me.Delete(gid); err != nil {
		t.Fatalf("delete of delta point: %v", err)
	}
	if err := me.Delete(gid); !errors.Is(err, distperm.ErrUnknownID) {
		t.Errorf("deleted delta point: %v", err)
	}
	if _, err := me.Insert(distperm.Vector{0.1, 0.2}); err == nil {
		t.Error("wrong dimension should not insert")
	}
	if _, err := me.Insert(distperm.String("word")); err == nil {
		t.Error("wrong point type should not insert")
	}
	// The k bound tracks the logical size, not the physical one.
	if _, err := me.KNNBatch(probe, 49); err != nil {
		t.Errorf("k=liveN: %v", err)
	}
	if _, err := me.KNNBatch(probe, 50); !errors.Is(err, distperm.ErrOutOfRange) {
		t.Errorf("k=liveN+1: %v", err)
	}
	if outs, err := me.KNNBatch(nil, 3); err != nil || len(outs) != 0 {
		t.Errorf("empty batch: %v, %v", outs, err)
	}

	me.Close()
	me.Close() // idempotent
	if _, err := me.Insert(distperm.Vector{0.1, 0.1, 0.1}); err == nil {
		t.Error("insert after Close should fail")
	}
	if err := me.Delete(1); err == nil {
		t.Error("delete after Close should fail")
	}
	if _, err := me.KNNBatch(probe, 1); err == nil {
		t.Error("query after Close should fail")
	}
	if err := me.Rebuild(); err == nil {
		t.Error("rebuild after Close should fail")
	}

	// Config validation.
	if _, err := distperm.NewMutableEngine(db, distperm.MutableConfig{
		Spec: distperm.Spec{Index: "distperm"}, Shards: 3,
	}); err == nil {
		t.Error("shards without partitioner should fail")
	}
	if _, err := distperm.NewMutableEngine(db, distperm.MutableConfig{
		Spec: distperm.Spec{Index: "bogus"},
	}); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, err := distperm.NewMutableEngine(nil, distperm.MutableConfig{}); err == nil {
		t.Error("nil db should fail")
	}
}

// TestWrapMutable: any already-built index — including a sharded container —
// gains the write path, with rebuilds defaulting to the wrapped kind.
func TestWrapMutable(t *testing.T) {
	db := mustDB(t, 71, 90)
	sx, err := distperm.BuildSharded(db, distperm.Spec{Index: "vptree", Seed: 71}, 3, distperm.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	me, err := distperm.WrapMutable(db, sx, distperm.MutableConfig{
		Shards: 3, Partitioner: distperm.RoundRobin{}, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()
	if me.BaseKind() != "sharded" || me.Shards() != 3 {
		t.Fatalf("wrapped kind %s, %d shards", me.BaseKind(), me.Shards())
	}
	gid, err := me.Insert(distperm.Vector{2, 2, 2}) // far corner: nearest to itself
	if err != nil {
		t.Fatal(err)
	}
	outs, err := me.KNNBatch([]distperm.Point{distperm.Vector{2, 2, 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs[0]) != 1 || outs[0][0].ID != gid || outs[0][0].Distance != 0 {
		t.Fatalf("read-your-write failed: %v (want id %d)", outs[0], gid)
	}
	if err := me.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if me.BaseKind() != "sharded" || me.LiveN() != 91 {
		t.Fatalf("after fold: kind %s liveN %d", me.BaseKind(), me.LiveN())
	}
	outs, err = me.KNNBatch([]distperm.Point{distperm.Vector{2, 2, 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs[0]) != 1 || outs[0][0].ID != gid {
		t.Fatalf("id %d not stable across fold: %v", gid, outs[0])
	}
}

// TestMutableRebuildKeepsTableEncoding: the background fold rebuilds the
// distperm base with NewPermIndex, so over clustered data (the paper's
// distinct ≪ n regime) the folded base must carry a small
// distinct-permutation table, answers must stay equivalent to a
// from-scratch rebuild, and the table encoding must survive the snapshot
// container round trip.
func TestMutableRebuildKeepsTableEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	pts := dataset.ClusteredVectors(rng, 1_000, 3, 8, 0.03)
	db, err := distperm.NewDB(distperm.L2, pts)
	if err != nil {
		t.Fatal(err)
	}
	me, err := distperm.NewMutableEngine(db, distperm.MutableConfig{
		Spec: distperm.Spec{Index: "distperm", K: 6, Seed: 55}, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer me.Close()
	model := newMutModel(pts)
	for _, p := range dataset.ClusteredVectors(rng, 64, 3, 8, 0.03) {
		gid, err := me.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		model.insert(gid, p)
	}
	if err := me.Rebuild(); err != nil {
		t.Fatal(err)
	}
	probes := dataset.UniformVectors(rng, 6, 3)
	checkEquivalence(t, "post-fold", me, model, probes, 4, 0.5)

	snap, err := me.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	base, ok := snap.Base().(*distperm.PermIndex)
	if !ok {
		t.Fatalf("folded base is %T, want *PermIndex", snap.Base())
	}
	if d := base.DistinctPermutations(); d >= snap.BaseN()/4 {
		t.Fatalf("clustered rebuild realised %d distinct permutations of %d base points; not the distinct ≪ n regime", d, snap.BaseN())
	}
	var buf bytes.Buffer
	if _, err := distperm.WriteIndex(&buf, snap); err != nil {
		t.Fatal(err)
	}
	back, err := distperm.ReadIndex(bytes.NewReader(buf.Bytes()), snap.DB())
	if err != nil {
		t.Fatal(err)
	}
	lbase := back.(*distperm.MutableIndex).Base().(*distperm.PermIndex)
	if lbase.DistinctPermutations() != base.DistinctPermutations() {
		t.Fatalf("distinct %d != %d after snapshot round trip",
			lbase.DistinctPermutations(), base.DistinctPermutations())
	}
}
