package dpserver

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"distperm/pkg/distperm"
)

// mockBackend answers each query with its own encoded identity (ID = the
// query vector's first coordinate) and records every batch it receives, so
// tests can assert both correctness (every caller got its own answer back)
// and batching behaviour (how the calls were grouped).
type mockBackend struct {
	mu      sync.Mutex
	batches []batchRecord
	err     error
}

type batchRecord struct {
	op   byte
	k    int
	r    float64
	size int
}

func (m *mockBackend) answer(qs []distperm.Point, op byte, k int, r float64) ([][]distperm.Result, error) {
	m.mu.Lock()
	m.batches = append(m.batches, batchRecord{op: op, k: k, r: r, size: len(qs)})
	err := m.err
	m.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make([][]distperm.Result, len(qs))
	for i, q := range qs {
		out[i] = []distperm.Result{{ID: int(q.(distperm.Vector)[0]), Distance: float64(k) + r}}
	}
	return out, nil
}

func (m *mockBackend) KNNBatch(qs []distperm.Point, k int) ([][]distperm.Result, error) {
	return m.answer(qs, 'k', k, 0)
}

func (m *mockBackend) RangeBatch(qs []distperm.Point, r float64) ([][]distperm.Result, error) {
	return m.answer(qs, 'r', 0, r)
}

func (m *mockBackend) Stats() distperm.EngineStats { return distperm.EngineStats{} }
func (m *mockBackend) Workers() int                { return 1 }
func (m *mockBackend) Close()                      {}

func (m *mockBackend) records() []batchRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]batchRecord(nil), m.batches...)
}

// fireKNN runs n concurrent KNN calls with distinct identity queries and
// checks every caller got its own answer.
func fireKNN(t *testing.T, co *Coalescer, n, k int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := co.KNN(distperm.Vector{float64(i)}, k)
			if err != nil {
				errs <- err
				return
			}
			if len(rs) != 1 || rs[0].ID != i {
				errs <- fmt.Errorf("query %d got %v", i, rs)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCoalescerFill: with a long wait window, flushes happen on fill only,
// so 64 concurrent queries at max=16 reach the backend as exactly 4
// batches of 16 — and every caller still gets its own answer.
func TestCoalescerFill(t *testing.T) {
	m := &mockBackend{}
	co := NewCoalescer(m, 16, time.Minute)
	defer co.Close()
	fireKNN(t, co, 64, 3)
	recs := m.records()
	if len(recs) != 4 {
		t.Fatalf("backend saw %d batches, want 4: %+v", len(recs), recs)
	}
	for _, rec := range recs {
		if rec.size != 16 || rec.k != 3 || rec.op != 'k' {
			t.Errorf("bad batch %+v", rec)
		}
	}
	if batches, queries := co.Counters(); batches != 4 || queries != 64 {
		t.Errorf("Counters() = (%d, %d), want (4, 64)", batches, queries)
	}
}

// TestCoalescerWindow: a partial batch flushes when the wait window
// elapses, not never.
func TestCoalescerWindow(t *testing.T) {
	m := &mockBackend{}
	co := NewCoalescer(m, 1024, 2*time.Millisecond)
	defer co.Close()
	start := time.Now()
	fireKNN(t, co, 3, 2)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("window flush took %v", elapsed)
	}
	total := 0
	for _, rec := range m.records() {
		total += rec.size
	}
	if total != 3 {
		t.Errorf("backend saw %d queries, want 3", total)
	}
}

// TestCoalescerKeysDoNotMix: kNN calls with different k, and range calls,
// never share an engine batch.
func TestCoalescerKeysDoNotMix(t *testing.T) {
	m := &mockBackend{}
	co := NewCoalescer(m, 8, time.Millisecond)
	defer co.Close()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				rs, err := co.KNN(distperm.Vector{float64(i)}, 1)
				if err != nil || rs[0].Distance != 1 {
					t.Errorf("k=1 call: %v %v", rs, err)
				}
			case 1:
				rs, err := co.KNN(distperm.Vector{float64(i)}, 5)
				if err != nil || rs[0].Distance != 5 {
					t.Errorf("k=5 call: %v %v", rs, err)
				}
			case 2:
				rs, err := co.Range(distperm.Vector{float64(i)}, 0.25)
				if err != nil || rs[0].Distance != 0.25 {
					t.Errorf("range call: %v %v", rs, err)
				}
			}
		}(i)
	}
	wg.Wait()
	for _, rec := range m.records() {
		if rec.op == 'k' && rec.k != 1 && rec.k != 5 {
			t.Errorf("mixed-parameter batch %+v", rec)
		}
		if rec.op == 'r' && rec.r != 0.25 {
			t.Errorf("mixed-parameter batch %+v", rec)
		}
	}
}

// TestCoalescerNoWindow: max=1 (and wait=0) degrade to per-call submission
// without deadlocking — the zero Config must serve.
func TestCoalescerNoWindow(t *testing.T) {
	for _, co := range []*Coalescer{
		NewCoalescer(&mockBackend{}, 1, time.Minute),
		NewCoalescer(&mockBackend{}, 8, 0),
		NewCoalescer(&mockBackend{}, 0, -time.Second),
	} {
		fireKNN(t, co, 4, 1)
		if _, queries := co.Counters(); queries != 4 {
			t.Errorf("queries = %d, want 4", queries)
		}
		co.Close()
	}
}

// TestCoalescerClose: waiters blocked in an un-full batch are flushed
// through the backend by Close — real answers, no hang — and calls after
// Close fail with ErrCoalescerClosed.
func TestCoalescerClose(t *testing.T) {
	m := &mockBackend{}
	co := NewCoalescer(m, 1024, time.Minute)
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := co.KNN(distperm.Vector{float64(i)}, 2)
			if err != nil {
				t.Errorf("query %d during Close: %v", i, err)
				return
			}
			if rs[0].ID != i {
				t.Errorf("query %d got %v", i, rs)
			}
		}(i)
	}
	// Give the five goroutines time to enqueue, then close over them.
	time.Sleep(10 * time.Millisecond)
	co.Close()
	wg.Wait()
	co.Close() // idempotent
	if _, err := co.KNN(distperm.Vector{0}, 1); err != ErrCoalescerClosed {
		t.Errorf("KNN after Close = %v, want ErrCoalescerClosed", err)
	}
}

// TestCoalescerNaNRadius: a NaN radius must flush like any other — the
// batch key holds the radius's bit pattern, because a NaN-valued float key
// would never equal itself in the pending map and its waiters would hang
// past the flush window forever.
func TestCoalescerNaNRadius(t *testing.T) {
	m := &mockBackend{}
	co := NewCoalescer(m, 64, time.Millisecond)
	defer co.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := co.Range(distperm.Vector{1}, math.NaN()); err != nil {
			t.Errorf("NaN-radius query: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("NaN-radius query hung past the flush window")
	}
	recs := m.records()
	if len(recs) != 1 || !math.IsNaN(recs[0].r) {
		t.Errorf("backend saw %+v, want one NaN-radius batch", recs)
	}
}

// TestCoalescerBackendError: a failing backend fails every waiter in the
// batch with the backend's error.
func TestCoalescerBackendError(t *testing.T) {
	m := &mockBackend{err: fmt.Errorf("backend down")}
	co := NewCoalescer(m, 4, time.Millisecond)
	defer co.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := co.KNN(distperm.Vector{1}, 2); err == nil {
				t.Error("backend error not surfaced")
			}
		}()
	}
	wg.Wait()
}
