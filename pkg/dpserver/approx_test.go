package dpserver_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distperm/internal/dataset"
	"distperm/pkg/distperm"
	"distperm/pkg/dpserver"
	"distperm/pkg/dpserver/client"
)

// TestServerApprox drives the approximate kNN path over the wire: full
// coverage must be byte-identical to the exact engine answer (flagged
// exact), a one-bucket probe must carry real probe accounting, and the
// served traffic must show up in /v1/stats and /metrics.
func TestServerApprox(t *testing.T) {
	_, ts, truth, queries := testServer(t, 91, 700, 3,
		dpserver.Config{BatchMax: 4, BatchWait: time.Millisecond, CacheSize: 16})
	c := client.New(ts.URL)
	qs := queries[:24]
	const k = 4

	want, err := truth.KNNBatch(qs, k)
	if err != nil {
		t.Fatal(err)
	}
	nb := truth.ApproxBuckets()
	if nb <= 1 {
		t.Fatalf("ApproxBuckets() = %d, need a real directory", nb)
	}

	// Full coverage: byte-identical to exact, and says so.
	got, aw, err := c.KNNApprox(context.Background(), qs[0], k, nb)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, want[0]) {
		t.Errorf("full-coverage approx: %v != exact %v", got, want[0])
	}
	if aw == nil || !aw.Exact || aw.TotalBuckets != nb {
		t.Errorf("full-coverage wire stats %+v, want exact over %d buckets", aw, nb)
	}

	// Batched partial probe: valid accounting, results from the database.
	gotB, awB, err := c.KNNApproxBatch(context.Background(), qs, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotB) != len(qs) {
		t.Fatalf("%d batches for %d queries", len(gotB), len(qs))
	}
	if awB == nil || awB.ProbedBuckets < len(qs) || awB.Candidates <= 0 {
		t.Errorf("partial-probe wire stats %+v, want probes and candidates", awB)
	}
	if awB.CandidateFraction <= 0 || awB.CandidateFraction > 1 {
		t.Errorf("candidate fraction %g out of (0, 1]", awB.CandidateFraction)
	}

	// The engine counters and the distinct-row gauge surface the traffic.
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Engine.ApproxQueries != int64(1+len(qs)) {
		t.Errorf("ApproxQueries = %d, want %d", st.Engine.ApproxQueries, 1+len(qs))
	}
	if st.Engine.ProbedBuckets == 0 || st.Engine.ApproxCandidates == 0 {
		t.Errorf("approx counters not surfaced: %+v", st.Engine)
	}
	if st.Engine.DistinctRows <= 0 {
		t.Errorf("DistinctRows = %d, want > 0", st.Engine.DistinctRows)
	}
	fams, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"distperm_approx_queries_total",
		"distperm_approx_probed_buckets_total",
		"distperm_approx_candidates_total",
	} {
		f, ok := fams[name]
		if !ok || len(f.Samples) == 0 || f.Samples[0].Value <= 0 {
			t.Errorf("metric %s missing or zero after approx traffic", name)
		}
	}
}

// TestServerApproxBypassesCache: an approximate answer must never be served
// from (or stored into) the exact result cache — the same query at the same
// k with different nprobe would otherwise alias.
func TestServerApproxBypassesCache(t *testing.T) {
	_, ts, _, queries := testServer(t, 92, 500, 3,
		dpserver.Config{BatchMax: 4, BatchWait: time.Millisecond, CacheSize: 64})
	c := client.New(ts.URL)
	q := queries[0]
	const k = 3
	if _, err := c.KNN(context.Background(), q, k); err != nil {
		t.Fatal(err)
	}
	before, _ := c.Stats(context.Background())
	for i := 0; i < 4; i++ {
		if _, _, err := c.KNNApprox(context.Background(), q, k, 1); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := c.Stats(context.Background())
	if after.Server.CacheHits != before.Server.CacheHits {
		t.Errorf("approx requests hit the exact cache: %d -> %d hits",
			before.Server.CacheHits, after.Server.CacheHits)
	}
	if got := after.Engine.ApproxQueries - before.Engine.ApproxQueries; got != 4 {
		t.Errorf("ApproxQueries advanced by %d, want 4 (every request served by the engine)", got)
	}
}

// TestServerApproxUnsupported: a backend without the approximate surface
// answers approx requests 400, not 500 — a client knob problem, not a
// server failure.
func TestServerApproxUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, 300, 3))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := distperm.Build(db, distperm.Spec{Index: "vptree", Seed: 93})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dpserver.NewFromIndex(db, idx, 2, dpserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c := client.New(ts.URL)
	_, _, err = c.KNNApprox(context.Background(), dataset.UniformVectors(rng, 1, 3)[0], 2, 1)
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("approx against a vptree backend: err = %v, want HTTP 400", err)
	}
}

// TestRunLoadApprox: the load driver's -approx mode reports the candidate
// fraction and labels the endpoints it used.
func TestRunLoadApprox(t *testing.T) {
	_, ts, _, queries := testServer(t, 94, 400, 3,
		dpserver.Config{BatchMax: 4, BatchWait: time.Millisecond})
	report, err := client.RunLoad(context.Background(), client.LoadConfig{
		Target:       ts.URL,
		Queries:      queries,
		K:            3,
		Concurrency:  2,
		Duration:     200 * time.Millisecond,
		ApproxNProbe: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("load run had %d errors", report.Errors)
	}
	if report.ApproxRequests != report.Requests || report.ApproxRequests == 0 {
		t.Errorf("ApproxRequests = %d of %d requests, want all", report.ApproxRequests, report.Requests)
	}
	if report.MeanCandidateFraction <= 0 || report.MeanCandidateFraction > 1 {
		t.Errorf("MeanCandidateFraction = %g out of (0, 1]", report.MeanCandidateFraction)
	}
	if _, ok := report.PerEndpoint["knn"]; !ok {
		t.Errorf("per-endpoint summary %v missing \"knn\"", report.PerEndpoint)
	}
	// ApproxNProbe without kNN queries is a misconfigured load.
	if _, err := client.RunLoad(context.Background(), client.LoadConfig{
		Target: ts.URL, Queries: queries, Radius: 0.2, ApproxNProbe: 2,
	}); err == nil {
		t.Error("range-query load with ApproxNProbe accepted, want error")
	}
}
