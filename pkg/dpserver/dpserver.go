// Package dpserver is the network serving subsystem over the distperm
// query-engine layer: it exposes an Engine or ShardedEngine as a JSON HTTP
// service, the step that takes the index family from in-process batches to
// multi-user traffic.
//
// Endpoints:
//
//	POST /v1/knn    kNN queries, single ({"query": ..., "k": 3}) or batched
//	                ({"queries": [...], "k": 3})
//	POST /v1/range  range queries, single or batched, radius in "r"
//	POST /v1/insert add points ({"point": ...} or {"points": [...]});
//	                answers carry the stable global IDs granted
//	POST /v1/delete remove points by global ID ({"id": 4} or {"ids": [...]})
//	GET  /v1/stats  engine counters (queries, distance evaluations, latency
//	                percentiles) plus server counters (coalescer fill,
//	                cache hits/misses) and, on mutable servers, the write
//	                path (delta size, tombstones, rebuilds)
//	GET  /v1/index  what is being served (kind, bits, shards, workers)
//	GET  /healthz   liveness (200 whenever the process can answer HTTP)
//	GET  /readyz    readiness (the Gate answers 503 until the index loads)
//	GET  /metrics   Prometheus text exposition (see the Observability
//	                section of the README for the metric inventory)
//
// The write endpoints are live when the backend is a MutableBackend
// (distperm.MutableEngine); a read-only server answers them 409. A write
// returns only after the mutation is visible to every subsequent query
// (read-your-writes) and after the result cache is invalidated — the cache
// is generation-stamped, so a query racing the mutation cannot re-poison
// it with a pre-mutation answer.
//
// Two layers sit between a single-query request and the engine. A bounded
// LRU result cache answers repeated queries without any engine work. Below
// it, a dynamic micro-batching Coalescer gathers concurrent single queries
// into engine batches (up to Config.BatchMax queries or Config.BatchWait,
// whichever comes first), amortising the per-batch submission cost exactly
// where the worker-pool design pays off; answers are identical to direct
// one-query engine batches. Batched requests bypass both and reach the
// engine as submitted.
//
// Serve runs the server with graceful shutdown: in-flight requests drain,
// pending coalescer batches flush, and only then does the engine close.
// Command distpermd is the daemon around this package, and
// pkg/dpserver/client is the matching Go client with a load-generation
// driver.
package dpserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distperm/pkg/distperm"
	"distperm/pkg/obs"
)

// Config tunes the serving layers. The zero value serves correctly:
// BatchMax ≤ 1 or BatchWait ≤ 0 degrade the coalescer to per-request
// submission, CacheSize ≤ 0 disables the result cache.
type Config struct {
	// BatchMax is the coalescer's flush size: a pending batch is submitted
	// as soon as it holds this many queries.
	BatchMax int
	// BatchWait is the coalescer's flush window: a pending batch is
	// submitted this long after it opened even if not full, bounding the
	// latency cost of batching.
	BatchWait time.Duration
	// CacheSize bounds the LRU result cache in entries.
	CacheSize int
	// Registry receives the server's metric families (exported on
	// GET /metrics). nil gives the server a private registry, so multiple
	// servers in one process never collide on registration.
	Registry *obs.Registry
	// SlowQuery is the slow-query threshold: single queries slower than
	// this are logged as one-line JSON records. ≤ 0 disables the log.
	SlowQuery time.Duration
	// SlowQueryLog receives the slow-query records; nil means os.Stderr.
	SlowQueryLog io.Writer
}

// Server is the HTTP serving layer over one Backend. Create with New or
// NewFromIndex, serve with Serve (or mount it as an http.Handler and call
// Close yourself).
type Server struct {
	backend Backend
	// mutable is backend's write surface when it has one (the type
	// assertion happens once, in New); nil means read-only serving.
	mutable MutableBackend
	// approx is backend's approximate-search surface when it has one; nil
	// means approx requests answer 400.
	approx ApproxBackend
	info   IndexInfo
	co     *Coalescer
	cache  *Cache
	mux    *http.ServeMux
	// proto is a representative database point; incoming queries are
	// validated against its shape so a malformed request is a 400, not a
	// metric panic in a worker. nil skips validation (New without a DB).
	proto distperm.Point

	metrics *serverMetrics
	slow    *slowLogger
	// ridPrefix + ridSeq mint request IDs for requests that arrive without
	// an X-Request-ID; the prefix keeps IDs unique across server restarts.
	ridPrefix string
	ridSeq    atomic.Uint64

	mu sync.Mutex
	ServerCounters
}

// ridKey carries the request ID through the handler's context.
type ridKey struct{}

// requestID returns the ID ServeHTTP assigned to this request.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(ridKey{}).(string)
	return id
}

// New wraps backend, described by info, in a Server with cfg's coalescer
// and cache.
func New(backend Backend, info IndexInfo, cfg Config) (*Server, error) {
	if backend == nil {
		return nil, fmt.Errorf("dpserver: New requires a backend")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		backend:   backend,
		info:      info,
		co:        NewCoalescer(backend, cfg.BatchMax, cfg.BatchWait),
		cache:     NewCache(cfg.CacheSize),
		mux:       http.NewServeMux(),
		ridPrefix: fmt.Sprintf("%x", time.Now().UnixNano()),
	}
	s.mutable, _ = backend.(MutableBackend)
	if s.mutable != nil {
		s.info.Mutable = true
	}
	s.approx, _ = backend.(ApproxBackend)
	s.metrics = newServerMetrics(reg, backend, s.mutable, s.cache)
	s.co.OnFlush = func(size int, reason string) {
		s.metrics.batchSize.Observe(float64(size))
		s.metrics.flush(reason).Inc()
	}
	slowOut := cfg.SlowQueryLog
	if slowOut == nil {
		slowOut = os.Stderr
	}
	s.slow = newSlowLogger(cfg.SlowQuery, slowOut, s.metrics.slowQueries)
	s.mux.HandleFunc("POST /v1/knn", s.handleKNN)
	s.mux.HandleFunc("POST /v1/range", s.handleRange)
	s.mux.HandleFunc("POST /v1/insert", s.handleInsert)
	s.mux.HandleFunc("POST /v1/delete", s.handleDelete)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/index", s.handleIndex)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.Handle("GET /metrics", reg)
	return s, nil
}

// Registry returns the registry the server's metric families live on, for
// mounting /metrics on an ops listener alongside the serving port.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// NewFromIndex starts the right engine for idx — a ShardedEngine with
// workers per shard for a sharded index, a single Engine otherwise — and
// wraps it in a Server. The Server owns the engine: Close (or Serve's
// shutdown path) closes it.
func NewFromIndex(db *distperm.DB, idx distperm.Index, workers int, cfg Config) (*Server, error) {
	if db == nil || idx == nil {
		return nil, fmt.Errorf("dpserver: NewFromIndex requires a database and an index")
	}
	info := IndexInfo{
		Kind:   idx.Name(),
		Bits:   idx.IndexBits(),
		N:      db.N(),
		Metric: db.Metric.Name(),
		Shards: 1,
	}
	var backend Backend
	if sx, ok := idx.(*distperm.ShardedIndex); ok {
		se, err := distperm.NewShardedEngine(sx, workers)
		if err != nil {
			return nil, err
		}
		info.Shards = se.Shards()
		backend = se
	} else {
		e, err := distperm.NewEngine(db, idx, workers)
		if err != nil {
			return nil, err
		}
		backend = e
	}
	info.Workers = backend.Workers()
	s, err := New(backend, info, cfg)
	if err != nil {
		return nil, err
	}
	s.proto = db.Points[0]
	return s, nil
}

// NewFromMutable wraps a live-mutation engine in a Server: the query
// endpoints serve through the cache and coalescer as usual, and the write
// endpoints mutate the store. The Server owns the engine: Close (or
// Serve's shutdown path) closes it. IndexInfo.N reports the live count at
// wrap time; /v1/stats tracks it as it moves.
func NewFromMutable(me *distperm.MutableEngine, cfg Config) (*Server, error) {
	if me == nil {
		return nil, fmt.Errorf("dpserver: NewFromMutable requires an engine")
	}
	info := IndexInfo{
		Kind:    "mutable",
		Base:    me.BaseKind(),
		Bits:    me.IndexBits(),
		N:       me.LiveN(),
		Metric:  me.Metric().Name(),
		Shards:  me.Shards(),
		Workers: me.Workers(),
	}
	s, err := New(me, info, cfg)
	if err != nil {
		return nil, err
	}
	s.proto = me.Proto()
	return s, nil
}

// Info returns what the server is serving.
func (s *Server) Info() IndexInfo { return s.info }

// ServeHTTP implements http.Handler. It is the instrumentation middleware:
// every request gets an ID (the client's X-Request-ID, or a minted one),
// echoed back in the response header and threaded through the handler's
// context, and is counted into the per-endpoint request/error/latency
// families and the in-flight gauge.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ep := endpointOf(r.URL.Path)
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = fmt.Sprintf("%s-%d", s.ridPrefix, s.ridSeq.Add(1))
	}
	w.Header().Set("X-Request-ID", reqID)
	r = r.WithContext(context.WithValue(r.Context(), ridKey{}, reqID))

	s.mu.Lock()
	s.Requests++
	s.mu.Unlock()
	s.metrics.request(ep).Inc()
	s.metrics.inflight.Add(1)
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	s.metrics.inflight.Add(-1)
	if sw.code >= 400 {
		s.metrics.error(ep).Inc()
	}
	s.metrics.observeLatency(ep, time.Since(start))
}

// Close flushes the coalescer's pending batches and closes the backend
// engine. Idempotent. Callers using Serve never need it.
func (s *Server) Close() {
	s.co.Close()
	s.backend.Close()
}

// Serve answers HTTP on ln until ctx is cancelled, then shuts down
// gracefully: stop accepting, drain in-flight handlers, flush the
// coalescer, close the engine. It returns nil after a clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err := hs.Shutdown(sctx) // in-flight handlers finish before this returns
	s.Close()
	return err
}

// --- handlers ---

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req KNNRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	// info.N may be unset when the Server was built with New rather than
	// NewFromIndex, and goes stale on a mutable server; then the bound
	// check falls to the backend, whose range errors surface as 400s below.
	if req.K < 1 || (s.info.N > 0 && !s.info.Mutable && req.K > s.info.N) {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("k=%d out of range 1..%d", req.K, s.info.N))
		return
	}
	if req.Approx {
		s.answerApprox(w, r, req)
		return
	}
	s.answer(w, r, slowQueryRecord{Endpoint: "knn", K: req.K},
		req.Query, req.Queries,
		func(q distperm.Point) (string, bool) { return knnKey(q, req.K) },
		func(q distperm.Point, reqID string) ([]distperm.Result, FlushInfo, error) {
			return s.co.KNNTraced(q, req.K, reqID)
		},
		func(qs []distperm.Point) ([][]distperm.Result, error) { return s.backend.KNNBatch(qs, req.K) },
	)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req RangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if req.R < 0 || math.IsNaN(req.R) {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("bad radius %g", req.R))
		return
	}
	s.answer(w, r, slowQueryRecord{Endpoint: "range", Radius: req.R},
		req.Query, req.Queries,
		func(q distperm.Point) (string, bool) { return rangeKey(q, req.R) },
		func(q distperm.Point, reqID string) ([]distperm.Result, FlushInfo, error) {
			return s.co.RangeTraced(q, req.R, reqID)
		},
		func(qs []distperm.Point) ([][]distperm.Result, error) { return s.backend.RangeBatch(qs, req.R) },
	)
}

// answer runs the shared request shape of /v1/knn and /v1/range: exactly
// one of single/batch, points decoded and validated, the single form routed
// cache → coalescer, the batched form routed straight to the engine.
// Computed (non-cache-hit) answers are timed against the slow-query
// threshold; rec arrives with the endpoint and its parameter filled in.
func (s *Server) answer(w http.ResponseWriter, r *http.Request, rec slowQueryRecord,
	single json.RawMessage, batch []json.RawMessage,
	key func(distperm.Point) (string, bool),
	one func(q distperm.Point, reqID string) ([]distperm.Result, FlushInfo, error),
	many func([]distperm.Point) ([][]distperm.Result, error),
) {
	rec.RequestID = requestID(r)
	switch {
	case single != nil && batch != nil:
		s.fail(w, http.StatusBadRequest, `"query" and "queries" are mutually exclusive`)
	case single != nil:
		q, err := s.decodePoint(single)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err.Error())
			return
		}
		k, cacheable := key(q)
		if rs, ok := s.cache.Get(k); cacheable && ok {
			s.bump(func(c *ServerCounters) { c.SingleQueries++ })
			s.ok(w, QueryResponse{Results: toWire(rs)})
			return
		}
		// The generation is read before computing: if a mutation lands
		// while the query runs, the stamp no longer matches and the Put is
		// dropped, so the cache cannot serve the pre-mutation answer.
		gen := s.cache.Generation()
		evals, start := s.traceStart()
		rs, fi, err := one(q, rec.RequestID)
		if err != nil {
			s.fail(w, backendErrorCode(err), err.Error())
			return
		}
		rec.BatchSize = fi.Size
		rec.FlushReason = fi.Reason
		rec.CoalescedIDs = fi.RequestIDs
		s.traceEnd(rec, evals, start)
		if cacheable {
			s.cache.Put(k, gen, rs)
		}
		s.bump(func(c *ServerCounters) { c.SingleQueries++ })
		s.ok(w, QueryResponse{Results: toWire(rs)})
	case batch != nil:
		qs := make([]distperm.Point, len(batch))
		for i, raw := range batch {
			q, err := s.decodePoint(raw)
			if err != nil {
				s.fail(w, http.StatusBadRequest, fmt.Sprintf("queries[%d]: %v", i, err))
				return
			}
			qs[i] = q
		}
		evals, start := s.traceStart()
		outs, err := many(qs)
		if err != nil {
			s.fail(w, backendErrorCode(err), err.Error())
			return
		}
		rec.Queries = len(qs)
		s.traceEnd(rec, evals, start)
		batches := make([][]Result, len(outs))
		for i, rs := range outs {
			batches[i] = toWire(rs)
		}
		s.bump(func(c *ServerCounters) { c.BatchQueries += int64(len(qs)) })
		s.ok(w, QueryResponse{Batches: batches})
	default:
		s.fail(w, http.StatusBadRequest, `one of "query" or "queries" is required`)
	}
}

// answerApprox serves an approximate kNN request, single or batched, both
// routed straight to the backend's ApproxBackend capability: approximate
// answers depend on nprobe and on the live directory, so they bypass the
// result cache and the coalescer entirely. The response aggregates the
// per-query probe accounting into QueryResponse.Approx.
func (s *Server) answerApprox(w http.ResponseWriter, r *http.Request, req KNNRequest) {
	if s.approx == nil {
		s.fail(w, http.StatusBadRequest, "this backend has no approximate-search support")
		return
	}
	single := req.Query != nil
	var raws []json.RawMessage
	switch {
	case single && req.Queries != nil:
		s.fail(w, http.StatusBadRequest, `"query" and "queries" are mutually exclusive`)
		return
	case single:
		raws = []json.RawMessage{req.Query}
	case req.Queries != nil:
		raws = req.Queries
	default:
		s.fail(w, http.StatusBadRequest, `one of "query" or "queries" is required`)
		return
	}
	qs := make([]distperm.Point, len(raws))
	for i, raw := range raws {
		q, err := s.decodePoint(raw)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Sprintf("queries[%d]: %v", i, err))
			return
		}
		qs[i] = q
	}
	rec := slowQueryRecord{Endpoint: "knn", K: req.K, RequestID: requestID(r)}
	evals, start := s.traceStart()
	outs, sts, err := s.approx.KNNApproxBatch(qs, req.K, req.NProbe)
	if err != nil {
		s.fail(w, backendErrorCode(err), err.Error())
		return
	}
	rec.Queries = len(qs)
	s.traceEnd(rec, evals, start)
	aw := &ApproxWire{NProbe: req.NProbe, Exact: true}
	for _, st := range sts {
		aw.ProbedBuckets += st.ProbedBuckets
		aw.Candidates += st.Candidates
		aw.TotalBuckets = st.TotalBuckets // identical across the batch
		aw.Exact = aw.Exact && st.Exact
	}
	if n := s.liveN(); n > 0 {
		aw.CandidateFraction = float64(aw.Candidates) / float64(len(qs)*n)
	}
	if single {
		s.bump(func(c *ServerCounters) { c.SingleQueries++ })
		s.ok(w, QueryResponse{Results: toWire(outs[0]), Approx: aw})
		return
	}
	batches := make([][]Result, len(outs))
	for i, rs := range outs {
		batches[i] = toWire(rs)
	}
	s.bump(func(c *ServerCounters) { c.BatchQueries += int64(len(qs)) })
	s.ok(w, QueryResponse{Batches: batches, Approx: aw})
}

// liveN is the current logical database size — the candidate fraction's
// denominator: the live count on mutable servers, info.N otherwise (0 when
// the Server was built without one).
func (s *Server) liveN() int {
	if s.mutable != nil {
		return s.mutable.MutationStats().LiveN
	}
	return s.info.N
}

// traceStart opens a slow-query measurement: the engine's distance-eval
// counter (so the record can report the evals this query's batch spent)
// and the clock. Free when the slow-query log is disabled.
func (s *Server) traceStart() (evalsBefore int64, start time.Time) {
	if !s.slow.enabled() {
		return 0, time.Time{}
	}
	return s.backend.Stats().DistanceEvals, time.Now()
}

// traceEnd closes the measurement and emits the record if over threshold.
// The evals figure is a process-wide delta, so concurrent queries inflate
// each other's — it bounds, rather than isolates, this query's work.
func (s *Server) traceEnd(rec slowQueryRecord, evalsBefore int64, start time.Time) {
	if !s.slow.enabled() {
		return
	}
	d := time.Since(start)
	if d < s.slow.threshold {
		return
	}
	rec.Shards = s.info.Shards
	rec.Evals = s.backend.Stats().DistanceEvals - evalsBefore
	s.slow.emit(rec, d)
}

// decodePoint decodes a wire point and checks it against the database's
// point shape, so a malformed query is a 400, not a metric panic in a
// worker.
func (s *Server) decodePoint(raw json.RawMessage) (distperm.Point, error) {
	q, err := DecodePoint(raw)
	if err != nil {
		return nil, err
	}
	switch proto := s.proto.(type) {
	case distperm.Vector:
		v, ok := q.(distperm.Vector)
		if !ok {
			return nil, fmt.Errorf("this server serves vector points; got a string")
		}
		if len(v) != len(proto) {
			return nil, fmt.Errorf("query has %d dimensions, database has %d", len(v), len(proto))
		}
	case distperm.String:
		if _, ok := q.(distperm.String); !ok {
			return nil, fmt.Errorf("this server serves string points; got a vector")
		}
	}
	return q, nil
}

// backendErrorCode maps an engine error to an HTTP status: parameter
// errors (k or radius out of the servable range, approximate search
// against an index without the capability) are the client's fault,
// everything else (typically a closing engine) is 503.
func backendErrorCode(err error) int {
	if errors.Is(err, distperm.ErrOutOfRange) || errors.Is(err, distperm.ErrNoApprox) {
		return http.StatusBadRequest
	}
	return http.StatusServiceUnavailable
}

// requireMutable answers nil and a 409 when the backend has no write path.
func (s *Server) requireMutable(w http.ResponseWriter) MutableBackend {
	if s.mutable == nil {
		s.fail(w, http.StatusConflict, "server is read-only; start with a mutable engine (-rebuild-threshold) to enable writes")
		return nil
	}
	return s.mutable
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	mb := s.requireMutable(w)
	if mb == nil {
		return
	}
	var req InsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	single := req.Point != nil
	switch {
	case single && req.Points != nil:
		s.fail(w, http.StatusBadRequest, `"point" and "points" are mutually exclusive`)
		return
	case single:
		req.Points = []json.RawMessage{req.Point}
	case req.Points == nil:
		s.fail(w, http.StatusBadRequest, `one of "point" or "points" is required`)
		return
	}
	// Decode and validate everything before the first mutation, so a
	// malformed batch is rejected whole.
	pts := make([]distperm.Point, len(req.Points))
	for i, raw := range req.Points {
		p, err := s.decodePoint(raw)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Sprintf("points[%d]: %v", i, err))
			return
		}
		pts[i] = p
	}
	ids := make([]int, 0, len(pts))
	for i, p := range pts {
		id, err := mb.Insert(p)
		if err != nil {
			s.mutated(int64(len(ids)), 0)
			s.fail(w, http.StatusServiceUnavailable, fmt.Sprintf("points[%d]: %v (%d of %d inserted)", i, err, len(ids), len(pts)))
			return
		}
		ids = append(ids, id)
	}
	s.mutated(int64(len(ids)), 0)
	if single {
		s.ok(w, MutateResponse{ID: &ids[0]})
		return
	}
	s.ok(w, MutateResponse{IDs: ids})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	mb := s.requireMutable(w)
	if mb == nil {
		return
	}
	var req DeleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	single := req.ID != nil
	switch {
	case single && req.IDs != nil:
		s.fail(w, http.StatusBadRequest, `"id" and "ids" are mutually exclusive`)
		return
	case single:
		req.IDs = []int{*req.ID}
	case req.IDs == nil:
		s.fail(w, http.StatusBadRequest, `one of "id" or "ids" is required`)
		return
	}
	deleted := make([]int, 0, len(req.IDs))
	for i, id := range req.IDs {
		if err := mb.Delete(id); err != nil {
			s.mutated(0, int64(len(deleted)))
			code := http.StatusServiceUnavailable
			if errors.Is(err, distperm.ErrUnknownID) {
				code = http.StatusNotFound
			}
			s.fail(w, code, fmt.Sprintf("ids[%d]: %v (%d of %d deleted)", i, err, len(deleted), len(req.IDs)))
			return
		}
		deleted = append(deleted, id)
	}
	s.mutated(0, int64(len(deleted)))
	if single {
		s.ok(w, MutateResponse{ID: &deleted[0]})
		return
	}
	s.ok(w, MutateResponse{IDs: deleted})
}

// mutated records accepted mutations and invalidates the result cache —
// even on a partially-applied batch, so the applied prefix cannot be
// served stale.
func (s *Server) mutated(inserts, deletes int64) {
	if inserts == 0 && deletes == 0 {
		return
	}
	s.cache.Invalidate()
	s.bump(func(c *ServerCounters) {
		c.Inserts += inserts
		c.Deletes += deletes
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	batches, queries := s.co.Counters()
	hits, misses, entries := s.cache.Counters()
	s.mu.Lock()
	counters := s.ServerCounters
	s.mu.Unlock()
	counters.CoalescedBatches = batches
	counters.CoalescedQueries = queries
	counters.CacheHits = hits
	counters.CacheMisses = misses
	counters.CacheEntries = entries
	counters.CacheEvictions = s.cache.Evictions()
	counters.CacheInvalidations = s.cache.Invalidations()
	resp := StatsResponse{Engine: statsWire(s.backend.Stats()), Server: counters}
	if s.mutable != nil {
		resp.Mutation = mutationWire(s.mutable.MutationStats())
		if wb, ok := s.mutable.(walBackend); ok {
			resp.WAL = walWire(wb.WALStats())
		}
	}
	s.ok(w, resp)
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	s.ok(w, s.info)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReady is the readiness half of the liveness/readiness split: a
// request reaching a running Server is by definition ready (the Gate
// answers 503 for it while the index is still loading).
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ready"}`)
}

func (s *Server) ok(w http.ResponseWriter, body any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(body); err != nil {
		// Headers are gone; nothing to do but note it server-side.
		s.bump(func(c *ServerCounters) { c.Errors++ })
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.bump(func(c *ServerCounters) { c.Errors++ })
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: strings.TrimPrefix(msg, "distperm: ")})
}

func (s *Server) bump(f func(*ServerCounters)) {
	s.mu.Lock()
	f(&s.ServerCounters)
	s.mu.Unlock()
}
