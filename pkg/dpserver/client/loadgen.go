package client

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"distperm/pkg/distperm"
	"distperm/pkg/dpserver"
	"distperm/pkg/obs"
)

// LoadConfig drives RunLoad against a running dpserver.
type LoadConfig struct {
	// Target is the server base URL.
	Target string
	// Queries is the pool of query points; workers cycle through it.
	Queries []distperm.Point
	// K requests k-nearest-neighbour queries; if K is 0, range queries of
	// Radius are sent instead.
	K int
	// Radius is the range-query radius when K is 0.
	Radius float64
	// Concurrency is the number of client workers (default 1).
	Concurrency int
	// QPS caps the aggregate request rate; 0 means unthrottled.
	QPS float64
	// Duration bounds the run (default 5s); ctx cancellation also stops it.
	Duration time.Duration
	// Batch is the number of queries per request: 1 sends single-query
	// requests (exercising the server's coalescer and cache), larger values
	// send client-side batches.
	Batch int
	// WriteRatio is the fraction of requests that mutate instead of query
	// (0..1; requires a mutable server). Mutation requests alternate
	// between inserting a pool point and deleting a previously inserted
	// one, so the store's size stays roughly flat over a long run.
	WriteRatio float64
	// ApproxNProbe > 0 sends kNN requests through the server's approximate
	// path with this nprobe; ≤ 0 (the default) sends exact queries. The
	// report then carries the mean per-request candidate fraction the
	// server measured. Requires K > 0.
	ApproxNProbe int
}

// LatencySummary condenses one endpoint's latency histogram: the request
// count and the nearest-rank percentiles at bucket-edge resolution.
type LatencySummary struct {
	Count         uint64
	P50, P95, P99 time.Duration
}

// summarize reads a latency snapshot into a LatencySummary.
func summarize(snap obs.HistogramSnapshot) LatencySummary {
	s := LatencySummary{Count: snap.Count}
	if snap.Count == 0 {
		return s
	}
	q := func(p float64) time.Duration {
		return time.Duration(math.Round(snap.Quantile(p) * 1e9))
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

// LoadReport summarises one RunLoad run.
type LoadReport struct {
	// Requests and Errors count HTTP requests sent and failed.
	Requests int64
	Errors   int64
	// Queries counts the query points served (Requests × batch size when
	// error-free).
	Queries int64
	// Inserts and Deletes count the mutations a WriteRatio run applied.
	Inserts, Deletes int64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
	// QueriesPerSecond is Queries / Elapsed.
	QueriesPerSecond float64
	// P50, P95, and P99 are per-request latency percentiles across every
	// successful request, read from fixed-bucket histograms (memory stays
	// flat however long the run); resolution is one histogram bucket edge.
	P50, P95, P99 time.Duration
	// PerEndpoint breaks the latency down by request shape: single-query
	// requests land under "knn"/"range" (the cache/coalescer path) and
	// client-side batches under "knn-batch"/"range-batch" (the direct
	// engine path), so the two serving paths never blur in one summary;
	// mutations land under "insert"/"delete". Shapes the run never sent
	// are absent.
	PerEndpoint map[string]LatencySummary
	// ApproxRequests counts kNN requests served through the approximate
	// path (ApproxNProbe > 0 runs); MeanCandidateFraction averages their
	// per-request candidate fraction — the share of the database the
	// server actually measured per query.
	ApproxRequests        int64
	MeanCandidateFraction float64
}

// RunLoad fires queries at cfg.Target from cfg.Concurrency workers until
// cfg.Duration elapses or ctx is cancelled, and reports achieved
// throughput and latency percentiles — the over-the-wire extension of the
// repo's qps-vs-workers and qps-vs-shards benchmarks. Individual request
// failures are counted, not fatal; RunLoad errors only on a misconfigured
// load.
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadReport, error) {
	if cfg.Target == "" {
		return LoadReport{}, fmt.Errorf("client: RunLoad requires a target URL")
	}
	if len(cfg.Queries) == 0 {
		return LoadReport{}, fmt.Errorf("client: RunLoad requires query points")
	}
	if cfg.K == 0 && cfg.Radius < 0 {
		return LoadReport{}, fmt.Errorf("client: negative radius %g", cfg.Radius)
	}
	if cfg.WriteRatio < 0 || cfg.WriteRatio > 1 {
		return LoadReport{}, fmt.Errorf("client: write ratio %g out of range 0..1", cfg.WriteRatio)
	}
	if cfg.ApproxNProbe > 0 && cfg.K == 0 {
		return LoadReport{}, fmt.Errorf("client: approximate load needs kNN queries (set K)")
	}
	conc := cfg.Concurrency
	if conc < 1 {
		conc = 1
	}
	batch := cfg.Batch
	if batch < 1 {
		batch = 1
	}
	duration := cfg.Duration
	if duration <= 0 {
		duration = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	// Throttle by metering tokens onto a channel at QPS; unthrottled runs
	// get a nil channel (never selected).
	var tokens chan struct{}
	if cfg.QPS > 0 {
		tokens = make(chan struct{})
		interval := time.Duration(float64(time.Second) / cfg.QPS)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}

	var (
		requests, errors, queries atomic.Int64
		inserts, deletes          atomic.Int64
	)
	// One lock-free latency histogram per request shape, the same instrument
	// the server aggregates with, so the client- and server-side percentiles
	// in the end-of-run comparison share bucket edges. Single and batched
	// query requests are kept apart — they traverse different serving paths
	// (cache/coalescer vs direct engine batch) with different latency
	// profiles.
	hists := map[string]*obs.Histogram{
		"knn":         obs.NewHistogram(obs.DefLatencyBuckets),
		"knn-batch":   obs.NewHistogram(obs.DefLatencyBuckets),
		"range":       obs.NewHistogram(obs.DefLatencyBuckets),
		"range-batch": obs.NewHistogram(obs.DefLatencyBuckets),
		"insert":      obs.NewHistogram(obs.DefLatencyBuckets),
		"delete":      obs.NewHistogram(obs.DefLatencyBuckets),
	}
	record := func(endpoint string, d time.Duration) {
		hists[endpoint].Observe(d.Seconds())
	}
	// Candidate-fraction accumulation for approximate runs.
	var fracMu sync.Mutex
	var fracSum float64
	var approxReqs int64

	c := New(cfg.Target)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w // decorrelate workers' walks through the query pool
			// Each worker keeps its own mutation state: a seeded RNG for the
			// write/read decision and the IDs of its own inserts, so deletes
			// always name live points.
			wrng := rand.New(rand.NewSource(int64(w) + 1))
			var myIDs []int
			for {
				if tokens != nil {
					select {
					case <-tokens:
					case <-ctx.Done():
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				var err error
				endpoint := "knn"
				if cfg.K == 0 {
					endpoint = "range"
				}
				if batch > 1 {
					endpoint += "-batch"
				}
				reqStart := time.Now()
				if cfg.WriteRatio > 0 && wrng.Float64() < cfg.WriteRatio {
					if len(myIDs) > 0 && wrng.Intn(2) == 0 {
						endpoint = "delete"
						err = c.Delete(ctx, myIDs[0])
						if err == nil {
							myIDs = myIDs[1:]
							deletes.Add(1)
						}
					} else {
						endpoint = "insert"
						var id int
						id, err = c.Insert(ctx, cfg.Queries[i%len(cfg.Queries)])
						if err == nil {
							myIDs = append(myIDs, id)
							inserts.Add(1)
						}
					}
					i++
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						requests.Add(1)
						errors.Add(1)
						continue
					}
					requests.Add(1)
					record(endpoint, time.Since(reqStart))
					continue
				}
				var aw *dpserver.ApproxWire
				if batch == 1 {
					q := cfg.Queries[i%len(cfg.Queries)]
					switch {
					case cfg.K > 0 && cfg.ApproxNProbe > 0:
						_, aw, err = c.KNNApprox(ctx, q, cfg.K, cfg.ApproxNProbe)
					case cfg.K > 0:
						_, err = c.KNN(ctx, q, cfg.K)
					default:
						_, err = c.Range(ctx, q, cfg.Radius)
					}
				} else {
					qs := make([]distperm.Point, batch)
					for j := range qs {
						qs[j] = cfg.Queries[(i+j)%len(cfg.Queries)]
					}
					switch {
					case cfg.K > 0 && cfg.ApproxNProbe > 0:
						_, aw, err = c.KNNApproxBatch(ctx, qs, cfg.K, cfg.ApproxNProbe)
					case cfg.K > 0:
						_, err = c.KNNBatch(ctx, qs, cfg.K)
					default:
						_, err = c.RangeBatch(ctx, qs, cfg.Radius)
					}
				}
				i += batch
				if err != nil {
					if ctx.Err() != nil {
						return // cut off by the run deadline, not a server failure
					}
					requests.Add(1)
					errors.Add(1)
					continue
				}
				requests.Add(1)
				queries.Add(int64(batch))
				record(endpoint, time.Since(reqStart))
				if aw != nil {
					fracMu.Lock()
					fracSum += aw.CandidateFraction
					approxReqs++
					fracMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := LoadReport{
		Requests: requests.Load(),
		Errors:   errors.Load(),
		Queries:  queries.Load(),
		Inserts:  inserts.Load(),
		Deletes:  deletes.Load(),
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		report.QueriesPerSecond = float64(report.Queries) / elapsed.Seconds()
	}
	report.ApproxRequests = approxReqs
	if approxReqs > 0 {
		report.MeanCandidateFraction = fracSum / float64(approxReqs)
	}
	var all obs.HistogramSnapshot
	report.PerEndpoint = make(map[string]LatencySummary)
	for endpoint, h := range hists {
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		report.PerEndpoint[endpoint] = summarize(snap)
		all.Merge(snap)
	}
	if overall := summarize(all); overall.Count > 0 {
		report.P50, report.P95, report.P99 = overall.P50, overall.P95, overall.P99
	}
	return report, nil
}
