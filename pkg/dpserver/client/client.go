// Package client is the Go client for a dpserver HTTP endpoint (the
// distpermd daemon): typed kNN/range queries in single and batched form,
// stats and index introspection, plus a configurable load-generation driver
// (RunLoad) that extends the repo's throughput benchmarks over the wire.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"distperm/pkg/distperm"
	"distperm/pkg/dpserver"
	"distperm/pkg/obs"
)

// Client talks to one dpserver base URL. The zero HTTPClient means
// http.DefaultClient; set a custom one for timeouts or transport reuse
// before the first call.
type Client struct {
	// Base is the server's base URL, e.g. "http://localhost:7411".
	Base string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

// New returns a client for the server at base (scheme://host:port, no
// trailing slash required).
func New(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

// KNN answers one kNN query — the request shape that flows through the
// server's result cache and coalescer.
func (c *Client) KNN(ctx context.Context, q distperm.Point, k int) ([]distperm.Result, error) {
	raw, err := dpserver.EncodePoint(q)
	if err != nil {
		return nil, err
	}
	var resp dpserver.QueryResponse
	if err := c.post(ctx, "/v1/knn", dpserver.KNNRequest{Query: raw, K: k}, &resp); err != nil {
		return nil, err
	}
	return fromWire(resp.Results), nil
}

// KNNBatch answers one kNN query per point of qs in one request, submitted
// to the engine as one batch.
func (c *Client) KNNBatch(ctx context.Context, qs []distperm.Point, k int) ([][]distperm.Result, error) {
	raws, err := encodeAll(qs)
	if err != nil {
		return nil, err
	}
	var resp dpserver.QueryResponse
	if err := c.post(ctx, "/v1/knn", dpserver.KNNRequest{Queries: raws, K: k}, &resp); err != nil {
		return nil, err
	}
	return fromWireBatches(resp.Batches)
}

// KNNApprox answers one approximate kNN query: the server probes the
// nprobe nearest permutation-prefix buckets (0 selects the server default;
// ≥ the directory size degrades to the exact scan). The returned ApproxWire
// carries the probe accounting (probed buckets, candidate fraction, and
// whether the answer degraded to exact).
func (c *Client) KNNApprox(ctx context.Context, q distperm.Point, k, nprobe int) ([]distperm.Result, *dpserver.ApproxWire, error) {
	raw, err := dpserver.EncodePoint(q)
	if err != nil {
		return nil, nil, err
	}
	var resp dpserver.QueryResponse
	if err := c.post(ctx, "/v1/knn", dpserver.KNNRequest{Query: raw, K: k, Approx: true, NProbe: nprobe}, &resp); err != nil {
		return nil, nil, err
	}
	return fromWire(resp.Results), resp.Approx, nil
}

// KNNApproxBatch answers one approximate kNN query per point of qs in one
// request; the ApproxWire aggregates the probe accounting over the batch.
func (c *Client) KNNApproxBatch(ctx context.Context, qs []distperm.Point, k, nprobe int) ([][]distperm.Result, *dpserver.ApproxWire, error) {
	raws, err := encodeAll(qs)
	if err != nil {
		return nil, nil, err
	}
	var resp dpserver.QueryResponse
	if err := c.post(ctx, "/v1/knn", dpserver.KNNRequest{Queries: raws, K: k, Approx: true, NProbe: nprobe}, &resp); err != nil {
		return nil, nil, err
	}
	outs, err := fromWireBatches(resp.Batches)
	return outs, resp.Approx, err
}

// Range answers one range query of radius r.
func (c *Client) Range(ctx context.Context, q distperm.Point, r float64) ([]distperm.Result, error) {
	raw, err := dpserver.EncodePoint(q)
	if err != nil {
		return nil, err
	}
	var resp dpserver.QueryResponse
	if err := c.post(ctx, "/v1/range", dpserver.RangeRequest{Query: raw, R: r}, &resp); err != nil {
		return nil, err
	}
	return fromWire(resp.Results), nil
}

// RangeBatch answers one range query of radius r per point of qs in one
// request.
func (c *Client) RangeBatch(ctx context.Context, qs []distperm.Point, r float64) ([][]distperm.Result, error) {
	raws, err := encodeAll(qs)
	if err != nil {
		return nil, err
	}
	var resp dpserver.QueryResponse
	if err := c.post(ctx, "/v1/range", dpserver.RangeRequest{Queries: raws, R: r}, &resp); err != nil {
		return nil, err
	}
	return fromWireBatches(resp.Batches)
}

// Insert adds one point to a mutable server's logical point set and
// returns the stable global ID it was granted. The point is visible to
// every query issued after Insert returns.
func (c *Client) Insert(ctx context.Context, p distperm.Point) (int, error) {
	raw, err := dpserver.EncodePoint(p)
	if err != nil {
		return 0, err
	}
	var resp dpserver.MutateResponse
	if err := c.post(ctx, "/v1/insert", dpserver.InsertRequest{Point: raw}, &resp); err != nil {
		return 0, err
	}
	if resp.ID == nil {
		return 0, fmt.Errorf("client: insert answer carried no id")
	}
	return *resp.ID, nil
}

// InsertBatch adds every point of ps in one request and returns their
// global IDs in order.
func (c *Client) InsertBatch(ctx context.Context, ps []distperm.Point) ([]int, error) {
	raws, err := encodeAll(ps)
	if err != nil {
		return nil, err
	}
	var resp dpserver.MutateResponse
	if err := c.post(ctx, "/v1/insert", dpserver.InsertRequest{Points: raws}, &resp); err != nil {
		return nil, err
	}
	if len(resp.IDs) != len(ps) {
		return nil, fmt.Errorf("client: %d ids for %d inserted points", len(resp.IDs), len(ps))
	}
	return resp.IDs, nil
}

// Delete removes the live point with the given global ID from a mutable
// server.
func (c *Client) Delete(ctx context.Context, id int) error {
	var resp dpserver.MutateResponse
	return c.post(ctx, "/v1/delete", dpserver.DeleteRequest{ID: &id}, &resp)
}

// DeleteBatch removes every listed ID in one request.
func (c *Client) DeleteBatch(ctx context.Context, ids []int) error {
	var resp dpserver.MutateResponse
	return c.post(ctx, "/v1/delete", dpserver.DeleteRequest{IDs: ids}, &resp)
}

// Stats fetches the engine and server counters.
func (c *Client) Stats(ctx context.Context) (dpserver.StatsResponse, error) {
	var resp dpserver.StatsResponse
	err := c.get(ctx, "/v1/stats", &resp)
	return resp, err
}

// IndexInfo fetches what the server is serving.
func (c *Client) IndexInfo(ctx context.Context) (dpserver.IndexInfo, error) {
	var resp dpserver.IndexInfo
	err := c.get(ctx, "/v1/index", &resp)
	return resp, err
}

// Health probes /healthz (liveness: the process answers HTTP, possibly
// still loading its store).
func (c *Client) Health(ctx context.Context) error {
	var resp struct {
		Status string `json:"status"`
	}
	if err := c.get(ctx, "/healthz", &resp); err != nil {
		return err
	}
	if resp.Status != "ok" {
		return fmt.Errorf("client: health status %q", resp.Status)
	}
	return nil
}

// Ready probes /readyz (readiness: the store is loaded and queries will be
// answered). A loading daemon fails this with its 503 while passing Health.
func (c *Client) Ready(ctx context.Context) error {
	var resp struct {
		Status string `json:"status"`
	}
	if err := c.get(ctx, "/readyz", &resp); err != nil {
		return err
	}
	if resp.Status != "ready" {
		return fmt.Errorf("client: readiness status %q", resp.Status)
	}
	return nil
}

// Metrics scrapes GET /metrics and returns the parsed families, keyed by
// family name — the server-side half of a client-vs-server latency
// comparison after a load run.
func (c *Client) Metrics(ctx context.Context) (map[string]obs.Family, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: GET /metrics: HTTP %d", resp.StatusCode)
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: GET /metrics: %w", err)
	}
	byName := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName, nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e dpserver.ErrorResponse
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("client: %s %s: %s (HTTP %d)", req.Method, req.URL.Path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("client: %s %s: HTTP %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func encodeAll(qs []distperm.Point) ([]json.RawMessage, error) {
	raws := make([]json.RawMessage, len(qs))
	for i, q := range qs {
		raw, err := dpserver.EncodePoint(q)
		if err != nil {
			return nil, fmt.Errorf("queries[%d]: %w", i, err)
		}
		raws[i] = raw
	}
	return raws, nil
}

func fromWire(rs []dpserver.Result) []distperm.Result {
	out := make([]distperm.Result, len(rs))
	for i, r := range rs {
		out[i] = distperm.Result{ID: r.ID, Distance: r.Distance}
	}
	return out
}

func fromWireBatches(batches [][]dpserver.Result) ([][]distperm.Result, error) {
	out := make([][]distperm.Result, len(batches))
	for i, rs := range batches {
		out[i] = fromWire(rs)
	}
	return out, nil
}
