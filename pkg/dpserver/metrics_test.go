package dpserver_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"distperm/internal/dataset"
	"distperm/pkg/distperm"
	"distperm/pkg/dpserver"
	"distperm/pkg/obs"
)

// scrape fetches /metrics and parses it with the strict exposition parser,
// so every test of metric content also validates the wire format.
func scrape(t *testing.T, base string) map[string]obs.Family {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text v0.0.4", ct)
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("exposition did not parse: %v", err)
	}
	byName := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName
}

// sampleValue returns the value of the sample in fam matching every given
// label, failing if absent.
func sampleValue(t *testing.T, fams map[string]obs.Family, name string, labels map[string]string) float64 {
	t.Helper()
	fam, ok := fams[name]
	if !ok {
		t.Fatalf("family %s missing from /metrics", name)
	}
outer:
	for _, s := range fam.Samples {
		for k, v := range labels {
			if s.Labels[k] != v {
				continue outer
			}
		}
		return s.Value
	}
	t.Fatalf("family %s has no sample with labels %v", name, labels)
	return 0
}

// histCount returns the _count sample of the named histogram family
// matching the given labels (the parser groups _bucket/_sum/_count under
// the base family name).
func histCount(t *testing.T, fams map[string]obs.Family, name string, labels map[string]string) float64 {
	t.Helper()
	fam, ok := fams[name]
	if !ok {
		t.Fatalf("histogram family %s missing from /metrics", name)
	}
outer:
	for _, s := range fam.Samples {
		if s.Name != name+"_count" {
			continue
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				continue outer
			}
		}
		return s.Value
	}
	t.Fatalf("histogram %s has no _count with labels %v", name, labels)
	return 0
}

// TestMetricsEndpoint drives traffic through every serving layer and then
// checks /metrics reports it: per-endpoint requests and latency, cache
// hits/misses, coalescer flushes, engine queries and evals, and the shared
// histogram shape invariants — all through the strict parser, so the
// exposition format itself is under test too.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _, queries := testServer(t, 77, 300, 4, dpserver.Config{BatchMax: 4, BatchWait: time.Millisecond, CacheSize: 8})

	post := func(path, body string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	enc := func(q distperm.Point) string {
		raw, err := dpserver.EncodePoint(q)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	const reps = 20
	for i := 0; i < reps; i++ {
		post("/v1/knn", fmt.Sprintf(`{"query":%s,"k":3}`, enc(queries[i])))
	}
	// The most recent query again: a cache hit (earlier entries may have
	// been evicted by the LRU's 8-entry cap).
	post("/v1/knn", fmt.Sprintf(`{"query":%s,"k":3}`, enc(queries[reps-1])))
	post("/v1/range", fmt.Sprintf(`{"query":%s,"r":0.5}`, enc(queries[1])))
	// One error: bad body.
	post("/v1/knn", `{"k":0}`)

	fams := scrape(t, ts.URL)

	if v := sampleValue(t, fams, "dpserver_requests_total", map[string]string{"endpoint": "knn"}); v != reps+2 {
		t.Errorf("knn requests_total = %g, want %d", v, reps+2)
	}
	if v := sampleValue(t, fams, "dpserver_requests_total", map[string]string{"endpoint": "range"}); v != 1 {
		t.Errorf("range requests_total = %g, want 1", v)
	}
	if v := sampleValue(t, fams, "dpserver_errors_total", map[string]string{"endpoint": "knn"}); v != 1 {
		t.Errorf("knn errors_total = %g, want 1", v)
	}
	if v := sampleValue(t, fams, "dpserver_cache_hits_total", nil); v != 1 {
		t.Errorf("cache hits = %g, want 1", v)
	}
	if v := sampleValue(t, fams, "dpserver_cache_misses_total", nil); v < reps {
		t.Errorf("cache misses = %g, want >= %d", v, reps)
	}
	// Latency histogram: count matches requests, served through the parser's
	// bucket-monotonicity checks already.
	if v := histCount(t, fams, "dpserver_request_duration_seconds", map[string]string{"endpoint": "knn"}); v != reps+2 {
		t.Errorf("knn latency count = %g, want %d", v, reps+2)
	}
	// Engine families: every non-cached single query reached the engine.
	if v := sampleValue(t, fams, "distperm_engine_queries_total", nil); v < reps {
		t.Errorf("engine queries = %g, want >= %d", v, reps)
	}
	if v := sampleValue(t, fams, "distperm_engine_distance_evals_total", nil); v <= 0 {
		t.Errorf("engine evals = %g, want > 0", v)
	}
	if v := histCount(t, fams, "distperm_engine_query_duration_seconds", nil); v < reps {
		t.Errorf("engine latency count = %g, want >= %d", v, reps)
	}
	// Coalescer: flush counts across reasons equal the batch-size samples.
	var flushes float64
	for _, s := range fams["dpserver_coalescer_flushes_total"].Samples {
		flushes += s.Value
	}
	if batches := histCount(t, fams, "dpserver_coalescer_batch_size", nil); batches != flushes {
		t.Errorf("batch_size count %g != flush total %g", batches, flushes)
	}
	// /v1/stats still carries the same counters (JSON surface unchanged).
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Server struct {
			Requests  int64 `json:"requests"`
			CacheHits int64 `json:"cache_hits"`
		} `json:"server"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Server.CacheHits != 1 {
		t.Errorf("/v1/stats cache_hits = %d, want 1", stats.Server.CacheHits)
	}
}

// TestMetricNamingConventions lints the live server exposition: every
// family carries a known prefix, counters end in _total, histograms in a
// unit suffix, and every family has help text.
func TestMetricNamingConventions(t *testing.T) {
	_, ts, _, queries := testServer(t, 78, 200, 3, dpserver.Config{CacheSize: 4})
	raw, err := dpserver.EncodePoint(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/knn", "application/json",
		strings.NewReader(fmt.Sprintf(`{"query":%s,"k":2}`, string(raw))))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	fams, err := obs.ParsePrometheus(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) == 0 {
		t.Fatal("no families exported")
	}
	if problems := obs.Lint(fams, []string{"dpserver_", "distperm_"}); len(problems) > 0 {
		t.Errorf("metric naming problems:\n  %s", strings.Join(problems, "\n  "))
	}
}

// TestServerWALSurface pins the durability observability contract: a
// WAL-backed mutable server surfaces the log through both /v1/stats (the
// wal object) and /metrics (the distperm_wal_ families, which must also
// pass the naming lint).
func TestServerWALSurface(t *testing.T) {
	w, err := distperm.OpenWAL(t.TempDir(), distperm.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts, points := mutableServer(t, 41, 150,
		distperm.MutableConfig{Spec: distperm.Spec{Index: "distperm", K: 6, Seed: 41}, WAL: w},
		dpserver.Config{CacheSize: 4})

	const writes = 5
	for i := 0; i < writes; i++ {
		raw, err := dpserver.EncodePoint(points[i])
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/insert", "application/json",
			strings.NewReader(fmt.Sprintf(`{"point":%s}`, string(raw))))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d = %d", i, resp.StatusCode)
		}
	}

	// JSON surface: /v1/stats carries the wal object with the acked writes
	// logged and fsynced (default policy is always).
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats dpserver.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	ws := stats.WAL
	if ws == nil {
		t.Fatal("/v1/stats has no wal object on a WAL-backed server")
	}
	if ws.Sync != "always" || ws.Seq != writes || ws.AppendedRecords != writes {
		t.Errorf("wal stats %+v, want sync=always seq=%d appended=%d", ws, writes, writes)
	}
	if ws.Syncs < writes || ws.FsyncCount < writes {
		t.Errorf("sync=always logged %d records with %d syncs / %d fsync samples", writes, ws.Syncs, ws.FsyncCount)
	}

	// Exposition surface: the wal families exist, agree with the JSON
	// counters, and pass the same naming lint as everything else.
	fams := scrape(t, ts.URL)
	if v := sampleValue(t, fams, "distperm_wal_appended_records_total", nil); v != writes {
		t.Errorf("wal appended_records_total = %g, want %d", v, writes)
	}
	if v := sampleValue(t, fams, "distperm_wal_replayed_records_total", nil); v != 0 {
		t.Errorf("wal replayed_records_total = %g on a fresh log, want 0", v)
	}
	if v := sampleValue(t, fams, "distperm_wal_seq", nil); v != writes {
		t.Errorf("wal seq = %g, want %d", v, writes)
	}
	if v := histCount(t, fams, "distperm_wal_fsync_duration_seconds", nil); v < writes {
		t.Errorf("wal fsync histogram count = %g, want >= %d", v, writes)
	}
	var famList []obs.Family
	for _, f := range fams {
		famList = append(famList, f)
	}
	if problems := obs.Lint(famList, []string{"dpserver_", "distperm_"}); len(problems) > 0 {
		t.Errorf("metric naming problems:\n  %s", strings.Join(problems, "\n  "))
	}
}

// TestRequestIDsAndSlowQueryLog pins the tracing contract: the client's
// X-Request-ID is echoed back and lands in the slow-query log (threshold 0
// via 1ns, so every query logs), records parse as one-line JSON with the
// endpoint, parameters, and coalescer batch facts filled in.
func TestRequestIDsAndSlowQueryLog(t *testing.T) {
	var logBuf syncBuffer
	rng := rand.New(rand.NewSource(99))
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, 200, 3))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := distperm.Build(db, distperm.Spec{Index: "distperm", K: 6, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dpserver.NewFromIndex(db, idx, 2, dpserver.Config{
		SlowQuery:    time.Nanosecond,
		SlowQueryLog: &logBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	raw, _ := dpserver.EncodePoint(dataset.UniformVectors(rng, 1, 3)[0])
	req, _ := http.NewRequest("POST", ts.URL+"/v1/knn",
		strings.NewReader(fmt.Sprintf(`{"query":%s,"k":3}`, string(raw))))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Fatalf("X-Request-ID echoed as %q, want trace-me-42", got)
	}

	// A request without an ID gets one minted.
	resp, err = http.Post(ts.URL+"/v1/knn", "application/json",
		strings.NewReader(fmt.Sprintf(`{"query":%s,"k":3}`, string(raw))))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get("X-Request-ID")
	if minted == "" {
		t.Fatal("no X-Request-ID minted")
	}

	var records []map[string]any
	sc := bufio.NewScanner(strings.NewReader(logBuf.String()))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("slow-query line is not JSON: %q: %v", line, err)
		}
		records = append(records, rec)
	}
	if len(records) != 2 {
		t.Fatalf("got %d slow-query records, want 2:\n%s", len(records), logBuf.String())
	}
	first := records[0]
	if first["request_id"] != "trace-me-42" {
		t.Errorf("record request_id = %v, want trace-me-42", first["request_id"])
	}
	if first["endpoint"] != "knn" {
		t.Errorf("record endpoint = %v, want knn", first["endpoint"])
	}
	if k, _ := first["k"].(float64); k != 3 {
		t.Errorf("record k = %v, want 3", first["k"])
	}
	if d, _ := first["duration_ms"].(float64); d <= 0 {
		t.Errorf("record duration_ms = %v, want > 0", first["duration_ms"])
	}
	if _, ok := first["flush_reason"].(string); !ok {
		t.Errorf("record has no flush_reason: %v", first)
	}
	if records[1]["request_id"] != minted {
		t.Errorf("second record request_id = %v, want minted %q", records[1]["request_id"], minted)
	}
}

// TestMetricsSharedRegistry: two servers can publish side by side on one
// caller-owned registry only if it is not shared — the default private
// registry means constructing many servers in-process never panics on
// duplicate registration.
func TestMetricsSharedRegistry(t *testing.T) {
	for i := 0; i < 2; i++ {
		_, ts, _, _ := testServer(t, int64(80+i), 100, 3, dpserver.Config{})
		fams := scrape(t, ts.URL)
		if _, ok := fams["dpserver_requests_total"]; !ok {
			t.Fatalf("server %d missing dpserver_requests_total", i)
		}
	}
}

// syncBuffer is a bytes.Buffer safe for the logger's concurrent writes.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
