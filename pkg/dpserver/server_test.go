package dpserver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"distperm/internal/dataset"
	"distperm/pkg/distperm"
	"distperm/pkg/dpserver"
	"distperm/pkg/dpserver/client"
)

// testServer builds a db + index, a server over it, and an independent
// truth engine over the same built index, so HTTP answers can be compared
// against direct engine batches exactly.
func testServer(t *testing.T, seed int64, n, dim int, cfg dpserver.Config) (*dpserver.Server, *httptest.Server, *distperm.Engine, []distperm.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, n, dim))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := distperm.Build(db, distperm.Spec{Index: "distperm", K: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dpserver.NewFromIndex(db, idx, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close() // drains handlers before the engine goes away
		srv.Close()
	})
	truth, err := distperm.NewEngine(db, idx, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(truth.Close)
	return srv, ts, truth, dataset.UniformVectors(rng, 128, dim)
}

func sameResults(a, b []distperm.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServerCoalescedKNNMatchesEngine is the serving acceptance test: many
// goroutines firing concurrent single-query HTTP requests — the path
// through the result cache and the coalescer — must get answers identical
// to direct Engine.KNNBatch calls. Run under -race this also proves the
// coalescer keeps concurrent requests off each other's batches.
func TestServerCoalescedKNNMatchesEngine(t *testing.T) {
	_, ts, truth, queries := testServer(t, 21, 600, 3,
		dpserver.Config{BatchMax: 8, BatchWait: time.Millisecond, CacheSize: 64})
	c := client.New(ts.URL)
	const k = 3
	want, err := truth.KNNBatch(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 16
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := cl; i < len(queries); i += clients {
				got, err := c.KNN(context.Background(), queries[i], k)
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				if !sameResults(got, want[i]) {
					t.Errorf("query %d: HTTP answer %v != engine answer %v", i, got, want[i])
					return
				}
			}
		}(cl)
	}
	wg.Wait()

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.SingleQueries != int64(len(queries)) {
		t.Errorf("SingleQueries = %d, want %d", st.Server.SingleQueries, len(queries))
	}
	if st.Server.CoalescedBatches == 0 || st.Server.CoalescedQueries < st.Server.CoalescedBatches {
		t.Errorf("implausible coalescer counters: %+v", st.Server)
	}
	if st.Engine.Queries == 0 || st.Engine.DistanceEvals == 0 {
		t.Errorf("engine counters not surfaced: %+v", st.Engine)
	}
}

// TestServerBatchedForms: the batched request shape reaches the engine as
// one batch and matches direct engine answers for both kNN and range.
func TestServerBatchedForms(t *testing.T) {
	_, ts, truth, queries := testServer(t, 22, 400, 3,
		dpserver.Config{BatchMax: 4, BatchWait: time.Millisecond})
	c := client.New(ts.URL)
	qs := queries[:32]

	wantK, err := truth.KNNBatch(qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	gotK, err := c.KNNBatch(context.Background(), qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	const radius = 0.3
	wantR, err := truth.RangeBatch(qs, radius)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := c.RangeBatch(context.Background(), qs, radius)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if !sameResults(gotK[i], wantK[i]) {
			t.Errorf("kNN query %d: %v != %v", i, gotK[i], wantK[i])
		}
		if !sameResults(gotR[i], wantR[i]) {
			t.Errorf("range query %d: %v != %v", i, gotR[i], wantR[i])
		}
	}
	// The single-query range path agrees too.
	gotOne, err := c.Range(context.Background(), qs[0], radius)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(gotOne, wantR[0]) {
		t.Errorf("single range: %v != %v", gotOne, wantR[0])
	}
}

// TestServerCache: repeating a query hits the LRU instead of the engine,
// with identical answers and visible hit counters.
func TestServerCache(t *testing.T) {
	_, ts, _, queries := testServer(t, 23, 300, 3,
		dpserver.Config{BatchMax: 4, BatchWait: time.Millisecond, CacheSize: 16})
	c := client.New(ts.URL)
	q := queries[0]
	first, err := c.KNN(context.Background(), q, 2)
	if err != nil {
		t.Fatal(err)
	}
	statsBefore, _ := c.Stats(context.Background())
	for i := 0; i < 5; i++ {
		again, err := c.KNN(context.Background(), q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(again, first) {
			t.Fatalf("cached answer diverged: %v != %v", again, first)
		}
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.CacheHits < statsBefore.Server.CacheHits+5 {
		t.Errorf("CacheHits = %d, want ≥ %d", st.Server.CacheHits, statsBefore.Server.CacheHits+5)
	}
	if st.Engine.Queries != statsBefore.Engine.Queries {
		t.Errorf("cached hits reached the engine: %d → %d queries",
			statsBefore.Engine.Queries, st.Engine.Queries)
	}
	// A different k misses and re-populates.
	if _, err := c.KNN(context.Background(), q, 3); err != nil {
		t.Fatal(err)
	}
	st2, _ := c.Stats(context.Background())
	if st2.Server.CacheMisses <= st.Server.CacheMisses {
		t.Errorf("k=3 should miss: misses %d → %d", st.Server.CacheMisses, st2.Server.CacheMisses)
	}
}

// TestServerIndexAndHealth: the introspection endpoints describe the
// serving setup.
func TestServerIndexAndHealth(t *testing.T) {
	srv, ts, _, _ := testServer(t, 24, 200, 3, dpserver.Config{})
	c := client.New(ts.URL)
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	info, err := c.IndexInfo(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info != srv.Info() {
		t.Errorf("IndexInfo = %+v, want %+v", info, srv.Info())
	}
	if info.Kind != "distperm" || info.N != 200 || info.Shards != 1 || info.Workers != 4 || info.Bits <= 0 || info.Metric != "L2" {
		t.Errorf("implausible IndexInfo %+v", info)
	}
}

// TestServerSharded: a sharded container serves through a ShardedEngine
// with scatter-gather answers identical to an unsharded engine over the
// same database.
func TestServerSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, 500, 3))
	if err != nil {
		t.Fatal(err)
	}
	sx, err := distperm.BuildSharded(db, distperm.Spec{Index: "distperm", K: 6, Seed: 25}, 3, distperm.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dpserver.NewFromIndex(db, sx, 2, dpserver.Config{BatchMax: 4, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	if info := srv.Info(); info.Kind != "sharded" || info.Shards != 3 || info.Workers != 6 {
		t.Fatalf("sharded IndexInfo = %+v", info)
	}
	lin, err := distperm.Build(db, distperm.Spec{Index: "linear"})
	if err != nil {
		t.Fatal(err)
	}
	te, err := distperm.NewEngine(db, lin, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer te.Close()
	qs := dataset.UniformVectors(rng, 40, 3)
	want, err := te.KNNBatch(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := client.New(ts.URL)
	for i, q := range qs {
		got, err := c.KNN(context.Background(), q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(got, want[i]) {
			t.Errorf("sharded query %d: %v != %v", i, got, want[i])
		}
	}
}

// TestServerRequestErrors: malformed requests are clean 4xx JSON errors,
// not panics or hangs.
func TestServerRequestErrors(t *testing.T) {
	_, ts, _, _ := testServer(t, 26, 100, 3, dpserver.Config{CacheSize: 4})
	post := func(path, body string) (int, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/knn", `{"query": [0.1, 0.2, 0.3], "k": 1}`, http.StatusOK},
		{"/v1/knn", `not json`, http.StatusBadRequest},
		{"/v1/knn", `{"k": 1}`, http.StatusBadRequest},                                                     // no query
		{"/v1/knn", `{"query": [0.1,0.2,0.3], "queries": [[0.1,0.2,0.3]], "k": 1}`, http.StatusBadRequest}, // both
		{"/v1/knn", `{"query": [0.1,0.2,0.3], "k": 0}`, http.StatusBadRequest},                             // bad k
		{"/v1/knn", `{"query": [0.1,0.2,0.3], "k": 101}`, http.StatusBadRequest},                           // k > n
		{"/v1/knn", `{"query": [0.1,0.2], "k": 1}`, http.StatusBadRequest},                                 // wrong dims
		{"/v1/knn", `{"query": "word", "k": 1}`, http.StatusBadRequest},                                    // wrong type
		{"/v1/knn", `{"query": 7, "k": 1}`, http.StatusBadRequest},                                         // not a point
		{"/v1/range", `{"query": [0.1,0.2,0.3], "r": -0.5}`, http.StatusBadRequest},                        // bad radius
		{"/v1/range", `{"queries": [[0.1,0.2,0.3], [0.4]], "r": 0.2}`, http.StatusBadRequest},              // bad element
		{"/v1/range", `{"query": [0.1,0.2,0.3], "r": 0}`, http.StatusOK},                                   // r=0 is valid
	}
	for _, tc := range cases {
		code, body := post(tc.path, tc.body)
		if code != tc.want {
			t.Errorf("POST %s %s → %d (%s), want %d", tc.path, tc.body, code, strings.TrimSpace(body), tc.want)
		}
		if code != http.StatusOK && !strings.Contains(body, `"error"`) {
			t.Errorf("POST %s %s: non-JSON error body %q", tc.path, tc.body, body)
		}
	}
	// Wrong method and unknown paths come from the mux.
	resp, err := http.Get(ts.URL + "/v1/knn")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/knn → %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/nope → %d, want 404", resp.StatusCode)
	}
}

// TestServerGracefulShutdown fires continuous single-query traffic while
// the server shuts down: every request either answers correctly or fails
// with a transport/HTTP error — no panics, no hangs (the PR 2 Close/submit
// stress test lifted to the network layer). Run under -race.
func TestServerGracefulShutdown(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, 400, 3))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := distperm.Build(db, distperm.Spec{Index: "distperm", K: 6, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := distperm.NewEngine(db, idx, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer truth.Close()
	queries := dataset.UniformVectors(rng, 64, 3)
	want, err := truth.KNNBatch(queries, 2)
	if err != nil {
		t.Fatal(err)
	}

	for iter := 0; iter < 3; iter++ {
		srv, err := dpserver.NewFromIndex(db, idx, 2,
			dpserver.Config{BatchMax: 16, BatchWait: 500 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		served := make(chan error, 1)
		go func() { served <- srv.Serve(ctx, ln) }()
		c := client.New("http://" + ln.Addr().String())

		var wg sync.WaitGroup
		for cl := 0; cl < 8; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				for i := 0; ; i++ {
					q := (cl*31 + i) % len(queries)
					got, err := c.KNN(context.Background(), queries[q], 2)
					if err != nil {
						return // shutdown reached this client — accepted
					}
					if !sameResults(got, want[q]) {
						t.Errorf("in-shutdown answer diverged for query %d", q)
						return
					}
				}
			}(cl)
		}
		time.Sleep(time.Duration(iter*3) * time.Millisecond)
		cancel()
		if err := <-served; err != nil {
			t.Fatalf("Serve returned %v, want clean shutdown", err)
		}
		wg.Wait()
		// The engine is closed now; direct use reports it.
		if _, err := c.KNN(context.Background(), queries[0], 2); err == nil {
			t.Error("request after shutdown should fail")
		}
	}
}

// TestRunLoad drives the load generator against a live server in both
// single-query (coalescer-exercising) and batched form.
func TestRunLoad(t *testing.T) {
	_, ts, _, queries := testServer(t, 28, 300, 3,
		dpserver.Config{BatchMax: 8, BatchWait: time.Millisecond, CacheSize: 32})
	for _, batch := range []int{1, 8} {
		report, err := client.RunLoad(context.Background(), client.LoadConfig{
			Target:      ts.URL,
			Queries:     queries,
			K:           2,
			Concurrency: 4,
			Duration:    150 * time.Millisecond,
			Batch:       batch,
		})
		if err != nil {
			t.Fatal(err)
		}
		if report.Requests == 0 || report.Queries < report.Requests {
			t.Errorf("batch=%d: implausible report %+v", batch, report)
		}
		if report.Errors != 0 {
			t.Errorf("batch=%d: %d request errors", batch, report.Errors)
		}
		if report.QueriesPerSecond <= 0 || report.P99 < report.P50 {
			t.Errorf("batch=%d: implausible metrics %+v", batch, report)
		}
	}
	// A throttled run stays near the requested rate (loose upper bound:
	// tokens meter requests, so well under the unthrottled hundreds/s).
	report, err := client.RunLoad(context.Background(), client.LoadConfig{
		Target: ts.URL, Queries: queries, K: 1,
		Concurrency: 2, QPS: 50, Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests > 30 {
		t.Errorf("QPS=50 for 200ms sent %d requests", report.Requests)
	}
	// Misconfigurations are errors.
	if _, err := client.RunLoad(context.Background(), client.LoadConfig{}); err == nil {
		t.Error("empty config should error")
	}
	if _, err := client.RunLoad(context.Background(), client.LoadConfig{Target: ts.URL}); err == nil {
		t.Error("no queries should error")
	}
	if _, err := client.RunLoad(context.Background(), client.LoadConfig{
		Target: ts.URL, Queries: queries, Radius: -1,
	}); err == nil {
		t.Error("negative radius should error")
	}
}

// mutableServer builds a live-mutation serving stack over a fresh store.
func mutableServer(t *testing.T, seed int64, n int, mcfg distperm.MutableConfig, cfg dpserver.Config) (*dpserver.Server, *httptest.Server, []distperm.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, n, 3))
	if err != nil {
		t.Fatal(err)
	}
	me, err := distperm.NewMutableEngine(db, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dpserver.NewFromMutable(me, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, dataset.UniformVectors(rng, 32, 3)
}

// TestServerMutation: the write endpoints mutate the logical point set with
// read-your-write visibility, stable IDs, mutation counters in /v1/stats,
// and clean error codes.
func TestServerMutation(t *testing.T) {
	srv, ts, _ := mutableServer(t, 31, 200,
		distperm.MutableConfig{Spec: distperm.Spec{Index: "distperm", K: 6, Seed: 31}},
		dpserver.Config{BatchMax: 4, BatchWait: time.Millisecond, CacheSize: 16})
	c := client.New(ts.URL)

	if info := srv.Info(); !info.Mutable || info.Kind != "mutable" || info.Base != "distperm" || info.N != 200 {
		t.Fatalf("mutable IndexInfo %+v", info)
	}
	// Insert a far-corner point: it must be its own nearest neighbour on
	// the very next query.
	far := distperm.Vector{9, 9, 9}
	id, err := c.Insert(context.Background(), far)
	if err != nil {
		t.Fatal(err)
	}
	if id != 200 {
		t.Errorf("first insert took id %d, want 200", id)
	}
	rs, err := c.KNN(context.Background(), far, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].ID != id || rs[0].Distance != 0 {
		t.Fatalf("read-your-write failed: %v", rs)
	}
	// Delete it: the same query must stop returning it.
	if err := c.Delete(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	rs, err = c.KNN(context.Background(), far, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].ID == id {
		t.Fatalf("deleted point still answered: %v", rs)
	}
	// Batched forms.
	ids, err := c.InsertBatch(context.Background(),
		[]distperm.Point{distperm.Vector{8, 8, 8}, distperm.Vector{7, 7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 201 || ids[1] != 202 {
		t.Fatalf("batch insert ids %v", ids)
	}
	if err := c.DeleteBatch(context.Background(), ids); err != nil {
		t.Fatal(err)
	}
	// Counters surface on /v1/stats.
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Server.Inserts != 3 || st.Server.Deletes != 3 || st.Server.CacheInvalidations == 0 {
		t.Errorf("mutation counters %+v", st.Server)
	}
	if st.Mutation == nil || st.Mutation.Inserts != 3 || st.Mutation.Deletes != 3 || st.Mutation.LiveN != 200 || st.Mutation.NextID != 203 {
		t.Errorf("mutation stats %+v", st.Mutation)
	}
	// Error codes: unknown ID is 404, malformed bodies 400.
	if err := c.Delete(context.Background(), 999); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown id delete: %v", err)
	}
	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for body, want := range map[string]int{
		`not json`: http.StatusBadRequest,
		`{}`:       http.StatusBadRequest,
		`{"point": [1,2,3], "points": [[1,2,3]]}`: http.StatusBadRequest,
		`{"point": [1,2]}`:                        http.StatusBadRequest, // wrong dims
		`{"point": "word"}`:                       http.StatusBadRequest, // wrong type
		`{"points": [[1,2,3],[9]]}`:               http.StatusBadRequest, // batch validated whole
		`{"point": [0.5, 0.5, 0.5]}`:              http.StatusOK,
	} {
		if got := post("/v1/insert", body); got != want {
			t.Errorf("POST /v1/insert %s → %d, want %d", body, got, want)
		}
	}
	if got := post("/v1/delete", `{"ids": []}`); got != http.StatusOK {
		t.Errorf("empty ids delete → %d", got)
	}
	if got := post("/v1/delete", `{}`); got != http.StatusBadRequest {
		t.Errorf("delete without id → %d", got)
	}
}

// TestServerReadOnlyRejectsWrites: a server over a plain engine answers the
// write endpoints with 409 and a JSON error.
func TestServerReadOnlyRejectsWrites(t *testing.T) {
	_, ts, _, _ := testServer(t, 32, 100, 3, dpserver.Config{})
	c := client.New(ts.URL)
	if _, err := c.Insert(context.Background(), distperm.Vector{1, 2, 3}); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Errorf("insert on read-only server: %v", err)
	}
	if err := c.Delete(context.Background(), 1); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("delete on read-only server: %v", err)
	}
}

// TestServerCacheNotStaleAfterMutation is the invalidation acceptance test:
// a cached kNN answer must not be served stale after an insert or delete
// that changes it.
func TestServerCacheNotStaleAfterMutation(t *testing.T) {
	_, ts, _ := mutableServer(t, 33, 150,
		distperm.MutableConfig{Spec: distperm.Spec{Index: "distperm", K: 6, Seed: 33}},
		dpserver.Config{BatchMax: 4, BatchWait: time.Millisecond, CacheSize: 32})
	c := client.New(ts.URL)
	q := distperm.Vector{5, 5, 5} // far from the uniform [0,1]³ cloud

	// Prime the cache and prove it is serving hits.
	first, err := c.KNN(context.Background(), q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.KNN(context.Background(), q, 2); err != nil {
		t.Fatal(err)
	}
	st0, _ := c.Stats(context.Background())
	if st0.Server.CacheHits == 0 {
		t.Fatalf("cache not engaged: %+v", st0.Server)
	}
	// An insert that becomes the new nearest neighbour must show up
	// immediately, not the cached answer.
	id, err := c.Insert(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.KNN(context.Background(), q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != id || got[0].Distance != 0 {
		t.Fatalf("stale cached answer after insert: %v (pre-insert %v)", got, first)
	}
	// And a delete of that point must stop it from being served — again
	// through the cached-key path.
	if _, err := c.KNN(context.Background(), q, 2); err != nil { // re-prime
		t.Fatal(err)
	}
	if err := c.Delete(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	got, err = c.KNN(context.Background(), q, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.ID == id {
			t.Fatalf("stale cached answer after delete: %v", got)
		}
	}
}

// TestServerMutableSharded: writes route through the Partitioner seam into
// a sharded mutable store, the loadgen's write mix drives it, and answers
// keep matching a from-scratch linear scan after a background fold.
func TestServerMutableSharded(t *testing.T) {
	srv, ts, queries := mutableServer(t, 34, 300,
		distperm.MutableConfig{
			Spec:             distperm.Spec{Index: "distperm", K: 6, Seed: 34},
			Shards:           2,
			Partitioner:      distperm.RoundRobin{},
			RebuildThreshold: 32,
		},
		dpserver.Config{BatchMax: 8, BatchWait: time.Millisecond, CacheSize: 32})
	if info := srv.Info(); info.Shards != 2 || !info.Mutable || info.Base != "sharded" {
		t.Fatalf("sharded mutable IndexInfo %+v", info)
	}
	report, err := client.RunLoad(context.Background(), client.LoadConfig{
		Target:      ts.URL,
		Queries:     queries,
		K:           2,
		Concurrency: 4,
		Duration:    250 * time.Millisecond,
		WriteRatio:  0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("write-mix load saw %d errors: %+v", report.Errors, report)
	}
	if report.Inserts == 0 {
		t.Fatalf("write-mix load never inserted: %+v", report)
	}
	c := client.New(ts.URL)
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The server may have applied a trailing mutation whose response the
	// run deadline cut off, so its counters bound the report from above.
	if st.Mutation == nil || st.Mutation.Inserts < report.Inserts || st.Mutation.Deletes < report.Deletes {
		t.Fatalf("server mutation stats %+v vs report %+v", st.Mutation, report)
	}
	// The load mix deletes its own inserts (delta entries cancel), so the
	// threshold may never trip during the run; a pure insert burst past the
	// threshold must trigger the background fold.
	burst := make([]distperm.Point, 40)
	for i := range burst {
		burst[i] = queries[i%len(queries)]
	}
	if _, err := c.InsertBatch(context.Background(), burst); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err = c.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Mutation.Rebuilds > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background fold never happened: %+v", st.Mutation)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Mutation.RebuildFailures != 0 || st.Mutation.LastRebuildError != "" {
		t.Errorf("fold failed: %+v", st.Mutation)
	}
}

// TestRunLoadWriteRatioValidation: the write mix is validated like the
// other load parameters.
func TestRunLoadWriteRatioValidation(t *testing.T) {
	_, ts, _, queries := testServer(t, 35, 100, 3, dpserver.Config{})
	if _, err := client.RunLoad(context.Background(), client.LoadConfig{
		Target: ts.URL, Queries: queries, K: 1, WriteRatio: 1.5,
	}); err == nil {
		t.Error("write ratio > 1 should error")
	}
}

// TestPointCodec round-trips the wire encoding of both point types and
// rejects garbage.
func TestPointCodec(t *testing.T) {
	for _, p := range []distperm.Point{
		distperm.Vector{0.25, -1.5, 3},
		distperm.String("hello"),
	} {
		raw, err := dpserver.EncodePoint(p)
		if err != nil {
			t.Fatal(err)
		}
		back, err := dpserver.DecodePoint(raw)
		if err != nil {
			t.Fatal(err)
		}
		switch v := p.(type) {
		case distperm.Vector:
			w := back.(distperm.Vector)
			if len(w) != len(v) {
				t.Fatalf("round-trip %v → %v", p, back)
			}
			for i := range v {
				if w[i] != v[i] {
					t.Fatalf("round-trip %v → %v", p, back)
				}
			}
		case distperm.String:
			if back.(distperm.String) != v {
				t.Fatalf("round-trip %v → %v", p, back)
			}
		}
	}
	if _, err := dpserver.EncodePoint(struct{}{}); err == nil {
		t.Error("opaque point should not encode")
	}
	for _, bad := range []string{"", "   ", "7", "{}", "[1, \"x\"]", `"unterminated`} {
		if _, err := dpserver.DecodePoint(json.RawMessage(bad)); err == nil {
			t.Errorf("DecodePoint(%q) should error", bad)
		}
	}
}
