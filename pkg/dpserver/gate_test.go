package dpserver_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distperm/internal/dataset"
	"distperm/pkg/distperm"
	"distperm/pkg/dpserver"
)

// gateServer builds a small Server for publishing through a Gate.
func gateServer(t *testing.T) *dpserver.Server {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, 200, 3))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := distperm.Build(db, distperm.Spec{Index: "distperm", K: 6, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := dpserver.NewFromIndex(db, idx, 2, dpserver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestGateNotReadyThenReady pins the daemon's liveness/readiness contract:
// the bound socket answers from the start, /healthz reports alive (200)
// throughout, and every other endpoint — /readyz included — says 503
// {"status":"loading"} until the store is published, flipping to real
// answers the moment it is.
func TestGateNotReadyThenReady(t *testing.T) {
	gate := dpserver.NewGate()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- gate.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, strings.TrimSpace(string(body))
	}

	// Socket is up, store is not: alive but not ready. /healthz says 200,
	// /readyz and the API say 503 loading.
	if gate.Ready() {
		t.Fatal("gate ready before SetReady")
	}
	if code, body := get("/healthz"); code != http.StatusOK || body != `{"status":"ok"}` {
		t.Fatalf("not-ready GET /healthz = %d %q, want 200 ok", code, body)
	}
	for _, path := range []string{"/readyz", "/v1/index"} {
		code, body := get(path)
		if code != http.StatusServiceUnavailable || body != `{"status":"loading"}` {
			t.Fatalf("not-ready GET %s = %d %q, want 503 loading", path, code, body)
		}
	}
	resp, err := http.Post(base+"/v1/knn", "application/json",
		strings.NewReader(`{"query":[0.5,0.5,0.5],"k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("not-ready kNN = %d, want 503", resp.StatusCode)
	}

	srv := gateServer(t)
	gate.SetReady(srv)
	if !gate.Ready() || gate.Server() != srv {
		t.Fatal("gate did not publish the server")
	}
	if code, body := get("/healthz"); code != http.StatusOK || body != `{"status":"ok"}` {
		t.Fatalf("ready /healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || body != `{"status":"ready"}` {
		t.Fatalf("ready /readyz = %d %q, want 200 ready", code, body)
	}
	resp, err = http.Post(base+"/v1/knn", "application/json",
		strings.NewReader(`{"query":[0.5,0.5,0.5],"k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var qr struct {
		Results []json.RawMessage `json:"results"`
	}
	err = json.NewDecoder(resp.Body).Decode(&qr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(qr.Results) != 2 {
		t.Fatalf("ready kNN = %d (%v), %d results, want 200 with 2", resp.StatusCode, err, len(qr.Results))
	}

	// Graceful drain closes the published server.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Serve did not drain")
	}
}

// TestGateSetReadyAfterShutdown: a store load that finishes after the
// daemon has drained must not leak a running Server. SetReady on a
// shut-down gate closes the Server instead of publishing it, so the
// caller's post-Serve cleanup (e.g. unmapping the store) never races
// live engine workers.
func TestGateSetReadyAfterShutdown(t *testing.T) {
	gate := dpserver.NewGate()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- gate.Serve(ctx, ln) }()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Serve did not return")
	}

	srv := gateServer(t)
	gate.SetReady(srv)
	if gate.Ready() || gate.Server() != nil {
		t.Fatal("shut-down gate published a server")
	}
	// The gate closed the Server on publish: its coalescer and engine
	// reject work, so a request served directly against it fails instead
	// of reaching live workers.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/knn",
		strings.NewReader(`{"query":[0.5,0.5,0.5],"k":2}`))
	srv.ServeHTTP(rec, req)
	if rec.Code == http.StatusOK {
		t.Fatalf("closed server still answered kNN with %d", rec.Code)
	}
}

// TestGateServeClosesWithoutReady: a daemon killed while still loading must
// drain cleanly even though no server was ever published.
func TestGateServeClosesWithoutReady(t *testing.T) {
	gate := dpserver.NewGate()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- gate.Serve(ctx, ln) }()
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Serve did not return")
	}
}
