package dpserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"distperm/pkg/distperm"
)

// The JSON wire format, shared by the server handlers and the Go client
// (pkg/dpserver/client). Points travel as their natural JSON shapes — a
// vector point as an array of numbers, a string point as a JSON string — so
// curl requests read exactly like the data.

// KNNRequest is the body of POST /v1/knn: exactly one of Query (single
// form, eligible for the result cache and the coalescer) or Queries
// (batched form, submitted to the engine as one batch), plus K.
//
// Approx switches the request to the approximate path: the engine probes
// the NProbe nearest permutation-prefix buckets per query instead of
// scanning the whole rank table (NProbe ≤ 0 selects the engine default; ≥
// the directory size degrades to the exact scan with byte-identical
// answers). Approximate requests bypass the result cache and the
// coalescer, and the response carries probe accounting in Approx. With
// Approx false the request is served exactly — byte-identical to a server
// without the feature.
type KNNRequest struct {
	Query   json.RawMessage   `json:"query,omitempty"`
	Queries []json.RawMessage `json:"queries,omitempty"`
	K       int               `json:"k"`
	Approx  bool              `json:"approx,omitempty"`
	NProbe  int               `json:"nprobe,omitempty"`
}

// RangeRequest is the body of POST /v1/range: exactly one of Query or
// Queries, plus the radius R ≥ 0.
type RangeRequest struct {
	Query   json.RawMessage   `json:"query,omitempty"`
	Queries []json.RawMessage `json:"queries,omitempty"`
	R       float64           `json:"r"`
}

// Result is one answer on the wire: a database point ID and its distance to
// the query.
type Result struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
}

// QueryResponse is the body of a successful /v1/knn or /v1/range answer:
// Results for the single form, Batches (one result list per query, in
// request order) for the batched form. Approx is present only on
// approximate kNN answers.
type QueryResponse struct {
	Results []Result    `json:"results,omitempty"`
	Batches [][]Result  `json:"batches,omitempty"`
	Approx  *ApproxWire `json:"approx,omitempty"`
}

// ApproxWire is the probe accounting of one approximate /v1/knn request,
// aggregated over its queries (a single-form request aggregates one).
type ApproxWire struct {
	// NProbe echoes the effective request knob (0 = engine default).
	NProbe int `json:"nprobe"`
	// ProbedBuckets and TotalBuckets sum the per-query probe sets against
	// the directory size; Candidates sums the measured candidate sets.
	ProbedBuckets int `json:"probed_buckets"`
	TotalBuckets  int `json:"total_buckets"`
	Candidates    int `json:"candidates"`
	// CandidateFraction is Candidates over queries·N — the share of the
	// database actually measured (0 when N is unknown).
	CandidateFraction float64 `json:"candidate_fraction"`
	// Exact reports that every query's probe set covered the whole
	// directory, making the answers byte-identical to an exact request.
	Exact bool `json:"exact"`
}

// InsertRequest is the body of POST /v1/insert: exactly one of Point
// (single form) or Points (batched form), in the same wire shapes queries
// use.
type InsertRequest struct {
	Point  json.RawMessage   `json:"point,omitempty"`
	Points []json.RawMessage `json:"points,omitempty"`
}

// DeleteRequest is the body of POST /v1/delete: exactly one of ID (single
// form, distinguished from deleting ID 0 by HasID) or IDs.
type DeleteRequest struct {
	ID  *int  `json:"id,omitempty"`
	IDs []int `json:"ids,omitempty"`
}

// MutateResponse is the body of a successful /v1/insert or /v1/delete
// answer: the stable global IDs granted (inserts) or removed (deletes), ID
// for the single form, IDs for the batched form.
type MutateResponse struct {
	ID  *int  `json:"id,omitempty"`
	IDs []int `json:"ids,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// IndexInfo is the body of GET /v1/index: what is being served.
type IndexInfo struct {
	// Kind is the index's registry kind ("distperm", "sharded", ...).
	Kind string `json:"kind"`
	// Bits is the index's storage cost (the paper's cost model).
	Bits int64 `json:"bits"`
	// N is the database size.
	N int `json:"n"`
	// Metric names the database metric.
	Metric string `json:"metric"`
	// Shards is the scatter-gather shard count (1 for a single engine).
	Shards int `json:"shards"`
	// Workers is the total worker-goroutine count across pools.
	Workers int `json:"workers"`
	// Mutable reports whether the write endpoints (/v1/insert, /v1/delete)
	// are live; Base then names the rebuilt index kind behind the delta.
	Mutable bool   `json:"mutable"`
	Base    string `json:"base,omitempty"`
}

// EngineStatsWire mirrors distperm.EngineStats on the wire, with latency
// percentiles in both nanoseconds (for machines) and formatted durations
// (for humans reading curl output).
type EngineStatsWire struct {
	Queries int64 `json:"queries"`
	// BatchedQueries counts queries served through the engine's sub-batch
	// fast path (batch-native index kernels).
	BatchedQueries int64 `json:"batched_queries"`
	// ApproxQueries counts queries served through the approximate path;
	// ProbedBuckets and ApproxCandidates sum their probe sets and
	// candidate-set sizes.
	ApproxQueries    int64 `json:"approx_queries"`
	ProbedBuckets    int64 `json:"approx_probed_buckets"`
	ApproxCandidates int64 `json:"approx_candidates"`
	// DistinctRows is the index's distinct permutation-row count — the rank
	// table size the prefix-bucket directory is built over (0 when the index
	// does not expose one).
	DistinctRows  int     `json:"distinct_rows"`
	DistanceEvals int64   `json:"distance_evals"`
	MeanEvals     float64 `json:"mean_evals"`
	P50Nanos      int64   `json:"p50_ns"`
	P99Nanos      int64   `json:"p99_ns"`
	P50           string  `json:"p50"`
	P99           string  `json:"p99"`
}

// ServerCounters is the server-level half of GET /v1/stats: HTTP traffic,
// coalescer fill, and result-cache effectiveness.
type ServerCounters struct {
	// Requests counts HTTP requests accepted on any endpoint.
	Requests int64 `json:"requests"`
	// Errors counts requests answered with a non-2xx status.
	Errors int64 `json:"errors"`
	// SingleQueries and BatchQueries split the served queries by request
	// form: singles flow through the cache and coalescer, batches go to the
	// engine as submitted.
	SingleQueries int64 `json:"single_queries"`
	BatchQueries  int64 `json:"batch_queries"`
	// CoalescedBatches and CoalescedQueries describe the micro-batcher:
	// CoalescedQueries single queries were submitted to the engine in
	// CoalescedBatches batches, so their ratio is the mean fill.
	CoalescedBatches int64 `json:"coalesced_batches"`
	CoalescedQueries int64 `json:"coalesced_queries"`
	// CacheHits, CacheMisses, and CacheEntries report the result cache
	// (all zero when the cache is disabled); CacheEvictions counts entries
	// pushed out by capacity pressure.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEntries   int   `json:"cache_entries"`
	CacheEvictions int64 `json:"cache_evictions"`
	// Inserts and Deletes count accepted write requests' mutations;
	// CacheInvalidations counts the cache flushes they forced.
	Inserts            int64 `json:"inserts"`
	Deletes            int64 `json:"deletes"`
	CacheInvalidations int64 `json:"cache_invalidations"`
}

// MutationStatsWire mirrors distperm.MutationStats on the wire — the write
// path's half of GET /v1/stats, present only on mutable servers.
type MutationStatsWire struct {
	Inserts          int64  `json:"inserts"`
	Deletes          int64  `json:"deletes"`
	LiveN            int    `json:"live_n"`
	NextID           int    `json:"next_id"`
	DeltaSize        int    `json:"delta_size"`
	Tombstones       int    `json:"tombstones"`
	PendingWrites    int    `json:"pending_writes"`
	RebuildThreshold int    `json:"rebuild_threshold"`
	DeltaPerShard    []int  `json:"delta_per_shard,omitempty"`
	Rebuilds         int64  `json:"rebuilds"`
	RebuildFailures  int64  `json:"rebuild_failures"`
	LastRebuildNanos int64  `json:"last_rebuild_ns"`
	LastRebuildError string `json:"last_rebuild_error,omitempty"`
}

// WALStatsWire mirrors distperm.WALStats on the wire — the durability
// half of GET /v1/stats, present only when the backend logs writes ahead.
type WALStatsWire struct {
	Dir      string `json:"dir"`
	Sync     string `json:"sync"`
	Seq      uint64 `json:"seq"`
	Segments int    `json:"segments"`
	// AppendedRecords/AppendedBytes count what this process wrote;
	// ReplayedRecords counts what recovery read back, and Recoveries how
	// many times the log was opened or replayed over existing state.
	AppendedRecords    int64  `json:"appended_records"`
	AppendedBytes      int64  `json:"appended_bytes"`
	Syncs              int64  `json:"syncs"`
	ReplayedRecords    int64  `json:"replayed_records"`
	Recoveries         int64  `json:"recoveries"`
	TornBytesTruncated int64  `json:"torn_bytes_truncated"`
	Checkpoints        int64  `json:"checkpoints"`
	CheckpointSeq      uint64 `json:"checkpoint_seq"`
	// Fsync latency, in the same dual shape as engine latency.
	FsyncCount   uint64  `json:"fsyncs"`
	FsyncP50Nano int64   `json:"fsync_p50_ns"`
	FsyncP99Nano int64   `json:"fsync_p99_ns"`
	FsyncP50     string  `json:"fsync_p50"`
	FsyncP99     string  `json:"fsync_p99"`
	FsyncMean    float64 `json:"fsync_mean_seconds"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Engine   EngineStatsWire    `json:"engine"`
	Server   ServerCounters     `json:"server"`
	Mutation *MutationStatsWire `json:"mutation,omitempty"`
	WAL      *WALStatsWire      `json:"wal,omitempty"`
}

// EncodePoint marshals a point into its wire shape: a Vector as a JSON
// array of numbers, a String as a JSON string.
func EncodePoint(p distperm.Point) (json.RawMessage, error) {
	switch v := p.(type) {
	case distperm.Vector:
		return json.Marshal([]float64(v))
	case distperm.String:
		return json.Marshal(string(v))
	default:
		return nil, fmt.Errorf("dpserver: cannot encode %T points", p)
	}
}

// DecodePoint unmarshals a wire point: a JSON array of numbers becomes a
// Vector, a JSON string becomes a String.
func DecodePoint(raw json.RawMessage) (distperm.Point, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("dpserver: empty point")
	}
	switch trimmed[0] {
	case '[':
		var v []float64
		if err := json.Unmarshal(trimmed, &v); err != nil {
			return nil, fmt.Errorf("dpserver: bad vector point: %w", err)
		}
		return distperm.Vector(v), nil
	case '"':
		var s string
		if err := json.Unmarshal(trimmed, &s); err != nil {
			return nil, fmt.Errorf("dpserver: bad string point: %w", err)
		}
		return distperm.String(s), nil
	default:
		return nil, fmt.Errorf("dpserver: point must be a JSON array (vector) or string, got %q", trimmed)
	}
}

// toWire converts engine results to the wire shape.
func toWire(rs []distperm.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Distance: r.Distance}
	}
	return out
}

// mutationWire converts a write-path snapshot to the wire shape.
func mutationWire(ms distperm.MutationStats) *MutationStatsWire {
	return &MutationStatsWire{
		Inserts:          ms.Inserts,
		Deletes:          ms.Deletes,
		LiveN:            ms.LiveN,
		NextID:           ms.NextID,
		DeltaSize:        ms.DeltaSize,
		Tombstones:       ms.Tombstones,
		PendingWrites:    ms.PendingWrites,
		RebuildThreshold: ms.RebuildThreshold,
		DeltaPerShard:    ms.DeltaPerShard,
		Rebuilds:         ms.Rebuilds,
		RebuildFailures:  ms.RebuildFailures,
		LastRebuildNanos: int64(ms.LastRebuild),
		LastRebuildError: ms.LastRebuildError,
	}
}

// walWire converts a write-ahead-log snapshot to the wire shape (nil when
// the backend does not log).
func walWire(ws distperm.WALStats) *WALStatsWire {
	if !ws.Enabled {
		return nil
	}
	p50 := time.Duration(ws.Fsync.Quantile(0.50) * float64(time.Second))
	p99 := time.Duration(ws.Fsync.Quantile(0.99) * float64(time.Second))
	return &WALStatsWire{
		Dir:                ws.Dir,
		Sync:               ws.Sync,
		Seq:                ws.Seq,
		Segments:           ws.Segments,
		AppendedRecords:    ws.AppendedRecords,
		AppendedBytes:      ws.AppendedBytes,
		Syncs:              ws.Syncs,
		ReplayedRecords:    ws.ReplayedRecords,
		Recoveries:         ws.Recoveries,
		TornBytesTruncated: ws.TornBytesTruncated,
		Checkpoints:        ws.Checkpoints,
		CheckpointSeq:      ws.CheckpointSeq,
		FsyncCount:         ws.Fsync.Count,
		FsyncP50Nano:       p50.Nanoseconds(),
		FsyncP99Nano:       p99.Nanoseconds(),
		FsyncP50:           p50.String(),
		FsyncP99:           p99.String(),
		FsyncMean:          ws.Fsync.Mean(),
	}
}

// statsWire converts an engine snapshot to the wire shape.
func statsWire(st distperm.EngineStats) EngineStatsWire {
	return EngineStatsWire{
		Queries:          st.Queries,
		BatchedQueries:   st.BatchedQueries,
		ApproxQueries:    st.ApproxQueries,
		ProbedBuckets:    st.ProbedBuckets,
		ApproxCandidates: st.ApproxCandidates,
		DistinctRows:     st.DistinctRows,
		DistanceEvals:    st.DistanceEvals,
		MeanEvals:        st.MeanEvals,
		P50Nanos:         st.P50.Nanoseconds(),
		P99Nanos:         st.P99.Nanoseconds(),
		P50:              st.P50.String(),
		P99:              st.P99.String(),
	}
}
