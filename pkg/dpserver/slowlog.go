package dpserver

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"distperm/pkg/obs"
)

// slowQueryRecord is one line of the slow-query log: everything needed to
// reconstruct why a single query was slow — what was asked, how the
// coalescer batched it, and what the engine spent on it. Emitted as
// single-line JSON so any log pipeline can parse it.
type slowQueryRecord struct {
	TS           string   `json:"ts"`
	RequestID    string   `json:"request_id"`
	Endpoint     string   `json:"endpoint"`
	K            int      `json:"k,omitempty"`
	Radius       float64  `json:"radius,omitempty"`
	Queries      int      `json:"queries,omitempty"` // client batch size (batch requests)
	BatchSize    int      `json:"batch_size,omitempty"`
	FlushReason  string   `json:"flush_reason,omitempty"`
	CoalescedIDs []string `json:"coalesced_ids,omitempty"`
	Shards       int      `json:"shards,omitempty"`
	Evals        int64    `json:"evals,omitempty"`
	DurationMS   float64  `json:"duration_ms"`
}

// slowLogger emits slow-query records as one JSON object per line. A nil
// logger (threshold unset) is a no-op; the enabled path still costs only a
// clock read per query until the threshold trips.
type slowLogger struct {
	threshold time.Duration
	mu        sync.Mutex
	w         io.Writer
	count     *obs.Counter
}

func newSlowLogger(threshold time.Duration, w io.Writer, count *obs.Counter) *slowLogger {
	if threshold <= 0 || w == nil {
		return nil
	}
	return &slowLogger{threshold: threshold, w: w, count: count}
}

// enabled reports whether the caller should collect trace detail at all.
func (l *slowLogger) enabled() bool { return l != nil }

// emit writes rec if d crossed the threshold.
func (l *slowLogger) emit(rec slowQueryRecord, d time.Duration) {
	if l == nil || d < l.threshold {
		return
	}
	rec.TS = time.Now().UTC().Format(time.RFC3339Nano)
	rec.DurationMS = float64(d) / float64(time.Millisecond)
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.count.Inc()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(append(line, '\n'))
}
