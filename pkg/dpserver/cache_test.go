package dpserver

import (
	"testing"

	"distperm/pkg/distperm"
)

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	rs := func(id int) []distperm.Result { return []distperm.Result{{ID: id}} }
	c.Put("a", 0, rs(1))
	c.Put("b", 0, rs(2))
	if got, ok := c.Get("a"); !ok || got[0].ID != 1 {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	c.Put("c", 0, rs(3))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if got, ok := c.Get("a"); !ok || got[0].ID != 1 {
		t.Errorf("a evicted instead of b: %v, %v", got, ok)
	}
	if got, ok := c.Get("c"); !ok || got[0].ID != 3 {
		t.Errorf("Get(c) = %v, %v", got, ok)
	}
	// Refreshing an existing key replaces its value without growing.
	c.Put("c", 0, rs(4))
	if got, _ := c.Get("c"); got[0].ID != 4 {
		t.Errorf("refresh did not replace: %v", got)
	}
	hits, misses, entries := c.Counters()
	if entries != 2 {
		t.Errorf("entries = %d, want 2", entries)
	}
	if hits != 4 || misses != 1 {
		t.Errorf("hits, misses = %d, %d, want 4, 1", hits, misses)
	}
}

// TestCacheDisabled: capacity < 1 returns a nil cache that misses silently
// — the "cache off" configuration needs no branching at call sites.
func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	if c != nil {
		t.Fatal("NewCache(0) should return nil")
	}
	c.Put("a", 0, nil)
	if _, ok := c.Get("a"); ok {
		t.Error("nil cache hit")
	}
	if hits, misses, entries := c.Counters(); hits != 0 || misses != 0 || entries != 0 {
		t.Error("nil cache counted")
	}
}

// TestCacheInvalidation: Invalidate empties the cache and advances the
// generation, and Put drops results stamped with an older generation — the
// rule that keeps a mutation from being masked by a racing query's fill.
func TestCacheInvalidation(t *testing.T) {
	c := NewCache(4)
	rs := func(id int) []distperm.Result { return []distperm.Result{{ID: id}} }
	gen := c.Generation()
	c.Put("a", gen, rs(1))
	c.Put("b", gen, rs(2))
	c.Invalidate()
	if _, ok := c.Get("a"); ok {
		t.Error("a survived invalidation")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived invalidation")
	}
	// The stale-fill race: a result computed before the invalidation (old
	// generation stamp) must not enter the cache afterwards.
	c.Put("a", gen, rs(1))
	if _, ok := c.Get("a"); ok {
		t.Error("stale-generation Put was stored")
	}
	// A result computed at the new generation stores normally.
	c.Put("a", c.Generation(), rs(9))
	if got, ok := c.Get("a"); !ok || got[0].ID != 9 {
		t.Errorf("current-generation Put lost: %v, %v", got, ok)
	}
	if c.Invalidations() != 1 {
		t.Errorf("Invalidations = %d, want 1", c.Invalidations())
	}
	// The nil (disabled) cache accepts the whole protocol as no-ops.
	var nc *Cache
	if nc.Generation() != 0 || nc.Invalidations() != 0 {
		t.Error("nil cache has state")
	}
	nc.Invalidate()
}

// TestCacheKeys: the canonical encoding separates operations, parameters,
// and point types, and rejects unencodable points.
func TestCacheKeys(t *testing.T) {
	v := distperm.Vector{0.5, 0.25}
	keys := map[string]string{}
	add := func(label, key string, ok bool) {
		if !ok {
			t.Fatalf("%s not cacheable", label)
		}
		if prev, dup := keys[key]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		keys[key] = label
	}
	k1, ok := knnKey(v, 1)
	add("knn k=1", k1, ok)
	k2, ok := knnKey(v, 2)
	add("knn k=2", k2, ok)
	r1, ok := rangeKey(v, 1.0)
	add("range r=1", r1, ok)
	r2, ok := rangeKey(v, 0.5)
	add("range r=0.5", r2, ok)
	s1, ok := knnKey(distperm.String("ab"), 1)
	add("knn string", s1, ok)
	// Same inputs must re-derive the same key.
	again, _ := knnKey(distperm.Vector{0.5, 0.25}, 1)
	if again != k1 {
		t.Error("knnKey not canonical")
	}
	type opaque struct{}
	if _, ok := knnKey(opaque{}, 1); ok {
		t.Error("opaque point should not be cacheable")
	}
}
