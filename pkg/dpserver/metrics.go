package dpserver

import (
	"net/http"
	"time"

	"distperm/pkg/distperm"
	"distperm/pkg/obs"
)

// The metric families GET /metrics exports. Server-level families carry
// the dpserver_ prefix; engine, mutation, and mmap families carry
// distperm_ (they describe the engine layer, whichever server fronts it).
// CI lints the exposition against these prefixes and the _total/_seconds
// suffix conventions (obs.Lint).

// endpoints the per-endpoint families are labelled with. Unknown paths
// fold into "other" so cardinality stays fixed.
var metricEndpoints = []string{"knn", "range", "insert", "delete", "stats", "index", "metrics", "healthz", "readyz", "other"}

// endpointOf maps a request path to its metric label.
func endpointOf(path string) string {
	switch path {
	case "/v1/knn":
		return "knn"
	case "/v1/range":
		return "range"
	case "/v1/insert":
		return "insert"
	case "/v1/delete":
		return "delete"
	case "/v1/stats":
		return "stats"
	case "/v1/index":
		return "index"
	case "/metrics":
		return "metrics"
	case "/healthz":
		return "healthz"
	case "/readyz":
		return "readyz"
	default:
		return "other"
	}
}

// serverMetrics is the server's registered instrument set. Per-endpoint
// instruments are pre-registered for every known endpoint so the hot path
// is a map lookup, never a registration.
type serverMetrics struct {
	reg         *obs.Registry
	requests    map[string]*obs.Counter
	errors      map[string]*obs.Counter
	latency     map[string]*obs.Histogram
	inflight    *obs.Gauge
	slowQueries *obs.Counter
	batchSize   *obs.Histogram
	flushes     map[string]*obs.Counter
}

// newServerMetrics registers every server-level family on reg and the
// cache/engine/mutation/mmap families as read-time funcs over their owners.
func newServerMetrics(reg *obs.Registry, backend Backend, mutable MutableBackend, cache *Cache) *serverMetrics {
	m := &serverMetrics{
		reg:      reg,
		requests: make(map[string]*obs.Counter, len(metricEndpoints)),
		errors:   make(map[string]*obs.Counter, len(metricEndpoints)),
		latency:  make(map[string]*obs.Histogram, len(metricEndpoints)),
		flushes:  make(map[string]*obs.Counter, 4),
	}
	for _, ep := range metricEndpoints {
		ls := obs.Labels{"endpoint": ep}
		m.requests[ep] = reg.Counter("dpserver_requests_total",
			"HTTP requests accepted, by endpoint", ls)
		m.errors[ep] = reg.Counter("dpserver_errors_total",
			"HTTP requests answered with status >= 400, by endpoint", ls)
		m.latency[ep] = reg.Histogram("dpserver_request_duration_seconds",
			"Wall-clock HTTP request latency, by endpoint", obs.DefLatencyBuckets, ls)
	}
	m.inflight = reg.Gauge("dpserver_inflight_requests",
		"HTTP requests currently being served", nil)
	m.slowQueries = reg.Counter("dpserver_slow_queries_total",
		"Queries that exceeded the slow-query threshold", nil)
	m.batchSize = reg.Histogram("dpserver_coalescer_batch_size",
		"Queries per flushed coalescer batch", obs.DefSizeBuckets, nil)
	for _, reason := range []string{FlushFull, FlushTimer, FlushDirect, FlushClose} {
		m.flushes[reason] = reg.Counter("dpserver_coalescer_flushes_total",
			"Coalescer batch flushes, by reason", obs.Labels{"reason": reason})
	}
	// The result cache reads out through funcs: a nil *Cache (cache
	// disabled) answers zeros through its nil-safe accessors.
	reg.CounterFunc("dpserver_cache_hits_total",
		"Result-cache hits", nil,
		func() float64 { h, _, _ := cache.Counters(); return float64(h) })
	reg.CounterFunc("dpserver_cache_misses_total",
		"Result-cache misses", nil,
		func() float64 { _, ms, _ := cache.Counters(); return float64(ms) })
	reg.CounterFunc("dpserver_cache_evictions_total",
		"Result-cache entries evicted by capacity pressure", nil,
		func() float64 { return float64(cache.Evictions()) })
	reg.CounterFunc("dpserver_cache_invalidations_total",
		"Result-cache flushes forced by mutations", nil,
		func() float64 { return float64(cache.Invalidations()) })
	reg.GaugeFunc("dpserver_cache_entries",
		"Result-cache entries currently resident", nil,
		func() float64 { _, _, n := cache.Counters(); return float64(n) })
	registerBackendMetrics(reg, backend, mutable)
	return m
}

// request/error/latency/flush return the instrument for a label,
// defaulting to "other" so an unexpected value cannot nil-deref.
func (m *serverMetrics) request(ep string) *obs.Counter {
	if c, ok := m.requests[ep]; ok {
		return c
	}
	return m.requests["other"]
}

func (m *serverMetrics) error(ep string) *obs.Counter {
	if c, ok := m.errors[ep]; ok {
		return c
	}
	return m.errors["other"]
}

func (m *serverMetrics) observeLatency(ep string, d time.Duration) {
	h, ok := m.latency[ep]
	if !ok {
		h = m.latency["other"]
	}
	h.Observe(d.Seconds())
}

func (m *serverMetrics) flush(reason string) *obs.Counter {
	if c, ok := m.flushes[reason]; ok {
		return c
	}
	return m.flushes[FlushDirect]
}

// latencyBackend and busyBackend are the optional engine surfaces the
// exporter discovers by type assertion — *distperm.Engine,
// *distperm.ShardedEngine, and *distperm.MutableEngine provide both, but
// a minimal custom Backend stays servable without them.
type latencyBackend interface {
	LatencySnapshot() obs.HistogramSnapshot
}

type busyBackend interface {
	BusyWorkers() int
}

// walBackend is the durability surface: *distperm.MutableEngine provides
// it, and its stats report Enabled=false when no log is attached.
type walBackend interface {
	WALStats() distperm.WALStats
}

// registerBackendMetrics exports the engine layer as read-time funcs: a
// scrape reads live counters, no per-query bookkeeping is added here.
func registerBackendMetrics(reg *obs.Registry, backend Backend, mutable MutableBackend) {
	reg.CounterFunc("distperm_engine_queries_total",
		"Queries the engine has answered", nil,
		func() float64 { return float64(backend.Stats().Queries) })
	reg.CounterFunc("distperm_engine_batched_queries_total",
		"Queries served through the sub-batch fast path", nil,
		func() float64 { return float64(backend.Stats().BatchedQueries) })
	reg.CounterFunc("distperm_engine_distance_evals_total",
		"Distance evaluations spent (the paper's cost model)", nil,
		func() float64 { return float64(backend.Stats().DistanceEvals) })
	reg.CounterFunc("distperm_approx_queries_total",
		"Queries served through the approximate prefix-bucket path", nil,
		func() float64 { return float64(backend.Stats().ApproxQueries) })
	reg.CounterFunc("distperm_approx_probed_buckets_total",
		"Prefix buckets probed by approximate queries", nil,
		func() float64 { return float64(backend.Stats().ProbedBuckets) })
	reg.CounterFunc("distperm_approx_candidates_total",
		"Candidate points measured by approximate queries", nil,
		func() float64 { return float64(backend.Stats().ApproxCandidates) })
	reg.GaugeFunc("distperm_engine_distinct_rows",
		"Distinct permutation rows in the served rank table", nil,
		func() float64 { return float64(backend.Stats().DistinctRows) })
	reg.GaugeFunc("distperm_engine_workers",
		"Worker goroutines in the engine pool(s)", nil,
		func() float64 { return float64(backend.Workers()) })
	if bb, ok := backend.(busyBackend); ok {
		reg.GaugeFunc("distperm_engine_busy_workers",
			"Workers currently serving a job", nil,
			func() float64 { return float64(bb.BusyWorkers()) })
	}
	if lb, ok := backend.(latencyBackend); ok {
		reg.HistogramFunc("distperm_engine_query_duration_seconds",
			"Per-query engine latency (merged across shards and epochs)", nil,
			lb.LatencySnapshot)
	}
	if mutable != nil {
		reg.CounterFunc("distperm_mutable_inserts_total",
			"Accepted inserts", nil,
			func() float64 { return float64(mutable.MutationStats().Inserts) })
		reg.CounterFunc("distperm_mutable_deletes_total",
			"Accepted deletes", nil,
			func() float64 { return float64(mutable.MutationStats().Deletes) })
		reg.CounterFunc("distperm_mutable_rebuilds_total",
			"Completed background rebuilds (epoch swaps)", nil,
			func() float64 { return float64(mutable.MutationStats().Rebuilds) })
		reg.CounterFunc("distperm_mutable_rebuild_failures_total",
			"Rebuilds that failed", nil,
			func() float64 { return float64(mutable.MutationStats().RebuildFailures) })
		reg.GaugeFunc("distperm_mutable_delta_size",
			"Inserted points pending the next rebuild", nil,
			func() float64 { return float64(mutable.MutationStats().DeltaSize) })
		reg.GaugeFunc("distperm_mutable_tombstones",
			"Deleted base points pending the next rebuild", nil,
			func() float64 { return float64(mutable.MutationStats().Tombstones) })
		reg.GaugeFunc("distperm_mutable_pending_writes",
			"Rebuild backlog: delta size plus tombstones", nil,
			func() float64 { return float64(mutable.MutationStats().PendingWrites) })
		reg.GaugeFunc("distperm_mutable_live_points",
			"Logical live point count", nil,
			func() float64 { return float64(mutable.MutationStats().LiveN) })
		reg.GaugeFunc("distperm_mutable_last_rebuild_seconds",
			"Duration of the most recent successful rebuild", nil,
			func() float64 { return mutable.MutationStats().LastRebuild.Seconds() })
	}
	if wb, ok := mutable.(walBackend); ok && wb.WALStats().Enabled {
		reg.CounterFunc("distperm_wal_appended_records_total",
			"WAL records appended (logged before the write was acknowledged)", nil,
			func() float64 { return float64(wb.WALStats().AppendedRecords) })
		reg.CounterFunc("distperm_wal_appended_bytes_total",
			"WAL bytes appended", nil,
			func() float64 { return float64(wb.WALStats().AppendedBytes) })
		reg.CounterFunc("distperm_wal_syncs_total",
			"WAL fsync calls issued by the active sync policy", nil,
			func() float64 { return float64(wb.WALStats().Syncs) })
		reg.CounterFunc("distperm_wal_replayed_records_total",
			"WAL records replayed into the engine during startup recovery", nil,
			func() float64 { return float64(wb.WALStats().ReplayedRecords) })
		reg.CounterFunc("distperm_wal_recoveries_total",
			"WAL open/replay recovery passes", nil,
			func() float64 { return float64(wb.WALStats().Recoveries) })
		reg.CounterFunc("distperm_wal_truncated_bytes_total",
			"Torn trailing bytes truncated from the log during recovery", nil,
			func() float64 { return float64(wb.WALStats().TornBytesTruncated) })
		reg.CounterFunc("distperm_wal_checkpoints_total",
			"Durable checkpoints written", nil,
			func() float64 { return float64(wb.WALStats().Checkpoints) })
		reg.GaugeFunc("distperm_wal_seq",
			"Sequence number of the last logged record", nil,
			func() float64 { return float64(wb.WALStats().Seq) })
		reg.GaugeFunc("distperm_wal_checkpoint_seq",
			"Sequence number covered by the newest checkpoint", nil,
			func() float64 { return float64(wb.WALStats().CheckpointSeq) })
		reg.GaugeFunc("distperm_wal_segments",
			"Log segment files currently retained", nil,
			func() float64 { return float64(wb.WALStats().Segments) })
		reg.HistogramFunc("distperm_wal_fsync_duration_seconds",
			"WAL fsync latency", nil,
			func() obs.HistogramSnapshot { return wb.WALStats().Fsync })
	}
	reg.CounterFunc("distperm_mmap_opens_total",
		"Frozen-container opens (process-wide)", nil,
		func() float64 { return float64(distperm.ReadMmapStats().Opens) })
	reg.CounterFunc("distperm_mmap_zero_copy_opens_total",
		"Opens served as true zero-copy mappings", nil,
		func() float64 { return float64(distperm.ReadMmapStats().ZeroCopyOpens) })
	reg.CounterFunc("distperm_mmap_checksum_failures_total",
		"Containers rejected for a section-checksum mismatch", nil,
		func() float64 { return float64(distperm.ReadMmapStats().ChecksumFailures) })
	reg.GaugeFunc("distperm_mmap_mapped_bytes",
		"Bytes currently memory-mapped from frozen containers", nil,
		func() float64 { return float64(distperm.ReadMmapStats().MappedBytes) })
	reg.HistogramFunc("distperm_mmap_open_duration_seconds",
		"Frozen-container open latency", nil,
		func() obs.HistogramSnapshot { return distperm.ReadMmapStats().OpenLatency })
}

// statusWriter captures the response status so ServeHTTP can count
// errors per endpoint after the handler returns.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}
