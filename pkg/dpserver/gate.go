package dpserver

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Gate is the bind-first front of a daemon: it owns the listening socket
// from before the index exists, so a restarting process exposes its port
// immediately — orchestrators see a live socket, not connection refused —
// and answers requests 503 Service Unavailable until SetReady hands it a
// Server. The split between the probes is deliberate: /healthz is liveness
// and answers 200 {"status":"ok"} the moment the socket is bound (the
// process is alive and loading, don't restart it), while /readyz — and
// every other path — reports {"status":"loading"} with a 503 until the
// index is served, the explicit not-ready → ready transition load
// balancers key on. Once ready the Gate is a transparent proxy to the
// Server, readiness checked with one atomic load per request.
type Gate struct {
	srv atomic.Pointer[Server]
}

// gateClosed marks a Gate whose Serve has already shut down: a sentinel
// distinct from both nil (loading) and any published Server, so the
// SetReady/shutdown handoff has no window in which a Server is published
// but never closed.
var gateClosed = new(Server)

// NewGate returns a Gate with no Server: every request answers 503 until
// SetReady.
func NewGate() *Gate { return &Gate{} }

// SetReady publishes s: requests from this point on reach the Server.
// Requests already in flight finish with the loading answer. SetReady after
// the Gate's Serve has shut down is harmless — the Gate closes the Server
// immediately instead of publishing it, so a load racing a shutdown never
// leaks engine workers past Serve's return.
func (g *Gate) SetReady(s *Server) {
	for {
		old := g.srv.Load()
		if old == gateClosed {
			s.Close()
			return
		}
		if g.srv.CompareAndSwap(old, s) {
			return
		}
	}
}

// Ready reports whether a Server has been published.
func (g *Gate) Ready() bool { return g.server() != nil }

// Server returns the published Server, nil before SetReady.
func (g *Gate) Server() *Server { return g.server() }

// server returns the published Server, folding the closed sentinel to nil.
func (g *Gate) server() *Server {
	if s := g.srv.Load(); s != gateClosed {
		return s
	}
	return nil
}

// ServeHTTP implements http.Handler: before SetReady, /healthz answers 200
// (liveness) and everything else 503 {"status":"loading"}; afterwards the
// Server handles the request.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s := g.server(); s != nil {
		s.ServeHTTP(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Path == "/healthz" {
		fmt.Fprintln(w, `{"status":"ok"}`)
		return
	}
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, `{"status":"loading"}`)
}

// Serve answers HTTP on ln until ctx is cancelled, then shuts down like
// Server.Serve: stop accepting, drain in-flight handlers, and close the
// published Server (flush the coalescer, close the engine) if one was set.
// Storage released by the caller after Serve returns — e.g. unmapping a
// frozen container — is therefore unreachable by any handler.
func (g *Gate) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: g}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	// Swapping in the closed sentinel (rather than loading once) makes the
	// shutdown race-free against a concurrent SetReady: whichever side's
	// atomic wins, exactly one of them closes the Server.
	closeSrv := func() {
		if s := g.srv.Swap(gateClosed); s != nil && s != gateClosed {
			s.Close()
		}
	}
	select {
	case err := <-errc:
		closeSrv()
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err := hs.Shutdown(sctx) // in-flight handlers finish before this returns
	closeSrv()
	return err
}
