package dpserver

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"distperm/pkg/distperm"
)

// Cache is a bounded LRU over query results, keyed by a canonical binary
// encoding of (query point, k | radius). It sits in front of the coalescer:
// a hit skips the engine entirely, a miss pays one coalesced query and
// populates the entry. Safe for concurrent use.
//
// Cached result slices are shared between the cache and its callers; they
// are treated as immutable (the server only marshals them).
type Cache struct {
	mu           sync.Mutex
	capacity     int
	ll           *list.List // front = most recent
	items        map[string]*list.Element
	hits, misses int64
}

type cacheEntry struct {
	key     string
	results []distperm.Result
}

// NewCache returns a cache holding at most capacity entries; capacity < 1
// returns nil, and a nil *Cache is a valid always-miss cache (Get misses
// without counting, Put is a no-op), so callers can thread "cache disabled"
// through without branching.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		return nil
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached results for key, marking the entry most recent.
func (c *Cache) Get(key string) ([]distperm.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).results, true
}

// Put stores results under key, evicting the least-recently-used entry when
// the cache is full. Re-putting an existing key refreshes it.
func (c *Cache) Put(key string, results []distperm.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).results = results
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, results: results})
}

// Counters returns the hit/miss counts and the current entry count.
func (c *Cache) Counters() (hits, misses int64, entries int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// knnKey canonically encodes a kNN query for the cache. The bool reports
// whether the point type is encodable; unencodable points simply bypass the
// cache.
func knnKey(q distperm.Point, k int) (string, bool) {
	var buf [9]byte
	buf[0] = 'k'
	binary.LittleEndian.PutUint64(buf[1:], uint64(k))
	return pointKey(buf[:], q)
}

// rangeKey canonically encodes a range query for the cache, keying on the
// exact bit pattern of the radius.
func rangeKey(q distperm.Point, r float64) (string, bool) {
	var buf [9]byte
	buf[0] = 'r'
	binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(r))
	return pointKey(buf[:], q)
}

func pointKey(prefix []byte, q distperm.Point) (string, bool) {
	switch v := q.(type) {
	case distperm.Vector:
		key := make([]byte, len(prefix)+1+8*len(v))
		n := copy(key, prefix)
		key[n] = 'v'
		n++
		for _, x := range v {
			binary.LittleEndian.PutUint64(key[n:], math.Float64bits(x))
			n += 8
		}
		return string(key), true
	case distperm.String:
		return string(prefix) + "s" + string(v), true
	default:
		return "", false
	}
}
