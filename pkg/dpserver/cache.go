package dpserver

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"distperm/pkg/distperm"
)

// Cache is a bounded LRU over query results, keyed by a canonical binary
// encoding of (query point, k | radius). It sits in front of the coalescer:
// a hit skips the engine entirely, a miss pays one coalesced query and
// populates the entry. Safe for concurrent use.
//
// The cache is generation-stamped for mutation safety: Put only stores a
// result computed at the current generation, and Invalidate (called after
// every insert/delete) clears the entries and advances the generation. The
// stamp closes the stale-fill race — a query that read the pre-mutation
// store but finishes after the invalidation carries the old generation, so
// its Put is dropped instead of re-poisoning the cache.
//
// Cached result slices are shared between the cache and its callers; they
// are treated as immutable (the server only marshals them).
type Cache struct {
	mu           sync.Mutex
	capacity     int
	ll           *list.List // front = most recent
	items        map[string]*list.Element
	hits, misses int64
	evictions    int64
	gen          uint64
	invalidates  int64
}

type cacheEntry struct {
	key     string
	results []distperm.Result
}

// NewCache returns a cache holding at most capacity entries; capacity < 1
// returns nil, and a nil *Cache is a valid always-miss cache (Get misses
// without counting, Put is a no-op), so callers can thread "cache disabled"
// through without branching.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		return nil
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached results for key, marking the entry most recent.
func (c *Cache) Get(key string) ([]distperm.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).results, true
}

// Generation returns the stamp a caller must capture before computing a
// result it intends to Put. A nil cache is always at generation 0.
func (c *Cache) Generation() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Invalidate empties the cache and advances the generation, so in-flight
// results computed before the mutation can no longer be stored.
func (c *Cache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.capacity)
	c.gen++
	c.invalidates++
}

// Put stores results under key, evicting the least-recently-used entry when
// the cache is full. Re-putting an existing key refreshes it. The entry is
// dropped when gen is not the current generation: the result was computed
// before a mutation invalidated the cache.
func (c *Cache) Put(key string, gen uint64, results []distperm.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).results = results
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, results: results})
}

// Counters returns the hit/miss counts and the current entry count.
func (c *Cache) Counters() (hits, misses int64, entries int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// Evictions returns how many entries capacity pressure has pushed out
// (invalidation flushes are counted separately, by Invalidations).
func (c *Cache) Evictions() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Invalidations returns how many times the cache has been invalidated.
func (c *Cache) Invalidations() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.invalidates
}

// knnKey canonically encodes a kNN query for the cache. The bool reports
// whether the point type is encodable; unencodable points simply bypass the
// cache.
func knnKey(q distperm.Point, k int) (string, bool) {
	var buf [9]byte
	buf[0] = 'k'
	binary.LittleEndian.PutUint64(buf[1:], uint64(k))
	return pointKey(buf[:], q)
}

// rangeKey canonically encodes a range query for the cache, keying on the
// exact bit pattern of the radius.
func rangeKey(q distperm.Point, r float64) (string, bool) {
	var buf [9]byte
	buf[0] = 'r'
	binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(r))
	return pointKey(buf[:], q)
}

func pointKey(prefix []byte, q distperm.Point) (string, bool) {
	switch v := q.(type) {
	case distperm.Vector:
		key := make([]byte, len(prefix)+1+8*len(v))
		n := copy(key, prefix)
		key[n] = 'v'
		n++
		for _, x := range v {
			binary.LittleEndian.PutUint64(key[n:], math.Float64bits(x))
			n += 8
		}
		return string(key), true
	case distperm.String:
		return string(prefix) + "s" + string(v), true
	default:
		return "", false
	}
}
