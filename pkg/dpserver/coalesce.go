package dpserver

import (
	"errors"
	"math"
	"sync"
	"time"

	"distperm/pkg/distperm"
)

// Backend is the slice of the query-engine surface the serving layer needs;
// *distperm.Engine, *distperm.ShardedEngine, and *distperm.MutableEngine
// all satisfy it.
type Backend interface {
	KNNBatch(qs []distperm.Point, k int) ([][]distperm.Result, error)
	RangeBatch(qs []distperm.Point, r float64) ([][]distperm.Result, error)
	Stats() distperm.EngineStats
	Workers() int
	Close()
}

// ApproxBackend is the approximate-search surface, discovered by type
// assertion like the other optional capabilities; *distperm.Engine,
// *distperm.ShardedEngine, and *distperm.MutableEngine all provide it. A
// Server whose backend lacks it (or whose index lacks the underlying
// capability — distperm.ErrNoApprox) answers approx requests 400.
type ApproxBackend interface {
	KNNApproxBatch(qs []distperm.Point, k, nprobe int) ([][]distperm.Result, []distperm.ApproxStats, error)
	ApproxBuckets() int
}

// MutableBackend extends Backend with the live write path;
// *distperm.MutableEngine satisfies it. A Server whose backend is mutable
// serves POST /v1/insert and /v1/delete.
type MutableBackend interface {
	Backend
	Insert(p distperm.Point) (int, error)
	Delete(id int) error
	MutationStats() distperm.MutationStats
}

// ErrCoalescerClosed is returned by KNN/Range after Close.
var ErrCoalescerClosed = errors.New("dpserver: coalescer is closed")

// Coalescer turns concurrent single-query calls into engine batches: calls
// sharing the same parameters (k for kNN, radius for range) accumulate in a
// pending batch that flushes when it reaches max queries or when wait
// elapses since the batch opened, whichever comes first. Every caller gets
// exactly the answer a direct one-query engine batch would return, but the
// engine sees max-query batches, amortising the per-batch submission cost
// (in-flight registration, WaitGroup traffic, lock acquisitions) that
// dominates per-request serving at high concurrency.
//
// All methods are safe for concurrent use. Close flushes the pending
// batches through the backend so no caller is left waiting, then refuses
// further calls; it does not close the backend.
type Coalescer struct {
	backend Backend
	max     int
	wait    time.Duration
	// OnFlush, when set before the first call, observes every flushed
	// batch: its size and why it flushed ("full", "timer", "direct",
	// "close"). The server hooks its batch-size histogram and flush-reason
	// counters here.
	OnFlush func(size int, reason string)

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch
	closed  bool
	batches int64 // flushed batches
	queries int64 // queries enqueued
}

// Flush reasons reported to OnFlush and in FlushInfo.
const (
	// FlushFull: the batch reached BatchMax and the filling caller ran it.
	FlushFull = "full"
	// FlushTimer: BatchWait elapsed before the batch filled.
	FlushTimer = "timer"
	// FlushDirect: no batching window was configured; the call ran alone.
	FlushDirect = "direct"
	// FlushClose: Close flushed a still-open batch during shutdown.
	FlushClose = "close"
)

// FlushInfo describes the engine batch a coalesced call was answered in —
// the slow-query log's view of what the request shared its fate with.
type FlushInfo struct {
	// Size is how many queries the flushed batch carried.
	Size int
	// Reason is why the batch flushed: one of the Flush* constants.
	Reason string
	// RequestIDs holds the request IDs coalesced into the batch, capped at
	// coalesceTracedIDs entries to bound the log line.
	RequestIDs []string
}

// coalesceTracedIDs caps FlushInfo.RequestIDs.
const coalesceTracedIDs = 16

// batchKey groups coalescable calls: queries answer as one engine batch
// only if they share the operation and its parameter. The radius is keyed
// by its bit pattern, not its float value — a NaN radius must still equal
// itself as a map key, or its pending batch could never be found again.
type batchKey struct {
	op byte // 'k' (kNN) or 'r' (range)
	k  int
	r  uint64 // math.Float64bits of the radius
}

// pendingBatch accumulates the queries of one future engine batch. Appends
// happen under the coalescer lock while the batch is in the pending map;
// the flusher removes it from the map (under the same lock) before reading
// qs, so flush needs no further synchronisation. done closes after out,
// err, and info are set, so waiters read them without locking.
type pendingBatch struct {
	qs    []distperm.Point
	ids   []string // request IDs of the coalesced calls, capped
	out   [][]distperm.Result
	err   error
	info  FlushInfo
	done  chan struct{}
	timer *time.Timer
}

// NewCoalescer batches single queries for backend, flushing at max queries
// or after wait, whichever comes first. max < 1 is treated as 1 and wait ≤ 0
// as "no window" — both degrade to per-call submission, which keeps the
// zero Config servable.
func NewCoalescer(backend Backend, max int, wait time.Duration) *Coalescer {
	if max < 1 {
		max = 1
	}
	if wait < 0 {
		wait = 0
	}
	return &Coalescer{
		backend: backend,
		max:     max,
		wait:    wait,
		pending: make(map[batchKey]*pendingBatch),
	}
}

// KNN answers one kNN query through the coalescer: identical to
// backend.KNNBatch([]Point{q}, k) with the submission cost shared across
// the batch it lands in.
func (c *Coalescer) KNN(q distperm.Point, k int) ([]distperm.Result, error) {
	rs, _, err := c.enqueue(batchKey{op: 'k', k: k}, q, "")
	return rs, err
}

// Range answers one range query through the coalescer.
func (c *Coalescer) Range(q distperm.Point, r float64) ([]distperm.Result, error) {
	rs, _, err := c.enqueue(batchKey{op: 'r', r: math.Float64bits(r)}, q, "")
	return rs, err
}

// KNNTraced is KNN carrying the caller's request ID into the batch and
// reporting, alongside the answer, which flush served it — the tracing
// surface the server's slow-query log reads.
func (c *Coalescer) KNNTraced(q distperm.Point, k int, reqID string) ([]distperm.Result, FlushInfo, error) {
	return c.enqueue(batchKey{op: 'k', k: k}, q, reqID)
}

// RangeTraced is Range with request-ID tracing; see KNNTraced.
func (c *Coalescer) RangeTraced(q distperm.Point, r float64, reqID string) ([]distperm.Result, FlushInfo, error) {
	return c.enqueue(batchKey{op: 'r', r: math.Float64bits(r)}, q, reqID)
}

// Counters reports how many engine batches have been flushed and how many
// queries they carried; their ratio is the achieved fill.
func (c *Coalescer) Counters() (batches, queries int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches, c.queries
}

func (c *Coalescer) enqueue(key batchKey, q distperm.Point, reqID string) ([]distperm.Result, FlushInfo, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, FlushInfo{}, ErrCoalescerClosed
	}
	b, open := c.pending[key]
	if !open {
		b = &pendingBatch{done: make(chan struct{})}
		if c.max > 1 && c.wait > 0 {
			c.pending[key] = b
			open = true
			b.timer = time.AfterFunc(c.wait, func() { c.flushTimed(key, b) })
		}
		// Otherwise there is no batching window: the batch never enters the
		// pending map and this call flushes it alone below.
	}
	idx := len(b.qs)
	b.qs = append(b.qs, q)
	if reqID != "" && len(b.ids) < coalesceTracedIDs {
		b.ids = append(b.ids, reqID)
	}
	c.queries++
	full := len(b.qs) >= c.max || !open
	if full && open {
		delete(c.pending, key)
	}
	c.mu.Unlock()

	if full {
		// The caller that filled the batch runs it; the timer, if racing,
		// sees the batch gone from the pending map and stands down.
		if b.timer != nil {
			b.timer.Stop()
		}
		reason := FlushFull
		if !open {
			reason = FlushDirect
		}
		c.flush(key, b, reason)
	}
	<-b.done
	if b.err != nil {
		return nil, b.info, b.err
	}
	return b.out[idx], b.info, nil
}

// flushTimed is the wait-window path: flush the batch if the fill path has
// not already taken it.
func (c *Coalescer) flushTimed(key batchKey, b *pendingBatch) {
	c.mu.Lock()
	if c.pending[key] != b {
		c.mu.Unlock()
		return
	}
	delete(c.pending, key)
	c.mu.Unlock()
	c.flush(key, b, FlushTimer)
}

// flush submits the batch to the backend and wakes its waiters. The caller
// must have removed b from the pending map (or never published it), so b.qs
// is frozen here.
func (c *Coalescer) flush(key batchKey, b *pendingBatch, reason string) {
	b.info = FlushInfo{Size: len(b.qs), Reason: reason, RequestIDs: b.ids}
	defer close(b.done)
	if key.op == 'k' {
		b.out, b.err = c.backend.KNNBatch(b.qs, key.k)
	} else {
		b.out, b.err = c.backend.RangeBatch(b.qs, math.Float64frombits(key.r))
	}
	c.mu.Lock()
	c.batches++
	c.mu.Unlock()
	if c.OnFlush != nil {
		c.OnFlush(len(b.qs), reason)
	}
}

// Close flushes every pending batch through the backend — callers blocked
// in KNN/Range get real answers (or the backend's error, if it is already
// closed) — and fails calls arriving afterwards with ErrCoalescerClosed.
// Idempotent; does not close the backend.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	stale := c.pending
	c.pending = nil
	c.mu.Unlock()
	for key, b := range stale {
		if b.timer != nil {
			b.timer.Stop()
		}
		c.flush(key, b, FlushClose)
	}
}
