package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format v0.0.4, families sorted by name, one # HELP / # TYPE
// header per family. Func-backed series are read at write time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(w *bufio.Writer, f *family, s *series) {
	switch f.typ {
	case typeCounter:
		v := s.fn
		if v == nil {
			c := s.counter
			v = func() float64 { return float64(c.Value()) }
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels, "", 0), formatFloat(v()))
	case typeGauge:
		v := s.fn
		if v == nil {
			g := s.gauge
			v = func() float64 { return g.Value() }
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels, "", 0), formatFloat(v()))
	case typeHistogram:
		var snap HistogramSnapshot
		if s.histFn != nil {
			snap = s.histFn()
		} else {
			snap = s.hist.Snapshot()
		}
		var cum uint64
		for i, edge := range snap.Edges {
			if i < len(snap.Buckets) {
				cum += snap.Buckets[i]
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(s.labels, "le", edge), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(s.labels, "le", math.Inf(1)), snap.Count)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(s.labels, "", 0), formatFloat(snap.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(s.labels, "", 0), snap.Count)
	}
}

// formatLabels renders {k="v",...} with keys sorted, appending an `le`
// label when leKey is non-empty. Returns "" for an empty set.
func formatLabels(ls Labels, leKey string, le float64) string {
	if len(ls) == 0 && leKey == "" {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(ls[k]))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(formatFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a value the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
