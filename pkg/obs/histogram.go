package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with inclusive upper edges
// (Prometheus `le` semantics): an observation v lands in the first
// bucket whose edge >= v, or in the overflow bucket past the last edge.
// Observe and Snapshot are lock-free and safe for concurrent use.
//
// Snapshot is deliberately not a torn-read-free atomic cut: buckets are
// read one by one while observations continue, so a snapshot's Count can
// trail the sum of a later snapshot's buckets. Each individual value is
// still an atomic read and every observation lands in exactly one
// snapshot eventually — the monotonic guarantee Prometheus scrapes need.
type Histogram struct {
	edges   []float64 // ascending upper edges; immutable after construction
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending bucket upper
// edges. It panics on unsorted or empty edges (a construction-time
// programming error).
func NewHistogram(edges []float64) *Histogram {
	if len(edges) == 0 {
		panic("obs: histogram needs at least one bucket edge")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			panic("obs: histogram edges must be strictly ascending")
		}
	}
	cp := make([]float64, len(edges))
	copy(cp, edges)
	return &Histogram{edges: cp, buckets: make([]atomic.Uint64, len(edges)+1)}
}

// ExponentialBuckets returns n upper edges start, start·factor,
// start·factor², …
func ExponentialBuckets(start, factor float64, n int) []float64 {
	edges := make([]float64, n)
	v := start
	for i := range edges {
		edges[i] = v
		v *= factor
	}
	return edges
}

// DefLatencyBuckets spans 1µs to ~16.8s in powers of two — wide enough
// for both the sub-millisecond kernel path and cold mmap opens.
var DefLatencyBuckets = ExponentialBuckets(1e-6, 2, 25)

// DefSizeBuckets spans 1 to 4096 in powers of two, for batch sizes and
// fan-out counts.
var DefSizeBuckets = ExponentialBuckets(1, 2, 13)

// Observe records v. No-op on nil. NaN observations count toward the
// overflow bucket so Count stays consistent with the bucket sum.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// SearchFloat64s finds the first edge >= v for the inclusive-le
	// bucket; the NaN comparison false-everywhere quirk routes NaN to
	// the overflow bucket naturally.
	i := sort.SearchFloat64s(h.edges, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram. The zero
// value is a valid empty snapshot that any snapshot can be merged into.
type HistogramSnapshot struct {
	Edges   []float64 // bucket upper edges, ascending
	Buckets []uint64  // len(Edges)+1; last is the overflow bucket
	Count   uint64
	Sum     float64
}

// Snapshot copies the current bucket counts. An empty snapshot on nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Edges:   h.edges,
		Buckets: make([]uint64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Merge folds o into s. A zero-value s adopts o's shape; otherwise the
// edge sets must match (same registry-wide bucket layout), which is a
// programming error if violated, hence the panic.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if len(o.Buckets) == 0 {
		return
	}
	if len(s.Buckets) == 0 {
		s.Edges = o.Edges
		s.Buckets = make([]uint64, len(o.Buckets))
		copy(s.Buckets, o.Buckets)
		s.Count = o.Count
		s.Sum = o.Sum
		return
	}
	if len(s.Edges) != len(o.Edges) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i, e := range s.Edges {
		if e != o.Edges[i] {
			panic("obs: merging histograms with different bucket layouts")
		}
	}
	for i, b := range o.Buckets {
		s.Buckets[i] += b
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile returns the upper edge of the bucket holding the nearest-rank
// sample for q in (0,1] — the same rank definition as
// distperm.Percentile (index ⌈q·n⌉ in 1-based order), so histogram
// percentiles and the engine's exact-sample percentiles agree whenever
// the observed values sit on bucket edges. Observations past the last
// edge report the last finite edge (the histogram cannot resolve them
// further). Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Edges) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			if i >= len(s.Edges) {
				return s.Edges[len(s.Edges)-1]
			}
			return s.Edges[i]
		}
	}
	return s.Edges[len(s.Edges)-1]
}

// Mean returns Sum/Count, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}
