// Package obs is the repo's dependency-free telemetry core: atomic
// counters, gauges, and fixed-bucket latency histograms collected in a
// Registry that exposes itself in Prometheus text format (v0.0.4).
//
// Everything is safe for concurrent use and safe on nil receivers — a
// nil *Counter / *Gauge / *Histogram is a no-op sink, so code paths can
// be instrumented unconditionally and callers that do not care about
// telemetry simply pass no registry.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is a static label set attached to one series. Label values are
// fixed at registration; per-call label values are deliberately not
// supported (the serving stack's cardinality is known at construction).
type Labels map[string]string

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n < 0 is ignored: counters are monotonic). No-op on nil.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count. 0 on nil.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (may be negative). No-op on nil.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value. 0 on nil.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metricType is the exposition TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labelled member of a family. Exactly one of the value
// sources is set: a static metric (counter/gauge/hist) or a read-time
// function (fn/histFn).
type series struct {
	labels  Labels
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64           // counterFunc / gaugeFunc
	histFn  func() HistogramSnapshot // histogramFunc
}

// family groups all series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series
	byKey  map[string]bool // registered label signatures, for dup detection
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use; all constructors are no-ops
// returning nil metrics when the Registry itself is nil.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// labelKey is a canonical signature of a label set, used only for
// duplicate detection within a family.
func labelKey(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, ls[k])
	}
	return b.String()
}

// register adds one series to the named family, creating the family on
// first use. It panics on a (name, labels) duplicate or on re-use of a
// name with a different type or help: both are construction-time
// programming errors, not runtime conditions.
func (r *Registry) register(name, help string, typ metricType, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byKey: map[string]bool{}}
		r.fams[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: metric %q registered with conflicting help", name))
	}
	key := labelKey(s.labels)
	if f.byKey[key] {
		panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, key))
	}
	f.byKey[key] = true
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series. Returns nil (a valid
// no-op counter) when r is nil.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, typeCounter, &series{labels: labels, counter: c})
	return c
}

// Gauge registers and returns a gauge series. Returns nil when r is nil.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(name, help, typeGauge, &series{labels: labels, gauge: g})
	return g
}

// Histogram registers and returns a histogram series with the given
// bucket upper edges (ascending). Returns nil when r is nil.
func (r *Registry) Histogram(name, help string, edges []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	h := NewHistogram(edges)
	r.register(name, help, typeHistogram, &series{labels: labels, hist: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for subsystems that already keep their
// own monotonic counts (engine stats, mutation stats).
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, typeCounter, &series{labels: labels, fn: fn})
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, typeGauge, &series{labels: labels, fn: fn})
}

// HistogramFunc registers a histogram whose snapshot is produced by fn
// at exposition time — the bridge for engines that aggregate their own
// latency histograms across shards or epochs.
func (r *Registry) HistogramFunc(name, help string, labels Labels, fn func() HistogramSnapshot) {
	if r == nil {
		return
	}
	r.register(name, help, typeHistogram, &series{labels: labels, histFn: fn})
}

// ServeHTTP exposes the registry in Prometheus text format.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
