package obs

import (
	"fmt"
	"strings"
)

// Lint checks parsed families against the repo's naming conventions:
// every family name carries one of the allowed prefixes, counters end in
// _total, histograms end in a unit suffix (_seconds, _bytes, _size), and
// gauges never end in _total. Returns one message per violation; an
// empty slice means the exposition is clean. CI runs this against the
// live /metrics output.
func Lint(fams []Family, prefixes []string) []string {
	var problems []string
	for _, f := range fams {
		if !validName(f.Name) {
			problems = append(problems, fmt.Sprintf("%s: invalid metric name", f.Name))
			continue
		}
		prefixed := false
		for _, p := range prefixes {
			if strings.HasPrefix(f.Name, p) {
				prefixed = true
				break
			}
		}
		if !prefixed {
			problems = append(problems,
				fmt.Sprintf("%s: missing required prefix (one of %s)", f.Name, strings.Join(prefixes, ", ")))
		}
		switch f.Type {
		case "counter":
			if !strings.HasSuffix(f.Name, "_total") {
				problems = append(problems, fmt.Sprintf("%s: counter must end in _total", f.Name))
			}
		case "gauge":
			if strings.HasSuffix(f.Name, "_total") {
				problems = append(problems, fmt.Sprintf("%s: gauge must not end in _total", f.Name))
			}
		case "histogram":
			if !strings.HasSuffix(f.Name, "_seconds") &&
				!strings.HasSuffix(f.Name, "_bytes") &&
				!strings.HasSuffix(f.Name, "_size") {
				problems = append(problems,
					fmt.Sprintf("%s: histogram must end in a unit suffix (_seconds, _bytes, _size)", f.Name))
			}
		}
		if f.Help == "" {
			problems = append(problems, fmt.Sprintf("%s: missing HELP text", f.Name))
		}
	}
	return problems
}
