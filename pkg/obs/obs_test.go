package obs_test

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"distperm/pkg/distperm"
	"distperm/pkg/obs"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("t_ops_total", "ops", nil)
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("t_temp", "temp", nil)
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	// nil metrics are valid no-op sinks
	var nc *obs.Counter
	var ng *obs.Gauge
	var nh *obs.Histogram
	nc.Inc()
	ng.Add(1)
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Snapshot().Count != 0 {
		t.Fatal("nil metrics must read zero")
	}
	// nil registry constructors return nil metrics
	var nr *obs.Registry
	if nr.Counter("x_total", "", nil) != nil || nr.Gauge("x", "", nil) != nil ||
		nr.Histogram("x_seconds", "", obs.DefLatencyBuckets, nil) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	if err := nr.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry write: %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("dup_total", "d", obs.Labels{"a": "1"})
	r.Counter("dup_total", "d", obs.Labels{"a": "2"}) // distinct labels: fine
	mustPanic(t, func() { r.Counter("dup_total", "d", obs.Labels{"a": "1"}) })
	mustPanic(t, func() { r.Gauge("dup_total", "d", nil) })       // type clash
	mustPanic(t, func() { r.Counter("dup_total", "other", nil) }) // help clash
	mustPanic(t, func() { obs.NewHistogram(nil) })                // no edges
	mustPanic(t, func() { obs.NewHistogram([]float64{2, 1}) })    // unsorted
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// TestQuantileMatchesPercentile pins the histogram quantile to
// distperm.Percentile's nearest-rank semantics: observing samples that
// sit exactly on bucket edges, both must return identical values for
// every quantile the serving stack reports.
func TestQuantileMatchesPercentile(t *testing.T) {
	edges := obs.ExponentialBuckets(1e-6, 2, 25)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		h := obs.NewHistogram(edges)
		samples := make([]time.Duration, n)
		for i := range samples {
			v := edges[rng.Intn(len(edges))]
			samples[i] = time.Duration(math.Round(v * 1e9))
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		snap := h.Snapshot()
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0} {
			want := distperm.Percentile(samples, q)
			got := time.Duration(math.Round(snap.Quantile(q) * 1e9))
			if got != want {
				t.Fatalf("trial %d n=%d q=%g: histogram %v, Percentile %v", trial, n, q, got, want)
			}
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	edges := []float64{1, 2, 4, 8}
	a := obs.NewHistogram(edges)
	b := obs.NewHistogram(edges)
	for _, v := range []float64{0.5, 1, 3, 100} {
		a.Observe(v)
	}
	for _, v := range []float64{2, 7, 9} {
		b.Observe(v)
	}
	var m obs.HistogramSnapshot
	m.Merge(a.Snapshot()) // zero value adopts shape
	m.Merge(b.Snapshot())
	if m.Count != 7 {
		t.Fatalf("merged count = %d, want 7", m.Count)
	}
	if want := 0.5 + 1 + 3 + 100 + 2 + 7 + 9; m.Sum != want {
		t.Fatalf("merged sum = %g, want %g", m.Sum, want)
	}
	var cum uint64
	for _, c := range m.Buckets {
		cum += c
	}
	if cum != m.Count {
		t.Fatalf("bucket sum %d != count %d", cum, m.Count)
	}
	// merged quantile sees both sides: the max finite edge holds the tail
	if got := m.Quantile(1.0); got != 8 {
		t.Fatalf("q1.0 = %g, want 8 (last finite edge)", got)
	}
	mustPanic(t, func() {
		o := obs.NewHistogram([]float64{1, 2}).Snapshot()
		m.Merge(o)
	})
	// merging an empty snapshot is a no-op
	before := m.Count
	m.Merge(obs.HistogramSnapshot{})
	if m.Count != before {
		t.Fatal("empty merge changed count")
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("rt_requests_total", "requests served", obs.Labels{"endpoint": "knn"})
	c.Add(42)
	r.Counter("rt_requests_total", "requests served", obs.Labels{"endpoint": "range"}).Add(7)
	g := r.Gauge("rt_inflight", "in-flight requests", nil)
	g.Set(3)
	h := r.Histogram("rt_latency_seconds", "request latency", []float64{0.001, 0.01, 0.1}, obs.Labels{"endpoint": "knn"})
	for _, v := range []float64{0.0005, 0.002, 0.05, 5} {
		h.Observe(v)
	}
	r.GaugeFunc("rt_mapped_bytes", "bytes mapped", nil, func() float64 { return 4096 })
	r.CounterFunc("rt_evals_total", "distance evals", nil, func() float64 { return 123 })
	r.HistogramFunc("rt_open_seconds", "open latency", nil, func() obs.HistogramSnapshot {
		hh := obs.NewHistogram([]float64{1, 2})
		hh.Observe(1.5)
		return hh.Snapshot()
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	fams, err := obs.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, text)
	}
	byName := map[string]obs.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["rt_requests_total"]; f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("rt_requests_total = %+v", f)
	}
	var knn float64
	for _, s := range byName["rt_requests_total"].Samples {
		if s.Labels["endpoint"] == "knn" {
			knn = s.Value
		}
	}
	if knn != 42 {
		t.Fatalf("knn counter = %g, want 42", knn)
	}
	lat := byName["rt_latency_seconds"]
	if lat.Type != "histogram" {
		t.Fatalf("latency type = %q", lat.Type)
	}
	var count, sum float64
	for _, s := range lat.Samples {
		switch s.Name {
		case "rt_latency_seconds_count":
			count = s.Value
		case "rt_latency_seconds_sum":
			sum = s.Value
		}
	}
	if count != 4 || math.Abs(sum-5.0525) > 1e-9 {
		t.Fatalf("count=%g sum=%g", count, sum)
	}
	if byName["rt_mapped_bytes"].Samples[0].Value != 4096 {
		t.Fatal("GaugeFunc value lost in round trip")
	}
	// families arrive name-sorted
	for i := 1; i < len(fams); i++ {
		if fams[i].Name < fams[i-1].Name {
			t.Fatalf("families not sorted: %s before %s", fams[i-1].Name, fams[i].Name)
		}
	}
}

func TestParserStrictness(t *testing.T) {
	bad := []string{
		"no_type_decl 1\n",
		"# TYPE h histogram\nh 1\n",                 // histogram sample without suffix
		"# TYPE x counter\nx 1\n# TYPE x counter\n", // duplicate TYPE
		"# TYPE h histogram\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"1\"} 4\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n", // edges not ascending
		"# TYPE h histogram\nh_bucket{le=\"1\"} 4\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",                       // decreasing cumulative
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n",                       // +Inf != count
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n",                                                // missing +Inf
	}
	for _, text := range bad {
		if _, err := obs.ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Fatalf("parser accepted invalid exposition:\n%s", text)
		}
	}
	// label escapes survive
	fams, err := obs.ParsePrometheus(strings.NewReader(
		"# TYPE esc_total counter\nesc_total{msg=\"a\\\"b\\\\c\\nd\"} 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams[0].Samples[0].Labels["msg"]; got != "a\"b\\c\nd" {
		t.Fatalf("escaped label = %q", got)
	}
}

func TestLint(t *testing.T) {
	good := []obs.Family{
		{Name: "dpserver_requests_total", Type: "counter", Help: "x"},
		{Name: "distperm_engine_query_duration_seconds", Type: "histogram", Help: "x"},
		{Name: "dpserver_cache_entries", Type: "gauge", Help: "x"},
	}
	if probs := obs.Lint(good, []string{"dpserver_", "distperm_"}); len(probs) != 0 {
		t.Fatalf("clean families flagged: %v", probs)
	}
	bad := []obs.Family{
		{Name: "requests_total", Type: "counter", Help: "x"},     // no prefix
		{Name: "dpserver_requests", Type: "counter", Help: "x"},  // counter without _total
		{Name: "dpserver_busy_total", Type: "gauge", Help: "x"},  // gauge with _total
		{Name: "dpserver_latency", Type: "histogram", Help: "x"}, // histogram without unit
		{Name: "dpserver_ok_total", Type: "counter"},             // missing help
	}
	probs := obs.Lint(bad, []string{"dpserver_", "distperm_"})
	if len(probs) != 5 {
		t.Fatalf("want 5 problems, got %d: %v", len(probs), probs)
	}
}

// TestConcurrentObserveExport is the -race storm: writers hammer every
// metric type while readers snapshot and export, proving no torn reads
// and that post-quiesce totals are exact.
func TestConcurrentObserveExport(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("storm_ops_total", "ops", nil)
	g := r.Gauge("storm_level", "level", nil)
	h := r.Histogram("storm_latency_seconds", "lat", obs.DefLatencyBuckets, nil)

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ { // readers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := h.Snapshot()
				var cum uint64
				for _, b := range snap.Buckets {
					cum += b
				}
				// count is read before buckets: a concurrent snapshot may
				// see more bucket increments than counted, never fewer.
				if cum < snap.Count {
					t.Error("snapshot lost observations: bucket sum < count")
					return
				}
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Errorf("export: %v", err)
					return
				}
				if _, err := obs.ParsePrometheus(&buf); err != nil {
					t.Errorf("export unparsable mid-storm: %v", err)
					return
				}
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(rng.Float64() * 0.01)
			}
		}(int64(w))
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != writers*perWriter {
		t.Fatalf("gauge = %g, want %d", got, writers*perWriter)
	}
	snap := h.Snapshot()
	if snap.Count != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", snap.Count, writers*perWriter)
	}
	var cum uint64
	for _, b := range snap.Buckets {
		cum += b
	}
	if cum != snap.Count {
		t.Fatalf("bucket sum %d != count %d after quiesce", cum, snap.Count)
	}
}

// TestHistogramReconstruction: a histogram written to the exposition format
// and parsed back yields, via Family.HistogramSnapshot, exactly the
// snapshot that produced it — edges, per-bucket counts, count, and sum —
// so a scraper's quantiles equal the server's.
func TestHistogramReconstruction(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("recon_seconds", "round-trip", obs.ExponentialBuckets(0.001, 4, 6), obs.Labels{"endpoint": "knn"})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		h.Observe(rng.Float64() * 5)
	}
	want := h.Snapshot()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var fam obs.Family
	for _, f := range fams {
		if f.Name == "recon_seconds" {
			fam = f
		}
	}
	got, ok := fam.HistogramSnapshot(obs.Labels{"endpoint": "knn"})
	if !ok {
		t.Fatal("no snapshot reconstructed")
	}
	if _, ok := fam.HistogramSnapshot(nil); ok {
		t.Fatal("unlabelled snapshot reconstructed from a labelled family")
	}
	if got.Count != want.Count || math.Abs(got.Sum-want.Sum) > 1e-9 {
		t.Fatalf("count/sum = %d/%g, want %d/%g", got.Count, got.Sum, want.Count, want.Sum)
	}
	if len(got.Edges) != len(want.Edges) || len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("shape %d/%d edges, %d/%d buckets", len(got.Edges), len(want.Edges), len(got.Buckets), len(want.Buckets))
	}
	for i := range want.Edges {
		if math.Abs(got.Edges[i]-want.Edges[i]) > 1e-12 {
			t.Fatalf("edge[%d] = %g, want %g", i, got.Edges[i], want.Edges[i])
		}
	}
	for i := range want.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, got.Buckets[i], want.Buckets[i])
		}
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q%g = %g, want %g", q, got.Quantile(q), want.Quantile(q))
		}
	}
}
