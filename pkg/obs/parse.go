package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string // full sample name, including _bucket/_sum/_count suffixes
	Labels Labels
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | untyped
	Samples []Sample
}

// ParsePrometheus reads text exposition format strictly: every sample
// must belong to a family declared by a preceding # TYPE line, histogram
// samples must use the _bucket/_sum/_count suffixes, and each
// histogram's buckets must be cumulative non-decreasing with the +Inf
// bucket equal to _count. It exists so tests can round-trip
// WritePrometheus output and so CI can assert on live /metrics scrapes.
func ParsePrometheus(r io.Reader) ([]Family, error) {
	byName := map[string]*Family{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				name := fields[2]
				f := byName[name]
				if f == nil {
					f = &Family{Name: name, Type: "untyped"}
					byName[name] = f
					order = append(order, name)
				}
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				f := byName[name]
				if f == nil {
					f = &Family{Name: name, Type: typ}
					byName[name] = f
					order = append(order, name)
				} else if f.Type != "untyped" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				} else {
					f.Type = typ
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f := byName[familyOf(s.Name, byName)]
		if f == nil {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", lineNo, s.Name)
		}
		if f.Type == "histogram" {
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(
				s.Name, "_bucket"), "_sum"), "_count")
			if base == s.Name || base != f.Name {
				return nil, fmt.Errorf("line %d: histogram sample %q lacks _bucket/_sum/_count suffix", lineNo, s.Name)
			}
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	fams := make([]Family, 0, len(order))
	for _, name := range order {
		f := byName[name]
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
		fams = append(fams, *f)
	}
	return fams, nil
}

// familyOf maps a sample name to its declaring family: exact match
// first, then the histogram-suffix-stripped base if that family is a
// histogram.
func familyOf(name string, byName map[string]*Family) string {
	if f := byName[name]; f != nil && f.Type != "histogram" {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if f := byName[base]; f != nil && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

// checkHistogram validates cumulative bucket monotonicity per label set
// and that the +Inf bucket equals _count.
func checkHistogram(f *Family) error {
	type agg struct {
		lastLe  float64
		lastCum float64
		infSeen bool
		inf     float64
		count   float64
		hasCnt  bool
	}
	groups := map[string]*agg{}
	get := func(ls Labels) *agg {
		key := labelKey(stripLe(ls))
		g := groups[key]
		if g == nil {
			g = &agg{lastLe: math.Inf(-1), lastCum: -1}
			groups[key] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket sample without le label", f.Name)
			}
			g := get(s.Labels)
			lev, err := parseLe(le)
			if err != nil {
				return fmt.Errorf("%s: %w", f.Name, err)
			}
			if lev <= g.lastLe {
				return fmt.Errorf("%s: bucket edges not ascending", f.Name)
			}
			if s.Value < g.lastCum {
				return fmt.Errorf("%s: cumulative bucket counts decreasing", f.Name)
			}
			g.lastLe, g.lastCum = lev, s.Value
			if math.IsInf(lev, 1) {
				g.infSeen, g.inf = true, s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			g := get(s.Labels)
			g.count, g.hasCnt = s.Value, true
		}
	}
	for _, g := range groups {
		if !g.infSeen {
			return fmt.Errorf("%s: histogram missing le=\"+Inf\" bucket", f.Name)
		}
		if !g.hasCnt {
			return fmt.Errorf("%s: histogram missing _count sample", f.Name)
		}
		if g.inf != g.count {
			return fmt.Errorf("%s: le=\"+Inf\" bucket (%g) != _count (%g)", f.Name, g.inf, g.count)
		}
	}
	return nil
}

// HistogramSnapshot reconstructs the snapshot behind a parsed histogram
// family's sample set with the given label group (nil matches the
// unlabelled series), undoing the cumulative-bucket encoding. The bool is
// false when the family has no such label group. This is how a scraper
// (e.g. the loadgen client-vs-server comparison) recovers quantiles from a
// server's exposition.
func (f Family) HistogramSnapshot(labels Labels) (HistogramSnapshot, bool) {
	match := func(ls Labels) bool {
		if len(stripLe(ls)) != len(labels) {
			return false
		}
		for k, v := range labels {
			if ls[k] != v {
				return false
			}
		}
		return true
	}
	type bucket struct {
		le  float64
		cum float64
	}
	var (
		bs    []bucket
		snap  HistogramSnapshot
		found bool
	)
	for _, s := range f.Samples {
		if !match(s.Labels) {
			continue
		}
		switch s.Name {
		case f.Name + "_bucket":
			le, err := parseLe(s.Labels["le"])
			if err != nil {
				return HistogramSnapshot{}, false
			}
			bs = append(bs, bucket{le: le, cum: s.Value})
			found = true
		case f.Name + "_sum":
			snap.Sum = s.Value
			found = true
		case f.Name + "_count":
			snap.Count = uint64(s.Value)
			found = true
		}
	}
	if !found {
		return HistogramSnapshot{}, false
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	prev := 0.0
	for _, b := range bs {
		if !math.IsInf(b.le, 1) {
			snap.Edges = append(snap.Edges, b.le)
		}
		snap.Buckets = append(snap.Buckets, uint64(b.cum-prev))
		prev = b.cum
	}
	return snap, true
}

func stripLe(ls Labels) Labels {
	if _, ok := ls["le"]; !ok {
		return ls
	}
	out := Labels{}
	for k, v := range ls {
		if k != "le" {
			out[k] = v
		}
	}
	return out
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le value %q", s)
	}
	return v, nil
}

// parseSample parses `name{k="v",...} value` or `name value`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: Labels{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabelBlock(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// value, optionally followed by a timestamp we ignore
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabelBlock parses a {k="v",...} block at the start of s into out,
// returning the index just past the closing brace.
func parseLabelBlock(s string, out Labels) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("malformed label block")
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value for %q not quoted", key)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value for %q", key)
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape in label %q", key)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		out[key] = b.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}
